// Command sandot exports the structure of the composed ITUA SAN model as a
// Graphviz DOT graph: places as circles, activities as bars, and edges for
// the declared enabling dependencies. With -lint it instead runs the static
// model linter and reports structural defects: unreachable activities,
// orphaned or never-read places, case distributions that do not sum to one,
// and declared-bound violations.
//
// Usage:
//
//	sandot [-domains D] [-hosts H] [-apps A] [-reps R] [-policy domain|host] [-lint] [-o itua.dot]
//
// Without -o the graph goes to stdout. With -o the file is written
// atomically (temp file + rename), so an interrupted run never leaves a
// truncated graph behind.
//
// Exit codes: 0 success, 1 build or I/O error, 2 usage error, 3 lint
// findings reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ituaval/internal/core"
	"ituaval/internal/san"
)

// writeAtomic writes via a temp file in the destination directory and
// renames it into place, so out is either absent/old or complete.
func writeAtomic(out string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(out), ".sandot-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, out); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

func main() {
	var (
		domains = flag.Int("domains", 2, "number of security domains")
		hosts   = flag.Int("hosts", 2, "hosts per security domain")
		apps    = flag.Int("apps", 1, "number of replicated applications")
		reps    = flag.Int("reps", 3, "replicas per application")
		policy  = flag.String("policy", "domain", `management algorithm: "domain" or "host"`)
		lint    = flag.Bool("lint", false, "run the static model linter instead of exporting DOT (exit 3 on findings)")
		out     = flag.String("o", "", "output file, written atomically (default: stdout)")
	)
	flag.Parse()

	p := core.DefaultParams()
	p.NumDomains = *domains
	p.HostsPerDomain = *hosts
	p.NumApps = *apps
	p.RepsPerApp = *reps
	switch *policy {
	case "domain":
		p.Policy = core.DomainExclusion
	case "host":
		p.Policy = core.HostExclusion
	default:
		fmt.Fprintf(os.Stderr, "sandot: unknown policy %q (want \"domain\" or \"host\")\n", *policy)
		os.Exit(2)
	}
	m, err := core.Build(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sandot: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s\n", m.SAN.Summary())

	if *lint {
		findings := m.SAN.Lint(san.LintOptions{})
		for _, f := range findings {
			fmt.Printf("%s\n", f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "sandot: %d lint finding(s)\n", len(findings))
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "sandot: model is lint-clean")
		return
	}

	write := func(w io.Writer) error { return san.WriteDOT(w, m.SAN) }
	if *out != "" {
		err = writeAtomic(*out, write)
	} else {
		err = write(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sandot: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
