// Command sandot exports the structure of the composed ITUA SAN model as a
// Graphviz DOT graph: places as circles, activities as bars, and edges for
// the declared enabling dependencies.
//
// Usage:
//
//	sandot [-domains D] [-hosts H] [-apps A] [-reps R] [-policy domain|host] > itua.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"ituaval/internal/core"
	"ituaval/internal/san"
)

func main() {
	var (
		domains = flag.Int("domains", 2, "number of security domains")
		hosts   = flag.Int("hosts", 2, "hosts per security domain")
		apps    = flag.Int("apps", 1, "number of replicated applications")
		reps    = flag.Int("reps", 3, "replicas per application")
		policy  = flag.String("policy", "domain", `management algorithm: "domain" or "host"`)
	)
	flag.Parse()

	p := core.DefaultParams()
	p.NumDomains = *domains
	p.HostsPerDomain = *hosts
	p.NumApps = *apps
	p.RepsPerApp = *reps
	if *policy == "host" {
		p.Policy = core.HostExclusion
	}
	m, err := core.Build(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sandot: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s\n", m.SAN.Summary())
	if err := san.WriteDOT(os.Stdout, m.SAN); err != nil {
		fmt.Fprintf(os.Stderr, "sandot: %v\n", err)
		os.Exit(1)
	}
}
