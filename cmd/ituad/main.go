// Command ituad is the study-as-a-service daemon: a long-running HTTP
// server that accepts declarative scenario files (internal/scenario), runs
// them on the flattened simulation worker pool, streams progress while they
// run, and serves finished results from a content-addressed cache keyed by
// the SHA-256 of the canonical scenario — identical submissions are served
// from cache, byte-identical to the fresh response.
//
// Quickstart:
//
//	ituad -addr :8321 -data ./ituad-data &
//	curl -sS -X POST --data-binary @testdata/scenarios/fig5.json localhost:8321/v1/jobs
//	curl -sN localhost:8321/v1/jobs/<id>/stream     # NDJSON progress + result
//	curl -sS localhost:8321/v1/jobs/<id>/result     # cached result document
//
// SIGINT/SIGTERM shut the daemon down gracefully: running jobs stop at the
// next replication boundary with every finished sweep point checkpointed,
// pending specs stay on disk, and the next ituad on the same -data resumes
// them with bit-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ituaval/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8321", "HTTP listen address")
	dataDir := flag.String("data", "ituad-data", "durable state directory (result cache, pending jobs, checkpoints)")
	workers := flag.Int("workers", 0, "simulation workers per job (0 = all cores)")
	jobs := flag.Int("jobs", 2, "jobs running concurrently")
	queue := flag.Int("queue", 64, "pending-job queue depth (further submissions get 503)")
	reps := flag.Int("reps", 2000, "default replications per sweep point for scenarios that omit run.reps")
	seed := flag.Uint64("seed", 1, "default root seed for scenarios that omit run.seed")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ituad: "+format+"\n", args...)
	}

	srv, err := server.New(server.Config{
		DataDir:        *dataDir,
		Workers:        *workers,
		JobConcurrency: *jobs,
		QueueDepth:     *queue,
		DefaultReps:    *reps,
		DefaultSeed:    *seed,
		Logf:           logf,
	})
	if err != nil {
		logf("%v", err)
		return 1
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logf("listening on %s (data: %s)", *addr, *dataDir)

	select {
	case <-ctx.Done():
	case err := <-errc:
		logf("%v", err)
		_ = srv.Shutdown(context.Background())
		return 1
	}

	logf("shutting down (drain budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Job shutdown first: cancelling the jobs unblocks their streams, which
	// lets the HTTP server's own drain finish.
	if err := srv.Shutdown(drainCtx); err != nil {
		logf("job drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http drain: %v", err)
	}
	logf("interrupted jobs are checkpointed; restart with the same -data to resume")
	return 0
}
