// Command figures regenerates the evaluation figures of Singh, Cukier &
// Sanders, "Probabilistic Validation of an Intrusion-Tolerant Replication
// System" (DSN 2003), plus the cross-validation and ablation experiments of
// this reproduction.
//
// Usage:
//
//	figures [-reps N] [-seed S] [-csv dir] [experiment ...]
//
// With no experiment arguments every registered experiment runs. Text
// tables go to stdout; -csv additionally writes one CSV file per
// experiment into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ituaval/internal/study"
)

func main() {
	reps := flag.Int("reps", 2000, "replications per sweep point")
	seed := flag.Uint64("seed", 1, "root random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: %s [flags] [experiment ...]\nexperiments: %s\nflags:\n",
			os.Args[0], strings.Join(study.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = study.IDs()
	}
	cfg := study.Config{Reps: *reps, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		fig, err := study.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := fig.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v with %d reps/point]\n\n", id, time.Since(start).Round(time.Millisecond), *reps)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
	}
}
