// Command figures regenerates the evaluation figures of Singh, Cukier &
// Sanders, "Probabilistic Validation of an Intrusion-Tolerant Replication
// System" (DSN 2003), plus the cross-validation and ablation experiments of
// this reproduction.
//
// Usage:
//
//	figures [-reps N] [-seed S] [-precision R] [-paired] [-analytic] [-live] [-faults] [-csv dir] [-checkpoint file] [-resume] [experiment ...]
//
// With no experiment arguments every registered experiment runs. Text
// tables go to stdout; -csv additionally writes one CSV file per
// experiment into the given directory.
//
// -precision R switches every sweep point from a fixed replication count
// to sequential stopping: replications grow geometrically from -reps until
// each measure's 95% confidence half-width falls below R times its mean
// (combinable with -abs-precision for an absolute target), bounded by
// -max-reps. -paired substitutes the CRN-paired variant for experiments
// that have one (fig5 becomes fig5-paired): both exclusion policies run on
// common random numbers and the figure reports host-minus-domain deltas
// with paired-t intervals, crossover locations, and the observed
// variance-reduction factors.
//
// -analytic adds the exact-vs-simulated study (experiment id "analytic"):
// on a two-domain, one-host-per-domain configuration every Figure-5 spread
// rate is evaluated both by simulation and by numerically exact
// uniformization of the generated CTMC (internal/exact), and the figure
// shows the two series side by side. It is excluded from the default
// experiment set because each sweep point solves a chain of a few hundred
// thousand states.
//
// -live adds the model-vs-measurement study (experiment id "live"): the
// same small configuration is evaluated both by simulating the SAN model
// and by running a real message-passing replica group under the model's
// attack process (internal/rsm), a synthetic client measuring the service
// it actually receives. Also excluded from the default set because each
// sweep point executes thousands of live agreement-protocol runs.
//
// -faults adds the environment-fault study (experiment id "faults"): a
// partition-rate x campaign-rate grid on the same small configuration,
// with network partitions, correlated attack campaigns, and a bounded
// repair crew active, cross-validated SAN vs direct simulation vs live
// replica group, with an exact uniformization anchor at one grid point.
// Excluded from the default set for the same cost reasons as -live.
//
// Long sweeps are fault tolerant: with -checkpoint, every completed sweep
// point is persisted atomically, Ctrl-C (SIGINT) or SIGTERM stops the run
// gracefully, and a later invocation with -resume skips the completed
// points and produces estimates bit-identical to an uninterrupted run
// (replication seeds are derived per point and per replication from the
// root seed). Replications that panic or hang past -rep-deadline are
// recorded with their reproducing seed and the sweep continues, as long as
// the per-point failure fraction stays under -max-failure-frac.
//
// -cpuprofile, -memprofile, and -trace write pprof CPU/heap profiles and a
// runtime execution trace for the whole run, flushed on every exit path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ituaval/internal/prof"
	"ituaval/internal/study"
)

// main delegates to run so deferred cleanup — notably flushing the
// profiling collectors — executes before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	reps := flag.Int("reps", 2000, "replications per sweep point")
	seed := flag.Uint64("seed", 1, "root random seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	ckptPath := flag.String("checkpoint", "", "file to persist completed sweep points (enables resumable runs)")
	resume := flag.Bool("resume", false, "skip sweep points already in the checkpoint file (implies -checkpoint figures.ckpt.json if unset)")
	repDeadline := flag.Duration("rep-deadline", 0, "wall-clock watchdog per replication (0 = none)")
	maxFailFrac := flag.Float64("max-failure-frac", 0, "tolerated fraction of failed replications per point (0 = default 5%, negative = none)")
	relHW := flag.Float64("precision", 0, "relative 95% half-width target per measure; grows replications from -reps until met (0 = fixed -reps)")
	absHW := flag.Float64("abs-precision", 0, "absolute 95% half-width target per measure (0 = none)")
	maxReps := flag.Int("max-reps", 0, "replication cap per sweep point in precision mode (0 = 16x -reps)")
	paired := flag.Bool("paired", false, "use the CRN-paired variant of experiments that have one (fig5 -> fig5-paired)")
	analytic := flag.Bool("analytic", false, "include the analytic study: exact (uniformization) vs simulated measures on a small configuration")
	live := flag.Bool("live", false, "include the live study: SAN model vs a real fault-injected replica group on a small configuration")
	faults := flag.Bool("faults", false, "include the environment-fault study: partitions x campaigns x repair crew, SAN vs direct vs live with an exact anchor")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	list := flag.Bool("list", false, "list the registered experiments with descriptions and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: %s [flags] [experiment ...]\nexperiments: %s\nflags:\n",
			os.Args[0], strings.Join(study.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		printExperimentList(os.Stdout)
		return 0
	}

	warn := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		warn("%v", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			warn("%v", err)
		}
	}()

	if *resume && *ckptPath == "" {
		*ckptPath = "figures.ckpt.json"
	}
	var ck *study.Checkpoint
	if *ckptPath != "" {
		ck, err = study.OpenCheckpoint(*ckptPath, *resume)
		if err != nil {
			warn("%v", err)
			return 1
		}
		if rec := ck.Recovery(); rec.Damaged() {
			// Tamper-evident resume: damaged or stale entries were dropped
			// (those points will be recomputed) and the original file kept.
			warn("%s", rec)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := flag.Args()
	// The analytic study solves CTMCs of a few hundred thousand states per
	// sweep point, the live study runs real protocol executions, and the
	// faults study does both across a two-axis grid; each joins the default
	// set only when its flag is given (any can still be named explicitly as
	// an argument).
	optIn := map[string]bool{"analytic": *analytic, "live": *live, "faults": *faults}
	if len(ids) == 0 {
		ids = study.IDs()
		kept := ids[:0]
		for _, id := range ids {
			if on, gated := optIn[id]; !gated || on {
				kept = append(kept, id)
			}
		}
		ids = kept
	} else {
		for _, id := range []string{"analytic", "live", "faults"} {
			if !optIn[id] {
				continue
			}
			found := false
			for _, have := range ids {
				if have == id {
					found = true
					break
				}
			}
			if !found {
				ids = append(ids, id)
			}
		}
	}
	if *paired {
		seen := make(map[string]bool)
		deduped := ids[:0]
		for _, id := range ids {
			if id == "fig5" {
				id = "fig5-paired"
			}
			if !seen[id] {
				seen[id] = true
				deduped = append(deduped, id)
			}
		}
		ids = deduped
	}
	cfg := study.Config{
		Reps: *reps, Seed: *seed, Workers: *workers,
		RepDeadline: *repDeadline, MaxFailureFrac: *maxFailFrac,
		TargetRelHW: *relHW, TargetAbsHW: *absHW, MaxReps: *maxReps,
		Checkpoint: ck,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
		},
	}
	for _, id := range ids {
		start := time.Now()
		fig, err := study.RunContext(ctx, id, cfg)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				warn("interrupted during %s", id)
				if ck != nil {
					warn("%d completed sweep point(s) checkpointed in %s; rerun with -resume -checkpoint %s to continue",
						ck.Len(), *ckptPath, *ckptPath)
				} else {
					warn("no checkpoint was configured; rerun with -checkpoint to make sweeps resumable")
				}
				return 130
			}
			warn("%s: %v", id, err)
			return 1
		}
		if err := fig.WriteText(os.Stdout); err != nil {
			warn("%v", err)
			return 1
		}
		fmt.Printf("\n[%s completed in %v with %d reps/point]\n\n", id, time.Since(start).Round(time.Millisecond), *reps)
		if *csvDir != "" {
			if err := writeCSV(fig, *csvDir, id); err != nil {
				warn("%v", err)
				return 1
			}
		}
	}
	return 0
}

// printExperimentList writes the sorted registry with one-line
// descriptions, one experiment per line.
func printExperimentList(w io.Writer) {
	ids := study.IDs()
	width := 0
	for _, id := range ids {
		if len(id) > width {
			width = len(id)
		}
	}
	for _, id := range ids {
		fmt.Fprintf(w, "%-*s  %s\n", width, id, study.Describe(id))
	}
}

// writeCSV writes one experiment's CSV file into dir.
func writeCSV(fig *study.Figure, dir, id string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fig.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
