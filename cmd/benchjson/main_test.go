package main

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: ituaval
cpu: AMD EPYC 7B13
BenchmarkFig3aUnavailability-8   	       2	 612345678 ns/op	         0.01234 y_first	         0.04321 y_last	 1234567 B/op	    8901 allocs/op
BenchmarkEngineEventThroughput   	    1200	    987654 ns/op	  52340000 events/s
BenchmarkModelBuild-16           	    5000	    240000 ns/op	  310000 B/op	    4200 allocs/op
PASS
ok  	ituaval	42.137s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample), time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "ituaval" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header envelope wrong: %+v", rep)
	}
	if rep.Date != "2026-08-06T12:00:00Z" {
		t.Fatalf("date = %q", rep.Date)
	}
	want := []Benchmark{
		{
			Name: "Fig3aUnavailability", Procs: 8, Reps: 2, NsPerOp: 612345678,
			BytesPerOp: 1234567, AllocsPerOp: 8901,
			Metrics: map[string]float64{"y_first": 0.01234, "y_last": 0.04321},
		},
		{
			Name: "EngineEventThroughput", Procs: 1, Reps: 1200, NsPerOp: 987654,
			Metrics: map[string]float64{"events/s": 52340000},
		},
		{
			Name: "ModelBuild", Procs: 16, Reps: 5000, NsPerOp: 240000,
			BytesPerOp: 310000, AllocsPerOp: 4200,
		},
	}
	if !reflect.DeepEqual(rep.Benchmarks, want) {
		t.Fatalf("parsed benchmarks:\n%+v\nwant:\n%+v", rep.Benchmarks, want)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	ituaval	42.137s",
		"--- BENCH: BenchmarkX",
		"BenchmarkBroken notanumber ns/op",
		"goos: linux",
		"",
		"    sim_test.go:42: some log line",
	} {
		if b, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as benchmark %+v", line, b)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := []Benchmark{
		{Name: "A", NsPerOp: 200, AllocsPerOp: 1000},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 50},
		{Name: "OnlyBaseline", NsPerOp: 10},
		{Name: "Zero", NsPerOp: 0},
	}
	current := []Benchmark{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 150, AllocsPerOp: 50},
		{Name: "Zero", NsPerOp: 5},
		{Name: "OnlyCurrent", NsPerOp: 7},
	}
	want := []Delta{
		{Name: "A", BaselineNsPerOp: 200, NsPerOp: 100, SpeedupPct: 50,
			BaselineAllocsPerOp: 1000, AllocsPerOp: 10},
		{Name: "B", BaselineNsPerOp: 100, NsPerOp: 150, SpeedupPct: -50,
			BaselineAllocsPerOp: 50, AllocsPerOp: 50},
	}
	if got := compare(baseline, current); !reflect.DeepEqual(got, want) {
		t.Fatalf("compare:\n%+v\nwant:\n%+v", got, want)
	}
}

// TestParseBenchLineNameWithDash pins the GOMAXPROCS-suffix heuristic: a
// dash followed by something non-numeric belongs to the name.
func TestParseBenchLineNameWithDash(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkParse-utf8 	 100 	 5 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "Parse-utf8" || b.Procs != 1 {
		t.Fatalf("name %q procs %d", b.Name, b.Procs)
	}
}
