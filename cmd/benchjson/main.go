// Command benchjson converts `go test -bench` output into a JSON report,
// so benchmark results can be archived and diffed across commits. It reads
// the benchmark text from stdin and writes BENCH_<date>.json (or -o):
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson
//
// Every benchmark line becomes one record with the name, iteration count,
// ns/op, allocation stats, and any custom metrics (the figure benches
// report panel endpoints that way); the goos/goarch/cpu header lines are
// carried into the report envelope. `make bench-json` runs the whole
// pipeline.
//
// -baseline embeds a prior report into the output and adds a per-benchmark
// comparison (ns/op before/after, speedup percent, allocs/op before/after),
// printed as a table and stored under "deltas", so one file documents a
// before/after measurement.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name (1 if absent).
	Procs int `json:"procs"`
	// Reps is the iteration count the benchmark settled on.
	Reps int64 `json:"reps"`
	// NsPerOp is the reported time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are reported with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every custom b.ReportMetric unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON envelope written to the output file.
type Report struct {
	Date       string      `json:"date"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// BaselineDate and Baseline carry a prior report passed via -baseline,
	// and Deltas the per-benchmark comparison against it, so a single file
	// records both sides of a before/after measurement.
	BaselineDate string      `json:"baseline_date,omitempty"`
	Baseline     []Benchmark `json:"baseline,omitempty"`
	Deltas       []Delta     `json:"deltas,omitempty"`
}

// Delta compares one benchmark present in both the current run and the
// -baseline report.
type Delta struct {
	Name string `json:"name"`
	// BaselineNsPerOp and NsPerOp are the before/after times.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	// SpeedupPct is the relative ns/op improvement in percent:
	// (baseline-current)/baseline*100, negative for a regression.
	SpeedupPct float64 `json:"speedup_pct"`
	// BaselineAllocsPerOp and AllocsPerOp are the before/after allocation
	// counts.
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op"`
	AllocsPerOp         float64 `json:"allocs_per_op"`
}

// compare matches current benchmarks against the baseline by name (first
// occurrence wins) and computes the relative ns/op change for each pair.
// Benchmarks present on only one side are omitted.
func compare(baseline, current []Benchmark) []Delta {
	base := make(map[string]Benchmark, len(baseline))
	for _, b := range baseline {
		if _, ok := base[b.Name]; !ok {
			base[b.Name] = b
		}
	}
	var deltas []Delta
	for _, c := range current {
		b, ok := base[c.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		delete(base, c.Name)
		deltas = append(deltas, Delta{
			Name:                c.Name,
			BaselineNsPerOp:     b.NsPerOp,
			NsPerOp:             c.NsPerOp,
			SpeedupPct:          (b.NsPerOp - c.NsPerOp) / b.NsPerOp * 100,
			BaselineAllocsPerOp: b.AllocsPerOp,
			AllocsPerOp:         c.AllocsPerOp,
		})
	}
	return deltas
}

// parseBenchLine parses one benchmark result line, reporting ok=false for
// anything that is not one (PASS, ok, header lines, test log output).
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil && procs > 0 {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	reps, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Reps = reps
	// The rest of the line is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// parse reads `go test -bench` output and assembles the report.
func parse(r io.Reader, now time.Time) (*Report, error) {
	rep := &Report{Date: now.Format(time.RFC3339)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	header := map[string]*string{
		"goos:": &rep.GoOS, "goarch:": &rep.GoArch, "pkg:": &rep.Pkg, "cpu:": &rep.CPU,
	}
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if dst, ok := header[fields[0]]; ok && *dst == "" {
				*dst = strings.Join(fields[1:], " ")
				continue
			}
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "", "prior BENCH_*.json to embed and compare against")
	flag.Parse()
	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}
	rep, err := parse(os.Stdin, time.Now())
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (pipe `go test -bench` output in)")
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		rep.BaselineDate = base.Date
		rep.Baseline = base.Benchmarks
		rep.Deltas = compare(base.Benchmarks, rep.Benchmarks)
		for _, d := range rep.Deltas {
			fmt.Printf("%-40s %14.0f -> %12.0f ns/op  %+7.1f%%  allocs %10.0f -> %8.0f\n",
				d.Name, d.BaselineNsPerOp, d.NsPerOp, d.SpeedupPct,
				d.BaselineAllocsPerOp, d.AllocsPerOp)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), path)
}
