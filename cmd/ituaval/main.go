// Command ituaval runs a single ITUA validation experiment: it builds the
// composed SAN model for the given topology and management policy,
// simulates it with the requested number of replications, and prints every
// intrusion-tolerance measure of the paper with 95% confidence intervals.
//
// Example:
//
//	ituaval -domains 10 -hosts 3 -apps 4 -reps 7 -policy domain \
//	        -spread 4 -mult 5 -horizon 10 -sims 4000
package main

import (
	"flag"
	"fmt"
	"os"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

func main() {
	var (
		domains = flag.Int("domains", 12, "number of security domains")
		hosts   = flag.Int("hosts", 1, "hosts per security domain")
		apps    = flag.Int("apps", 4, "number of replicated applications")
		reps    = flag.Int("reps", 7, "replicas per application")
		policy  = flag.String("policy", "domain", `management algorithm: "domain" or "host"`)
		horizon = flag.Float64("horizon", 5, "simulation horizon in hours")
		sims    = flag.Int("sims", 2000, "number of simulation replications")
		seed    = flag.Uint64("seed", 1, "root random seed")

		attackRate = flag.Float64("attack-rate", 3, "cumulative successful-attack rate (1/h)")
		falseRate  = flag.Float64("false-rate", 2, "cumulative false-alarm rate (1/h)")
		spread     = flag.Float64("spread", 1, "intra-domain attack spread rate (1/h)")
		mult       = flag.Float64("mult", 2, "corruption multiplier for replicas/managers on corrupt hosts")
		convict    = flag.Bool("exclude-on-conviction", false, "exclude the domain/host on every replica conviction")
		validate   = flag.Bool("validate", false, "run the engine in dependency-validation mode (slow)")
	)
	flag.Parse()

	p := core.DefaultParams()
	p.NumDomains = *domains
	p.HostsPerDomain = *hosts
	p.NumApps = *apps
	p.RepsPerApp = *reps
	p.TotalAttackRate = *attackRate
	p.TotalFalseAlarmRate = *falseRate
	p.DomainSpreadRate = *spread
	p.CorruptionMult = *mult
	p.ExcludeOnReplicaConviction = *convict
	switch *policy {
	case "domain":
		p.Policy = core.DomainExclusion
	case "host":
		p.Policy = core.HostExclusion
	default:
		fmt.Fprintf(os.Stderr, "ituaval: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	m, err := core.Build(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		os.Exit(1)
	}
	T := *horizon
	vars := []reward.Var{
		m.Unavailability("unavailability", 0, 0, T),
		m.Unreliability("unreliability (Byzantine fault by T)", 0, T),
		m.ImproperEver("improper service ever by T", 0, T),
		m.ReplicasRunning("replicas running at T", 0, T),
		m.LoadPerHost("load per live host at T", T),
		m.FracDomainsExcluded("fraction of domains excluded at T", T),
		m.FracCorruptHostsAtExclusion("fraction of corrupt hosts in an excluded domain", T),
		m.DomainExclusions("exclusion events in [0,T]", T),
	}
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: T, Reps: *sims, Seed: *seed,
		Vars: vars, Validate: *validate,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s\n", m.SAN.Summary())
	fmt.Printf("policy=%s horizon=%gh replications=%d firings=%d\n\n",
		p.Policy, T, *sims, res.TotalFirings)
	for _, v := range vars {
		e := res.MustGet(v.Name())
		fmt.Printf("  %-50s %10.5f ± %.5f  (n=%d)\n", e.Name, e.Mean, e.HalfWidth95, e.N)
	}
}
