// Command ituaval runs a single ITUA validation experiment: it builds the
// composed SAN model for the given topology and management policy,
// simulates it with the requested number of replications, and prints every
// intrusion-tolerance measure of the paper with 95% confidence intervals.
//
// Execution is fault tolerant: Ctrl-C (SIGINT) or SIGTERM stops the study
// gracefully and prints the estimates from the replications that already
// completed, marked PARTIAL. A replication that panics, hangs past
// -rep-deadline, or exhausts its firing budget is recorded (with the seed
// that reproduces it) and the rest of the study continues; use -replay to
// re-execute one recorded replication under a debugger. With -invariants
// the run carries the model's conservation-law monitors, so a corrupted
// trajectory aborts with a classified failure instead of skewing estimates.
//
// -replay exits with a code identifying the failure class (see
// sim.FailureKind.ExitCode): 10 model error, 11 panic, 12 deadline, 13
// firing budget, 14 invariant violation, 15 livelock; 0 means the
// replication completed cleanly.
//
// -exact additionally solves the configuration's CTMC by uniformization
// (internal/exact) and prints the numerically exact measures next to the
// simulated estimates. The chain is symmetry-lumped by default — hosts
// within a domain and whole domains are exchangeable, so multi-host
// topologies stay generateable — and -no-lump forces the full chain.
//
// -live additionally runs the live replicated service (internal/rsm): the
// same attack process is injected into a real message-passing replica group
// of application 0 and a synthetic client measures the availability and
// reliability of the service it actually receives, printed next to the
// model's estimates together with the probe-vs-oracle divergence count.
//
// -cpuprofile, -memprofile, and -trace write pprof CPU/heap profiles and a
// runtime execution trace for the whole run, flushed on every exit path.
//
// Example:
//
//	ituaval -domains 10 -hosts 3 -apps 4 -reps 7 -policy domain \
//	        -spread 4 -mult 5 -horizon 10 -sims 4000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ituaval/internal/core"
	"ituaval/internal/exact"
	"ituaval/internal/integrity"
	"ituaval/internal/prof"
	"ituaval/internal/reward"
	"ituaval/internal/rsm"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
	"ituaval/internal/study"
)

// main delegates to run so deferred cleanup — notably flushing the
// profiling collectors — executes before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		domains = flag.Int("domains", 12, "number of security domains")
		hosts   = flag.Int("hosts", 1, "hosts per security domain")
		apps    = flag.Int("apps", 4, "number of replicated applications")
		reps    = flag.Int("reps", 7, "replicas per application")
		policy  = flag.String("policy", "domain", `management algorithm: "domain" or "host"`)
		horizon = flag.Float64("horizon", 5, "simulation horizon in hours")
		sims    = flag.Int("sims", 2000, "number of simulation replications")
		seed    = flag.Uint64("seed", 1, "root random seed")

		attackRate = flag.Float64("attack-rate", 3, "cumulative successful-attack rate (1/h)")
		falseRate  = flag.Float64("false-rate", 2, "cumulative false-alarm rate (1/h)")
		spread     = flag.Float64("spread", 1, "intra-domain attack spread rate (1/h)")
		mult       = flag.Float64("mult", 2, "corruption multiplier for replicas/managers on corrupt hosts")
		convict    = flag.Bool("exclude-on-conviction", false, "exclude the domain/host on every replica conviction")
		validate   = flag.Bool("validate", false, "run the engine in dependency-validation mode (slow)")

		live     = flag.Bool("live", false, "also run the live replicated service under fault injection and print its measured availability/reliability next to the model's")
		liveSims = flag.Int("live-sims", 0, "live replications with -live (0 = -sims)")

		exactArm  = flag.Bool("exact", false, "also solve the configuration's CTMC numerically (symmetry-lumped uniformization, internal/exact) and print the exact measures next to the simulated estimates")
		exactMax  = flag.Int("exact-max-states", 0, "state cap for -exact generation (0 = default 1<<20)")
		exactFull = flag.Bool("no-lump", false, "with -exact, generate the full chain instead of the symmetry-lumped quotient")

		repDeadline = flag.Duration("rep-deadline", 0, "wall-clock watchdog per replication (0 = none)")
		maxFailFrac = flag.Float64("max-failure-frac", 0, "tolerated fraction of failed replications (0 = default 5%, negative = none)")
		replay      = flag.Int("replay", -1, "re-execute only the given replication index and report its outcome")
		invariants  = flag.Bool("invariants", false, "monitor the model's conservation laws during every replication (violations abort the replication, classified)")
		invEvery    = flag.Int64("invariants-every", 0, "check invariants every N events (0 = engine default)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")

		list = flag.Bool("list", false, "list the registered study experiments (run by cmd/figures) with descriptions and exit")
	)
	flag.Parse()

	if *list {
		ids := study.IDs()
		width := 0
		for _, id := range ids {
			if len(id) > width {
				width = len(id)
			}
		}
		for _, id := range ids {
			fmt.Printf("%-*s  %s\n", width, id, study.Describe(id))
		}
		return 0
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		}
	}()

	p := core.DefaultParams()
	p.NumDomains = *domains
	p.HostsPerDomain = *hosts
	p.NumApps = *apps
	p.RepsPerApp = *reps
	p.TotalAttackRate = *attackRate
	p.TotalFalseAlarmRate = *falseRate
	p.DomainSpreadRate = *spread
	p.CorruptionMult = *mult
	p.ExcludeOnReplicaConviction = *convict
	switch *policy {
	case "domain":
		p.Policy = core.DomainExclusion
	case "host":
		p.Policy = core.HostExclusion
	default:
		fmt.Fprintf(os.Stderr, "ituaval: unknown policy %q\n", *policy)
		return 2
	}

	m, err := core.Build(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		return 1
	}
	T := *horizon
	vars := []reward.Var{
		m.Unavailability("unavailability", 0, 0, T),
		m.Unreliability("unreliability (Byzantine fault by T)", 0, T),
		m.ImproperEver("improper service ever by T", 0, T),
		m.ReplicasRunning("replicas running at T", 0, T),
		m.LoadPerHost("load per live host at T", T),
		m.FracDomainsExcluded("fraction of domains excluded at T", T),
		m.FracCorruptHostsAtExclusion("fraction of corrupt hosts in an excluded domain", T),
		m.DomainExclusions("exclusion events in [0,T]", T),
	}
	spec := sim.Spec{
		Model: m.SAN, Until: T, Reps: *sims, Seed: *seed,
		Vars: vars, Validate: *validate,
		RepDeadline: *repDeadline, MaxFailureFrac: *maxFailFrac,
	}
	if *invariants {
		spec.Invariants = integrity.ITUAInvariants(m)
		spec.InvariantEvery = *invEvery
	}

	if *replay >= 0 {
		// Reproduce a single replication from its logged index + root seed;
		// the exit code identifies the failure class so scripts can triage.
		if ferr := sim.Replay(spec, *replay); ferr != nil {
			fmt.Printf("replication %d (seed %d): %s failure\n%v\n", ferr.Rep, ferr.Seed, ferr.Kind, ferr)
			if ferr.Stack != "" {
				fmt.Printf("\n%s\n", ferr.Stack)
			}
			return ferr.Kind.ExitCode()
		}
		fmt.Printf("replication %d (seed %d): completed cleanly\n", *replay, *seed)
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := sim.RunContext(ctx, spec)
	interrupted := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		// Over-threshold failures: report the error but still print any
		// surviving estimates below.
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		if res == nil || res.Completed == 0 {
			return 1
		}
	}
	if res == nil {
		fmt.Fprintf(os.Stderr, "ituaval: %v\n", err)
		return 1
	}

	fmt.Printf("%s\n", m.SAN.Summary())
	fmt.Printf("policy=%s horizon=%gh replications=%d completed=%d failed=%d skipped=%d firings=%d\n",
		p.Policy, T, res.Reps, res.Completed, res.Failed, res.Skipped, res.TotalFirings)
	if interrupted {
		fmt.Printf("\n*** PARTIAL results: interrupted after %d of %d replications ***\n",
			res.Completed, res.Reps)
	}
	fmt.Println()
	for _, v := range vars {
		e := res.MustGet(v.Name())
		fmt.Printf("  %-50s %10.5f ± %.5f  (n=%d)\n", e.Name, e.Mean, e.HalfWidth95, e.N)
	}
	if res.Failed > 0 {
		fmt.Printf("\n%d replication(s) failed; estimates aggregate the %d survivors (selection bias possible):\n",
			res.Failed, res.Completed)
		for _, f := range res.Failures {
			fmt.Printf("  rep %-6d %-13s %v\n", f.Rep, f.Kind, &f)
		}
		fmt.Printf("reproduce one with: ituaval [same flags] -replay <rep>\n")
	}

	if *exactArm && !interrupted {
		// Exact arm: the symmetry-lumped (or, with -no-lump, full) CTMC
		// solved by uniformization; no sampling error, so the simulated
		// intervals above should bracket these values.
		s, err := exact.NewSolver(p, exact.Options{
			MaxStates: *exactMax, Workers: 0, NoLump: *exactFull,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ituaval: exact arm: %v\n", err)
			return 1
		}
		kind := "full"
		if s.Lumped {
			kind = "symmetry-lumped"
		}
		fmt.Printf("\nexact uniformization (%s chain: %d states, %d transitions):\n",
			kind, s.C.NumStates(), s.C.NumTransitions())
		for _, ex := range []struct {
			name string
			f    func() (float64, error)
		}{
			{"exact unavailability", func() (float64, error) { return s.Unavailability(0, T) }},
			{"exact unreliability (Byzantine fault by T)", func() (float64, error) { return s.Unreliability(0, T) }},
			{"exact fraction of domains excluded at T", func() (float64, error) { return s.FracDomainsExcluded(T) }},
		} {
			v, err := ex.f()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ituaval: exact arm: %v\n", err)
				return 1
			}
			fmt.Printf("  %-50s %10.5f\n", ex.name, v)
		}
	}

	if *live && !interrupted {
		// Live arm: the same attack process injected into a real replica
		// group (application 0), measured by a synthetic client.
		n := *liveSims
		if n <= 0 {
			n = *sims
		}
		lres, err := rsm.Run(ctx, rsm.Spec{
			Params: p, T: T, Reps: n, Seed: *seed + 2,
			RepDeadline:    *repDeadline,
			MaxFailureFrac: *maxFailFrac,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "ituaval: live service interrupted")
				return 130
			}
			fmt.Fprintf(os.Stderr, "ituaval: live service: %v\n", err)
			return 1
		}
		fmt.Printf("\nlive replicated service (app 0, %d replications, %d client probes):\n", lres.Reps, lres.Probes)
		for _, m := range []struct {
			name string
			acc  *stats.Accumulator
		}{
			{"live unavailability", &lres.Unavail},
			{"live unreliability (wrong answer certified)", &lres.Unrel},
			{"live fraction of domains excluded at T", &lres.FracExcl},
		} {
			fmt.Printf("  %-50s %10.5f ± %.5f  (n=%d)\n",
				m.name, m.acc.Mean(), m.acc.HalfWidth(0.95), int64(lres.Reps))
		}
		fmt.Printf("  %-50s %10d\n", "probe-vs-model-oracle divergences (expect 0)", lres.Divergences)
		if lres.Failed > 0 {
			fmt.Printf("  %d live replication(s) failed: %v\n", lres.Failed, lres.Failures)
		}
	}
	if interrupted {
		return 130
	}
	return 0
}
