// M/M/1/K validation: exercises the SAN formalism, the discrete-event
// simulator, and the numerical CTMC solver on a queue with a known analytic
// stationary distribution, demonstrating the methodology-level validation
// loop the library supports (simulate, solve numerically, compare to
// theory). This is the "is the substrate trustworthy" example that backs
// the ITUA study.
package main

import (
	"fmt"
	"log"
	"math"

	"ituaval/internal/mc"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

const (
	lambda = 2.0 // arrival rate
	mu     = 3.0 // service rate
	k      = 5   // capacity
)

func buildQueue() (*san.Model, *san.Place) {
	m := san.NewModel("mm1k")
	q := m.Place("queue", 0)
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(lambda) },
		Enabled: func(s *san.State) bool { return s.Int(q) < k },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "serve", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(mu) },
		Enabled: func(s *san.State) bool { return s.Get(q) > 0 },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, -1) }}},
	})
	if err := m.Finalize(); err != nil {
		log.Fatal(err)
	}
	return m, q
}

func main() {
	model, q := buildQueue()
	length := func(s *san.State) float64 { return float64(s.Get(q)) }

	// Theory: stationary distribution of M/M/1/K.
	rho := lambda / mu
	norm, meanLen := 0.0, 0.0
	for n := 0; n <= k; n++ {
		pn := math.Pow(rho, float64(n))
		norm += pn
		meanLen += float64(n) * pn
	}
	meanLen /= norm

	// Numerical: generate the CTMC and solve for the steady state.
	chain, err := mc.Generate(model, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	numeric, err := chain.SteadyStateReward(length, 1e-12, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Simulation: long-run time average over a late window.
	res, err := sim.Run(sim.Spec{
		Model: model, Until: 500, Reps: 64, Seed: 11,
		Vars: []reward.Var{
			&reward.TimeAverage{VarName: "len", F: length, From: 100, To: 500},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	est := res.MustGet("len")

	fmt.Printf("M/M/1/%d with lambda=%g mu=%g (%d CTMC states, %d transitions)\n",
		k, lambda, mu, chain.NumStates(), chain.NumTransitions())
	fmt.Printf("  mean queue length, analytic:      %.6f\n", meanLen)
	fmt.Printf("  mean queue length, uniformization: %.6f\n", numeric)
	fmt.Printf("  mean queue length, simulation:     %.6f ± %.6f\n", est.Mean, est.HalfWidth95)
	if math.Abs(numeric-meanLen) > 1e-9 {
		log.Fatal("numerical solver disagrees with theory")
	}
	if math.Abs(est.Mean-meanLen) > 3*est.HalfWidth95+0.01 {
		log.Fatal("simulation disagrees with theory")
	}
	fmt.Println("  all three agree ✔")
}
