// Analytic study: the Möbius-style numerical path on a reduced
// intrusion-tolerance model. This example builds a small
// replicated-service model (attack/detect/restart with a budget of
// spares) and walks through the whole analytic toolbox: transient
// solution, interval-averaged unavailability, first-passage probability,
// steady state, and mean time to absorption — each cross-checked against
// simulation. The full composed ITUA model is also solvable this way on
// small configurations (the generator enumerates its random placement
// and exclusion choices exhaustively and bounds the intrusion counter
// via core.Params.Analytic); see internal/exact and `figures -analytic`
// for that heavier end of the analytic path.
package main

import (
	"fmt"
	"log"
	"math"

	"ituaval/internal/mc"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

const (
	nReplicas  = 3   // active replicas
	nSpares    = 4   // replacement budget (no repair: eventually exhausted)
	attackRate = 0.5 // per running replica
	detectRate = 2.0 // conviction of a corrupt replica
	startRate  = 6.0 // spare activation
)

func build() (*san.Model, *san.Place, *san.Place, *san.Place) {
	m := san.NewModel("spares")
	good := m.Place("good", nReplicas)
	bad := m.Place("bad", 0)
	spares := m.Place("spares", nSpares)
	m.AddActivity(san.ActivityDef{
		Name: "attack", Kind: san.Timed,
		Dist:    func(s *san.State) rng.Dist { return rng.Expo(attackRate * float64(s.Get(good))) },
		Enabled: func(s *san.State) bool { return s.Get(good) > 0 },
		Reads:   []*san.Place{good},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(good, -1)
			ctx.State.Add(bad, 1)
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "convict", Kind: san.Timed,
		Dist:    func(s *san.State) rng.Dist { return rng.Expo(detectRate * float64(s.Get(bad))) },
		Enabled: func(s *san.State) bool { return s.Get(bad) > 0 },
		Reads:   []*san.Place{bad},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(bad, -1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "activate", Kind: san.Timed,
		Dist: func(s *san.State) rng.Dist {
			return rng.Expo(startRate)
		},
		Enabled: func(s *san.State) bool {
			return s.Get(spares) > 0 && s.Int(good)+s.Int(bad) < nReplicas
		},
		Reads: []*san.Place{spares, good, bad},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(spares, -1)
			ctx.State.Add(good, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		log.Fatal(err)
	}
	return m, good, bad, spares
}

func main() {
	model, good, bad, _ := build()
	improper := func(s *san.State) float64 {
		if 3*s.Int(bad) >= s.Int(good)+s.Int(bad) {
			return 1
		}
		return 0
	}
	dead := func(s *san.State) bool { return s.Get(good) == 0 && s.Get(bad) == 0 }

	chain, err := mc.Generate(model, mc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced model: %d CTMC states, %d transitions\n\n", chain.NumStates(), chain.NumTransitions())

	const T = 8.0
	u, err := chain.IntervalAverageReward(T, improper)
	if err != nil {
		log.Fatal(err)
	}
	fp, err := chain.FirstPassageProb(T, func(s *san.State) bool { return improper(s) == 1 })
	if err != nil {
		log.Fatal(err)
	}
	abs, err := chain.Absorption(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	improperToDeath, err := chain.ExpectedRewardToAbsorption(improper, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("numerical (uniformization / Gauss-Seidel):")
	fmt.Printf("  unavailability over [0,%g]:       %.6f\n", T, u)
	fmt.Printf("  P(improper at least once by %g):  %.6f\n", T, fp)
	fmt.Printf("  mean time to spare exhaustion:    %.4f h (absorption prob %.3f)\n", abs.MeanTime, abs.Prob)
	fmt.Printf("  expected improper hours, total:   %.4f h\n\n", improperToDeath)

	res, err := sim.Run(sim.Spec{
		Model: model, Until: T, Reps: 20000, Seed: 19,
		Vars: []reward.Var{
			&reward.TimeAverage{VarName: "u", F: improper, From: 0, To: T},
			&reward.FirstPassage{VarName: "fp", Pred: func(s *san.State) bool { return improper(s) == 1 }, By: T},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	su, sfp := res.MustGet("u"), res.MustGet("fp")
	fmt.Println("simulation (20000 replications):")
	fmt.Printf("  unavailability over [0,%g]:       %.6f ± %.6f\n", T, su.Mean, su.HalfWidth95)
	fmt.Printf("  P(improper at least once by %g):  %.6f ± %.6f\n", T, sfp.Mean, sfp.HalfWidth95)

	if math.Abs(su.Mean-u) > 3*su.HalfWidth95+1e-3 || math.Abs(sfp.Mean-fp) > 3*sfp.HalfWidth95+1e-3 {
		log.Fatal("simulation and numerical solution disagree")
	}
	fmt.Println("  simulation CIs cover the numerical values ✔")

	// The mean time to exhaustion is also checkable by simulation with a
	// long horizon and the first-passage-time measure.
	resLong, err := sim.Run(sim.Spec{
		Model: model, Until: 200, Reps: 4000, Seed: 23,
		Vars: []reward.Var{&reward.FirstPassageTime{VarName: "mtta", Pred: dead}},
	})
	if err != nil {
		log.Fatal(err)
	}
	mtta := resLong.MustGet("mtta")
	fmt.Printf("\nmean time to exhaustion: numerical %.4f h, simulated %.4f ± %.4f h (n=%d)\n",
		abs.MeanTime, mtta.Mean, mtta.HalfWidth95, mtta.N)
	if math.Abs(mtta.Mean-abs.MeanTime) > 3*mtta.HalfWidth95+0.05 {
		log.Fatal("MTTA disagreement")
	}
	fmt.Println("agreement ✔")
}
