// Exclusion-policy comparison: the design question of Section 4.3. Should
// the management infrastructure convict a whole security domain when one of
// its hosts is caught, or just the host? This example sweeps the
// intra-domain attack-spread rate and, instead of eyeballing two noisy
// independent curves, pairs the policies on common random numbers: every
// replication runs both policies on identical per-role randomness, so the
// printed host-minus-domain delta carries a paired-t confidence interval
// tight enough to resolve the sign — and the crossover — at a fraction of
// the replications an independent design would need. The final column
// reports the variance-reduction factor (paired delta variance versus the
// independent design at equal replications).
package main

import (
	"context"
	"fmt"
	"log"

	"ituaval/internal/core"
	"ituaval/internal/precision"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

const (
	horizon = 10.0
	reps    = 1500
)

func spec(spread float64, policy core.Policy) sim.Spec {
	p := core.DefaultParams()
	p.NumDomains = 10
	p.HostsPerDomain = 3
	p.NumApps = 4
	p.RepsPerApp = 7
	p.CorruptionMult = 5
	p.DomainSpreadRate = spread
	p.Policy = policy
	m, err := core.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	return sim.Spec{
		Model: m.SAN, Until: horizon, Reps: reps, Seed: 7,
		Vars: []reward.Var{
			m.Unavailability("u", 0, 0, horizon),
			m.Unreliability("r", 0, horizon),
		},
	}
}

func main() {
	spreads := []float64{0, 2, 4, 6, 8, 10}
	fmt.Println("10 domains x 3 hosts, 4 apps x 7 replicas, corruption multiplier 5, 10 h horizon")
	fmt.Printf("CRN-paired host-minus-domain deltas, %d replications per policy\n\n", reps)
	fmt.Printf("%7s | %32s | %32s\n", "", "unavailability [0,10]", "unreliability [0,10]")
	fmt.Printf("%7s | %25s %6s | %25s %6s\n", "spread", "delta (host - domain)", "VRF", "delta (host - domain)", "VRF")

	var xs []float64
	var du, dhw []float64
	for _, spread := range spreads {
		cmp, err := precision.Compare(context.Background(),
			spec(spread, core.HostExclusion), spec(spread, core.DomainExclusion),
			precision.Opts{})
		if err != nil {
			log.Fatal(err)
		}
		u, _ := cmp.Get("u")
		r, _ := cmp.Get("r")
		fmt.Printf("%7.0f | %10.4f ±%7.4f %5s %6.1f | %10.4f ±%7.4f %5s %6.1f\n",
			spread,
			u.Delta, u.HalfWidth, sign(u.Lo, u.Hi), u.VRF,
			r.Delta, r.HalfWidth, sign(r.Lo, r.Hi), r.VRF)
		xs = append(xs, spread)
		du = append(du, u.Delta)
		dhw = append(dhw, u.HalfWidth)
	}

	fmt.Println()
	for _, c := range precision.Crossovers(xs, du, dhw) {
		state := "but the bracketing deltas are within noise"
		if c.Resolved {
			state = "resolved by the paired intervals"
		}
		fmt.Printf("unavailability delta changes sign near spread %.1f (%s)\n", c.X, state)
	}
	fmt.Println("\nReading: a negative delta means host exclusion wins; it does while")
	fmt.Println("attacks stay contained. Once the attack spreads quickly inside a")
	fmt.Println("domain, preemptively excluding the whole domain is the better design,")
	fmt.Println("matching the paper's conclusion — and the paired intervals say where")
	fmt.Println("the switch happens.")
}

// sign renders whether a paired interval resolves the delta's sign.
func sign(lo, hi float64) string {
	switch {
	case hi < 0:
		return "A<B"
	case lo > 0:
		return "A>B"
	default:
		return "~"
	}
}
