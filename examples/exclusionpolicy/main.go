// Exclusion-policy comparison: the design question of Section 4.3. Should
// the management infrastructure convict a whole security domain when one of
// its hosts is caught, or just the host? This example sweeps the
// intra-domain attack-spread rate and prints the 10-hour unavailability and
// unreliability of both policies side by side, cross-checked by the
// independent direct simulator.
package main

import (
	"fmt"
	"log"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

const (
	horizon = 10.0
	reps    = 1500
)

func sanPoint(p core.Params) (unavail, unrel float64) {
	m, err := core.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: horizon, Reps: reps, Seed: 7,
		Vars: []reward.Var{
			m.Unavailability("u", 0, 0, horizon),
			m.Unreliability("r", 0, horizon),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.MustGet("u").Mean, res.MustGet("r").Mean
}

func directPoint(p core.Params) (unavail, unrel float64) {
	root := rng.New(8)
	var u, r stats.Accumulator
	for i := 0; i < reps; i++ {
		res, err := ituadirect.Run(p, root.Derive(uint64(i)), []float64{horizon})
		if err != nil {
			log.Fatal(err)
		}
		u.Add(res.UnavailTime[0] / horizon)
		if res.ByzantineBy[0] {
			r.Add(1)
		} else {
			r.Add(0)
		}
	}
	return u.Mean(), r.Mean()
}

func main() {
	fmt.Println("10 domains x 3 hosts, 4 apps x 7 replicas, corruption multiplier 5, 10 h horizon")
	fmt.Printf("%8s | %28s | %28s\n", "", "unavailability [0,10]", "unreliability [0,10]")
	fmt.Printf("%8s | %13s %14s | %13s %14s\n", "spread", "host-excl", "domain-excl", "host-excl", "domain-excl")
	for _, spread := range []float64{0, 2, 4, 6, 8, 10} {
		row := fmt.Sprintf("%8.0f |", spread)
		var us, rs [2]float64
		for i, policy := range []core.Policy{core.HostExclusion, core.DomainExclusion} {
			p := core.DefaultParams()
			p.NumDomains = 10
			p.HostsPerDomain = 3
			p.NumApps = 4
			p.RepsPerApp = 7
			p.CorruptionMult = 5
			p.DomainSpreadRate = spread
			p.Policy = policy
			u, r := sanPoint(p)
			du, dr := directPoint(p)
			// Report the SAN estimate; flag if the independent simulator
			// disagrees by more than a rough tolerance.
			if diff := u - du; diff > 0.03 || diff < -0.03 {
				log.Printf("warning: SAN/direct disagree on unavailability at spread=%v policy=%v: %v vs %v", spread, policy, u, du)
			}
			if diff := r - dr; diff > 0.06 || diff < -0.06 {
				log.Printf("warning: SAN/direct disagree on unreliability at spread=%v policy=%v: %v vs %v", spread, policy, r, dr)
			}
			us[i], rs[i] = u, r
		}
		row += fmt.Sprintf(" %13.4f %14.4f | %13.4f %14.4f", us[0], us[1], rs[0], rs[1])
		fmt.Println(row)
	}
	fmt.Println("\nReading: host exclusion wins while attacks stay contained; once the")
	fmt.Println("attack spreads quickly inside a domain, preemptively excluding the")
	fmt.Println("whole domain is the better design, matching the paper's conclusion.")
}
