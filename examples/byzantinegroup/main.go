// Byzantine group demo: exercises the group-communication substrate that
// the ITUA model abstracts into its one-third thresholds. It runs Bracha
// reliable broadcasts and conviction votes for growing numbers of corrupt
// members, printing exactly where the guarantees break — the executable
// justification for the model's "less than a third of the currently active
// group members can be corrupt" assumption.
package main

import (
	"fmt"

	"ituaval/internal/groupcomm"
)

func main() {
	const n = 9
	fmt.Printf("group of %d members\n\n", n)

	fmt.Println("reliable broadcast: correct sender says \"commit\", colluders forge")
	fmt.Println("\"forged\"; the protocol is configured to tolerate f = 1:")
	fmt.Printf("%8s %12s %12s %12s\n", "corrupt", "delivered", "value(s)", "verdict")
	for corrupt := 0; corrupt <= 3; corrupt++ {
		faulty := map[groupcomm.ProcessID]groupcomm.Behavior{}
		for i := 0; i < corrupt; i++ {
			faulty[groupcomm.ProcessID(n-1-i)] = groupcomm.Collude{Value: "forged"}
		}
		g := groupcomm.Group{N: n, Faulty: faulty, Tolerance: 1}
		res := groupcomm.ReliableBroadcast(g, 0, "commit")
		values := map[string]int{}
		for _, v := range res.Delivered {
			values[v]++
		}
		verdict := "safe"
		if values["forged"] > 0 {
			verdict = "FORGERY"
		}
		if len(values) > 1 {
			verdict = "DISAGREE"
		}
		list := ""
		for v := range values {
			if list != "" {
				list += "+"
			}
			list += v
		}
		fmt.Printf("%8d %12d %12s %12s\n", corrupt, len(res.Delivered), list, verdict)
	}

	fmt.Println("\nconviction votes (correct observers vote guilty):")
	fmt.Printf("%8s %8s %12s\n", "corrupt", "voters", "convicts?")
	for corrupt := 0; corrupt <= 4; corrupt++ {
		faulty := map[groupcomm.ProcessID]groupcomm.Behavior{}
		var voters []groupcomm.ProcessID
		for i := 0; i < n; i++ {
			if i >= n-corrupt {
				faulty[groupcomm.ProcessID(i)] = groupcomm.Silent{}
			} else {
				voters = append(voters, groupcomm.ProcessID(i))
			}
		}
		res := groupcomm.ConvictionVote(groupcomm.VoteSpec{N: n, Faulty: faulty, GuiltyVoters: voters})
		all := true
		for _, c := range res.Convicted {
			all = all && c
		}
		fmt.Printf("%8d %8d %12v\n", corrupt, len(voters), all)
	}
	fmt.Printf("\nwith %d members the group convicts while corrupt members < n/3 = 3,\n", n)
	fmt.Println("and stalls at 3 — the exact threshold the SAN model's enabling")
	fmt.Println("predicates (3·corrupt < active) encode.")
}
