// Live RSM demo: runs the model's stochastic attack process against a real
// message-passing replica group and narrates one replication event by
// event — corruptions, convictions, exclusions, recoveries — probing the
// live service after each one, then estimates availability and reliability
// over many replications and compares them with the model oracle evaluated
// on the same trajectories. The empirical measures of the service a client
// actually receives are the quantities the SAN model predicts; this is the
// fourth arm of integrity.CrossCheck in miniature.
package main

import (
	"context"
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/rng"
	"ituaval/internal/rsm"
	"ituaval/internal/rsm/inject"
)

func params() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 1
	p.RepsPerApp = 4
	return p
}

func main() {
	const T = 6.0
	p := params()
	fmt.Printf("topology: %d domains x %d hosts, one app with %d replicas, horizon %gh\n\n",
		p.NumDomains, p.HostsPerDomain, p.RepsPerApp, T)

	// Part 1: one replication, narrated. The injector drives the attack
	// CTMC; its hooks mutate nothing here — we just print them — and after
	// every event we report the model's improper-service predicate.
	fmt.Println("one attack trajectory (seed 42):")
	hooks := inject.Hooks{
		StartReplica:   func(a, slot, host int) { fmt.Printf("    start replica %d on host %d\n", slot, host) },
		CorruptReplica: func(a, slot int) { fmt.Printf("    CORRUPT replica %d\n", slot) },
		ConvictReplica: func(a, slot int) { fmt.Printf("    convict replica %d (script masked)\n", slot) },
		KillReplica:    func(a, slot int) { fmt.Printf("    kill replica %d\n", slot) },
		ExcludeHost:    func(host int) { fmt.Printf("    exclude host %d\n", host) },
	}
	proc, err := inject.New(p, rng.New(42), hooks)
	if err != nil {
		panic(err)
	}
	now := 0.0
	for {
		dt, fired := proc.Step(T - now)
		now += dt
		if !fired {
			break
		}
		status := "proper"
		if proc.Improper(0) {
			status = "IMPROPER"
		}
		fmt.Printf("  t=%5.2fh  running=%d undet=%d  service %s\n",
			now, proc.Running(0), proc.Undet(0), status)
	}
	fmt.Printf("  horizon: Byzantine failure latched: %v\n\n", proc.Byzantine(0))

	// Part 2: the measurement. rsm.Run wires the same injector to live
	// replicas running Bracha broadcast over the in-process transport, with
	// a synthetic client probing after every event.
	fmt.Println("measuring the live service (400 replications)...")
	res, err := rsm.Run(context.Background(), rsm.Spec{Params: p, T: T, Reps: 400, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  %d client probes across %d replications, %d failed\n",
		res.Probes, res.Reps, res.Failed)
	fmt.Printf("  %-28s %8s %10s\n", "", "live", "oracle")
	fmt.Printf("  %-28s %8.4f %10.4f\n", "unavailability",
		res.Unavail.Mean(), res.PredUnavail.Mean())
	fmt.Printf("  %-28s %8.4f %10.4f\n", "unreliability",
		res.Unrel.Mean(), res.PredUnrel.Mean())
	fmt.Printf("  probe-vs-oracle divergences: %d (the Collude adversary realizes\n", res.Divergences)
	fmt.Println("  the model's worst case exactly, so live == oracle event for event)")
}
