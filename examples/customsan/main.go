// Custom SAN: builds a small intrusion-tolerance model from scratch with
// the composition API (Replicate/scoped sharing), the way Section 3 of the
// paper composes Replica/Host/Management submodels in Möbius. The model is
// a triple-redundant sensor with a voter: sensors fail under attack
// (detected with some probability), a repair crew restarts convicted
// sensors, and the system is "up" while at least two sensors agree.
package main

import (
	"fmt"
	"log"
	"os"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

const (
	numSensors = 3
	attackRate = 0.4
	detectRate = 2.0
	detectProb = 0.85
	repairRate = 1.5
)

func main() {
	m := san.NewModel("voted-sensors")
	root := san.Root(m)

	// Shared across all sensor submodels: the count of healthy sensors and
	// the repair queue.
	healthy := root.Place("healthy", numSensors)
	repairQ := root.Place("repair_queue", 0)

	// The sensor template: an atomic submodel instantiated once per sensor
	// (a Möbius Rep node sharing "healthy" and "repair_queue").
	sensor := func(sc *san.Scope) {
		compromised := sc.Place("compromised", 0)
		h := sc.Shared("healthy")
		q := sc.Shared("repair_queue")
		sc.Activity(san.ActivityDef{
			Name: "attack", Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(attackRate) },
			Enabled: func(s *san.State) bool { return s.Get(compromised) == 0 && s.Get(h) > 0 },
			Reads:   []*san.Place{compromised, h},
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				ctx.State.Set(compromised, 1)
				ctx.State.Add(h, -1)
			}}},
		})
		sc.Activity(san.ActivityDef{
			Name: "detect", Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(detectRate) },
			Enabled: func(s *san.State) bool { return s.Get(compromised) == 1 },
			Reads:   []*san.Place{compromised},
			Cases: []san.Case{
				{Name: "caught", Prob: detectProb, Effect: func(ctx *san.Context) {
					ctx.State.Set(compromised, 2) // convicted, awaiting repair
					ctx.State.Add(q, 1)
				}},
				{Name: "missed", Prob: 1 - detectProb}, // stays silently corrupt
			},
		})
		sc.Activity(san.ActivityDef{
			Name: "repair", Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(repairRate) },
			Enabled: func(s *san.State) bool { return s.Get(compromised) == 2 },
			Reads:   []*san.Place{compromised},
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				ctx.State.Set(compromised, 0)
				ctx.State.Add(q, -1)
				ctx.State.Add(h, 1)
			}}},
		})
	}
	san.Replicate(root, "sensor", numSensors, []string{"healthy", "repair_queue"}, sensor)

	if err := m.Finalize(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Summary())

	// Measures: availability of the 2-of-3 vote and expected repair load.
	const T = 24.0
	up := func(s *san.State) float64 {
		if s.Get(healthy) >= 2 {
			return 1
		}
		return 0
	}
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "2-of-3 availability over 24h", F: up, From: 0, To: T},
		&reward.TimeAverage{VarName: "mean repair queue", F: func(s *san.State) float64 {
			return float64(s.Get(repairQ))
		}, From: 0, To: T},
		&reward.FirstPassage{VarName: "P(vote ever lost in 24h)", Pred: func(s *san.State) bool {
			return s.Get(healthy) < 2
		}, By: T},
	}
	res, err := sim.Run(sim.Spec{Model: m, Until: T, Reps: 4000, Seed: 5, Vars: vars})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vars {
		fmt.Println(" ", res.MustGet(v.Name()))
	}

	// Bonus: dump the structure for Graphviz (stderr keeps stdout clean).
	fmt.Fprintln(os.Stderr, "-- DOT structure on stderr --")
	if err := san.WriteDOT(os.Stderr, m); err != nil {
		log.Fatal(err)
	}
}
