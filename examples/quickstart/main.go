// Quickstart: build the paper's baseline ITUA model (12 hosts in 12
// domains, 4 applications with 7 replicas each, domain exclusion), simulate
// 5 hours of autonomous operation under attack, and print the headline
// intrusion-tolerance measures.
package main

import (
	"fmt"
	"log"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

func main() {
	// 1. Configure the system under study. DefaultParams carries the
	//    paper's attacker and detection parameters (3 successful attacks/h,
	//    2 false alarms/h, 80/15/5 attack classes, per-class detection
	//    probabilities, attack spread, corruption multiplier).
	p := core.DefaultParams()
	p.NumDomains = 12
	p.HostsPerDomain = 1
	p.NumApps = 4
	p.RepsPerApp = 7

	// 2. Build the composed stochastic activity network.
	m, err := core.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.SAN.Summary())

	// 3. Define the measures of interest (reward variables).
	const T = 5.0
	vars := []reward.Var{
		m.Unavailability("unavailability [0,5h]", 0, 0, T),
		m.Unreliability("unreliability [0,5h]", 0, T),
		m.ReplicasRunning("replicas running at 5h", 0, T),
		m.FracDomainsExcluded("domains excluded at 5h", T),
	}

	// 4. Run 2000 independent replications in parallel.
	res, err := sim.Run(sim.Spec{
		Model: m.SAN,
		Until: T,
		Reps:  2000,
		Seed:  42,
		Vars:  vars,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report point estimates with 95% confidence intervals.
	for _, v := range vars {
		fmt.Println(" ", res.MustGet(v.Name()))
	}
}
