// Package ituaval is the public facade of the ITUA probabilistic-validation
// library, a from-scratch Go reproduction of Singh, Cukier & Sanders,
// "Probabilistic Validation of an Intrusion-Tolerant Replication System"
// (DSN 2003).
//
// The implementation lives in internal packages; this package re-exports
// the surface a downstream user needs:
//
//   - Params/Build: configure and build the composed SAN model of the ITUA
//     replication system (internal/core);
//   - Measures on the built model: unavailability, unreliability, replicas
//     running, load per host, fraction of corrupt hosts in an excluded
//     domain, fraction of excluded domains;
//   - Simulate: replicated discrete-event simulation with confidence
//     intervals (internal/sim + internal/reward);
//   - RunExperiment: the pre-canned paper studies and ablations
//     (internal/study);
//   - DirectRun: the independent direct simulator used for
//     cross-validation (internal/ituadirect).
//
// For full control (custom SAN models, the numerical CTMC solver, custom
// reward variables) see the internal packages; they are documented and
// tested as the real API of the repository.
package ituaval

import (
	"context"
	"io"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/sim"
	"ituaval/internal/study"
)

// Params configures the ITUA model; see internal/core.Params for the full
// field documentation.
type Params = core.Params

// Model is the built, composed ITUA SAN with its measure constructors.
type Model = core.Model

// Policy selects the management algorithm.
type Policy = core.Policy

// Management policies.
const (
	DomainExclusion = core.DomainExclusion
	HostExclusion   = core.HostExclusion
)

// DefaultParams returns the paper's baseline attacker/detection
// configuration; topology fields must be set by the caller.
func DefaultParams() Params { return core.DefaultParams() }

// Build constructs and finalizes the composed ITUA model.
func Build(p Params) (*Model, error) { return core.Build(p) }

// Var is a reward variable (measure) evaluated per replication.
type Var = reward.Var

// Estimate is a point estimate with a 95% confidence half-width.
type Estimate = sim.Estimate

// SimSpec configures a replicated simulation; see internal/sim.Spec.
type SimSpec = sim.Spec

// SimResults holds aggregated estimates; see internal/sim.Results.
type SimResults = sim.Results

// Simulate runs a replicated terminating simulation.
func Simulate(spec SimSpec) (*SimResults, error) { return sim.Run(spec) }

// SimulateContext is Simulate with cooperative cancellation: cancelling ctx
// stops the study and returns the partial results accumulated so far
// alongside ctx.Err(). Replications that panic, overrun spec.RepDeadline,
// or exhaust their firing budget are isolated and recorded in
// Results.Failures with the seed that reproduces them.
func SimulateContext(ctx context.Context, spec SimSpec) (*SimResults, error) {
	return sim.RunContext(ctx, spec)
}

// ReplicationError describes one failed replication (panic, watchdog
// deadline, or firing budget) with enough information to reproduce it.
type ReplicationError = sim.ReplicationError

// Replay re-executes a single replication of spec deterministically and
// returns its failure (nil if it completes cleanly). Use it to reproduce a
// failure recorded in SimResults.Failures under a debugger.
func Replay(spec SimSpec, rep int) *ReplicationError { return sim.Replay(spec, rep) }

// StudyConfig controls experiment effort (replications, seed, workers).
type StudyConfig = study.Config

// Figure is a reproduced paper figure (panels of series with CIs).
type Figure = study.Figure

// Experiments returns the registered experiment ids (fig3, fig4, fig5,
// xval, numval, abl-*).
func Experiments() []string { return study.IDs() }

// RunExperiment reproduces one registered experiment.
func RunExperiment(id string, cfg StudyConfig) (*Figure, error) { return study.Run(id, cfg) }

// RunExperimentContext is RunExperiment with cooperative cancellation. With
// cfg.Checkpoint set, every completed sweep point is persisted before the
// next begins, so an interrupted experiment can be resumed bit-identically.
func RunExperimentContext(ctx context.Context, id string, cfg StudyConfig) (*Figure, error) {
	return study.RunContext(ctx, id, cfg)
}

// StudyCheckpoint persists completed sweep points for resumable studies.
type StudyCheckpoint = study.Checkpoint

// OpenStudyCheckpoint opens (resume=true: loads) a checkpoint file to pass
// as StudyConfig.Checkpoint.
func OpenStudyCheckpoint(path string, resume bool) (*StudyCheckpoint, error) {
	return study.OpenCheckpoint(path, resume)
}

// WriteFigureText renders a figure as aligned text tables.
func WriteFigureText(w io.Writer, f *Figure) error { return f.WriteText(w) }

// DirectResult is a single replication of the independent direct simulator.
type DirectResult = ituadirect.Result

// DirectRun executes one replication of the direct (non-SAN) ITUA
// simulator, used to cross-validate the SAN model.
func DirectRun(p Params, seed uint64, horizons []float64) (DirectResult, error) {
	return ituadirect.Run(p, rng.New(seed), horizons)
}

// DirectRunContext is DirectRun with cooperative cancellation and panic
// isolation (a panicking run returns an error instead of crashing).
func DirectRunContext(ctx context.Context, p Params, seed uint64, horizons []float64) (DirectResult, error) {
	return ituadirect.RunContext(ctx, p, rng.New(seed), horizons)
}
