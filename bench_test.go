// Benchmarks regenerating every figure panel of the paper's evaluation
// (Figures 3, 4, and 5, four panels each), the cross-validation and
// ablation experiments, and the performance of the underlying engines.
//
// The figure benches run the full sweep behind the panel at a reduced
// replication count and report the panel's first/last series values as
// custom metrics, so `go test -bench` both exercises and summarizes every
// reproduced result. cmd/figures regenerates the same panels at full
// statistical quality.
package ituaval_test

import (
	"testing"

	"ituaval"
	"ituaval/internal/core"
	"ituaval/internal/mc"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
	"ituaval/internal/study"
)

const benchReps = 100 // replications per sweep point in figure benches

// benchFigure regenerates the whole sweep behind a figure at reduced
// statistical effort; each iteration is one full regeneration, so ns/op is
// the honest cost of reproducing the result.
func benchFigure(b *testing.B, id string) *study.Figure {
	b.Helper()
	f, err := study.Run(id, study.Config{Reps: benchReps, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// benchPanel regenerates the figure per iteration and reports the panel's
// primary series endpoints as custom metrics.
func benchPanel(b *testing.B, figID string, panelIdx int) {
	var fig *study.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, figID)
	}
	p := fig.Panels[panelIdx]
	s := p.Series[len(p.Series)-1]
	b.ReportMetric(s.Y[0], "y_first")
	b.ReportMetric(s.Y[len(s.Y)-1], "y_last")
}

// --- Figure 3: distributions of 12 hosts into domains (Section 4.1) ---

func BenchmarkFig3aUnavailability(b *testing.B)  { benchPanel(b, "fig3", 0) }
func BenchmarkFig3bUnreliability(b *testing.B)   { benchPanel(b, "fig3", 1) }
func BenchmarkFig3cCorruptFraction(b *testing.B) { benchPanel(b, "fig3", 2) }
func BenchmarkFig3dDomainsExcluded(b *testing.B) { benchPanel(b, "fig3", 3) }

// --- Figure 4: 10 domains with growing hosts per domain (Section 4.2) ---

func BenchmarkFig4aUnavailability(b *testing.B)  { benchPanel(b, "fig4", 0) }
func BenchmarkFig4bUnreliability(b *testing.B)   { benchPanel(b, "fig4", 1) }
func BenchmarkFig4cCorruptFraction(b *testing.B) { benchPanel(b, "fig4", 2) }
func BenchmarkFig4dDomainsExcluded(b *testing.B) { benchPanel(b, "fig4", 3) }

// --- Figure 5: exclusion policies under attack spread (Section 4.3) ---

func BenchmarkFig5aUnavailability5h(b *testing.B)  { benchPanel(b, "fig5", 0) }
func BenchmarkFig5bUnavailability10h(b *testing.B) { benchPanel(b, "fig5", 1) }
func BenchmarkFig5cUnreliability5h(b *testing.B)   { benchPanel(b, "fig5", 2) }
func BenchmarkFig5dUnreliability10h(b *testing.B)  { benchPanel(b, "fig5", 3) }

// --- Cross-validation and ablations (DESIGN.md X1-X5) ---

func BenchmarkCrossValidation(b *testing.B) {
	var fig *study.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, "xval")
	}
	b.ReportMetric(study.MaxAbsGap(fig.Panels[0]), "max_gap_unavail")
	b.ReportMetric(study.MaxAbsGap(fig.Panels[1]), "max_gap_unrel")
}

func BenchmarkNumericalValidation(b *testing.B) {
	var fig *study.Figure
	for i := 0; i < b.N; i++ {
		fig = benchFigure(b, "numval")
	}
	b.ReportMetric(study.MaxAbsGap(fig.Panels[0]), "max_gap")
}

func BenchmarkAblationDetectionRate(b *testing.B) { benchPanel(b, "abl-detect", 0) }
func BenchmarkAblationRateSplit(b *testing.B)     { benchPanel(b, "abl-split", 0) }
func BenchmarkAblationConviction(b *testing.B)    { benchPanel(b, "abl-convict", 0) }

// --- Engine performance ---

func baselineParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 10
	p.HostsPerDomain = 3
	p.NumApps = 4
	p.RepsPerApp = 7
	return p
}

// BenchmarkModelBuild measures construction+finalization of the composed
// ITUA SAN (351+ places, 264+ activities at the baseline size).
func BenchmarkModelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(baselineParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationDomainExclusion measures one 10-hour replication of
// the baseline model under domain exclusion.
func BenchmarkReplicationDomainExclusion(b *testing.B) {
	benchReplication(b, core.DomainExclusion)
}

// BenchmarkReplicationHostExclusion is the host-exclusion variant.
func BenchmarkReplicationHostExclusion(b *testing.B) {
	benchReplication(b, core.HostExclusion)
}

func benchReplication(b *testing.B, policy core.Policy) {
	p := baselineParams()
	p.Policy = policy
	m, err := core.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(m.SAN, false)
	root := rng.New(1)
	b.ResetTimer()
	firings := int64(0)
	for i := 0; i < b.N; i++ {
		if err := eng.RunOnce(10, root.Derive(uint64(i)), nil, 0); err != nil {
			b.Fatal(err)
		}
		firings += eng.Firings()
	}
	b.ReportMetric(float64(firings)/float64(b.N), "firings/rep")
}

// BenchmarkDirectReplication measures the independent SSA simulator on the
// same configuration.
func BenchmarkDirectReplication(b *testing.B) {
	p := baselineParams()
	for i := 0; i < b.N; i++ {
		if _, err := ituaval.DirectRun(p, uint64(i), []float64{10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEventThroughput measures raw event throughput on the
// M/M/1/K workhorse model.
func BenchmarkEngineEventThroughput(b *testing.B) {
	m := san.NewModel("mm1k")
	q := m.Place("q", 0)
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(2) },
		Enabled: func(s *san.State) bool { return s.Int(q) < 10 },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "serve", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(3) },
		Enabled: func(s *san.State) bool { return s.Get(q) > 0 },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, -1) }}},
	})
	if err := m.Finalize(); err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(m, false)
	root := rng.New(3)
	b.ResetTimer()
	events := int64(0)
	for i := 0; i < b.N; i++ {
		if err := eng.RunOnce(1000, root.Derive(uint64(i)), nil, 0); err != nil {
			b.Fatal(err)
		}
		events += eng.Firings()
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkCTMCGenerate measures state-space generation on a reduced
// all-exponential model.
func BenchmarkCTMCGenerate(b *testing.B) {
	m := san.NewModel("grid")
	x := m.Place("x", 0)
	y := m.Place("y", 0)
	const cap = 30
	add := func(name string, p *san.Place, rate float64, delta san.Marking, limit func(*san.State) bool) {
		m.AddActivity(san.ActivityDef{
			Name: name, Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(rate) },
			Enabled: limit,
			Reads:   []*san.Place{x, y},
			Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(p, delta) }}},
		})
	}
	add("xi", x, 1.0, 1, func(s *san.State) bool { return s.Int(x) < cap })
	add("xd", x, 2.0, -1, func(s *san.State) bool { return s.Get(x) > 0 })
	add("yi", y, 1.5, 1, func(s *san.State) bool { return s.Int(y) < cap })
	add("yd", y, 2.5, -1, func(s *san.State) bool { return s.Get(y) > 0 })
	if err := m.Finalize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := mc.Generate(m, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if c.NumStates() != (cap+1)*(cap+1) {
			b.Fatalf("states = %d", c.NumStates())
		}
	}
}

// BenchmarkRewardObservers measures the overhead of the full paper measure
// set on one replication.
func BenchmarkRewardObservers(b *testing.B) {
	p := baselineParams()
	m, err := core.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	vars := []reward.Var{
		m.Unavailability("u", 0, 0, 10),
		m.Unreliability("r", 0, 10),
		m.FracDomainsExcluded("e", 10),
		m.FracCorruptHostsAtExclusion("cf", 10),
		m.LoadPerHost("load", 10),
	}
	eng := sim.NewEngine(m.SAN, false)
	root := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := make([]reward.Observer, len(vars))
		for j, v := range vars {
			obs[j] = v.NewObserver()
		}
		if err := eng.RunOnce(10, root.Derive(uint64(i)), obs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
