# Tier-1 verification lanes. `make ci` is what a change must keep green:
#   vet    static analysis of every package
#   build  the library, the three binaries, and the examples
#   test   the full suite (unit, property, cross-implementation, vs-analytic)
#   race   the concurrency-heavy packages (parallel runner, checkpointing)
#          under the race detector
GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/study/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
