# Tier-1 verification lanes. `make ci` is what a change must keep green:
#   vet    static analysis of every package
#   build  the library, the three binaries, and the examples
#   test   the full suite (unit, property, cross-implementation, vs-analytic)
#   race   the concurrency-heavy packages (parallel runner, checkpointing)
#          under the race detector
# Self-checking lanes (also run in CI):
#   lint-models  static SAN lint over every registered study model shape
#   fuzz-smoke   short fuzz runs of the checkpoint decoder, the
#                stats/rng constructors, and the scenario DSL decoder
#   serve-smoke  end-to-end smoke of the ituad job server: two concurrent
#                jobs stream to completion over a real socket, a
#                resubmission is a byte-identical cache hit, and the cache
#                survives a SIGTERM restart
#   crosscheck   full cross-engine validation (SAN engine vs the
#                independent direct simulator), heavier than the smoke
#                variant that runs inside `make test`
#   livecheck    full live validation (model vs a real fault-injected
#                replica group, the fourth CrossCheck arm), heavier than
#                the four-arm smoke variant inside `make test`
#   faultcheck   full environment-fault cross-check (partitions, attack
#                campaigns, bounded repair crew active in every engine:
#                SAN vs direct vs live vs exact), heavier than the
#                fault smoke variant inside `make test`
#   lumpcheck    symmetry-lumping gate: exhaustive lumped-vs-full
#                equivalence over every study model shape plus the
#                4x2 lumped-anchor cross-check, heavier than the
#                two-configuration equivalence test inside `make test`
GO ?= go

.PHONY: ci vet build test race bench bench-json bench-mc perf-smoke lint-models fuzz-smoke serve-smoke crosscheck livecheck faultcheck lumpcheck

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/study/... ./internal/precision/... ./internal/mc/... ./internal/exact/... ./internal/rsm/... ./internal/server/... ./internal/scenario/...

lint-models:
	$(GO) test ./internal/study -run TestLintRegisteredModels -count=1

fuzz-smoke:
	$(GO) test ./internal/study -run '^$$' -fuzz FuzzCheckpointLine -fuzztime 10s
	$(GO) test ./internal/rng -run '^$$' -fuzz FuzzNewEmpirical -fuzztime 10s
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzQuantile -fuzztime 10s
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzBatchMeans -fuzztime 10s
	$(GO) test ./internal/san -run '^$$' -fuzz FuzzMarkingKey -fuzztime 10s
	$(GO) test ./internal/rsm -run '^$$' -fuzz FuzzWireMsg -fuzztime 10s
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzParse -fuzztime 10s
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzCanonicalKey -fuzztime 10s

serve-smoke:
	SERVE_SMOKE=1 $(GO) test ./internal/server -run TestServeSmoke -count=1 -v -timeout 5m

crosscheck:
	CROSSCHECK_FULL=1 $(GO) test ./internal/integrity -run TestCrossCheckFull -count=1 -v

livecheck:
	LIVECHECK_FULL=1 $(GO) test ./internal/integrity -run TestCrossCheckLiveFull -count=1 -v -timeout 30m

faultcheck:
	FAULTCHECK_FULL=1 $(GO) test ./internal/integrity -run TestCrossCheckFaultsFull -count=1 -v -timeout 30m

# lumpcheck is the symmetry-lumping gate: the exhaustive lumped-vs-full
# equivalence sweep over every registered study model shape (worker
# counts 1 and 4, agreement to 1e-12), plus the 4-domain x 2-host anchor
# cross-check — a topology whose full chain is far beyond the default
# MaxStates, solved exactly on the quotient and required to land inside
# the SAN and direct simulators' confidence-interval union.
lumpcheck:
	LUMPCHECK_FULL=1 $(GO) test ./internal/exact -run TestLumpedEquivalenceShapes -count=1 -v -timeout 30m
	LUMPCHECK_FULL=1 $(GO) test ./internal/integrity -run TestCrossCheckLumpedAnchor -count=1 -v -timeout 30m

bench:
	$(GO) test -bench=. -benchmem -run=^$$ . ./internal/sim ./internal/mc

# bench-json runs the benchmark suite and archives the results as
# BENCH_<date>.json (name, ns/op, reps, allocation stats, custom metrics)
# for diffing across commits. See cmd/benchjson. Set BENCHJSON_FLAGS to
# pass options through, e.g.
#   make bench-json BENCHJSON_FLAGS='-o BENCH_PR4.json -baseline BENCH_old.json'
# to write a named report embedding a before/after comparison.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . ./internal/sim ./internal/mc | $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS)

# bench-mc runs only the analytic-path (state-space generation +
# uniformization) benchmarks — including the ITUA full-vs-lumped pair —
# and writes BENCH_PR9.json with the speedup over the checked-in
# pre-lumping baseline BENCH_PR9_baseline.json.
bench-mc:
	$(GO) test -bench 'BenchmarkMC' -benchmem -timeout 40m -run=^$$ ./internal/mc | \
		$(GO) run ./cmd/benchjson -o BENCH_PR9.json -baseline BENCH_PR9_baseline.json

# perf-smoke is the fast CI lane: one iteration of the engine hot-path
# benchmarks plus one full figure panel, enough to catch a build break or a
# gross allocation regression without the cost of the full suite.
perf-smoke:
	$(GO) test -bench 'BenchmarkEngine(Step|Replication)' -benchtime 1x -benchmem -run=^$$ ./internal/sim
	$(GO) test -bench 'BenchmarkFig3aUnavailability' -benchtime 1x -benchmem -run=^$$ .
