# Tier-1 verification lanes. `make ci` is what a change must keep green:
#   vet    static analysis of every package
#   build  the library, the three binaries, and the examples
#   test   the full suite (unit, property, cross-implementation, vs-analytic)
#   race   the concurrency-heavy packages (parallel runner, checkpointing)
#          under the race detector
# Self-checking lanes (also run in CI):
#   lint-models  static SAN lint over every registered study model shape
#   fuzz-smoke   short fuzz runs of the checkpoint decoder and the
#                stats/rng constructors
#   crosscheck   full cross-engine validation (SAN engine vs the
#                independent direct simulator), heavier than the smoke
#                variant that runs inside `make test`
GO ?= go

.PHONY: ci vet build test race bench bench-json lint-models fuzz-smoke crosscheck

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/study/... ./internal/precision/...

lint-models:
	$(GO) test ./internal/study -run TestLintRegisteredModels -count=1

fuzz-smoke:
	$(GO) test ./internal/study -run '^$$' -fuzz FuzzCheckpointLine -fuzztime 10s
	$(GO) test ./internal/rng -run '^$$' -fuzz FuzzNewEmpirical -fuzztime 10s
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzQuantile -fuzztime 10s
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzBatchMeans -fuzztime 10s

crosscheck:
	CROSSCHECK_FULL=1 $(GO) test ./internal/integrity -run TestCrossCheckFull -count=1 -v

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite and archives the results as
# BENCH_<date>.json (name, ns/op, reps, allocation stats, custom metrics)
# for diffing across commits. See cmd/benchjson.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson
