# Tier-1 verification lanes. `make ci` is what a change must keep green:
#   vet    static analysis of every package
#   build  the library, the three binaries, and the examples
#   test   the full suite (unit, property, cross-implementation, vs-analytic)
#   race   the concurrency-heavy packages (parallel runner, checkpointing)
#          under the race detector
GO ?= go

.PHONY: ci vet build test race bench bench-json

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/study/... ./internal/precision/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite and archives the results as
# BENCH_<date>.json (name, ns/op, reps, allocation stats, custom metrics)
# for diffing across commits. See cmd/benchjson.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson
