package san

import (
	"strings"
	"testing"

	"ituaval/internal/rng"
)

// buildSimple creates a model with one place and one timed activity that
// moves a token from src to dst.
func buildSimple(t *testing.T) (*Model, *Place, *Place) {
	t.Helper()
	m := NewModel("simple")
	src := m.Place("src", 1)
	dst := m.Place("dst", 0)
	m.AddActivity(ActivityDef{
		Name:    "move",
		Kind:    Timed,
		Dist:    func(*State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *State) bool { return s.Get(src) > 0 },
		Reads:   []*Place{src},
		Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
			ctx.State.Add(src, -1)
			ctx.State.Add(dst, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, src, dst
}

func TestModelBasics(t *testing.T) {
	m, src, dst := buildSimple(t)
	s := m.NewState()
	if s.Get(src) != 1 || s.Get(dst) != 0 {
		t.Fatal("initial marking wrong")
	}
	a := m.ActivityByName("move")
	if a == nil || !a.Enabled(s) {
		t.Fatal("move should be enabled")
	}
	a.Fire(&Context{State: s}, 0)
	if s.Get(src) != 0 || s.Get(dst) != 1 {
		t.Fatal("firing did not move token")
	}
	if a.Enabled(s) {
		t.Fatal("move should be disabled after firing")
	}
}

func TestStateDirtyTracking(t *testing.T) {
	m, src, dst := buildSimple(t)
	s := m.NewState()
	s.ResetDirty()
	s.Set(src, 1) // no-op write must not dirty
	if len(s.Dirty()) != 0 {
		t.Fatal("no-op write marked dirty")
	}
	s.Set(dst, 5)
	s.Set(dst, 6)
	if d := s.Dirty(); len(d) != 1 || d[0] != dst.Index() {
		t.Fatalf("dirty = %v", s.Dirty())
	}
	s.ResetDirty()
	if len(s.Dirty()) != 0 {
		t.Fatal("ResetDirty did not clear")
	}
}

func TestNegativeMarkingPanics(t *testing.T) {
	m, src, _ := buildSimple(t)
	s := m.NewState()
	defer func() {
		if recover() == nil {
			t.Fatal("negative marking did not panic")
		}
	}()
	s.Add(src, -2)
}

func TestStateKeyDistinguishesMarkings(t *testing.T) {
	m, src, dst := buildSimple(t)
	s1 := m.NewState()
	s2 := m.NewState()
	if s1.Key() != s2.Key() {
		t.Fatal("equal markings produced different keys")
	}
	s2.Set(src, 0)
	s2.Set(dst, 1)
	if s1.Key() == s2.Key() {
		t.Fatal("different markings produced equal keys")
	}
}

func TestCopyFrom(t *testing.T) {
	m, src, dst := buildSimple(t)
	s1 := m.NewState()
	s2 := m.NewState()
	s1.Set(src, 0)
	s1.Set(dst, 7)
	s2.CopyFrom(s1)
	if s2.Get(dst) != 7 || s2.Get(src) != 0 {
		t.Fatal("CopyFrom did not copy")
	}
	if len(s2.Dirty()) != 0 {
		t.Fatal("CopyFrom left dirty bits")
	}
}

func TestFinalizeValidation(t *testing.T) {
	cases := []struct {
		name string
		def  ActivityDef
		want string
	}{
		{"no name", ActivityDef{Kind: Timed}, "has no name"},
		{"bad kind", ActivityDef{Name: "a"}, "invalid kind"},
		{"no dist", ActivityDef{Name: "a", Kind: Timed}, "no distribution"},
		{"no predicate", ActivityDef{Name: "a", Kind: Instant}, "no enabling predicate"},
		{"no cases", ActivityDef{Name: "a", Kind: Instant, Enabled: func(*State) bool { return false }}, "no cases"},
		{"no reads", ActivityDef{
			Name: "a", Kind: Instant,
			Enabled: func(*State) bool { return false },
			Cases:   []Case{{Prob: 1}},
		}, "no read dependencies"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewModel("bad")
			m.AddActivity(c.def)
			err := m.Finalize()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Finalize error = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestFinalizeRejectsNegativeCaseProb(t *testing.T) {
	m := NewModel("bad")
	p := m.Place("p", 0)
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: -0.5}, {Prob: 1.5}},
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "negative probability") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsDuplicateActivity(t *testing.T) {
	m := NewModel("dup")
	p := m.Place("p", 0)
	def := ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 1}},
	}
	m.AddActivity(def)
	m.AddActivity(def)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "duplicate activity") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsForeignPlace(t *testing.T) {
	other := NewModel("other")
	foreign := other.Place("p", 0)
	m := NewModel("m")
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{foreign},
		Cases:   []Case{{Prob: 1}},
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "another model") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsDuplicatePlace(t *testing.T) {
	m := NewModel("m")
	p := m.Place("p", 0)
	m.Place("p", 1) // deferred: reported by Finalize, not a panic
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 1}},
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), `duplicate place name "p"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsNegativeInitialMarking(t *testing.T) {
	m := NewModel("m")
	p := m.Place("p", -3)
	if p.Initial() != 0 {
		t.Fatalf("negative init not clamped: %d", p.Initial())
	}
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "negative initial marking") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsNegativeBound(t *testing.T) {
	m := NewModel("m")
	p := m.Place("p", 0)
	m.Bound(p, -1)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "negative bound") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsNonPositiveCaseTotal(t *testing.T) {
	m := NewModel("bad")
	p := m.Place("p", 0)
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 0}, {Prob: 0}},
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "non-positive total case probability") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsNilReadPlace(t *testing.T) {
	m := NewModel("bad")
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{nil},
		Cases:   []Case{{Prob: 1}},
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "nil place in Reads") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeRejectsNegativeWeight(t *testing.T) {
	m := NewModel("bad")
	p := m.Place("p", 0)
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(*State) bool { return false },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 1}},
		Weight:  -1,
	})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "negative weight") {
		t.Fatalf("err = %v", err)
	}
}

func TestFinalizeTwiceErrors(t *testing.T) {
	m, _, _ := buildSimple(t)
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "already finalized") {
		t.Fatalf("err = %v", err)
	}
}

func TestObserveAndBound(t *testing.T) {
	m := NewModel("m")
	p := m.Place("p", 2)
	q := m.Place("q", 0)
	m.Observe(p)
	m.Bound(p, 5)
	if !m.Observed(p) || m.Observed(q) {
		t.Fatal("Observed wrong")
	}
	if b, ok := m.BoundOf(p); !ok || b != 5 {
		t.Fatalf("BoundOf(p) = %d, %v", b, ok)
	}
	if _, ok := m.BoundOf(q); ok {
		t.Fatal("q should have no bound")
	}
}

func TestDependencyIndex(t *testing.T) {
	m := NewModel("deps")
	p1 := m.Place("p1", 0)
	p2 := m.Place("p2", 0)
	a := m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(s *State) bool { return s.Get(p1) > 0 },
		Reads:   []*Place{p1, p1}, // duplicate read should be deduplicated
		Cases:   []Case{{Prob: 1}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Dependents(p1.Index()); len(got) != 1 || got[0] != a {
		t.Fatalf("Dependents(p1) = %v", got)
	}
	if got := m.Dependents(p2.Index()); len(got) != 0 {
		t.Fatalf("Dependents(p2) = %v", got)
	}
}

func TestCaseWeightsMarkingDependent(t *testing.T) {
	m := NewModel("cw")
	p := m.Place("p", 2)
	a := m.AddActivity(ActivityDef{
		Name: "a", Kind: Timed,
		Dist:    func(*State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *State) bool { return s.Get(p) > 0 },
		Reads:   []*Place{p},
		Cases:   []Case{{Name: "x"}, {Name: "y"}},
		CaseWeights: func(s *State) []float64 {
			return []float64{float64(s.Get(p)), 1}
		},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	s := m.NewState()
	w := a.CaseWeightsIn(s)
	if w[0] != 2 || w[1] != 1 {
		t.Fatalf("weights = %v", w)
	}
}

func TestChooseCaseFrequencies(t *testing.T) {
	m := NewModel("cc")
	p := m.Place("p", 1)
	a := m.AddActivity(ActivityDef{
		Name: "a", Kind: Timed,
		Dist:    func(*State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *State) bool { return s.Get(p) > 0 },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 0.8}, {Prob: 0.15}, {Prob: 0.05}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{State: m.NewState(), Rand: rng.New(7)}
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[a.ChooseCase(ctx)]++
	}
	for i, want := range []float64{0.8, 0.15, 0.05} {
		got := float64(counts[i]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Fatalf("case %d frequency %v want %v", i, got, want)
		}
	}
}

func TestReadTraceValidation(t *testing.T) {
	m, src, _ := buildSimple(t)
	s := m.NewState()
	s.StartTrace()
	a := m.ActivityByName("move")
	a.Enabled(s)
	reads := s.StopTrace()
	if _, ok := reads[src.Index()]; !ok || len(reads) != 1 {
		t.Fatalf("trace = %v", reads)
	}
}

func TestSummaryAndSortedNames(t *testing.T) {
	m, _, _ := buildSimple(t)
	sum := m.Summary()
	if !strings.Contains(sum, "2 places") || !strings.Contains(sum, "1 timed") {
		t.Fatalf("summary = %q", sum)
	}
	names := m.SortedPlaceNames()
	if len(names) != 2 || names[0] != "dst" || names[1] != "src" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteDOT(t *testing.T) {
	m, _, _ := buildSimple(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "p:src", "a:move", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
