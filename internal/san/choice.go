package san

// Enumerable random choices. Gate effects and init hooks that need
// randomness historically called ctx.Rand directly, which is fine for
// simulation but makes the model analytically unsolvable: the numerical
// solver passes a nil stream and any draw panics. The Context methods in
// this file are the solvable alternative: in simulation they delegate to
// ctx.Rand with exactly the draw sequence the direct calls made (so
// trajectories are bit-identical and no golden result moves), while under
// the analytic Resolver every alternative is explored as a separate branch
// with its probability, turning "pick a random qualifying domain" into an
// exact probabilistic transition.

// Choose returns an index in [0, n), each equally likely. In simulation it
// draws ctx.Rand.Choose(n); under enumeration every index is a branch of
// probability 1/n. It panics if n is not positive.
func (ctx *Context) Choose(n int) int {
	if ctx.enum != nil {
		return ctx.enum.take(n, nil)
	}
	return ctx.Rand.Choose(n)
}

// ChooseWeighted returns an index distributed according to the (not
// necessarily normalized) weights. In simulation it draws
// ctx.Rand.Category(w); under enumeration every positive-weight index is a
// branch of probability w[i]/Σw. It panics if no weight is positive or any
// is negative, matching Category.
func (ctx *Context) ChooseWeighted(w []float64) int {
	if ctx.enum != nil {
		return ctx.enum.take(len(w), w)
	}
	return ctx.Rand.Category(w)
}

// Permute fills p with a uniformly random permutation of 0..len(p)-1. In
// simulation it is exactly ctx.Rand.Perm(p); under enumeration the
// Fisher–Yates swaps become nested uniform choices, so each of the n!
// permutations is a branch of probability 1/n!.
func (ctx *Context) Permute(p []int) {
	if ctx.enum == nil {
		ctx.Rand.Perm(p)
		return
	}
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := ctx.enum.take(i+1, nil)
		p[i], p[j] = p[j], p[i]
	}
}

// choicePoint records one decision made while executing an effect under
// enumeration: which alternative was taken, how many there were, and the
// weights (nil for uniform), so the driver can fork the remaining
// alternatives afterwards.
type choicePoint struct {
	taken int
	n     int
	w     []float64
}

// enumChooser implements script-replay enumeration of an effect's choice
// tree. An execution replays a prefix of decisions (script) and, past the
// script, takes the first enumerable alternative at each fresh choice
// point; the driver then re-executes the effect once per untaken
// alternative of every fresh point. prob accumulates the probability of
// the decisions along the way.
type enumChooser struct {
	script []int
	path   []choicePoint
	prob   float64
}

func (e *enumChooser) reset(script []int) {
	e.script = script
	e.path = e.path[:0]
	e.prob = 1
}

// take records one choice among n alternatives (weighted by w when
// non-nil) and returns the alternative this execution follows.
func (e *enumChooser) take(n int, w []float64) int {
	if n <= 0 {
		panic("san: enumerable choice over an empty alternative set")
	}
	idx := 0
	if len(e.path) < len(e.script) {
		idx = e.script[len(e.path)]
	} else if w != nil {
		idx = -1
		for i, wi := range w {
			if wi > 0 {
				idx = i
				break
			}
		}
	}
	p := 1 / float64(n)
	var wCopy []float64
	if w != nil {
		total := 0.0
		for _, wi := range w {
			if wi < 0 || wi != wi {
				panic("san: negative or NaN weight in enumerable choice")
			}
			total += wi
		}
		if total <= 0 || idx < 0 {
			panic("san: enumerable weighted choice with non-positive total weight")
		}
		p = w[idx] / total
		wCopy = append([]float64(nil), w...)
	}
	e.path = append(e.path, choicePoint{taken: idx, n: n, w: wCopy})
	e.prob *= p
	return idx
}
