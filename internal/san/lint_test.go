package san

import (
	"testing"

	"ituaval/internal/rng"
)

// lintClasses returns the set of classes present in findings, and the
// findings for one class.
func findingsOf(fs []LintFinding, c LintClass) []LintFinding {
	var out []LintFinding
	for _, f := range fs {
		if f.Class == c {
			out = append(out, f)
		}
	}
	return out
}

// chain builds src --move--> dst with optional extras applied before
// Finalize.
func chain(t *testing.T, init Marking, extras func(m *Model, src, dst *Place)) *Model {
	t.Helper()
	m := NewModel("chain")
	src := m.Place("src", init)
	dst := m.Place("dst", 0)
	m.AddActivity(ActivityDef{
		Name:    "move",
		Kind:    Timed,
		Dist:    func(*State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *State) bool { return s.Get(src) > 0 },
		Reads:   []*Place{src},
		Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
			ctx.State.Add(src, -1)
			ctx.State.Add(dst, 1)
		}}},
	})
	if extras != nil {
		extras(m, src, dst)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLintCleanModel(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.Bound(dst, 1)
		m.Bound(src, 1)
	})
	if fs := m.Lint(LintOptions{}); len(fs) != 0 {
		t.Fatalf("clean model produced findings: %v", fs)
	}
}

func TestLintCaseProbSum(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.AddActivity(ActivityDef{
			Name:    "skew",
			Kind:    Timed,
			Dist:    func(*State) rng.Dist { return rng.Expo(1) },
			Enabled: func(s *State) bool { return s.Get(src) > 0 },
			Reads:   []*Place{src},
			Cases:   []Case{{Prob: 0.5}, {Prob: 0.6}},
		})
	})
	fs := findingsOf(m.Lint(LintOptions{}), LintCaseProb)
	if len(fs) != 1 || fs[0].Subject != "skew" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestLintNeverEnabled(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.AddActivity(ActivityDef{
			Name:    "impossible",
			Kind:    Instant,
			Enabled: func(s *State) bool { return s.Get(src) > 100 }, // above every probe cap
			Reads:   []*Place{src},
			Cases:   []Case{{Prob: 1}},
		})
	})
	fs := findingsOf(m.Lint(LintOptions{}), LintNeverEnabled)
	if len(fs) != 1 || fs[0].Subject != "impossible" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestLintUnreachable(t *testing.T) {
	// src starts at 2 and only ever decreases, so src >= 5 is satisfiable
	// by an arbitrary marking but unreachable from the initial one.
	m := chain(t, 2, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.AddActivity(ActivityDef{
			Name:    "boom",
			Kind:    Instant,
			Enabled: func(s *State) bool { return s.Get(src) >= 5 },
			Reads:   []*Place{src},
			Cases:   []Case{{Prob: 1}},
		})
	})
	fs := findingsOf(m.Lint(LintOptions{}), LintUnreachable)
	if len(fs) != 1 || fs[0].Subject != "boom" {
		t.Fatalf("findings = %v", fs)
	}
	if ne := findingsOf(m.Lint(LintOptions{}), LintNeverEnabled); len(ne) != 0 {
		t.Fatalf("boom misclassified as never-enabled: %v", ne)
	}
}

func TestLintOrphanAndNeverRead(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Place("lonely", 1) // touched by nothing
	})
	fs := m.Lint(LintOptions{})
	if o := findingsOf(fs, LintOrphanPlace); len(o) != 1 || o[0].Subject != "lonely" {
		t.Fatalf("orphan findings = %v", o)
	}
	// dst is written by move but read by nothing and not Observe'd.
	if nr := findingsOf(fs, LintNeverRead); len(nr) != 1 || nr[0].Subject != "dst" {
		t.Fatalf("never-read findings = %v", nr)
	}
}

func TestLintObserveSuppressesNeverRead(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
	})
	if nr := findingsOf(m.Lint(LintOptions{}), LintNeverRead); len(nr) != 0 {
		t.Fatalf("Observe did not suppress never-read: %v", nr)
	}
}

func TestLintBoundExceeded(t *testing.T) {
	m := chain(t, 3, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.Bound(dst, 1) // three tokens flow into dst during walks
	})
	fs := findingsOf(m.Lint(LintOptions{}), LintBoundExceeded)
	if len(fs) != 1 || fs[0].Subject != "dst" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestLintBoundBelowInitial(t *testing.T) {
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.Bound(src, 0)
	})
	fs := findingsOf(m.Lint(LintOptions{}), LintBoundExceeded)
	if len(fs) != 1 || fs[0].Subject != "src" {
		t.Fatalf("findings = %v", fs)
	}
}

// A predicate that panics on arbitrary markings (marking used as an index)
// must not crash Lint; the model is otherwise clean.
func TestLintSurvivesPanickyPredicate(t *testing.T) {
	table := []int32{10, 20}
	m := chain(t, 1, func(m *Model, src, dst *Place) {
		m.Observe(dst)
		m.AddActivity(ActivityDef{
			Name:    "indexed",
			Kind:    Instant,
			Enabled: func(s *State) bool { return table[s.Get(dst)] > 15 }, // panics for dst > 1
			Reads:   []*Place{dst},
			Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
				ctx.State.Set(dst, 0)
			}}},
		})
	})
	fs := m.Lint(LintOptions{})
	for _, f := range fs {
		if f.Class == LintNeverEnabled && f.Subject == "indexed" {
			t.Fatalf("panicky predicate misreported: %v", f)
		}
	}
}

func TestLintDeterministic(t *testing.T) {
	build := func() *Model {
		return chain(t, 2, func(m *Model, src, dst *Place) {
			m.Place("lonely", 0)
			m.Bound(dst, 1)
		})
	}
	a := build().Lint(LintOptions{Seed: 42})
	b := build().Lint(LintOptions{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lint: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("finding %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLintBeforeFinalizePanics(t *testing.T) {
	m := NewModel("m")
	defer func() {
		if recover() == nil {
			t.Fatal("Lint before Finalize did not panic")
		}
	}()
	m.Lint(LintOptions{})
}
