package san

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the model structure in Graphviz DOT format: places as
// circles labeled with their initial markings, timed activities as thick
// vertical bars, instantaneous activities as thin bars, and edges from each
// activity to the places it declares in Reads. (Write relationships are not
// declared in the formalism — gate effects are opaque functions — so the
// graph shows the dependency structure used for incremental enabling.)
func WriteDOT(w io.Writer, m *Model) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name())
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, p := range m.Places() {
		fmt.Fprintf(&b, "  %q [shape=circle, label=%q];\n",
			"p:"+p.Name(), fmt.Sprintf("%s\\n%d", p.Name(), p.Initial()))
	}
	for _, a := range m.Activities() {
		shape := "box"
		style := "filled"
		fill := "gray70"
		if a.Kind() == Instant {
			fill = "gray30"
		}
		label := a.Name()
		if len(a.Cases()) > 1 {
			label = fmt.Sprintf("%s (%d cases)", a.Name(), len(a.Cases()))
		}
		fmt.Fprintf(&b, "  %q [shape=%s, style=%s, fillcolor=%s, height=0.6, width=0.12, label=%q];\n",
			"a:"+a.Name(), shape, style, fill, label)
		for _, p := range a.Reads() {
			fmt.Fprintf(&b, "  %q -> %q;\n", "p:"+p.Name(), "a:"+a.Name())
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
