package san

import (
	"bytes"
	"testing"
)

// FuzzMarkingKey drives the compact marking-key codec with arbitrary
// marking vectors (derived from raw bytes) and checks the two properties
// state-space interning relies on: the key round-trips through
// DecodeMarkingKey, and distinct vectors of the same length never collide
// (injectivity — here verified via the stronger decode-inverts-encode
// property plus a perturbation probe).
func FuzzMarkingKey(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Add([]byte{127, 128, 200, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m := make([]Marking, 0, len(raw)/2+1)
		for i := 0; i+1 < len(raw); i += 2 {
			// Mix widths: byte pairs give values up to 64k, occasionally
			// shifted into the high varint bands.
			v := uint32(raw[i]) | uint32(raw[i+1])<<8
			if raw[i]%7 == 0 {
				v <<= 14
			}
			m = append(m, Marking(v&0x7fffffff))
		}
		key := AppendMarkingKey(nil, m)
		dec, err := DecodeMarkingKey(key, nil)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v (markings %v)", err, m)
		}
		if len(dec) != len(m) {
			t.Fatalf("round-trip length %d != %d", len(dec), len(m))
		}
		for i := range m {
			if dec[i] != m[i] {
				t.Fatalf("round-trip mismatch at %d: %d != %d", i, dec[i], m[i])
			}
		}
		// Perturb one coordinate: the keys must differ (collision-freedom
		// for same-length vectors).
		if len(m) > 0 {
			i := int(raw[0]) % len(m)
			m2 := append([]Marking(nil), m...)
			m2[i] ^= 1
			if bytes.Equal(key, AppendMarkingKey(nil, m2)) {
				t.Fatalf("distinct markings %v and %v share a key", m, m2)
			}
		}
		// Decoding arbitrary bytes must never panic; errors are fine.
		if _, err := DecodeMarkingKey(raw, nil); err != nil {
			return
		}
	})
}
