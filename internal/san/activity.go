package san

import (
	"ituaval/internal/rng"
)

// Kind distinguishes timed activities (which complete after a random delay)
// from instantaneous activities (which complete in zero time as soon as they
// are enabled).
type Kind int

const (
	// Timed activities sample a firing delay from their distribution.
	Timed Kind = iota + 1
	// Instant activities fire immediately upon becoming enabled, before any
	// timed activity can complete.
	Instant
)

// Reactivation controls what happens to an already-scheduled timed activity
// when a marking change leaves it enabled but alters its firing
// distribution.
type Reactivation int

const (
	// ReactivateOnChange resamples the firing time whenever the
	// distribution (e.g. an exponential's marking-dependent rate) changes.
	// For exponential distributions this is exact thanks to memorylessness
	// and is the behaviour the paper's model relies on ("the rate of
	// attack_host increases linearly with the markings of ..."). This is
	// the default.
	ReactivateOnChange Reactivation = iota
	// ReactivateNever keeps the originally sampled completion time for as
	// long as the activity remains continuously enabled.
	ReactivateNever
	// ReactivateAlways resamples whenever any place in the activity's
	// dependency list changes, even if the distribution is unchanged.
	ReactivateAlways
)

// Case is one probabilistic outcome of an activity's completion, the SAN
// equivalent of a case arc feeding an output gate. Effect runs the output
// gate: it may read and write the state and (in simulation) use ctx.Rand.
type Case struct {
	// Name is optional, for diagnostics and DOT export.
	Name string
	// Prob is the static probability weight of this case (need not be
	// normalized). Ignored if the activity has a CaseWeights function.
	Prob float64
	// Effect applies the case's output gate. nil means "no state change".
	Effect func(ctx *Context)
}

// ActivityDef is the user-facing definition of an activity; Model.AddActivity
// converts it into an internal Activity.
type ActivityDef struct {
	// Name must be unique within the model.
	Name string
	// Kind is Timed or Instant.
	Kind Kind
	// Dist gives the firing-time distribution, possibly depending on the
	// marking. Required for Timed activities; ignored for Instant ones.
	Dist func(s *State) rng.Dist
	// Enabled is the conjunction of the activity's input-gate predicates.
	// Required: an activity with no predicate would never stop firing.
	Enabled func(s *State) bool
	// Reads lists every place that Enabled, Dist, or CaseWeights may read.
	// The engine re-evaluates the activity only when one of these places
	// changes; an omitted dependency is a modeling bug that the engine's
	// validation mode detects by read tracing.
	Reads []*Place
	// Input applies the input-gate marking changes at completion, before
	// the case effect. Optional.
	Input func(ctx *Context)
	// Cases are the activity's probabilistic outcomes. At least one is
	// required; a single case with Prob 1 models a deterministic outcome.
	Cases []Case
	// CaseWeights, if non-nil, computes marking-dependent case weights
	// (same length as Cases), overriding the static Prob fields.
	CaseWeights func(s *State) []float64
	// Priority orders instantaneous activities: all enabled activities of
	// the highest priority fire before lower ones. Ignored for Timed.
	Priority int
	// Weight is the race weight among enabled instantaneous activities of
	// equal priority ("equally likely to fire first" when weights are
	// equal). Zero means 1. Ignored for Timed.
	Weight float64
	// Reactivation selects the resampling policy for Timed activities.
	Reactivation Reactivation
}

// Activity is a finalized activity. Fields are read-only after
// Model.Finalize.
type Activity struct {
	def   ActivityDef
	id    int
	model *Model
	// staticW caches the static case weights (the Prob fields) when the
	// activity has no CaseWeights function; built once by Finalize so the
	// per-firing case choice allocates nothing. Never mutated afterwards.
	staticW []float64
}

// Name returns the activity name.
func (a *Activity) Name() string { return a.def.Name }

// ID returns the activity's dense index within its model.
func (a *Activity) ID() int { return a.id }

// Kind returns Timed or Instant.
func (a *Activity) Kind() Kind { return a.def.Kind }

// Priority returns the instantaneous priority.
func (a *Activity) Priority() int { return a.def.Priority }

// Weight returns the race weight (defaulted to 1).
func (a *Activity) Weight() float64 {
	if a.def.Weight == 0 {
		return 1
	}
	return a.def.Weight
}

// ReactivationPolicy returns the resampling policy.
func (a *Activity) ReactivationPolicy() Reactivation { return a.def.Reactivation }

// Enabled reports whether the activity is enabled in s.
func (a *Activity) Enabled(s *State) bool { return a.def.Enabled(s) }

// Dist returns the current firing-time distribution.
func (a *Activity) Dist(s *State) rng.Dist { return a.def.Dist(s) }

// Cases returns the case list.
func (a *Activity) Cases() []Case { return a.def.Cases }

// CaseWeightsIn returns the case weights in state s (marking-dependent if a
// CaseWeights function was given, else the static Prob values). The static
// slice is shared across calls; callers must not modify it.
func (a *Activity) CaseWeightsIn(s *State) []float64 {
	if a.def.CaseWeights != nil {
		return a.def.CaseWeights(s)
	}
	if a.staticW != nil {
		return a.staticW
	}
	w := make([]float64, len(a.def.Cases))
	for i, c := range a.def.Cases {
		w[i] = c.Prob
	}
	return w
}

// ChooseCase samples a case index according to the current weights.
func (a *Activity) ChooseCase(ctx *Context) int {
	if len(a.def.Cases) == 1 {
		return 0
	}
	return ctx.Rand.Category(a.CaseWeightsIn(ctx.State))
}

// Fire completes the activity in ctx with the chosen case: it applies the
// input-gate function and then the case's output-gate effect.
func (a *Activity) Fire(ctx *Context, caseIdx int) {
	if a.def.Input != nil {
		a.def.Input(ctx)
	}
	if eff := a.def.Cases[caseIdx].Effect; eff != nil {
		eff(ctx)
	}
}

// Reads returns the declared dependency list.
func (a *Activity) Reads() []*Place { return a.def.Reads }
