package san

import (
	"errors"
	"fmt"
	"sort"
)

// Model is a flat stochastic activity network: the result of composing
// atomic submodels through scopes. Build places and activities, then call
// Finalize before handing the model to a solver.
type Model struct {
	name       string
	places     []*Place
	placeNames map[string]*Place
	acts       []*Activity
	actNames   map[string]*Activity
	deps       [][]*Activity // place index -> activities reading it
	instants   []*Activity   // instantaneous activities, creation order
	initFn     func(ctx *Context)
	finalized  bool
	defErrs    []error         // place-construction errors deferred to Finalize
	observed   map[int]bool    // place index -> read by measures outside activities
	bounds     map[int]Marking // place index -> declared marking bound
}

// NewModel creates an empty model.
func NewModel(name string) *Model {
	return &Model{
		name:       name,
		placeNames: make(map[string]*Place),
		actNames:   make(map[string]*Activity),
		observed:   make(map[int]bool),
		bounds:     make(map[int]Marking),
	}
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Place creates a new place with the given unique name and initial marking.
// It panics if the model is finalized; a duplicate name or a negative
// initial marking is recorded and reported by Finalize, so model-building
// code stays linear (composition code should use Scope, which produces
// unique scoped names).
func (m *Model) Place(name string, init Marking) *Place {
	if m.finalized {
		panic("san: Place after Finalize")
	}
	if init < 0 {
		m.defErrs = append(m.defErrs, fmt.Errorf("place %q has negative initial marking %d", name, init))
		init = 0
	}
	if _, dup := m.placeNames[name]; dup {
		m.defErrs = append(m.defErrs, fmt.Errorf("duplicate place name %q", name))
	}
	p := &Place{name: name, index: len(m.places), init: init}
	m.places = append(m.places, p)
	m.placeNames[name] = p
	return p
}

// Observe declares that p is read from outside the activity network — by a
// reward measure, a harness, or a test — so the lint pass does not flag it
// as an orphan or never-read place.
func (m *Model) Observe(ps ...*Place) {
	for _, p := range ps {
		m.observed[p.index] = true
	}
}

// Observed reports whether p was declared Observe'd.
func (m *Model) Observed(p *Place) bool { return m.observed[p.index] }

// Bound declares that p's marking never exceeds max. The bound is
// documentation the model vouches for: the lint pass checks it against the
// initial marking and probe firings, and runtime invariant monitors (see
// internal/integrity) can enforce it on every simulated trajectory.
func (m *Model) Bound(p *Place, max Marking) {
	if max < 0 {
		m.defErrs = append(m.defErrs, fmt.Errorf("place %q declares negative bound %d", p.name, max))
		return
	}
	m.bounds[p.index] = max
}

// BoundOf returns p's declared marking bound, if any.
func (m *Model) BoundOf(p *Place) (Marking, bool) {
	b, ok := m.bounds[p.index]
	return b, ok
}

// AddActivity registers an activity definition. Errors are deferred to
// Finalize so model-building code stays linear.
func (m *Model) AddActivity(def ActivityDef) *Activity {
	if m.finalized {
		panic("san: AddActivity after Finalize")
	}
	a := &Activity{def: def, id: len(m.acts), model: m}
	m.acts = append(m.acts, a)
	return a
}

// SetInit registers a hook that runs once at time zero, before any activity
// fires, to establish the initial configuration (the paper's model does this
// with high-rate "assign_id"/"start_replica" activities; a hook is the
// direct expression). The hook may use ctx.Rand.
func (m *Model) SetInit(fn func(ctx *Context)) { m.initFn = fn }

// Init returns the initialization hook (may be nil).
func (m *Model) Init() func(ctx *Context) { return m.initFn }

// Places returns all places in creation order.
func (m *Model) Places() []*Place { return m.places }

// Activities returns all activities in creation order.
func (m *Model) Activities() []*Activity { return m.acts }

// PlaceByName returns the named place, or nil.
func (m *Model) PlaceByName(name string) *Place { return m.placeNames[name] }

// ActivityByName returns the named activity, or nil.
func (m *Model) ActivityByName(name string) *Activity { return m.actNames[name] }

// Finalize validates the model structure and builds the place→activity
// dependency index. It must be called exactly once before solving.
func (m *Model) Finalize() error {
	if m.finalized {
		return errors.New("san: model already finalized")
	}
	errs := append([]error(nil), m.defErrs...)
	seen := make(map[string]bool, len(m.acts))
	for _, a := range m.acts {
		d := &a.def
		switch {
		case d.Name == "":
			errs = append(errs, fmt.Errorf("activity %d has no name", a.id))
		case seen[d.Name]:
			errs = append(errs, fmt.Errorf("duplicate activity name %q", d.Name))
		default:
			seen[d.Name] = true
			m.actNames[d.Name] = a
		}
		if d.Kind != Timed && d.Kind != Instant {
			errs = append(errs, fmt.Errorf("activity %q has invalid kind %d", d.Name, d.Kind))
		}
		if d.Kind == Timed && d.Dist == nil {
			errs = append(errs, fmt.Errorf("timed activity %q has no distribution", d.Name))
		}
		if d.Enabled == nil {
			errs = append(errs, fmt.Errorf("activity %q has no enabling predicate", d.Name))
		}
		if len(d.Cases) == 0 {
			errs = append(errs, fmt.Errorf("activity %q has no cases", d.Name))
		}
		if d.CaseWeights == nil && len(d.Cases) > 1 {
			total := 0.0
			for _, c := range d.Cases {
				if c.Prob < 0 {
					errs = append(errs, fmt.Errorf("activity %q case %q has negative probability", d.Name, c.Name))
				}
				total += c.Prob
			}
			if total <= 0 {
				errs = append(errs, fmt.Errorf("activity %q has non-positive total case probability", d.Name))
			}
		}
		if len(d.Reads) == 0 {
			errs = append(errs, fmt.Errorf("activity %q declares no read dependencies", d.Name))
		}
		for _, p := range d.Reads {
			if p == nil {
				errs = append(errs, fmt.Errorf("activity %q has nil place in Reads", d.Name))
				continue
			}
			if p.index >= len(m.places) || m.places[p.index] != p {
				errs = append(errs, fmt.Errorf("activity %q reads place %q from another model", d.Name, p.name))
			}
		}
		if d.Weight < 0 {
			errs = append(errs, fmt.Errorf("activity %q has negative weight", d.Name))
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	m.deps = make([][]*Activity, len(m.places))
	for _, a := range m.acts {
		added := make(map[int]bool, len(a.def.Reads))
		for _, p := range a.def.Reads {
			if !added[p.index] {
				added[p.index] = true
				m.deps[p.index] = append(m.deps[p.index], a)
			}
		}
		if a.def.Kind == Instant {
			m.instants = append(m.instants, a)
		}
		if a.def.CaseWeights == nil {
			w := make([]float64, len(a.def.Cases))
			for i, c := range a.def.Cases {
				w[i] = c.Prob
			}
			a.staticW = w
		}
	}
	m.finalized = true
	return nil
}

// Finalized reports whether Finalize has completed.
func (m *Model) Finalized() bool { return m.finalized }

// Dependents returns the activities whose declared reads include the place
// with the given state index.
func (m *Model) Dependents(placeIndex int) []*Activity { return m.deps[placeIndex] }

// NewState allocates a state initialized to the model's initial marking.
// The initialization hook is NOT run; solvers run it with their own Context.
func (m *Model) NewState() *State {
	if !m.finalized {
		panic("san: NewState before Finalize")
	}
	s := &State{
		m:       make([]Marking, len(m.places)),
		isDirty: make([]bool, len(m.places)),
	}
	for _, p := range m.places {
		s.m[p.index] = p.init
	}
	return s
}

// MaxInstantPriorityEnabled returns the instantaneous activities enabled in
// s at the highest enabled priority level, in a deterministic order. It
// returns nil when no instantaneous activity is enabled.
func (m *Model) MaxInstantPriorityEnabled(s *State) []*Activity {
	return m.MaxInstantPriorityEnabledInto(s, nil)
}

// MaxInstantPriorityEnabledInto is MaxInstantPriorityEnabled appending into
// buf (which may be nil), so a caller in a hot loop can reuse one scratch
// slice across calls instead of allocating. The returned slice shares buf's
// backing array; it is empty (len 0, buf's capacity) when no instantaneous
// activity is enabled.
func (m *Model) MaxInstantPriorityEnabledInto(s *State, buf []*Activity) []*Activity {
	best := buf[:0]
	bestPrio := 0
	found := false
	for _, a := range m.instants {
		if !a.def.Enabled(s) {
			continue
		}
		switch {
		case !found || a.def.Priority > bestPrio:
			best = append(best[:0], a)
			bestPrio = a.def.Priority
			found = true
		case a.def.Priority == bestPrio:
			best = append(best, a)
		}
	}
	return best
}

// Summary returns a human-readable structural summary, used by cmd/sandot
// and tests.
func (m *Model) Summary() string {
	timed, instant := 0, 0
	for _, a := range m.acts {
		if a.def.Kind == Timed {
			timed++
		} else {
			instant++
		}
	}
	return fmt.Sprintf("model %q: %d places, %d timed + %d instantaneous activities",
		m.name, len(m.places), timed, instant)
}

// SortedPlaceNames returns all place names sorted, for stable diagnostics.
func (m *Model) SortedPlaceNames() []string {
	names := make([]string, 0, len(m.places))
	for _, p := range m.places {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}
