package san

import (
	"errors"
	"fmt"
)

// maxInstantChain bounds the number of consecutive instantaneous firings so
// a modeling bug (an instantaneous activity that never disables itself)
// fails loudly instead of looping forever.
const maxInstantChain = 1 << 20

// ErrUnstable is returned when instantaneous activities keep firing beyond
// the stabilization bound.
var ErrUnstable = errors.New("san: instantaneous activities did not stabilize (self-enabling loop?)")

// Stabilize fires enabled instantaneous activities until none remains
// enabled, implementing the SAN race semantics: among the enabled
// instantaneous activities of the highest priority, one is chosen with
// probability proportional to its weight ("all of the copies are equally
// likely to fire first" in the paper's model, where weights are equal).
// Returns the number of firings.
func Stabilize(m *Model, ctx *Context) (int, error) {
	fired := 0
	for {
		enabled := m.MaxInstantPriorityEnabled(ctx.State)
		if len(enabled) == 0 {
			return fired, nil
		}
		var a *Activity
		if len(enabled) == 1 {
			a = enabled[0]
		} else {
			weights := make([]float64, len(enabled))
			for i, e := range enabled {
				weights[i] = e.Weight()
			}
			a = enabled[ctx.Rand.Category(weights)]
		}
		a.Fire(ctx, a.ChooseCase(ctx))
		fired++
		if fired > maxInstantChain {
			return fired, fmt.Errorf("%w: last fired %q", ErrUnstable, a.Name())
		}
	}
}

// Successor is one probabilistic outcome of resolving the instantaneous
// activities from a (vanishing) marking: a stable marking reached with the
// given probability. Used by the numerical solver to eliminate vanishing
// states.
type Successor struct {
	Key  string
	M    []Marking
	Prob float64
}

// EnumerateStable explores every resolution of the instantaneous activities
// from the marking in s and returns the distribution over stable markings.
// The model's gate functions must be deterministic (no ctx.Rand use): the
// context passed to effects carries a nil Rand, so any draw panics, which
// the caller reports as "model not numerically solvable". The probability
// of each branch combines the race weights with the case weights.
func EnumerateStable(m *Model, s *State) ([]Successor, error) {
	acc := make(map[string]*Successor)
	var rec func(cur *State, prob float64, depth int) error
	rec = func(cur *State, prob float64, depth int) error {
		if depth > 64 {
			return fmt.Errorf("%w (enumeration depth > 64)", ErrUnstable)
		}
		enabled := m.MaxInstantPriorityEnabled(cur)
		if len(enabled) == 0 {
			key := cur.Key()
			if suc, ok := acc[key]; ok {
				suc.Prob += prob
			} else {
				acc[key] = &Successor{Key: key, M: append([]Marking(nil), cur.m...), Prob: prob}
			}
			return nil
		}
		totalW := 0.0
		for _, a := range enabled {
			totalW += a.Weight()
		}
		for _, a := range enabled {
			weights := a.CaseWeightsIn(cur)
			totalCW := 0.0
			for _, w := range weights {
				totalCW += w
			}
			if totalCW <= 0 {
				return fmt.Errorf("san: activity %q has non-positive case weights during enumeration", a.Name())
			}
			for ci := range a.Cases() {
				if weights[ci] == 0 {
					continue
				}
				next := &State{
					m:       append([]Marking(nil), cur.m...),
					isDirty: make([]bool, len(cur.m)),
				}
				a.Fire(&Context{State: next}, ci)
				p := prob * (a.Weight() / totalW) * (weights[ci] / totalCW)
				if err := rec(next, p, depth+1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	base := &State{m: append([]Marking(nil), s.m...), isDirty: make([]bool, len(s.m))}
	if err := rec(base, 1, 0); err != nil {
		return nil, err
	}
	out := make([]Successor, 0, len(acc))
	for _, suc := range acc {
		out = append(out, *suc)
	}
	return out, nil
}
