package san

import (
	"errors"
	"fmt"
)

// maxInstantChain bounds the number of consecutive instantaneous firings so
// a modeling bug (an instantaneous activity that never disables itself)
// fails loudly instead of looping forever.
const maxInstantChain = 1 << 20

// ErrUnstable is returned when instantaneous activities keep firing beyond
// the stabilization bound.
var ErrUnstable = errors.New("san: instantaneous activities did not stabilize (self-enabling loop?)")

// Stabilize fires enabled instantaneous activities until none remains
// enabled, implementing the SAN race semantics: among the enabled
// instantaneous activities of the highest priority, one is chosen with
// probability proportional to its weight ("all of the copies are equally
// likely to fire first" in the paper's model, where weights are equal).
// Returns the number of firings.
func Stabilize(m *Model, ctx *Context) (int, error) {
	fired := 0
	for {
		enabled := m.MaxInstantPriorityEnabled(ctx.State)
		if len(enabled) == 0 {
			return fired, nil
		}
		var a *Activity
		if len(enabled) == 1 {
			a = enabled[0]
		} else {
			weights := make([]float64, len(enabled))
			for i, e := range enabled {
				weights[i] = e.Weight()
			}
			a = enabled[ctx.Rand.Category(weights)]
		}
		a.Fire(ctx, a.ChooseCase(ctx))
		fired++
		if fired > maxInstantChain {
			return fired, fmt.Errorf("%w: last fired %q", ErrUnstable, a.Name())
		}
	}
}
