package san

import (
	"errors"
	"math"
	"testing"

	"ituaval/internal/rng"
)

// buildRace creates a model where n instantaneous activities race to claim
// a single token; winner i sets winner=i+1.
func buildRace(t *testing.T, n int, weights []float64) (*Model, *Place) {
	t.Helper()
	m := NewModel("race")
	token := m.Place("token", 1)
	winner := m.Place("winner", 0)
	for i := 0; i < n; i++ {
		i := i
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		m.AddActivity(ActivityDef{
			Name: "claim" + string(rune('a'+i)), Kind: Instant, Weight: w,
			Enabled: func(s *State) bool { return s.Get(token) > 0 },
			Reads:   []*Place{token},
			Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
				ctx.State.Add(token, -1)
				ctx.State.Set(winner, Marking(i+1))
			}}},
		})
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, winner
}

func TestStabilizeUniformRace(t *testing.T) {
	m, winner := buildRace(t, 4, nil)
	counts := [5]int{}
	const n = 40000
	root := rng.New(101)
	for i := 0; i < n; i++ {
		s := m.NewState()
		ctx := &Context{State: s, Rand: root.Derive(uint64(i))}
		fired, err := Stabilize(m, ctx)
		if err != nil || fired != 1 {
			t.Fatalf("fired=%d err=%v", fired, err)
		}
		counts[s.Get(winner)]++
	}
	if counts[0] != 0 {
		t.Fatal("some race had no winner")
	}
	for i := 1; i <= 4; i++ {
		got := float64(counts[i]) / n
		if math.Abs(got-0.25) > 0.02 {
			t.Fatalf("activity %d won fraction %v, want ~0.25", i, got)
		}
	}
}

func TestStabilizeWeightedRace(t *testing.T) {
	m, winner := buildRace(t, 2, []float64{3, 1})
	counts := [3]int{}
	const n = 40000
	root := rng.New(55)
	for i := 0; i < n; i++ {
		s := m.NewState()
		if _, err := Stabilize(m, &Context{State: s, Rand: root.Derive(uint64(i))}); err != nil {
			t.Fatal(err)
		}
		counts[s.Get(winner)]++
	}
	got := float64(counts[1]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Fatalf("weighted race: first activity won %v, want ~0.75", got)
	}
}

func TestStabilizePriorityOrdering(t *testing.T) {
	m := NewModel("prio")
	token := m.Place("token", 1)
	order := m.Place("order", 0)
	// Low priority fires second: by then order is already 1, so it sets 12.
	m.AddActivity(ActivityDef{
		Name: "low", Kind: Instant, Priority: 1,
		Enabled: func(s *State) bool { return s.Get(token) == 0 && s.Get(order) == 1 },
		Reads:   []*Place{token, order},
		Cases:   []Case{{Prob: 1, Effect: func(ctx *Context) { ctx.State.Set(order, 12) }}},
	})
	m.AddActivity(ActivityDef{
		Name: "high", Kind: Instant, Priority: 5,
		Enabled: func(s *State) bool { return s.Get(token) > 0 },
		Reads:   []*Place{token},
		Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
			ctx.State.Add(token, -1)
			ctx.State.Set(order, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	s := m.NewState()
	fired, err := Stabilize(m, &Context{State: s, Rand: rng.New(1)})
	if err != nil || fired != 2 {
		t.Fatalf("fired=%d err=%v", fired, err)
	}
	if s.Get(order) != 12 {
		t.Fatalf("order = %d, want 12 (high then low)", s.Get(order))
	}
}

func TestStabilizeDetectsLivelock(t *testing.T) {
	m := NewModel("livelock")
	p := m.Place("p", 1)
	m.AddActivity(ActivityDef{
		Name: "spin", Kind: Instant,
		Enabled: func(s *State) bool { return s.Get(p) > 0 },
		Reads:   []*Place{p},
		Cases:   []Case{{Prob: 1}}, // no effect: stays enabled forever
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	_, err := Stabilize(m, &Context{State: m.NewState(), Rand: rng.New(1)})
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("err = %v, want ErrUnstable", err)
	}
}

func TestEnumerateStable(t *testing.T) {
	// Token claimed by one of two equally weighted activities, the first of
	// which branches into two cases 0.3/0.7: stable outcomes
	// winner=1&case=1 (0.15), winner=1&case=2 (0.35), winner=2 (0.5).
	m := NewModel("enum")
	token := m.Place("token", 1)
	out := m.Place("out", 0)
	m.AddActivity(ActivityDef{
		Name: "a", Kind: Instant,
		Enabled: func(s *State) bool { return s.Get(token) > 0 },
		Reads:   []*Place{token},
		Cases: []Case{
			{Prob: 0.3, Effect: func(ctx *Context) { ctx.State.Add(token, -1); ctx.State.Set(out, 1) }},
			{Prob: 0.7, Effect: func(ctx *Context) { ctx.State.Add(token, -1); ctx.State.Set(out, 2) }},
		},
	})
	m.AddActivity(ActivityDef{
		Name: "b", Kind: Instant,
		Enabled: func(s *State) bool { return s.Get(token) > 0 },
		Reads:   []*Place{token},
		Cases:   []Case{{Prob: 1, Effect: func(ctx *Context) { ctx.State.Add(token, -1); ctx.State.Set(out, 3) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	sucs, err := EnumerateStable(m, m.NewState())
	if err != nil {
		t.Fatal(err)
	}
	probs := map[Marking]float64{}
	total := 0.0
	for _, suc := range sucs {
		probs[suc.M[out.Index()]] += suc.Prob
		total += suc.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", total)
	}
	want := map[Marking]float64{1: 0.15, 2: 0.35, 3: 0.5}
	for k, w := range want {
		if math.Abs(probs[k]-w) > 1e-12 {
			t.Fatalf("P(out=%d) = %v, want %v", k, probs[k], w)
		}
	}
}

func TestEnumerateStableNoInstant(t *testing.T) {
	m := NewModel("none")
	m.Place("p", 3)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	sucs, err := EnumerateStable(m, m.NewState())
	if err != nil {
		t.Fatal(err)
	}
	if len(sucs) != 1 || sucs[0].Prob != 1 {
		t.Fatalf("sucs = %v", sucs)
	}
}

func TestScopes(t *testing.T) {
	m := NewModel("scoped")
	root := Root(m)
	global := root.Place("global", 5)

	replica := func(sc *Scope) {
		local := sc.Place("local", 0)
		shared := sc.Shared("perApp")
		g := sc.Shared("global")
		sc.Activity(ActivityDef{
			Name: "act", Kind: Instant,
			Enabled: func(s *State) bool { return s.Get(g) > 0 && s.Get(local) == 0 && s.Get(shared) < 100 },
			Reads:   []*Place{g, local, shared},
			Cases: []Case{{Prob: 1, Effect: func(ctx *Context) {
				ctx.State.Set(local, 1)
				ctx.State.Add(shared, 1)
				ctx.State.Add(g, -1)
			}}},
		})
	}

	for a := 0; a < 2; a++ {
		app := root.Child("app[" + string(rune('0'+a)) + "]")
		app.Place("perApp", 0)
		Replicate(app, "rep", 3, []string{"perApp", "global"}, replica)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	// 1 global + 2 perApp + 6 local = 9 places; 6 activities.
	if len(m.Places()) != 9 {
		t.Fatalf("places = %d", len(m.Places()))
	}
	if len(m.Activities()) != 6 {
		t.Fatalf("activities = %d", len(m.Activities()))
	}
	// Run to stability: 5 tokens available, 6 candidates, each claims one.
	s := m.NewState()
	fired, err := Stabilize(m, &Context{State: s, Rand: rng.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 5 || s.Get(global) != 0 {
		t.Fatalf("fired=%d global=%d", fired, s.Get(global))
	}
	app0 := m.PlaceByName("app[0].perApp")
	app1 := m.PlaceByName("app[1].perApp")
	if app0 == nil || app1 == nil {
		t.Fatal("scoped place names not found")
	}
	if s.Get(app0)+s.Get(app1) != 5 {
		t.Fatalf("perApp totals = %d + %d", s.Get(app0), s.Get(app1))
	}
}

func TestScopeSharedMissingPanics(t *testing.T) {
	m := NewModel("m")
	root := Root(m)
	defer func() {
		if recover() == nil {
			t.Fatal("missing shared place did not panic")
		}
	}()
	root.Child("x").Shared("nope")
}

func TestReplicateMissingSharePanics(t *testing.T) {
	m := NewModel("m")
	root := Root(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Replicate with undeclared share did not panic")
		}
	}()
	Replicate(root, "r", 2, []string{"missing"}, func(sc *Scope) {})
}

func TestJoinDeterministicOrder(t *testing.T) {
	m := NewModel("j")
	root := Root(m)
	root.Place("shared", 0)
	var order []string
	Join(root, map[string]Submodel{
		"beta":  func(sc *Scope) { order = append(order, sc.Path()) },
		"alpha": func(sc *Scope) { order = append(order, sc.Path()) },
	})
	if len(order) != 2 || order[0] != "alpha" || order[1] != "beta" {
		t.Fatalf("order = %v", order)
	}
}
