// Package san implements stochastic activity networks (SANs), the modeling
// formalism of Sanders and Meyer used by the Möbius tool: places holding
// non-negative integer markings, timed activities with (possibly
// marking-dependent) firing-time distributions, instantaneous activities
// with priorities and race weights, probabilistic cases, and input/output
// gates expressed as Go predicates and effect functions.
//
// The package also provides Möbius-style composed models: atomic submodels
// are instantiated inside Scopes that control which places are shared
// (Replicate/Join equivalents), producing one flat Model that the
// internal/sim discrete-event engine or the internal/mc numerical solver
// executes.
package san

import (
	"fmt"

	"ituaval/internal/rng"
)

// Marking is the value held by a place. SA network markings are natural
// numbers; the paper's Möbius model uses C "short", hence int32.
type Marking = int32

// Place is a state variable of the model. Places are created through a
// Model or Scope and are immutable after Finalize.
type Place struct {
	name  string
	index int
	init  Marking
}

// Name returns the fully scoped place name.
func (p *Place) Name() string { return p.name }

// Index returns the place's slot in the state vector (valid after
// Finalize).
func (p *Place) Index() int { return p.index }

// Initial returns the place's initial marking.
func (p *Place) Initial() Marking { return p.init }

// State is a marking vector for a finalized model. It records which places
// were written since the last ResetDirty, which the engine uses to update
// activity enabling incrementally, and can optionally trace reads to verify
// declared activity dependency lists.
type State struct {
	m       []Marking
	dirty   []int
	isDirty []bool
	tracing bool
	reads   map[int]struct{}
	readAll bool
}

// Get returns the marking of p.
func (s *State) Get(p *Place) Marking {
	if s.tracing {
		s.reads[p.index] = struct{}{}
	}
	return s.m[p.index]
}

// Int returns the marking of p as an int, for convenience in arithmetic
// predicates.
func (s *State) Int(p *Place) int { return int(s.Get(p)) }

// Set writes the marking of p. It panics if v is negative: SAN markings are
// natural numbers, so a negative write is a modeling bug.
func (s *State) Set(p *Place, v Marking) {
	if v < 0 {
		panic(fmt.Sprintf("san: negative marking %d for place %q", v, p.name))
	}
	if s.m[p.index] == v {
		return
	}
	s.m[p.index] = v
	if !s.isDirty[p.index] {
		s.isDirty[p.index] = true
		s.dirty = append(s.dirty, p.index)
	}
}

// Add increments the marking of p by d (d may be negative; the result must
// stay non-negative).
func (s *State) Add(p *Place, d Marking) { s.Set(p, s.m[p.index]+d) }

// Markings returns the raw marking vector. The slice aliases the state; it
// must not be modified by callers (use Set/Add).
func (s *State) Markings() []Marking {
	if s.tracing {
		// The caller can read every place through the raw vector; a trace
		// consumer must treat this as "depends on the whole marking".
		s.readAll = true
	}
	return s.m
}

// CopyFrom overwrites this state's markings with src's.
func (s *State) CopyFrom(src *State) {
	copy(s.m, src.m)
	s.ResetDirty()
}

// ResetDirty clears the dirty-place list.
func (s *State) ResetDirty() {
	for _, i := range s.dirty {
		s.isDirty[i] = false
	}
	s.dirty = s.dirty[:0]
}

// Dirty returns the indices of places written since the last ResetDirty.
// The slice aliases internal storage and is valid until the next write or
// reset.
func (s *State) Dirty() []int { return s.dirty }

// StartTrace begins recording place reads (used by the engine's validation
// mode to check declared dependency lists).
func (s *State) StartTrace() {
	s.tracing = true
	s.readAll = false
	if s.reads == nil {
		s.reads = make(map[int]struct{})
	}
}

// StopTrace ends read recording and returns the set of read place indices.
// If the traced code obtained the raw vector via Markings, the set is
// incomplete; check ReadAllTraced.
func (s *State) StopTrace() map[int]struct{} {
	s.tracing = false
	r := s.reads
	s.reads = nil
	return r
}

// ReadAllTraced reports whether the last trace saw a Markings call (a read
// of the entire vector). Valid until the next StartTrace.
func (s *State) ReadAllTraced() bool { return s.readAll }

// Context carries everything an output-gate effect function may use: the
// state, the replication's random stream, and the current simulation time.
// Gate code in Möbius is arbitrary C++; allowing effects to draw random
// numbers mirrors that power (but models that should remain numerically
// solvable must not use Rand — the mc solver passes Rand == nil).
type Context struct {
	State *State
	Rand  *rng.Stream
	Now   float64

	// enum, when non-nil, redirects the enumerable choice methods
	// (Choose, ChooseWeighted, Permute) from sampling to exhaustive
	// branching; it is set only by the analytic Resolver.
	enum *enumChooser
}
