package san

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendMarkingKey appends a compact, injective encoding of the marking
// vector to dst and returns the extended slice. Each marking is written as
// an unsigned varint, so the small values that dominate real state spaces
// (SAN markings are mostly 0/1 flags and short counters) cost one byte
// instead of the four of the historical fixed-width encoding. Two marking
// vectors of the same length encode equal iff they are equal: varints are a
// prefix code, so the concatenation decodes unambiguously.
func AppendMarkingKey(dst []byte, m []Marking) []byte {
	for _, v := range m {
		dst = binary.AppendUvarint(dst, uint64(uint32(v)))
	}
	return dst
}

// DecodeMarkingKey decodes a key produced by AppendMarkingKey, appending
// the markings to out (which may be nil) and returning the extended slice.
// It errors on truncated input, marking overflow, or trailing bytes, so a
// corrupted key cannot decode silently.
func DecodeMarkingKey(key []byte, out []Marking) ([]Marking, error) {
	for len(key) > 0 {
		v, n := binary.Uvarint(key)
		if n <= 0 {
			return nil, fmt.Errorf("san: truncated or overlong marking key at byte %d", len(key))
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("san: marking key value %d overflows int32", v)
		}
		out = append(out, Marking(v))
		key = key[n:]
	}
	return out, nil
}

// Key returns the marking vector encoded as a string, usable as a map key
// for state-space exploration. The encoding is AppendMarkingKey's.
func (s *State) Key() string {
	return string(AppendMarkingKey(make([]byte, 0, len(s.m)), s.m))
}
