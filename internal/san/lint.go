package san

import (
	"fmt"
	"math"

	"ituaval/internal/rng"
)

// LintClass classifies a structural finding reported by Model.Lint.
type LintClass int

const (
	// LintCaseProb: an activity's static case probabilities do not sum to 1.
	LintCaseProb LintClass = iota + 1
	// LintNeverEnabled: an input-gate predicate that was false in every
	// probed marking, including arbitrary ones — the activity can never
	// fire, so it is dead weight or a contradiction in the gate.
	LintNeverEnabled
	// LintUnreachable: the predicate can be satisfied by some marking, but
	// no marking reachable from the initial configuration enabled it during
	// the probe walks.
	LintUnreachable
	// LintOrphanPlace: a place no activity reads or writes and no measure
	// observes — completely disconnected state.
	LintOrphanPlace
	// LintNeverRead: a place that is written but never read by any
	// activity, gate, or declared measure — state the model computes and
	// then ignores.
	LintNeverRead
	// LintBoundExceeded: a marking reached during the probe walks exceeded
	// the bound declared with Model.Bound.
	LintBoundExceeded
)

// String returns a stable lowercase identifier for the class.
func (c LintClass) String() string {
	switch c {
	case LintCaseProb:
		return "case-prob"
	case LintNeverEnabled:
		return "never-enabled"
	case LintUnreachable:
		return "unreachable"
	case LintOrphanPlace:
		return "orphan-place"
	case LintNeverRead:
		return "never-read"
	case LintBoundExceeded:
		return "bound-exceeded"
	}
	return fmt.Sprintf("lint-class-%d", int(c))
}

// LintFinding is one structural problem found by Model.Lint.
type LintFinding struct {
	Class   LintClass
	Subject string // place or activity name
	Detail  string
}

// String formats the finding for diagnostics.
func (f LintFinding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Class, f.Subject, f.Detail)
}

// LintOptions tunes the probe budgets of Model.Lint. Zero values select
// defaults sized so that linting a full ITUA study model takes well under a
// second.
type LintOptions struct {
	// Probes is the number of arbitrary ("wild") markings sampled per place
	// cap to test predicate satisfiability. Default 256.
	Probes int
	// Walks is the number of random firing walks taken from the initial
	// configuration to approximate the reachable marking set. Default 64.
	Walks int
	// WalkLen is the number of firings per walk. Default 256.
	WalkLen int
	// MaxMarking caps wild-probe values for places without a declared
	// Bound. Default 8.
	MaxMarking Marking
	// Seed drives all probe randomness; Lint is deterministic for a given
	// seed. Default 1.
	Seed uint64
}

func (o *LintOptions) fill() {
	if o.Probes <= 0 {
		o.Probes = 256
	}
	if o.Walks <= 0 {
		o.Walks = 64
	}
	if o.WalkLen <= 0 {
		o.WalkLen = 256
	}
	if o.MaxMarking <= 0 {
		o.MaxMarking = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Lint statically checks a finalized model for structural defects that
// Finalize's local validation cannot see: case-probability sums, activities
// that can never enable or are unreachable from the initial configuration,
// places nothing reads or writes, and violations of declared marking bounds.
//
// The reachability and read/write analyses are probe-based heuristics:
// predicates are evaluated over sampled markings (clamped to declared
// bounds) and over coverage-guided firing walks from the initial state
// (walks prefer activities and cases not yet exercised, so low-probability
// chains are covered deterministically rather than by a budget lottery),
// with every user callback wrapped in a panic guard. A clean result is
// therefore not a proof, but every finding points at a concrete marking or
// activity, and on the ITUA models the walks cover the full activity set.
// Findings are reported in deterministic order.
func (m *Model) Lint(opts LintOptions) []LintFinding {
	if !m.finalized {
		panic("san: Lint before Finalize")
	}
	opts.fill()
	var findings []LintFinding

	// Static case-probability sums. Finalize only requires a positive
	// total (the sampler normalizes); the lint contract is stricter: static
	// case probabilities are probabilities and must sum to 1. Activities
	// with marking-dependent CaseWeights are exempt.
	for _, a := range m.acts {
		d := &a.def
		if d.CaseWeights != nil || len(d.Cases) < 2 {
			continue
		}
		total := 0.0
		for _, c := range d.Cases {
			total += c.Prob
		}
		if math.Abs(total-1) > 1e-6 {
			findings = append(findings, LintFinding{
				Class:   LintCaseProb,
				Subject: d.Name,
				Detail:  fmt.Sprintf("case probabilities sum to %g, want 1", total),
			})
		}
	}

	pr := newProber(m, opts)
	pr.probeWild()
	pr.walk()
	pr.fireAllCases()

	for _, a := range m.acts {
		switch {
		case !pr.enabledWild[a.id] && !pr.enabledReach[a.id]:
			findings = append(findings, LintFinding{
				Class:   LintNeverEnabled,
				Subject: a.def.Name,
				Detail: fmt.Sprintf("enabling predicate false on all %d probed markings and %d walk states",
					opts.Probes, pr.walkStates),
			})
		case !pr.enabledReach[a.id]:
			findings = append(findings, LintFinding{
				Class:   LintUnreachable,
				Subject: a.def.Name,
				Detail: fmt.Sprintf("predicate satisfiable, but never enabled in %d walk states from the initial configuration",
					pr.walkStates),
			})
		}
	}

	for _, p := range m.places {
		read := pr.read[p.index] || m.observed[p.index]
		switch {
		case !read && !pr.written[p.index]:
			findings = append(findings, LintFinding{
				Class:   LintOrphanPlace,
				Subject: p.name,
				Detail:  "no activity reads or writes it and no measure observes it",
			})
		case !read:
			findings = append(findings, LintFinding{
				Class:   LintNeverRead,
				Subject: p.name,
				Detail:  "written by the model but read by no activity or measure",
			})
		}
	}

	for _, p := range m.places {
		b, ok := m.bounds[p.index]
		if !ok {
			continue
		}
		if p.init > b {
			findings = append(findings, LintFinding{
				Class:   LintBoundExceeded,
				Subject: p.name,
				Detail:  fmt.Sprintf("initial marking %d exceeds declared bound %d", p.init, b),
			})
		} else if worst, hit := pr.boundHit[p.index]; hit {
			findings = append(findings, LintFinding{
				Class:   LintBoundExceeded,
				Subject: p.name,
				Detail:  fmt.Sprintf("walk reached marking %d, exceeding declared bound %d", worst, b),
			})
		}
	}
	return findings
}

// prober holds the dynamic-analysis scratch state for one Lint call.
type prober struct {
	m    *Model
	opts LintOptions
	rnd  *rng.Stream

	caps []Marking // per-place wild-probe cap

	enabledWild  []bool  // enabled in some arbitrary marking
	enabledReach []bool  // enabled in some walk (reachable-ish) state
	read         []bool  // read by a predicate, gate, or effect
	written      []bool  // written by init hook or some fired case
	fired        []int   // walk fire counts, for coverage guidance
	caseFired    [][]int // per-case walk fire counts
	boundHit     map[int]Marking
	walkStates   int

	wild []*State // sampled arbitrary markings (kept for fireAllCases)
}

func newProber(m *Model, opts LintOptions) *prober {
	pr := &prober{
		m:            m,
		opts:         opts,
		rnd:          rng.New(opts.Seed),
		caps:         make([]Marking, len(m.places)),
		enabledWild:  make([]bool, len(m.acts)),
		enabledReach: make([]bool, len(m.acts)),
		read:         make([]bool, len(m.places)),
		written:      make([]bool, len(m.places)),
		fired:        make([]int, len(m.acts)),
		caseFired:    make([][]int, len(m.acts)),
		boundHit:     make(map[int]Marking),
	}
	for _, a := range m.acts {
		pr.caseFired[a.id] = make([]int, len(a.def.Cases))
	}
	for _, p := range m.places {
		hi := opts.MaxMarking
		if b, ok := m.bounds[p.index]; ok {
			hi = b
		}
		if p.init > hi {
			hi = p.init
		}
		pr.caps[p.index] = hi
	}
	// Declared reads are reads by contract, whether or not a probe
	// exercises them.
	for _, a := range m.acts {
		for _, p := range a.def.Reads {
			pr.read[p.index] = true
		}
	}
	return pr
}

// safeEnabled evaluates a's predicate, treating a panic (possible on
// arbitrary markings that violate the model's implicit invariants, e.g. a
// marking used as a slice index) as "not enabled".
func safeEnabled(a *Activity, s *State) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return a.def.Enabled(s)
}

// safeFire fires case ci of a in ctx, reporting whether it completed
// without panicking.
func safeFire(a *Activity, ctx *Context, ci int) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	a.Fire(ctx, ci)
	return true
}

// probeWild samples arbitrary markings (each place uniform in [0, cap]) and
// records which predicates they satisfy.
func (pr *prober) probeWild() {
	base := pr.baseState(pr.rnd.Derive(0))
	pr.recordEnabled(base, pr.enabledWild)
	for k := 0; k < pr.opts.Probes; k++ {
		s := pr.m.NewState()
		for _, p := range pr.m.places {
			s.m[p.index] = Marking(pr.rnd.Intn(int(pr.caps[p.index]) + 1))
		}
		pr.wild = append(pr.wild, s)
		pr.recordEnabled(s, pr.enabledWild)
	}
}

// baseState builds the initial configuration: initial markings plus the
// init hook (panic-guarded; its writes count as model writes).
func (pr *prober) baseState(stream *rng.Stream) *State {
	s := pr.m.NewState()
	if fn := pr.m.initFn; fn != nil {
		func() {
			defer func() { _ = recover() }()
			s.StartTrace()
			fn(&Context{State: s, Rand: stream, Now: 0})
		}()
		for pi := range s.StopTrace() {
			pr.read[pi] = true
		}
		for _, pi := range s.Dirty() {
			pr.written[pi] = true
		}
		s.ResetDirty()
	}
	return s
}

func (pr *prober) recordEnabled(s *State, into []bool) {
	for _, a := range pr.m.acts {
		if !into[a.id] && safeEnabled(a, s) {
			into[a.id] = true
		}
	}
}

// walk approximates the reachable marking set by random firing walks from
// the initial configuration, respecting the engine's semantics that enabled
// instantaneous activities (at the highest priority) preempt timed ones.
func (pr *prober) walk() {
	for w := 0; w < pr.opts.Walks; w++ {
		s := pr.baseState(pr.rnd.Derive(uint64(w) + 1))
		snap := pr.m.NewState()
		fireStream := pr.rnd.Derive(uint64(w) + 1).Role(1)
		for step := 0; step < pr.opts.WalkLen; step++ {
			pr.walkStates++
			pr.checkBounds(s)
			cands := pr.enabledCandidates(s)
			if len(cands) == 0 {
				break
			}
			a := pr.pickActivity(cands)
			snap.CopyFrom(s)
			s.ResetDirty()
			s.StartTrace()
			ci := pr.pickCase(a, s, fireStream)
			pr.fired[a.id]++
			pr.caseFired[a.id][ci]++
			ok := safeFire(a, &Context{State: s, Rand: fireStream, Now: float64(step)}, ci)
			for pi := range s.StopTrace() {
				pr.read[pi] = true
			}
			if !ok {
				// A panic mid-effect leaves a half-applied marking;
				// discard it and end this walk.
				s.CopyFrom(snap)
				break
			}
			for _, pi := range s.Dirty() {
				pr.written[pi] = true
			}
			s.ResetDirty()
		}
	}
}

// enabledCandidates returns the activities eligible to fire next in s,
// recording every enabled activity as reachable. Instantaneous activities
// at the highest enabled priority preempt timed activities, as in the
// engine.
func (pr *prober) enabledCandidates(s *State) []*Activity {
	var timed, instant []*Activity
	bestPrio := 0
	for _, a := range pr.m.acts {
		if !safeEnabled(a, s) {
			continue
		}
		pr.enabledReach[a.id] = true
		if a.def.Kind == Timed {
			timed = append(timed, a)
			continue
		}
		switch {
		case instant == nil || a.def.Priority > bestPrio:
			instant = append(instant[:0], a)
			bestPrio = a.def.Priority
		case a.def.Priority == bestPrio:
			instant = append(instant, a)
		}
	}
	if len(instant) > 0 {
		return instant
	}
	return timed
}

// pickActivity chooses the next activity to fire, preferring candidates
// that no walk has fired yet. The walks are a reachability search, not a
// statistically faithful simulation, so coverage-guided choice is sound —
// and it makes low-probability chains (a rare attack class followed by its
// detection) deterministic to cover instead of a budget lottery.
func (pr *prober) pickActivity(cands []*Activity) *Activity {
	var fresh []*Activity
	for _, a := range cands {
		if pr.fired[a.id] == 0 {
			fresh = append(fresh, a)
		}
	}
	if len(fresh) > 0 {
		return fresh[pr.rnd.Intn(len(fresh))]
	}
	return cands[pr.rnd.Intn(len(cands))]
}

// pickCase chooses a case of a, preferring cases no walk has taken yet and
// falling back to probability-weighted sampling.
func (pr *prober) pickCase(a *Activity, s *State, stream *rng.Stream) int {
	if len(a.def.Cases) > 1 {
		var fresh []int
		for ci, n := range pr.caseFired[a.id] {
			if n == 0 {
				fresh = append(fresh, ci)
			}
		}
		if len(fresh) > 0 {
			return fresh[pr.rnd.Intn(len(fresh))]
		}
	}
	return pr.safeChooseCase(a, s, stream)
}

// safeChooseCase picks a case index, falling back to case 0 if the
// marking-dependent weights panic or are degenerate on a probe state.
func (pr *prober) safeChooseCase(a *Activity, s *State, stream *rng.Stream) (ci int) {
	defer func() {
		if recover() != nil {
			ci = 0
		}
	}()
	if len(a.def.Cases) == 1 {
		return 0
	}
	return stream.Category(a.CaseWeightsIn(s))
}

func (pr *prober) checkBounds(s *State) {
	for pi, b := range pr.m.bounds {
		if v := s.m[pi]; v > b {
			if worst, ok := pr.boundHit[pi]; !ok || v > worst {
				pr.boundHit[pi] = v
			}
		}
	}
}

// fireAllCases fires every case of every activity on the initial
// configuration and a sample of wild markings, regardless of enabling, to
// harvest read/write sets that the walks may not cover (e.g. effects of
// rarely-fired activities). Effects run on scratch copies.
func (pr *prober) fireAllCases() {
	probes := []*State{pr.baseState(pr.rnd.Derive(1 << 32))}
	for i := 0; i < len(pr.wild) && i < 8; i++ {
		probes = append(probes, pr.wild[i])
	}
	scratch := pr.m.NewState()
	stream := pr.rnd.Derive(2 << 32)
	for _, a := range pr.m.acts {
		for ci := range a.def.Cases {
			for _, ps := range probes {
				scratch.CopyFrom(ps)
				scratch.StartTrace()
				ok := safeFire(a, &Context{State: scratch, Rand: stream, Now: 0}, ci)
				for pi := range scratch.StopTrace() {
					pr.read[pi] = true
				}
				if ok {
					for _, pi := range scratch.Dirty() {
						pr.written[pi] = true
					}
				}
				scratch.ResetDirty()
			}
		}
	}
}
