package san

import (
	"fmt"
	"sort"
)

// Scope is the composition mechanism, the equivalent of Möbius's Rep/Join
// state-variable sharing. A scope names a region of the composed model;
// places created in a scope get unique scoped names, and a child submodel
// reaches a place shared by an enclosing scope with Shared. This directly
// expresses the paper's sharing levels: a place local to one Replica
// submodel, shared among the replicas of one application, shared across a
// security domain, or global.
type Scope struct {
	model  *Model
	path   string
	shared map[string]*Place
	parent *Scope
}

// Root returns the root scope of a model.
func Root(m *Model) *Scope {
	return &Scope{model: m, shared: make(map[string]*Place)}
}

// Model returns the underlying model.
func (sc *Scope) Model() *Model { return sc.model }

// Path returns the scope's hierarchical name ("" for the root).
func (sc *Scope) Path() string { return sc.path }

// Child creates a nested scope named name (e.g. "domain[2]").
func (sc *Scope) Child(name string) *Scope {
	path := name
	if sc.path != "" {
		path = sc.path + "/" + name
	}
	return &Scope{model: sc.model, path: path, shared: make(map[string]*Place), parent: sc}
}

// Place creates a place local to this scope with the given short name and
// initial marking, and registers it as shared so descendant scopes can
// resolve it with Shared. The full model-level name is path-qualified.
func (sc *Scope) Place(name string, init Marking) *Place {
	if _, dup := sc.shared[name]; dup {
		panic(fmt.Sprintf("san: place %q already exists in scope %q", name, sc.path))
	}
	full := name
	if sc.path != "" {
		full = sc.path + "." + name
	}
	p := sc.model.Place(full, init)
	sc.shared[name] = p
	return p
}

// Shared resolves name against this scope and its ancestors, panicking if
// the name is not found: a missing shared place is a composition bug.
func (sc *Scope) Shared(name string) *Place {
	for s := sc; s != nil; s = s.parent {
		if p, ok := s.shared[name]; ok {
			return p
		}
	}
	panic(fmt.Sprintf("san: no shared place %q visible from scope %q", name, sc.path))
}

// Has reports whether name resolves from this scope.
func (sc *Scope) Has(name string) bool {
	for s := sc; s != nil; s = s.parent {
		if _, ok := s.shared[name]; ok {
			return true
		}
	}
	return false
}

// Activity adds an activity whose name is qualified by the scope path.
func (sc *Scope) Activity(def ActivityDef) *Activity {
	if sc.path != "" {
		def.Name = sc.path + "." + def.Name
	}
	return sc.model.AddActivity(def)
}

// Submodel is an atomic SAN template: a function that declares places and
// activities inside the scope it is given. The same template instantiated
// in n sibling scopes with selected names bound in the parent scope is
// exactly a Möbius "Rep" node; different templates instantiated in scopes
// sharing a parent binding form a "Join".
type Submodel func(sc *Scope)

// Replicate instantiates def n times under parent, in child scopes named
// name[i]. Places listed in shared must already exist in parent (or an
// ancestor): the copies share them. All other places the template creates
// are per-copy. It returns the child scopes.
func Replicate(parent *Scope, name string, n int, shared []string, def Submodel) []*Scope {
	for _, s := range shared {
		if !parent.Has(s) {
			panic(fmt.Sprintf("san: Replicate %q shares %q which is not defined in an enclosing scope", name, s))
		}
	}
	children := make([]*Scope, n)
	for i := 0; i < n; i++ {
		child := parent.Child(fmt.Sprintf("%s[%d]", name, i))
		def(child)
		children[i] = child
	}
	return children
}

// Join instantiates each named template once under parent; the templates
// share every place visible in parent (and its ancestors), which is the
// Möbius Join with the shared state variables held at the join node.
func Join(parent *Scope, parts map[string]Submodel) []*Scope {
	// Deterministic order for reproducible activity numbering.
	names := make([]string, 0, len(parts))
	for n := range parts {
		names = append(names, n)
	}
	sort.Strings(names)
	scopes := make([]*Scope, 0, len(parts))
	for _, n := range names {
		child := parent.Child(n)
		parts[n](child)
		scopes = append(scopes, child)
	}
	return scopes
}
