package san

import (
	"fmt"
	"sort"
)

// maxEnumDepth bounds the instantaneous-firing recursion during
// enumeration, the analytic counterpart of maxInstantChain.
const maxEnumDepth = 64

// Resolver enumerates every probabilistic resolution of an activity firing
// down to stable markings: the tree spanned by the in-effect enumerable
// choices (Context.Choose / ChooseWeighted / Permute) and by the races and
// cases of the instantaneous activities that fire afterwards. It is the
// analytic-path counterpart of Stabilize and the engine under
// EnumerateStable and mc.Generate.
//
// A Resolver is single-use-at-a-time and not safe for concurrent use; the
// state and buffer pools inside make the common case — a firing with no
// branching — free of per-call allocation.
type Resolver struct {
	m      *Model
	ec     enumChooser
	frames []*resolveFrame
	visit  func(*State, float64) error
}

// resolveFrame holds the per-depth scratch: the working state executions
// at this depth mutate, the instantaneous-activity buffer, and the stack
// of pending choice scripts.
type resolveFrame struct {
	state   *State
	insts   []*Activity
	scripts [][]int
}

// NewResolver returns a resolver for m, which must be finalized.
func NewResolver(m *Model) *Resolver {
	if !m.Finalized() {
		panic("san: NewResolver before Finalize")
	}
	return &Resolver{m: m}
}

func (r *Resolver) frame(depth int) *resolveFrame {
	for len(r.frames) <= depth {
		r.frames = append(r.frames, &resolveFrame{state: r.m.NewState()})
	}
	return r.frames[depth]
}

// Resolve enumerates the stable outcomes of firing case ci of activity a
// from base — or, when a is nil, of running fn (which may itself be nil,
// e.g. to resolve an already-vanishing marking) — and calls visit once per
// outcome path with the resulting stable state and the path probability.
// base is not modified. The state passed to visit is pooled and valid only
// during the call; the same stable marking can be reached on several paths,
// so callers aggregate probabilities by marking key.
//
// Gate code runs with a nil Rand: a direct ctx.Rand draw panics (the
// caller reports the model as not numerically solvable), while the
// enumerable choice methods branch exhaustively.
func (r *Resolver) Resolve(base *State, a *Activity, ci int, fn func(*Context), visit func(*State, float64) error) error {
	r.visit = visit
	defer func() { r.visit = nil }()
	return r.fire(0, base, a, ci, fn, 1)
}

// fire executes one firing (activity case or free function) from base once
// per distinct in-effect decision path, resolving each outcome's
// instantaneous activities, with depth indexing the scratch pools.
func (r *Resolver) fire(depth int, base *State, a *Activity, ci int, fn func(*Context), prob float64) error {
	if depth >= maxEnumDepth {
		return fmt.Errorf("%w (enumeration depth > %d)", ErrUnstable, maxEnumDepth)
	}
	f := r.frame(depth)
	scripts := append(f.scripts[:0], nil)
	for len(scripts) > 0 {
		script := scripts[len(scripts)-1]
		scripts = scripts[:len(scripts)-1]
		st := f.state
		st.CopyFrom(base)
		r.ec.reset(script)
		ctx := Context{State: st, enum: &r.ec}
		switch {
		case a != nil:
			a.Fire(&ctx, ci)
		case fn != nil:
			fn(&ctx)
		}
		// Fork the untaken alternatives of every fresh choice point now:
		// the recursion below reuses the shared chooser.
		for j := len(script); j < len(r.ec.path); j++ {
			cp := r.ec.path[j]
			for alt := cp.taken + 1; alt < cp.n; alt++ {
				if cp.w != nil && !(cp.w[alt] > 0) {
					continue
				}
				ns := make([]int, j+1)
				for i := 0; i < j; i++ {
					ns[i] = r.ec.path[i].taken
				}
				ns[j] = alt
				scripts = append(scripts, ns)
			}
		}
		p := prob * r.ec.prob
		f.scripts = scripts // keep ownership across the recursion
		if err := r.settle(depth, st, p); err != nil {
			return err
		}
		scripts = f.scripts
	}
	f.scripts = scripts[:0]
	return nil
}

// settle resolves the instantaneous activities enabled in s (a state owned
// by depth's frame), recursing through fire for each race/case branch, and
// visits s when it is stable.
func (r *Resolver) settle(depth int, s *State, prob float64) error {
	f := r.frames[depth]
	enabled := r.m.MaxInstantPriorityEnabledInto(s, f.insts[:0])
	f.insts = enabled
	if len(enabled) == 0 {
		return r.visit(s, prob)
	}
	totalW := 0.0
	for _, a := range enabled {
		totalW += a.Weight()
	}
	for _, a := range enabled {
		weights := a.CaseWeightsIn(s)
		totalCW := 0.0
		for _, w := range weights {
			totalCW += w
		}
		if totalCW <= 0 {
			return fmt.Errorf("san: activity %q has non-positive case weights during enumeration", a.Name())
		}
		for ci := range a.Cases() {
			if weights[ci] == 0 {
				continue
			}
			p := prob * (a.Weight() / totalW) * (weights[ci] / totalCW)
			if err := r.fire(depth+1, s, a, ci, nil, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Successor is one probabilistic outcome of resolving the instantaneous
// activities from a (vanishing) marking: a stable marking reached with the
// given probability. Key is the compact AppendMarkingKey encoding.
type Successor struct {
	Key  string
	M    []Marking
	Prob float64
}

// EnumerateStable explores every resolution of the instantaneous
// activities from the marking in s and returns the distribution over
// stable markings, sorted by marking key so the order is reproducible.
// The probability of each branch combines the race weights with the case
// weights; in-effect enumerable choices branch exhaustively, and any
// direct ctx.Rand draw panics (the caller reports the model as not
// numerically solvable).
func EnumerateStable(m *Model, s *State) ([]Successor, error) {
	r := NewResolver(m)
	acc := make(map[string]int)
	var out []Successor
	err := r.Resolve(s, nil, 0, nil, func(st *State, prob float64) error {
		key := string(AppendMarkingKey(make([]byte, 0, len(st.m)), st.m))
		if i, ok := acc[key]; ok {
			out[i].Prob += prob
			return nil
		}
		acc[key] = len(out)
		out = append(out, Successor{Key: key, M: append([]Marking(nil), st.m...), Prob: prob})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
