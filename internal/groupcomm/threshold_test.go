package groupcomm

import (
	"fmt"
	"testing"

	"ituaval/internal/rng"
)

// colludeGroup builds a group of n members whose top `bad` ids collude.
func colludeGroup(n, bad, tolerance int) Group {
	faulty := map[ProcessID]Behavior{}
	for i := 0; i < bad; i++ {
		faulty[ProcessID(n-1-i)] = Collude{Value: "forged"}
	}
	return Group{N: n, Faulty: faulty, Tolerance: tolerance}
}

// liarGroup is colludeGroup with RandomLiar behaviors (true value included
// in the lie repertoire, the harder case for safety).
func liarGroup(n, bad, tolerance int, stream *rng.Stream, trial int) Group {
	faulty := map[ProcessID]Behavior{}
	for i := 0; i < bad; i++ {
		faulty[ProcessID(n-1-i)] = RandomLiar{
			Stream: stream.Derive(uint64(trial*100 + i)),
			Values: []string{"v", "evil", "x"},
		}
	}
	return Group{N: n, Faulty: faulty, Tolerance: tolerance}
}

// At n = 3f+1 (exactly the one-third threshold) a group configured for f
// must keep validity, agreement, and totality against f colluders or
// random liars. At n = 3f (one member short: f faulty members are a full
// third) the degradation is predictable: colluders can never assemble an
// echo quorum (2c > n+f = 4f needs c > 2f while only f members push the
// forged value) nor a ready amplification (needs > f readies), so nothing
// is delivered; liars can at worst help the true value along — any
// delivery is the sender's value, and no forged value ever appears.
func TestColludeBoundaryGroupSizes(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		// n = 3f+1: agreement holds exactly at the threshold.
		n := 3*f + 1
		g := colludeGroup(n, f, f)
		res := ReliableBroadcast(g, 0, "v")
		ctx := fmt.Sprintf("collude n=%d f=%d", n, f)
		checkAgreementTotality(t, g, res, ctx)
		if len(res.Delivered) != n-f {
			t.Fatalf("%s: validity violated: %d of %d correct delivered", ctx, len(res.Delivered), n-f)
		}
		for id, v := range res.Delivered {
			if v != "v" {
				t.Fatalf("%s: process %d delivered %q", ctx, id, v)
			}
		}

		// n = 3f: the same f colluders are now >= a third — guaranteed
		// stall, never a forged delivery.
		n = 3 * f
		g = colludeGroup(n, f, f)
		res = ReliableBroadcast(g, 0, "v")
		ctx = fmt.Sprintf("collude n=%d f=%d", n, f)
		if len(res.Delivered) != 0 {
			t.Fatalf("%s: expected a guaranteed stall, delivered %v", ctx, res.Delivered)
		}
	}
}

func TestRandomLiarBoundaryGroupSizes(t *testing.T) {
	stream := rng.New(1234)
	for _, f := range []int{1, 2, 3} {
		for trial := 0; trial < 20; trial++ {
			// n = 3f+1: full validity and totality against liars.
			n := 3*f + 1
			g := liarGroup(n, f, f, stream, trial)
			res := ReliableBroadcast(g, 0, "v")
			ctx := fmt.Sprintf("liar n=%d f=%d trial=%d", n, f, trial)
			if len(res.Delivered) != n-f {
				t.Fatalf("%s: %d of %d correct delivered", ctx, len(res.Delivered), n-f)
			}
			checkAgreementTotality(t, g, res, ctx)
			for id, v := range res.Delivered {
				if v != "v" {
					t.Fatalf("%s: process %d delivered %q", ctx, id, v)
				}
			}

			// n = 3f: partial delivery is allowed (totality needs f < n/3)
			// but any delivered value must be the sender's — liars cannot
			// push a forged value past the 2f+1 ready quorum.
			n = 3 * f
			g = liarGroup(n, f, f, stream, 1000+trial)
			res = ReliableBroadcast(g, 0, "v")
			ctx = fmt.Sprintf("liar n=%d f=%d trial=%d", n, f, trial)
			for id, v := range res.Delivered {
				if v != "v" {
					t.Fatalf("%s: forged delivery: process %d delivered %q", ctx, id, v)
				}
			}
		}
	}
}

// One past the threshold (f+1 colluders against a tolerance-f group of
// n = 3f+1) the failure is equally predictable: READY amplification (join
// at > f matching readies) cascades through every correct process, so the
// whole group delivers the forged value — validity is lost wholesale, the
// regime the paper's unreliability measure charges as a Byzantine failure.
func TestColludeOnePastThresholdForcesForgedDelivery(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		n := 3*f + 1
		g := colludeGroup(n, f+1, f)
		res := ReliableBroadcast(g, 0, "v")
		ctx := fmt.Sprintf("collude n=%d f=%d bad=%d", n, f, f+1)
		correct := n - (f + 1)
		if len(res.Delivered) != correct {
			t.Fatalf("%s: %d of %d correct delivered", ctx, len(res.Delivered), correct)
		}
		for id, v := range res.Delivered {
			if v != "forged" {
				t.Fatalf("%s: process %d delivered %q, want the forged value", ctx, id, v)
			}
		}
	}
}

func TestMaxTolerance(t *testing.T) {
	for _, tc := range []struct{ n, f int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {9, 2}, {10, 3}, {13, 4},
	} {
		if got := MaxTolerance(tc.n); got != tc.f {
			t.Errorf("MaxTolerance(%d) = %d, want %d", tc.n, got, tc.f)
		}
		if tc.n > 0 {
			f := MaxTolerance(tc.n)
			if tc.n <= 3*f {
				t.Errorf("MaxTolerance(%d) = %d violates n > 3f", tc.n, f)
			}
			if tc.n > 3*(f+1) {
				t.Errorf("MaxTolerance(%d) = %d is not maximal", tc.n, f)
			}
		}
	}
}
