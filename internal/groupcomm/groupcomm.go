// Package groupcomm implements the intrusion-tolerant group-communication
// substrate the ITUA architecture builds on (Section 2 of the paper: "an
// intrusion-tolerant group communication system is used to multicast among
// replica groups and the manager group", with "authenticated Byzantine
// agreement under a timed-asynchronous environment"). The paper models this
// layer by its guarantee — a group with fewer than one third of its active
// members corrupt reaches consensus — and this package provides the
// executable grounding for that guarantee: Bracha's authenticated reliable
// broadcast and a conviction-vote primitive, running over a simulated
// message network with adversarial (Byzantine) members, together with tests
// that demonstrate the properties hold exactly when f < n/3.
//
// The Bracha state machine (Bracha, Step) is exported so the live
// replicated state machine in internal/rsm can run the identical protocol
// over its own transport; ReliableBroadcast remains the reference
// round-based runner.
package groupcomm

import (
	"fmt"
	"sort"

	"ituaval/internal/rng"
)

// ProcessID identifies a group member. Channels are authenticated: a
// received message's From field cannot be forged, which is the
// "authenticated Byzantine agreement" assumption of the paper.
type ProcessID int

// MsgType is the Bracha protocol phase of a message.
type MsgType int

const (
	// MsgInit carries the sender's proposed value.
	MsgInit MsgType = iota + 1
	// MsgEcho is the witness phase.
	MsgEcho
	// MsgReady is the delivery-commitment phase.
	MsgReady
)

func (t MsgType) String() string {
	switch t {
	case MsgInit:
		return "INIT"
	case MsgEcho:
		return "ECHO"
	case MsgReady:
		return "READY"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Message is one authenticated protocol message.
type Message struct {
	From  ProcessID
	To    ProcessID
	Type  MsgType
	Value string
}

// Behavior scripts a Byzantine member: given the messages it received this
// round, it returns arbitrary messages to inject next round (the From field
// is forced to its own identity by the network — authentication).
type Behavior interface {
	Act(self ProcessID, group []ProcessID, round int, received []Message) []Message
}

// MaxTolerance returns the largest fault bound f a group of n members can
// be configured for while keeping n > 3f — the paper's one-third threshold.
// It is zero for n <= 3: such groups tolerate no Byzantine member.
func MaxTolerance(n int) int {
	if n <= 0 {
		return 0
	}
	return (n+2)/3 - 1
}

// Network simulates reliable authenticated point-to-point channels with
// round-based delivery: messages sent in round r arrive in round r+1.
// Reliability (no loss between correct processes) matches the paper's
// timed-asynchronous model after timeout handling.
type Network struct {
	pending []Message
	order   *rng.Stream
}

// NewNetwork creates an empty network delivering in canonical (send) order.
func NewNetwork() *Network { return &Network{} }

// NewSeededNetwork creates a network whose per-round delivery order is a
// uniform shuffle drawn from s. The shuffle is the only nondeterminism in a
// broadcast run, so two runs over networks seeded identically produce
// identical transcripts (see TestBroadcastTranscriptDeterminism).
func NewSeededNetwork(s *rng.Stream) *Network { return &Network{order: s} }

// Send queues m for delivery next round. The From field is trusted by the
// caller (the runner enforces authenticity for Byzantine members).
func (n *Network) Send(m Message) { n.pending = append(n.pending, m) }

// Delivery is one process's inbox for a round, messages in delivery order.
type Delivery struct {
	To   ProcessID
	Msgs []Message
}

// Deliver drains the in-flight messages and returns each non-empty inbox,
// inboxes in ascending process order and messages within an inbox in
// delivery order: the global send order by default, or a seeded uniform
// shuffle for a network built with NewSeededNetwork. Earlier versions
// returned a map, whose iteration order could leak into the replica step
// order; the explicit ordering makes every run deterministic — and, when
// seeded, reproducibly randomized.
func (n *Network) Deliver() []Delivery {
	if n.order != nil && len(n.pending) > 1 {
		perm := make([]int, len(n.pending))
		n.order.Perm(perm)
		shuffled := make([]Message, len(n.pending))
		for i, j := range perm {
			shuffled[i] = n.pending[j]
		}
		n.pending = shuffled
	}
	inbox := make(map[ProcessID][]Message)
	var ids []ProcessID
	for _, m := range n.pending {
		if _, seen := inbox[m.To]; !seen {
			ids = append(ids, m.To)
		}
		inbox[m.To] = append(inbox[m.To], m)
	}
	n.pending = n.pending[:0]
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Delivery, len(ids))
	for i, id := range ids {
		out[i] = Delivery{To: id, Msgs: inbox[id]}
	}
	return out
}

// Quiet reports whether no messages are in flight.
func (n *Network) Quiet() bool { return len(n.pending) == 0 }

// Bracha is the per-process state machine of Bracha's reliable broadcast,
// usable over any message layer: feed every received protocol message to
// Step and multicast whatever it returns. The zero value is not usable;
// construct instances with NewBracha.
type Bracha struct {
	self      ProcessID
	n, f      int
	sentEcho  bool
	sentReady bool
	delivered bool
	value     string
	echoes    map[string]map[ProcessID]bool
	readies   map[string]map[ProcessID]bool
}

// NewBracha returns the protocol state of process self in a group of n
// members configured to tolerate f Byzantine members.
func NewBracha(self ProcessID, n, f int) *Bracha {
	return &Bracha{
		self: self, n: n, f: f,
		echoes:  make(map[string]map[ProcessID]bool),
		readies: make(map[string]map[ProcessID]bool),
	}
}

// Delivered reports the value this process delivered, if any.
func (b *Bracha) Delivered() (string, bool) { return b.value, b.delivered }

// Step consumes one received message and returns the messages to multicast
// (one copy per group member is produced by the caller; the returned
// messages carry no To). sender is the designated broadcast originator:
// only its INIT counts, which is the authentication assumption.
func (b *Bracha) Step(m Message, sender ProcessID) (broadcast []Message) {
	record := func(set map[string]map[ProcessID]bool, v string, from ProcessID) int {
		if set[v] == nil {
			set[v] = make(map[ProcessID]bool)
		}
		set[v][from] = true
		return len(set[v])
	}
	mark := func(t MsgType, v string) {
		broadcast = append(broadcast, Message{From: b.self, Type: t, Value: v})
	}
	switch m.Type {
	case MsgInit:
		// Only the designated sender's INIT counts.
		if m.From == sender && !b.sentEcho {
			b.sentEcho = true
			mark(MsgEcho, m.Value)
		}
	case MsgEcho:
		count := record(b.echoes, m.Value, m.From)
		// Echo threshold: > (n+f)/2 distinct echoes.
		if !b.sentReady && 2*count > b.n+b.f {
			b.sentReady = true
			mark(MsgReady, m.Value)
		}
	case MsgReady:
		count := record(b.readies, m.Value, m.From)
		if !b.sentReady && count > b.f {
			// Ready amplification: f+1 readies prove a correct process
			// committed, so join.
			b.sentReady = true
			mark(MsgReady, m.Value)
		}
		if !b.delivered && count > 2*b.f {
			b.delivered = true
			b.value = m.Value
		}
	}
	return broadcast
}

// Outcome classifies how a broadcast run ended.
type Outcome int

const (
	// OutcomeQuiescent: the protocol reached a fixed point with no
	// messages in flight — the normal termination of a broadcast, whether
	// or not anything was delivered.
	OutcomeQuiescent Outcome = iota
	// OutcomeRoundBudget: MaxRounds elapsed with messages still in
	// flight. Byzantine behaviors that inject messages forever land here
	// instead of livelocking the runner.
	OutcomeRoundBudget
	// OutcomeStepBudget: the total protocol-step budget (MaxSteps) was
	// exhausted mid-round — the adversarial message volume exceeded any
	// honest execution's need.
	OutcomeStepBudget
)

func (o Outcome) String() string {
	switch o {
	case OutcomeQuiescent:
		return "quiescent"
	case OutcomeRoundBudget:
		return "round-budget"
	case OutcomeStepBudget:
		return "step-budget"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// TimeoutError is the classified result of a broadcast that exhausted its
// round or step budget, mirroring the budget-exhaustion taxonomy of the
// simulation runner (sim.FailureBudget): bounded, recorded, never spinning.
type TimeoutError struct {
	Outcome Outcome
	Rounds  int
	Steps   int
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("groupcomm: broadcast exceeded its %s (%d rounds, %d steps)",
		e.Outcome, e.Rounds, e.Steps)
}

// BroadcastResult reports the outcome of one reliable broadcast.
type BroadcastResult struct {
	// Delivered maps every correct process to the value it delivered;
	// processes that never delivered are absent.
	Delivered map[ProcessID]string
	// Rounds is the number of simulated rounds executed.
	Rounds int
	// Steps is the number of protocol messages processed by correct
	// processes.
	Steps int
	// Outcome classifies the termination; Err is non-nil (a *TimeoutError)
	// for the budget outcomes. Delivered stays valid either way: budget
	// exhaustion truncates the run but does not un-deliver.
	Outcome Outcome
	Err     error
	// Transcript is the delivery-ordered list of every message handed to a
	// correct process, recorded when Group.Record is set. Two runs with the
	// same Group.Seed produce identical transcripts.
	Transcript []Message
}

// Group describes one reliable-broadcast experiment.
type Group struct {
	// N is the group size; processes are 0..N-1.
	N int
	// Faulty lists the Byzantine members and their behaviors.
	Faulty map[ProcessID]Behavior
	// Tolerance is the fault bound f the protocol is configured for
	// (0 = the actual number of faulty members). Setting it below the
	// actual count models a deployment whose one-third assumption is
	// violated — the regime in which the paper's groups "become unable to
	// reach consensus".
	Tolerance int
	// MaxRounds bounds the simulation (default 50).
	MaxRounds int
	// MaxSteps bounds the total number of protocol messages processed by
	// correct processes across the whole run (default 8·N²·MaxRounds —
	// far above any honest execution). Exhausting it classifies the run
	// as OutcomeStepBudget instead of spinning through adversarial
	// message floods.
	MaxSteps int
	// Seed, when non-zero, seeds the per-round delivery order (a uniform
	// shuffle); zero keeps the canonical send order. Either way the run
	// is fully deterministic.
	Seed uint64
	// Record captures the delivery transcript in the result.
	Record bool
}

// members returns all process ids.
func (g Group) members() []ProcessID {
	ids := make([]ProcessID, g.N)
	for i := range ids {
		ids[i] = ProcessID(i)
	}
	return ids
}

// f returns the fault bound the protocol runs with.
func (g Group) f() int {
	if g.Tolerance > 0 {
		return g.Tolerance
	}
	return len(g.Faulty)
}

// ReliableBroadcast runs Bracha's protocol with the given sender and value.
// If the sender is Byzantine its behavior script speaks first (it may
// equivocate); a correct sender multicasts INIT(value). The run is bounded
// by the group's round and step budgets; exceeding either yields a
// classified TimeoutError in the result rather than an unbounded loop.
func ReliableBroadcast(g Group, sender ProcessID, value string) BroadcastResult {
	if g.MaxRounds <= 0 {
		g.MaxRounds = 50
	}
	if g.MaxSteps <= 0 {
		g.MaxSteps = 8 * g.N * g.N * g.MaxRounds
	}
	net := NewNetwork()
	if g.Seed != 0 {
		net = NewSeededNetwork(rng.New(g.Seed))
	}
	group := g.members()
	states := make(map[ProcessID]*Bracha)
	for _, id := range group {
		if _, bad := g.Faulty[id]; !bad {
			states[id] = NewBracha(id, g.N, g.f())
		}
	}
	received := make(map[ProcessID][]Message)

	var res BroadcastResult
	res.Delivered = make(map[ProcessID]string)

	// Round 0: the sender speaks.
	if _, bad := g.Faulty[sender]; !bad {
		for _, to := range group {
			net.Send(Message{From: sender, To: to, Type: MsgInit, Value: value})
		}
	}

	// Byzantine ids in stable order, so behaviors drawing random numbers
	// stay reproducible.
	faultyIDs := make([]ProcessID, 0, len(g.Faulty))
	for id := range g.Faulty {
		faultyIDs = append(faultyIDs, id)
	}
	sort.Slice(faultyIDs, func(i, j int) bool { return faultyIDs[i] < faultyIDs[j] })

	rounds, steps := 0, 0
	quiesced := false
loop:
	for ; rounds < g.MaxRounds; rounds++ {
		// Byzantine members act on what they received last round (the
		// sender's script also runs in round 0 so it can equivocate).
		for _, id := range faultyIDs {
			for _, m := range g.Faulty[id].Act(id, group, rounds, received[id]) {
				m.From = id // authentication: cannot forge the sender
				net.Send(m)
			}
		}
		if net.Quiet() {
			quiesced = true
			break
		}
		for id := range received {
			received[id] = received[id][:0]
		}
		// Process every inbox in delivery order: canonical or seeded, but
		// never dependent on map iteration.
		for _, d := range net.Deliver() {
			st, correct := states[d.To]
			for _, m := range d.Msgs {
				received[d.To] = append(received[d.To], m)
				if !correct {
					continue
				}
				if steps++; steps > g.MaxSteps {
					res.Outcome = OutcomeStepBudget
					res.Err = &TimeoutError{Outcome: OutcomeStepBudget, Rounds: rounds, Steps: steps}
					break loop
				}
				if g.Record {
					res.Transcript = append(res.Transcript, m)
				}
				for _, out := range st.Step(m, sender) {
					for _, to := range group {
						out.To = to
						net.Send(out)
					}
				}
			}
		}
	}
	if !quiesced && res.Err == nil {
		res.Outcome = OutcomeRoundBudget
		res.Err = &TimeoutError{Outcome: OutcomeRoundBudget, Rounds: rounds, Steps: steps}
	}
	res.Rounds, res.Steps = rounds, steps
	for id, st := range states {
		if v, ok := st.Delivered(); ok {
			res.Delivered[id] = v
		}
	}
	return res
}

// --- Byzantine behavior library -------------------------------------------

// Responder is an optional Behavior extension consulted by the live
// replicated state machine (internal/rsm) for a Byzantine replica's answer
// to a client request — distinct from the agreement messages the behavior
// injects. ok = false means the member stays silent (a crashed replica).
type Responder interface {
	Respond(probe uint64) (value string, ok bool)
}

// Silent is a crashed/muted Byzantine member.
type Silent struct{}

// Act implements Behavior.
func (Silent) Act(ProcessID, []ProcessID, int, []Message) []Message { return nil }

// Respond implements Responder: a silent member never answers.
func (Silent) Respond(uint64) (string, bool) { return "", false }

// EquivocatingSender sends INIT(A) to half the group and INIT(B) to the
// other half in round 0, then echoes both values to everyone.
type EquivocatingSender struct {
	A, B string
}

// Act implements Behavior.
func (e EquivocatingSender) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	var out []Message
	switch round {
	case 0:
		for i, to := range group {
			v := e.A
			if i%2 == 1 {
				v = e.B
			}
			out = append(out, Message{To: to, Type: MsgInit, Value: v})
		}
	case 1, 2:
		for i, to := range group {
			v := e.A
			if i%2 == 1 {
				v = e.B
			}
			out = append(out, Message{To: to, Type: MsgEcho, Value: v})
			out = append(out, Message{To: to, Type: MsgReady, Value: v})
		}
	}
	return out
}

// Respond implements Responder: the equivocator answers with A or B by probe
// parity, so different clients (or retries) can see different lies.
func (e EquivocatingSender) Respond(probe uint64) (string, bool) {
	if probe%2 == 1 {
		return e.B, true
	}
	return e.A, true
}

// RandomLiar injects random echoes and readies for adversarially chosen
// values for a few rounds.
type RandomLiar struct {
	Stream *rng.Stream
	Values []string
}

// Act implements Behavior.
func (r RandomLiar) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	if round > 6 || len(r.Values) == 0 {
		return nil
	}
	var out []Message
	for _, to := range group {
		v := r.Values[r.Stream.Intn(len(r.Values))]
		t := MsgEcho
		if r.Stream.Bernoulli(0.5) {
			t = MsgReady
		}
		out = append(out, Message{To: to, Type: t, Value: v})
	}
	return out
}

// Respond implements Responder: a random value from the repertoire.
func (r RandomLiar) Respond(uint64) (string, bool) {
	if len(r.Values) == 0 {
		return "", false
	}
	return r.Values[r.Stream.Intn(len(r.Values))], true
}

// Collude makes every faulty member echo/ready a single adversarial value.
// It is the worst-case adversary of the repertoire: once the colluders
// reach f+1 members, Bracha's READY amplification lets them drag every
// correct process into delivering the forged value — exactly the paper's
// "group becomes unable to reach consensus" threshold, realized.
type Collude struct{ Value string }

// Act implements Behavior.
func (c Collude) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	if round > 4 {
		return nil
	}
	var out []Message
	for _, to := range group {
		out = append(out, Message{To: to, Type: MsgEcho, Value: c.Value})
		out = append(out, Message{To: to, Type: MsgReady, Value: c.Value})
	}
	return out
}

// Respond implements Responder: always the colluded value.
func (c Collude) Respond(uint64) (string, bool) { return c.Value, true }
