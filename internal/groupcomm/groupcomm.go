// Package groupcomm implements the intrusion-tolerant group-communication
// substrate the ITUA architecture builds on (Section 2 of the paper: "an
// intrusion-tolerant group communication system is used to multicast among
// replica groups and the manager group", with "authenticated Byzantine
// agreement under a timed-asynchronous environment"). The paper models this
// layer by its guarantee — a group with fewer than one third of its active
// members corrupt reaches consensus — and this package provides the
// executable grounding for that guarantee: Bracha's authenticated reliable
// broadcast and a conviction-vote primitive, running over a simulated
// message network with adversarial (Byzantine) members, together with tests
// that demonstrate the properties hold exactly when f < n/3.
package groupcomm

import (
	"fmt"
	"sort"

	"ituaval/internal/rng"
)

// ProcessID identifies a group member. Channels are authenticated: a
// received message's From field cannot be forged, which is the
// "authenticated Byzantine agreement" assumption of the paper.
type ProcessID int

// MsgType is the Bracha protocol phase of a message.
type MsgType int

const (
	// MsgInit carries the sender's proposed value.
	MsgInit MsgType = iota + 1
	// MsgEcho is the witness phase.
	MsgEcho
	// MsgReady is the delivery-commitment phase.
	MsgReady
)

func (t MsgType) String() string {
	switch t {
	case MsgInit:
		return "INIT"
	case MsgEcho:
		return "ECHO"
	case MsgReady:
		return "READY"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Message is one authenticated protocol message.
type Message struct {
	From  ProcessID
	To    ProcessID
	Type  MsgType
	Value string
}

// Behavior scripts a Byzantine member: given the messages it received this
// round, it returns arbitrary messages to inject next round (the From field
// is forced to its own identity by the network — authentication).
type Behavior interface {
	Act(self ProcessID, group []ProcessID, round int, received []Message) []Message
}

// Network simulates reliable authenticated point-to-point channels with
// round-based delivery: messages sent in round r arrive in round r+1.
// Reliability (no loss between correct processes) matches the paper's
// timed-asynchronous model after timeout handling.
type Network struct {
	pending []Message
}

// NewNetwork creates an empty network.
func NewNetwork() *Network { return &Network{} }

// Send queues m for delivery next round. The From field is trusted by the
// caller (the runner enforces authenticity for Byzantine members).
func (n *Network) Send(m Message) { n.pending = append(n.pending, m) }

// Deliver moves pending messages into inboxes and returns each process's
// batch for the new round.
func (n *Network) Deliver() map[ProcessID][]Message {
	out := make(map[ProcessID][]Message)
	for _, m := range n.pending {
		out[m.To] = append(out[m.To], m)
	}
	n.pending = n.pending[:0]
	return out
}

// Quiet reports whether no messages are in flight.
func (n *Network) Quiet() bool { return len(n.pending) == 0 }

// bracha is the per-process state of Bracha's reliable broadcast.
type bracha struct {
	self      ProcessID
	n, f      int
	sentEcho  bool
	sentReady bool
	delivered bool
	value     string
	echoes    map[string]map[ProcessID]bool
	readies   map[string]map[ProcessID]bool
}

func newBracha(self ProcessID, n, f int) *bracha {
	return &bracha{
		self: self, n: n, f: f,
		echoes:  make(map[string]map[ProcessID]bool),
		readies: make(map[string]map[ProcessID]bool),
	}
}

// step consumes one received message and returns the messages to multicast
// (one per group member is produced by the runner).
func (b *bracha) step(m Message, sender ProcessID) (broadcast []Message) {
	record := func(set map[string]map[ProcessID]bool, v string, from ProcessID) int {
		if set[v] == nil {
			set[v] = make(map[ProcessID]bool)
		}
		set[v][from] = true
		return len(set[v])
	}
	mark := func(t MsgType, v string) {
		broadcast = append(broadcast, Message{From: b.self, Type: t, Value: v})
	}
	switch m.Type {
	case MsgInit:
		// Only the designated sender's INIT counts.
		if m.From == sender && !b.sentEcho {
			b.sentEcho = true
			mark(MsgEcho, m.Value)
		}
	case MsgEcho:
		count := record(b.echoes, m.Value, m.From)
		// Echo threshold: > (n+f)/2 distinct echoes.
		if !b.sentReady && 2*count > b.n+b.f {
			b.sentReady = true
			mark(MsgReady, m.Value)
		}
	case MsgReady:
		count := record(b.readies, m.Value, m.From)
		if !b.sentReady && count > b.f {
			// Ready amplification: f+1 readies prove a correct process
			// committed, so join.
			b.sentReady = true
			mark(MsgReady, m.Value)
		}
		if !b.delivered && count > 2*b.f {
			b.delivered = true
			b.value = m.Value
		}
	}
	return broadcast
}

// BroadcastResult reports the outcome of one reliable broadcast.
type BroadcastResult struct {
	// Delivered maps every correct process to the value it delivered;
	// processes that never delivered are absent.
	Delivered map[ProcessID]string
	// Rounds is the number of simulated rounds executed.
	Rounds int
}

// Group describes one reliable-broadcast experiment.
type Group struct {
	// N is the group size; processes are 0..N-1.
	N int
	// Faulty lists the Byzantine members and their behaviors.
	Faulty map[ProcessID]Behavior
	// Tolerance is the fault bound f the protocol is configured for
	// (0 = the actual number of faulty members). Setting it below the
	// actual count models a deployment whose one-third assumption is
	// violated — the regime in which the paper's groups "become unable to
	// reach consensus".
	Tolerance int
	// MaxRounds bounds the simulation (default 50).
	MaxRounds int
}

// members returns all process ids.
func (g Group) members() []ProcessID {
	ids := make([]ProcessID, g.N)
	for i := range ids {
		ids[i] = ProcessID(i)
	}
	return ids
}

// f returns the fault bound the protocol runs with.
func (g Group) f() int {
	if g.Tolerance > 0 {
		return g.Tolerance
	}
	return len(g.Faulty)
}

// ReliableBroadcast runs Bracha's protocol with the given sender and value.
// If the sender is Byzantine its behavior script speaks first (it may
// equivocate); a correct sender multicasts INIT(value).
func ReliableBroadcast(g Group, sender ProcessID, value string) BroadcastResult {
	if g.MaxRounds <= 0 {
		g.MaxRounds = 50
	}
	net := NewNetwork()
	group := g.members()
	states := make(map[ProcessID]*bracha)
	for _, id := range group {
		if _, bad := g.Faulty[id]; !bad {
			states[id] = newBracha(id, g.N, g.f())
		}
	}
	received := make(map[ProcessID][]Message)

	// Round 0: the sender speaks.
	if _, bad := g.Faulty[sender]; !bad {
		for _, to := range group {
			net.Send(Message{From: sender, To: to, Type: MsgInit, Value: value})
		}
	}

	rounds := 0
	for ; rounds < g.MaxRounds; rounds++ {
		// Byzantine members act on what they received last round (the
		// sender's script also runs in round 0 so it can equivocate).
		// Sorted iteration keeps runs reproducible when behaviors draw
		// random numbers.
		faultyIDs := make([]ProcessID, 0, len(g.Faulty))
		for id := range g.Faulty {
			faultyIDs = append(faultyIDs, id)
		}
		sort.Slice(faultyIDs, func(i, j int) bool { return faultyIDs[i] < faultyIDs[j] })
		for _, id := range faultyIDs {
			for _, m := range g.Faulty[id].Act(id, group, rounds, received[id]) {
				m.From = id // authentication: cannot forge the sender
				net.Send(m)
			}
		}
		if net.Quiet() {
			break
		}
		received = net.Deliver()
		// Correct processes handle their batches deterministically
		// (sorted) so runs are reproducible.
		for _, id := range group {
			st, ok := states[id]
			if !ok {
				continue
			}
			batch := received[id]
			sort.Slice(batch, func(i, j int) bool {
				if batch[i].From != batch[j].From {
					return batch[i].From < batch[j].From
				}
				if batch[i].Type != batch[j].Type {
					return batch[i].Type < batch[j].Type
				}
				return batch[i].Value < batch[j].Value
			})
			for _, m := range batch {
				for _, out := range st.step(m, sender) {
					for _, to := range group {
						out.To = to
						net.Send(out)
					}
				}
			}
		}
	}

	res := BroadcastResult{Delivered: make(map[ProcessID]string), Rounds: rounds}
	for id, st := range states {
		if st.delivered {
			res.Delivered[id] = st.value
		}
	}
	return res
}

// --- Byzantine behavior library -------------------------------------------

// Silent is a crashed/muted Byzantine member.
type Silent struct{}

// Act implements Behavior.
func (Silent) Act(ProcessID, []ProcessID, int, []Message) []Message { return nil }

// EquivocatingSender sends INIT(A) to half the group and INIT(B) to the
// other half in round 0, then echoes both values to everyone.
type EquivocatingSender struct {
	A, B string
}

// Act implements Behavior.
func (e EquivocatingSender) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	var out []Message
	switch round {
	case 0:
		for i, to := range group {
			v := e.A
			if i%2 == 1 {
				v = e.B
			}
			out = append(out, Message{To: to, Type: MsgInit, Value: v})
		}
	case 1, 2:
		for i, to := range group {
			v := e.A
			if i%2 == 1 {
				v = e.B
			}
			out = append(out, Message{To: to, Type: MsgEcho, Value: v})
			out = append(out, Message{To: to, Type: MsgReady, Value: v})
		}
	}
	return out
}

// RandomLiar injects random echoes and readies for adversarially chosen
// values for a few rounds.
type RandomLiar struct {
	Stream *rng.Stream
	Values []string
}

// Act implements Behavior.
func (r RandomLiar) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	if round > 6 || len(r.Values) == 0 {
		return nil
	}
	var out []Message
	for _, to := range group {
		v := r.Values[r.Stream.Intn(len(r.Values))]
		t := MsgEcho
		if r.Stream.Bernoulli(0.5) {
			t = MsgReady
		}
		out = append(out, Message{To: to, Type: t, Value: v})
	}
	return out
}

// Collude makes every faulty member echo/ready a single adversarial value.
type Collude struct{ Value string }

// Act implements Behavior.
func (c Collude) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	if round > 4 {
		return nil
	}
	var out []Message
	for _, to := range group {
		out = append(out, Message{To: to, Type: MsgEcho, Value: c.Value})
		out = append(out, Message{To: to, Type: MsgReady, Value: c.Value})
	}
	return out
}
