package groupcomm

import (
	"fmt"
	"testing"

	"ituaval/internal/rng"
)

// correctMembers returns the non-faulty ids of a group.
func correctMembers(g Group) []ProcessID {
	var out []ProcessID
	for _, id := range g.members() {
		if _, bad := g.Faulty[id]; !bad {
			out = append(out, id)
		}
	}
	return out
}

// checkAgreementTotality verifies Bracha's safety/totality: if any correct
// process delivered, all did, and all delivered the same value.
func checkAgreementTotality(t *testing.T, g Group, res BroadcastResult, context string) {
	t.Helper()
	correct := correctMembers(g)
	if len(res.Delivered) == 0 {
		return // nothing delivered: safety holds vacuously
	}
	var value string
	for _, v := range res.Delivered {
		value = v
		break
	}
	for id, v := range res.Delivered {
		if v != value {
			t.Fatalf("%s: disagreement: process %d delivered %q, others %q", context, id, v, value)
		}
	}
	if len(res.Delivered) != len(correct) {
		t.Fatalf("%s: totality violated: %d of %d correct processes delivered",
			context, len(res.Delivered), len(correct))
	}
}

func TestBroadcastAllCorrect(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		g := Group{N: n}
		res := ReliableBroadcast(g, 0, "v")
		if len(res.Delivered) != n {
			t.Fatalf("n=%d: delivered %d", n, len(res.Delivered))
		}
		checkAgreementTotality(t, g, res, fmt.Sprintf("n=%d", n))
		for _, v := range res.Delivered {
			if v != "v" {
				t.Fatalf("n=%d: validity violated: delivered %q", n, v)
			}
		}
	}
}

func TestBroadcastValidityUnderMaxFaults(t *testing.T) {
	// With f = floor((n-1)/3) Byzantine members (any behaviour), a correct
	// sender's value must be delivered by every correct process.
	stream := rng.New(42)
	for _, n := range []int{4, 7, 10, 13} {
		f := (n - 1) / 3
		for trial := 0; trial < 30; trial++ {
			faulty := map[ProcessID]Behavior{}
			// Faulty members are the top ids; mix of behaviors.
			for i := 0; i < f; i++ {
				id := ProcessID(n - 1 - i)
				switch trial % 3 {
				case 0:
					faulty[id] = Silent{}
				case 1:
					faulty[id] = Collude{Value: "evil"}
				default:
					faulty[id] = RandomLiar{Stream: stream.Derive(uint64(trial*100 + i)), Values: []string{"v", "evil", "x"}}
				}
			}
			g := Group{N: n, Faulty: faulty}
			res := ReliableBroadcast(g, 0, "v")
			context := fmt.Sprintf("n=%d f=%d trial=%d", n, f, trial)
			correct := correctMembers(g)
			if len(res.Delivered) != len(correct) {
				t.Fatalf("%s: validity/totality violated: %d of %d delivered",
					context, len(res.Delivered), len(correct))
			}
			for id, v := range res.Delivered {
				if v != "v" {
					t.Fatalf("%s: process %d delivered %q", context, id, v)
				}
			}
		}
	}
}

func TestBroadcastAgreementWithEquivocatingSender(t *testing.T) {
	// A Byzantine sender (plus colluding helpers up to f total) must never
	// cause two correct processes to deliver different values while
	// f < n/3.
	for _, n := range []int{4, 7, 10} {
		f := (n - 1) / 3
		faulty := map[ProcessID]Behavior{0: EquivocatingSender{A: "a", B: "b"}}
		for i := 1; i < f; i++ {
			faulty[ProcessID(i)] = Collude{Value: "a"}
		}
		g := Group{N: n, Faulty: faulty}
		res := ReliableBroadcast(g, 0, "")
		checkAgreementTotality(t, g, res, fmt.Sprintf("n=%d equivocation", n))
	}
}

func TestBroadcastFailsBeyondThreshold(t *testing.T) {
	// A deployment configured for f=1 (n=6) that actually suffers three
	// colluding Byzantine members: the one-third assumption is violated
	// and the colluders can push a forged value through the READY
	// amplification, breaking validity/agreement — exactly why the paper's
	// groups fail once a third or more of the members are corrupt.
	n := 6
	faulty := map[ProcessID]Behavior{
		3: Collude{Value: "forged"},
		4: Collude{Value: "forged"},
		5: Collude{Value: "forged"},
	}
	g := Group{N: n, Faulty: faulty, Tolerance: 1}
	res := ReliableBroadcast(g, 0, "v")
	violated := false
	correct := correctMembers(g)
	if len(res.Delivered) != 0 && len(res.Delivered) != len(correct) {
		violated = true // totality broken
	}
	seen := map[string]bool{}
	for _, v := range res.Delivered {
		seen[v] = true
	}
	if len(seen) > 1 || seen["forged"] {
		violated = true // agreement or validity broken
	}
	if !violated {
		t.Fatalf("expected a property violation beyond the tolerated fault bound; delivered=%v", res.Delivered)
	}
}

func TestByzantineSenderCannotForgeIdentity(t *testing.T) {
	// A Byzantine member that claims to be the (correct) sender must be
	// ignored: the network stamps the real From.
	n := 4
	g := Group{N: n, Faulty: map[ProcessID]Behavior{3: impostorBehavior{}}}
	res := ReliableBroadcast(g, 0, "v")
	checkAgreementTotality(t, g, res, "impostor")
	for _, v := range res.Delivered {
		if v != "v" {
			t.Fatalf("impostor changed the delivered value to %q", v)
		}
	}
}

// impostorBehavior claims INIT messages in the sender's name; the network
// must overwrite From with the real identity.
type impostorBehavior struct{}

func (impostorBehavior) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	if round > 1 {
		return nil
	}
	var out []Message
	for _, to := range group {
		out = append(out, Message{From: 0 /* forged */, To: to, Type: MsgInit, Value: "forged"})
	}
	return out
}

func TestMsgTypeString(t *testing.T) {
	if MsgInit.String() != "INIT" || MsgEcho.String() != "ECHO" || MsgReady.String() != "READY" {
		t.Fatal("message type names")
	}
	if MsgType(9).String() == "" {
		t.Fatal("unknown type formatting")
	}
}

func TestConvictionVoteQuorum(t *testing.T) {
	// 7 members, 2 Byzantine (silent). All 5 correct members vote guilty:
	// 5 > 2*7/3 ≈ 4.67, so everyone convicts.
	spec := VoteSpec{
		N:            7,
		Faulty:       map[ProcessID]Behavior{5: Silent{}, 6: Silent{}},
		GuiltyVoters: []ProcessID{0, 1, 2, 3, 4},
	}
	res := ConvictionVote(spec)
	for id, convicted := range res.Convicted {
		if !convicted {
			t.Fatalf("member %d did not convict with %d votes", id, res.VotesDelivered[id])
		}
	}
}

func TestConvictionVoteInsufficientQuorum(t *testing.T) {
	// Only 4 of 7 correct members vote guilty: 4 < 2*7/3 quorum fails —
	// the group cannot convict, exactly the paper's "group becomes unable
	// to reach consensus" regime.
	spec := VoteSpec{
		N:            7,
		Faulty:       map[ProcessID]Behavior{5: Silent{}, 6: Silent{}},
		GuiltyVoters: []ProcessID{0, 1, 2, 3},
	}
	res := ConvictionVote(spec)
	for id, convicted := range res.Convicted {
		if convicted {
			t.Fatalf("member %d convicted with only %d votes", id, res.VotesDelivered[id])
		}
	}
}

func TestConvictionVoteOneThirdBound(t *testing.T) {
	// The paper's threshold: with strictly fewer than a third corrupt, the
	// remaining > 2/3 correct voters suffice to convict; at exactly a
	// third they no longer do.
	for _, tc := range []struct {
		n       int
		faulty  int
		convict bool
	}{
		{6, 1, true},  // 5 voters > 4 quorum
		{6, 2, false}, // 4 voters = 2n/3, not strictly greater
		{9, 2, true},  // 7 > 6
		{9, 3, false}, // 6 = 2n/3
	} {
		faulty := map[ProcessID]Behavior{}
		var voters []ProcessID
		for i := 0; i < tc.n; i++ {
			if i >= tc.n-tc.faulty {
				faulty[ProcessID(i)] = Silent{}
			} else {
				voters = append(voters, ProcessID(i))
			}
		}
		res := ConvictionVote(VoteSpec{N: tc.n, Faulty: faulty, GuiltyVoters: voters})
		for id, convicted := range res.Convicted {
			if convicted != tc.convict {
				t.Fatalf("n=%d faulty=%d: member %d convicted=%v want %v (votes=%d)",
					tc.n, tc.faulty, id, convicted, tc.convict, res.VotesDelivered[id])
			}
		}
	}
}
