package groupcomm

import (
	"errors"
	"reflect"
	"testing"

	"ituaval/internal/rng"
)

// Two broadcasts with the same delivery seed must produce byte-identical
// transcripts (the regression test for the old map-iteration-order leak in
// Network.Deliver), and a different seed must be able to produce a
// different interleaving while preserving the protocol outcome.
func TestBroadcastTranscriptDeterminism(t *testing.T) {
	mk := func(seed uint64) BroadcastResult {
		g := Group{
			N: 7,
			Faulty: map[ProcessID]Behavior{
				5: Collude{Value: "evil"},
				6: RandomLiar{Stream: rng.New(99), Values: []string{"v", "evil"}},
			},
			Seed:   seed,
			Record: true,
		}
		return ReliableBroadcast(g, 0, "v")
	}
	a, b := mk(42), mk(42)
	if !reflect.DeepEqual(a.Transcript, b.Transcript) {
		t.Fatalf("same seed, different transcripts: %d vs %d messages", len(a.Transcript), len(b.Transcript))
	}
	if !reflect.DeepEqual(a.Delivered, b.Delivered) || a.Rounds != b.Rounds || a.Steps != b.Steps {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}

	// Across seeds the interleaving may differ but safety must not.
	c := mk(43)
	for id, v := range c.Delivered {
		if v != "v" {
			t.Fatalf("seed 43: process %d delivered %q", id, v)
		}
	}
	differs := false
	for _, seed := range []uint64{43, 44, 45, 46} {
		if !reflect.DeepEqual(mk(seed).Transcript, a.Transcript) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("seeded delivery order never changed the transcript across four seeds")
	}
}

// The seeded network must shuffle only the order, never the multiset, of
// in-flight messages.
func TestSeededNetworkPreservesMessages(t *testing.T) {
	canon, seeded := NewNetwork(), NewSeededNetwork(rng.New(7))
	msgs := []Message{
		{From: 0, To: 1, Type: MsgInit, Value: "a"},
		{From: 0, To: 2, Type: MsgInit, Value: "a"},
		{From: 1, To: 1, Type: MsgEcho, Value: "b"},
		{From: 2, To: 1, Type: MsgReady, Value: "c"},
	}
	for _, m := range msgs {
		canon.Send(m)
		seeded.Send(m)
	}
	count := func(ds []Delivery) map[Message]int {
		out := map[Message]int{}
		for _, d := range ds {
			for _, m := range d.Msgs {
				out[m]++
			}
		}
		return out
	}
	a, b := count(canon.Deliver()), count(seeded.Deliver())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded delivery changed the message multiset: %v vs %v", a, b)
	}
	if !canon.Quiet() || !seeded.Quiet() {
		t.Fatal("Deliver left messages in flight")
	}
}

// A behavior that floods the network forever must terminate with a
// classified budget result instead of spinning (satellite: round/step
// budget with PR-1-style error taxonomy).
type floodBehavior struct{}

func (floodBehavior) Act(self ProcessID, group []ProcessID, round int, _ []Message) []Message {
	var out []Message
	for _, to := range group {
		out = append(out, Message{To: to, Type: MsgEcho, Value: "flood"})
	}
	return out
}

func TestBroadcastBudgetClassified(t *testing.T) {
	// Round budget: the flood keeps the network non-quiet past MaxRounds.
	g := Group{N: 4, Faulty: map[ProcessID]Behavior{3: floodBehavior{}}, MaxRounds: 5}
	res := ReliableBroadcast(g, 0, "v")
	if res.Outcome != OutcomeRoundBudget {
		t.Fatalf("outcome = %v, want %v", res.Outcome, OutcomeRoundBudget)
	}
	var te *TimeoutError
	if !errors.As(res.Err, &te) || te.Outcome != OutcomeRoundBudget {
		t.Fatalf("expected a classified *TimeoutError, got %v", res.Err)
	}
	// The honest broadcast still delivered before the budget hit.
	if got := len(res.Delivered); got != 3 {
		t.Fatalf("flood prevented honest delivery: %d of 3 delivered", got)
	}

	// Step budget: a tiny MaxSteps trips mid-round.
	g = Group{N: 4, Faulty: map[ProcessID]Behavior{3: floodBehavior{}}, MaxRounds: 50, MaxSteps: 3}
	res = ReliableBroadcast(g, 0, "v")
	if res.Outcome != OutcomeStepBudget {
		t.Fatalf("outcome = %v, want %v", res.Outcome, OutcomeStepBudget)
	}
	// Steps counts the message that tripped the budget.
	if !errors.As(res.Err, &te) || te.Outcome != OutcomeStepBudget || te.Steps <= 3 {
		t.Fatalf("expected a classified step-budget error, got %v", res.Err)
	}

	// A clean run stays quiescent with a nil error.
	res = ReliableBroadcast(Group{N: 4}, 0, "v")
	if res.Outcome != OutcomeQuiescent || res.Err != nil {
		t.Fatalf("clean run misclassified: outcome %v err %v", res.Outcome, res.Err)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeQuiescent.String() != "quiescent" ||
		OutcomeRoundBudget.String() != "round-budget" ||
		OutcomeStepBudget.String() != "step-budget" {
		t.Fatal("outcome names")
	}
	if Outcome(9).String() == "" {
		t.Fatal("unknown outcome formatting")
	}
}
