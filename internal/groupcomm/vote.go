package groupcomm

// Conviction voting: the ITUA managers and replication groups "reach a
// consensus, either to convict a group member … or to help managers decide
// where to place a new replica" (Section 2). This file implements the
// conviction primitive on top of reliable broadcast: each member reliably
// broadcasts its vote, and a member convicts once it has delivered
// identical votes from more than two thirds of the group. The paper's
// enabling condition "less than a third of the currently active group
// members are corrupt" is exactly the condition under which this primitive
// is live and safe, which the tests demonstrate.

// VoteResult reports the outcome of a conviction vote.
type VoteResult struct {
	// Convicted maps each correct member to whether it convicted the
	// accused.
	Convicted map[ProcessID]bool
	// VotesDelivered counts, per correct member, the guilty votes it
	// delivered.
	VotesDelivered map[ProcessID]int
}

// VoteSpec describes a conviction vote on one accused member.
type VoteSpec struct {
	// N is the group size.
	N int
	// Faulty are the Byzantine members (they may vote arbitrarily or stay
	// silent; behaviors drive the underlying broadcasts they originate).
	Faulty map[ProcessID]Behavior
	// GuiltyVoters are the correct members that observed the misbehaviour
	// and vote guilty; other correct members abstain (vote only when they
	// have evidence — the conservative case for liveness).
	GuiltyVoters []ProcessID
	// MaxRounds bounds each underlying broadcast.
	MaxRounds int
}

// ConvictionVote runs one vote: every guilty voter reliably broadcasts its
// vote; every Byzantine member's behavior scripts its own broadcast
// instance. A correct member convicts when it has delivered guilty votes
// from more than 2N/3 distinct members.
func ConvictionVote(spec VoteSpec) VoteResult {
	g := Group{N: spec.N, Faulty: spec.Faulty, MaxRounds: spec.MaxRounds}
	votes := make(map[ProcessID]map[ProcessID]bool) // member -> voters whose guilty vote it delivered

	members := g.members()
	for _, id := range members {
		if _, bad := spec.Faulty[id]; !bad {
			votes[id] = make(map[ProcessID]bool)
		}
	}
	record := func(voter ProcessID, res BroadcastResult) {
		for member, value := range res.Delivered {
			if value == "guilty" {
				votes[member][voter] = true
			}
		}
	}
	// Correct guilty voters broadcast "guilty".
	for _, voter := range spec.GuiltyVoters {
		if _, bad := spec.Faulty[voter]; bad {
			continue
		}
		record(voter, ReliableBroadcast(g, voter, "guilty"))
	}
	// Byzantine members originate their own (scripted) broadcasts.
	for id := range spec.Faulty {
		record(id, ReliableBroadcast(g, id, ""))
	}

	out := VoteResult{
		Convicted:      make(map[ProcessID]bool),
		VotesDelivered: make(map[ProcessID]int),
	}
	for member, seen := range votes {
		out.VotesDelivered[member] = len(seen)
		out.Convicted[member] = 3*len(seen) > 2*spec.N
	}
	return out
}
