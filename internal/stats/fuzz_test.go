package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFloats reinterprets the fuzzer's byte stream as float64s so the
// corpus reaches NaNs, infinities, subnormals, and signed zeros.
func fuzzFloats(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

func fuzzBytes(xs ...float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

// FuzzQuantile checks the order-statistic interpolation never panics on a
// non-empty sample with p in [0,1], and that for NaN-free samples the
// result stays within the sample range — the property downstream callers
// (figure percentile bands) rely on.
func FuzzQuantile(f *testing.F) {
	f.Add(fuzzBytes(1, 2, 3), 0.5)
	f.Add(fuzzBytes(0), 0.0)
	f.Add(fuzzBytes(math.Inf(1), -1), 1.0)
	f.Fuzz(func(t *testing.T, data []byte, p float64) {
		xs := fuzzFloats(data)
		if len(xs) == 0 || math.IsNaN(p) || p < 0 || p > 1 {
			return // documented panic cases
		}
		q := Quantile(xs, p)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) {
				return // NaN poisons ordering; only panic-freedom applies
			}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if !math.IsNaN(q) && (q < lo || q > hi) {
			t.Fatalf("Quantile(%v, %g) = %g outside sample range [%g, %g]", xs, p, q, lo, hi)
		}
	})
}

// FuzzBatchMeans checks the error contract (reject fewer than 2 batches or
// more batches than observations) and that a successful split always yields
// exactly nbatches batch means.
func FuzzBatchMeans(f *testing.F) {
	f.Add(fuzzBytes(1, 2, 3, 4), 2)
	f.Add(fuzzBytes(1), 5)
	f.Add(fuzzBytes(), 0)
	f.Fuzz(func(t *testing.T, data []byte, nbatches int) {
		xs := fuzzFloats(data)
		acc, err := BatchMeans(xs, nbatches)
		if nbatches <= 1 || len(xs) < nbatches {
			if err == nil {
				t.Fatalf("BatchMeans(%d obs, %d batches) accepted invalid input", len(xs), nbatches)
			}
			return
		}
		if err != nil {
			t.Fatalf("BatchMeans(%d obs, %d batches): %v", len(xs), nbatches, err)
		}
		if acc.N() != int64(nbatches) {
			t.Fatalf("got %d batch means, want %d", acc.N(), nbatches)
		}
	})
}
