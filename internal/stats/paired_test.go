package stats

import (
	"math"
	"testing"
)

func TestPairedTBasic(t *testing.T) {
	// Strongly positively correlated pairs: delta variance far below the
	// sum of the marginal variances.
	a := []float64{1.0, 2.0, 3.0, 4.0, 5.0}
	b := []float64{0.9, 1.8, 2.9, 3.8, 4.9}
	r, err := PairedT(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 5 || r.Dropped != 0 {
		t.Fatalf("N=%d Dropped=%d, want 5 and 0", r.N, r.Dropped)
	}
	if math.Abs(r.Delta-0.14) > 1e-12 {
		t.Fatalf("Delta = %v, want 0.14", r.Delta)
	}
	if r.Corr < 0.99 {
		t.Fatalf("Corr = %v, want near 1", r.Corr)
	}
	if r.VRF < 10 {
		t.Fatalf("VRF = %v, want large for near-perfectly correlated pairs", r.VRF)
	}
	if r.Lo > r.Delta || r.Hi < r.Delta || r.HalfWidth <= 0 {
		t.Fatalf("inconsistent CI: [%v, %v] around %v (hw %v)", r.Lo, r.Hi, r.Delta, r.HalfWidth)
	}
}

func TestPairedTDropsNaNPairs(t *testing.T) {
	nan := math.NaN()
	a := []float64{1, nan, 3, 4}
	b := []float64{2, 2, nan, 5}
	r, err := PairedT(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 2 || r.Dropped != 2 {
		t.Fatalf("N=%d Dropped=%d, want 2 and 2", r.N, r.Dropped)
	}
	if math.Abs(r.Delta-(-1)) > 1e-12 {
		t.Fatalf("Delta = %v, want -1", r.Delta)
	}
}

func TestPairedTTooFewPairs(t *testing.T) {
	if _, err := PairedT([]float64{1}, []float64{2}, 0.95); err == nil {
		t.Fatal("paired-t accepted a single pair")
	}
	nan := math.NaN()
	if _, err := PairedT([]float64{1, nan, nan}, []float64{2, 3, 4}, 0.95); err == nil {
		t.Fatal("paired-t accepted one complete pair out of three")
	}
	if _, err := PairedT(nil, nil, 0.95); err == nil {
		t.Fatal("paired-t accepted empty samples")
	}
	if _, err := PairedT([]float64{1, 2}, []float64{1}, 0.95); err == nil {
		t.Fatal("paired-t accepted mismatched lengths")
	}
	if _, err := PairedT([]float64{1, 2}, []float64{3, 4}, 1.0); err == nil {
		t.Fatal("paired-t accepted confidence level 1")
	}
}

func TestPairedTZeroVarianceDeltas(t *testing.T) {
	// Identical offset between the samples: every delta is exactly 0.25, so
	// the interval collapses to a point and the VRF is +Inf.
	a := []float64{1.25, 2.25, 3.25, 4.25}
	b := []float64{1.0, 2.0, 3.0, 4.0}
	r, err := PairedT(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r.VarDelta != 0 {
		t.Fatalf("VarDelta = %v, want exactly 0", r.VarDelta)
	}
	if r.HalfWidth != 0 {
		t.Fatalf("HalfWidth = %v, want 0 for constant deltas", r.HalfWidth)
	}
	if !math.IsInf(r.VRF, 1) {
		t.Fatalf("VRF = %v, want +Inf", r.VRF)
	}
	if math.Abs(r.Delta-0.25) > 1e-12 {
		t.Fatalf("Delta = %v, want 0.25", r.Delta)
	}
	// Fully constant samples: no variance anywhere, correlation and VRF are
	// undefined, but the delta itself is still exact.
	c := []float64{7, 7, 7}
	d := []float64{5, 5, 5}
	r2, err := PairedT(c, d, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r2.Corr) {
		t.Fatalf("Corr of constant samples = %v, want NaN", r2.Corr)
	}
	if !math.IsNaN(r2.VRF) {
		t.Fatalf("VRF with zero variance everywhere = %v, want NaN", r2.VRF)
	}
	if r2.Delta != 2 || r2.HalfWidth != 0 {
		t.Fatalf("Delta=%v HalfWidth=%v, want 2 and 0", r2.Delta, r2.HalfWidth)
	}
}

func TestCorrEdgeCases(t *testing.T) {
	if c := Corr([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("Corr of proportional samples = %v, want 1", c)
	}
	if c := Corr([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("Corr of reversed samples = %v, want -1", c)
	}
	if c := Corr([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(c) {
		t.Fatalf("Corr with a constant sample = %v, want NaN", c)
	}
	if c := Corr([]float64{1}, []float64{2}); !math.IsNaN(c) {
		t.Fatalf("Corr of single pair = %v, want NaN", c)
	}
	if c := Corr([]float64{1, 2}, []float64{1}); !math.IsNaN(c) {
		t.Fatalf("Corr of mismatched lengths = %v, want NaN", c)
	}
}

func TestVarianceReductionFactor(t *testing.T) {
	if v := VarianceReductionFactor(2, 2, 1); v != 4 {
		t.Fatalf("VRF(2,2,1) = %v, want 4", v)
	}
	if v := VarianceReductionFactor(1, 1, 4); v != 0.5 {
		t.Fatalf("VRF(1,1,4) = %v, want 0.5 (CRN hurt)", v)
	}
	if v := VarianceReductionFactor(1, 1, 0); !math.IsInf(v, 1) {
		t.Fatalf("VRF with zero delta variance = %v, want +Inf", v)
	}
	if v := VarianceReductionFactor(0, 0, 0); !math.IsNaN(v) {
		t.Fatalf("VRF with no variance anywhere = %v, want NaN", v)
	}
}

func TestPrecisionMet(t *testing.T) {
	cases := []struct {
		name               string
		mean, hw, rel, abs float64
		want               bool
	}{
		{"relative met", 10, 0.5, 0.1, 0, true},
		{"relative missed", 10, 1.5, 0.1, 0, false},
		{"relative boundary", 10, 1.0, 0.1, 0, true},
		{"absolute met", 10, 0.01, 0, 0.02, true},
		{"absolute missed", 10, 0.05, 0, 0.02, false},
		{"either suffices", 0.001, 0.015, 0.1, 0.02, true},
		{"negative mean uses magnitude", -10, 0.5, 0.1, 0, true},
		{"no target requested", 10, 0.001, 0, 0, false},
		{"nan half-width", 10, math.NaN(), 0.1, 1, false},
	}
	for _, c := range cases {
		if got := PrecisionMet(c.mean, c.hw, c.rel, c.abs); got != c.want {
			t.Errorf("%s: PrecisionMet(%v, %v, %v, %v) = %v, want %v",
				c.name, c.mean, c.hw, c.rel, c.abs, got, c.want)
		}
	}
}

// TestPrecisionMetAtZeroMean pins the mean≈0 degradation of the relative
// rule: no positive half-width can satisfy rel·|0|, only an exact zero
// half-width does, and an absolute target rescues the case.
func TestPrecisionMetAtZeroMean(t *testing.T) {
	if PrecisionMet(0, 1e-300, 0.01, 0) {
		t.Fatal("relative rule satisfied at mean 0 with positive half-width")
	}
	if !PrecisionMet(0, 0, 0.01, 0) {
		t.Fatal("relative rule rejected an exactly-zero half-width at mean 0")
	}
	if !PrecisionMet(0, 1e-6, 0.01, 1e-5) {
		t.Fatal("absolute target did not rescue the mean-0 case")
	}
	if PrecisionMet(math.NaN(), 0.5, 0.01, 0) {
		t.Fatal("relative rule satisfied with NaN mean")
	}
}

// TestTQuantileExtremeTails exercises the inverse-t far into the tails,
// where the bracketing search must still converge: tiny tail probabilities,
// one degree of freedom (Cauchy, heavy tails), and large df (≈ normal).
func TestTQuantileExtremeTails(t *testing.T) {
	// df=1 is the Cauchy distribution: quantile(p) = tan(π(p−1/2)).
	for _, p := range []float64{0.999, 0.9999, 0.99999} {
		want := math.Tan(math.Pi * (p - 0.5))
		got := TQuantile(p, 1)
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("TQuantile(%v, 1) = %v, want %v (Cauchy)", p, got, want)
		}
	}
	// Symmetry deep in the lower tail.
	if got, want := TQuantile(1e-5, 3), -TQuantile(1-1e-5, 3); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("tail symmetry broken: %v vs %v", got, want)
	}
	// Large df converges to the normal quantile.
	if got, want := TQuantile(0.9999, 1e6), NormalQuantile(0.9999); math.Abs(got-want) > 1e-3 {
		t.Errorf("TQuantile(0.9999, 1e6) = %v, want ≈ %v", got, want)
	}
	// Round-trip through the CDF far out in the tail.
	for _, df := range []float64{1, 2, 5, 30} {
		q := TQuantile(0.99999, df)
		if p := TCDF(q, df); math.Abs(p-0.99999) > 1e-9 {
			t.Errorf("TCDF(TQuantile(0.99999, %v)) = %v", df, p)
		}
	}
	// Degenerate arguments.
	if !math.IsInf(TQuantile(1, 5), 1) || !math.IsInf(TQuantile(0, 5), -1) {
		t.Error("TQuantile at p∈{0,1} should be ±Inf")
	}
	if !math.IsNaN(TQuantile(0.5, 0)) {
		t.Error("TQuantile with df=0 should be NaN")
	}
}
