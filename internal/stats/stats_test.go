package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ituaval/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) {
		t.Fatal("empty accumulator should report NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	almost(t, a.Mean(), 5, 1e-12, "mean")
	almost(t, a.Variance(), 32.0/7, 1e-12, "variance")
	almost(t, a.Min(), 2, 0, "min")
	almost(t, a.Max(), 9, 0, "max")
	almost(t, a.Sum(), 40, 1e-9, "sum")
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	s := rng.New(1)
	var whole, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := s.Float64()*10 - 5
		whole.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	almost(t, left.Mean(), whole.Mean(), 1e-10, "merged mean")
	almost(t, left.Variance(), whole.Variance(), 1e-9, "merged variance")
	almost(t, left.Min(), whole.Min(), 0, "merged min")
	almost(t, left.Max(), whole.Max(), 0, "merged max")
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d want %d", left.N(), whole.N())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	almost(t, a.Mean(), 2, 1e-12, "mean after empty merge")
	b.Merge(&a) // merging into empty copies
	almost(t, b.Mean(), 2, 1e-12, "mean after merge into empty")
}

func TestHalfWidthKnownValue(t *testing.T) {
	// n=10 samples with stddev s: hw95 = t_{0.975,9} * s/sqrt(10),
	// t_{0.975,9} = 2.262157...
	var a Accumulator
	for i := 0; i < 10; i++ {
		a.Add(float64(i))
	}
	want := 2.2621571628 * a.StdErr()
	almost(t, a.HalfWidth(0.95), want, 1e-6, "hw95")
	lo, hi := a.CI(0.95)
	almost(t, hi-lo, 2*want, 1e-6, "CI width")
}

func TestCICoverage(t *testing.T) {
	// 95% CIs over repeated experiments should cover the true mean ~95% of
	// the time. 400 experiments of 30 exponential samples; allow 90–99%.
	root := rng.New(2024)
	covered := 0
	const experiments = 400
	for e := 0; e < experiments; e++ {
		s := root.Derive(uint64(e))
		var a Accumulator
		for i := 0; i < 30; i++ {
			a.Add(s.Expo(2))
		}
		lo, hi := a.CI(0.95)
		if lo <= 0.5 && 0.5 <= hi {
			covered++
		}
	}
	frac := float64(covered) / experiments
	if frac < 0.90 || frac > 0.995 {
		t.Fatalf("95%% CI coverage was %v", frac)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	almost(t, Quantile(xs, 0), 1, 0, "q0")
	almost(t, Quantile(xs, 1), 5, 0, "q1")
	almost(t, Quantile(xs, 0.5), 3, 0, "median")
	almost(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	almost(t, Quantile([]float64{7}, 0.3), 7, 0, "singleton")
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts=%v", h.Counts)
	}
	almost(t, h.BinCenter(0), 1, 1e-12, "bin center")
	almost(t, h.Density(0), 2.0/(7*2), 1e-12, "density")
	if h.Total() != 7 {
		t.Fatalf("total=%d", h.Total())
	}
}

func TestBatchMeans(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	acc, err := BatchMeans(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, acc.Mean(), 4.5, 1e-12, "batch mean")
	if acc.N() != 10 {
		t.Fatalf("batches=%d", acc.N())
	}
	if _, err := BatchMeans(xs, 1); err == nil {
		t.Fatal("expected error for 1 batch")
	}
	if _, err := BatchMeans(xs[:5], 10); err == nil {
		t.Fatal("expected error for too few observations")
	}
}

func TestQuickAccumulatorMeanWithinRange(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		anyFinite := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				continue // avoid float64 overflow in delta products
			}
			anyFinite = true
			a.Add(x)
		}
		if !anyFinite {
			return true
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accumulator
		for _, r := range raw {
			a.Add(float64(r))
		}
		return a.Variance() >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
