// Package stats provides the statistical substrate used throughout the
// library: numerically stable online accumulators, Student-t confidence
// intervals for simulation output analysis, sample quantiles, histograms,
// goodness-of-fit statistics, and batch-means estimation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator maintains running moments of a sample using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge combines another accumulator into a (parallel reduction), using the
// Chan et al. pairwise update.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (NaN if empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Sum returns n times the mean.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Variance returns the unbiased sample variance (NaN if fewer than two
// observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (NaN if empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN if empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// HalfWidth returns the half-width of a two-sided confidence interval for
// the mean at the given confidence level (e.g. 0.95), using the Student-t
// quantile with n-1 degrees of freedom. It returns NaN for n < 2.
func (a *Accumulator) HalfWidth(level float64) float64 {
	if a.n < 2 {
		return math.NaN()
	}
	t := TQuantile(1-(1-level)/2, float64(a.n-1))
	return t * a.StdErr()
}

// CI returns the confidence interval (lo, hi) for the mean at level.
func (a *Accumulator) CI(level float64) (lo, hi float64) {
	hw := a.HalfWidth(level)
	return a.mean - hw, a.mean + hw
}

// String formats the accumulator as "mean ± hw95 (n=N)".
func (a *Accumulator) String() string {
	return fmt.Sprintf("%.6g ± %.2g (n=%d)", a.Mean(), a.HalfWidth(0.95), a.n)
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type 7, the R default). It panics
// on an empty sample or p outside [0,1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if p < 0 || p > 1 {
		panic("stats: quantile p outside [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	i := int(math.Floor(h))
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}

// Histogram counts observations into equal-width bins over [Lo, Hi].
// Observations outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Counts      []int64
	Under, Over int64
	total       int64
}

// NewHistogram creates a histogram with bins equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the estimated probability density at bin i.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * w)
}

// BatchMeans splits a (stationary) series into nbatches contiguous batches
// and returns an accumulator over the batch means, the standard technique
// for confidence intervals on steady-state simulation output. It returns an
// error if there are fewer observations than batches.
func BatchMeans(xs []float64, nbatches int) (*Accumulator, error) {
	if nbatches <= 1 {
		return nil, fmt.Errorf("stats: need at least 2 batches, got %d", nbatches)
	}
	if len(xs) < nbatches {
		return nil, fmt.Errorf("stats: %d observations for %d batches", len(xs), nbatches)
	}
	size := len(xs) / nbatches
	acc := &Accumulator{}
	for b := 0; b < nbatches; b++ {
		sum := 0.0
		for i := b * size; i < (b+1)*size; i++ {
			sum += xs[i]
		}
		acc.Add(sum / float64(size))
	}
	return acc, nil
}
