package stats

import (
	"math"
	"testing"

	"ituaval/internal/rng"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{1, 1, 0.3, 0.3},     // I_x(1,1) = x
		{2, 2, 0.5, 0.5},     // symmetric
		{2, 1, 0.5, 0.25},    // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75},    // 1-(1-x)^2
		{5, 3, 0, 0},         // bounds
		{5, 3, 1, 1},         // bounds
		{0.5, 0.5, 0.5, 0.5}, // arcsine distribution median
		// I_0.9(10,2) = P(Bin(11,0.9) >= 10) = 11·0.9^10·0.1 + 0.9^11
		{10, 2, 0.9, 0.6973568802},
	}
	for _, c := range cases {
		got := RegIncBeta(c.a, c.b, c.x)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("I_%v(%v,%v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 1, 2, 5} {
		want := 1 - math.Exp(-x)
		if got := RegGammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a,0)=0, Q+P=1
	if RegGammaP(3, 0) != 0 {
		t.Error("P(3,0) != 0")
	}
	if math.Abs(RegGammaP(2.5, 3)+RegGammaQ(2.5, 3)-1) > 1e-12 {
		t.Error("P+Q != 1")
	}
}

func TestNormalCDFQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
	// Known values.
	if math.Abs(NormalQuantile(0.975)-1.959963985) > 1e-6 {
		t.Errorf("z_{0.975} = %v", NormalQuantile(0.975))
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-9 {
		t.Errorf("z_{0.5} = %v", NormalQuantile(0.5))
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, nu, want float64
	}{
		{0.975, 1, 12.7062},
		{0.975, 9, 2.262157},
		{0.975, 29, 2.045230},
		{0.95, 9, 1.833113},
		{0.975, 1000, 1.962339},
		{0.5, 7, 0},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.nu)
		if math.Abs(got-c.want) > 2e-4*(1+math.Abs(c.want)) {
			t.Errorf("t_{%v,%v} = %v, want %v", c.p, c.nu, got, c.want)
		}
	}
	// Symmetry.
	if math.Abs(TQuantile(0.025, 9)+TQuantile(0.975, 9)) > 1e-9 {
		t.Error("t quantile not symmetric")
	}
}

func TestTCDFQuantileRoundTrip(t *testing.T) {
	for _, nu := range []float64{1, 3, 10, 100} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			x := TQuantile(p, nu)
			if got := TCDF(x, nu); math.Abs(got-p) > 1e-8 {
				t.Errorf("TCDF(TQuantile(%v,%v)) = %v", p, nu, got)
			}
		}
	}
}

func TestChiSquareCDF(t *testing.T) {
	// ChiSquare(2) is Expo(1/2): CDF(x) = 1-exp(-x/2).
	for _, x := range []float64{0.5, 1, 3, 8} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareCDF(%v,2) = %v, want %v", x, got, want)
		}
	}
	// 95th percentile of chi2 with 15 dof is 24.9958.
	if p := ChiSquarePValue(24.9958, 15); math.Abs(p-0.05) > 1e-4 {
		t.Errorf("chi2 p-value = %v, want 0.05", p)
	}
}

func TestKSExponentialSample(t *testing.T) {
	// A genuine exponential sample should not be rejected at α=0.01.
	s := rng.New(42)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = s.Expo(3)
	}
	d := KSStatistic(xs, func(x float64) float64 { return 1 - math.Exp(-3*x) })
	p := KSPValue(d, len(xs))
	if p < 0.01 {
		t.Fatalf("KS rejected a true exponential sample: D=%v p=%v", d, p)
	}
	// A wrong-rate hypothesis should be strongly rejected.
	dBad := KSStatistic(xs, func(x float64) float64 { return 1 - math.Exp(-1*x) })
	if pBad := KSPValue(dBad, len(xs)); pBad > 1e-6 {
		t.Fatalf("KS failed to reject a wrong CDF: D=%v p=%v", dBad, pBad)
	}
}

func TestKSEdgeCases(t *testing.T) {
	if !math.IsNaN(KSStatistic(nil, NormalCDF)) {
		t.Error("KS of empty sample should be NaN")
	}
	if KSPValue(0, 100) != 1 {
		t.Error("KS p-value at D=0 should be 1")
	}
}

func TestChiSquareGOF(t *testing.T) {
	// Perfect fit: statistic 0, p-value 1.
	obs := []int64{25, 25, 25, 25}
	exp := []float64{25, 25, 25, 25}
	stat, p := ChiSquareGOF(obs, exp, 0)
	if stat != 0 || p != 1 {
		t.Fatalf("perfect fit gave stat=%v p=%v", stat, p)
	}
	// Gross misfit rejected.
	stat, p = ChiSquareGOF([]int64{100, 0, 0, 0}, exp, 0)
	if p > 1e-10 {
		t.Fatalf("gross misfit p=%v (stat=%v)", p, stat)
	}
	// Zero-expected bins skipped.
	stat2, _ := ChiSquareGOF([]int64{50, 50, 3}, []float64{50, 50, 0}, 0)
	if stat2 != 0 {
		t.Fatalf("zero-expected bin contributed: %v", stat2)
	}
}
