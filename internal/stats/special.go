package stats

import "math"

// Special functions needed by the Student-t, chi-square, and
// Kolmogorov–Smirnov routines. Implementations follow the classic
// continued-fraction and series forms (Numerical Recipes style) with
// double-precision tolerances.

// LogBeta returns log B(a, b).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	bt := math.Exp(a*math.Log(x) + b*math.Log(1-x) - LogBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a).
func RegGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegGammaQ returns the regularized upper incomplete gamma function Q(a, x).
func RegGammaQ(a, x float64) float64 { return 1 - RegGammaP(a, x) }

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaCF(a, x float64) float64 {
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// NormalCDF returns the standard normal distribution function Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1) using the
// Beasley–Springer–Moro refinement via bisection+Newton on NormalCDF, which
// is simple and accurate to ~1e-12.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Initial guess: rational approximation (Acklam's coefficients would be
	// fine; a crude logit start converges quickly under Newton).
	x := 0.0
	if p < 0.5 {
		x = -math.Sqrt(-2 * math.Log(p))
	} else if p > 0.5 {
		x = math.Sqrt(-2 * math.Log(1-p))
	}
	for i := 0; i < 100; i++ {
		f := NormalCDF(x) - p
		pdf := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		if pdf == 0 {
			break
		}
		step := f / pdf
		x -= step
		if math.Abs(step) < 1e-13 {
			break
		}
	}
	return x
}

// TCDF returns the Student-t distribution function with nu degrees of
// freedom at x.
func TCDF(x, nu float64) float64 {
	if math.IsInf(x, 1) {
		return 1
	}
	if math.IsInf(x, -1) {
		return 0
	}
	p := 0.5 * RegIncBeta(nu/2, 0.5, nu/(nu+x*x))
	if x > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of the Student-t distribution with nu
// degrees of freedom, for p in (0, 1).
func TQuantile(p, nu float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	if nu <= 0 {
		return math.NaN()
	}
	// Symmetric: solve for p >= 0.5 and mirror.
	if p < 0.5 {
		return -TQuantile(1-p, nu)
	}
	// Bracket then bisect; the t CDF is monotone.
	lo, hi := 0.0, 1.0
	for TCDF(hi, nu) < p {
		hi *= 2
		if hi > 1e9 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// ChiSquareCDF returns the chi-square distribution function with k degrees
// of freedom at x.
func ChiSquareCDF(x, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegGammaP(k/2, x/2)
}

// ChiSquarePValue returns P(X >= stat) for a chi-square statistic with k
// degrees of freedom.
func ChiSquarePValue(stat, k float64) float64 {
	if stat <= 0 {
		return 1
	}
	return RegGammaQ(k/2, stat/2)
}
