package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D = sup |F_n(x) - F(x)| for the sample xs against the hypothesized CDF.
func KSStatistic(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSPValue returns the asymptotic p-value for a one-sample KS statistic d
// with sample size n, using the Kolmogorov distribution series with the
// standard finite-n correction.
func KSPValue(d float64, n int) float64 {
	if n <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	if d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	// Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} e^{-2 j² λ²}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * float64(j*j) * lambda * lambda)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ChiSquareGOF returns the chi-square goodness-of-fit statistic and p-value
// for observed counts against expected counts. Bins with expected count
// zero are skipped; degrees of freedom is the number of used bins minus 1
// minus dofAdjust (for fitted parameters).
func ChiSquareGOF(observed []int64, expected []float64, dofAdjust int) (stat, pvalue float64) {
	used := 0
	for i, e := range expected {
		if e <= 0 {
			continue
		}
		used++
		diff := float64(observed[i]) - e
		stat += diff * diff / e
	}
	dof := float64(used - 1 - dofAdjust)
	if dof < 1 {
		return stat, math.NaN()
	}
	return stat, ChiSquarePValue(stat, dof)
}
