package stats

import (
	"fmt"
	"math"
)

// PairedResult summarizes a paired-t comparison of two samples observed
// under common random numbers: per-pair deltas d_i = a_i − b_i, their mean,
// a Student-t confidence interval on that mean, the pairwise correlation,
// and the variance-reduction factor relative to independent sampling of the
// same two configurations.
type PairedResult struct {
	N       int64 // complete pairs used
	Dropped int   // pairs discarded because either member was NaN

	MeanA, MeanB float64
	Delta        float64 // mean of a_i − b_i
	VarA, VarB   float64
	VarDelta     float64

	Level     float64 // confidence level of the interval (e.g. 0.95)
	HalfWidth float64 // t half-width of the CI on Delta
	Lo, Hi    float64 // Delta ∓ HalfWidth

	Corr float64 // sample correlation between a_i and b_i
	VRF  float64 // (VarA + VarB) / VarDelta
}

// PairedT computes the paired-t comparison of equal-length samples a and b,
// where a[i] and b[i] were observed on the same random-number stream
// (common random numbers). Pairs in which either member is NaN — a failed
// or skipped replication — are dropped and counted in Dropped. It needs at
// least two complete pairs to form a confidence interval.
func PairedT(a, b []float64, level float64) (PairedResult, error) {
	var r PairedResult
	if len(a) != len(b) {
		return r, fmt.Errorf("stats: paired samples have different lengths %d and %d", len(a), len(b))
	}
	if level <= 0 || level >= 1 {
		return r, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	r.Level = level

	// Online moments over complete pairs: means, M2s, and the co-moment.
	var n int64
	var meanA, meanB, mA2, mB2, cAB float64
	var meanD, mD2 float64
	for i := range a {
		x, y := a[i], b[i]
		if math.IsNaN(x) || math.IsNaN(y) {
			r.Dropped++
			continue
		}
		n++
		dx := x - meanA
		meanA += dx / float64(n)
		dy := y - meanB
		meanB += dy / float64(n)
		mA2 += dx * (x - meanA)
		mB2 += dy * (y - meanB)
		cAB += dx * (y - meanB)
		d := x - y
		dd := d - meanD
		meanD += dd / float64(n)
		mD2 += dd * (d - meanD)
	}
	r.N = n
	if n < 2 {
		return r, fmt.Errorf("stats: paired-t needs at least 2 complete pairs, got %d", n)
	}
	r.MeanA, r.MeanB = meanA, meanB
	r.Delta = meanD
	nf := float64(n - 1)
	r.VarA = mA2 / nf
	r.VarB = mB2 / nf
	r.VarDelta = mD2 / nf
	r.Corr = Corr2(mA2/nf, mB2/nf, cAB/nf)
	r.VRF = VarianceReductionFactor(r.VarA, r.VarB, r.VarDelta)

	t := TQuantile(1-(1-level)/2, float64(n-1))
	r.HalfWidth = t * math.Sqrt(r.VarDelta/float64(n))
	r.Lo, r.Hi = r.Delta-r.HalfWidth, r.Delta+r.HalfWidth
	return r, nil
}

// Corr returns the sample correlation coefficient of equal-length samples x
// and y, or NaN when either sample is constant or has fewer than two
// observations. NaN pairs are dropped.
func Corr(x, y []float64) float64 {
	if len(x) != len(y) {
		return math.NaN()
	}
	var n int64
	var meanX, meanY, mX2, mY2, cXY float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		n++
		dx := x[i] - meanX
		meanX += dx / float64(n)
		dy := y[i] - meanY
		meanY += dy / float64(n)
		mX2 += dx * (x[i] - meanX)
		mY2 += dy * (y[i] - meanY)
		cXY += dx * (y[i] - meanY)
	}
	if n < 2 {
		return math.NaN()
	}
	nf := float64(n - 1)
	return Corr2(mX2/nf, mY2/nf, cXY/nf)
}

// Corr2 forms a correlation from variances and a covariance, returning NaN
// when either variance vanishes (a constant sample has no correlation).
func Corr2(varX, varY, cov float64) float64 {
	if varX <= 0 || varY <= 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(varX*varY)
}

// VarianceReductionFactor returns the factor by which pairing shrank the
// variance of the difference estimator: the variance an independent-streams
// design would give (varA + varB) divided by the paired variance varDelta.
// A factor above 1 means common random numbers helped; it is +Inf when the
// paired deltas are exactly constant, and NaN when both designs have zero
// variance.
func VarianceReductionFactor(varA, varB, varDelta float64) float64 {
	indep := varA + varB
	if varDelta <= 0 {
		if indep > 0 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	return indep / varDelta
}

// PrecisionMet reports whether a confidence half-width hw meets the
// requested precision for an estimate with the given mean. A target of 0
// means "not requested"; when both targets are set, meeting either
// suffices. The relative rule compares hw against rel·|mean|; at mean ≈ 0
// that rule is unsatisfiable by any positive half-width, so it degrades to
// requiring hw == 0 — callers estimating quantities that can vanish should
// set an absolute target as well. A NaN half-width (n < 2) never meets any
// target.
func PrecisionMet(mean, hw, rel, abs float64) bool {
	if math.IsNaN(hw) {
		return false
	}
	if abs > 0 && hw <= abs {
		return true
	}
	if rel > 0 {
		if am := math.Abs(mean); am > 0 && !math.IsNaN(am) {
			return hw <= rel*am
		}
		return hw == 0
	}
	return false
}
