package sim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// buildLeaky builds a two-place token cycle whose total population must
// stay at 2, with a deliberately buggy output gate: with probability p per
// forward firing (drawn from the replication's own stream, so the failing
// replication set is a deterministic function of the seed) it deposits two
// tokens instead of one, breaking conservation.
func buildLeaky(t *testing.T, p float64) (*san.Model, *san.Place, *san.Place) {
	t.Helper()
	m := san.NewModel("leaky")
	src := m.Place("src", 2)
	dst := m.Place("dst", 0)
	m.AddActivity(san.ActivityDef{
		Name: "fwd", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(5) },
		Enabled: func(s *san.State) bool { return s.Get(src) > 0 },
		Reads:   []*san.Place{src},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(src, -1)
			if ctx.Rand.Float64() < p {
				ctx.State.Add(dst, 2) // the injected bug
			} else {
				ctx.State.Add(dst, 1)
			}
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "back", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(5) },
		Enabled: func(s *san.State) bool { return s.Get(dst) > 0 },
		Reads:   []*san.Place{dst},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(dst, -1)
			ctx.State.Add(src, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, src, dst
}

func conservation(src, dst *san.Place, want san.Marking) Invariant {
	return Invariant{
		Name: "token-conservation",
		Check: func(s *san.State) error {
			if got := s.Get(src) + s.Get(dst); got != want {
				return fmt.Errorf("src+dst = %d, want %d", got, want)
			}
			return nil
		},
	}
}

func leakySpec(m *san.Model, src, dst *san.Place, reps int) Spec {
	return Spec{
		Model: m, Until: 5, Reps: reps, Seed: 11,
		Vars: []reward.Var{
			&reward.AtTime{VarName: "dst", F: func(s *san.State) float64 { return float64(s.Get(dst)) }, T: 5},
		},
		Invariants:     []Invariant{conservation(src, dst, 2)},
		InvariantEvery: 1, // catch the leak at the very next event
		MaxFailureFrac: 1,
	}
}

func TestInvariantViolationCaught(t *testing.T) {
	m, src, dst := buildLeaky(t, 0.05)
	spec := leakySpec(m, src, dst, 150)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed == 0 {
		t.Fatal("no replication failed; the injected leak should trip the invariant")
	}
	if res.Completed == 0 {
		t.Fatal("every replication failed; expected clean survivors")
	}
	if res.Completed+res.Failed != res.Reps {
		t.Fatalf("accounting: completed=%d failed=%d reps=%d", res.Completed, res.Failed, res.Reps)
	}
	if got := int(res.MustGet("dst").N); got != res.Completed {
		t.Fatalf("estimate aggregates %d observations, want the %d survivors", got, res.Completed)
	}
	for i, f := range res.Failures {
		if f.Kind != FailureInvariant {
			t.Fatalf("failure %d kind = %v, want invariant", i, f.Kind)
		}
		var ie *InvariantError
		if !errors.As(f.Err, &ie) {
			t.Fatalf("failure %d does not wrap an InvariantError: %v", i, f.Err)
		}
		if ie.Name != "token-conservation" {
			t.Fatalf("failure %d names invariant %q", i, ie.Name)
		}
		if ie.Time < 0 || ie.Time > 5 || ie.Firings <= 0 {
			t.Fatalf("failure %d context: t=%v firings=%d", i, ie.Time, ie.Firings)
		}
	}
}

func TestInvariantFailuresDeterministicAndReplayable(t *testing.T) {
	m, src, dst := buildLeaky(t, 0.05)
	spec := leakySpec(m, src, dst, 100)
	runReps := func(workers int) []int {
		s := spec
		s.Workers = workers
		res, err := Run(s)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		reps := make([]int, len(res.Failures))
		for i, f := range res.Failures {
			reps[i] = f.Rep
		}
		return reps
	}
	serial := runReps(1)
	parallel := runReps(4)
	if len(serial) == 0 {
		t.Fatal("no invariant failures to compare")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("failing set depends on scheduling: %v vs %v", serial, parallel)
	}

	got := Replay(spec, serial[0])
	if got == nil {
		t.Fatalf("Replay(%d) completed cleanly, want the recorded invariant violation", serial[0])
	}
	if got.Kind != FailureInvariant {
		t.Fatalf("Replay kind = %v, want invariant", got.Kind)
	}
	failed := make(map[int]bool)
	for _, r := range serial {
		failed[r] = true
	}
	for rep := 0; rep < spec.Reps; rep++ {
		if !failed[rep] {
			if ferr := Replay(spec, rep); ferr != nil {
				t.Fatalf("Replay(%d) failed (%v) though the study completed it", rep, ferr)
			}
			break
		}
	}
}

func TestInvariantThreshold(t *testing.T) {
	m, src, dst := buildLeaky(t, 0.05)
	spec := leakySpec(m, src, dst, 100)
	spec.MaxFailureFrac = -1
	res, err := Run(spec)
	if err == nil {
		t.Fatal("zero-tolerance run with a leaking gate returned no error")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("aggregate error does not expose the InvariantError: %v", err)
	}
	if res == nil || res.Completed == 0 {
		t.Fatal("partial results were discarded on threshold breach")
	}
}

func TestInvariantViolatedInitially(t *testing.T) {
	m, src, dst := buildLeaky(t, 0)
	spec := leakySpec(m, src, dst, 2)
	spec.Invariants = []Invariant{conservation(src, dst, 99)} // wrong by construction
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 2 {
		t.Fatalf("failed=%d, want the initial marking to fail both reps", res.Failed)
	}
	var ie *InvariantError
	if !errors.As(res.Failures[0].Err, &ie) || ie.Time != 0 || ie.Firings != 0 {
		t.Fatalf("initial violation context = %+v", res.Failures[0].Err)
	}
}

// Installing invariants that hold must not change trajectories or
// estimates: checks read the marking but never consume randomness.
func TestInvariantsDoNotPerturbTrajectories(t *testing.T) {
	m, src, dst := buildLeaky(t, 0)
	spec := leakySpec(m, src, dst, 40)
	plain := spec
	plain.Invariants = nil
	a, err := Run(plain)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if b.Failed != 0 {
		t.Fatalf("clean model failed %d reps under monitoring", b.Failed)
	}
	ea, eb := a.MustGet("dst"), b.MustGet("dst")
	if ea.Mean != eb.Mean || ea.N != eb.N {
		t.Fatalf("monitoring changed estimates: %+v vs %+v", ea, eb)
	}
}

func TestLivelockDetected(t *testing.T) {
	m := buildWedge(t)
	spec := Spec{
		Model: m, Until: 10, Reps: 2, Seed: 1, Workers: 1,
		MaxFirings:     1 << 60, // budget out of the way: the livelock detector must trip
		MaxFailureFrac: 1,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 2 {
		t.Fatalf("failed=%d, want the livelock detector to fail both reps", res.Failed)
	}
	for _, f := range res.Failures {
		if f.Kind != FailureLivelock {
			t.Fatalf("kind = %v, want livelock", f.Kind)
		}
		var le *LivelockError
		if !errors.As(f.Err, &le) {
			t.Fatalf("err = %v, want LivelockError", f.Err)
		}
		if le.Last != "spin" || le.Chain <= maxInstantChain {
			t.Fatalf("livelock context = %+v", le)
		}
	}
	if got := Replay(spec, res.Failures[0].Rep); got == nil || got.Kind != FailureLivelock {
		t.Fatalf("Replay = %+v, want livelock", got)
	}
}

// A self-enabling loop live at time zero is rejected by san.Stabilize
// during initialization; it must classify as a livelock too.
func TestInitialInstabilityClassifiesAsLivelock(t *testing.T) {
	m := san.NewModel("unstable-at-zero")
	p := m.Place("p", 1)
	m.AddActivity(san.ActivityDef{
		Name: "spin0", Kind: san.Instant,
		Enabled: func(s *san.State) bool { return s.Get(p) == 1 },
		Reads:   []*san.Place{p},
		Cases:   []san.Case{{Prob: 1}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Spec{
		Model: m, Until: 1, Reps: 1, Seed: 1, MaxFailureFrac: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 1 || res.Failures[0].Kind != FailureLivelock {
		t.Fatalf("failures = %+v, want one livelock", res.Failures)
	}
	if !errors.Is(res.Failures[0].Err, san.ErrUnstable) {
		t.Fatalf("err = %v, want ErrUnstable", res.Failures[0].Err)
	}
}

func TestFailureExitCodesDistinct(t *testing.T) {
	kinds := []FailureKind{
		FailureModel, FailurePanic, FailureDeadline,
		FailureBudget, FailureInvariant, FailureLivelock,
	}
	seen := make(map[int]FailureKind)
	for _, k := range kinds {
		code := k.ExitCode()
		if code < 10 {
			t.Fatalf("%v.ExitCode() = %d, want >= 10 (clear of generic codes)", k, code)
		}
		if prev, dup := seen[code]; dup {
			t.Fatalf("%v and %v share exit code %d", prev, k, code)
		}
		seen[code] = k
	}
	if FailureKind(99).ExitCode() != 1 {
		t.Fatalf("unknown kind exit code = %d, want 1", FailureKind(99).ExitCode())
	}
}
