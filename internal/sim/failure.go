package sim

import (
	"context"
	"errors"
	"fmt"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// FailureKind classifies why a replication failed. A failed replication
// contributes nothing to the estimates; its failure record carries enough
// information (root seed + replication index) to reproduce the run exactly
// with Replay.
type FailureKind int

const (
	// FailureModel: the model or engine returned an error (for example an
	// unstable instantaneous loop rejected by san.Stabilize).
	FailureModel FailureKind = iota
	// FailurePanic: a model callback (gate function, distribution,
	// predicate, observer) panicked; the panic was isolated to the
	// replication and the study continued.
	FailurePanic
	// FailureDeadline: the replication exceeded Spec.RepDeadline of
	// wall-clock time (watchdog).
	FailureDeadline
	// FailureBudget: the replication exceeded its firing budget
	// (Spec.MaxFirings).
	FailureBudget
	// FailureInvariant: a runtime invariant monitor (Spec.Invariants)
	// observed a marking outside the model's legal state space.
	FailureInvariant
	// FailureLivelock: an instantaneous-activity cycle never reached a
	// stable marking (engine livelock detector, or san.Stabilize's bound
	// during initialization).
	FailureLivelock
)

func (k FailureKind) String() string {
	switch k {
	case FailureModel:
		return "model-error"
	case FailurePanic:
		return "panic"
	case FailureDeadline:
		return "deadline"
	case FailureBudget:
		return "firing-budget"
	case FailureInvariant:
		return "invariant"
	case FailureLivelock:
		return "livelock"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// ExitCode maps a failure class to a distinct process exit code, so shell
// wrappers around `ituaval -replay` (and other CLIs surfacing replication
// failures) can branch on the class without parsing stderr. Codes start at
// 10 to stay clear of the conventional 1 (generic error) and 2 (usage).
func (k FailureKind) ExitCode() int {
	switch k {
	case FailureModel:
		return 10
	case FailurePanic:
		return 11
	case FailureDeadline:
		return 12
	case FailureBudget:
		return 13
	case FailureInvariant:
		return 14
	case FailureLivelock:
		return 15
	default:
		return 1
	}
}

// ReplicationError records one failed replication. The failing run is
// reproducible: replication Rep of a study with root seed Seed always uses
// the random stream rng.New(Seed).Derive(Rep), regardless of worker
// scheduling, so Replay(spec, Rep) re-executes the identical trajectory.
type ReplicationError struct {
	// Rep is the replication index within the study.
	Rep int
	// Seed is the study's root seed (Spec.Seed). The replication's stream
	// is rng.New(Seed).Derive(uint64(Rep)).
	Seed uint64
	// Kind classifies the failure.
	Kind FailureKind
	// Err is the underlying error for model/deadline/budget failures (nil
	// for panics).
	Err error `json:"-"`
	// PanicValue and Stack capture an isolated panic (Kind == FailurePanic).
	PanicValue any
	Stack      string
}

func (e *ReplicationError) Error() string {
	switch e.Kind {
	case FailurePanic:
		return fmt.Sprintf("replication %d (seed %d): panic: %v", e.Rep, e.Seed, e.PanicValue)
	default:
		return fmt.Sprintf("replication %d (seed %d): %v", e.Rep, e.Seed, e.Err)
	}
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ReplicationError) Unwrap() error { return e.Err }

// BudgetError reports a replication that exhausted its firing budget; the
// runner degrades it to a FailureBudget ReplicationError instead of
// aborting the whole study.
type BudgetError struct {
	Limit int64   // the firing budget in force
	At    float64 // simulation time when it was exceeded
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: exceeded %d firings at t=%v (unstable model?)", e.Limit, e.At)
}

// classifyFailure wraps an engine error as a ReplicationError with the
// right kind. Context cancellation is not a failure and is handled by the
// caller before classification.
func classifyFailure(seed uint64, rep int, err error) *ReplicationError {
	kind := FailureModel
	var (
		be *BudgetError
		ie *InvariantError
		le *LivelockError
	)
	switch {
	case errors.As(err, &be):
		kind = FailureBudget
	case errors.As(err, &ie):
		kind = FailureInvariant
	case errors.As(err, &le), errors.Is(err, san.ErrUnstable):
		kind = FailureLivelock
	case errors.Is(err, context.DeadlineExceeded):
		kind = FailureDeadline
	}
	return &ReplicationError{Rep: rep, Seed: seed, Kind: kind, Err: err}
}

// Replay re-executes a single replication of the study described by spec,
// serially in the calling goroutine, and returns the failure it reproduces
// (nil if the replication completes cleanly). Use it to debug a failure
// recorded in Results.Failures: the absolute replication index, the root
// seed, and the spec's CRN/Antithetic mode fully determine the trajectory.
func Replay(spec Spec, rep int) *ReplicationError {
	if spec.Model == nil || !spec.Model.Finalized() {
		return &ReplicationError{Rep: rep, Seed: spec.Seed, Kind: FailureModel,
			Err: errors.New("sim: Spec.Model must be a finalized model")}
	}
	eng := NewEngine(spec.Model, spec.Validate)
	eng.UseCRN(spec.CRN)
	eng.SetInvariants(spec.Invariants, spec.InvariantEvery)
	_, _, ferr := runReplication(context.Background(), eng, &spec, repStream(&spec, rng.New(spec.Seed), rep), rep)
	return ferr
}
