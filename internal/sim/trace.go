package sim

import (
	"fmt"
	"io"
	"strings"

	"ituaval/internal/san"
)

// TraceEvent records one activity completion.
type TraceEvent struct {
	Time     float64
	Activity string
	Case     string
	CaseIdx  int
}

// Trace is a reward.Observer that records the last Cap activity completions
// of a replication — the debugging companion to the engine's validation
// mode. Attach it to Spec.Vars via reward.Func or pass it directly to
// Engine.RunOnce.
type Trace struct {
	// Cap bounds the number of retained events (0 = 4096). The most recent
	// events win.
	Cap int

	events []TraceEvent
	start  int
	total  int64
}

// Init implements reward.Observer.
func (t *Trace) Init(*san.State, float64) {
	t.events = t.events[:0]
	t.start = 0
	t.total = 0
}

// Advance implements reward.Observer.
func (t *Trace) Advance(*san.State, float64, float64) {}

// Fired implements reward.Observer.
func (t *Trace) Fired(_ *san.State, a *san.Activity, caseIdx int, tm float64) {
	cap := t.Cap
	if cap <= 0 {
		cap = 4096
	}
	name := ""
	if caseIdx < len(a.Cases()) {
		name = a.Cases()[caseIdx].Name
	}
	ev := TraceEvent{Time: tm, Activity: a.Name(), Case: name, CaseIdx: caseIdx}
	if len(t.events) < cap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.start] = ev
		t.start = (t.start + 1) % cap
	}
	t.total++
}

// Done implements reward.Observer.
func (t *Trace) Done(*san.State, float64) {}

// Results implements reward.Observer (traces yield no numeric results).
func (t *Trace) Results(func(float64)) {}

// Total returns the number of completions observed (including evicted).
func (t *Trace) Total() int64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Trace) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.events))
	for i := 0; i < len(t.events); i++ {
		out = append(out, t.events[(t.start+i)%len(t.events)])
	}
	return out
}

// WriteTo dumps the retained trace as text.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d completions (%d retained)\n", t.total, len(t.events))
	for _, ev := range t.Events() {
		if ev.Case != "" {
			fmt.Fprintf(&b, "%12.6f  %s [%s]\n", ev.Time, ev.Activity, ev.Case)
		} else {
			fmt.Fprintf(&b, "%12.6f  %s\n", ev.Time, ev.Activity)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
