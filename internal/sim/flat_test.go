package sim

import (
	"context"
	"fmt"
	"math"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/san"
)

// flatTestSpecs builds a mixed batch of studies over two different models
// and several spec shapes (plain, KeepPerRep, CRN, quantiles), the space
// RunFlat must reproduce bit-for-bit.
func flatTestSpecs(t testing.TB) []Spec {
	mq, q := buildMM1K(t, 2, 3, 5)
	mt2, up := buildTwoState(t, 0.5, 2)
	qLen := func(s *san.State) float64 { return float64(s.Get(q)) }
	down := func(s *san.State) float64 { return 1 - float64(s.Get(up)) }
	return []Spec{
		{Model: mq, Until: 40, Reps: 30, Seed: 11,
			Vars: []reward.Var{&reward.TimeAverage{VarName: "len", F: qLen, From: 0, To: 40}}},
		{Model: mt2, Until: 25, Reps: 40, Seed: 12, KeepPerRep: true,
			Vars: []reward.Var{&reward.TimeAverage{VarName: "down", F: down, From: 0, To: 25}}},
		{Model: mq, Until: 30, Reps: 20, Seed: 13, CRN: true,
			Vars: []reward.Var{&reward.TimeAverage{VarName: "len", F: qLen, From: 0, To: 30}}},
		{Model: mt2, Until: 25, Reps: 24, Seed: 14, Quantiles: []float64{0.25, 0.5, 0.9},
			Vars: []reward.Var{&reward.TimeAverage{VarName: "down", F: down, From: 0, To: 25}}},
		{Model: mq, Until: 15, Reps: 16, Seed: 15, Antithetic: true,
			Vars: []reward.Var{&reward.TimeAverage{VarName: "len", F: qLen, From: 0, To: 15}}},
	}
}

// requireSameResults asserts bit-identical estimates and identical
// replication accounting between two results of the same spec.
func requireSameResults(t *testing.T, label string, want, got *Results) {
	t.Helper()
	if got.Reps != want.Reps || got.Completed != want.Completed ||
		got.Failed != want.Failed || got.Skipped != want.Skipped ||
		got.TotalFirings != want.TotalFirings {
		t.Fatalf("%s: accounting differs: got %d/%d/%d/%d firings=%d, want %d/%d/%d/%d firings=%d",
			label, got.Reps, got.Completed, got.Failed, got.Skipped, got.TotalFirings,
			want.Reps, want.Completed, want.Failed, want.Skipped, want.TotalFirings)
	}
	if len(got.Estimates) != len(want.Estimates) {
		t.Fatalf("%s: %d estimates, want %d", label, len(got.Estimates), len(want.Estimates))
	}
	for i := range want.Estimates {
		w, g := want.Estimates[i], got.Estimates[i]
		if g.Name != w.Name || g.N != w.N ||
			math.Float64bits(g.Mean) != math.Float64bits(w.Mean) ||
			math.Float64bits(g.HalfWidth95) != math.Float64bits(w.HalfWidth95) {
			t.Fatalf("%s: estimate %q differs: got %+v, want %+v", label, w.Name, g, w)
		}
		for qi := range w.Quantiles {
			if math.Float64bits(g.Quantiles[qi]) != math.Float64bits(w.Quantiles[qi]) {
				t.Fatalf("%s: %q quantile %d differs: got %v, want %v",
					label, w.Name, qi, g.Quantiles[qi], w.Quantiles[qi])
			}
		}
	}
	for i := range want.PerRep {
		for j := range want.PerRep[i] {
			if math.Float64bits(got.PerRep[i][j]) != math.Float64bits(want.PerRep[i][j]) {
				t.Fatalf("%s: PerRep[%d][%d] differs: got %v, want %v",
					label, i, j, got.PerRep[i][j], want.PerRep[i][j])
			}
		}
	}
}

// TestRunFlatMatchesRunContext is the flattened scheduler's core contract:
// for every spec shape, RunFlat at any worker count returns exactly what
// RunContext returns at Workers = 1 — same bits, same accounting.
func TestRunFlatMatchesRunContext(t *testing.T) {
	specs := flatTestSpecs(t)
	want := make([]*Results, len(specs))
	for i, spec := range specs {
		spec.Workers = 1
		res, err := RunContext(context.Background(), spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		want[i] = res
	}
	for _, workers := range []int{1, 3, 8} {
		frs := RunFlat(context.Background(), flatTestSpecs(t), workers)
		for i, fr := range frs {
			if fr.Err != nil {
				t.Fatalf("workers=%d spec %d: %v", workers, i, fr.Err)
			}
			requireSameResults(t, fmt.Sprintf("workers=%d spec %d", workers, i),
				want[i], fr.Results)
		}
	}
}

// TestRunFlatInvalidSpec checks that invalid specs report their validation
// error without simulating, while the valid specs in the same batch run
// normally.
func TestRunFlatInvalidSpec(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	valid := Spec{Model: m, Until: 10, Reps: 8, Seed: 1,
		Vars: []reward.Var{&reward.TimeAverage{VarName: "len",
			F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 10}}}
	invalid := valid
	invalid.Reps = 0
	frs := RunFlat(context.Background(), []Spec{invalid, valid}, 2)
	if frs[0].Err == nil || frs[0].Results != nil {
		t.Fatalf("invalid spec: got (%v, %v), want validation error and nil results",
			frs[0].Results, frs[0].Err)
	}
	if frs[1].Err != nil {
		t.Fatalf("valid spec alongside invalid one failed: %v", frs[1].Err)
	}
	if frs[1].Results.Completed != valid.Reps {
		t.Fatalf("valid spec completed %d of %d", frs[1].Results.Completed, valid.Reps)
	}
}

// TestRunFlatCancellation checks the skip accounting: with the context
// already cancelled, no replication runs, every valid spec reports
// ctx.Err(), and Reps == Skipped.
func TestRunFlatCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := flatTestSpecs(t)
	frs := RunFlat(ctx, specs, 4)
	for i, fr := range frs {
		if fr.Err != context.Canceled {
			t.Fatalf("spec %d: err = %v, want context.Canceled", i, fr.Err)
		}
		res := fr.Results
		if res == nil || res.Completed != 0 || res.Failed != 0 || res.Skipped != specs[i].Reps {
			t.Fatalf("spec %d: results %+v, want all %d replications skipped", i, res, specs[i].Reps)
		}
	}
}

// TestRunFlatEmpty covers the degenerate inputs: no specs, and a batch of
// only-invalid specs.
func TestRunFlatEmpty(t *testing.T) {
	if frs := RunFlat(context.Background(), nil, 4); len(frs) != 0 {
		t.Fatalf("RunFlat(nil) = %v", frs)
	}
	frs := RunFlat(context.Background(), []Spec{{}}, 4)
	if len(frs) != 1 || frs[0].Err == nil {
		t.Fatalf("all-invalid batch: %+v", frs)
	}
}
