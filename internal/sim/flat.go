package sim

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ituaval/internal/rng"
)

// FlatResult is RunFlat's outcome for one spec: exactly the (*Results, error)
// pair RunContext would have returned for it.
type FlatResult struct {
	// Results is non-nil whenever the spec was valid, even when Err != nil,
	// so callers can always salvage completed work.
	Results *Results
	// Err is the spec's validation error, ctx.Err() after cancellation, or
	// the failure-tolerance breach — nil on clean completion.
	Err error
}

// RunFlat executes several independent studies on one shared worker pool.
// The (spec, replication) pairs of all specs are flattened into a single
// work stream, so a sweep of many small points keeps every worker busy to
// the end instead of paying a synchronization barrier per point.
//
// Each result is bit-identical to RunContext(ctx, spec) at Workers == 1 —
// replication j of every spec draws from the same derived stream and
// aggregation runs in replication order — and therefore independent of the
// worker count. (RunContext's non-per-rep results at Workers > 1 aggregate
// in a worker-strided order instead, so those are the one combination
// RunFlat intentionally does not reproduce.)
//
// workers <= 0 selects GOMAXPROCS. Cancelling ctx stops the stream
// gracefully: unattempted replications count as Skipped and every valid
// spec's Err becomes ctx.Err().
func RunFlat(ctx context.Context, specs []Spec, workers int) []FlatResult {
	out := make([]FlatResult, len(specs))
	// Per-spec mutable state, indexed by batch-local replication. Workers
	// write disjoint slots, so no lock is needed.
	type flatPoint struct {
		spec    *Spec
		root    *rng.Stream
		repVals [][][]float64
		repFir  []int64
		repErr  []*ReplicationError
	}
	pts := make([]*flatPoint, len(specs))
	// starts[i] is the first flat unit index of spec i; invalid specs own an
	// empty range. The owning spec of unit u is the last i with starts[i] <= u.
	starts := make([]int, len(specs)+1)
	for si := range specs {
		starts[si+1] = starts[si]
		if err := specs[si].validate(); err != nil {
			out[si].Err = err
			continue
		}
		sp := &specs[si]
		pts[si] = &flatPoint{
			spec:    sp,
			root:    rng.New(sp.Seed),
			repVals: make([][][]float64, sp.Reps),
			repFir:  make([]int64, sp.Reps),
			repErr:  make([]*ReplicationError, sp.Reps),
		}
		starts[si+1] += sp.Reps
	}
	total := starts[len(specs)]
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One engine per spec per worker, built lazily: specs can differ
			// in model, CRN mode, and invariants.
			engines := make([]*Engine, len(specs))
			for {
				u := int(next.Add(1)) - 1
				if u >= total {
					return
				}
				if ctx.Err() != nil {
					// Drain the stream; unattempted slots stay nil and are
					// accounted as skipped below.
					continue
				}
				si := sort.SearchInts(starts, u+1) - 1
				pt := pts[si]
				rep := u - starts[si]
				eng := engines[si]
				if eng == nil {
					eng = NewEngine(pt.spec.Model, pt.spec.Validate)
					eng.UseCRN(pt.spec.CRN)
					eng.SetInvariants(pt.spec.Invariants, pt.spec.InvariantEvery)
					engines[si] = eng
				}
				abs := pt.spec.FirstRep + rep
				vals, firings, ferr := runReplication(ctx, eng, pt.spec, repStream(pt.spec, pt.root, abs), abs)
				if ferr != nil {
					if !errors.Is(ferr.Err, context.Canceled) {
						pt.repErr[rep] = ferr
					}
					continue
				}
				pt.repVals[rep] = vals
				pt.repFir[rep] = firings
			}
		}()
	}
	wg.Wait()

	for si := range specs {
		pt := pts[si]
		if pt == nil {
			continue // invalid spec; Err already set
		}
		var firings int64
		completed, skipped := 0, 0
		var failures []ReplicationError
		for rep := range pt.repVals {
			switch {
			case pt.repVals[rep] != nil:
				completed++
				firings += pt.repFir[rep]
			case pt.repErr[rep] != nil:
				failures = append(failures, *pt.repErr[rep])
			default:
				skipped++
			}
		}
		res := aggregateRepOrder(pt.spec, pt.repVals, firings, completed, skipped, failures)
		out[si] = FlatResult{Results: res, Err: finishErr(ctx, pt.spec, res)}
	}
	return out
}
