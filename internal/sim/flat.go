package sim

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ituaval/internal/rng"
)

// FlatResult is RunFlat's outcome for one spec: exactly the (*Results, error)
// pair RunContext would have returned for it.
type FlatResult struct {
	// Results is non-nil whenever the spec was valid, even when Err != nil,
	// so callers can always salvage completed work.
	Results *Results
	// Err is the spec's validation error, ctx.Err() after cancellation, or
	// the failure-tolerance breach — nil on clean completion.
	Err error
}

// FlatHooks are optional progress callbacks for RunFlatFunc. Both hooks are
// invoked from worker goroutines and must be safe for concurrent use; they
// must not block for long, since a blocked hook stalls its worker.
type FlatHooks struct {
	// OnRep is called after every finished work unit of the given spec —
	// a completed, failed, or (after cancellation) drained replication.
	OnRep func(spec int)
	// OnSpec is called exactly once per spec, as soon as its last unit
	// finishes and its results are aggregated. The FlatResult it receives is
	// the spec's eager snapshot: a spec that fully completed before a later
	// cancellation is reported here with Err == nil, while the slice
	// RunFlatFunc returns carries ctx.Err() for every spec once the context
	// is cancelled (matching RunFlat's historical semantics). Invalid specs
	// are reported before any unit runs.
	OnSpec func(spec int, fr FlatResult)
}

// RunFlat executes several independent studies on one shared worker pool.
// The (spec, replication) pairs of all specs are flattened into a single
// work stream, so a sweep of many small points keeps every worker busy to
// the end instead of paying a synchronization barrier per point.
//
// Each result is bit-identical to RunContext(ctx, spec) at Workers == 1 —
// replication j of every spec draws from the same derived stream and
// aggregation runs in replication order — and therefore independent of the
// worker count. (RunContext's non-per-rep results at Workers > 1 aggregate
// in a worker-strided order instead, so those are the one combination
// RunFlat intentionally does not reproduce.)
//
// workers <= 0 selects GOMAXPROCS. Cancelling ctx stops the stream
// gracefully: unattempted replications count as Skipped and every valid
// spec's Err becomes ctx.Err().
func RunFlat(ctx context.Context, specs []Spec, workers int) []FlatResult {
	return RunFlatFunc(ctx, specs, workers, FlatHooks{})
}

// RunFlatFunc is RunFlat with progress hooks: per-unit ticks and per-spec
// completion callbacks fire while the pool is still working through the
// remaining specs, which is what lets a long sweep stream results point by
// point instead of reporting only at the end. Results are identical to
// RunFlat's.
func RunFlatFunc(ctx context.Context, specs []Spec, workers int, hooks FlatHooks) []FlatResult {
	out := make([]FlatResult, len(specs))
	// Per-spec mutable state, indexed by batch-local replication. Workers
	// write disjoint slots, so no lock is needed.
	type flatPoint struct {
		spec    *Spec
		root    *rng.Stream
		repVals [][][]float64
		repFir  []int64
		repErr  []*ReplicationError
		// remaining counts the spec's unfinished units; the worker that
		// decrements it to zero owns the aggregation (every slot write
		// happened before its own decrement, so the last decrementer sees
		// them all).
		remaining atomic.Int64
	}
	pts := make([]*flatPoint, len(specs))
	// starts[i] is the first flat unit index of spec i; invalid specs own an
	// empty range. The owning spec of unit u is the last i with starts[i] <= u.
	starts := make([]int, len(specs)+1)
	for si := range specs {
		starts[si+1] = starts[si]
		if err := specs[si].validate(); err != nil {
			out[si].Err = err
			if hooks.OnSpec != nil {
				hooks.OnSpec(si, out[si])
			}
			continue
		}
		sp := &specs[si]
		pts[si] = &flatPoint{
			spec:    sp,
			root:    rng.New(sp.Seed),
			repVals: make([][][]float64, sp.Reps),
			repFir:  make([]int64, sp.Reps),
			repErr:  make([]*ReplicationError, sp.Reps),
		}
		pts[si].remaining.Store(int64(sp.Reps))
		starts[si+1] += sp.Reps
	}
	total := starts[len(specs)]
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	// finalize aggregates one spec whose every unit has finished and
	// publishes the eager snapshot to the OnSpec hook. out[si] is written by
	// at most one worker and read by the caller only after wg.Wait.
	finalize := func(si int) {
		pt := pts[si]
		var firings int64
		completed, skipped := 0, 0
		var failures []ReplicationError
		for rep := range pt.repVals {
			switch {
			case pt.repVals[rep] != nil:
				completed++
				firings += pt.repFir[rep]
			case pt.repErr[rep] != nil:
				failures = append(failures, *pt.repErr[rep])
			default:
				skipped++
			}
		}
		res := aggregateRepOrder(pt.spec, pt.repVals, firings, completed, skipped, failures)
		out[si] = FlatResult{Results: res, Err: finishErr(ctx, pt.spec, res)}
		if hooks.OnSpec != nil {
			hooks.OnSpec(si, out[si])
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One engine per spec per worker, built lazily: specs can differ
			// in model, CRN mode, and invariants.
			engines := make([]*Engine, len(specs))
			for {
				u := int(next.Add(1)) - 1
				if u >= total {
					return
				}
				si := sort.SearchInts(starts, u+1) - 1
				pt := pts[si]
				rep := u - starts[si]
				if ctx.Err() == nil {
					// Attempt the unit; after cancellation the stream just
					// drains, and unattempted slots stay nil (skipped).
					eng := engines[si]
					if eng == nil {
						eng = NewEngine(pt.spec.Model, pt.spec.Validate)
						eng.UseCRN(pt.spec.CRN)
						eng.SetInvariants(pt.spec.Invariants, pt.spec.InvariantEvery)
						engines[si] = eng
					}
					abs := pt.spec.FirstRep + rep
					vals, firings, ferr := runReplication(ctx, eng, pt.spec, repStream(pt.spec, pt.root, abs), abs)
					if ferr != nil {
						if !errors.Is(ferr.Err, context.Canceled) {
							pt.repErr[rep] = ferr
						}
					} else {
						pt.repVals[rep] = vals
						pt.repFir[rep] = firings
					}
				}
				if hooks.OnRep != nil {
					hooks.OnRep(si)
				}
				if pt.remaining.Add(-1) == 0 {
					finalize(si)
				}
			}
		}()
	}
	wg.Wait()

	// Re-evaluate every valid spec's error against the final context state:
	// eager snapshots report a spec that finished before a later cancellation
	// with a nil error, but the returned slice keeps RunFlat's historical
	// contract that cancellation surfaces as ctx.Err() on every valid spec.
	for si := range specs {
		if pts[si] == nil {
			continue // invalid spec; Err already set
		}
		out[si].Err = finishErr(ctx, pts[si].spec, out[si].Results)
	}
	return out
}
