package sim

import (
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// benchQueueLen is a resettable time-average-of-marking observer. The
// production reward observers are built fresh per replication and do not
// reset their accumulated state on Init, so a benchmark that reuses one
// observer across replications needs its own — resetting in Init keeps the
// measured loop allocation-free.
type benchQueueLen struct {
	q        *san.Place
	integral float64
	start    float64
	end      float64
}

func (o *benchQueueLen) Init(s *san.State, t float64) { o.integral, o.start, o.end = 0, t, t }
func (o *benchQueueLen) Advance(s *san.State, t0, t1 float64) {
	o.integral += float64(s.Get(o.q)) * (t1 - t0)
	o.end = t1
}
func (o *benchQueueLen) Fired(*san.State, *san.Activity, int, float64) {}
func (o *benchQueueLen) Done(s *san.State, t float64)                  { o.end = t }
func (o *benchQueueLen) Results(emit func(float64)) {
	if o.end > o.start {
		emit(o.integral / (o.end - o.start))
	}
}

// BenchmarkEngineStep measures the per-event cost of the hot loop — sample,
// schedule, pop, fire, incremental re-enable — with no observers attached.
func BenchmarkEngineStep(b *testing.B) {
	m, _ := buildMM1K(b, 2, 3, 10)
	eng := NewEngine(m, false)
	stream := rng.New(1).Derive(0)
	if err := eng.RunOnce(100, stream, nil, 0); err != nil { // warm scratch buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	events := int64(0)
	for i := 0; i < b.N; i++ {
		if err := eng.RunOnce(100, stream, nil, 0); err != nil {
			b.Fatal(err)
		}
		events += eng.Firings()
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkEngineReplication measures one full observed replication. The
// acceptance bar for the allocation-free event loop: 0 allocs/op once the
// engine's scratch buffers are warm.
func BenchmarkEngineReplication(b *testing.B) {
	m, q := buildMM1K(b, 2, 3, 10)
	eng := NewEngine(m, false)
	stream := rng.New(1).Derive(0)
	obs := []reward.Observer{&benchQueueLen{q: q}}
	if err := eng.RunOnce(100, stream, obs, 0); err != nil { // warm scratch buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.RunOnce(100, stream, obs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
