package sim

import (
	"fmt"

	"ituaval/internal/san"
)

// Invariant is a predicate over the marking that must hold at every point
// of every trajectory — a conservation law, a marking bound, or any other
// property the model vouches for. Check returns nil when the invariant
// holds and a descriptive error when it is violated; it must not modify the
// state.
//
// Invariants are the runtime complement of san.Model.Lint: lint catches
// structure that is wrong before any run, invariants catch trajectories
// that leave the model's legal state space (a buggy output gate, a missed
// update) while the simulation is producing numbers from them.
type Invariant struct {
	Name  string
	Check func(s *san.State) error
}

// DefaultInvariantEvery is the check cadence (in firings) when
// Spec.InvariantEvery is zero. Checks also run on the initial stable
// marking and on the final marking of every replication, so a persistent
// violation is never missed — the cadence only bounds how long a transient
// one can go unobserved.
const DefaultInvariantEvery = 256

// InvariantError reports a violated invariant, pinned to the simulation
// time and firing count where the engine observed it. It classifies as
// FailureInvariant and reproduces deterministically via Replay.
type InvariantError struct {
	// Name is the violated invariant's name.
	Name string
	// Time is the simulation time of the check that failed.
	Time float64
	// Firings is the engine's completion count at the check.
	Firings int64
	// Err describes the violation.
	Err error
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at t=%v after %d firings: %v",
		e.Name, e.Time, e.Firings, e.Err)
}

// Unwrap exposes the violation description to errors.Is/As.
func (e *InvariantError) Unwrap() error { return e.Err }

// maxInstantChain bounds the number of instantaneous completions resolved
// after a single timed firing before the engine declares a livelock. It
// matches san.Stabilize's bound and is far below the default firing budget,
// so a zero-delay cycle is reported as what it is (FailureLivelock) rather
// than as a generic budget exhaustion tens of millions of firings later.
const maxInstantChain = 1 << 20

// LivelockError reports an instantaneous-activity cycle that never reached
// a stable marking: Chain zero-delay completions in a row at simulation
// time At, the last of them Last. It classifies as FailureLivelock.
type LivelockError struct {
	Chain int64
	At    float64
	Last  string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: instantaneous livelock at t=%v: %d zero-delay firings without stabilizing (last %q)",
		e.At, e.Chain, e.Last)
}

// SetInvariants installs the invariants the engine checks during RunOnce:
// on the initial stable marking, every `every` firings, and on the final
// marking. every <= 0 selects DefaultInvariantEvery. Call before RunOnce;
// the setting is sticky across replications.
func (e *Engine) SetInvariants(inv []Invariant, every int64) {
	e.invariants = inv
	if every <= 0 {
		every = DefaultInvariantEvery
	}
	e.invEvery = every
}

// checkInvariants evaluates every installed invariant against the current
// marking, wrapping the first violation with its simulation-time context.
func (e *Engine) checkInvariants() error {
	for i := range e.invariants {
		if err := e.invariants[i].Check(e.state); err != nil {
			return &InvariantError{
				Name: e.invariants[i].Name, Time: e.now, Firings: e.firings, Err: err,
			}
		}
	}
	return nil
}
