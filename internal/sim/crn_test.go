package sim

import (
	"math"
	"reflect"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// firstFiring records the time of the first completion of a named activity.
type firstFiring struct {
	name string
}

func (v *firstFiring) Name() string { return "first_" + v.name }
func (v *firstFiring) NewObserver() reward.Observer {
	return &firstFiringObs{act: v.name, t: math.NaN()}
}

type firstFiringObs struct {
	act string
	t   float64
}

func (o *firstFiringObs) Init(*san.State, float64)             {}
func (o *firstFiringObs) Advance(*san.State, float64, float64) {}
func (o *firstFiringObs) Done(*san.State, float64)             {}
func (o *firstFiringObs) Results(emit func(float64))           { emit(o.t) }
func (o *firstFiringObs) Fired(_ *san.State, a *san.Activity, _ int, t float64) {
	if math.IsNaN(o.t) && a.Name() == o.act {
		o.t = t
	}
}

// buildRoleModel builds a model where activity "x" (Expo(1), one shot) is
// repeatedly cancelled and resampled by a fast flipper "y" (Expo(10)),
// while a bystander "z" consumes extraDraws uniforms per firing without
// touching anything x or y read. Under CRN z's draws come from z's own role
// substream, so x's trajectory must not depend on extraDraws; under
// single-stream sampling z's draws interleave with everyone's and shift
// every draw x and y make afterwards.
func buildRoleModel(t *testing.T, extraDraws int) *san.Model {
	t.Helper()
	m := san.NewModel("rolemodel")
	gate := m.Place("gate", 1)
	count := m.Place("count", 0)
	zcount := m.Place("zcount", 0)
	fired := m.Place("fired", 0)
	m.AddActivity(san.ActivityDef{
		Name: "x", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(gate) == 1 && s.Get(fired) == 0 },
		Reads:   []*san.Place{gate, fired},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(fired, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "y", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(10) },
		Enabled: func(s *san.State) bool { return s.Int(count) < 30 },
		Reads:   []*san.Place{count},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Set(gate, 1-ctx.State.Get(gate))
			ctx.State.Add(count, 1)
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "z", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(10) },
		Enabled: func(s *san.State) bool { return s.Int(zcount) < 30 },
		Reads:   []*san.Place{zcount},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(zcount, 1)
			for i := 0; i < extraDraws; i++ {
				ctx.Rand.Float64()
			}
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func firstX(t *testing.T, extraDraws int, crn bool) float64 {
	t.Helper()
	m := buildRoleModel(t, extraDraws)
	res, err := Run(Spec{
		Model: m, Until: 50, Reps: 1, Seed: 99, Workers: 1, CRN: crn, KeepPerRep: true,
		Vars: []reward.Var{&firstFiring{name: "x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.MustGet("first_x").Mean
}

// TestCRNRoleIsolation is the defining property of role-indexed streams:
// randomness consumed by one activity's role must not perturb another
// activity's draws, even across structural model variants.
func TestCRNRoleIsolation(t *testing.T) {
	withCRN0, withCRN3 := firstX(t, 0, true), firstX(t, 3, true)
	if withCRN0 != withCRN3 {
		t.Fatalf("CRN: x's first firing moved when y drew extra uniforms: %v vs %v", withCRN0, withCRN3)
	}
	without0, without3 := firstX(t, 0, false), firstX(t, 3, false)
	if without0 == without3 {
		t.Fatalf("single-stream control: expected x's firing to move (%v); the role test is vacuous", without0)
	}
}

// TestCRNDeterministicAcrossWorkers: with per-replication aggregation the
// merge order is replication order, so a CRN run must be bit-identical for
// any worker count.
func TestCRNDeterministicAcrossWorkers(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	spec := Spec{
		Model: m, Until: 40, Reps: 32, Seed: 7, CRN: true, KeepPerRep: true,
		Vars: []reward.Var{&reward.TimeAverage{VarName: "len",
			F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 40}},
	}
	var ref *Results
	for _, workers := range []int{1, 3, 8} {
		spec.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Estimates, res.Estimates) {
			t.Fatalf("workers=%d: estimates differ:\n%v\nvs\n%v", workers, ref.Estimates, res.Estimates)
		}
		if !reflect.DeepEqual(ref.PerRep, res.PerRep) {
			t.Fatalf("workers=%d: per-replication values differ", workers)
		}
	}
}

// TestBatchedRunsMergeExactly: a run of [0,48) must decompose into
// contiguous batches [0,16) + [16,48) with identical per-replication values
// and counts — the contract sequential stopping builds on.
func TestBatchedRunsMergeExactly(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	varsOf := func() []reward.Var {
		return []reward.Var{&reward.TimeAverage{VarName: "len",
			F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 30}}
	}
	base := Spec{Model: m, Until: 30, Seed: 11, CRN: true, KeepPerRep: true, Workers: 2, Vars: varsOf()}

	full := base
	full.Reps = 48
	want, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	first := base
	first.Reps = 16
	got, err := Run(first)
	if err != nil {
		t.Fatal(err)
	}
	second := base
	second.FirstRep, second.Reps = 16, 32
	tail, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Merge(tail); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want.PerRep, got.PerRep) {
		t.Fatal("merged per-replication values differ from the single run")
	}
	if got.Reps != want.Reps || got.Completed != want.Completed || got.Failed != want.Failed {
		t.Fatalf("merged counts %d/%d/%d, want %d/%d/%d",
			got.Reps, got.Completed, got.Failed, want.Reps, want.Completed, want.Failed)
	}
	ge, we := got.MustGet("len"), want.MustGet("len")
	if ge.N != we.N || math.Abs(ge.Mean-we.Mean) > 1e-12 || math.Abs(ge.HalfWidth95-we.HalfWidth95) > 1e-12 {
		t.Fatalf("merged estimate %+v, want %+v", ge, we)
	}

	// Merging a non-contiguous batch must be refused.
	gap := base
	gap.FirstRep, gap.Reps = 64, 16
	far, err := Run(gap)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Merge(far); err == nil {
		t.Fatal("merging a non-contiguous batch succeeded")
	}
}

// TestAntitheticPairsReduceVariance: on a smooth monotone measure the
// antithetic partner cancels variance, so the paired half-width must beat
// independent sampling at the same replication budget, and N must count
// pairs.
func TestAntitheticPairsReduceVariance(t *testing.T) {
	m, up := buildTwoState(t, 0.5, 2.0)
	varsOf := func() []reward.Var {
		return []reward.Var{&reward.TimeAverage{VarName: "unavail",
			F: func(s *san.State) float64 { return 1 - float64(s.Get(up)) }, From: 0, To: 8}}
	}
	const reps = 1024
	indep, err := Run(Spec{Model: m, Until: 8, Reps: reps, Seed: 3, KeepPerRep: true, Vars: varsOf()})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Run(Spec{Model: m, Until: 8, Reps: reps, Seed: 3, CRN: true, Antithetic: true, Vars: varsOf()})
	if err != nil {
		t.Fatal(err)
	}
	ie, ae := indep.MustGet("unavail"), anti.MustGet("unavail")
	if ae.N != reps/2 {
		t.Fatalf("antithetic N = %d, want %d pairs", ae.N, reps/2)
	}
	// Same total replication budget: the paired CI must be tighter. (Pair
	// means halve n but more than halve the variance when the correlation
	// is negative.)
	if !(ae.HalfWidth95 < ie.HalfWidth95) {
		t.Fatalf("antithetic half-width %v not below independent %v", ae.HalfWidth95, ie.HalfWidth95)
	}
	if math.Abs(ae.Mean-ie.Mean) > 3*(ae.HalfWidth95+ie.HalfWidth95) {
		t.Fatalf("antithetic mean %v far from independent mean %v", ae.Mean, ie.Mean)
	}
}

func TestAntitheticSpecValidation(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	vars := []reward.Var{&reward.TimeAverage{VarName: "len",
		F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 5}}
	if _, err := Run(Spec{Model: m, Until: 5, Reps: 7, Seed: 1, Antithetic: true, Vars: vars}); err == nil {
		t.Fatal("odd Reps accepted with Antithetic")
	}
	if _, err := Run(Spec{Model: m, Until: 5, Reps: 8, FirstRep: 3, Seed: 1, Antithetic: true, Vars: vars}); err == nil {
		t.Fatal("odd FirstRep accepted with Antithetic")
	}
	if _, err := Run(Spec{Model: m, Until: 5, Reps: 8, Seed: 1, Antithetic: true,
		Quantiles: []float64{0.5}, Vars: vars}); err == nil {
		t.Fatal("Quantiles accepted with Antithetic")
	}
	if _, err := Run(Spec{Model: m, Until: 5, Reps: 8, FirstRep: -2, Seed: 1, Vars: vars}); err == nil {
		t.Fatal("negative FirstRep accepted")
	}
}

// TestCRNReplayReproducesFailure: the replay path must honor CRN stream
// derivation, or recorded failures would not reproduce.
func TestCRNReplayReproducesFailure(t *testing.T) {
	m := san.NewModel("panicky")
	p := m.Place("p", 0)
	m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(p) == 0 },
		Reads:   []*san.Place{p},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			if ctx.Rand.Float64() < 0.3 {
				panic("boom")
			}
			ctx.State.Set(p, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: m, Until: 10, Reps: 40, Seed: 21, CRN: true, KeepPerRep: true,
		MaxFailureFrac: 1, Vars: []reward.Var{&firstFiring{name: "tick"}}}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("no failures to replay")
	}
	for _, f := range res.Failures {
		re := Replay(spec, f.Rep)
		if re == nil || re.Kind != FailurePanic {
			t.Fatalf("replay of rep %d did not reproduce the panic: %v", f.Rep, re)
		}
	}
	// A completed replication replays cleanly.
	for j := 0; j < spec.Reps; j++ {
		if !math.IsNaN(res.PerRep[0][j]) {
			if re := Replay(spec, j); re != nil {
				t.Fatalf("replay of completed rep %d failed: %v", j, re)
			}
			break
		}
	}
}
