package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/stats"
)

// DefaultMaxFailureFrac is the fraction of replications allowed to fail
// before Run reports an aggregate error, when Spec.MaxFailureFrac is zero.
const DefaultMaxFailureFrac = 0.05

// Spec describes a replicated terminating simulation study.
type Spec struct {
	// Model is the finalized SAN to simulate.
	Model *san.Model
	// Until is the end time of each replication.
	Until float64
	// Reps is the number of independent replications (must be >= 1).
	Reps int
	// Seed is the root seed; replication i uses the derived stream i, so
	// results are reproducible and independent of worker scheduling.
	Seed uint64
	// Vars are the reward variables to estimate.
	Vars []reward.Var
	// Workers limits parallelism (0 = GOMAXPROCS).
	Workers int
	// Validate enables read-trace dependency checking (slow; for tests).
	Validate bool
	// MaxFirings bounds the firings per replication (0 = default). A
	// replication exceeding the budget is recorded as a FailureBudget
	// failure; the rest of the study continues.
	MaxFirings int64
	// Quantiles, when non-empty, requests the given sample quantiles (in
	// [0,1]) of every variable's per-replication observations, at the cost
	// of retaining all observations in memory.
	Quantiles []float64
	// RepDeadline, when positive, bounds the wall-clock time of each
	// replication: a replication exceeding it is aborted and recorded as a
	// FailureDeadline failure instead of hanging the study (watchdog).
	RepDeadline time.Duration
	// MaxFailureFrac is the largest fraction of replications allowed to
	// fail (panic, watchdog deadline, firing budget, model error) before
	// RunContext reports an aggregate error alongside the partial results.
	// Zero selects DefaultMaxFailureFrac; a negative value tolerates no
	// failures at all. Estimates always aggregate the surviving
	// replications only — see Results for the bias caveat.
	MaxFailureFrac float64
	// CRN enables common-random-numbers mode: every stochastic role (one
	// activity's firing delays, case choices and effect draws; the
	// initialization hook; instantaneous races) samples from its own
	// substream derived from the replication stream by the stable hash of
	// the role's name. Two model variants sharing activity names then
	// consume identical randomness for identical roles regardless of how
	// their event interleavings differ — the substrate for paired policy
	// comparison. Results stay deterministic for a fixed seed but are not
	// bit-compatible with non-CRN runs of the same seed.
	CRN bool
	// Antithetic couples replications in pairs: absolute indices (2p,
	// 2p+1) use the same derived stream with opposite orientation (the odd
	// partner complements every uniform, U -> 1-U). Estimates aggregate
	// pair means — negatively correlated partners cancel variance — so
	// Estimate.N counts pairs, and a pair with a failed member contributes
	// nothing. Implies KeepPerRep; requires FirstRep and Reps even and no
	// Quantiles.
	Antithetic bool
	// KeepPerRep retains one summary value per replication and variable
	// (the mean of the replication's observations; NaN if it failed, was
	// skipped, or emitted none) in Results.PerRep — the substrate for
	// paired comparison and sequential stopping. Aggregation then runs in
	// replication order, making estimates bit-identical across worker
	// counts, and Results.Merge can fold contiguous batches together.
	KeepPerRep bool
	// FirstRep is the absolute index of the first replication of this
	// batch (default 0). Replication j of the batch uses the stream
	// derived from absolute index FirstRep+j, so running [0,n) in one call
	// or in several contiguous batches merged with Results.Merge yields
	// identical per-replication trajectories.
	FirstRep int
	// Invariants are runtime monitors checked against the marking during
	// every replication (initial stable marking, every InvariantEvery
	// firings, and the final marking). A violation aborts the replication
	// with a FailureInvariant ReplicationError — counted, bounded by
	// MaxFailureFrac, and reproducible via Replay like any other failure.
	// Invariant checks never consume randomness, so enabling them does not
	// perturb trajectories.
	Invariants []Invariant
	// InvariantEvery is the check cadence in firings (0 selects
	// DefaultInvariantEvery).
	InvariantEvery int64
}

// perRep reports whether the spec needs per-replication values retained.
func (s *Spec) perRep() bool { return s.KeepPerRep || s.Antithetic }

// validate checks the spec's static requirements, shared by RunContext and
// RunFlat.
func (s *Spec) validate() error {
	if s.Model == nil || !s.Model.Finalized() {
		return errors.New("sim: Spec.Model must be a finalized model")
	}
	if s.Reps < 1 {
		return fmt.Errorf("sim: Reps must be >= 1, got %d", s.Reps)
	}
	if s.Until <= 0 {
		return fmt.Errorf("sim: Until must be > 0, got %v", s.Until)
	}
	if s.FirstRep < 0 {
		return fmt.Errorf("sim: FirstRep must be >= 0, got %d", s.FirstRep)
	}
	if s.Antithetic {
		if s.FirstRep%2 != 0 || s.Reps%2 != 0 {
			return fmt.Errorf("sim: Antithetic requires even FirstRep and Reps, got %d and %d",
				s.FirstRep, s.Reps)
		}
		if len(s.Quantiles) > 0 {
			return errors.New("sim: Antithetic cannot be combined with Quantiles")
		}
	}
	return nil
}

// repStream derives the random stream of the replication with absolute
// index rep. It is the single point coupling the runner, Replay, and the
// antithetic pairing, so all three stay bit-identical.
func repStream(spec *Spec, root *rng.Stream, rep int) *rng.Stream {
	if spec.Antithetic {
		st := root.Derive(uint64(rep / 2))
		if rep%2 == 1 {
			st = st.Antithetic()
		}
		return st
	}
	return root.Derive(uint64(rep))
}

// Estimate is the aggregated result for one reward variable.
type Estimate struct {
	Name string
	// Mean is the point estimate across all emitted observations.
	Mean float64
	// HalfWidth95 is the 95% confidence half-width.
	HalfWidth95 float64
	// N is the number of observations (replications that emitted a value).
	N int64
	// Min and Max are the extreme observations.
	Min, Max float64
	// Quantiles holds the requested sample quantiles, parallel to
	// Spec.Quantiles (nil when none were requested or no observations).
	Quantiles []float64
}

func (e Estimate) String() string {
	return fmt.Sprintf("%s = %.6g ± %.2g (n=%d)", e.Name, e.Mean, e.HalfWidth95, e.N)
}

// Results holds the study outcome.
//
// Estimates aggregate the completed replications only. When Failed > 0 the
// survivors are not a random subsample: failures can correlate with extreme
// trajectories (for example, the most congested runs are the ones that trip
// a firing budget), so the estimates carry a selection bias whose size
// grows with the failure fraction. Keep the fraction small (see
// Spec.MaxFailureFrac) and investigate every entry of Failures — each one
// reproduces deterministically via Replay.
type Results struct {
	// Estimates, in the order of Spec.Vars, aggregated over the Completed
	// replications.
	Estimates []Estimate
	// TotalFirings across all completed replications.
	TotalFirings int64
	// Reps is the number of replications requested (Spec.Reps). Compare
	// Completed, Failed, and Skipped for what actually ran.
	Reps int
	// Completed replications finished and contributed observations.
	Completed int
	// Failed replications were attempted but aborted (panic, deadline,
	// firing budget, or model error); details in Failures.
	Failed int
	// Skipped replications were never attempted, or were cut short, because
	// the context was cancelled. Reps == Completed + Failed + Skipped.
	Skipped int
	// Failures records every failed replication, ordered by Rep. Each entry
	// names the replication index and root seed that reproduce it.
	Failures []ReplicationError
	// PerRep, present when Spec.KeepPerRep or Spec.Antithetic was set,
	// holds one summary value per variable (outer index, order of
	// Spec.Vars) and replication of this batch (inner index; absolute
	// index FirstRep + j): the mean of that replication's observations, or
	// NaN if the replication failed, was skipped, or emitted none.
	PerRep [][]float64
	// FirstRep is the absolute index of the first replication of this
	// batch (Spec.FirstRep).
	FirstRep int
	byName   map[string]*Estimate
	// accums carries the per-variable aggregation state when PerRep is
	// kept, enabling exact Merge of contiguous batches.
	accums []*stats.Accumulator
	// quantiles remembers Spec.Quantiles (Merge rejects them).
	quantiles bool
}

// Merge folds another batch of the same study into r: counts, failures,
// firings, per-replication values, and the estimate accumulators combine
// exactly. Both results must retain per-replication state (Spec.KeepPerRep
// or Spec.Antithetic) and s must be the batch immediately following r
// (s.FirstRep == r.FirstRep + r.Reps), so the merged PerRep stays a dense
// contiguous range. Quantiles cannot be merged.
func (r *Results) Merge(s *Results) error {
	if r.accums == nil || s.accums == nil {
		return errors.New("sim: Merge requires results run with KeepPerRep")
	}
	if r.quantiles || s.quantiles {
		return errors.New("sim: cannot merge results with quantiles")
	}
	if len(r.Estimates) != len(s.Estimates) {
		return fmt.Errorf("sim: merging %d variables into %d", len(s.Estimates), len(r.Estimates))
	}
	for i := range r.Estimates {
		if r.Estimates[i].Name != s.Estimates[i].Name {
			return fmt.Errorf("sim: merging variable %q into %q", s.Estimates[i].Name, r.Estimates[i].Name)
		}
	}
	if s.FirstRep != r.FirstRep+r.Reps {
		return fmt.Errorf("sim: merging batch starting at rep %d onto batch ending at %d",
			s.FirstRep, r.FirstRep+r.Reps)
	}
	for i := range r.accums {
		r.accums[i].Merge(s.accums[i])
		r.PerRep[i] = append(r.PerRep[i], s.PerRep[i]...)
	}
	r.TotalFirings += s.TotalFirings
	r.Reps += s.Reps
	r.Completed += s.Completed
	r.Failed += s.Failed
	r.Skipped += s.Skipped
	r.Failures = append(r.Failures, s.Failures...)
	sort.Slice(r.Failures, func(i, j int) bool { return r.Failures[i].Rep < r.Failures[j].Rep })
	r.finalizeEstimates()
	return nil
}

// finalizeEstimates rebuilds Estimates and the name index from accums,
// preserving per-variable Quantiles already present.
func (r *Results) finalizeEstimates() {
	for i := range r.Estimates {
		a := r.accums[i]
		est := &r.Estimates[i]
		est.N = a.N()
		est.Mean, est.HalfWidth95, est.Min, est.Max = 0, 0, 0, 0
		if a.N() > 0 {
			est.Mean, est.Min, est.Max = a.Mean(), a.Min(), a.Max()
		}
		if a.N() >= 2 {
			est.HalfWidth95 = a.HalfWidth(0.95)
		}
	}
	r.byName = make(map[string]*Estimate, len(r.Estimates))
	for i := range r.Estimates {
		r.byName[r.Estimates[i].Name] = &r.Estimates[i]
	}
}

// Attempted returns the number of replications actually attempted
// (completed or failed) — the denominator honest accounting should use.
func (r *Results) Attempted() int { return r.Completed + r.Failed }

// Get returns the estimate for the named variable.
func (r *Results) Get(name string) (Estimate, bool) {
	e, ok := r.byName[name]
	if !ok {
		return Estimate{}, false
	}
	return *e, true
}

// MustGet returns the named estimate or panics, for harness code whose
// variable set is static.
func (r *Results) MustGet(name string) Estimate {
	e, ok := r.Get(name)
	if !ok {
		panic(fmt.Sprintf("sim: no estimate named %q", name))
	}
	return e
}

// Run executes the study: Spec.Reps replications of Spec.Model, partitioned
// over workers, aggregating every reward variable. Replication i always
// uses stream Derive(Seed)(i) regardless of the worker that runs it.
func Run(spec Spec) (*Results, error) {
	return RunContext(context.Background(), spec)
}

// runReplication executes one replication on eng, isolating panics from
// model callbacks and observers. Observations are harvested into fresh
// slices and committed by the caller only on success, so a failed
// replication contributes nothing. The returned ReplicationError is nil on
// success; cancellation of ctx surfaces as a FailureModel error wrapping
// context.Canceled, which the caller accounts as skipped work.
func runReplication(ctx context.Context, eng *Engine, spec *Spec, stream *rng.Stream, rep int) (vals [][]float64, firings int64, ferr *ReplicationError) {
	defer func() {
		if r := recover(); r != nil {
			vals, firings = nil, 0
			ferr = &ReplicationError{
				Rep: rep, Seed: spec.Seed, Kind: FailurePanic,
				PanicValue: r, Stack: string(debug.Stack()),
			}
		}
	}()
	repCtx := ctx
	if spec.RepDeadline > 0 {
		var cancel context.CancelFunc
		repCtx, cancel = context.WithTimeout(ctx, spec.RepDeadline)
		defer cancel()
	}
	obs := make([]reward.Observer, len(spec.Vars))
	for i, v := range spec.Vars {
		obs[i] = v.NewObserver()
	}
	if err := eng.RunOnceCtx(repCtx, spec.Until, stream, obs, spec.MaxFirings); err != nil {
		return nil, 0, classifyFailure(spec.Seed, rep, err)
	}
	vals = make([][]float64, len(spec.Vars))
	for i := range obs {
		obs[i].Results(func(x float64) { vals[i] = append(vals[i], x) })
	}
	return vals, eng.Firings(), nil
}

// RunContext is Run with fault-tolerant execution semantics:
//
//   - Cancelling ctx stops the study gracefully: everything that already
//     completed is merged and returned alongside ctx.Err(), with the
//     never-attempted replications counted in Results.Skipped.
//   - A replication that panics, trips the Spec.RepDeadline watchdog,
//     exhausts its firing budget, or returns a model error is recorded as a
//     ReplicationError (with its reproducing seed) and the study continues.
//   - If the failed fraction exceeds Spec.MaxFailureFrac, the partial
//     results are returned together with an aggregate error.
//
// The returned *Results is non-nil whenever the spec itself is valid, even
// when err != nil, so callers can always salvage completed work.
func RunContext(ctx context.Context, spec Spec) (*Results, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Reps {
		workers = spec.Reps
	}

	root := rng.New(spec.Seed)
	keepPer := spec.perRep()
	type workerResult struct {
		accums    []*stats.Accumulator
		samples   [][]float64
		firings   int64
		completed int
		skipped   int
		failures  []ReplicationError
	}
	results := make([]workerResult, workers)
	// In per-replication mode the workers publish each replication's
	// observations into a shared slice indexed by batch-local replication
	// (disjoint writes, no lock), and aggregation runs afterwards in
	// replication order — the order is then independent of the worker
	// count, which is what makes per-rep results bit-identical across
	// parallelism levels. nil marks a failed or skipped replication.
	var repVals [][][]float64
	if keepPer {
		repVals = make([][][]float64, spec.Reps)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			if !keepPer {
				res.accums = make([]*stats.Accumulator, len(spec.Vars))
				for i := range res.accums {
					res.accums[i] = &stats.Accumulator{}
				}
				if len(spec.Quantiles) > 0 {
					res.samples = make([][]float64, len(spec.Vars))
				}
			}
			eng := NewEngine(spec.Model, spec.Validate)
			eng.UseCRN(spec.CRN)
			eng.SetInvariants(spec.Invariants, spec.InvariantEvery)
			for rep := w; rep < spec.Reps; rep += workers {
				if ctx.Err() != nil {
					// Count this and every remaining strided replication
					// as skipped so Results never overstates what ran.
					res.skipped += (spec.Reps - rep + workers - 1) / workers
					return
				}
				abs := spec.FirstRep + rep
				vals, firings, ferr := runReplication(ctx, eng, &spec, repStream(&spec, root, abs), abs)
				if ferr != nil {
					if errors.Is(ferr.Err, context.Canceled) {
						// The study context was cancelled mid-replication:
						// incomplete work, not a failure.
						res.skipped++
						continue
					}
					res.failures = append(res.failures, *ferr)
					continue
				}
				res.completed++
				res.firings += firings
				if keepPer {
					repVals[rep] = vals
					continue
				}
				for i, xs := range vals {
					for _, x := range xs {
						res.accums[i].Add(x)
					}
					if res.samples != nil {
						res.samples[i] = append(res.samples[i], xs...)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var out *Results
	if keepPer {
		var firings int64
		completed, skipped := 0, 0
		var failures []ReplicationError
		for w := range results {
			firings += results[w].firings
			completed += results[w].completed
			skipped += results[w].skipped
			failures = append(failures, results[w].failures...)
		}
		out = aggregateRepOrder(&spec, repVals, firings, completed, skipped, failures)
	} else {
		out = &Results{Reps: spec.Reps, FirstRep: spec.FirstRep,
			quantiles: len(spec.Quantiles) > 0}
		merged := make([]*stats.Accumulator, len(spec.Vars))
		for i := range merged {
			merged[i] = &stats.Accumulator{}
		}
		var pooled [][]float64
		if len(spec.Quantiles) > 0 {
			pooled = make([][]float64, len(spec.Vars))
		}
		for w := range results {
			out.TotalFirings += results[w].firings
			out.Completed += results[w].completed
			out.Skipped += results[w].skipped
			out.Failures = append(out.Failures, results[w].failures...)
			for i := range merged {
				merged[i].Merge(results[w].accums[i])
				if pooled != nil && results[w].samples != nil {
					pooled[i] = append(pooled[i], results[w].samples[i]...)
				}
			}
		}
		out.Failed = len(out.Failures)
		sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].Rep < out.Failures[j].Rep })
		buildEstimates(&spec, out, merged, pooled)
	}
	return out, finishErr(ctx, &spec, out)
}

// aggregateRepOrder builds the Results of a study from per-replication
// observations indexed by batch-local replication (nil marks a failed or
// skipped replication), folding them in replication order — the one order
// every worker count produces, which is what makes the result bit-identical
// across parallelism levels. Shared by RunContext's per-replication path and
// RunFlat.
func aggregateRepOrder(spec *Spec, repVals [][][]float64, firings int64, completed, skipped int, failures []ReplicationError) *Results {
	keepPer := spec.perRep()
	out := &Results{Reps: spec.Reps, FirstRep: spec.FirstRep,
		quantiles:    len(spec.Quantiles) > 0,
		TotalFirings: firings, Completed: completed, Skipped: skipped,
		Failures: failures}
	merged := make([]*stats.Accumulator, len(spec.Vars))
	for i := range merged {
		merged[i] = &stats.Accumulator{}
	}
	var pooled [][]float64
	if len(spec.Quantiles) > 0 {
		pooled = make([][]float64, len(spec.Vars))
	}
	if keepPer {
		out.PerRep = make([][]float64, len(spec.Vars))
		for i := range out.PerRep {
			row := make([]float64, spec.Reps)
			for j := range row {
				row[j] = math.NaN()
			}
			out.PerRep[i] = row
		}
	}
	for j := 0; j < spec.Reps; j++ {
		vals := repVals[j]
		if vals == nil {
			continue
		}
		for i, xs := range vals {
			if keepPer && len(xs) > 0 {
				sum := 0.0
				for _, x := range xs {
					sum += x
				}
				out.PerRep[i][j] = sum / float64(len(xs))
			}
			if spec.Antithetic {
				continue // aggregated below, by pair
			}
			for _, x := range xs {
				merged[i].Add(x)
			}
			if pooled != nil {
				pooled[i] = append(pooled[i], xs...)
			}
		}
	}
	if spec.Antithetic {
		// One observation per complete pair: the mean of the two partners'
		// replication means. Pairs with a failed, skipped, or
		// observation-less member contribute nothing.
		for i := range spec.Vars {
			row := out.PerRep[i]
			for p := 0; p+1 < spec.Reps; p += 2 {
				a, b := row[p], row[p+1]
				if !math.IsNaN(a) && !math.IsNaN(b) {
					merged[i].Add((a + b) / 2)
				}
			}
		}
	}
	out.Failed = len(out.Failures)
	sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].Rep < out.Failures[j].Rep })
	buildEstimates(spec, out, merged, pooled)
	if keepPer {
		out.accums = merged
	}
	return out
}

// buildEstimates fills out.Estimates and the name index from the merged
// per-variable accumulators and (optionally) the pooled observations backing
// the requested quantiles.
func buildEstimates(spec *Spec, out *Results, merged []*stats.Accumulator, pooled [][]float64) {
	for i, v := range spec.Vars {
		a := merged[i]
		est := Estimate{Name: v.Name(), N: a.N()}
		if a.N() > 0 {
			est.Mean, est.Min, est.Max = a.Mean(), a.Min(), a.Max()
		}
		if a.N() >= 2 {
			est.HalfWidth95 = a.HalfWidth(0.95)
		}
		if pooled != nil && len(pooled[i]) > 0 {
			est.Quantiles = make([]float64, len(spec.Quantiles))
			for qi, q := range spec.Quantiles {
				est.Quantiles[qi] = stats.Quantile(pooled[i], q)
			}
		}
		out.Estimates = append(out.Estimates, est)
	}
	out.byName = make(map[string]*Estimate, len(out.Estimates))
	for i := range out.Estimates {
		out.byName[out.Estimates[i].Name] = &out.Estimates[i]
	}
}

// finishErr is the error a finished study reports alongside its (always
// non-nil) partial results: context cancellation first, then the
// failure-tolerance breach.
func finishErr(ctx context.Context, spec *Spec, out *Results) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if out.Failed > 0 {
		maxFrac := spec.MaxFailureFrac
		if maxFrac == 0 {
			maxFrac = DefaultMaxFailureFrac
		} else if maxFrac < 0 {
			maxFrac = 0
		}
		if frac := float64(out.Failed) / float64(spec.Reps); frac > maxFrac {
			return out.toleranceError(spec, maxFrac)
		}
	}
	return nil
}

// toleranceError formats the aggregate failure-tolerance error.
func (r *Results) toleranceError(spec *Spec, maxFrac float64) error {
	frac := float64(r.Failed) / float64(spec.Reps)
	return fmt.Errorf("sim: %d of %d replications failed (%.1f%% > %.1f%% tolerated), first: %w",
		r.Failed, spec.Reps, 100*frac, 100*maxFrac, &r.Failures[0])
}

// Sorted returns estimate names in sorted order (stable table output).
func (r *Results) Sorted() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
