package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/stats"
)

// Spec describes a replicated terminating simulation study.
type Spec struct {
	// Model is the finalized SAN to simulate.
	Model *san.Model
	// Until is the end time of each replication.
	Until float64
	// Reps is the number of independent replications (must be >= 1).
	Reps int
	// Seed is the root seed; replication i uses the derived stream i, so
	// results are reproducible and independent of worker scheduling.
	Seed uint64
	// Vars are the reward variables to estimate.
	Vars []reward.Var
	// Workers limits parallelism (0 = GOMAXPROCS).
	Workers int
	// Validate enables read-trace dependency checking (slow; for tests).
	Validate bool
	// MaxFirings bounds the firings per replication (0 = default).
	MaxFirings int64
	// Quantiles, when non-empty, requests the given sample quantiles (in
	// [0,1]) of every variable's per-replication observations, at the cost
	// of retaining all observations in memory.
	Quantiles []float64
}

// Estimate is the aggregated result for one reward variable.
type Estimate struct {
	Name string
	// Mean is the point estimate across all emitted observations.
	Mean float64
	// HalfWidth95 is the 95% confidence half-width.
	HalfWidth95 float64
	// N is the number of observations (replications that emitted a value).
	N int64
	// Min and Max are the extreme observations.
	Min, Max float64
	// Quantiles holds the requested sample quantiles, parallel to
	// Spec.Quantiles (nil when none were requested or no observations).
	Quantiles []float64
}

func (e Estimate) String() string {
	return fmt.Sprintf("%s = %.6g ± %.2g (n=%d)", e.Name, e.Mean, e.HalfWidth95, e.N)
}

// Results holds the study outcome.
type Results struct {
	// Estimates, in the order of Spec.Vars.
	Estimates []Estimate
	// TotalFirings across all replications.
	TotalFirings int64
	// Reps actually run.
	Reps   int
	byName map[string]*Estimate
}

// Get returns the estimate for the named variable.
func (r *Results) Get(name string) (Estimate, bool) {
	e, ok := r.byName[name]
	if !ok {
		return Estimate{}, false
	}
	return *e, true
}

// MustGet returns the named estimate or panics, for harness code whose
// variable set is static.
func (r *Results) MustGet(name string) Estimate {
	e, ok := r.Get(name)
	if !ok {
		panic(fmt.Sprintf("sim: no estimate named %q", name))
	}
	return e
}

// Run executes the study: Spec.Reps replications of Spec.Model, partitioned
// over workers, aggregating every reward variable. Replication i always
// uses stream Derive(Seed)(i) regardless of the worker that runs it.
func Run(spec Spec) (*Results, error) {
	if spec.Model == nil || !spec.Model.Finalized() {
		return nil, errors.New("sim: Spec.Model must be a finalized model")
	}
	if spec.Reps < 1 {
		return nil, fmt.Errorf("sim: Reps must be >= 1, got %d", spec.Reps)
	}
	if spec.Until <= 0 {
		return nil, fmt.Errorf("sim: Until must be > 0, got %v", spec.Until)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Reps {
		workers = spec.Reps
	}

	root := rng.New(spec.Seed)
	type workerResult struct {
		accums  []*stats.Accumulator
		samples [][]float64
		firings int64
		err     error
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.accums = make([]*stats.Accumulator, len(spec.Vars))
			for i := range res.accums {
				res.accums[i] = &stats.Accumulator{}
			}
			if len(spec.Quantiles) > 0 {
				res.samples = make([][]float64, len(spec.Vars))
			}
			eng := NewEngine(spec.Model, spec.Validate)
			obs := make([]reward.Observer, len(spec.Vars))
			for rep := w; rep < spec.Reps; rep += workers {
				for i, v := range spec.Vars {
					obs[i] = v.NewObserver()
				}
				stream := root.Derive(uint64(rep))
				if err := eng.RunOnce(spec.Until, stream, obs, spec.MaxFirings); err != nil {
					res.err = fmt.Errorf("replication %d: %w", rep, err)
					return
				}
				res.firings += eng.Firings()
				for i := range obs {
					acc := res.accums[i]
					obs[i].Results(func(x float64) {
						acc.Add(x)
						if res.samples != nil {
							res.samples[i] = append(res.samples[i], x)
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()

	out := &Results{Reps: spec.Reps, byName: make(map[string]*Estimate, len(spec.Vars))}
	merged := make([]*stats.Accumulator, len(spec.Vars))
	for i := range merged {
		merged[i] = &stats.Accumulator{}
	}
	var pooled [][]float64
	if len(spec.Quantiles) > 0 {
		pooled = make([][]float64, len(spec.Vars))
	}
	for w := range results {
		if results[w].err != nil {
			return nil, results[w].err
		}
		out.TotalFirings += results[w].firings
		for i := range merged {
			merged[i].Merge(results[w].accums[i])
			if pooled != nil && results[w].samples != nil {
				pooled[i] = append(pooled[i], results[w].samples[i]...)
			}
		}
	}
	for i, v := range spec.Vars {
		a := merged[i]
		est := Estimate{Name: v.Name(), N: a.N()}
		if a.N() > 0 {
			est.Mean, est.Min, est.Max = a.Mean(), a.Min(), a.Max()
		}
		if a.N() >= 2 {
			est.HalfWidth95 = a.HalfWidth(0.95)
		}
		if pooled != nil && len(pooled[i]) > 0 {
			est.Quantiles = make([]float64, len(spec.Quantiles))
			for qi, q := range spec.Quantiles {
				est.Quantiles[qi] = stats.Quantile(pooled[i], q)
			}
		}
		out.Estimates = append(out.Estimates, est)
	}
	for i := range out.Estimates {
		out.byName[out.Estimates[i].Name] = &out.Estimates[i]
	}
	return out, nil
}

// Sorted returns estimate names in sorted order (stable table output).
func (r *Results) Sorted() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
