package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/stats"
)

// SteadySpec configures a steady-state simulation by the batch-means
// method: one long trajectory is split (after a warm-up period) into
// contiguous batches, the rate reward is time-averaged within each batch,
// and the batch means — approximately independent for long batches — give
// the confidence interval. This is the second solution mode of the Möbius
// simulator alongside replicated terminating studies.
type SteadySpec struct {
	// Model is the finalized SAN.
	Model *san.Model
	// F is the rate reward whose steady-state expectation is estimated.
	F func(s *san.State) float64
	// Warmup is simulated time discarded before measurement begins.
	Warmup float64
	// BatchLength is the simulated time per batch (must be > 0).
	BatchLength float64
	// Batches is the number of batches (>= 2; default 32).
	Batches int
	// Seed seeds the single trajectory.
	Seed uint64
	// MaxFirings bounds the run (0 = default).
	MaxFirings int64
}

// SteadyEstimate is a batch-means estimate.
type SteadyEstimate struct {
	Mean        float64
	HalfWidth95 float64
	Batches     int
	// LagOneCorr is the lag-1 autocorrelation of the batch means; values
	// far from zero mean the batches are too short for a trustworthy CI.
	LagOneCorr float64
}

func (e SteadyEstimate) String() string {
	return fmt.Sprintf("%.6g ± %.2g (batches=%d, lag1=%.2f)", e.Mean, e.HalfWidth95, e.Batches, e.LagOneCorr)
}

// batchObserver accumulates ∫F dt per fixed-width batch window.
type batchObserver struct {
	f       func(s *san.State) float64
	warmup  float64
	length  float64
	batches []float64
	max     int
}

func (o *batchObserver) Init(*san.State, float64)                      {}
func (o *batchObserver) Fired(*san.State, *san.Activity, int, float64) {}
func (o *batchObserver) Done(*san.State, float64)                      {}
func (o *batchObserver) Results(func(float64))                         {}

func (o *batchObserver) Advance(s *san.State, t0, t1 float64) {
	if t1 <= o.warmup {
		return
	}
	if t0 < o.warmup {
		t0 = o.warmup
	}
	v := o.f(s)
	if v == 0 {
		return
	}
	// Distribute v*(t1-t0) over the batch windows the interval spans.
	for t0 < t1 {
		idx := int((t0 - o.warmup) / o.length)
		if idx >= o.max {
			return
		}
		for len(o.batches) <= idx {
			o.batches = append(o.batches, 0)
		}
		end := o.warmup + float64(idx+1)*o.length
		if end > t1 {
			end = t1
		}
		o.batches[idx] += v * (end - t0)
		t0 = end
	}
}

// RunSteady estimates the steady-state expectation of spec.F.
func RunSteady(spec SteadySpec) (SteadyEstimate, error) {
	return RunSteadyContext(context.Background(), spec)
}

// RunSteadyContext is RunSteady with cooperative cancellation and panic
// isolation: cancelling ctx aborts the trajectory with ctx.Err(), and a
// panicking model callback is returned as a *ReplicationError (Kind
// FailurePanic) carrying the seed and stack instead of crashing the caller.
func RunSteadyContext(ctx context.Context, spec SteadySpec) (est SteadyEstimate, err error) {
	defer func() {
		if r := recover(); r != nil {
			est, err = SteadyEstimate{}, &ReplicationError{
				Rep: 0, Seed: spec.Seed, Kind: FailurePanic,
				PanicValue: r, Stack: string(debug.Stack()),
			}
		}
	}()
	if spec.Model == nil || !spec.Model.Finalized() {
		return SteadyEstimate{}, errors.New("sim: SteadySpec.Model must be a finalized model")
	}
	if spec.F == nil {
		return SteadyEstimate{}, errors.New("sim: SteadySpec.F is required")
	}
	if spec.BatchLength <= 0 {
		return SteadyEstimate{}, fmt.Errorf("sim: BatchLength must be > 0, got %v", spec.BatchLength)
	}
	if spec.Batches == 0 {
		spec.Batches = 32
	}
	if spec.Batches < 2 {
		return SteadyEstimate{}, fmt.Errorf("sim: need at least 2 batches, got %d", spec.Batches)
	}
	if spec.Warmup < 0 {
		return SteadyEstimate{}, fmt.Errorf("sim: negative warmup %v", spec.Warmup)
	}
	obs := &batchObserver{f: spec.F, warmup: spec.Warmup, length: spec.BatchLength, max: spec.Batches}
	until := spec.Warmup + float64(spec.Batches)*spec.BatchLength
	eng := NewEngine(spec.Model, false)
	if err := eng.RunOnceCtx(ctx, until, rng.New(spec.Seed), []reward.Observer{obs}, spec.MaxFirings); err != nil {
		return SteadyEstimate{}, err
	}
	for len(obs.batches) < spec.Batches {
		obs.batches = append(obs.batches, 0)
	}
	var acc stats.Accumulator
	for _, b := range obs.batches {
		acc.Add(b / spec.BatchLength)
	}
	return SteadyEstimate{
		Mean:        acc.Mean(),
		HalfWidth95: acc.HalfWidth(0.95),
		Batches:     spec.Batches,
		LagOneCorr:  lag1(obs.batches),
	}, nil
}

// lag1 returns the lag-1 autocorrelation of xs.
func lag1(xs []float64) float64 {
	n := len(xs)
	if n < 3 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for i, x := range xs {
		d := x - mean
		den += d * d
		if i > 0 {
			num += (xs[i-1] - mean) * d
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
