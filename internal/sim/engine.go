// Package sim is the discrete-event simulation engine for SAN models: the
// equivalent of the Möbius simulator the paper used ("because of the
// complexity of the model and the use of non-exponentially distributed
// firing times ... we instead used Möbius to simulate the model").
//
// The engine executes replicated terminating simulations: each replication
// runs the model from its initial marking to a fixed end time, reward
// observers watch the trajectory, and the runner aggregates observations
// across replications (optionally in parallel) into confidence intervals.
package sim

import (
	"context"
	"fmt"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// event is a scheduled completion of a timed activity. gen guards against
// stale events: cancelling an activity bumps its generation, leaving the
// heap entry to be discarded lazily when popped.
type event struct {
	time float64
	act  *san.Activity
	gen  uint64
}

// eventHeap is a typed binary min-heap over event values. It deliberately
// reimplements the sift-up/sift-down of container/heap (same traversal,
// same strict < comparison) so equal-time events keep the exact pop order
// the engine has always produced — deterministic-distribution models create
// ties, and changing their resolution would change sampled trajectories.
// Going typed removes the two interface{} boxings (Push and Pop) that
// container/heap charges per event, which were the engine's dominant
// steady-state allocation.
type eventHeap []event

// push inserts ev, restoring the heap property. Amortized zero allocations
// once the backing array has grown to the model's concurrency level.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !(s[j].time < s[i].time) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the minimum element.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the displaced element down over the first n entries.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].time < s[j1].time {
			j = j2
		}
		if !(s[j].time < s[i].time) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	ev := s[n]
	*h = s[:n]
	return ev
}

// schedEntry tracks the scheduling status of one timed activity.
type schedEntry struct {
	scheduled bool
	gen       uint64
	dist      rng.Dist // distribution in force when the event was sampled
}

// Engine runs one replication at a time over a finalized model. An Engine
// is not safe for concurrent use; the parallel runner creates one per
// worker.
type Engine struct {
	model    *san.Model
	state    *san.State
	baseline *san.State // immutable initial marking, copied into state per replication
	sched    []schedEntry
	heap     eventHeap
	now      float64
	rand     *rng.Stream
	validate bool

	// distMemo caches, per activity ID, the firing-time distribution of
	// timed activities whose Dist closure is provably marking-independent
	// (see probeConstDist): most of the paper's model returns a fixed
	// rng.Dist, and evaluating the closure on every dependent marking
	// change both costs a call and re-boxes the distribution value. nil
	// entries fall back to the closure. Unused in validate mode, which
	// must keep read-tracing every evaluation.
	distMemo []rng.Dist

	// ctx is the reusable firing context handed to gate functions; rebound
	// per replication instead of allocated.
	ctx san.Context

	// scratch buffers for the instantaneous-race resolution, reused across
	// firings so steady state allocates nothing.
	instBuf []*san.Activity
	raceW   []float64

	// Common-random-numbers mode (UseCRN): instead of drawing every variate
	// from the single replication stream in event-execution order, each
	// stochastic role — an activity's firing delays, case choices, and
	// effect draws; the initialization hook; the instantaneous race — gets
	// its own substream derived from the replication stream by the stable
	// hash of the activity's name. Two model variants that share activity
	// names then consume identical randomness for identical roles however
	// their event interleavings differ, which is what makes paired
	// (CRN-synchronized) policy comparisons sharp.
	crn         bool
	roleKeys    []uint64      // per activity ID: rng.RoleKey(activity name)
	roleStreams []*rng.Stream // per activity ID, lazily derived per replication
	repRoot     *rng.Stream   // the replication stream roles derive from
	initStream  *rng.Stream   // role for the init hook + initial stabilization
	raceStream  *rng.Stream   // role for instantaneous-activity races

	// candidate deduplication between stabilization rounds
	stamp    []uint64
	curStamp uint64

	// runtime invariant monitors (SetInvariants)
	invariants []Invariant
	invEvery   int64

	firings int64
}

// NewEngine creates an engine for the finalized model. If validate is true,
// every predicate/distribution evaluation is read-traced and an undeclared
// dependency panics — slow, meant for model tests.
func NewEngine(model *san.Model, validate bool) *Engine {
	if !model.Finalized() {
		panic("sim: model not finalized")
	}
	e := &Engine{
		model:    model,
		state:    model.NewState(),
		baseline: model.NewState(),
		sched:    make([]schedEntry, len(model.Activities())),
		stamp:    make([]uint64, len(model.Activities())),
		validate: validate,
	}
	if !validate {
		e.distMemo = make([]rng.Dist, len(model.Activities()))
		probe := model.NewState()
		for _, a := range model.Activities() {
			if a.Kind() == san.Timed {
				e.distMemo[a.ID()] = probeConstDist(probe, a)
			}
		}
	}
	return e
}

// probeConstDist returns a's firing-time distribution if the Dist closure is
// provably marking-independent, nil otherwise. The proof is by read tracing
// on the initial marking: two evaluations that read no place (directly or
// via the raw Markings vector) and return the identical distribution value
// cannot depend on the state, so the engine may reuse that value instead of
// re-invoking the closure. Closures returning fresh pointers (e.g. a new
// *Empirical per call) fail the identity check and stay unmemoized, which
// also preserves their (resampling) behavior under ReactivateOnChange.
func probeConstDist(s *san.State, a *san.Activity) (d rng.Dist) {
	defer func() {
		// A panicking closure (state-dependent guard) or an uncomparable
		// distribution type simply stays unmemoized.
		if recover() != nil {
			d = nil
		}
	}()
	s.StartTrace()
	d1 := a.Dist(s)
	if reads := s.StopTrace(); len(reads) > 0 || s.ReadAllTraced() {
		return nil
	}
	s.StartTrace()
	d2 := a.Dist(s)
	if reads := s.StopTrace(); len(reads) > 0 || s.ReadAllTraced() {
		return nil
	}
	if d1 != d2 {
		return nil
	}
	return d1
}

// UseCRN switches the engine between single-stream sampling (the default,
// bit-compatible with all prior results) and role-indexed substreams for
// common random numbers. Call it before RunOnce; the mode is sticky.
func (e *Engine) UseCRN(on bool) {
	e.crn = on
	if !on || e.roleKeys != nil {
		return
	}
	acts := e.model.Activities()
	e.roleKeys = make([]uint64, len(acts))
	for _, a := range acts {
		e.roleKeys[a.ID()] = rng.RoleKey(a.Name())
	}
	e.roleStreams = make([]*rng.Stream, len(acts))
}

// randFor returns the stream an activity's variates come from: the shared
// replication stream normally, or the activity's role substream under CRN
// (derived on first use each replication, so the cost of unused roles is
// zero and the consumption order within a role is trajectory-independent).
func (e *Engine) randFor(a *san.Activity) *rng.Stream {
	if !e.crn {
		return e.rand
	}
	st := e.roleStreams[a.ID()]
	if st == nil {
		st = e.repRoot.Role(e.roleKeys[a.ID()])
		e.roleStreams[a.ID()] = st
	}
	return st
}

// State exposes the engine's current state (for observers and tests).
func (e *Engine) State() *san.State { return e.state }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Firings returns the number of activity completions in the last run.
func (e *Engine) Firings() int64 { return e.firings }

// enabled evaluates the activity's predicate, read-tracing in validate mode.
func (e *Engine) enabled(a *san.Activity) bool {
	if !e.validate {
		return a.Enabled(e.state)
	}
	e.state.StartTrace()
	result := a.Enabled(e.state)
	e.checkTrace(a, "Enabled")
	return result
}

// dist evaluates the activity's distribution, read-tracing in validate mode.
// Marking-independent distributions come from the per-engine memo instead of
// re-invoking the closure.
func (e *Engine) dist(a *san.Activity) rng.Dist {
	if !e.validate {
		if d := e.distMemo[a.ID()]; d != nil {
			return d
		}
		return a.Dist(e.state)
	}
	e.state.StartTrace()
	d := a.Dist(e.state)
	e.checkTrace(a, "Dist")
	return d
}

func (e *Engine) checkTrace(a *san.Activity, what string) {
	reads := e.state.StopTrace()
	declared := make(map[int]bool, len(a.Reads()))
	for _, p := range a.Reads() {
		declared[p.Index()] = true
	}
	for idx := range reads {
		if !declared[idx] {
			panic(fmt.Sprintf("sim: activity %q %s read undeclared place %q",
				a.Name(), what, e.model.Places()[idx].Name()))
		}
	}
}

// sample schedules a fresh completion for a (assumed enabled).
func (e *Engine) sample(a *san.Activity, d rng.Dist) {
	delay := d.Sample(e.randFor(a))
	if delay < 0 {
		delay = 0
	}
	ent := &e.sched[a.ID()]
	ent.gen++
	ent.scheduled = true
	ent.dist = d
	e.heap.push(event{time: e.now + delay, act: a, gen: ent.gen})
}

// cancel invalidates a's scheduled event, if any.
func (e *Engine) cancel(a *san.Activity) {
	ent := &e.sched[a.ID()]
	if ent.scheduled {
		ent.scheduled = false
		ent.gen++
	}
}

// refresh re-evaluates scheduling for a after a marking change.
func (e *Engine) refresh(a *san.Activity) {
	if a.Kind() != san.Timed {
		return
	}
	ent := &e.sched[a.ID()]
	if !e.enabled(a) {
		e.cancel(a)
		return
	}
	if !ent.scheduled {
		e.sample(a, e.dist(a))
		return
	}
	switch a.ReactivationPolicy() {
	case san.ReactivateNever:
		// keep the sampled completion
	case san.ReactivateAlways:
		e.cancel(a)
		e.sample(a, e.dist(a))
	case san.ReactivateOnChange:
		if d := e.dist(a); d != ent.dist {
			e.cancel(a)
			e.sample(a, d)
		}
	}
}

// processDirty refreshes every activity that depends on a dirtied place,
// plus extras (the activity that just fired). Deduplicates via stamps.
func (e *Engine) processDirty(extra *san.Activity) {
	e.curStamp++
	if extra != nil && extra.Kind() == san.Timed {
		e.stamp[extra.ID()] = e.curStamp
		e.refresh(extra)
	}
	for _, placeIdx := range e.state.Dirty() {
		for _, a := range e.model.Dependents(placeIdx) {
			if e.stamp[a.ID()] == e.curStamp {
				continue
			}
			e.stamp[a.ID()] = e.curStamp
			e.refresh(a)
		}
	}
	e.state.ResetDirty()
}

// fanout dispatches trajectory callbacks to the reward observers. It is a
// plain value, not an interface: the engine's inner loop calls it millions
// of times per second, and the overwhelmingly common single-observer case
// (each precision measure runs alone) devirtualizes to one direct call
// instead of an interface dispatch plus a slice walk.
type fanout struct {
	one  reward.Observer   // set iff exactly one observer
	many []reward.Observer // otherwise
}

func newFanout(obs []reward.Observer) fanout {
	if len(obs) == 1 {
		return fanout{one: obs[0]}
	}
	return fanout{many: obs}
}

func (f fanout) init(s *san.State, t float64) {
	if f.one != nil {
		f.one.Init(s, t)
		return
	}
	for _, o := range f.many {
		o.Init(s, t)
	}
}
func (f fanout) advance(s *san.State, t0, t1 float64) {
	if f.one != nil {
		f.one.Advance(s, t0, t1)
		return
	}
	for _, o := range f.many {
		o.Advance(s, t0, t1)
	}
}
func (f fanout) fired(s *san.State, a *san.Activity, c int, t float64) {
	if f.one != nil {
		f.one.Fired(s, a, c, t)
		return
	}
	for _, o := range f.many {
		o.Fired(s, a, c, t)
	}
}
func (f fanout) done(s *san.State, t float64) {
	if f.one != nil {
		f.one.Done(s, t)
		return
	}
	for _, o := range f.many {
		o.Done(s, t)
	}
}

// RunOnce executes one replication to time until using the given stream,
// reporting the trajectory to observers. maxFirings guards against runaway
// models (0 means a generous default).
func (e *Engine) RunOnce(until float64, stream *rng.Stream, obs []reward.Observer, maxFirings int64) error {
	return e.RunOnceCtx(context.Background(), until, stream, obs, maxFirings)
}

// ctxCheckMask gates how often the hot loops poll ctx.Err(): every 256
// firings, keeping the watchdog responsive (a runaway instantaneous loop
// spins millions of firings per second) without measurable overhead.
const ctxCheckMask = 255

// RunOnceCtx is RunOnce with cooperative cancellation: the engine polls ctx
// every few hundred firings — including inside the instantaneous-activity
// resolution loop, so a zero-delay loop cannot wedge the replication — and
// returns ctx.Err() when the context is cancelled or its deadline passes.
// Exceeding maxFirings returns a *BudgetError.
func (e *Engine) RunOnceCtx(runCtx context.Context, until float64, stream *rng.Stream, obs []reward.Observer, maxFirings int64) error {
	if maxFirings <= 0 {
		maxFirings = 50_000_000
	}
	if err := runCtx.Err(); err != nil {
		return err
	}
	e.rand = stream
	if e.crn {
		e.repRoot = stream
		for i := range e.roleStreams {
			e.roleStreams[i] = nil
		}
		e.initStream = stream.RoleNamed("__init__")
		e.raceStream = stream.RoleNamed("__race__")
	}
	e.now = 0
	e.firings = 0
	e.heap = e.heap[:0]
	for i := range e.sched {
		e.sched[i].scheduled = false
		e.sched[i].gen++
	}
	// Reset to the initial marking from the engine's cached baseline: the
	// per-replication model.NewState() this replaces was one of the last
	// allocations on the replication path.
	e.state.CopyFrom(e.baseline)

	ctx := &e.ctx
	ctx.State, ctx.Rand, ctx.Now = e.state, e.rand, 0
	if e.crn {
		ctx.Rand = e.initStream
	}
	if init := e.model.Init(); init != nil {
		init(ctx)
	}
	if _, err := san.Stabilize(e.model, ctx); err != nil {
		return err
	}
	e.state.ResetDirty()
	if err := e.checkInvariants(); err != nil {
		return err
	}
	invEvery := e.invEvery
	if invEvery <= 0 {
		invEvery = DefaultInvariantEvery
	}
	nextInvCheck := invEvery
	watch := newFanout(obs)
	watch.init(e.state, 0)

	// Initial schedule: every timed activity is a candidate.
	e.curStamp++
	for _, a := range e.model.Activities() {
		if a.Kind() == san.Timed {
			e.stamp[a.ID()] = e.curStamp
			e.refresh(a)
		}
	}
	e.state.ResetDirty()

	for len(e.heap) > 0 {
		ev := e.heap[0]
		ent := &e.sched[ev.act.ID()]
		if !ent.scheduled || ent.gen != ev.gen {
			e.heap.pop() // stale
			continue
		}
		if ev.time > until {
			break
		}
		e.heap.pop()
		ent.scheduled = false

		if ev.time > e.now {
			watch.advance(e.state, e.now, ev.time)
			e.now = ev.time
		}
		ctx.Now = e.now
		ctx.Rand = e.randFor(ev.act)

		caseIdx := ev.act.ChooseCase(ctx)
		ev.act.Fire(ctx, caseIdx)
		e.firings++
		watch.fired(e.state, ev.act, caseIdx, e.now)

		// Resolve instantaneous activities, reporting each vanishing
		// marking to observers (zero-width, so rate rewards are
		// unaffected but impulse/latch observers see them). chain counts
		// the zero-delay completions triggered by this one timed firing;
		// exceeding maxInstantChain is a livelock, detected here rather
		// than left to burn through the firing budget.
		var chain int64
		for {
			enabled := e.model.MaxInstantPriorityEnabledInto(e.state, e.instBuf)
			e.instBuf = enabled[:0]
			if len(enabled) == 0 {
				break
			}
			var a *san.Activity
			if len(enabled) == 1 {
				a = enabled[0]
			} else {
				weights := e.raceW[:0]
				for _, en := range enabled {
					weights = append(weights, en.Weight())
				}
				e.raceW = weights[:0]
				race := e.rand
				if e.crn {
					race = e.raceStream
				}
				a = enabled[race.Category(weights)]
			}
			ctx.Rand = e.randFor(a)
			ci := a.ChooseCase(ctx)
			a.Fire(ctx, ci)
			e.firings++
			chain++
			watch.fired(e.state, a, ci, e.now)
			if chain > maxInstantChain {
				return &LivelockError{Chain: chain, At: e.now, Last: a.Name()}
			}
			if e.firings > maxFirings {
				return &BudgetError{Limit: maxFirings, At: e.now}
			}
			if e.firings&ctxCheckMask == 0 {
				if err := runCtx.Err(); err != nil {
					return err
				}
			}
		}

		e.processDirty(ev.act)

		if len(e.invariants) > 0 && e.firings >= nextInvCheck {
			if err := e.checkInvariants(); err != nil {
				return err
			}
			nextInvCheck = e.firings + invEvery
		}
		if e.firings > maxFirings {
			return &BudgetError{Limit: maxFirings, At: e.now}
		}
		if e.firings&ctxCheckMask == 0 {
			if err := runCtx.Err(); err != nil {
				return err
			}
		}
	}

	if until > e.now {
		watch.advance(e.state, e.now, until)
		e.now = until
	}
	if err := e.checkInvariants(); err != nil {
		return err
	}
	watch.done(e.state, e.now)
	return nil
}
