package sim

import (
	"math"
	"strings"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// buildMM1K constructs an M/M/1/K queue as a SAN: place q holds the queue
// length; arrive (rate lambda) is enabled while q < K; serve (rate mu) while
// q > 0.
func buildMM1K(t testing.TB, lambda, mu float64, k int) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("mm1k")
	q := m.Place("q", 0)
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(lambda) },
		Enabled: func(s *san.State) bool { return s.Int(q) < k },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "serve", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(mu) },
		Enabled: func(s *san.State) bool { return s.Get(q) > 0 },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, -1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, q
}

// mm1kStationary returns the stationary distribution of M/M/1/K.
func mm1kStationary(lambda, mu float64, k int) []float64 {
	rho := lambda / mu
	pi := make([]float64, k+1)
	total := 0.0
	for n := 0; n <= k; n++ {
		pi[n] = math.Pow(rho, float64(n))
		total += pi[n]
	}
	for n := range pi {
		pi[n] /= total
	}
	return pi
}

func TestMM1KAgainstAnalytic(t *testing.T) {
	const lambda, mu, k = 2.0, 3.0, 5
	m, q := buildMM1K(t, lambda, mu, k)
	pi := mm1kStationary(lambda, mu, k)
	wantLen := 0.0
	for n, p := range pi {
		wantLen += float64(n) * p
	}
	// Long window so the initial transient is negligible.
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "len", F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 50, To: 400},
		&reward.TimeAverage{VarName: "full", F: func(s *san.State) float64 {
			if s.Int(q) == k {
				return 1
			}
			return 0
		}, From: 50, To: 400},
	}
	res, err := Run(Spec{Model: m, Until: 400, Reps: 64, Seed: 1, Vars: vars, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	lenEst := res.MustGet("len")
	if math.Abs(lenEst.Mean-wantLen) > 3*lenEst.HalfWidth95+0.02 {
		t.Fatalf("mean queue length %v ± %v, analytic %v", lenEst.Mean, lenEst.HalfWidth95, wantLen)
	}
	fullEst := res.MustGet("full")
	if math.Abs(fullEst.Mean-pi[k]) > 3*fullEst.HalfWidth95+0.01 {
		t.Fatalf("P(full) %v ± %v, analytic %v", fullEst.Mean, fullEst.HalfWidth95, pi[k])
	}
}

// buildTwoState builds a failure/repair model: up=1 initially, fail rate
// lambda, repair rate mu.
func buildTwoState(t testing.TB, lambda, mu float64) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("twostate")
	up := m.Place("up", 1)
	m.AddActivity(san.ActivityDef{
		Name: "fail", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(lambda) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 1 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 0) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "repair", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(mu) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 0 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, up
}

func TestTwoStateIntervalUnavailability(t *testing.T) {
	// Analytic interval unavailability over [0,T] starting up:
	// U(t) = λ/(λ+μ) (1 - e^{-(λ+μ)t}); avg over [0,T] =
	// λ/(λ+μ) [1 - (1 - e^{-(λ+μ)T})/((λ+μ)T)].
	const lambda, mu, T = 0.5, 2.0, 8.0
	s := lambda + mu
	want := lambda / s * (1 - (1-math.Exp(-s*T))/(s*T))
	m, up := buildTwoState(t, lambda, mu)
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "unavail", F: func(st *san.State) float64 {
			if st.Get(up) == 0 {
				return 1
			}
			return 0
		}, From: 0, To: T},
	}
	res, err := Run(Spec{Model: m, Until: T, Reps: 4000, Seed: 2, Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	est := res.MustGet("unavail")
	if math.Abs(est.Mean-want) > 3*est.HalfWidth95 {
		t.Fatalf("interval unavailability %v ± %v, analytic %v", est.Mean, est.HalfWidth95, want)
	}
}

func TestTwoStateFirstPassage(t *testing.T) {
	// P(fail by T) = 1 - e^{-λT} starting up.
	const lambda, mu, T = 0.3, 5.0, 4.0
	want := 1 - math.Exp(-lambda*T)
	m, up := buildTwoState(t, lambda, mu)
	vars := []reward.Var{
		&reward.FirstPassage{VarName: "unrel", Pred: func(st *san.State) bool { return st.Get(up) == 0 }, By: T},
	}
	res, err := Run(Spec{Model: m, Until: T, Reps: 6000, Seed: 3, Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	est := res.MustGet("unrel")
	if math.Abs(est.Mean-want) > 3*est.HalfWidth95 {
		t.Fatalf("unreliability %v ± %v, analytic %v", est.Mean, est.HalfWidth95, want)
	}
}

func TestDeterministicTimes(t *testing.T) {
	// A deterministic clock ticking every 1.5 units: exactly 6 firings by
	// t=10 (at 1.5, 3, 4.5, 6, 7.5, 9).
	m := san.NewModel("det")
	n := m.Place("n", 0)
	m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:         func(*san.State) rng.Dist { return rng.Deterministic{V: 1.5} },
		Enabled:      func(s *san.State) bool { return s.Get(n) < 100 },
		Reads:        []*san.Place{n},
		Reactivation: san.ReactivateNever,
		Cases:        []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(n, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	vars := []reward.Var{
		&reward.AtTime{VarName: "n", F: func(s *san.State) float64 { return float64(s.Get(n)) }, T: 10},
	}
	res, err := Run(Spec{Model: m, Until: 10, Reps: 3, Seed: 4, Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MustGet("n").Mean; got != 6 {
		t.Fatalf("deterministic ticks by t=10: %v, want 6", got)
	}
}

func TestReactivationOnRateChange(t *testing.T) {
	// Activity "work" has rate 100 while boost=1, else 0.001. "boost" fires
	// deterministically at t=1 setting boost=1. With ReactivateOnChange the
	// work activity resamples at t=1 with the fast rate, so it almost surely
	// completes before t=1.5. With ReactivateNever it keeps its original
	// (slow) sample and almost surely does not complete by t=1.5.
	build := func(policy san.Reactivation) (*san.Model, *san.Place) {
		m := san.NewModel("react")
		boost := m.Place("boost", 0)
		done := m.Place("done", 0)
		m.AddActivity(san.ActivityDef{
			Name: "booster", Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Deterministic{V: 1} },
			Enabled: func(s *san.State) bool { return s.Get(boost) == 0 },
			Reads:   []*san.Place{boost},
			Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(boost, 1) }}},
		})
		m.AddActivity(san.ActivityDef{
			Name: "work", Kind: san.Timed,
			Dist: func(s *san.State) rng.Dist {
				if s.Get(boost) == 1 {
					return rng.Expo(100)
				}
				return rng.Expo(0.001)
			},
			Enabled:      func(s *san.State) bool { return s.Get(done) == 0 },
			Reads:        []*san.Place{boost, done},
			Reactivation: policy,
			Cases:        []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(done, 1) }}},
		})
		if err := m.Finalize(); err != nil {
			t.Fatal(err)
		}
		return m, done
	}
	prob := func(policy san.Reactivation) float64 {
		m, done := build(policy)
		vars := []reward.Var{
			&reward.AtTime{VarName: "done", F: func(s *san.State) float64 { return float64(s.Get(done)) }, T: 1.5},
		}
		res, err := Run(Spec{Model: m, Until: 1.5, Reps: 400, Seed: 5, Vars: vars, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.MustGet("done").Mean
	}
	if p := prob(san.ReactivateOnChange); p < 0.95 {
		t.Fatalf("ReactivateOnChange completion prob %v, want ~1", p)
	}
	if p := prob(san.ReactivateNever); p > 0.05 {
		t.Fatalf("ReactivateNever completion prob %v, want ~0", p)
	}
}

func TestReproducibility(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	vars := func() []reward.Var {
		return []reward.Var{
			&reward.TimeAverage{VarName: "len", F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 50},
		}
	}
	r1, err := Run(Spec{Model: m, Until: 50, Reps: 40, Seed: 42, Vars: vars(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Spec{Model: m, Until: 50, Reps: 40, Seed: 42, Vars: vars(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Trajectories are per-replication deterministic; aggregation order
	// across workers differs, so allow float-associativity noise only.
	if d := math.Abs(r1.MustGet("len").Mean - r2.MustGet("len").Mean); d > 1e-9 {
		t.Fatalf("results differ across worker counts by %v: %v vs %v",
			d, r1.MustGet("len").Mean, r2.MustGet("len").Mean)
	}
	r3, err := Run(Spec{Model: m, Until: 50, Reps: 40, Seed: 43, Vars: vars(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MustGet("len").Mean == r3.MustGet("len").Mean {
		t.Fatal("different seeds gave identical results")
	}
}

func TestValidateCatchesUndeclaredRead(t *testing.T) {
	m := san.NewModel("bad")
	a := m.Place("a", 1)
	b := m.Place("b", 1)
	m.AddActivity(san.ActivityDef{
		Name: "sneaky", Kind: san.Timed,
		Dist: func(*san.State) rng.Dist { return rng.Expo(1) },
		// reads b but declares only a
		Enabled: func(s *san.State) bool { return s.Get(a) > 0 && s.Get(b) > 0 },
		Reads:   []*san.Place{a},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(a, 0) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "undeclared place") {
			t.Fatalf("recover = %v, want undeclared-place panic", r)
		}
	}()
	eng := NewEngine(m, true)
	_ = eng.RunOnce(1, rng.New(1), nil, 0)
}

func TestSpecValidation(t *testing.T) {
	m, _ := buildMM1K(t, 1, 2, 3)
	if _, err := Run(Spec{Model: nil, Until: 1, Reps: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Run(Spec{Model: m, Until: 1, Reps: 0}); err == nil {
		t.Fatal("zero reps accepted")
	}
	if _, err := Run(Spec{Model: m, Until: 0, Reps: 1}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	unfinalized := san.NewModel("u")
	if _, err := Run(Spec{Model: unfinalized, Until: 1, Reps: 1}); err == nil {
		t.Fatal("unfinalized model accepted")
	}
}

func TestMaxFiringsGuard(t *testing.T) {
	m, _ := buildMM1K(t, 1000, 1000, 5)
	_, err := Run(Spec{Model: m, Until: 1000, Reps: 1, Seed: 1, MaxFirings: 100})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v, want exceeded-firings error", err)
	}
}

func TestInitHookAndInstantaneous(t *testing.T) {
	// Init hook seeds tokens; an instantaneous activity immediately moves
	// them before any timed firing; AtTime(0+) should see the stable state.
	m := san.NewModel("init")
	in := m.Place("in", 0)
	out := m.Place("out", 0)
	m.SetInit(func(ctx *san.Context) { ctx.State.Set(in, 3) })
	m.AddActivity(san.ActivityDef{
		Name: "mv", Kind: san.Instant,
		Enabled: func(s *san.State) bool { return s.Get(in) > 0 },
		Reads:   []*san.Place{in},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(in, -1)
			ctx.State.Add(out, 1)
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "noop", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(0.0001) },
		Enabled: func(s *san.State) bool { return s.Get(out) < 100 },
		Reads:   []*san.Place{out},
		Cases:   []san.Case{{Prob: 1}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	vars := []reward.Var{
		&reward.AtTime{VarName: "out0", F: func(s *san.State) float64 { return float64(s.Get(out)) }, T: 0},
	}
	res, err := Run(Spec{Model: m, Until: 1, Reps: 2, Seed: 9, Vars: vars, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MustGet("out0").Mean; got != 3 {
		t.Fatalf("out at t=0 = %v, want 3 (init + stabilization before observers)", got)
	}
}

func TestEstimateStringAndSorted(t *testing.T) {
	m, q := buildMM1K(t, 1, 2, 3)
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "b", F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 1},
		&reward.Count{VarName: "a", Match: func(*san.Activity, int) bool { return true }, From: 0, To: 1},
	}
	res, err := Run(Spec{Model: m, Until: 1, Reps: 4, Seed: 6, Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Sorted(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Sorted() = %v", got)
	}
	if s := res.MustGet("a").String(); !strings.Contains(s, "a = ") {
		t.Fatalf("String() = %q", s)
	}
	if _, ok := res.Get("zzz"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
}
