package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// buildPanicky builds a model whose tick activity panics with probability p
// per firing, drawn from the replication's own stream — so the set of
// failing replications is a deterministic function of the root seed.
func buildPanicky(t *testing.T, p float64) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("panicky")
	n := m.Place("n", 0)
	m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(5) },
		Enabled: func(s *san.State) bool { return s.Get(n) < 1_000_000 },
		Reads:   []*san.Place{n},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			if ctx.Rand.Float64() < p {
				panic("injected model fault")
			}
			ctx.State.Add(n, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, n
}

// buildWedge builds a model that runs normally until t=0.1 and then enters a
// self-enabling zero-delay instantaneous loop — the pathological case a
// watchdog or firing budget must catch, because simulation time never
// advances again.
func buildWedge(t *testing.T) *san.Model {
	t.Helper()
	m := san.NewModel("wedge")
	trap := m.Place("trap", 0)
	m.AddActivity(san.ActivityDef{
		Name: "trigger", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Deterministic{V: 0.1} },
		Enabled: func(s *san.State) bool { return s.Get(trap) == 0 },
		Reads:   []*san.Place{trap},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(trap, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "spin", Kind: san.Instant,
		Enabled: func(s *san.State) bool { return s.Get(trap) == 1 },
		Reads:   []*san.Place{trap},
		Cases:   []san.Case{{Prob: 1}}, // no state change: enabled forever
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func panickySpec(m *san.Model, n *san.Place, reps int) Spec {
	return Spec{
		Model: m, Until: 2, Reps: reps, Seed: 7,
		Vars: []reward.Var{
			&reward.AtTime{VarName: "n", F: func(s *san.State) float64 { return float64(s.Get(n)) }, T: 2},
		},
		MaxFailureFrac: 1, // tolerate everything; the test inspects the ledger
	}
}

func TestPanicIsolation(t *testing.T) {
	m, n := buildPanicky(t, 0.05)
	spec := panickySpec(m, n, 200)
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed == 0 {
		t.Fatal("no replication failed; p=0.05 over ~10 firings should fail some of 200 reps")
	}
	if res.Completed == 0 {
		t.Fatal("every replication failed; expected survivors")
	}
	if res.Completed+res.Failed != res.Reps || res.Skipped != 0 {
		t.Fatalf("accounting: completed=%d failed=%d skipped=%d reps=%d",
			res.Completed, res.Failed, res.Skipped, res.Reps)
	}
	if res.Attempted() != res.Reps {
		t.Fatalf("Attempted() = %d, want %d", res.Attempted(), res.Reps)
	}
	if got := int(res.MustGet("n").N); got != res.Completed {
		t.Fatalf("estimate aggregates %d observations, want the %d survivors", got, res.Completed)
	}
	for i, f := range res.Failures {
		if f.Kind != FailurePanic {
			t.Fatalf("failure %d kind = %v, want panic", i, f.Kind)
		}
		if f.PanicValue != "injected model fault" {
			t.Fatalf("failure %d panic value = %v", i, f.PanicValue)
		}
		if !strings.Contains(f.Stack, "goroutine") {
			t.Fatalf("failure %d has no captured stack", i)
		}
		if f.Seed != spec.Seed {
			t.Fatalf("failure %d seed = %d, want root seed %d", i, f.Seed, spec.Seed)
		}
		if i > 0 && res.Failures[i-1].Rep >= f.Rep {
			t.Fatalf("failures not sorted by rep: %d then %d", res.Failures[i-1].Rep, f.Rep)
		}
		if !strings.Contains(f.Error(), "panic") {
			t.Fatalf("failure %d Error() = %q", i, f.Error())
		}
	}
}

func TestPanicFailuresDeterministic(t *testing.T) {
	m, n := buildPanicky(t, 0.05)
	failedReps := func(workers int) []int {
		spec := panickySpec(m, n, 120)
		spec.Workers = workers
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		reps := make([]int, len(res.Failures))
		for i, f := range res.Failures {
			reps[i] = f.Rep
		}
		return reps
	}
	serial := failedReps(1)
	parallel := failedReps(4)
	if len(serial) == 0 {
		t.Fatal("no failures to compare")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("failing replication set depends on scheduling: %v vs %v", serial, parallel)
	}
}

func TestReplayReproducesPanic(t *testing.T) {
	m, n := buildPanicky(t, 0.05)
	spec := panickySpec(m, n, 120)
	res, err := Run(spec)
	if err != nil || res.Failed == 0 || res.Completed == 0 {
		t.Fatalf("setup: err=%v failed=%d completed=%d", err, res.Failed, res.Completed)
	}
	f := res.Failures[0]
	got := Replay(spec, f.Rep)
	if got == nil {
		t.Fatalf("Replay(%d) completed cleanly, want the recorded panic", f.Rep)
	}
	if got.Kind != FailurePanic || got.PanicValue != f.PanicValue || got.Rep != f.Rep {
		t.Fatalf("Replay(%d) = %+v, want panic %v", f.Rep, got, f.PanicValue)
	}
	// A replication that completed in the study must also complete in replay.
	failed := make(map[int]bool, res.Failed)
	for _, fe := range res.Failures {
		failed[fe.Rep] = true
	}
	for rep := 0; rep < spec.Reps; rep++ {
		if !failed[rep] {
			if ferr := Replay(spec, rep); ferr != nil {
				t.Fatalf("Replay(%d) failed (%v) though the study completed it", rep, ferr)
			}
			break
		}
	}
}

func TestFailureThreshold(t *testing.T) {
	m, n := buildPanicky(t, 0.05)
	spec := panickySpec(m, n, 120)
	spec.MaxFailureFrac = -1 // zero tolerance
	res, err := Run(spec)
	if err == nil {
		t.Fatal("zero-tolerance run with injected panics returned no error")
	}
	if !strings.Contains(err.Error(), "replications failed") {
		t.Fatalf("err = %v", err)
	}
	var re *ReplicationError
	if !errors.As(err, &re) {
		t.Fatalf("aggregate error does not wrap a ReplicationError: %v", err)
	}
	if res == nil || res.Completed == 0 {
		t.Fatal("partial results were discarded on threshold breach")
	}
}

// buildTimedWedge builds a model whose only activity fires with a
// vanishingly small deterministic delay: simulation time crawls forward in
// 1e-12 steps, so the run effectively never reaches its end time. Unlike
// buildWedge there is no instantaneous chain, so neither the livelock
// detector nor san.Stabilize intervenes — only the wall-clock watchdog or
// the firing budget can stop it.
func buildTimedWedge(t *testing.T) *san.Model {
	t.Helper()
	m := san.NewModel("timed-wedge")
	n := m.Place("n", 0)
	m.AddActivity(san.ActivityDef{
		Name: "creep", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Deterministic{V: 1e-12} },
		Enabled: func(s *san.State) bool { return true },
		Reads:   []*san.Place{n},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Set(n, 1-ctx.State.Get(n))
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWatchdogDeadline(t *testing.T) {
	m := buildTimedWedge(t)
	res, err := Run(Spec{
		Model: m, Until: 10, Reps: 2, Seed: 1, Workers: 1,
		MaxFirings:     1 << 60, // budget out of the way: only the watchdog can stop it
		RepDeadline:    50 * time.Millisecond,
		MaxFailureFrac: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 2 || res.Completed != 0 {
		t.Fatalf("completed=%d failed=%d, want the watchdog to fail both reps", res.Completed, res.Failed)
	}
	for _, f := range res.Failures {
		if f.Kind != FailureDeadline {
			t.Fatalf("kind = %v, want deadline", f.Kind)
		}
		if !errors.Is(f.Err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", f.Err)
		}
	}
}

func TestFiringBudgetDegradesToFailure(t *testing.T) {
	m := buildWedge(t)
	res, err := Run(Spec{
		Model: m, Until: 10, Reps: 3, Seed: 1,
		MaxFirings:     10_000,
		MaxFailureFrac: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 3 {
		t.Fatalf("failed=%d, want all 3 reps to trip the budget", res.Failed)
	}
	for _, f := range res.Failures {
		if f.Kind != FailureBudget {
			t.Fatalf("kind = %v, want firing-budget", f.Kind)
		}
		var be *BudgetError
		if !errors.As(f.Err, &be) || be.Limit != 10_000 {
			t.Fatalf("err = %v, want BudgetError with limit 10000", f.Err)
		}
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const reps = 50
	var fired atomic.Int64
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "len", F: func(s *san.State) float64 {
			// Cancel partway through the study, from inside a replication.
			if fired.Add(1) == 2000 {
				cancel()
			}
			return float64(s.Get(q))
		}, From: 0, To: 50},
	}
	res, err := RunContext(ctx, Spec{Model: m, Until: 50, Reps: reps, Seed: 3, Vars: vars, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation discarded the partial results")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed before cancellation; raise the trigger threshold")
	}
	if res.Skipped == 0 {
		t.Fatal("nothing was skipped; cancellation came too late to observe")
	}
	if res.Completed+res.Failed+res.Skipped != reps {
		t.Fatalf("accounting: completed=%d failed=%d skipped=%d reps=%d",
			res.Completed, res.Failed, res.Skipped, reps)
	}
	if got := int(res.MustGet("len").N); got != res.Completed {
		t.Fatalf("estimate has %d observations, want the %d completed reps", got, res.Completed)
	}
}

func TestCancelledBeforeStart(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "len", F: func(s *san.State) float64 { return float64(s.Get(q)) }, From: 0, To: 50},
	}
	res, err := RunContext(ctx, Spec{Model: m, Until: 50, Reps: 10, Seed: 3, Vars: vars})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Completed != 0 || res.Skipped != 10 {
		t.Fatalf("completed=%d skipped=%d, want 0/10", res.Completed, res.Skipped)
	}
}

func TestFailureKindStrings(t *testing.T) {
	want := map[FailureKind]string{
		FailureModel:     "model-error",
		FailurePanic:     "panic",
		FailureDeadline:  "deadline",
		FailureBudget:    "firing-budget",
		FailureInvariant: "invariant",
		FailureLivelock:  "livelock",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if s := FailureKind(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown kind String() = %q", s)
	}
}
