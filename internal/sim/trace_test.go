package sim

import (
	"strings"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
)

func TestTraceRecordsCompletions(t *testing.T) {
	m, _ := buildMM1K(t, 2, 3, 5)
	tr := &Trace{}
	eng := NewEngine(m, false)
	if err := eng.RunOnce(10, rng.New(1), []reward.Observer{tr}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != eng.Firings() {
		t.Fatalf("trace total %d != engine firings %d", tr.Total(), eng.Firings())
	}
	events := tr.Events()
	if int64(len(events)) != tr.Total() {
		t.Fatalf("retained %d of %d with default cap", len(events), tr.Total())
	}
	last := -1.0
	for _, ev := range events {
		if ev.Time < last {
			t.Fatal("trace not chronological")
		}
		last = ev.Time
		if ev.Activity != "arrive" && ev.Activity != "serve" {
			t.Fatalf("unexpected activity %q", ev.Activity)
		}
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "arrive") {
		t.Fatalf("dump missing events:\n%s", sb.String())
	}
}

func TestTraceRingEviction(t *testing.T) {
	m, _ := buildMM1K(t, 5, 5, 3)
	tr := &Trace{Cap: 8}
	eng := NewEngine(m, false)
	if err := eng.RunOnce(50, rng.New(2), []reward.Observer{tr}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Total() <= 8 {
		t.Skip("run too short to exercise eviction")
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("retained %d, want 8", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("evicting ring lost chronological order")
		}
	}
}

func TestTraceReusedAcrossRuns(t *testing.T) {
	m, _ := buildMM1K(t, 2, 3, 5)
	tr := &Trace{}
	eng := NewEngine(m, false)
	if err := eng.RunOnce(5, rng.New(3), []reward.Observer{tr}, 0); err != nil {
		t.Fatal(err)
	}
	first := tr.Total()
	if err := eng.RunOnce(5, rng.New(3), []reward.Observer{tr}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != first {
		t.Fatalf("Init did not reset the trace: %d vs %d", tr.Total(), first)
	}
}
