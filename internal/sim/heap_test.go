package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is a container/heap reference implementation with the same strict
// time-< ordering the engine's typed heap uses. The typed heap must
// reproduce its pop sequence exactly — including the resolution of
// equal-time ties, which deterministic-distribution models create and whose
// order is part of the engine's trajectory determinism.
type refHeap []event

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// TestEventHeapMatchesContainerHeap drives both heaps through long random
// push/pop sequences, with a coarse time grid to force many ties, and
// requires identical events (time AND identity) at every pop.
func TestEventHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var typed eventHeap
		var ref refHeap
		gen := uint64(0)
		for op := 0; op < 400; op++ {
			if len(ref) == 0 || rng.Intn(3) != 0 {
				gen++
				// Few distinct times => frequent ties; gen disambiguates
				// identity so a tie broken differently is caught.
				ev := event{time: float64(rng.Intn(8)), gen: gen}
				typed.push(ev)
				heap.Push(&ref, ev)
			} else {
				got := typed.pop()
				want := heap.Pop(&ref).(event)
				if got != want {
					t.Fatalf("trial %d op %d: pop = {t=%v gen=%d}, want {t=%v gen=%d}",
						trial, op, got.time, got.gen, want.time, want.gen)
				}
			}
			if len(typed) != len(ref) {
				t.Fatalf("trial %d op %d: lengths diverged %d vs %d", trial, op, len(typed), len(ref))
			}
		}
		// Drain: the full remaining order must agree too.
		for len(ref) > 0 {
			got := typed.pop()
			want := heap.Pop(&ref).(event)
			if got != want {
				t.Fatalf("trial %d drain: pop = {t=%v gen=%d}, want {t=%v gen=%d}",
					trial, got.time, got.gen, want.time, want.gen)
			}
		}
		if len(typed) != 0 {
			t.Fatalf("trial %d: typed heap not empty after drain", trial)
		}
	}
}

// TestEventHeapSortedOutput is the classic heap property: pushing random
// times and draining yields a non-decreasing sequence.
func TestEventHeapSortedOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	for i := 0; i < 1000; i++ {
		h.push(event{time: rng.Float64()})
	}
	prev := -1.0
	for len(h) > 0 {
		ev := h.pop()
		if ev.time < prev {
			t.Fatalf("pop went backwards: %v after %v", ev.time, prev)
		}
		prev = ev.time
	}
}
