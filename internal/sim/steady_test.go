package sim

import (
	"math"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
)

func TestSteadyStateMM1K(t *testing.T) {
	const lambda, mu, k = 2.0, 3.0, 5
	m, q := buildMM1K(t, lambda, mu, k)
	est, err := RunSteady(SteadySpec{
		Model:       m,
		F:           func(s *san.State) float64 { return float64(s.Get(q)) },
		Warmup:      50,
		BatchLength: 200,
		Batches:     40,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic stationary mean queue length.
	rho := lambda / mu
	norm, want := 0.0, 0.0
	for n := 0; n <= k; n++ {
		p := math.Pow(rho, float64(n))
		norm += p
		want += float64(n) * p
	}
	want /= norm
	if math.Abs(est.Mean-want) > 3*est.HalfWidth95+0.02 {
		t.Fatalf("steady-state mean %v ± %v, analytic %v", est.Mean, est.HalfWidth95, want)
	}
	if math.Abs(est.LagOneCorr) > 0.5 {
		t.Fatalf("batch means highly correlated: lag1 = %v", est.LagOneCorr)
	}
	if est.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	const lambda, mu = 0.5, 2.0
	m, up := buildTwoState(t, lambda, mu)
	est, err := RunSteady(SteadySpec{
		Model: m,
		F: func(s *san.State) float64 {
			if s.Get(up) == 0 {
				return 1
			}
			return 0
		},
		Warmup:      20,
		BatchLength: 100,
		Batches:     40,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := lambda / (lambda + mu)
	if math.Abs(est.Mean-want) > 3*est.HalfWidth95+0.01 {
		t.Fatalf("steady unavailability %v ± %v, analytic %v", est.Mean, est.HalfWidth95, want)
	}
}

func TestRunSteadyValidation(t *testing.T) {
	m, q := buildMM1K(t, 1, 2, 3)
	f := func(s *san.State) float64 { return float64(s.Get(q)) }
	cases := []SteadySpec{
		{Model: nil, F: f, BatchLength: 1},
		{Model: m, F: nil, BatchLength: 1},
		{Model: m, F: f, BatchLength: 0},
		{Model: m, F: f, BatchLength: 1, Batches: 1},
		{Model: m, F: f, BatchLength: 1, Warmup: -1},
	}
	for i, spec := range cases {
		if _, err := RunSteady(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestBatchObserverWindowing(t *testing.T) {
	m, q := buildMM1K(t, 1, 2, 3)
	s := m.NewState()
	s.Set(q, 2)
	obs := &batchObserver{
		f:      func(st *san.State) float64 { return float64(st.Get(q)) },
		warmup: 10, length: 5, max: 3,
	}
	// Interval spanning warmup boundary and two batch windows.
	obs.Advance(s, 8, 17) // contributes [10,15): 2*5=10, [15,17): 2*2=4
	obs.Advance(s, 17, 100)
	if len(obs.batches) != 3 {
		t.Fatalf("batches = %v", obs.batches)
	}
	if obs.batches[0] != 10 || obs.batches[1] != 10 || obs.batches[2] != 10 {
		t.Fatalf("batch integrals = %v", obs.batches)
	}
}

func TestLag1(t *testing.T) {
	if got := lag1([]float64{1, 1, 1, 1}); got != 0 {
		t.Fatalf("constant series lag1 = %v", got)
	}
	if got := lag1([]float64{1, 2}); got != 0 {
		t.Fatalf("short series lag1 = %v", got)
	}
	// Perfectly alternating series has lag-1 near -1.
	if got := lag1([]float64{1, -1, 1, -1, 1, -1, 1, -1}); got > -0.7 {
		t.Fatalf("alternating series lag1 = %v", got)
	}
}

func TestQuantilesInRun(t *testing.T) {
	m, up := buildTwoState(t, 0.5, 2)
	vars := []reward.Var{
		&reward.TimeAverage{VarName: "unavail", F: func(s *san.State) float64 {
			if s.Get(up) == 0 {
				return 1
			}
			return 0
		}, From: 0, To: 10},
	}
	res, err := Run(Spec{
		Model: m, Until: 10, Reps: 500, Seed: 4, Vars: vars,
		Quantiles: []float64{0, 0.5, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	est := res.MustGet("unavail")
	if len(est.Quantiles) != 3 {
		t.Fatalf("quantiles = %v", est.Quantiles)
	}
	if est.Quantiles[0] != est.Min || est.Quantiles[2] != est.Max {
		t.Fatalf("extreme quantiles %v don't match min/max %v/%v", est.Quantiles, est.Min, est.Max)
	}
	if est.Quantiles[1] < est.Min || est.Quantiles[1] > est.Max {
		t.Fatalf("median %v outside range", est.Quantiles[1])
	}
	// Without the option, no quantiles are produced.
	res2, err := Run(Spec{Model: m, Until: 10, Reps: 50, Seed: 4, Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MustGet("unavail").Quantiles != nil {
		t.Fatal("quantiles produced without being requested")
	}
}

func TestQuantilesDeterministicAcrossWorkers(t *testing.T) {
	m, q := buildMM1K(t, 2, 3, 5)
	vars := func() []reward.Var {
		return []reward.Var{
			&reward.AtTime{VarName: "len", F: func(s *san.State) float64 { return float64(s.Get(q)) }, T: 20},
		}
	}
	r1, err := Run(Spec{Model: m, Until: 20, Reps: 200, Seed: 9, Vars: vars(), Workers: 1, Quantiles: []float64{0.5, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(Spec{Model: m, Until: 20, Reps: 200, Seed: 9, Vars: vars(), Workers: 4, Quantiles: []float64{0.5, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	q1, q4 := r1.MustGet("len").Quantiles, r4.MustGet("len").Quantiles
	if q1[0] != q4[0] || q1[1] != q4[1] {
		t.Fatalf("quantiles differ across worker counts: %v vs %v", q1, q4)
	}
	_ = rng.New(0) // keep rng imported for symmetry with other tests
}
