package mc

import (
	"math"
	"testing"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// buildStageDecay builds a chain up -> degraded -> down (absorbing) with
// rates l1, l2; closed forms: MTTA = 1/l1 + 1/l2, expected time in
// "degraded" = 1/l2.
func buildStageDecay(t *testing.T, l1, l2 float64) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("stages")
	stage := m.Place("stage", 0) // 0 up, 1 degraded, 2 down
	m.AddActivity(san.ActivityDef{
		Name: "degrade", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(l1) },
		Enabled: func(s *san.State) bool { return s.Get(stage) == 0 },
		Reads:   []*san.Place{stage},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(stage, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "die", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(l2) },
		Enabled: func(s *san.State) bool { return s.Get(stage) == 1 },
		Reads:   []*san.Place{stage},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(stage, 2) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, stage
}

func TestAbsorptionStageDecay(t *testing.T) {
	const l1, l2 = 0.5, 2.0
	m, _ := buildStageDecay(t, l1, l2)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Absorption(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbsorbingStates != 1 {
		t.Fatalf("absorbing states = %d", res.AbsorbingStates)
	}
	if math.Abs(res.Prob-1) > 1e-9 {
		t.Fatalf("absorption probability = %v", res.Prob)
	}
	want := 1/l1 + 1/l2
	if math.Abs(res.MeanTime-want) > 1e-8 {
		t.Fatalf("MTTA = %v, want %v", res.MeanTime, want)
	}
}

func TestExpectedRewardToAbsorption(t *testing.T) {
	const l1, l2 = 0.5, 2.0
	m, stage := buildStageDecay(t, l1, l2)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected total time spent degraded before absorption = 1/l2.
	got, err := c.ExpectedRewardToAbsorption(func(s *san.State) float64 {
		if s.Get(stage) == 1 {
			return 1
		}
		return 0
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1/l2) > 1e-8 {
		t.Fatalf("time degraded = %v, want %v", got, 1/l2)
	}
}

func TestAbsorptionNoAbsorbingStates(t *testing.T) {
	m, _ := buildTwoState(t, 1, 2) // irreducible: no absorbing state
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Absorption(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AbsorbingStates != 0 || !math.IsInf(res.MeanTime, 1) || res.Prob != 0 {
		t.Fatalf("res = %+v", res)
	}
	if _, err := c.ExpectedRewardToAbsorption(func(*san.State) float64 { return 1 }, 0, 0); err == nil {
		t.Fatal("expected divergence error")
	}
}

func TestAbsorptionMatchesSimulatedMTTA(t *testing.T) {
	// A branching decay: from up, die directly (p small) or degrade.
	m := san.NewModel("branchdecay")
	stage := m.Place("stage", 0)
	m.AddActivity(san.ActivityDef{
		Name: "leave", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(stage) == 0 },
		Reads:   []*san.Place{stage},
		Cases: []san.Case{
			{Prob: 0.3, Effect: func(ctx *san.Context) { ctx.State.Set(stage, 2) }}, // die
			{Prob: 0.7, Effect: func(ctx *san.Context) { ctx.State.Set(stage, 1) }}, // degrade
		},
	})
	m.AddActivity(san.ActivityDef{
		Name: "die", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(4) },
		Enabled: func(s *san.State) bool { return s.Get(stage) == 1 },
		Reads:   []*san.Place{stage},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(stage, 2) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Absorption(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// MTTA = 1 (mean in up) + 0.7 * 1/4.
	want := 1 + 0.7*0.25
	if math.Abs(res.MeanTime-want) > 1e-8 {
		t.Fatalf("MTTA = %v, want %v", res.MeanTime, want)
	}
}
