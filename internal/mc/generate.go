// Package mc converts all-exponential SAN models into continuous-time
// Markov chains and solves them numerically — the analytic path of the
// Möbius tool ("Möbius can solve SANs analytically by converting them into
// equivalent continuous time Markov chains"). The paper's full model was
// simulated; this package cross-validates the simulator exactly, the
// methodological check a validation study needs.
//
// Requirements on the model: every timed activity's distribution must be
// rng.Exponential (possibly marking-dependent), and no gate effect or
// initialization hook may draw from ctx.Rand directly (the generator
// passes a nil random stream). Effects that need randomness through the
// enumerable choice methods (san.Context.Choose / ChooseWeighted /
// Permute) remain solvable: every alternative becomes a probabilistic
// branch. Instantaneous races and cases are likewise enumerated, not
// sampled.
//
// Generation runs on a pool of workers over a sharded byte-arena
// interner keyed by the compact marking encoding; a sequential renumber
// pass then assigns canonical breadth-first state numbers, so the chain —
// state order, transition rates, and every solver result — is bit-for-bit
// identical at any worker count. The generator matrix is stored in CSR
// form (row-pointer + column/rate arrays) together with its transpose,
// which the uniformization solver consumes cache-linearly.
//
// Models with exchangeable components can supply an Options.Canon
// symmetry canonicalizer: every explored marking is replaced by its orbit
// representative before interning, so the BFS explores the lumped
// quotient chain directly — the full chain is never materialized and the
// state space shrinks by up to the symmetry group's order. By ordinary
// lumpability the quotient produces the same transient and accumulated
// measures as the full chain for any orbit-invariant reward.
package mc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// ErrNotMarkovian is returned when a timed activity has a non-exponential
// distribution.
var ErrNotMarkovian = errors.New("mc: model has a non-exponential timed activity")

// ErrRandomGate is returned when a gate effect or init hook draws random
// numbers during generation.
var ErrRandomGate = errors.New("mc: gate effect used the random stream; model is not numerically solvable")

// CTMC is a finite continuous-time Markov chain generated from a SAN,
// together with the stable markings backing each state. The generator is
// held twice in CSR form: by source row (rowPtr/cols/rates, columns
// ascending — the order Gauss–Seidel wants) and transposed by target row
// (tRowPtr/tCols/tRates, sources ascending — the gather order the
// uniformized matvec wants, race-free under row-parallel execution).
type CTMC struct {
	model   *san.Model
	n       int
	nPlaces int
	// markings holds all state marking vectors flattened, nPlaces each.
	markings []san.Marking

	rowPtr []int32
	cols   []int32
	rates  []float64

	tRowPtr []int32
	tCols   []int32
	tRates  []float64

	exit     []float64
	initDist map[int]float64

	// workers bounds solver parallelism, from Options.Workers.
	workers int
}

// Canonicalizer maps a marking vector to the representative of its orbit
// under a symmetry group of the model, rewriting the vector in place. When
// one is supplied, the generator interns only orbit representatives, so
// the BFS explores the lumped quotient chain directly and no full chain is
// ever materialized.
//
// Correctness requires ordinary lumpability: the model's dynamics must be
// equivariant under the group (permuting a state permutes its successors
// and preserves rates), and every reward evaluated on the resulting chain
// must be constant on each orbit. Canonicalize must be idempotent and
// permutation-invariant: two markings in the same orbit map to the same
// representative. It is called concurrently from the generation workers
// and must be safe for concurrent use.
type Canonicalizer interface {
	Canonicalize(m []san.Marking)
}

// Options bounds state-space generation.
type Options struct {
	// MaxStates aborts generation beyond this many states (0 = 1<<20).
	MaxStates int
	// Workers is the number of parallel generation workers and the row
	// parallelism of large solves (0 = GOMAXPROCS). Results are
	// bit-identical at every worker count.
	Workers int
	// Canon, when non-nil, lumps the chain by symmetry: every explored
	// marking is replaced by its orbit representative before interning,
	// so the generator builds the quotient chain. See Canonicalizer.
	Canon Canonicalizer
}

// pair is one aggregated outgoing transition during expansion, keyed by
// provisional state id.
type pair struct {
	to   uint32
	rate float64
}

// ---- sharded interner ---------------------------------------------------

// shardBits fixes the shard count; the low key-hash bits pick the shard so
// concurrent interns mostly hit different locks.
const shardBits = 6

const numShards = 1 << shardBits

type internEntry struct {
	hash uint64
	id   uint32 // local id + 1; 0 marks an empty slot
}

// internShard is 1/numShards of the state index: an open-addressing table
// over keys stored back to back in a byte arena, plus the marking vectors
// of the shard's states. Provisional state ids pack (local id, shard).
type internShard struct {
	mu       sync.Mutex
	entries  []internEntry
	mask     uint64
	count    int
	arena    []byte
	offs     []uint32 // offs[i]..offs[i+1] is local id i's key; len = count+1
	markings []san.Marking
}

func (s *internShard) keyOf(local uint32) []byte {
	return s.arena[s.offs[local]:s.offs[local+1]]
}

func (s *internShard) grow() {
	old := s.entries
	s.entries = make([]internEntry, 2*len(old))
	s.mask = uint64(len(s.entries) - 1)
	for _, e := range old {
		if e.id == 0 {
			continue
		}
		i := e.hash & s.mask
		for s.entries[i].id != 0 {
			i = (i + 1) & s.mask
		}
		s.entries[i] = e
	}
}

func hashKey(key []byte) uint64 {
	// FNV-1a; keys are short (one byte per place in the common case).
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// ---- generator ----------------------------------------------------------

// generator carries the shared state of one Generate run.
type generator struct {
	model     *san.Model
	nPlaces   int
	timed     []*san.Activity
	maxStates int
	canon     Canonicalizer

	shards [numShards]*internShard

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []uint32
	pending int // interned but not yet fully expanded states
	failed  error
	done    bool

	total int // interned states, guarded by mu? no — see intern
}

// intern returns the provisional id for key (hash-sharded), interning the
// marking vector on first sight. It enforces MaxStates at intern time, so
// the state count can never exceed the cap, and names the offending
// marking in the error.
func (g *generator) intern(key []byte, m []san.Marking) (pid uint32, fresh bool, err error) {
	h := hashKey(key)
	sh := g.shards[h&(numShards-1)]
	sh.mu.Lock()
	i := h & sh.mask
	for {
		e := sh.entries[i]
		if e.id == 0 {
			break
		}
		if e.hash == h && string(sh.keyOf(e.id-1)) == string(key) {
			sh.mu.Unlock()
			return (e.id-1)<<shardBits | uint32(h&(numShards-1)), false, nil
		}
		i = (i + 1) & sh.mask
	}
	local := uint32(sh.count)
	sh.entries[i] = internEntry{hash: h, id: local + 1}
	sh.count++
	sh.arena = append(sh.arena, key...)
	sh.offs = append(sh.offs, uint32(len(sh.arena)))
	sh.markings = append(sh.markings, m...)
	if 4*sh.count >= 3*len(sh.entries) {
		sh.grow()
	}
	sh.mu.Unlock()

	g.mu.Lock()
	g.total++
	total := g.total
	over := total > g.maxStates
	g.mu.Unlock()
	if over {
		return 0, false, fmt.Errorf("mc: model %q: state space exceeds MaxStates=%d "+
			"(%d states interned and the frontier is still growing; offending marking %v); "+
			"raise Options.MaxStates or shrink the topology",
			g.model.Name(), g.maxStates, total, append([]san.Marking(nil), m...))
	}
	return local<<shardBits | uint32(h&(numShards-1)), true, nil
}

// loadMarkings copies state pid's marking vector into dst. The shard lock
// guards the slice header against concurrent arena growth.
func (g *generator) loadMarkings(pid uint32, dst []san.Marking) {
	sh := g.shards[pid&(numShards-1)]
	local := int(pid >> shardBits)
	sh.mu.Lock()
	copy(dst, sh.markings[local*g.nPlaces:(local+1)*g.nPlaces])
	sh.mu.Unlock()
}

// fail records the first error and wakes every worker.
func (g *generator) fail(err error) {
	g.mu.Lock()
	if g.failed == nil {
		g.failed = err
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// workerRow is one expanded state: its provisional id and aggregated
// outgoing transitions in deterministic first-encounter order.
type workerRow struct {
	pid   uint32
	pairs []pair
}

// genWorker is the per-worker scratch; everything is reused across states
// so steady-state expansion does not allocate beyond the result rows.
type genWorker struct {
	g         *generator
	scratch   *san.State
	res       *san.Resolver
	keyBuf    []byte
	canonBuf  []san.Marking
	agg       map[uint32]int32
	pairs     []pair
	newIDs    []uint32
	rateScale float64
	visitFn   func(*san.State, float64) error
	rows      []workerRow
}

func newGenWorker(g *generator) *genWorker {
	w := &genWorker{
		g:       g,
		scratch: g.model.NewState(),
		res:     san.NewResolver(g.model),
		agg:     make(map[uint32]int32, 64),
	}
	w.visitFn = w.addSuccessor
	return w
}

// canonical returns the marking vector to intern for st: the raw vector
// when no canonicalizer is configured, or a scratch copy rewritten to the
// orbit representative. The copy leaves the resolver's state untouched so
// sibling branches keep resolving from the real marking.
func (w *genWorker) canonical(st *san.State) []san.Marking {
	if w.g.canon == nil {
		return st.Markings()
	}
	w.canonBuf = append(w.canonBuf[:0], st.Markings()...)
	w.g.canon.Canonicalize(w.canonBuf)
	return w.canonBuf
}

// addSuccessor is the resolver visit hook: intern the stable marking
// (canonicalized when lumping) and aggregate the transition rate, in
// first-encounter order so per-row float summation is identical at every
// worker count. Distinct successors in the same orbit collapse onto one
// quotient state here, which is exactly the lumped chain's aggregate rate.
func (w *genWorker) addSuccessor(st *san.State, p float64) error {
	rate := w.rateScale * p
	if rate <= 0 {
		return nil
	}
	ms := w.canonical(st)
	w.keyBuf = san.AppendMarkingKey(w.keyBuf[:0], ms)
	pid, fresh, err := w.g.intern(w.keyBuf, ms)
	if err != nil {
		return err
	}
	if fresh {
		w.newIDs = append(w.newIDs, pid)
	}
	if j, ok := w.agg[pid]; ok {
		w.pairs[j].rate += rate
	} else {
		w.agg[pid] = int32(len(w.pairs))
		w.pairs = append(w.pairs, pair{to: pid, rate: rate})
	}
	return nil
}

// expand enumerates every timed firing from state pid.
func (w *genWorker) expand(pid uint32) error {
	g := w.g
	g.loadMarkings(pid, w.scratch.Markings())
	w.scratch.ResetDirty()
	clear(w.agg)
	w.pairs = w.pairs[:0]
	w.newIDs = w.newIDs[:0]
	for _, a := range g.timed {
		if !a.Enabled(w.scratch) {
			continue
		}
		dist := a.Dist(w.scratch)
		expo, ok := dist.(rng.Exponential)
		if !ok {
			return fmt.Errorf("%w: activity %q has %v", ErrNotMarkovian, a.Name(), dist)
		}
		weights := a.CaseWeightsIn(w.scratch)
		totalW := 0.0
		for _, cw := range weights {
			totalW += cw
		}
		if totalW <= 0 {
			return fmt.Errorf("mc: activity %q has non-positive case weights", a.Name())
		}
		for ci := range a.Cases() {
			if weights[ci] == 0 {
				continue
			}
			w.rateScale = expo.R * (weights[ci] / totalW)
			if err := w.res.Resolve(w.scratch, a, ci, nil, w.visitFn); err != nil {
				return err
			}
		}
	}
	w.rows = append(w.rows, workerRow{pid: pid, pairs: append([]pair(nil), w.pairs...)})
	return nil
}

// run is one worker's frontier loop: pop, expand, push the freshly
// interned successors. Panics (a nil-Rand draw in a gate, a negative
// marking) are reported as ErrRandomGate, matching the sequential
// generator's contract.
func (w *genWorker) run() {
	g := w.g
	defer func() {
		if r := recover(); r != nil {
			g.fail(fmt.Errorf("%w (%v)", ErrRandomGate, r))
		}
	}()
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.done && g.failed == nil {
			g.cond.Wait()
		}
		if g.done || g.failed != nil {
			g.mu.Unlock()
			return
		}
		pid := g.queue[len(g.queue)-1]
		g.queue = g.queue[:len(g.queue)-1]
		g.mu.Unlock()

		err := w.expand(pid)

		g.mu.Lock()
		if err != nil {
			if g.failed == nil {
				g.failed = err
			}
			g.cond.Broadcast()
			g.mu.Unlock()
			return
		}
		g.queue = append(g.queue, w.newIDs...)
		g.pending += len(w.newIDs) - 1
		if g.pending == 0 {
			g.done = true
		}
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// Generate explores the reachable stable state space of the model and
// builds the CTMC. State numbering, transition rates, and the initial
// distribution are reproducible: independent of Options.Workers and of
// scheduling, bit for bit.
func Generate(model *san.Model, opts Options) (c *CTMC, err error) {
	if !model.Finalized() {
		return nil, errors.New("mc: model not finalized")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w (%v)", ErrRandomGate, r)
		}
	}()

	g := &generator{
		model:     model,
		nPlaces:   len(model.Places()),
		maxStates: maxStates,
		canon:     opts.Canon,
	}
	g.cond = sync.NewCond(&g.mu)
	for i := range g.shards {
		g.shards[i] = &internShard{
			entries: make([]internEntry, 64),
			mask:    63,
			offs:    []uint32{0},
		}
	}
	for _, a := range model.Activities() {
		if a.Kind() == san.Timed {
			g.timed = append(g.timed, a)
		}
	}

	// Initial stable distribution: run the init hook and enumerate every
	// instantaneous (and in-effect choice) resolution, sequentially, so
	// the renumber seeds are deterministic.
	seedWorker := newGenWorker(g)
	var initPairs []pair
	initAgg := make(map[uint32]int)
	initState := model.NewState()
	err = seedWorker.res.Resolve(initState, nil, 0, model.Init(), func(st *san.State, prob float64) error {
		ms := seedWorker.canonical(st)
		seedWorker.keyBuf = san.AppendMarkingKey(seedWorker.keyBuf[:0], ms)
		pid, fresh, ierr := g.intern(seedWorker.keyBuf, ms)
		if ierr != nil {
			return ierr
		}
		if fresh {
			g.queue = append(g.queue, pid)
			g.pending++
		}
		if j, ok := initAgg[pid]; ok {
			initPairs[j].rate += prob
		} else {
			initAgg[pid] = len(initPairs)
			initPairs = append(initPairs, pair{to: pid, rate: prob})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if g.pending == 0 {
		g.done = true
	}

	// Frontier expansion across the worker pool.
	ws := make([]*genWorker, workers)
	ws[0] = seedWorker
	for i := 1; i < workers; i++ {
		ws[i] = newGenWorker(g)
	}
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *genWorker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()
	if g.failed != nil {
		return nil, g.failed
	}

	return g.assemble(ws, initPairs)
}

// assemble renumbers the provisional state ids canonically and builds the
// final CSR chain. The breadth-first order over the deterministic
// expansion rows depends only on the model, never on which worker interned
// a state first, which is what makes parallel generation reproducible.
func (g *generator) assemble(ws []*genWorker, initPairs []pair) (*CTMC, error) {
	n := g.total
	// Rows by provisional id.
	rowsBy := make([][][]pair, numShards)
	for s := range rowsBy {
		rowsBy[s] = make([][]pair, g.shards[s].count)
	}
	placed := 0
	for _, w := range ws {
		for _, r := range w.rows {
			rowsBy[r.pid&(numShards-1)][r.pid>>shardBits] = r.pairs
			placed++
		}
	}
	if placed != n {
		return nil, fmt.Errorf("mc: internal error: %d states interned but %d expanded", n, placed)
	}

	// Canonical renumber: BFS from the initial states in enumeration
	// order, successors in first-encounter expansion order.
	finalID := make([][]int32, numShards)
	visited := make([][]uint64, numShards)
	for s := range finalID {
		finalID[s] = make([]int32, g.shards[s].count)
		visited[s] = make([]uint64, (g.shards[s].count+63)/64)
	}
	mark := func(pid uint32) bool { // returns true when newly visited
		s, l := pid&(numShards-1), pid>>shardBits
		if visited[s][l/64]&(1<<(l%64)) != 0 {
			return false
		}
		visited[s][l/64] |= 1 << (l % 64)
		return true
	}
	order := make([]uint32, 0, n)
	push := func(pid uint32) {
		if mark(pid) {
			finalID[pid&(numShards-1)][pid>>shardBits] = int32(len(order))
			order = append(order, pid)
		}
	}
	for _, ip := range initPairs {
		push(ip.to)
	}
	for head := 0; head < len(order); head++ {
		for _, pr := range rowsBy[order[head]&(numShards-1)][order[head]>>shardBits] {
			push(pr.to)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("mc: internal error: %d of %d states unreachable after renumber", n-len(order), n)
	}

	// Final flat arrays in canonical order.
	c := &CTMC{
		model:    g.model,
		n:        n,
		nPlaces:  g.nPlaces,
		markings: make([]san.Marking, n*g.nPlaces),
		rowPtr:   make([]int32, n+1),
		exit:     make([]float64, n),
		initDist: make(map[int]float64, len(initPairs)),
		workers:  len(ws),
	}
	fidOf := func(pid uint32) int32 { return finalID[pid&(numShards-1)][pid>>shardBits] }
	nnz := 0
	for fid, pid := range order {
		sh := g.shards[pid&(numShards-1)]
		local := int(pid >> shardBits)
		copy(c.markings[fid*g.nPlaces:], sh.markings[local*g.nPlaces:(local+1)*g.nPlaces])
		for _, pr := range rowsBy[pid&(numShards-1)][local] {
			if pr.to != pid { // self-loops cancel in the generator
				nnz++
			}
		}
		c.rowPtr[fid+1] = int32(nnz)
	}
	c.cols = make([]int32, nnz)
	c.rates = make([]float64, nnz)
	for fid, pid := range order {
		lo := c.rowPtr[fid]
		k := lo
		for _, pr := range rowsBy[pid&(numShards-1)][pid>>shardBits] {
			if pr.to == pid {
				continue
			}
			c.cols[k] = fidOf(pr.to)
			c.rates[k] = pr.rate
			k++
		}
		// Insertion sort by column: rows are short and nearly sorted.
		for i := lo + 1; i < k; i++ {
			cc, rr := c.cols[i], c.rates[i]
			j := i
			for j > lo && c.cols[j-1] > cc {
				c.cols[j], c.rates[j] = c.cols[j-1], c.rates[j-1]
				j--
			}
			c.cols[j], c.rates[j] = cc, rr
		}
		e := 0.0
		for i := lo; i < k; i++ {
			e += c.rates[i]
		}
		c.exit[fid] = e
	}

	// Transpose (incoming transitions, sources ascending).
	c.tRowPtr = make([]int32, n+1)
	for _, col := range c.cols {
		c.tRowPtr[col+1]++
	}
	for i := 0; i < n; i++ {
		c.tRowPtr[i+1] += c.tRowPtr[i]
	}
	c.tCols = make([]int32, nnz)
	c.tRates = make([]float64, nnz)
	cursor := make([]int32, n)
	copy(cursor, c.tRowPtr[:n])
	for i := 0; i < n; i++ {
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			col := c.cols[k]
			c.tCols[cursor[col]] = int32(i)
			c.tRates[cursor[col]] = c.rates[k]
			cursor[col]++
		}
	}

	for _, ip := range initPairs {
		c.initDist[int(fidOf(ip.to))] += ip.rate
	}
	return c, nil
}

// NumStates returns the number of stable states.
func (c *CTMC) NumStates() int { return c.n }

// NumTransitions returns the number of distinct transitions.
func (c *CTMC) NumTransitions() int { return len(c.cols) }

// StateMarking returns the marking vector of state id (aliased; do not
// modify).
func (c *CTMC) StateMarking(id int) []san.Marking {
	return c.markings[id*c.nPlaces : (id+1)*c.nPlaces : (id+1)*c.nPlaces]
}

// evalState evaluates f on the marking of state id using a scratch state.
func (c *CTMC) evalState(f func(*san.State) float64, scratch *san.State, id int) float64 {
	copy(scratch.Markings(), c.StateMarking(id))
	scratch.ResetDirty()
	return f(scratch)
}

// RewardVector evaluates f over every state.
func (c *CTMC) RewardVector(f func(*san.State) float64) []float64 {
	scratch := c.model.NewState()
	r := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		r[i] = c.evalState(f, scratch, i)
	}
	return r
}

// InitialDistribution returns a dense copy of the initial distribution.
func (c *CTMC) InitialDistribution() []float64 {
	p := make([]float64, c.n)
	for id, prob := range c.initDist {
		p[id] = prob
	}
	return p
}
