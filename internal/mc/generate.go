// Package mc converts all-exponential SAN models into continuous-time
// Markov chains and solves them numerically — the analytic path of the
// Möbius tool ("Möbius can solve SANs analytically by converting them into
// equivalent continuous time Markov chains"). The paper's full model was
// simulated instead; this package exists to cross-validate the simulator on
// reduced models, exactly the methodological check a validation study needs.
//
// Requirements on the model: every timed activity's distribution must be
// rng.Exponential (possibly marking-dependent), and no gate effect or
// initialization hook may draw random numbers (the generator passes a nil
// random stream; instantaneous races and cases are enumerated
// probabilistically instead of sampled).
package mc

import (
	"errors"
	"fmt"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// ErrNotMarkovian is returned when a timed activity has a non-exponential
// distribution.
var ErrNotMarkovian = errors.New("mc: model has a non-exponential timed activity")

// ErrRandomGate is returned when a gate effect or init hook draws random
// numbers during generation.
var ErrRandomGate = errors.New("mc: gate effect used the random stream; model is not numerically solvable")

// transition is one outgoing CTMC transition.
type transition struct {
	to   int
	rate float64
}

// CTMC is a finite continuous-time Markov chain generated from a SAN,
// together with the stable markings backing each state.
type CTMC struct {
	model    *san.Model
	states   [][]san.Marking
	rows     [][]transition
	initDist map[int]float64
	exit     []float64
}

// Options bounds state-space generation.
type Options struct {
	// MaxStates aborts generation beyond this many states (0 = 1<<20).
	MaxStates int
}

// Generate explores the reachable stable state space of the model.
func Generate(model *san.Model, opts Options) (c *CTMC, err error) {
	if !model.Finalized() {
		return nil, errors.New("mc: model not finalized")
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w (%v)", ErrRandomGate, r)
		}
	}()

	c = &CTMC{model: model, initDist: make(map[int]float64)}
	index := make(map[string]int)

	intern := func(m []san.Marking, key string) int {
		if id, ok := index[key]; ok {
			return id
		}
		id := len(c.states)
		index[key] = id
		c.states = append(c.states, append([]san.Marking(nil), m...))
		c.rows = append(c.rows, nil)
		return id
	}

	// Initial stable distribution: run the init hook (deterministic), then
	// enumerate instantaneous resolutions.
	initState := model.NewState()
	if hook := model.Init(); hook != nil {
		hook(&san.Context{State: initState})
	}
	initSucs, err := san.EnumerateStable(model, initState)
	if err != nil {
		return nil, err
	}
	frontier := make([]int, 0, len(initSucs))
	for _, suc := range initSucs {
		id := intern(suc.M, suc.Key)
		c.initDist[id] += suc.Prob
		frontier = append(frontier, id)
	}

	scratch := model.NewState()
	work := model.NewState()
	explored := make(map[int]bool)
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if explored[id] {
			continue
		}
		explored[id] = true
		if len(c.states) > maxStates {
			return nil, fmt.Errorf("mc: state space exceeds %d states", maxStates)
		}
		copy(scratch.Markings(), c.states[id])
		scratch.ResetDirty()
		agg := make(map[int]float64)
		for _, a := range model.Activities() {
			if a.Kind() != san.Timed || !a.Enabled(scratch) {
				continue
			}
			dist := a.Dist(scratch)
			expo, ok := dist.(rng.Exponential)
			if !ok {
				return nil, fmt.Errorf("%w: activity %q has %v", ErrNotMarkovian, a.Name(), dist)
			}
			weights := a.CaseWeightsIn(scratch)
			totalW := 0.0
			for _, w := range weights {
				totalW += w
			}
			if totalW <= 0 {
				return nil, fmt.Errorf("mc: activity %q has non-positive case weights", a.Name())
			}
			for ci := range a.Cases() {
				if weights[ci] == 0 {
					continue
				}
				copy(work.Markings(), c.states[id])
				work.ResetDirty()
				a.Fire(&san.Context{State: work}, ci)
				sucs, err := san.EnumerateStable(model, work)
				if err != nil {
					return nil, err
				}
				for _, suc := range sucs {
					rate := expo.R * (weights[ci] / totalW) * suc.Prob
					if rate <= 0 {
						continue
					}
					to := intern(suc.M, suc.Key)
					agg[to] += rate
					if !explored[to] {
						frontier = append(frontier, to)
					}
				}
			}
		}
		row := make([]transition, 0, len(agg))
		exit := 0.0
		for to, rate := range agg {
			if to == id {
				continue // self-loops cancel in the generator
			}
			row = append(row, transition{to: to, rate: rate})
			exit += rate
		}
		c.rows[id] = row
		for len(c.exit) <= id {
			c.exit = append(c.exit, 0)
		}
		c.exit[id] = exit
	}
	// exit may be shorter than states if the last explored ids were dense;
	// normalize length.
	for len(c.exit) < len(c.states) {
		c.exit = append(c.exit, 0)
	}
	return c, nil
}

// NumStates returns the number of stable states.
func (c *CTMC) NumStates() int { return len(c.states) }

// NumTransitions returns the number of distinct transitions.
func (c *CTMC) NumTransitions() int {
	n := 0
	for _, row := range c.rows {
		n += len(row)
	}
	return n
}

// StateMarking returns the marking vector of state id (aliased; do not
// modify).
func (c *CTMC) StateMarking(id int) []san.Marking { return c.states[id] }

// evalState evaluates f on the marking of state id using a scratch state.
func (c *CTMC) evalState(f func(*san.State) float64, scratch *san.State, id int) float64 {
	copy(scratch.Markings(), c.states[id])
	scratch.ResetDirty()
	return f(scratch)
}

// RewardVector evaluates f over every state.
func (c *CTMC) RewardVector(f func(*san.State) float64) []float64 {
	scratch := c.model.NewState()
	r := make([]float64, len(c.states))
	for i := range c.states {
		r[i] = c.evalState(f, scratch, i)
	}
	return r
}

// InitialDistribution returns a dense copy of the initial distribution.
func (c *CTMC) InitialDistribution() []float64 {
	p := make([]float64, len(c.states))
	for id, prob := range c.initDist {
		p[id] = prob
	}
	return p
}
