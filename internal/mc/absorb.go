package mc

import (
	"errors"
	"fmt"
	"math"

	"ituaval/internal/san"
)

// AbsorptionResult summarizes the absorbing behaviour of the chain from
// its initial distribution.
type AbsorptionResult struct {
	// Prob is the total probability of eventual absorption (1 for chains
	// whose recurrent states are all absorbing).
	Prob float64
	// MeanTime is the expected time to absorption, conditional on starting
	// in the transient class (infinite if some recurrent non-absorbing
	// class is reachable; +Inf is returned in that case).
	MeanTime float64
	// AbsorbingStates is the number of absorbing states found.
	AbsorbingStates int
}

// Absorption computes the probability of and mean time to absorption,
// treating every state with no outgoing transitions as absorbing. The
// linear systems are solved by Gauss–Seidel sweeps over the CSR rows
// (columns ascending, so updated values propagate within a sweep); tol and
// maxIter bound the iteration (defaults 1e-12 and 1e6).
func (c *CTMC) Absorption(tol float64, maxIter int) (AbsorptionResult, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 1_000_000
	}
	n := c.n
	if n == 0 {
		return AbsorptionResult{}, errors.New("mc: empty chain")
	}
	absorbing := make([]bool, n)
	count := 0
	for i := 0; i < n; i++ {
		if c.exit[i] == 0 {
			absorbing[i] = true
			count++
		}
	}
	if count == 0 {
		return AbsorptionResult{AbsorbingStates: 0, Prob: 0, MeanTime: math.Inf(1)}, nil
	}

	// h[i] = P(absorbed | start i): h = 1 on absorbing states;
	// h[i] = Σ_j (q_ij / E_i) h[j] elsewhere. Gauss–Seidel iteration.
	h := make([]float64, n)
	for i := range h {
		if absorbing[i] {
			h[i] = 1
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		diff := 0.0
		for i := 0; i < n; i++ {
			if absorbing[i] {
				continue
			}
			sum := 0.0
			for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
				sum += c.rates[k] * h[c.cols[k]]
			}
			v := sum / c.exit[i]
			if d := math.Abs(v - h[i]); d > diff {
				diff = d
			}
			h[i] = v
		}
		if diff < tol {
			break
		}
		if iter == maxIter-1 {
			return AbsorptionResult{}, fmt.Errorf("mc: absorption probability did not converge in %d iterations", maxIter)
		}
	}

	// t[i] = E[time to absorption | start i] (finite only if h[i] = 1):
	// t[i] = 1/E_i + Σ_j (q_ij / E_i) t[j].
	t := make([]float64, n)
	finite := true
	for i := range h {
		if !absorbing[i] && h[i] < 1-1e-9 {
			finite = false
			break
		}
	}
	if finite {
		for iter := 0; iter < maxIter; iter++ {
			diff := 0.0
			for i := 0; i < n; i++ {
				if absorbing[i] {
					continue
				}
				sum := 1.0
				for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
					sum += c.rates[k] * t[c.cols[k]]
				}
				v := sum / c.exit[i]
				if d := math.Abs(v - t[i]); d > diff {
					diff = d
				}
				t[i] = v
			}
			// Relative tolerance keeps long-time chains convergent.
			maxT := 0.0
			for _, v := range t {
				if v > maxT {
					maxT = v
				}
			}
			if diff < tol*(1+maxT) {
				break
			}
			if iter == maxIter-1 {
				return AbsorptionResult{}, fmt.Errorf("mc: mean absorption time did not converge in %d iterations", maxIter)
			}
		}
	}

	res := AbsorptionResult{AbsorbingStates: count}
	for id, p0 := range c.initDist {
		res.Prob += p0 * h[id]
		if finite {
			res.MeanTime += p0 * t[id]
		}
	}
	if !finite {
		res.MeanTime = math.Inf(1)
	}
	return res, nil
}

// ExpectedRewardToAbsorption returns E[∫₀^T_abs f(X_u) du] for an absorbing
// chain, by the same Gauss–Seidel scheme with per-state reward f. It
// returns an error if absorption is not almost sure.
func (c *CTMC) ExpectedRewardToAbsorption(f func(*san.State) float64, tol float64, maxIter int) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 1_000_000
	}
	abs, err := c.Absorption(tol, maxIter)
	if err != nil {
		return 0, err
	}
	if abs.Prob < 1-1e-9 {
		return 0, fmt.Errorf("mc: absorption probability %v < 1; accumulated reward diverges", abs.Prob)
	}
	r := c.RewardVector(f)
	n := c.n
	t := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		diff := 0.0
		for i := 0; i < n; i++ {
			if c.exit[i] == 0 {
				continue
			}
			sum := r[i]
			for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
				sum += c.rates[k] * t[c.cols[k]]
			}
			v := sum / c.exit[i]
			if d := math.Abs(v - t[i]); d > diff {
				diff = d
			}
			t[i] = v
		}
		maxT := 0.0
		for _, v := range t {
			if math.Abs(v) > maxT {
				maxT = math.Abs(v)
			}
		}
		if diff < tol*(1+maxT) {
			break
		}
		if iter == maxIter-1 {
			return 0, fmt.Errorf("mc: reward to absorption did not converge in %d iterations", maxIter)
		}
	}
	out := 0.0
	for id, p0 := range c.initDist {
		out += p0 * t[id]
	}
	return out, nil
}
