package mc

// Benchmarks of the analytic path on a chain big enough to be
// representative (a three-stage tandem Jackson network with finite
// buffers: (K+1)^3 = 10648 states, ~40k transitions). The three lanes
// cover the pipeline: BenchmarkMCGenerate10k is state-space generation
// alone (states/sec), BenchmarkMCUniformStep10k is one uniformized
// matvec (the solver inner loop), and BenchmarkMCTransient10k is the
// end-to-end analytic solve (generation + transient solution), the
// number tracked in BENCH_PR5.json.

import (
	"testing"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// benchTandemK sizes the tandem network: (benchTandemK+1)^3 states.
const benchTandemK = 21

// benchTransientT is the end-to-end solve horizon. With Λ ≈ 5 the
// uniformization sum nominally spans ~15000 steps, the long-horizon
// regime the paper's interval measures live in — where Fox–Glynn left
// truncation and steady-state detection earn their keep.
const benchTransientT = 3000.0

// buildTandem builds a three-stage tandem queue with per-stage buffer
// bound K: external arrivals to stage 1, service moving jobs to the next
// stage, departures from stage 3. All-exponential and deterministic, so
// it is exactly the workload mc.Generate is for.
func buildTandem(k int) *san.Model {
	m := san.NewModel("tandem")
	q1 := m.Place("q1", 0)
	q2 := m.Place("q2", 0)
	q3 := m.Place("q3", 0)
	bound := san.Marking(k)
	move := func(name string, rate float64, from, to *san.Place) {
		m.AddActivity(san.ActivityDef{
			Name: name, Kind: san.Timed,
			Dist: func(*san.State) rng.Dist { return rng.Expo(rate) },
			Enabled: func(s *san.State) bool {
				if from != nil && s.Get(from) == 0 {
					return false
				}
				return to == nil || s.Get(to) < bound
			},
			Reads: readsOf(from, to),
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				if from != nil {
					ctx.State.Add(from, -1)
				}
				if to != nil {
					ctx.State.Add(to, 1)
				}
			}}},
		})
	}
	move("arrive", 1.0, nil, q1)
	move("s1", 1.2, q1, q2)
	move("s2", 1.3, q2, q3)
	move("s3", 1.4, q3, nil)
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

func readsOf(ps ...*san.Place) []*san.Place {
	var out []*san.Place
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

func BenchmarkMCGenerate10k(b *testing.B) {
	model := buildTandem(benchTandemK)
	b.ReportAllocs()
	var states int
	for i := 0; i < b.N; i++ {
		c, err := Generate(model, Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = c.NumStates()
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
}

func BenchmarkMCUniformStep10k(b *testing.B) {
	model := buildTandem(benchTandemK)
	c, err := Generate(model, Options{})
	if err != nil {
		b.Fatal(err)
	}
	op, _ := c.uniOperator(nil)
	defer op.stop()
	v := c.InitialDistribution()
	out := make([]float64, len(v))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.apply(v, out)
		v, out = out, v
	}
}

func BenchmarkMCTransient10k(b *testing.B) {
	model := buildTandem(benchTandemK)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := Generate(model, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Transient(benchTransientT); err != nil {
			b.Fatal(err)
		}
	}
}
