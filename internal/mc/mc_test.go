package mc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

func buildMM1K(t *testing.T, lambda, mu float64, k int) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("mm1k")
	q := m.Place("q", 0)
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(lambda) },
		Enabled: func(s *san.State) bool { return s.Int(q) < k },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, 1) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "serve", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(mu) },
		Enabled: func(s *san.State) bool { return s.Get(q) > 0 },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, -1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, q
}

func TestGenerateMM1K(t *testing.T) {
	m, _ := buildMM1K(t, 2, 3, 5)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 6 {
		t.Fatalf("states = %d, want 6", c.NumStates())
	}
	// Birth-death: 5 up + 5 down transitions.
	if c.NumTransitions() != 10 {
		t.Fatalf("transitions = %d, want 10", c.NumTransitions())
	}
}

func TestSteadyStateMM1K(t *testing.T) {
	const lambda, mu, k = 2.0, 3.0, 5
	m, q := buildMM1K(t, lambda, mu, k)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SteadyStateReward(func(s *san.State) float64 { return float64(s.Get(q)) }, 1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic mean queue length.
	rho := lambda / mu
	norm, mean := 0.0, 0.0
	for n := 0; n <= k; n++ {
		p := math.Pow(rho, float64(n))
		norm += p
		mean += float64(n) * p
	}
	mean /= norm
	if math.Abs(got-mean) > 1e-8 {
		t.Fatalf("steady-state length %v, analytic %v", got, mean)
	}
}

func buildTwoState(t *testing.T, lambda, mu float64) (*san.Model, *san.Place) {
	t.Helper()
	m := san.NewModel("twostate")
	up := m.Place("up", 1)
	m.AddActivity(san.ActivityDef{
		Name: "fail", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(lambda) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 1 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 0) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "repair", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(mu) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 0 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, up
}

func TestTransientTwoState(t *testing.T) {
	const lambda, mu = 0.5, 2.0
	m, up := buildTwoState(t, lambda, mu)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := lambda + mu
	for _, tt := range []float64{0, 0.1, 0.5, 1, 3, 10} {
		want := mu/s + lambda/s*math.Exp(-s*tt) // P(up at tt)
		got, err := c.TransientReward(tt, func(st *san.State) float64 { return float64(st.Get(up)) })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("P(up at %v) = %v, analytic %v", tt, got, want)
		}
	}
}

func TestIntervalAverageTwoState(t *testing.T) {
	const lambda, mu, T = 0.5, 2.0, 8.0
	m, up := buildTwoState(t, lambda, mu)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := lambda + mu
	// Average unavailability over [0,T], starting up.
	want := lambda / s * (1 - (1-math.Exp(-s*T))/(s*T))
	got, err := c.IntervalAverageReward(T, func(st *san.State) float64 {
		if st.Get(up) == 0 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("interval unavailability %v, analytic %v", got, want)
	}
}

func TestFirstPassageTwoState(t *testing.T) {
	const lambda, mu, T = 0.3, 5.0, 4.0
	m, up := buildTwoState(t, lambda, mu)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.FirstPassageProb(T, func(st *san.State) bool { return st.Get(up) == 0 })
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-lambda*T)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("first passage %v, analytic %v", got, want)
	}
}

// buildBranching exercises cases, instantaneous races, and marking-dependent
// rates: jobs arrive (rate 2) and branch 30/70 into two queues via an
// instantaneous dispatcher race; each queue serves at a rate that grows with
// its length.
func buildBranching(t *testing.T) (*san.Model, *san.Place, *san.Place) {
	t.Helper()
	m := san.NewModel("branching")
	pending := m.Place("pending", 0)
	q1 := m.Place("q1", 0)
	q2 := m.Place("q2", 0)
	const cap = 4
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(2) },
		Enabled: func(s *san.State) bool { return s.Int(q1)+s.Int(q2)+s.Int(pending) < cap },
		Reads:   []*san.Place{q1, q2, pending},
		Cases: []san.Case{
			{Prob: 0.3, Effect: func(ctx *san.Context) { ctx.State.Add(pending, 1) }},
			{Prob: 0.7, Effect: func(ctx *san.Context) { ctx.State.Add(q2, 1) }},
		},
	})
	m.AddActivity(san.ActivityDef{
		Name: "dispatch", Kind: san.Instant,
		Enabled: func(s *san.State) bool { return s.Get(pending) > 0 },
		Reads:   []*san.Place{pending},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(pending, -1)
			ctx.State.Add(q1, 1)
		}}},
	})
	for i, q := range []*san.Place{q1, q2} {
		q := q
		name := []string{"serve1", "serve2"}[i]
		m.AddActivity(san.ActivityDef{
			Name: name, Kind: san.Timed,
			Dist: func(s *san.State) rng.Dist {
				return rng.Expo(1.5 * float64(s.Get(q))) // marking-dependent
			},
			Enabled: func(s *san.State) bool { return s.Get(q) > 0 },
			Reads:   []*san.Place{q},
			Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, -1) }}},
		})
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, q1, q2
}

func TestSimulatorMatchesNumericalSolution(t *testing.T) {
	// The central methodological cross-check: the discrete-event simulator
	// and the numerical CTMC solver must agree on a model that uses cases,
	// instantaneous activities, and marking-dependent exponential rates.
	m, q1, q2 := buildBranching(t)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const T = 6.0
	total := func(s *san.State) float64 { return float64(s.Get(q1) + s.Get(q2)) }
	wantAvg, err := c.IntervalAverageReward(T, total)
	if err != nil {
		t.Fatal(err)
	}
	wantAt, err := c.TransientReward(T, total)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Spec{
		Model: m, Until: T, Reps: 6000, Seed: 77, Validate: true,
		Vars: []reward.Var{
			&reward.TimeAverage{VarName: "avg", F: total, From: 0, To: T},
			&reward.AtTime{VarName: "at", F: total, T: T},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	avg := res.MustGet("avg")
	if math.Abs(avg.Mean-wantAvg) > 3*avg.HalfWidth95 {
		t.Fatalf("sim avg %v ± %v vs numeric %v", avg.Mean, avg.HalfWidth95, wantAvg)
	}
	at := res.MustGet("at")
	if math.Abs(at.Mean-wantAt) > 3*at.HalfWidth95 {
		t.Fatalf("sim at-T %v ± %v vs numeric %v", at.Mean, at.HalfWidth95, wantAt)
	}
}

func TestGenerateRejectsNonExponential(t *testing.T) {
	m := san.NewModel("det")
	p := m.Place("p", 1)
	m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Deterministic{V: 1} },
		Enabled: func(s *san.State) bool { return s.Get(p) > 0 },
		Reads:   []*san.Place{p},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(p, 0) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(m, Options{}); !errors.Is(err, ErrNotMarkovian) {
		t.Fatalf("err = %v, want ErrNotMarkovian", err)
	}
}

func TestGenerateRejectsRandomGate(t *testing.T) {
	m := san.NewModel("rand")
	p := m.Place("p", 1)
	m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(p) > 0 },
		Reads:   []*san.Place{p},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			if ctx.Rand.Bernoulli(0.5) { // illegal in analytic mode
				ctx.State.Set(p, 0)
			}
		}}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(m, Options{}); !errors.Is(err, ErrRandomGate) {
		t.Fatalf("err = %v, want ErrRandomGate", err)
	}
}

func TestGenerateMaxStates(t *testing.T) {
	m, _ := buildMM1K(t, 1, 1, 50)
	_, err := Generate(m, Options{MaxStates: 10})
	if err == nil {
		t.Fatal("expected state-space bound error")
	}
	// The bound is enforced at intern time — the 11th distinct marking
	// trips it — and the error names the model, the configured cap, the
	// state count reached, and the offending marking, so oversized
	// configurations are diagnosable and -max-states can be sized without
	// trial and error.
	msg := err.Error()
	if !strings.Contains(msg, "MaxStates=10") {
		t.Fatalf("error does not name the configured cap: %q", msg)
	}
	if !strings.Contains(msg, "11 states interned") {
		t.Fatalf("error does not report the offending state count: %q", msg)
	}
	if !strings.Contains(msg, `model "mm1k"`) {
		t.Fatalf("error does not name the model topology: %q", msg)
	}
	if !strings.Contains(msg, "offending marking") || !strings.Contains(msg, "[10]") {
		t.Fatalf("error does not carry the offending marking: %q", msg)
	}
}

func TestGenerateRequiresFinalized(t *testing.T) {
	if _, err := Generate(san.NewModel("x"), Options{}); err == nil {
		t.Fatal("unfinalized model accepted")
	}
}

func TestAbsorbingChainSteadyState(t *testing.T) {
	// One-way decay: up -> down, no repair. Steady state is all mass down.
	m := san.NewModel("decay")
	up := m.Place("up", 1)
	m.AddActivity(san.ActivityDef{
		Name: "fail", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(3) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 1 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 0) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SteadyStateReward(func(s *san.State) float64 { return float64(s.Get(up)) }, 1e-13, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-10 {
		t.Fatalf("steady-state P(up) = %v, want 0", got)
	}
}

func TestInitialDistributionFromInstantRace(t *testing.T) {
	// Init leaves a token that an instantaneous race claims two ways with
	// weights 1:3, giving initial distribution {0.25, 0.75}.
	m := san.NewModel("initrace")
	token := m.Place("token", 1)
	which := m.Place("which", 0)
	sink := m.Place("sink", 0)
	for i, w := range []float64{1, 3} {
		i := i
		m.AddActivity(san.ActivityDef{
			Name: []string{"left", "right"}[i], Kind: san.Instant, Weight: w,
			Enabled: func(s *san.State) bool { return s.Get(token) > 0 },
			Reads:   []*san.Place{token},
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				ctx.State.Add(token, -1)
				ctx.State.Set(which, san.Marking(i+1))
			}}},
		})
	}
	// A do-nothing timed activity so the chain is non-trivial.
	m.AddActivity(san.ActivityDef{
		Name: "noop", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(sink) == 0 },
		Reads:   []*san.Place{sink},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(sink, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.TransientReward(0, func(s *san.State) float64 {
		if s.Get(which) == 2 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("P(which=2 at 0) = %v, want 0.75", got)
	}
}
