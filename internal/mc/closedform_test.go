package mc

import (
	"errors"
	"math"
	"testing"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// buildPureBirth counts arrivals at rate r up to cap k: at time t the
// count is Poisson(rt) truncated at k, a closed form with no steady
// state, so the transient solve cannot lean on steady-state detection —
// it exercises the Fox–Glynn window (including left truncation, since
// Λt is large) end to end.
func buildPureBirth(r float64, k int) *san.Model {
	m := san.NewModel("purebirth")
	q := m.Place("q", 0)
	m.AddActivity(san.ActivityDef{
		Name: "arrive", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(r) },
		Enabled: func(s *san.State) bool { return s.Int(q) < k },
		Reads:   []*san.Place{q},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(q, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// poissonPMF computes P(N=n) for N ~ Poisson(mu) via the stable
// log-space form.
func poissonPMF(mu float64, n int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	return math.Exp(-mu + float64(n)*math.Log(mu) - lg)
}

// TestTransientPureBirthClosedForm checks the full transient pipeline at
// a large Λt (~1530 uniformized steps) against the exact Poisson law of
// the counting process. The cap sits ~7.7 standard deviations above the
// mean, so truncation at the cap contributes less than the solver's own
// 1e-12 mass tolerance.
func TestTransientPureBirthClosedForm(t *testing.T) {
	const r, tt = 1.0, 1500.0
	const k = 1800
	c, err := Generate(buildPureBirth(r, k), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != k+1 {
		t.Fatalf("states = %d, want %d", c.NumStates(), k+1)
	}
	dist, err := c.Transient(tt)
	if err != nil {
		t.Fatal(err)
	}
	// State index == count: BFS from the empty marking numbers them in
	// arrival order.
	worst := 0.0
	for n := 0; n < k; n++ {
		if d := math.Abs(dist[n] - poissonPMF(r*tt, n)); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Fatalf("max |transient - Poisson pmf| = %g, want <= 1e-9", worst)
	}
}

// TestTransientLargeHorizonMatchesStationary solves an M/M/1/K transient
// at Λt ≈ 25500 — far past mixing — and checks the mean queue length
// against the geometric stationary closed form. Without steady-state
// detection this is a 25500-step iteration; with it the loop exits after
// mixing, and the answer must still be the stationary one.
func TestTransientLargeHorizonMatchesStationary(t *testing.T) {
	const lambda, mu, k = 2.0, 3.0, 30
	m, q := buildMM1K(t, lambda, mu, k)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.TransientReward(5000, func(s *san.State) float64 { return float64(s.Get(q)) })
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm, mean := 0.0, 0.0
	for n := 0; n <= k; n++ {
		p := math.Pow(rho, float64(n))
		norm += p
		mean += float64(n) * p
	}
	mean /= norm
	if math.Abs(got-mean) > 1e-8 {
		t.Fatalf("transient mean at large t = %v, stationary closed form %v", got, mean)
	}
}

// TestPoissonTruncationError: when Λt is so large that the Poisson
// window cannot reach mass 1-eps within its growth cap, the solver must
// fail loudly with ErrPoissonTruncation — through every entry point —
// instead of silently truncating like the old implementation did.
func TestPoissonTruncationError(t *testing.T) {
	if _, err := newPoissonWindow(1e14, 1e-12); !errors.Is(err, ErrPoissonTruncation) {
		t.Fatalf("newPoissonWindow(1e14): err = %v, want ErrPoissonTruncation", err)
	}
	m, up := buildTwoState(t, 0.5, 2.0)
	c, err := Generate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const huge = 1e14
	if _, err := c.Transient(huge); !errors.Is(err, ErrPoissonTruncation) {
		t.Fatalf("Transient: err = %v, want ErrPoissonTruncation", err)
	}
	if _, err := c.TransientReward(huge, func(*san.State) float64 { return 1 }); !errors.Is(err, ErrPoissonTruncation) {
		t.Fatalf("TransientReward: err = %v, want ErrPoissonTruncation", err)
	}
	if _, err := c.FirstPassageProb(huge, func(s *san.State) bool { return s.Get(up) == 0 }); !errors.Is(err, ErrPoissonTruncation) {
		t.Fatalf("FirstPassageProb: err = %v, want ErrPoissonTruncation", err)
	}
	if _, err := c.IntervalAverageReward(huge, func(*san.State) float64 { return 1 }); !errors.Is(err, ErrPoissonTruncation) {
		t.Fatalf("IntervalAverageReward: err = %v, want ErrPoissonTruncation", err)
	}
}
