package mc

import (
	"fmt"
	"math"
	mrand "math/rand"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

// buildRandomMigration builds a random small Markovian SAN from the
// given source of randomness: tokens migrate among a few bounded places
// via arrival, departure, and transfer activities with random rates, and
// some activities branch across two destinations with a random case
// split. Everything is exponential and effect-deterministic, so the
// model is exactly generateable, yet the topology, rates, and case
// probabilities differ per seed.
func buildRandomMigration(r *mrand.Rand) *san.Model {
	const nPlaces, cap = 3, 2
	m := san.NewModel("randmig")
	places := make([]*san.Place, nPlaces)
	for i := range places {
		places[i] = m.Place(fmt.Sprintf("p%d", i), san.Marking(r.Intn(2)))
	}
	total := func(s *san.State) int {
		n := 0
		for _, p := range places {
			n += s.Int(p)
		}
		return n
	}
	rate := func() float64 { return 0.3 + 2.7*r.Float64() }
	// Arrivals into a random place, possibly branching across two.
	for a := 0; a < 2; a++ {
		d1 := places[r.Intn(nPlaces)]
		d2 := places[r.Intn(nPlaces)]
		pr := 0.2 + 0.6*r.Float64()
		rt := rate()
		m.AddActivity(san.ActivityDef{
			Name: fmt.Sprintf("arrive%d", a), Kind: san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(rt) },
			Enabled: func(s *san.State) bool { return total(s) < nPlaces*cap },
			Reads:   places,
			Cases: []san.Case{
				{Prob: pr, Effect: func(ctx *san.Context) { ctx.State.Add(d1, 1) }},
				{Prob: 1 - pr, Effect: func(ctx *san.Context) { ctx.State.Add(d2, 1) }},
			},
		})
	}
	// Transfers between random distinct places and departures, with
	// marking-dependent service speed-up half the time.
	for a := 0; a < 3; a++ {
		src := places[r.Intn(nPlaces)]
		dst := places[(r.Intn(nPlaces-1)+1)%nPlaces]
		rt := rate()
		scaled := r.Intn(2) == 0
		dist := func(s *san.State) rng.Dist {
			if scaled {
				return rng.Expo(rt * float64(s.Get(src)))
			}
			return rng.Expo(rt)
		}
		if r.Intn(3) == 0 { // departure
			m.AddActivity(san.ActivityDef{
				Name: fmt.Sprintf("depart%d", a), Kind: san.Timed,
				Dist:    dist,
				Enabled: func(s *san.State) bool { return s.Get(src) > 0 },
				Reads:   []*san.Place{src},
				Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Add(src, -1) }}},
			})
		} else {
			m.AddActivity(san.ActivityDef{
				Name: fmt.Sprintf("move%d", a), Kind: san.Timed,
				Dist:    dist,
				Enabled: func(s *san.State) bool { return s.Get(src) > 0 && s.Int(dst) < cap },
				Reads:   []*san.Place{src, dst},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Add(src, -1)
					ctx.State.Add(dst, 1)
				}}},
			})
		}
	}
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

// TestSimulatorMatchesSolverOnRandomModels is the property-based version
// of the simulator-vs-solver agreement check: on a family of randomized
// small Markovian SANs the discrete-event engine's 95% intervals must
// cover the uniformization values of a time-average and an at-time
// measure. Tolerance is 3.5 half-widths (~Bonferroni-safe across the
// seeds) so the test is sharp against real bias yet stable in CI.
func TestSimulatorMatchesSolverOnRandomModels(t *testing.T) {
	const T = 4.0
	for _, seed := range []int64{3, 17, 52, 91} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			m := buildRandomMigration(mrand.New(mrand.NewSource(seed)))
			c, err := Generate(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			tokens := func(s *san.State) float64 {
				n := 0.0
				for _, p := range m.Places() {
					n += float64(s.Get(p))
				}
				return n
			}
			wantAvg, err := c.IntervalAverageReward(T, tokens)
			if err != nil {
				t.Fatal(err)
			}
			wantAt, err := c.TransientReward(T, tokens)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Spec{
				Model: m, Until: T, Reps: 4000, Seed: uint64(seed) + 1000, Validate: true,
				Vars: []reward.Var{
					&reward.TimeAverage{VarName: "avg", F: tokens, From: 0, To: T},
					&reward.AtTime{VarName: "at", F: tokens, T: T},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("states=%d avg exact=%.6f at exact=%.6f", c.NumStates(), wantAvg, wantAt)
			for name, want := range map[string]float64{"avg": wantAvg, "at": wantAt} {
				est := res.MustGet(name)
				if math.Abs(est.Mean-want) > 3.5*est.HalfWidth95 {
					t.Errorf("%s: sim %v ± %v vs exact %v (off by %.1f half-widths)",
						name, est.Mean, est.HalfWidth95, want, math.Abs(est.Mean-want)/est.HalfWidth95)
				}
			}
		})
	}
}
