package mc

import (
	"math"
	"testing"

	"ituaval/internal/san"
)

// TestGenerateParallelDeterminism is the golden determinism check the
// parallel generator is designed around: the assembled chain — state
// numbering, markings, CSR arrays, rates, exit rates, initial
// distribution — and the transient solution built on it must be
// bit-identical at every worker count. Workers only change scheduling;
// the canonical BFS renumbering erases it.
func TestGenerateParallelDeterminism(t *testing.T) {
	models := []struct {
		name  string
		build func(t *testing.T) *san.Model
	}{
		{"tandem", func(t *testing.T) *san.Model { return buildTandem(9) }},
		{"branching", func(t *testing.T) *san.Model {
			m, _, _ := buildBranching(t)
			return m
		}},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Generate(tc.build(t), Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			refDist, err := ref.Transient(3)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := Generate(tc.build(t), Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				sameChain(t, ref, got, workers)
				dist, err := got.Transient(3)
				if err != nil {
					t.Fatal(err)
				}
				for i := range refDist {
					if math.Float64bits(dist[i]) != math.Float64bits(refDist[i]) {
						t.Fatalf("workers=%d: transient[%d] = %x, want %x (not bit-identical)",
							workers, i, math.Float64bits(dist[i]), math.Float64bits(refDist[i]))
					}
				}
			}
		})
	}
}

// sameChain asserts b is bit-identical to a in every assembled array.
func sameChain(t *testing.T, a, b *CTMC, workers int) {
	t.Helper()
	if a.n != b.n {
		t.Fatalf("workers=%d: %d states, want %d", workers, b.n, a.n)
	}
	for i := 0; i < a.n; i++ {
		am, bm := a.StateMarking(i), b.StateMarking(i)
		for j := range am {
			if am[j] != bm[j] {
				t.Fatalf("workers=%d: state %d marking %v, want %v", workers, i, bm, am)
			}
		}
	}
	if len(a.rowPtr) != len(b.rowPtr) || len(a.cols) != len(b.cols) {
		t.Fatalf("workers=%d: CSR shape (%d,%d), want (%d,%d)",
			workers, len(b.rowPtr), len(b.cols), len(a.rowPtr), len(a.cols))
	}
	for i := range a.rowPtr {
		if a.rowPtr[i] != b.rowPtr[i] {
			t.Fatalf("workers=%d: rowPtr[%d] = %d, want %d", workers, i, b.rowPtr[i], a.rowPtr[i])
		}
	}
	for k := range a.cols {
		if a.cols[k] != b.cols[k] {
			t.Fatalf("workers=%d: cols[%d] = %d, want %d", workers, k, b.cols[k], a.cols[k])
		}
		if math.Float64bits(a.rates[k]) != math.Float64bits(b.rates[k]) {
			t.Fatalf("workers=%d: rates[%d] = %v, want %v (not bit-identical)",
				workers, k, b.rates[k], a.rates[k])
		}
	}
	for i := range a.exit {
		if math.Float64bits(a.exit[i]) != math.Float64bits(b.exit[i]) {
			t.Fatalf("workers=%d: exit[%d] = %v, want %v", workers, i, b.exit[i], a.exit[i])
		}
	}
	if len(a.initDist) != len(b.initDist) {
		t.Fatalf("workers=%d: initDist size %d, want %d", workers, len(b.initDist), len(a.initDist))
	}
	for s, p := range a.initDist {
		if math.Float64bits(b.initDist[s]) != math.Float64bits(p) {
			t.Fatalf("workers=%d: initDist[%d] = %v, want %v", workers, s, b.initDist[s], p)
		}
	}
}
