package mc

import (
	"errors"
	"fmt"
	"math"

	"ituaval/internal/san"
)

// uniformized returns the DTMC transition function of the uniformized chain
// and the uniformization rate Λ (strictly greater than every exit rate, so
// every state keeps a self-loop and the chain is aperiodic).
func (c *CTMC) uniformized() (step func(v, out []float64), lambda float64) {
	lambda = 0.0
	for _, e := range c.exit {
		if e > lambda {
			lambda = e
		}
	}
	lambda *= 1.02
	if lambda == 0 {
		lambda = 1 // absorbing-only chain: identity steps
	}
	step = func(v, out []float64) {
		for i := range out {
			out[i] = 0
		}
		for i, row := range c.rows {
			if v[i] == 0 {
				continue
			}
			stay := v[i] * (1 - c.exit[i]/lambda)
			out[i] += stay
			for _, tr := range row {
				out[tr.to] += v[i] * tr.rate / lambda
			}
		}
	}
	return step, lambda
}

// poissonTerms returns Poisson(mu) probabilities for k = 0..K where K is
// chosen so the truncated mass exceeds 1 - eps. Uses a stable recursion in
// log space for large mu.
func poissonTerms(mu, eps float64) []float64 {
	if mu < 0 {
		panic("mc: negative Poisson mean")
	}
	if mu == 0 {
		return []float64{1}
	}
	// Start from the (log of the) mode to avoid underflow, then fill both
	// directions until mass >= 1-eps.
	mode := int(mu)
	logP := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		return -mu + float64(k)*math.Log(mu) - lg
	}
	// Expand upper bound until cumulative mass is sufficient.
	hi := mode
	total := 0.0
	var terms []float64
	for {
		hi += 32
		terms = make([]float64, hi+1)
		total = 0.0
		for k := 0; k <= hi; k++ {
			terms[k] = math.Exp(logP(k))
			total += terms[k]
		}
		if total >= 1-eps || hi > int(mu)+10000000 {
			break
		}
	}
	return terms
}

// Transient returns the state distribution at time t, starting from the
// model's initial distribution, computed by uniformization.
func (c *CTMC) Transient(t float64) ([]float64, error) {
	if t < 0 {
		return nil, errors.New("mc: negative time")
	}
	v := c.InitialDistribution()
	if t == 0 {
		return v, nil
	}
	step, lambda := c.uniformized()
	terms := poissonTerms(lambda*t, 1e-12)
	out := make([]float64, len(v))
	next := make([]float64, len(v))
	for k := 0; ; k++ {
		w := 0.0
		if k < len(terms) {
			w = terms[k]
		}
		for i := range v {
			out[i] += w * v[i]
		}
		if k >= len(terms)-1 {
			break
		}
		step(v, next)
		v, next = next, v
	}
	return out, nil
}

// TransientReward returns E[f(X_t)].
func (c *CTMC) TransientReward(t float64, f func(*san.State) float64) (float64, error) {
	p, err := c.Transient(t)
	if err != nil {
		return 0, err
	}
	return dot(p, c.RewardVector(f)), nil
}

// IntervalAverageReward returns (1/T) E[∫₀ᵀ f(X_u) du] using the
// uniformization formula for accumulated rewards:
// E[∫₀ᵀ r du] = (1/Λ) Σ_k (vₖ·r) P(N(ΛT) > k).
func (c *CTMC) IntervalAverageReward(t float64, f func(*san.State) float64) (float64, error) {
	if t <= 0 {
		return 0, errors.New("mc: non-positive interval")
	}
	r := c.RewardVector(f)
	v := c.InitialDistribution()
	step, lambda := c.uniformized()
	terms := poissonTerms(lambda*t, 1e-12)
	// tail[k] = P(N > k) = 1 - sum_{j<=k} terms[j]
	next := make([]float64, len(v))
	acc := 0.0
	cum := 0.0
	for k := 0; k < len(terms); k++ {
		cum += terms[k]
		tail := 1 - cum
		if tail < 0 {
			tail = 0
		}
		acc += dot(v, r) * tail
		if tail == 0 {
			break
		}
		step(v, next)
		v, next = next, v
	}
	return acc / lambda / t, nil
}

// SteadyState returns the stationary distribution by power iteration on the
// uniformized DTMC. It returns an error if the iteration does not converge;
// for chains with transient states mass settles on the recurrent classes
// reachable from the initial distribution.
func (c *CTMC) SteadyState(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 1_000_000
	}
	v := c.InitialDistribution()
	step, _ := c.uniformized()
	next := make([]float64, len(v))
	for iter := 0; iter < maxIter; iter++ {
		step(v, next)
		diff := 0.0
		for i := range v {
			diff += math.Abs(next[i] - v[i])
		}
		v, next = next, v
		if diff < tol {
			return v, nil
		}
	}
	return nil, fmt.Errorf("mc: steady state did not converge in %d iterations", maxIter)
}

// SteadyStateReward returns the stationary expectation of f.
func (c *CTMC) SteadyStateReward(f func(*san.State) float64, tol float64, maxIter int) (float64, error) {
	p, err := c.SteadyState(tol, maxIter)
	if err != nil {
		return 0, err
	}
	return dot(p, c.RewardVector(f)), nil
}

// FirstPassageProb returns P(pred(X_u) for some u <= t): states satisfying
// pred are made absorbing and their transient mass at t is summed. States
// already satisfying pred at time 0 count as absorbed.
func (c *CTMC) FirstPassageProb(t float64, pred func(*san.State) bool) (float64, error) {
	if t < 0 {
		return 0, errors.New("mc: negative time")
	}
	bad := make([]bool, len(c.states))
	scratch := c.model.NewState()
	for i := range c.states {
		copy(scratch.Markings(), c.states[i])
		scratch.ResetDirty()
		bad[i] = pred(scratch)
	}
	// Build a modified uniformized step where bad states absorb.
	lambda := 0.0
	for i, e := range c.exit {
		if !bad[i] && e > lambda {
			lambda = e
		}
	}
	lambda *= 1.02
	if lambda == 0 {
		lambda = 1
	}
	step := func(v, out []float64) {
		for i := range out {
			out[i] = 0
		}
		for i, row := range c.rows {
			if v[i] == 0 {
				continue
			}
			if bad[i] {
				out[i] += v[i]
				continue
			}
			out[i] += v[i] * (1 - c.exit[i]/lambda)
			for _, tr := range row {
				out[tr.to] += v[i] * tr.rate / lambda
			}
		}
	}
	v := c.InitialDistribution()
	if t > 0 {
		terms := poissonTerms(lambda*t, 1e-12)
		out := make([]float64, len(v))
		next := make([]float64, len(v))
		for k := 0; ; k++ {
			w := 0.0
			if k < len(terms) {
				w = terms[k]
			}
			for i := range v {
				out[i] += w * v[i]
			}
			if k >= len(terms)-1 {
				break
			}
			step(v, next)
			v, next = next, v
		}
		v = out
	}
	p := 0.0
	for i := range v {
		if bad[i] {
			p += v[i]
		}
	}
	return p, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
