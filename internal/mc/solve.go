package mc

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"ituaval/internal/san"
)

// ErrPoissonTruncation is returned when the Poisson weight window cannot
// reach the requested probability mass — the remaining terms underflow or
// the window would grow beyond any plausible size — so a uniformization
// result at the requested accuracy is not available. The old solver
// silently truncated in this situation; now the error carries through
// Transient, TransientReward, IntervalAverageReward, and
// FirstPassageProb.
var ErrPoissonTruncation = errors.New("mc: Poisson window cannot reach the requested probability mass")

// poissonWindow holds the Fox–Glynn-style truncated Poisson(mu) weights:
// terms[i] ≈ P(N = left+i), computed by the stable two-sided recurrence
// from the mode (p(k+1) = p(k)·mu/(k+1) upward, p(k-1) = p(k)·k/mu
// downward) and extended greedily — one term at a time, largest next term
// first — until geometric bounds show the dropped tails are below eps of
// the retained weight. As in Fox–Glynn the raw weights are treated as
// relative (at large mu the mode term, a difference of huge near-canceling
// logarithms, carries a common relative bias far above eps) and the window
// is normalized by its total, so the retained terms sum to one. Left
// truncation matters at large mu (the uniformized step count is Λt): the
// weights below left underflow and their steps contribute nothing to the
// weighted sum, though the transient loop still has to advance the DTMC
// through them.
type poissonWindow struct {
	left  int
	terms []float64
}

// windowGrowthCap bounds the window extension beyond the mode; reaching it
// means eps is unattainably small for this mu.
const windowGrowthCap = 10_000_000

func newPoissonWindow(mu, eps float64) (*poissonWindow, error) {
	if mu < 0 {
		panic("mc: negative Poisson mean")
	}
	if mu == 0 {
		return &poissonWindow{left: 0, terms: []float64{1}}, nil
	}
	mode := int(mu)
	lg, _ := math.Lgamma(float64(mode + 1))
	pMode := math.Exp(-mu + float64(mode)*math.Log(mu) - lg)
	if pMode == 0 {
		return nil, fmt.Errorf("%w: mode term underflows at mu=%g", ErrPoissonTruncation, mu)
	}
	lo, hi := mode, mode
	pLo, pHi := pMode, pMode
	mass := pMode
	// left side is collected in descending-k order and reversed at the end.
	leftRev := []float64(nil)
	right := []float64(nil)
	for {
		nextLo := 0.0
		if lo > 0 {
			nextLo = pLo * float64(lo) / mu
		}
		nextHi := pHi * mu / float64(hi+1)
		// Terms decay at least geometrically away from the mode, so each
		// dropped tail is bounded by its next term times the geometric
		// ratio's closed form: Σ_{j<lo} p(j) ≤ nextLo/(1-(lo-1)/mu) and
		// Σ_{j>hi} p(j) ≤ nextHi/(1-mu/(hi+2)). Underflowed sides (next
		// term exactly 0) contribute a zero bound: the true mass beyond
		// the underflow point is below 10^-300 of the retained weight.
		tail := 0.0
		if nextLo > 0 {
			tail += nextLo * mu / (mu - float64(lo-1))
		}
		if nextHi > 0 {
			tail += nextHi / (1 - mu/float64(hi+2))
		}
		if tail <= eps*mass {
			break
		}
		if nextLo >= nextHi {
			lo--
			pLo = nextLo
			leftRev = append(leftRev, pLo)
			mass += pLo
		} else {
			hi++
			if hi > mode+windowGrowthCap {
				return nil, fmt.Errorf("%w: window exceeds %d terms at mu=%g (eps=%g)",
					ErrPoissonTruncation, windowGrowthCap, mu, eps)
			}
			pHi = nextHi
			right = append(right, pHi)
			mass += pHi
		}
	}
	terms := make([]float64, 0, len(leftRev)+1+len(right))
	for i := len(leftRev) - 1; i >= 0; i-- {
		terms = append(terms, leftRev[i])
	}
	terms = append(terms, pMode)
	terms = append(terms, right...)
	// Fox–Glynn normalization: the common relative bias of the recurrence
	// divides out, leaving the retained weights summing to one.
	for i := range terms {
		terms[i] /= mass
	}
	return &poissonWindow{left: lo, terms: terms}, nil
}

// prob returns P(N = k) within the window, 0 outside it.
func (w *poissonWindow) prob(k int) float64 {
	i := k - w.left
	if i < 0 || i >= len(w.terms) {
		return 0
	}
	return w.terms[i]
}

// last is the highest k carrying retained mass.
func (w *poissonWindow) last() int { return w.left + len(w.terms) - 1 }

// uniStep is the one-step operator of the uniformized DTMC with every
// probability precomputed: out[i] = stay[i]·v[i] + Σ_k prob[k]·v[src[k]]
// over state i's incoming transitions (transposed CSR, sources ascending).
// Each out[i] is written by exactly one row block with a fixed per-row
// summation order, so results are bit-identical at every worker count.
//
// Large chains run the matvec over a static row-block partition balanced
// by incoming-transition count (a row's cost is its gather length, not 1),
// executed by a persistent pool of workers that lives for the duration of
// one solve — the quotient chains the lumped generator produces run tens
// of thousands of steps, and respawning goroutines per step is measurable
// at that scale. Callers that obtain an operator must stop() it.
type uniStep struct {
	n       int
	stay    []float64
	tRowPtr []int32
	tCols   []int32
	tProb   []float64
	workers int

	// blocks is the row partition: block b covers rows
	// [blocks[b], blocks[b+1]). Nil when the chain is solved sequentially.
	blocks []int32

	poolOnce sync.Once
	jobs     chan int
	jobWG    sync.WaitGroup
	v, out   []float64 // current operands, set before jobs are posted
}

// parallelSolveMin is the problem size (states + transitions) below which
// row-parallel matvec is not worth the goroutine handoff.
const parallelSolveMin = 1 << 15

// makeBlocks cuts the rows into nBlocks contiguous blocks of roughly equal
// work, where row i costs 1 + its incoming-transition count.
func (s *uniStep) makeBlocks(nBlocks int) {
	total := s.n + len(s.tCols)
	s.blocks = make([]int32, 1, nBlocks+1)
	work, cut := 0, 1
	for i := 0; i < s.n && cut < nBlocks; i++ {
		work += 1 + int(s.tRowPtr[i+1]-s.tRowPtr[i])
		if work*nBlocks >= total*cut {
			s.blocks = append(s.blocks, int32(i+1))
			cut++
		}
	}
	s.blocks = append(s.blocks, int32(s.n))
}

func (s *uniStep) startPool() {
	s.jobs = make(chan int)
	for w := 1; w < len(s.blocks)-1; w++ {
		go func() {
			for b := range s.jobs {
				s.applyRange(s.v, s.out, int(s.blocks[b]), int(s.blocks[b+1]))
				s.jobWG.Done()
			}
		}()
	}
}

// stop releases the worker pool. Safe to call whether or not the pool
// started; the operator must not be applied afterwards.
func (s *uniStep) stop() {
	if s.jobs != nil {
		close(s.jobs)
		s.jobs = nil
	}
}

func (s *uniStep) apply(v, out []float64) {
	if s.blocks == nil {
		s.applyRange(v, out, 0, s.n)
		return
	}
	s.poolOnce.Do(s.startPool)
	s.v, s.out = v, out
	nb := len(s.blocks) - 1
	s.jobWG.Add(nb - 1)
	for b := 1; b < nb; b++ {
		s.jobs <- b
	}
	s.applyRange(v, out, int(s.blocks[0]), int(s.blocks[1]))
	s.jobWG.Wait()
}

func (s *uniStep) applyRange(v, out []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc := s.stay[i] * v[i]
		for k := s.tRowPtr[i]; k < s.tRowPtr[i+1]; k++ {
			acc += s.tProb[k] * v[s.tCols[k]]
		}
		out[i] = acc
	}
}

// uniOperator builds the uniformized step operator. Λ is 1.02× the largest
// exit rate (strictly above every exit rate, so each state keeps a
// self-loop and the DTMC is aperiodic). When bad is non-nil, states marked
// bad absorb: their mass stays put and their outgoing probabilities are
// zeroed, and Λ is taken over the non-bad states only.
func (c *CTMC) uniOperator(bad []bool) (*uniStep, float64) {
	lambda := 0.0
	for i, e := range c.exit {
		if (bad == nil || !bad[i]) && e > lambda {
			lambda = e
		}
	}
	lambda *= 1.02
	if lambda == 0 {
		lambda = 1 // absorbing-only chain: identity steps
	}
	s := &uniStep{
		n:       c.n,
		stay:    make([]float64, c.n),
		tRowPtr: c.tRowPtr,
		tCols:   c.tCols,
		tProb:   make([]float64, len(c.tRates)),
		workers: c.workers,
	}
	for i := 0; i < c.n; i++ {
		if bad != nil && bad[i] {
			s.stay[i] = 1
		} else {
			s.stay[i] = 1 - c.exit[i]/lambda
		}
	}
	for k := range c.tRates {
		if src := c.tCols[k]; bad != nil && bad[src] {
			s.tProb[k] = 0
		} else {
			s.tProb[k] = c.tRates[k] / lambda
		}
	}
	if s.workers > 1 && s.n+len(s.tCols) >= parallelSolveMin {
		s.makeBlocks(s.workers)
	}
	return s, lambda
}

// Steady-state detection inside the transient loop: once successive
// uniformized iterates agree to ssTol in max norm the chain has mixed, so
// the remaining Poisson mass multiplies the current vector and the
// (possibly very long, Λt-step) iteration exits early.
const (
	ssTol        = 1e-12
	ssCheckFrom  = 32
	ssCheckEvery = 4
)

// transientDist runs the uniformization sum Σ_k P(N(Λt)=k)·v_k under the
// given step operator.
func transientDist(op *uniStep, v []float64, lambda, t, eps float64) ([]float64, error) {
	w, err := newPoissonWindow(lambda*t, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(v))
	next := make([]float64, len(v))
	cum := 0.0
	for k := 0; ; k++ {
		if pk := w.prob(k); pk > 0 {
			for i := range v {
				out[i] += pk * v[i]
			}
			cum += pk
		}
		if k >= w.last() {
			return out, nil
		}
		op.apply(v, next)
		if k >= ssCheckFrom && k%ssCheckEvery == 0 {
			diff := 0.0
			for i := range v {
				if d := math.Abs(next[i] - v[i]); d > diff {
					diff = d
				}
			}
			if diff <= ssTol {
				rem := 1 - cum
				for i := range out {
					out[i] += rem * next[i]
				}
				return out, nil
			}
		}
		v, next = next, v
	}
}

// Transient returns the state distribution at time t, starting from the
// model's initial distribution, computed by uniformization with Fox–Glynn
// truncation and steady-state detection.
func (c *CTMC) Transient(t float64) ([]float64, error) {
	if t < 0 {
		return nil, errors.New("mc: negative time")
	}
	v := c.InitialDistribution()
	if t == 0 || c.n == 0 {
		return v, nil
	}
	op, lambda := c.uniOperator(nil)
	defer op.stop()
	out, err := transientDist(op, v, lambda, t, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("mc: transient at t=%v: %w", t, err)
	}
	return out, nil
}

// TransientReward returns E[f(X_t)].
func (c *CTMC) TransientReward(t float64, f func(*san.State) float64) (float64, error) {
	p, err := c.Transient(t)
	if err != nil {
		return 0, err
	}
	return dot(p, c.RewardVector(f)), nil
}

// IntervalAverageReward returns (1/T) E[∫₀ᵀ f(X_u) du] using the
// uniformization formula for accumulated rewards:
// E[∫₀ᵀ r du] = (1/Λ) Σ_k (vₖ·r) P(N(ΛT) > k).
//
// Like transientDist, the loop detects steady state: once successive
// uniformized iterates agree to ssTol, every remaining step contributes
// the same reward, and the remaining tail weights sum in closed form to
// E[N] − Σ seen = ΛT − Σ seen — so the (possibly ΛT-step) iteration
// exits early with the exact remainder instead of stepping through it.
func (c *CTMC) IntervalAverageReward(t float64, f func(*san.State) float64) (float64, error) {
	if t <= 0 {
		return 0, errors.New("mc: non-positive interval")
	}
	r := c.RewardVector(f)
	v := c.InitialDistribution()
	op, lambda := c.uniOperator(nil)
	defer op.stop()
	w, err := newPoissonWindow(lambda*t, 1e-12)
	if err != nil {
		return 0, fmt.Errorf("mc: interval reward over [0,%v]: %w", t, err)
	}
	next := make([]float64, len(v))
	acc := 0.0
	cum := 0.0
	tailSum := 0.0 // Σ over seen steps of P(N > k)
	for k := 0; k <= w.last(); k++ {
		cum += w.prob(k)
		tail := 1 - cum
		if tail < 0 {
			tail = 0
		}
		acc += dot(v, r) * tail
		tailSum += tail
		if tail == 0 {
			break
		}
		op.apply(v, next)
		if k >= ssCheckFrom && k%ssCheckEvery == 0 {
			diff := 0.0
			for i := range v {
				if d := math.Abs(next[i] - v[i]); d > diff {
					diff = d
				}
			}
			if diff <= ssTol {
				if rem := lambda*t - tailSum; rem > 0 {
					acc += dot(next, r) * rem
				}
				return acc / lambda / t, nil
			}
		}
		v, next = next, v
	}
	return acc / lambda / t, nil
}

// SteadyState returns the stationary distribution by power iteration on the
// uniformized DTMC. It returns an error if the iteration does not converge;
// for chains with transient states mass settles on the recurrent classes
// reachable from the initial distribution.
func (c *CTMC) SteadyState(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 1_000_000
	}
	v := c.InitialDistribution()
	op, _ := c.uniOperator(nil)
	defer op.stop()
	next := make([]float64, len(v))
	for iter := 0; iter < maxIter; iter++ {
		op.apply(v, next)
		diff := 0.0
		for i := range v {
			diff += math.Abs(next[i] - v[i])
		}
		v, next = next, v
		if diff < tol {
			return v, nil
		}
	}
	return nil, fmt.Errorf("mc: steady state did not converge in %d iterations", maxIter)
}

// SteadyStateReward returns the stationary expectation of f.
func (c *CTMC) SteadyStateReward(f func(*san.State) float64, tol float64, maxIter int) (float64, error) {
	p, err := c.SteadyState(tol, maxIter)
	if err != nil {
		return 0, err
	}
	return dot(p, c.RewardVector(f)), nil
}

// FirstPassageProb returns P(pred(X_u) for some u <= t): states satisfying
// pred are made absorbing and their transient mass at t is summed. States
// already satisfying pred at time 0 count as absorbed.
func (c *CTMC) FirstPassageProb(t float64, pred func(*san.State) bool) (float64, error) {
	if t < 0 {
		return 0, errors.New("mc: negative time")
	}
	bad := make([]bool, c.n)
	scratch := c.model.NewState()
	for i := 0; i < c.n; i++ {
		copy(scratch.Markings(), c.StateMarking(i))
		scratch.ResetDirty()
		bad[i] = pred(scratch)
	}
	v := c.InitialDistribution()
	if t > 0 {
		op, lambda := c.uniOperator(bad)
		out, err := transientDist(op, v, lambda, t, 1e-12)
		op.stop()
		if err != nil {
			return 0, fmt.Errorf("mc: first passage by t=%v: %w", t, err)
		}
		v = out
	}
	p := 0.0
	for i := range v {
		if bad[i] {
			p += v[i]
		}
	}
	return p, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
