package mc

// Benchmarks of the symmetry-lumped analytic path on a real ITUA
// configuration (internal/core), the workload PR 9 is about: the
// BenchmarkMCITUA* pairs generate (and solve) the same 4-domain model
// twice — the full chain and the lumped quotient — so BENCH_PR9.json
// records the state-space reduction (the "states" metric) and the
// end-to-end speedup side by side. The tandem-network benchmarks in
// bench_test.go are unchanged and keep tracking the raw generator and
// uniformization kernels.

import (
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/san"
)

// benchITUAParams is the benchmark topology: four exchangeable domains of
// one host each (symmetry group S_4, order 24), the analytic study's
// corruption multiplier, at the spread-0 structural corner with the
// false-alarm and manager-attack channels disabled so the full chain
// stays generateable for the comparison. Analytic saturates the intrusion
// counter, as the exact path requires.
func benchITUAParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	p.CorruptionMult = 5
	p.DomainSpreadRate = 0
	p.SystemSpreadRate = 0
	p.TotalFalseAlarmRate = 0
	p.AttackSplitMgr = 0
	p.Analytic = true
	return p
}

const benchITUAMaxStates = 1 << 23

func buildITUABench(b *testing.B) (*core.Model, Canonicalizer) {
	b.Helper()
	m, err := core.Build(benchITUAParams())
	if err != nil {
		b.Fatal(err)
	}
	canon := core.NewCanonicalizer(m)
	if canon == nil {
		b.Fatal("benchmark topology must admit a canonicalizer")
	}
	return m, canon
}

func benchITUAGenerate(b *testing.B, lump bool) {
	m, canon := buildITUABench(b)
	opts := Options{MaxStates: benchITUAMaxStates}
	if lump {
		opts.Canon = canon
	}
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		c, err := Generate(m.SAN, opts)
		if err != nil {
			b.Fatal(err)
		}
		states = c.NumStates()
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkMCITUAGenerateFull(b *testing.B)   { benchITUAGenerate(b, false) }
func BenchmarkMCITUAGenerateLumped(b *testing.B) { benchITUAGenerate(b, true) }

// benchITUASolve is the end-to-end analytic pipeline: generation plus the
// exact 10-hour interval unavailability (IntervalAverageReward, the
// solver lane with steady-state early exit) on application 0.
func benchITUASolve(b *testing.B, lump bool) {
	m, canon := buildITUABench(b)
	opts := Options{MaxStates: benchITUAMaxStates}
	if lump {
		opts.Canon = canon
	}
	improper := m.Improper(0)
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		c, err := Generate(m.SAN, opts)
		if err != nil {
			b.Fatal(err)
		}
		states = c.NumStates()
		if _, err := c.IntervalAverageReward(10, func(s *san.State) float64 {
			if improper(s) {
				return 1
			}
			return 0
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkMCITUASolveFull(b *testing.B)   { benchITUASolve(b, false) }
func BenchmarkMCITUASolveLumped(b *testing.B) { benchITUASolve(b, true) }
