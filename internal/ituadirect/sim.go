// Package ituadirect is an independent re-implementation of the ITUA
// stochastic process as a direct continuous-time simulation (Gillespie-style
// stochastic simulation algorithm over explicit entity state), sharing no
// mechanism with the SAN formalism, the composed-model machinery, or the
// event-heap engine in internal/sim. Agreement between the two
// implementations on every measure is the strongest internal-validation
// evidence this reproduction offers: the probability of both encodings of
// the model being wrong in the same way is small.
//
// Because every timer in the ITUA model is exponential, the process is a
// CTMC and the SSA (total-rate jump sampling) is exact.
package ituadirect

import (
	"context"
	"fmt"
	"runtime/debug"

	"ituaval/internal/core"
	"ituaval/internal/rng"
)

// Opts configures optional behaviour of one replication.
type Opts struct {
	// CRN enables common-random-numbers mode: every stochastic role (the
	// initial placement, the jump-time clock, the transition selector, and
	// each entity's outcome trials) samples from its own substream derived
	// from the replication stream by the stable hash of the role's name.
	// Two configurations differing only in policy then consume identical
	// randomness for identical roles — the same attack classes, detection
	// outcomes, and placements — so their per-replication measures are
	// positively correlated and their difference admits a paired estimator.
	// Results stay deterministic for a fixed seed but are not
	// bit-compatible with single-stream runs of the same seed.
	CRN bool
}

// sim holds the explicit entity state of one replication. Time is in hours.
type process struct {
	p  core.Params
	rs *rng.Stream

	// CRN role substreams (nil when disabled): see Opts.CRN. Entity roles
	// are keyed by stable names ("host[g]", "mgr[g]", "app[a].rep[r]",
	// "app[a].recovery"), so the same entity draws the same outcome
	// sequence under either exclusion policy.
	crn          bool
	timeStream   *rng.Stream
	selectStream *rng.Stream
	envStream    *rng.Stream
	hostRoles    []*rng.Stream
	mgrRoles     []*rng.Stream
	repRoles     [][]*rng.Stream
	recRoles     []*rng.Stream

	hostRate, repRate, mgrRate  float64 // per-entity base attack rates
	hostFalseRate, repFalseRate float64
	pClass                      [3]float64 // script, exploratory, innovative
	detectClass                 [3]float64

	// hosts, flattened g = d*H + h
	hostStatus   []int // 0 ok, 1..3 corrupt by class
	hostExcluded []bool
	hostDetected []bool // host-OS IDS trial consumed
	propDomDone  []bool
	propSysDone  []bool
	mgrCorrupt   []bool // corrupt and undetected
	mgrRemoved   []bool
	mgrDetected  []bool

	domExcluded []bool
	spreadDom   []int // intra-domain propagation events per domain

	spreadSys  int
	intrusions int

	// replica slots [a][r]
	onHost       [][]int // -1 = empty, else flattened host index
	repCorrupt   [][]bool
	repConvicted [][]bool
	repDetected  [][]bool

	running []int
	undet   []int
	grpFail []bool
	needRec []int

	exclEvents      int
	exclCorruptFrac float64 // sum of per-exclusion corrupt fractions

	// Environment faults (mirroring core's Environment submodel). partA
	// and partB are the severed domains of the single active partition
	// (-1 = healed); inService[a] is true while a repair-crew member
	// serves app a's recovery, and crewBusy counts claimed members
	// (crewBusy = Σ inService, crewBusy <= Params.RepairCrew).
	partA, partB int
	inService    []bool
	crewBusy     int
}

// Result collects one replication's measures for the measured application
// (app 0) and the system.
type Result struct {
	// UnavailTime[i] is the improper-service time of app 0 accumulated in
	// [0, horizons[i]].
	UnavailTime []float64
	// ByzantineBy[i] reports whether app 0 suffered a Byzantine fault by
	// horizons[i].
	ByzantineBy []bool
	// FracDomainsExcluded[i] at horizons[i].
	FracDomainsExcluded []float64
	// CorruptFracAtExclusion is the mean over exclusion events in the full
	// run (NaN if none).
	CorruptFracAtExclusion float64
	// RunningAtEnd is the number of app-0 replicas running at the last
	// horizon.
	RunningAtEnd int
}

// Run simulates one replication up to the largest horizon, recording the
// measures at each horizon. Horizons must be ascending and non-empty.
func Run(p core.Params, seed *rng.Stream, horizons []float64) (Result, error) {
	return RunContext(context.Background(), p, seed, horizons)
}

// RunContext is Run with cooperative cancellation and panic isolation: the
// SSA event loop polls ctx every few hundred events, so cancelling ctx (or
// attaching a deadline to it) aborts a runaway replication with ctx.Err()
// instead of hanging the sweep, and a panic inside the process is returned
// as an error carrying the stack.
func RunContext(ctx context.Context, p core.Params, seed *rng.Stream, horizons []float64) (Result, error) {
	return RunContextOpts(ctx, p, seed, horizons, Opts{})
}

// RunContextOpts is RunContext with explicit options (see Opts).
func RunContextOpts(ctx context.Context, p core.Params, seed *rng.Stream, horizons []float64, o Opts) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, fmt.Errorf("ituadirect: panic: %v\n%s", r, debug.Stack())
		}
	}()
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("ituadirect: %w", err)
	}
	if len(horizons) == 0 {
		return Result{}, fmt.Errorf("ituadirect: no horizons")
	}
	s := newSim(p, seed, o)
	return s.run(ctx, horizons)
}

func newSim(p core.Params, rs *rng.Stream, o Opts) *process {
	D, H, A, R := p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp
	n := D * H
	s := &process{
		p: p, rs: rs,
		hostStatus:   make([]int, n),
		hostExcluded: make([]bool, n),
		hostDetected: make([]bool, n),
		propDomDone:  make([]bool, n),
		propSysDone:  make([]bool, n),
		mgrCorrupt:   make([]bool, n),
		mgrRemoved:   make([]bool, n),
		mgrDetected:  make([]bool, n),
		domExcluded:  make([]bool, D),
		spreadDom:    make([]int, D),
		running:      make([]int, A),
		undet:        make([]int, A),
		grpFail:      make([]bool, A),
		needRec:      make([]int, A),
		partA:        -1,
		partB:        -1,
		inService:    make([]bool, A),
	}
	// Per-entity rates: recompute the same division core.Params performs,
	// but independently (from the documented semantics, not shared code
	// beyond the parameter struct).
	wSum := p.AttackSplitHost + p.AttackSplitReplica + p.AttackSplitMgr
	hosts := float64(n)
	if p.RateBaseHosts > 0 {
		hosts = float64(p.RateBaseHosts)
	}
	initialReps := p.RepsPerApp
	if p.NumDomains < initialReps {
		initialReps = p.NumDomains
	}
	replicas := float64(p.NumApps * initialReps)
	if p.RateBaseReplicas > 0 {
		replicas = float64(p.RateBaseReplicas)
	}
	s.hostRate = p.TotalAttackRate * p.AttackSplitHost / wSum / hosts
	s.repRate = p.TotalAttackRate * p.AttackSplitReplica / wSum / replicas
	s.mgrRate = p.TotalAttackRate * p.AttackSplitMgr / wSum / hosts
	fSum := p.FalseSplitHost + p.FalseSplitReplica
	s.hostFalseRate = p.TotalFalseAlarmRate * p.FalseSplitHost / fSum / hosts
	s.repFalseRate = p.TotalFalseAlarmRate * p.FalseSplitReplica / fSum / replicas
	s.pClass = [3]float64{p.PScript, p.PExploratory, p.PInnovative}
	s.detectClass = [3]float64{p.DetectScript, p.DetectExploratory, p.DetectInnovative}

	initStream := rs
	if o.CRN {
		s.crn = true
		s.timeStream = rs.RoleNamed("__time__")
		s.selectStream = rs.RoleNamed("__select__")
		s.envStream = rs.RoleNamed("__env__")
		s.hostRoles = make([]*rng.Stream, n)
		s.mgrRoles = make([]*rng.Stream, n)
		for g := 0; g < n; g++ {
			s.hostRoles[g] = rs.RoleNamed(fmt.Sprintf("host[%d]", g))
			s.mgrRoles[g] = rs.RoleNamed(fmt.Sprintf("mgr[%d]", g))
		}
		s.recRoles = make([]*rng.Stream, A)
		s.repRoles = make([][]*rng.Stream, A)
		for a := 0; a < A; a++ {
			s.recRoles[a] = rs.RoleNamed(fmt.Sprintf("app[%d].recovery", a))
			s.repRoles[a] = make([]*rng.Stream, R)
			for r := 0; r < R; r++ {
				s.repRoles[a][r] = rs.RoleNamed(fmt.Sprintf("app[%d].rep[%d]", a, r))
			}
		}
		initStream = rs.RoleNamed("__init__")
	}

	// Initial placement: min(R, D) replicas per app on distinct uniformly
	// chosen domains, uniform host within each.
	s.onHost = make([][]int, A)
	s.repCorrupt = make([][]bool, A)
	s.repConvicted = make([][]bool, A)
	s.repDetected = make([][]bool, A)
	perm := make([]int, D)
	for a := 0; a < A; a++ {
		s.onHost[a] = make([]int, R)
		for r := range s.onHost[a] {
			s.onHost[a][r] = -1
		}
		s.repCorrupt[a] = make([]bool, R)
		s.repConvicted[a] = make([]bool, R)
		s.repDetected[a] = make([]bool, R)
		initStream.Perm(perm)
		k := R
		if D < k {
			k = D
		}
		for i := 0; i < k; i++ {
			s.onHost[a][i] = s.chooseHost(initStream, perm[i])
			s.running[a]++
		}
	}
	return s
}

func (s *process) domainOf(g int) int { return g / s.p.HostsPerDomain }

// The *Rand accessors return the stream a given stochastic role draws from:
// its own substream under CRN, the single replication stream otherwise.

func (s *process) hostRand(g int) *rng.Stream {
	if s.crn {
		return s.hostRoles[g]
	}
	return s.rs
}

func (s *process) mgrRand(g int) *rng.Stream {
	if s.crn {
		return s.mgrRoles[g]
	}
	return s.rs
}

func (s *process) repRand(a, r int) *rng.Stream {
	if s.crn {
		return s.repRoles[a][r]
	}
	return s.rs
}

func (s *process) recRand(a int) *rng.Stream {
	if s.crn {
		return s.recRoles[a]
	}
	return s.rs
}

func (s *process) timeRand() *rng.Stream {
	if s.crn {
		return s.timeStream
	}
	return s.rs
}

func (s *process) selectRand() *rng.Stream {
	if s.crn {
		return s.selectStream
	}
	return s.rs
}

func (s *process) envRand() *rng.Stream {
	if s.crn {
		return s.envStream
	}
	return s.rs
}

// hostLoad counts the replicas currently running on host g.
func (s *process) hostLoad(g int) int {
	n := 0
	for a := range s.onHost {
		for _, h := range s.onHost[a] {
			if h == g {
				n++
			}
		}
	}
	return n
}

// chooseHost picks a live host of domain d per the placement strategy,
// mirroring core's semantics, drawing from the caller's role stream.
func (s *process) chooseHost(rs *rng.Stream, d int) int {
	H := s.p.HostsPerDomain
	var hostsUp []int
	for h := 0; h < H; h++ {
		if !s.hostExcluded[d*H+h] {
			hostsUp = append(hostsUp, d*H+h)
		}
	}
	switch s.p.Placement {
	case core.LeastLoadedPlacement:
		best := hostsUp[0]
		for _, g := range hostsUp[1:] {
			if s.hostLoad(g) < s.hostLoad(best) {
				best = g
			}
		}
		return best
	case core.WeightedRandomPlacement:
		weights := make([]float64, len(hostsUp))
		for i, g := range hostsUp {
			weights[i] = 1 / (1 + float64(s.hostLoad(g)))
		}
		return hostsUp[rs.Category(weights)]
	default:
		return hostsUp[rs.Choose(len(hostsUp))]
	}
}

// hasReplica reports whether app a has a running replica in domain d.
func (s *process) hasReplica(a, d int) bool {
	for _, g := range s.onHost[a] {
		if g >= 0 && s.domainOf(g) == d {
			return true
		}
	}
	return false
}

func (s *process) mgrsRunning() int {
	n := 0
	for g := range s.mgrRemoved {
		if !s.hostExcluded[g] {
			n++
		}
	}
	return n
}

func (s *process) undetMgrs() int {
	n := 0
	for g := range s.mgrCorrupt {
		if s.mgrCorrupt[g] && !s.hostExcluded[g] {
			n++
		}
	}
	return n
}

func (s *process) globalQuorumOK() bool {
	// An active partition blocks the system-wide management quorum (the
	// same conservative reading as core: no global majority view while
	// any two domains cannot talk).
	if s.partA >= 0 {
		return false
	}
	return 3*s.undetMgrs() < s.mgrsRunning()
}

// cutsDomain reports whether domain d is on either side of the active
// partition.
func (s *process) cutsDomain(d int) bool {
	return s.partA >= 0 && (d == s.partA || d == s.partB)
}

func (s *process) domainGroupOK(d int) bool {
	H := s.p.HostsPerDomain
	up, corrupt := 0, 0
	for h := 0; h < H; h++ {
		g := d*H + h
		if !s.hostExcluded[g] {
			up++
			if s.mgrCorrupt[g] {
				corrupt++
			}
		}
	}
	return 3*corrupt < up
}

func (s *process) improper(a int) bool {
	if 3*s.undet[a] >= s.running[a] {
		return true
	}
	// A partition makes service improper when the whole replica group
	// straddles the cut: every running replica is in one of the severed
	// domains with at least one on each side, so no relay path exists and
	// neither side holds a response majority (mirrors core.Model.Improper).
	if s.partA < 0 {
		return false
	}
	sawA, sawB := false, false
	for _, g := range s.onHost[a] {
		if g < 0 {
			continue
		}
		switch s.domainOf(g) {
		case s.partA:
			sawA = true
		case s.partB:
			sawB = true
		default:
			return false
		}
	}
	return sawA && sawB
}

func (s *process) checkByzantine(a int) {
	if s.undet[a] > 0 && 3*s.undet[a] >= s.running[a] {
		s.grpFail[a] = true
	}
}

// spreadBoost is the linear rate increase on host-OS attacks in domain d.
func (s *process) spreadBoost(d int) float64 {
	return s.p.SpreadRateCoeff * (s.p.DomainSpreadRate*float64(s.spreadDom[d]) +
		s.p.SystemSpreadRate*float64(s.spreadSys))
}

// assetBoost is the linear rate increase on replica/manager attacks from
// intra-domain spread.
func (s *process) assetBoost(d int) float64 {
	return s.p.AssetSpreadCoeff * s.p.DomainSpreadRate * float64(s.spreadDom[d])
}
