package ituadirect

import (
	"context"
	"math"

	"ituaval/internal/core"
)

// transition is one enabled exponential event.
type transition struct {
	rate  float64
	apply func()
}

// collect enumerates every enabled transition in the current state.
func (s *process) collect(buf []transition) []transition {
	buf = buf[:0]
	p := s.p

	// Environment faults: a single partition severing a uniformly chosen
	// domain pair, and correlated attack campaigns corrupting a
	// Binomial(CampaignSize, CampaignProb) batch of eligible hosts.
	if p.PartitionRate > 0 && p.PartitionHealRate > 0 && len(s.domExcluded) > 1 {
		if s.partA < 0 {
			buf = append(buf, transition{p.PartitionRate, func() {
				D := len(s.domExcluded)
				k := s.envRand().Choose(D * (D - 1) / 2)
				da := 0
				for k >= D-1-da {
					k -= D - 1 - da
					da++
				}
				s.partA, s.partB = da, da+1+k
			}})
		} else {
			buf = append(buf, transition{p.PartitionHealRate, func() {
				s.partA, s.partB = -1, -1
			}})
		}
	}
	if p.CampaignRate > 0 && p.CampaignSize > 0 && p.CampaignProb > 0 {
		for g := range s.hostStatus {
			if s.hostStatus[g] == 0 && !s.hostExcluded[g] {
				buf = append(buf, transition{p.CampaignRate, func() { s.campaign() }})
				break
			}
		}
	}

	for g := range s.hostStatus {
		g := g
		if s.hostExcluded[g] {
			continue
		}
		d := s.domainOf(g)

		// Host-OS attack (three classes resolved at application time).
		if s.hostStatus[g] == 0 && s.hostRate > 0 {
			rate := s.hostRate * (1 + s.spreadBoost(d))
			buf = append(buf, transition{rate, func() {
				s.hostStatus[g] = 1 + s.hostRand(g).Category(s.pClass[:])
				s.intrusions++
			}})
		}

		// Spread propagation, once per corrupt host.
		if s.hostStatus[g] > 0 && !s.propDomDone[g] && p.DomainSpreadRate > 0 {
			buf = append(buf, transition{p.DomainSpreadRate, func() {
				s.propDomDone[g] = true
				s.spreadDom[d]++
			}})
		}
		if s.hostStatus[g] > 0 && !s.propSysDone[g] && p.SystemSpreadRate > 0 &&
			!s.cutsDomain(d) {
			buf = append(buf, transition{p.SystemSpreadRate, func() {
				s.propSysDone[g] = true
				s.spreadSys++
			}})
		}

		// Manager attack.
		if !s.mgrCorrupt[g] && !s.mgrRemoved[g] && s.mgrRate > 0 {
			rate := s.mgrRate * (1 + s.assetBoost(d))
			if s.hostStatus[g] > 0 {
				rate *= p.CorruptionMult
			}
			buf = append(buf, transition{rate, func() {
				s.mgrCorrupt[g] = true
				s.intrusions++
			}})
		}

		// Host-OS detection trial (one-shot per corruption).
		if s.hostStatus[g] > 0 && !s.hostDetected[g] && p.HostDetectRate > 0 {
			buf = append(buf, transition{p.HostDetectRate, func() {
				s.hostDetected[g] = true
				class := s.hostStatus[g] - 1
				if s.hostRand(g).Bernoulli(s.detectClass[class]) &&
					!s.mgrCorrupt[g] && s.domainGroupOK(d) {
					s.exclude(g)
				}
			}})
		}

		// Manager detection trial.
		if s.mgrCorrupt[g] && !s.mgrDetected[g] && p.MgrDetectRate > 0 {
			buf = append(buf, transition{p.MgrDetectRate, func() {
				s.mgrDetected[g] = true
				if s.mgrRand(g).Bernoulli(p.DetectMgr) &&
					(s.domainGroupOK(d) || s.globalQuorumOK()) {
					s.exclude(g)
				}
			}})
		}

		// Host-level false alarm, quenched after the first real intrusion.
		if s.intrusions == 0 && s.hostFalseRate > 0 {
			buf = append(buf, transition{s.hostFalseRate, func() {
				if !s.mgrCorrupt[g] && s.domainGroupOK(d) {
					s.exclude(g)
				}
			}})
		}
	}

	for a := range s.onHost {
		a := a
		for r := range s.onHost[a] {
			r := r
			g := s.onHost[a][r]
			if g < 0 {
				continue
			}
			d := s.domainOf(g)

			// Replica attack.
			if !s.repCorrupt[a][r] && !s.repConvicted[a][r] && s.repRate > 0 {
				rate := s.repRate * (1 + s.assetBoost(d))
				if s.hostStatus[g] > 0 {
					rate *= p.CorruptionMult
				}
				buf = append(buf, transition{rate, func() {
					s.repCorrupt[a][r] = true
					s.undet[a]++
					s.intrusions++
					s.checkByzantine(a)
				}})
			}

			// Replica IDS detection trial.
			if s.repCorrupt[a][r] && !s.repConvicted[a][r] && !s.repDetected[a][r] && p.ReplicaDetectRate > 0 {
				buf = append(buf, transition{p.ReplicaDetectRate, func() {
					s.repDetected[a][r] = true
					if s.repRand(a, r).Bernoulli(p.DetectReplica) {
						s.convict(a, r)
					}
				}})
			}

			// Group conviction of a misbehaving corrupt replica, enabled
			// only while the group has a correct two-thirds quorum.
			if s.repCorrupt[a][r] && !s.repConvicted[a][r] && p.MisbehaveRate > 0 &&
				s.running[a] > 3*s.undet[a] {
				buf = append(buf, transition{p.MisbehaveRate, func() {
					s.convict(a, r)
				}})
			}

			// Replica false alarm, quenched after the first intrusion.
			if s.intrusions == 0 && !s.repCorrupt[a][r] && !s.repConvicted[a][r] && s.repFalseRate > 0 {
				buf = append(buf, transition{s.repFalseRate, func() {
					s.convict(a, r)
				}})
			}
		}

		// Recovery of one killed replica. With a bounded repair crew the
		// exponential service runs only while a crew member is claimed for
		// this app (claims happen instantaneously in drainCrew); unbounded
		// otherwise.
		if p.RepairCrew > 0 {
			if s.inService[a] && s.globalQuorumOK() && s.qualifyingDomainExists(a) {
				buf = append(buf, transition{p.RecoveryRate, func() {
					s.recover(a)
					s.inService[a] = false
					s.crewBusy--
				}})
			}
		} else if s.needRec[a] > 0 && s.globalQuorumOK() && s.qualifyingDomainExists(a) {
			buf = append(buf, transition{p.RecoveryRate, func() {
				s.recover(a)
			}})
		}
	}
	return buf
}

// campaign corrupts a Binomial(CampaignSize, CampaignProb) batch of
// uniformly chosen eligible (uncorrupted, unexcluded) hosts in one event,
// mirroring core's env.campaign activity.
func (s *process) campaign() {
	var eligible []int
	for g := range s.hostStatus {
		if s.hostStatus[g] == 0 && !s.hostExcluded[g] {
			eligible = append(eligible, g)
		}
	}
	rs := s.envRand()
	k := s.p.CampaignSize
	if len(eligible) <= k {
		k = len(eligible)
	} else {
		// Partial Fisher–Yates: the first k entries become a uniform
		// k-subset of the eligible hosts.
		for i := 0; i < k; i++ {
			j := i + rs.Choose(len(eligible)-i)
			eligible[i], eligible[j] = eligible[j], eligible[i]
		}
	}
	for _, g := range eligible[:k] {
		if !rs.Bernoulli(s.p.CampaignProb) {
			continue
		}
		s.hostStatus[g] = 1 + rs.Category(s.pClass[:])
		s.intrusions++
	}
}

// convict marks the replica convicted and applies the pending response
// immediately if the manager quorum permits; otherwise the response fires
// as soon as a later event makes the quorum condition true (checked in
// drainPending).
func (s *process) convict(a, r int) {
	if s.repCorrupt[a][r] {
		s.undet[a]--
	}
	s.repConvicted[a][r] = true
	s.respondIfAble(a, r)
}

// respondIfAble performs the management response to a convicted replica.
func (s *process) respondIfAble(a, r int) {
	g := s.onHost[a][r]
	if g < 0 || !s.repConvicted[a][r] {
		return
	}
	if !s.domainGroupOK(s.domainOf(g)) && !s.globalQuorumOK() {
		return // response pending until quorum recovers
	}
	if s.p.ExcludeOnReplicaConviction {
		s.exclude(g)
		return
	}
	// Restart path: kill only the convicted replica.
	s.killSlot(a, r)
}

// drainPending retries responses for convicted replicas that were blocked
// on manager quorum, then lets the repair crew claim any newly serviceable
// recoveries.
func (s *process) drainPending() {
	for a := range s.onHost {
		for r := range s.onHost[a] {
			if s.repConvicted[a][r] && s.onHost[a][r] >= 0 {
				s.respondIfAble(a, r)
			}
		}
	}
	s.drainCrew()
}

// drainCrew assigns idle repair-crew members to applications with pending,
// serviceable recoveries, in app order (mirroring core's instantaneous
// repair_start activity). At most one crew member serves an app at a time.
func (s *process) drainCrew() {
	if s.p.RepairCrew == 0 {
		return
	}
	for a := range s.inService {
		if s.crewBusy >= s.p.RepairCrew {
			return
		}
		if !s.inService[a] && s.needRec[a] > 0 && s.globalQuorumOK() &&
			s.qualifyingDomainExists(a) {
			s.inService[a] = true
			s.crewBusy++
		}
	}
}

// killSlot removes the replica in slot (a, r) and queues a recovery.
func (s *process) killSlot(a, r int) {
	if s.onHost[a][r] < 0 {
		return
	}
	if s.repCorrupt[a][r] && !s.repConvicted[a][r] {
		s.undet[a]--
	}
	s.onHost[a][r] = -1
	s.repCorrupt[a][r] = false
	s.repConvicted[a][r] = false
	s.repDetected[a][r] = false
	s.running[a]--
	s.needRec[a]++
	s.checkByzantine(a)
}

// exclude applies the configured exclusion policy to host g.
func (s *process) exclude(g int) {
	if s.p.Policy == core.HostExclusion {
		s.exclEvents++
		s.exclCorruptFrac += s.hostCorruptFrac(g, g+1)
		s.excludeHost(g)
		return
	}
	d := s.domainOf(g)
	if s.domExcluded[d] {
		return
	}
	H := s.p.HostsPerDomain
	lo, hi := d*H, (d+1)*H
	s.exclEvents++
	s.exclCorruptFrac += s.hostCorruptFrac(lo, hi)
	for gg := lo; gg < hi; gg++ {
		s.excludeHost(gg)
	}
	s.domExcluded[d] = true
}

// hostCorruptFrac computes the fraction of hosts in [lo, hi) with any
// corrupt component (OS, manager, or a resident replica).
func (s *process) hostCorruptFrac(lo, hi int) float64 {
	corrupt := 0
	for g := lo; g < hi; g++ {
		bad := s.hostStatus[g] > 0 || (s.mgrCorrupt[g] && !s.hostExcluded[g])
		if !bad {
		slots:
			for a := range s.onHost {
				for r := range s.onHost[a] {
					if s.onHost[a][r] == g && s.repCorrupt[a][r] {
						bad = true
						break slots
					}
				}
			}
		}
		if bad {
			corrupt++
		}
	}
	return float64(corrupt) / float64(hi-lo)
}

func (s *process) excludeHost(g int) {
	if s.hostExcluded[g] {
		return
	}
	s.hostExcluded[g] = true
	s.mgrCorrupt[g] = false
	s.mgrRemoved[g] = true
	for a := range s.onHost {
		for r := range s.onHost[a] {
			if s.onHost[a][r] == g {
				s.killSlot(a, r)
			}
		}
	}
}

func (s *process) qualifyingDomainExists(a int) bool {
	for d := range s.domExcluded {
		if s.domainQualifies(a, d) {
			return true
		}
	}
	return false
}

func (s *process) domainQualifies(a, d int) bool {
	if s.domExcluded[d] || s.hasReplica(a, d) {
		return false
	}
	H := s.p.HostsPerDomain
	for h := 0; h < H; h++ {
		if !s.hostExcluded[d*H+h] {
			return true
		}
	}
	return false
}

// recover places one replacement replica of app a on a uniformly chosen
// qualifying domain and a uniformly chosen live host within it.
func (s *process) recover(a int) {
	var doms []int
	for d := range s.domExcluded {
		if s.domainQualifies(a, d) {
			doms = append(doms, d)
		}
	}
	if len(doms) == 0 {
		return
	}
	rs := s.recRand(a)
	g := s.chooseHost(rs, doms[rs.Choose(len(doms))])
	for r := range s.onHost[a] {
		if s.onHost[a][r] < 0 {
			s.onHost[a][r] = g
			s.running[a]++
			s.needRec[a]--
			return
		}
	}
	panic("ituadirect: no free slot during recovery")
}

// run executes the SSA loop up to the last horizon. It polls ctx every 256
// events so cancellation cannot be starved by a high-rate configuration.
func (s *process) run(ctx context.Context, horizons []float64) (Result, error) {
	last := horizons[len(horizons)-1]
	res := Result{
		UnavailTime:         make([]float64, len(horizons)),
		ByzantineBy:         make([]bool, len(horizons)),
		FracDomainsExcluded: make([]float64, len(horizons)),
	}
	now := 0.0
	cum := 0.0 // improper-service time of app 0 accumulated so far
	next := 0  // next horizon index to close out
	events := 0
	var buf []transition

	// record advances time to upto with the state (hence the improper
	// indicator) constant over (now, upto], snapshotting at any horizons
	// crossed.
	record := func(upto float64, improperNow, byz bool) {
		for next < len(horizons) && horizons[next] <= upto {
			h := horizons[next]
			c := cum
			if improperNow {
				c += h - now
			}
			res.UnavailTime[next] = c
			res.ByzantineBy[next] = byz
			res.FracDomainsExcluded[next] = s.fracDomainsExcluded()
			next++
		}
		if improperNow {
			cum += upto - now
		}
		now = upto
	}

	for {
		if events++; events&255 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		buf = s.collect(buf)
		total := 0.0
		for _, tr := range buf {
			total += tr.rate
		}
		if total <= 0 {
			break // absorbed: state frozen until the last horizon
		}
		dt := s.timeRand().Expo(total)
		t := now + dt
		improper := s.improper(0)
		byz := s.grpFail[0]
		if t >= last {
			record(last, improper, byz)
			break
		}
		record(t, improper, byz)
		// choose the transition
		u := s.selectRand().Float64() * total
		acc := 0.0
		idx := len(buf) - 1
		for i, tr := range buf {
			acc += tr.rate
			if u < acc {
				idx = i
				break
			}
		}
		buf[idx].apply()
		s.drainPending()
	}
	// absorbed (or finished): close out remaining horizons
	record(last, s.improper(0), s.grpFail[0])
	for next < len(horizons) {
		res.ByzantineBy[next] = s.grpFail[0]
		res.FracDomainsExcluded[next] = s.fracDomainsExcluded()
		next++
	}
	if s.exclEvents > 0 {
		res.CorruptFracAtExclusion = s.exclCorruptFrac / float64(s.exclEvents)
	} else {
		res.CorruptFracAtExclusion = math.NaN()
	}
	res.RunningAtEnd = s.running[0]
	return res, nil
}

func (s *process) fracDomainsExcluded() float64 {
	if s.p.Policy == core.HostExclusion {
		return 0
	}
	n := 0
	for _, e := range s.domExcluded {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(s.domExcluded))
}
