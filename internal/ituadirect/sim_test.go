package ituadirect

import (
	"context"
	"math"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

func testParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 3
	p.RepsPerApp = 4
	return p
}

func TestNoAttacksNoDamage(t *testing.T) {
	p := testParams()
	p.TotalAttackRate = 0
	p.TotalFalseAlarmRate = 0
	res, err := Run(p, rng.New(1), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnavailTime[0] != 0 || res.UnavailTime[1] != 0 {
		t.Fatalf("unavailability with no attacks: %v", res.UnavailTime)
	}
	if res.ByzantineBy[1] || res.FracDomainsExcluded[1] != 0 {
		t.Fatal("damage with no attacks")
	}
	if res.RunningAtEnd != p.RepsPerApp {
		t.Fatalf("running = %d", res.RunningAtEnd)
	}
}

func TestRunValidation(t *testing.T) {
	p := testParams()
	p.NumDomains = 0
	if _, err := Run(p, rng.New(1), []float64{1}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := Run(testParams(), rng.New(1), nil); err == nil {
		t.Fatal("empty horizons accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := testParams()
	a, err := Run(p, rng.New(99), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, rng.New(99), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if a.UnavailTime[0] != b.UnavailTime[0] || a.RunningAtEnd != b.RunningAtEnd {
		t.Fatal("same seed produced different trajectories")
	}
}

func TestStateConsistencyAfterRun(t *testing.T) {
	// White-box: after many runs, internal counters must match recounts.
	root := rng.New(7)
	for i := 0; i < 200; i++ {
		p := testParams()
		if i%2 == 1 {
			p.Policy = core.HostExclusion
		}
		s := newSim(p, root.Derive(uint64(i)), Opts{CRN: i%4 >= 2})
		if _, err := s.run(context.Background(), []float64{8}); err != nil {
			t.Fatal(err)
		}
		for a := range s.onHost {
			running, undet := 0, 0
			for r := range s.onHost[a] {
				g := s.onHost[a][r]
				if g < 0 {
					continue
				}
				running++
				if s.hostExcluded[g] {
					t.Fatalf("rep %d/%d on excluded host", a, r)
				}
				if s.repCorrupt[a][r] && !s.repConvicted[a][r] {
					undet++
				}
			}
			if running != s.running[a] || undet != s.undet[a] {
				t.Fatalf("rep %d: counted running=%d undet=%d, tracked %d/%d",
					a, running, undet, s.running[a], s.undet[a])
			}
		}
		for d := range s.domExcluded {
			if !s.domExcluded[d] {
				continue
			}
			for h := 0; h < p.HostsPerDomain; h++ {
				if !s.hostExcluded[d*p.HostsPerDomain+h] {
					t.Fatal("excluded domain has live host")
				}
			}
		}
	}
}

// aggregate runs the direct simulator nReps times and returns accumulators
// for unavailability over [0,T], unreliability by T, and fraction of
// domains excluded at T.
func aggregate(t *testing.T, p core.Params, nReps int, T float64, seed uint64) (unavail, unrel, excl, corrFrac *stats.Accumulator) {
	t.Helper()
	root := rng.New(seed)
	unavail, unrel, excl, corrFrac = &stats.Accumulator{}, &stats.Accumulator{}, &stats.Accumulator{}, &stats.Accumulator{}
	for i := 0; i < nReps; i++ {
		res, err := Run(p, root.Derive(uint64(i)), []float64{T})
		if err != nil {
			t.Fatal(err)
		}
		unavail.Add(res.UnavailTime[0] / T)
		if res.ByzantineBy[0] {
			unrel.Add(1)
		} else {
			unrel.Add(0)
		}
		excl.Add(res.FracDomainsExcluded[0])
		if !math.IsNaN(res.CorruptFracAtExclusion) {
			corrFrac.Add(res.CorruptFracAtExclusion)
		}
	}
	return unavail, unrel, excl, corrFrac
}

// TestAgreesWithSANModel is the X1 cross-validation experiment: the SAN
// encoding (internal/core + internal/sim) and this direct SSA encoding of
// the ITUA process must agree on every measure within statistical error.
func TestAgreesWithSANModel(t *testing.T) {
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := testParams()
		p.Policy = policy
		const T, reps = 6.0, 3000

		m, err := core.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		sanRes, err := sim.Run(sim.Spec{
			Model: m.SAN, Until: T, Reps: reps, Seed: 1001,
			Vars: []reward.Var{
				m.Unavailability("unavail", 0, 0, T),
				m.Unreliability("unrel", 0, T),
				m.FracDomainsExcluded("excl", T),
				m.FracCorruptHostsAtExclusion("corrfrac", T),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		dUnavail, dUnrel, dExcl, dCorr := aggregate(t, p, reps, T, 2002)

		compare := func(name string, san sim.Estimate, direct *stats.Accumulator) {
			t.Helper()
			if direct.N() == 0 && san.N == 0 {
				return
			}
			tol := 3*(san.HalfWidth95+direct.HalfWidth(0.95)) + 0.01
			if diff := math.Abs(san.Mean - direct.Mean()); diff > tol {
				t.Errorf("%s policy %v: SAN %v vs direct %v (diff %v > tol %v)",
					name, policy, san.Mean, direct.Mean(), diff, tol)
			}
		}
		compare("unavailability", sanRes.MustGet("unavail"), dUnavail)
		compare("unreliability", sanRes.MustGet("unrel"), dUnrel)
		compare("fracDomainsExcluded", sanRes.MustGet("excl"), dExcl)
		if policy == core.DomainExclusion {
			compare("corruptFracAtExclusion", sanRes.MustGet("corrfrac"), dCorr)
		}
	}
}

func TestAgreementUnderStress(t *testing.T) {
	// High spread + host exclusion, the regime of study 3.
	p := testParams()
	p.Policy = core.HostExclusion
	p.DomainSpreadRate = 8
	p.CorruptionMult = 5
	const T, reps = 6.0, 3000

	m, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	sanRes, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: T, Reps: reps, Seed: 31,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dUnavail, dUnrel, _, _ := aggregate(t, p, reps, T, 32)
	for _, c := range []struct {
		name   string
		san    sim.Estimate
		direct *stats.Accumulator
	}{
		{"unavailability", sanRes.MustGet("unavail"), dUnavail},
		{"unreliability", sanRes.MustGet("unrel"), dUnrel},
	} {
		tol := 3*(c.san.HalfWidth95+c.direct.HalfWidth(0.95)) + 0.01
		if diff := math.Abs(c.san.Mean - c.direct.Mean()); diff > tol {
			t.Errorf("%s: SAN %v vs direct %v (diff %v > tol %v)",
				c.name, c.san.Mean, c.direct.Mean(), diff, tol)
		}
	}
}
