package ituadirect

import (
	"context"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/rng"
	"ituaval/internal/stats"
)

func crnParams(policy core.Policy) core.Params {
	p := core.DefaultParams()
	p.NumDomains = 6
	p.HostsPerDomain = 2
	p.NumApps = 2
	p.RepsPerApp = 5
	p.CorruptionMult = 5
	p.DomainSpreadRate = 2
	p.Policy = policy
	return p
}

func TestCRNDeterministicForSeed(t *testing.T) {
	p := crnParams(core.DomainExclusion)
	a, err := RunContextOpts(context.Background(), p, rng.New(55), []float64{4}, Opts{CRN: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContextOpts(context.Background(), p, rng.New(55), []float64{4}, Opts{CRN: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.UnavailTime[0] != b.UnavailTime[0] || a.RunningAtEnd != b.RunningAtEnd ||
		a.ByzantineBy[0] != b.ByzantineBy[0] {
		t.Fatal("CRN run is not deterministic for a fixed seed")
	}
}

// TestCRNRoleStability pins the role isolation property on the direct
// backend, white-box. A host's attack class is the first draw of its own
// "host[g]" role substream (the class Category precedes the host's
// detection Bernoulli, which is only enabled after corruption), so under
// CRN any host that gets corrupted under *both* exclusion policies must be
// assigned the same class in both runs — no matter how differently the two
// trajectories unfold around it. Under single-stream sampling that
// alignment is lost as soon as the trajectories diverge, which the second
// half of the test demonstrates as a control.
func TestCRNRoleStability(t *testing.T) {
	classesMatch := func(crn bool, seeds int) (common, mismatched int) {
		dom := crnParams(core.DomainExclusion)
		host := crnParams(core.HostExclusion)
		for i := 0; i < seeds; i++ {
			o := Opts{CRN: crn}
			sa := newSim(dom, rng.New(900).Derive(uint64(i)), o)
			if _, err := sa.run(context.Background(), []float64{4}); err != nil {
				t.Fatal(err)
			}
			sb := newSim(host, rng.New(900).Derive(uint64(i)), o)
			if _, err := sb.run(context.Background(), []float64{4}); err != nil {
				t.Fatal(err)
			}
			for g := range sa.hostStatus {
				if sa.hostStatus[g] > 0 && sb.hostStatus[g] > 0 {
					common++
					if sa.hostStatus[g] != sb.hostStatus[g] {
						mismatched++
					}
				}
			}
		}
		return common, mismatched
	}

	common, mismatched := classesMatch(true, 50)
	if common < 50 {
		t.Fatalf("only %d hosts corrupted under both policies; test has no power", common)
	}
	if mismatched != 0 {
		t.Fatalf("CRN: %d of %d commonly-corrupted hosts drew different attack classes", mismatched, common)
	}
	// Control: without role streams the alignment must break, otherwise
	// this test asserts nothing.
	if common, mismatched = classesMatch(false, 50); mismatched == 0 {
		t.Fatalf("single-stream control matched all %d classes; the assertion is vacuous", common)
	}
}

// TestCRNPairsPolicies checks the variance-reduction payoff on the direct
// backend: pairing host- against domain-exclusion on CRN streams must
// leave the per-replication unavailability strongly positively correlated,
// shrinking the delta variance well below the independent design.
func TestCRNPairsPolicies(t *testing.T) {
	const reps = 300
	const horizon = 4.0
	dom := crnParams(core.DomainExclusion)
	host := crnParams(core.HostExclusion)
	ua := make([]float64, reps)
	ub := make([]float64, reps)
	for i := 0; i < reps; i++ {
		ra, err := RunContextOpts(context.Background(), host, rng.New(77).Derive(uint64(i)), []float64{horizon}, Opts{CRN: true})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunContextOpts(context.Background(), dom, rng.New(77).Derive(uint64(i)), []float64{horizon}, Opts{CRN: true})
		if err != nil {
			t.Fatal(err)
		}
		ua[i] = ra.UnavailTime[0] / horizon
		ub[i] = rb.UnavailTime[0] / horizon
	}
	pr, err := stats.PairedT(ua, ub, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Corr < 0.5 {
		t.Fatalf("CRN pairing left unavailability correlation at %v, want strongly positive", pr.Corr)
	}
	if pr.VRF < 2 {
		t.Fatalf("variance reduction factor %v < 2 (corr %v)", pr.VRF, pr.Corr)
	}
}
