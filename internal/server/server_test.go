package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ituaval/internal/scenario"
	"ituaval/internal/study"
)

// tinyScenario is a fast fixed-replication scenario: the 2-domain analytic
// topology, two sweep points, ~30 ms of simulation.
func tinyScenario(name string, seed uint64) string {
	return fmt.Sprintf(`{"name":%q,"model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2,"corruptionMult":5},
		"horizon":2,"measures":[{"name":"u","kind":"unavailability"},{"name":"r","kind":"unreliability"}],
		"sweep":{"x":{"param":"domainSpreadRate","values":[0,4]}},
		"run":{"reps":40,"seed":%d}}`, name, seed)
}

// precisionScenario runs its points sequentially (precision mode with an
// immediately met absolute target), which makes checkpoint/shutdown timing
// deterministic: point i is persisted before the test hook for point i runs.
func precisionScenario() string {
	return `{"name":"precise","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2,"corruptionMult":5},
		"horizon":2,"measures":[{"name":"u","kind":"unavailability"}],
		"sweep":{"x":{"param":"domainSpreadRate","values":[0,4,8]}},
		"run":{"reps":10,"seed":3,"targetAbsHW":1000}}`
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamEvents reads a job's NDJSON stream to the end and returns the raw
// event lines.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []json.RawMessage
	dec := json.NewDecoder(resp.Body)
	for {
		var ev json.RawMessage
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return events
			}
			t.Fatalf("stream decode: %v", err)
		}
		events = append(events, ev)
	}
}

func eventType(ev json.RawMessage) string {
	var head struct {
		Type string `json:"type"`
	}
	_ = json.Unmarshal(ev, &head)
	return head.Type
}

func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, raw)
	}
	return raw
}

// TestCacheBitIdentical is the service's core guarantee: a resubmitted
// scenario is served from the cache, and the cached bytes are identical to
// the fresh response — and to an independent in-process recomputation.
func TestCacheBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := tinyScenario("cachecheck", 11)

	st := submit(t, ts, body)
	if st.Cached || st.State == stateDone {
		t.Fatalf("first submission claims cached: %+v", st)
	}
	events := streamEvents(t, ts, st.ID)
	last := events[len(events)-1]
	if eventType(last) != "result" {
		t.Fatalf("stream did not end in a result event: %s", last)
	}
	fresh := getResult(t, ts, st.ID)

	st2 := submit(t, ts, body)
	if !st2.Cached || st2.ID != st.ID {
		t.Fatalf("resubmission not served from cache: %+v", st2)
	}
	again := getResult(t, ts, st2.ID)
	if !bytes.Equal(fresh, again) {
		t.Fatal("cached result differs from fresh result")
	}

	// The cached stream's terminal frame embeds the same bytes.
	var terminal resultEvent
	if err := json.Unmarshal(last, &terminal); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(terminal.Result, fresh) {
		t.Fatal("streamed result differs from served result")
	}

	// Independent recomputation (no server, no cache) must reproduce the
	// document byte-for-byte: content addressing is sound only because the
	// computation is deterministic.
	sc, err := scenario.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	c, err := scenario.Compile(sc, scenario.Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := c.Run(context.Background(), study.Config{Workers: 3}, study.SweepHooks{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(resultDoc{Hash: c.Hash(), Scenario: c.Canonical(), Figure: fig})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, fresh) {
		t.Fatalf("server result differs from independent recomputation\nserver: %s\nlocal:  %s", fresh, doc)
	}
}

// TestConcurrentJobsStream: two different jobs submitted together must both
// stream progress and complete (the serve-smoke lane asserts the same
// end-to-end through a real ituad process).
func TestConcurrentJobsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{JobConcurrency: 2})
	a := submit(t, ts, tinyScenario("job-a", 21))
	b := submit(t, ts, tinyScenario("job-b", 22))
	if a.ID == b.ID {
		t.Fatal("distinct scenarios collided on one id")
	}
	var wg sync.WaitGroup
	results := make([][]json.RawMessage, 2)
	for i, id := range []string{a.ID, b.ID} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = streamEvents(t, ts, id)
		}()
	}
	wg.Wait()
	for i, events := range results {
		kinds := map[string]int{}
		for _, ev := range events {
			kinds[eventType(ev)]++
		}
		if kinds["started"] != 1 || kinds["result"] != 1 {
			t.Errorf("job %d event mix: %v", i, kinds)
		}
		if kinds["progress"] == 0 || kinds["point"] != 2 {
			t.Errorf("job %d missing progress/point events: %v", i, kinds)
		}
	}
}

// TestStreamReplay: a subscriber that connects after completion sees the
// identical event sequence an early subscriber saw.
func TestStreamReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, tinyScenario("replay", 31))
	early := streamEvents(t, ts, st.ID)
	late := streamEvents(t, ts, st.ID)
	if len(early) != len(late) {
		t.Fatalf("replay length: early %d, late %d", len(early), len(late))
	}
	for i := range early {
		if !bytes.Equal(early[i], late[i]) {
			t.Fatalf("replay event %d differs:\nearly: %s\nlate:  %s", i, early[i], late[i])
		}
	}
}

// TestStreamSSE checks the Server-Sent Events framing of the same stream.
func TestStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, tinyScenario("sse", 41))
	streamEvents(t, ts, st.ID) // wait for completion

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "event: result\ndata: {\"type\":\"result\"") {
		t.Fatalf("SSE framing missing result frame:\n%s", raw)
	}
}

func TestSubmitRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for label, body := range map[string]string{
		"not a scenario": `{"bogus":true}`,
		"zero topology":  `{"name":"x","model":{"domains":0,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`,
		"garbage":        `}{`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", label, resp.Status)
		}
	}
}

func TestStudiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []studyInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(study.IDs()) {
		t.Fatalf("%d studies listed, want %d", len(infos), len(study.IDs()))
	}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("study %q has no description", info.ID)
		}
	}
}

// TestGracefulShutdownResume is the service's durability story end to end:
// a server shut down mid-job leaves the spec and the finished points'
// checkpoint on disk; a new server on the same data dir re-queues the job,
// restores the finished points without resimulating, and produces a result
// byte-identical to an uninterrupted run — including the per-point
// completed/failed/skipped accounting.
func TestGracefulShutdownResume(t *testing.T) {
	dataDir := t.TempDir()
	body := precisionScenario()

	// Uninterrupted reference on a separate data dir.
	_, refTS := newTestServer(t, Config{})
	refSt := submit(t, refTS, body)
	streamEvents(t, refTS, refSt.ID)
	want := getResult(t, refTS, refSt.ID)

	// Interrupted run: the test hook pauses the job after its first point
	// (already checkpointed by then) while Shutdown runs.
	firstPoint := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s1, ts1 := newTestServer(t, Config{
		DataDir: dataDir,
		testAfterPoint: func(string, int) {
			once.Do(func() { close(firstPoint) })
			<-release
		},
	})
	st := submit(t, ts1, body)
	if st.ID != refSt.ID {
		t.Fatalf("content address differs across servers: %s vs %s", st.ID, refSt.ID)
	}
	<-firstPoint
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s1.Shutdown(ctx)
	}()
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts1.Close()
	if _, err := os.Stat(s1.specPath(st.ID)); err != nil {
		t.Fatalf("interrupted job's spec not persisted: %v", err)
	}
	if _, err := os.Stat(s1.checkpointPath(st.ID)); err != nil {
		t.Fatalf("interrupted job's checkpoint missing: %v", err)
	}
	if state, _ := s1.lookup(st.ID).snapshot(); state != stateInterrupted {
		t.Fatalf("job state after shutdown: %s, want %s", state, stateInterrupted)
	}

	// Restart on the same data dir: the job re-queues and resumes.
	_, ts2 := newTestServer(t, Config{DataDir: dataDir})
	events := streamEvents(t, ts2, st.ID)
	var started startedEvent
	for _, ev := range events {
		if eventType(ev) == "started" {
			if err := json.Unmarshal(ev, &started); err != nil {
				t.Fatal(err)
			}
		}
	}
	if started.Resumed < 1 {
		t.Errorf("resumed run restored %d points from the checkpoint, want >= 1", started.Resumed)
	}
	got := getResult(t, ts2, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run\nresumed: %s\nfresh:   %s", got, want)
	}
}

// TestCancel: cancelling a running job retires it without caching a result,
// and a resubmission runs it again.
func TestCancel(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, Config{
		testAfterPoint: func(string, int) {
			once.Do(func() { close(blocked) })
			<-release
		},
	})
	st := submit(t, ts, precisionScenario())
	<-blocked
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		state, _ := s.lookup(st.ID).snapshot()
		if state == stateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s after cancel", state)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.cacheHas(st.ID) {
		t.Fatal("cancelled job left a cache entry")
	}
	if _, err := os.Stat(s.specPath(st.ID)); err == nil {
		t.Fatal("cancelled job left its spec persisted")
	}
}
