package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"ituaval/internal/study"
)

// routes wires the API surface:
//
//	GET    /v1/healthz          liveness
//	GET    /v1/studies          registered experiments with descriptions
//	POST   /v1/jobs             submit a scenario (JSON or YAML)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/stream progress stream (NDJSON; SSE via Accept)
//	GET    /v1/jobs/{id}/result finished result document (cache bytes)
//	DELETE /v1/jobs/{id}        cancel a queued/running job
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/studies", s.handleStudies)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// studyInfo is one row of GET /v1/studies — the same registry listing
// `figures -list` prints.
type studyInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

func (s *Server) handleStudies(w http.ResponseWriter, _ *http.Request) {
	infos := make([]studyInfo, 0)
	for _, id := range study.IDs() {
		infos = append(infos, studyInfo{ID: id, Description: study.Describe(id)})
	}
	writeJSON(w, http.StatusOK, infos)
}

// jobStatus is the status document of one job.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Error     string `json:"error,omitempty"`
	RepsDone  int64  `json:"repsDone"`
	TotalReps int64  `json:"totalReps"`
	Points    int    `json:"points"`
}

func (s *Server) statusOf(j *job) jobStatus {
	state, errMsg := j.snapshot()
	return jobStatus{
		ID:        j.id,
		State:     state,
		Error:     errMsg,
		RepsDone:  j.repsDone.Load(),
		TotalReps: j.totalReps,
		Points:    len(j.compiled.Points),
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	j, id, cached, err := s.admit(body)
	switch {
	case errors.Is(err, errQueueFull) || errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if cached {
		writeJSON(w, http.StatusOK, jobStatus{ID: id, State: stateDone, Cached: true})
		return
	}
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.statusOf(j))
	}
	// Deterministic listing order (ids are content hashes).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j := s.lookup(id); j != nil {
		writeJSON(w, http.StatusOK, s.statusOf(j))
		return
	}
	if s.cacheHas(id) {
		writeJSON(w, http.StatusOK, jobStatus{ID: id, State: stateDone, Cached: true})
		return
	}
	writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if doc := s.cacheGet(id); doc != nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(doc)
		return
	}
	if j := s.lookup(id); j != nil {
		writeError(w, http.StatusConflict, errors.New("job "+id+" has not finished"))
		return
	}
	writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

// handleStream serves the job's full event log and then follows it live
// until the job reaches a terminal state. The default framing is NDJSON
// (one event object per line); clients sending Accept: text/event-stream
// get Server-Sent Events with the event type mirrored into the SSE event
// field. Every subscriber sees the identical sequence regardless of when
// it connected, because events replay from the job's append-only log.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	j := s.lookup(id)
	if j == nil {
		if doc := s.cacheGet(id); doc != nil {
			// A cache-served job streams as a single terminal event — the
			// same final frame a live subscriber would have seen.
			ev, _ := json.Marshal(resultEvent{Type: "result", Job: id, Cached: true, Result: doc})
			writeStreamHeader(w, sse)
			writeStreamEvent(w, sse, ev)
			return
		}
		writeError(w, http.StatusNotFound, errors.New("unknown job "+id))
		return
	}
	writeStreamHeader(w, sse)
	flusher, _ := w.(http.Flusher)
	// cond.Wait cannot watch the request context directly; a cancellation
	// callback wakes the waiters so the loop can notice and drop out.
	stopWake := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stopWake()
	idx := 0
	for {
		events, done := j.wait(r.Context(), idx)
		for _, ev := range events {
			writeStreamEvent(w, sse, ev)
		}
		idx += len(events)
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if r.Context().Err() != nil {
			return
		}
		if done {
			j.mu.Lock()
			remaining := len(j.events) - idx
			j.mu.Unlock()
			if remaining == 0 {
				return
			}
		}
	}
}

func writeStreamHeader(w http.ResponseWriter, sse bool) {
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// writeStreamEvent frames one event. SSE frames carry the event's type in
// the SSE event field (parsed cheaply from the payload, which always
// starts {"type":"...").
func writeStreamEvent(w http.ResponseWriter, sse bool, ev json.RawMessage) {
	if !sse {
		_, _ = w.Write(append(ev, '\n'))
		return
	}
	var head struct {
		Type string `json:"type"`
	}
	_ = json.Unmarshal(ev, &head)
	_, _ = w.Write([]byte("event: " + head.Type + "\ndata: "))
	_, _ = w.Write(ev)
	_, _ = w.Write([]byte("\n\n"))
}
