package server

// Serve-smoke: an end-to-end exercise of the real ituad binary over a real
// TCP socket, run by `make serve-smoke` (gated behind SERVE_SMOKE=1 so the
// ordinary unit-test lane stays fast). It builds cmd/ituad, starts it,
// submits two concurrent jobs whose streams must both terminate in a
// result, proves a resubmission is a byte-identical cache hit, then stops
// the daemon with SIGTERM and proves the cache survives a restart.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestServeSmoke(t *testing.T) {
	if os.Getenv("SERVE_SMOKE") == "" {
		t.Skip("set SERVE_SMOKE=1 (make serve-smoke) to run the ituad end-to-end smoke")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ituad")
	build := exec.Command("go", "build", "-o", bin, "ituaval/cmd/ituad")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building ituad: %v", err)
	}
	dataDir := filepath.Join(dir, "data")
	addr := freeAddr(t)

	daemon := startDaemon(t, bin, addr, dataDir)
	waitHealthy(t, addr)

	// Two concurrent jobs; both streams must terminate in a result event.
	jobs := []string{tinyScenario("smoke-a", 101), tinyScenario("smoke-b", 102)}
	ids := make([]string, len(jobs))
	for i, body := range jobs {
		ids[i] = smokeSubmit(t, addr, body, false)
	}
	if ids[0] == ids[1] {
		t.Fatal("distinct scenarios collided on one content address")
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			events := smokeStream(t, addr, id)
			if len(events) == 0 || eventType(events[len(events)-1]) != "result" {
				t.Errorf("job %s: stream did not terminate in a result", id)
			}
		}()
	}
	wg.Wait()

	// Cache hit: resubmission answers done+cached and serves the identical
	// bytes the fresh run produced.
	fresh := smokeResult(t, addr, ids[0])
	if id := smokeSubmit(t, addr, jobs[0], true); id != ids[0] {
		t.Fatalf("cache hit under a different id: %s vs %s", id, ids[0])
	}
	if again := smokeResult(t, addr, ids[0]); !bytes.Equal(fresh, again) {
		t.Fatal("cached result differs from fresh result")
	}

	// Graceful stop and restart: SIGTERM must exit cleanly and the cache
	// must survive into the next daemon.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("ituad did not exit cleanly on SIGTERM: %v", err)
	}
	daemon2 := startDaemon(t, bin, addr, dataDir)
	defer func() {
		_ = daemon2.Process.Signal(syscall.SIGTERM)
		_ = daemon2.Wait()
	}()
	waitHealthy(t, addr)
	if id := smokeSubmit(t, addr, jobs[0], true); id != ids[0] {
		t.Fatalf("restarted daemon lost the cache: %s vs %s", id, ids[0])
	}
	if after := smokeResult(t, addr, ids[0]); !bytes.Equal(fresh, after) {
		t.Fatal("result differs across daemon restarts")
	}
}

func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-jobs", "2", "-workers", "2")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// freeAddr reserves a localhost port by briefly listening on it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("ituad did not become healthy on %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func smokeSubmit(t *testing.T, addr, body string, wantCached bool) string {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cached != wantCached {
		t.Fatalf("submit cached=%v, want %v (%s)", st.Cached, wantCached, raw)
	}
	return st.ID
}

func smokeStream(t *testing.T, addr, id string) []json.RawMessage {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s/stream", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []json.RawMessage
	dec := json.NewDecoder(resp.Body)
	for {
		var ev json.RawMessage
		if err := dec.Decode(&ev); err != nil {
			return events
		}
		events = append(events, ev)
	}
}

func smokeResult(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/jobs/%s/result", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, raw)
	}
	return raw
}
