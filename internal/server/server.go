// Package server is the study-as-a-service layer: a long-running HTTP
// service that accepts declarative scenarios (internal/scenario), runs them
// on the flattened simulation worker pool (internal/study, internal/sim),
// streams progress while they run, and serves finished results from a
// content-addressed cache.
//
// The scenario's content address (SHA-256 of its canonical form) is the job
// id, the cache key, and the checkpoint key all at once. That single
// identity gives the service its three core guarantees:
//
//   - identical submissions coalesce: a scenario already running gains
//     subscribers instead of a second run, and a scenario already computed
//     is served from the cache, byte-identical to the fresh response;
//   - interrupted work resumes: queued specs persist to disk and running
//     jobs checkpoint per sweep point (hash-chained JSONL, internal/study),
//     so a restarted server re-queues the interrupted job and recomputes
//     only the unfinished points — with bit-identical results, because
//     seeds derive from the content-addressed spec, not from wall time;
//   - results are reproducible: two servers given the same scenario bytes
//     produce the same result bytes, which is what makes caching sound.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ituaval/internal/scenario"
	"ituaval/internal/study"
)

// Config configures a Server. The zero value is usable with a DataDir.
type Config struct {
	// DataDir is the service's durable state: cache/ (finished results,
	// content-addressed), jobs/ (pending specs, re-queued on restart), and
	// checkpoints/ (per-job sweep checkpoints). Required.
	DataDir string
	// Workers bounds each job's simulation parallelism (0 = all cores).
	Workers int
	// JobConcurrency is the number of jobs running at once (default 2).
	JobConcurrency int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// rejected with 503 (default 64).
	QueueDepth int
	// DefaultReps and DefaultSeed fill a scenario's run block when it
	// leaves them zero (defaults 2000 and 1, see scenario.Defaults).
	DefaultReps int
	DefaultSeed uint64
	// MaxBodyBytes bounds a submission body (default 1 MiB).
	MaxBodyBytes int64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// testAfterPoint, when non-nil, runs synchronously after each point
	// event of a running job — a deterministic pause for shutdown tests.
	testAfterPoint func(jobID string, point int)
}

func (c Config) withDefaults() Config {
	if c.JobConcurrency <= 0 {
		c.JobConcurrency = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server is the study job service. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	queue  chan *job
	closed bool

	runners sync.WaitGroup
}

// New creates the service, re-queues any specs a previous server left in
// DataDir/jobs (interrupted work), and starts the job runners.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: Config.DataDir is required")
	}
	for _, d := range []string{cfg.cacheDir(), cfg.jobsDir(), cfg.checkpointDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg:   cfg,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.routes()
	if err := s.requeuePersisted(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.JobConcurrency; i++ {
		s.runners.Add(1)
		go s.runner()
	}
	return s, nil
}

func (c Config) cacheDir() string      { return filepath.Join(c.DataDir, "cache") }
func (c Config) jobsDir() string       { return filepath.Join(c.DataDir, "jobs") }
func (c Config) checkpointDir() string { return filepath.Join(c.DataDir, "checkpoints") }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops the service gracefully: no new submissions, running jobs
// are cancelled (their finished points are already checkpointed and their
// specs stay persisted, so the next server resumes them), and the runners
// drain. It returns ctx's error if the drain outlives it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if !alreadyClosed {
		s.stop()       // cancels every running job's context
		close(s.queue) // runners exit once the queue drains
	}
	done := make(chan struct{})
	go func() { s.runners.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requeuePersisted re-queues the specs in DataDir/jobs — work a previous
// server accepted but did not finish.
func (s *Server) requeuePersisted() error {
	entries, err := os.ReadDir(s.cfg.jobsDir())
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.cfg.jobsDir(), name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		j, _, _, err := s.admit(data)
		if err != nil {
			// A spec this server version no longer accepts must not wedge
			// startup forever; quarantine it and move on.
			s.logf("server: dropping persisted job %s: %v", name, err)
			_ = os.Rename(path, path+".rejected")
			continue
		}
		if j != nil {
			s.logf("server: resuming interrupted job %s", j.id)
		}
	}
	return nil
}

// admit parses, compiles, and enqueues one scenario. It returns the job
// (nil when the result was already cached), the job's content address, and
// whether the response is served from cache.
func (s *Server) admit(body []byte) (j *job, id string, cached bool, err error) {
	sc, err := scenario.Parse(body)
	if err != nil {
		return nil, "", false, err
	}
	c, err := scenario.Compile(sc, scenario.Defaults{Reps: s.cfg.DefaultReps, Seed: s.cfg.DefaultSeed})
	if err != nil {
		return nil, "", false, err
	}
	id = c.Hash()
	if s.cacheHas(id) {
		return nil, id, true, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, id, false, errShuttingDown
	}
	if prev, ok := s.jobs[id]; ok {
		state, _ := prev.snapshot()
		if state != stateFailed && state != stateCancelled && state != stateInterrupted {
			return prev, id, false, nil // coalesce onto the existing run
		}
		// A terminal non-success job resubmitted: fall through to retry.
	}
	j = newJob(id, c, c.Canonical())
	if err := s.persistSpec(j); err != nil {
		return nil, id, false, err
	}
	select {
	case s.queue <- j:
	default:
		_ = os.Remove(s.specPath(id))
		return nil, id, false, errQueueFull
	}
	s.jobs[id] = j
	j.emit(queuedEvent{Type: "queued", Job: id})
	return j, id, false, nil
}

var (
	errQueueFull    = errors.New("job queue is full")
	errShuttingDown = errors.New("server is shutting down")
)

func (s *Server) specPath(id string) string {
	return filepath.Join(s.cfg.jobsDir(), id+".json")
}

func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.checkpointDir(), id+".jsonl")
}

func (s *Server) cachePath(id string) string {
	return filepath.Join(s.cfg.cacheDir(), id+".json")
}

// persistSpec writes the job's canonical spec durably before the job is
// queued, so an accepted job survives a crash.
func (s *Server) persistSpec(j *job) error {
	return writeFileAtomic(s.specPath(j.id), j.canonical)
}

func (s *Server) cacheHas(id string) bool {
	_, err := os.Stat(s.cachePath(id))
	return err == nil
}

// cacheGet returns the cached result document, or nil.
func (s *Server) cacheGet(id string) []byte {
	data, err := os.ReadFile(s.cachePath(id))
	if err != nil {
		return nil
	}
	return data
}

// writeFileAtomic writes via a temp file + rename, so readers never see a
// torn result and a crash never leaves a half-written cache entry.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// runner consumes the job queue until Shutdown closes it.
func (s *Server) runner() {
	defer s.runners.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// resultDoc is the cached result document — the terminal payload of a job.
// It contains nothing non-deterministic (no timestamps, no host identity),
// so a fresh computation and a cache hit are byte-identical, and so are two
// independent servers given the same scenario bytes.
type resultDoc struct {
	Hash     string          `json:"hash"`
	Scenario json.RawMessage `json:"scenario"`
	Figure   *study.Figure   `json:"figure"`
}

// runJob executes one job to a terminal state. Finished sweep points
// checkpoint as they complete; on success the result document is written
// to the cache and the spec and checkpoint are retired.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.mu.Lock()
	if j.state == stateCancelled {
		// Cancelled while still queued; already tombstoned.
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.state = stateRunning
	j.mu.Unlock()
	if err := ctx.Err(); err != nil {
		// Shut down before the job started: leave the spec for the next
		// server.
		j.setState(stateInterrupted, err.Error())
		j.close()
		return
	}

	ck, err := study.OpenCheckpoint(s.checkpointPath(j.id), true)
	if err != nil {
		s.finishError(j, err)
		return
	}
	if rec := ck.Recovery(); rec.Damaged() {
		s.logf("server: job %s checkpoint recovery: %s", j.id, rec.String())
	}
	cfg := j.compiled.Config(study.Config{
		Workers:    s.cfg.Workers,
		Checkpoint: ck,
		Warnf: func(format string, args ...any) {
			s.logf("server: job %s: "+format, append([]any{j.id}, args...)...)
		},
	})
	j.emit(startedEvent{
		Type:      "started",
		Job:       j.id,
		Points:    len(j.compiled.Points),
		TotalReps: j.totalReps,
		Resumed:   ck.Len(),
	})

	// Progress granularity: ~200 events per job, never more than one per
	// replication.
	every := int64(1)
	if j.totalReps > 200 {
		every = j.totalReps / 200
	}
	hooks := study.SweepHooks{
		OnRep: func(int) {
			done := j.repsDone.Add(1)
			if done%every == 0 || done == j.totalReps {
				j.emit(progressEvent{Type: "progress", Job: j.id, RepsDone: done, TotalReps: j.totalReps})
			}
		},
		OnPoint: func(point int, pr *study.PointResult) {
			ev := pointEvent{
				Type:      "point",
				Job:       j.id,
				Point:     point,
				Label:     j.compiled.Points[point].Label,
				Measures:  make(map[string]measureEstimate, len(pr.Est)),
				Reps:      pr.Reps,
				Completed: pr.Completed,
				Failed:    pr.Failed,
				Skipped:   pr.Skipped,
			}
			for name, est := range pr.Est {
				ev.Measures[name] = measureEstimate{Mean: est.Mean, HalfWidth95: est.HalfWidth95, N: est.N}
			}
			j.emit(ev)
			if s.cfg.testAfterPoint != nil {
				s.cfg.testAfterPoint(j.id, point)
			}
		},
	}

	fig, err := j.compiled.Run(ctx, cfg, hooks)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled. Under server shutdown the spec stays persisted and
			// the checkpoint holds every finished point — the next server
			// resumes right here. An explicit DELETE retires both.
			if s.baseCtx.Err() != nil {
				j.setState(stateInterrupted, ctx.Err().Error())
				j.close()
				return
			}
			_ = os.Remove(s.specPath(j.id))
			_ = os.Remove(s.checkpointPath(j.id))
			j.setState(stateCancelled, "cancelled")
			j.emit(errorEvent{Type: "error", Job: j.id, Error: "cancelled"})
			j.close()
			return
		}
		_ = os.Remove(s.specPath(j.id))
		s.finishError(j, err)
		return
	}

	doc, err := json.Marshal(resultDoc{Hash: j.id, Scenario: j.canonical, Figure: fig})
	if err != nil {
		s.finishError(j, err)
		return
	}
	if err := writeFileAtomic(s.cachePath(j.id), doc); err != nil {
		s.finishError(j, err)
		return
	}
	_ = os.Remove(s.specPath(j.id))
	_ = os.Remove(s.checkpointPath(j.id))
	j.setState(stateDone, "")
	j.emit(resultEvent{Type: "result", Job: j.id, Cached: false, Result: doc})
	j.close()
	s.logf("server: job %s done (%d points)", j.id, len(j.compiled.Points))
}

func (s *Server) finishError(j *job, err error) {
	s.logf("server: job %s failed: %v", j.id, err)
	j.setState(stateFailed, err.Error())
	j.emit(errorEvent{Type: "error", Job: j.id, Error: err.Error()})
	j.close()
}

// cancelJob cancels a queued or running job on user request.
func (s *Server) cancelJob(j *job) {
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == stateQueued
	j.mu.Unlock()
	if cancel != nil {
		cancel()
		return
	}
	if queued {
		// Not picked up yet: mark it; the runner will see the cancelled
		// state and skip. Simplest correct form: flag via state and let
		// runJob's ctx check handle running ones. For queued jobs we retire
		// the spec now and tombstone the state.
		_ = os.Remove(s.specPath(j.id))
		j.setState(stateCancelled, "cancelled")
		j.emit(errorEvent{Type: "error", Job: j.id, Error: "cancelled"})
		j.close()
	}
}

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return data, nil
}
