package server

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	"ituaval/internal/scenario"
)

// Job states. A job is born queued, runs at most once per server lifetime,
// and ends done, failed, or cancelled; interrupted means the server shut
// down mid-run with the job's spec still persisted, so the next server
// start re-queues it and its checkpoint resumes the finished points.
const (
	stateQueued      = "queued"
	stateRunning     = "running"
	stateDone        = "done"
	stateFailed      = "failed"
	stateCancelled   = "cancelled"
	stateInterrupted = "interrupted"
)

// job is one submitted scenario run. The job id IS the scenario's content
// address (SHA-256 of the canonical spec), so identical submissions
// coalesce onto one job and one cached result.
type job struct {
	id        string
	compiled  *scenario.Compiled
	canonical []byte

	// repsDone counts finished replications across the whole grid
	// (completed, failed, or drained), for progress reporting.
	repsDone  atomic.Int64
	totalReps int64

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	errMsg string
	// events is the append-only replay log every stream subscriber reads
	// from index 0 — a late subscriber sees exactly what an early one saw.
	events []json.RawMessage
	closed bool // terminal: no further events will be appended
	cancel context.CancelFunc
}

func newJob(id string, c *scenario.Compiled, canonical []byte) *job {
	j := &job{
		id:        id,
		compiled:  c,
		canonical: canonical,
		state:     stateQueued,
		totalReps: c.TotalReps(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// emit appends one event to the replay log and wakes the subscribers.
// Events marshal here, on the emitting goroutine (simulation workers for
// progress events), so subscribers only copy bytes.
func (j *job) emit(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Event payloads are structs of scalars and RawMessages; Marshal
		// cannot fail on them.
		panic("server: marshaling event: " + err.Error())
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.events = append(j.events, b)
	j.cond.Broadcast()
}

// close marks the event log terminal and wakes the subscribers for the
// last time.
func (j *job) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	j.cond.Broadcast()
}

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errMsg = errMsg
}

func (j *job) snapshot() (state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// wait blocks until the replay log grows past from, the log closes, or ctx
// ends; it returns the new events and whether the log is terminal. The
// caller must arrange a Broadcast on ctx cancellation (the stream handler
// uses context.AfterFunc) or wait may sleep past it.
func (j *job) wait(ctx context.Context, from int) (events []json.RawMessage, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= from && !j.closed && ctx.Err() == nil {
		j.cond.Wait()
	}
	if from < len(j.events) {
		events = j.events[from:]
	}
	return events, j.closed
}

// Event payloads. Every event carries type and job so a multiplexed reader
// can demux; the rest is type-specific.

type queuedEvent struct {
	Type string `json:"type"` // "queued"
	Job  string `json:"job"`
}

type startedEvent struct {
	Type      string `json:"type"` // "started"
	Job       string `json:"job"`
	Points    int    `json:"points"`
	TotalReps int64  `json:"totalReps"` // 0 under a precision target
	Resumed   int    `json:"resumed"`   // points restored from the checkpoint
}

type progressEvent struct {
	Type      string `json:"type"` // "progress"
	Job       string `json:"job"`
	RepsDone  int64  `json:"repsDone"`
	TotalReps int64  `json:"totalReps"`
}

// measureEstimate is the streamed per-measure statistic of a finished
// point: the running answer and its 95% confidence half-width.
type measureEstimate struct {
	Mean        float64 `json:"mean"`
	HalfWidth95 float64 `json:"halfWidth95"`
	N           int64   `json:"n"`
}

type pointEvent struct {
	Type      string                     `json:"type"` // "point"
	Job       string                     `json:"job"`
	Point     int                        `json:"point"`
	Label     string                     `json:"label"`
	Measures  map[string]measureEstimate `json:"measures"`
	Reps      int                        `json:"reps"`
	Completed int                        `json:"completed"`
	Failed    int                        `json:"failed"`
	Skipped   int                        `json:"skipped"`
}

type resultEvent struct {
	Type   string          `json:"type"` // "result"
	Job    string          `json:"job"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

type errorEvent struct {
	Type  string `json:"type"` // "error"
	Job   string `json:"job"`
	Error string `json:"error"`
}
