// Package reward defines reward variables on SAN models — the measures of
// the Möbius reward-model layer. A Var describes a measure; for each
// simulation replication the engine instantiates an Observer that watches
// the trajectory and yields zero or more observations, which the runner
// aggregates into confidence intervals across replications.
//
// The paper's measures map directly: "unavailability for an interval" is a
// TimeAverage of an improper-service indicator, "unreliability for an
// interval" is an AtTime reading of a latching failure place (equivalently
// a FirstPassage), "number of replicas running at an instant" is an AtTime,
// and "fraction of corrupt hosts in a domain when it is excluded" is an
// impulse measure on exclusion firings.
package reward

import (
	"ituaval/internal/san"
)

// Var is a reward variable: a named measure evaluated once per replication.
type Var interface {
	// Name identifies the variable in results tables.
	Name() string
	// NewObserver creates a fresh per-replication observer.
	NewObserver() Observer
}

// Observer receives the trajectory callbacks for one replication. The
// engine guarantees: Init once at time 0 (after the model's initialization
// hook and initial stabilization); Advance for every maximal interval
// [t0, t1) during which the marking is constant; Fired after every activity
// completion (timed and instantaneous, so vanishing markings are visible)
// with the post-firing state; Done exactly once at the end time.
type Observer interface {
	Init(s *san.State, t float64)
	Advance(s *san.State, t0, t1 float64)
	Fired(s *san.State, a *san.Activity, caseIdx int, t float64)
	Done(s *san.State, t float64)
	// Results emits this replication's observations (possibly none).
	Results(emit func(float64))
}

// baseObserver provides no-op callbacks for observers that only need some.
type baseObserver struct{}

func (baseObserver) Init(*san.State, float64)                      {}
func (baseObserver) Advance(*san.State, float64, float64)          {}
func (baseObserver) Fired(*san.State, *san.Activity, int, float64) {}
func (baseObserver) Done(*san.State, float64)                      {}

// TimeAverage is an interval-of-time rate reward averaged over [From, To]:
// (1/(To-From)) ∫ F(state(t)) dt. With F an indicator of improper service
// this is exactly the paper's "unavailability for an interval".
type TimeAverage struct {
	VarName  string
	F        func(s *san.State) float64
	From, To float64
}

func (v *TimeAverage) Name() string { return v.VarName }

func (v *TimeAverage) NewObserver() Observer {
	return &timeAverageObs{v: v}
}

type timeAverageObs struct {
	baseObserver
	v        *TimeAverage
	integral float64
}

func (o *timeAverageObs) Advance(s *san.State, t0, t1 float64) {
	lo, hi := t0, t1
	if lo < o.v.From {
		lo = o.v.From
	}
	if hi > o.v.To {
		hi = o.v.To
	}
	if hi > lo {
		o.integral += o.v.F(s) * (hi - lo)
	}
}

func (o *timeAverageObs) Results(emit func(float64)) {
	width := o.v.To - o.v.From
	if width <= 0 {
		return
	}
	emit(o.integral / width)
}

// Accumulated is the raw ∫ F dt over [From, To] (interval-of-time reward).
type Accumulated struct {
	VarName  string
	F        func(s *san.State) float64
	From, To float64
}

func (v *Accumulated) Name() string { return v.VarName }

func (v *Accumulated) NewObserver() Observer {
	return &accumulatedObs{v: v}
}

type accumulatedObs struct {
	baseObserver
	v        *Accumulated
	integral float64
}

func (o *accumulatedObs) Advance(s *san.State, t0, t1 float64) {
	lo, hi := t0, t1
	if lo < o.v.From {
		lo = o.v.From
	}
	if hi > o.v.To {
		hi = o.v.To
	}
	if hi > lo {
		o.integral += o.v.F(s) * (hi - lo)
	}
}

func (o *accumulatedObs) Results(emit func(float64)) { emit(o.integral) }

// AtTime is an instant-of-time reward: the value of F in the state holding
// at time T. If T coincides with the end of the run the final state is used.
type AtTime struct {
	VarName string
	F       func(s *san.State) float64
	T       float64
}

func (v *AtTime) Name() string { return v.VarName }

func (v *AtTime) NewObserver() Observer { return &atTimeObs{v: v} }

type atTimeObs struct {
	baseObserver
	v        *AtTime
	recorded bool
	value    float64
}

func (o *atTimeObs) Init(s *san.State, t float64) {
	if t >= o.v.T && !o.recorded {
		o.value, o.recorded = o.v.F(s), true
	}
}

func (o *atTimeObs) Advance(s *san.State, t0, t1 float64) {
	if !o.recorded && t0 <= o.v.T && o.v.T < t1 {
		o.value, o.recorded = o.v.F(s), true
	}
}

func (o *atTimeObs) Done(s *san.State, t float64) {
	if !o.recorded && t >= o.v.T {
		o.value, o.recorded = o.v.F(s), true
	}
}

func (o *atTimeObs) Results(emit func(float64)) {
	if o.recorded {
		emit(o.value)
	}
}

// FirstPassage emits 1 if Pred was true in any state (including vanishing
// markings reached during instantaneous stabilization) at or before By,
// else 0. With Pred the improper-service condition this is the paper's
// "unreliability for an interval".
type FirstPassage struct {
	VarName string
	Pred    func(s *san.State) bool
	By      float64
}

func (v *FirstPassage) Name() string { return v.VarName }

func (v *FirstPassage) NewObserver() Observer { return &firstPassageObs{v: v} }

type firstPassageObs struct {
	baseObserver
	v       *FirstPassage
	latched bool
}

func (o *firstPassageObs) check(s *san.State, t float64) {
	if !o.latched && t <= o.v.By && o.v.Pred(s) {
		o.latched = true
	}
}

func (o *firstPassageObs) Init(s *san.State, t float64) { o.check(s, t) }
func (o *firstPassageObs) Advance(s *san.State, t0, _ float64) {
	o.check(s, t0)
}
func (o *firstPassageObs) Fired(s *san.State, _ *san.Activity, _ int, t float64) {
	o.check(s, t)
}
func (o *firstPassageObs) Done(s *san.State, t float64) { o.check(s, t) }

func (o *firstPassageObs) Results(emit func(float64)) {
	if o.latched {
		emit(1)
	} else {
		emit(0)
	}
}

// ImpulseMean observes V(state) at each firing of an activity matched by
// Match within [From, To] and emits the per-replication mean of those
// observations (nothing if no matching firing occurred). The paper's
// "fraction of corrupt hosts in a domain when it is excluded" is an
// ImpulseMean on the domain-exclusion firings.
type ImpulseMean struct {
	VarName  string
	Match    func(a *san.Activity, caseIdx int) bool
	V        func(s *san.State, a *san.Activity) float64
	From, To float64
}

func (v *ImpulseMean) Name() string { return v.VarName }

func (v *ImpulseMean) NewObserver() Observer { return &impulseMeanObs{v: v} }

type impulseMeanObs struct {
	baseObserver
	v     *ImpulseMean
	sum   float64
	count int
}

func (o *impulseMeanObs) Fired(s *san.State, a *san.Activity, caseIdx int, t float64) {
	if t < o.v.From || t > o.v.To {
		return
	}
	if o.v.Match(a, caseIdx) {
		o.sum += o.v.V(s, a)
		o.count++
	}
}

func (o *impulseMeanObs) Results(emit func(float64)) {
	if o.count > 0 {
		emit(o.sum / float64(o.count))
	}
}

// Count emits the number of firings matched by Match in [From, To].
type Count struct {
	VarName  string
	Match    func(a *san.Activity, caseIdx int) bool
	From, To float64
}

func (v *Count) Name() string { return v.VarName }

func (v *Count) NewObserver() Observer { return &countObs{v: v} }

type countObs struct {
	baseObserver
	v *Count
	n int
}

func (o *countObs) Fired(_ *san.State, a *san.Activity, caseIdx int, t float64) {
	if t >= o.v.From && t <= o.v.To && o.v.Match(a, caseIdx) {
		o.n++
	}
}

func (o *countObs) Results(emit func(float64)) { emit(float64(o.n)) }

// Func adapts an arbitrary observer constructor into a Var, for custom
// measures defined by model code.
type Func struct {
	VarName string
	New     func() Observer
}

func (v *Func) Name() string          { return v.VarName }
func (v *Func) NewObserver() Observer { return v.New() }

// FirstPassageTime emits the time at which Pred first became true (nothing
// if it never did within the horizon). Combined with FirstPassage it gives
// the conditional mean time to failure.
type FirstPassageTime struct {
	VarName string
	Pred    func(s *san.State) bool
}

func (v *FirstPassageTime) Name() string { return v.VarName }

func (v *FirstPassageTime) NewObserver() Observer { return &firstPassageTimeObs{v: v} }

type firstPassageTimeObs struct {
	baseObserver
	v       *FirstPassageTime
	latched bool
	when    float64
}

func (o *firstPassageTimeObs) check(s *san.State, t float64) {
	if !o.latched && o.v.Pred(s) {
		o.latched, o.when = true, t
	}
}

func (o *firstPassageTimeObs) Init(s *san.State, t float64)        { o.check(s, t) }
func (o *firstPassageTimeObs) Advance(s *san.State, t0, _ float64) { o.check(s, t0) }
func (o *firstPassageTimeObs) Fired(s *san.State, _ *san.Activity, _ int, t float64) {
	o.check(s, t)
}
func (o *firstPassageTimeObs) Done(s *san.State, t float64) { o.check(s, t) }

func (o *firstPassageTimeObs) Results(emit func(float64)) {
	if o.latched {
		emit(o.when)
	}
}
