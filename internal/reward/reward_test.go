package reward

import (
	"math"
	"testing"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// scriptedModel builds a one-place model used to drive observers by hand.
func scriptedModel(t *testing.T) (*san.Model, *san.Place, *san.Activity) {
	t.Helper()
	m := san.NewModel("scripted")
	p := m.Place("p", 0)
	a := m.AddActivity(san.ActivityDef{
		Name: "tick", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return true },
		Reads:   []*san.Place{p},
		Cases:   []san.Case{{Prob: 1}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	return m, p, a
}

func collect(o Observer) []float64 {
	var out []float64
	o.Results(func(x float64) { out = append(out, x) })
	return out
}

func TestTimeAverage(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &TimeAverage{VarName: "ta", F: func(s *san.State) float64 { return float64(s.Get(p)) }, From: 0, To: 10}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 4) // p=0 for 4 units
	s.Set(p, 3)
	o.Advance(s, 4, 10) // p=3 for 6 units
	o.Done(s, 10)
	got := collect(o)
	want := 3.0 * 6 / 10
	if len(got) != 1 || math.Abs(got[0]-want) > 1e-12 {
		t.Fatalf("time average = %v, want [%v]", got, want)
	}
}

func TestTimeAverageWindowClipping(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &TimeAverage{VarName: "ta", F: func(s *san.State) float64 { return float64(s.Get(p)) }, From: 2, To: 6}
	o := v.NewObserver()
	s := m.NewState()
	s.Set(p, 1)
	s.ResetDirty()
	o.Init(s, 0)
	o.Advance(s, 0, 4)  // clipped to [2,4): 2 units at 1
	o.Advance(s, 4, 10) // clipped to [4,6): 2 units at 1
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || math.Abs(got[0]-1) > 1e-12 {
		t.Fatalf("clipped time average = %v, want [1]", got)
	}
}

func TestAccumulated(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &Accumulated{VarName: "acc", F: func(s *san.State) float64 { return float64(s.Get(p)) }, From: 0, To: 5}
	o := v.NewObserver()
	s := m.NewState()
	s.Set(p, 2)
	o.Init(s, 0)
	o.Advance(s, 0, 3)
	o.Advance(s, 3, 9) // only [3,5) counts
	o.Done(s, 9)
	got := collect(o)
	if len(got) != 1 || math.Abs(got[0]-10) > 1e-12 {
		t.Fatalf("accumulated = %v, want [10]", got)
	}
}

func TestAtTime(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &AtTime{VarName: "at", F: func(s *san.State) float64 { return float64(s.Get(p)) }, T: 5}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 3)
	s.Set(p, 7)
	o.Advance(s, 3, 8) // holds at T=5
	s.Set(p, 9)
	o.Advance(s, 8, 10)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("at-time = %v, want [7]", got)
	}
}

func TestAtTimeEndOfRun(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &AtTime{VarName: "at", F: func(s *san.State) float64 { return float64(s.Get(p)) }, T: 10}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	s.Set(p, 4)
	o.Advance(s, 0, 10)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("at-time at end = %v, want [4]", got)
	}
}

func TestAtTimeNotReached(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &AtTime{VarName: "at", F: func(s *san.State) float64 { return float64(s.Get(p)) }, T: 50}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 10)
	o.Done(s, 10)
	if got := collect(o); len(got) != 0 {
		t.Fatalf("at-time beyond horizon = %v, want no observation", got)
	}
}

func TestFirstPassageLatches(t *testing.T) {
	m, p, a := scriptedModel(t)
	v := &FirstPassage{VarName: "fp", Pred: func(s *san.State) bool { return s.Get(p) > 0 }, By: 10}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 3)
	s.Set(p, 1)
	o.Fired(s, a, 0, 3) // vanishing visit
	s.Set(p, 0)
	o.Fired(s, a, 0, 3)
	o.Advance(s, 3, 10)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("first passage = %v, want [1] (latched on vanishing state)", got)
	}
}

func TestFirstPassageRespectsDeadline(t *testing.T) {
	m, p, a := scriptedModel(t)
	v := &FirstPassage{VarName: "fp", Pred: func(s *san.State) bool { return s.Get(p) > 0 }, By: 5}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 7)
	s.Set(p, 1)
	o.Fired(s, a, 0, 7) // after deadline
	o.Advance(s, 7, 10)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("first passage = %v, want [0]", got)
	}
}

func TestImpulseMean(t *testing.T) {
	m, p, a := scriptedModel(t)
	v := &ImpulseMean{
		VarName: "imp",
		Match:   func(act *san.Activity, _ int) bool { return act == a },
		V:       func(s *san.State, _ *san.Activity) float64 { return float64(s.Get(p)) },
		From:    0, To: 100,
	}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	s.Set(p, 2)
	o.Fired(s, a, 0, 1)
	s.Set(p, 4)
	o.Fired(s, a, 0, 2)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("impulse mean = %v, want [3]", got)
	}
}

func TestImpulseMeanNoFirings(t *testing.T) {
	m, _, _ := scriptedModel(t)
	v := &ImpulseMean{
		VarName: "imp",
		Match:   func(*san.Activity, int) bool { return false },
		V:       func(*san.State, *san.Activity) float64 { return 1 },
		From:    0, To: 100,
	}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Done(s, 10)
	if got := collect(o); len(got) != 0 {
		t.Fatalf("impulse mean with no firings = %v, want none", got)
	}
}

func TestCountWindow(t *testing.T) {
	m, _, a := scriptedModel(t)
	v := &Count{VarName: "cnt", Match: func(act *san.Activity, _ int) bool { return act == a }, From: 2, To: 5}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	for _, tm := range []float64{1, 2, 3, 5, 6} {
		o.Fired(s, a, 0, tm)
	}
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("count = %v, want [3]", got)
	}
}

func TestFuncVar(t *testing.T) {
	made := 0
	v := &Func{VarName: "custom", New: func() Observer {
		made++
		return &firstPassageObs{v: &FirstPassage{Pred: func(*san.State) bool { return false }, By: 1}}
	}}
	if v.Name() != "custom" {
		t.Fatal("name")
	}
	v.NewObserver()
	v.NewObserver()
	if made != 2 {
		t.Fatalf("constructor called %d times", made)
	}
}

func TestFirstPassageTime(t *testing.T) {
	m, p, a := scriptedModel(t)
	v := &FirstPassageTime{VarName: "fpt", Pred: func(s *san.State) bool { return s.Get(p) > 0 }}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 2)
	s.Set(p, 1)
	o.Fired(s, a, 0, 2.5)
	o.Fired(s, a, 0, 3.5) // later true states must not overwrite
	o.Advance(s, 3.5, 10)
	o.Done(s, 10)
	got := collect(o)
	if len(got) != 1 || got[0] != 2.5 {
		t.Fatalf("first passage time = %v, want [2.5]", got)
	}
}

func TestFirstPassageTimeNever(t *testing.T) {
	m, p, _ := scriptedModel(t)
	v := &FirstPassageTime{VarName: "fpt", Pred: func(s *san.State) bool { return s.Get(p) > 5 }}
	o := v.NewObserver()
	s := m.NewState()
	o.Init(s, 0)
	o.Advance(s, 0, 10)
	o.Done(s, 10)
	if got := collect(o); len(got) != 0 {
		t.Fatalf("first passage time = %v, want none", got)
	}
}
