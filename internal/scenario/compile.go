package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/san"
	"ituaval/internal/study"
)

// parsePolicy maps the DSL spelling (core.Policy.String()) to the enum.
func parsePolicy(s string) (core.Policy, error) {
	switch s {
	case "domain-exclusion":
		return core.DomainExclusion, nil
	case "host-exclusion":
		return core.HostExclusion, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want \"domain-exclusion\" or \"host-exclusion\")", s)
	}
}

// parsePlacement maps the DSL spelling (core.Placement.String()) to the enum.
func parsePlacement(s string) (core.Placement, error) {
	switch s {
	case "uniform":
		return core.UniformPlacement, nil
	case "least-loaded":
		return core.LeastLoadedPlacement, nil
	case "weighted-random":
		return core.WeightedRandomPlacement, nil
	default:
		return 0, fmt.Errorf("unknown placement %q (want \"uniform\", \"least-loaded\", or \"weighted-random\")", s)
	}
}

// Params compiles the model block onto the paper baseline.
func (m *Model) Params() (core.Params, error) {
	p := core.DefaultParams()
	p.NumDomains = m.Domains
	p.HostsPerDomain = m.HostsPerDomain
	p.NumApps = m.Apps
	p.RepsPerApp = m.RepsPerApp
	if m.Policy != "" {
		pol, err := parsePolicy(m.Policy)
		if err != nil {
			return p, err
		}
		p.Policy = pol
	}
	if m.Placement != "" {
		pl, err := parsePlacement(m.Placement)
		if err != nil {
			return p, err
		}
		p.Placement = pl
	}
	set := func(dst *float64, v *float64) {
		if v != nil {
			*dst = *v
		}
	}
	set(&p.TotalAttackRate, m.TotalAttackRate)
	set(&p.AttackSplitHost, m.AttackSplitHost)
	set(&p.AttackSplitReplica, m.AttackSplitReplica)
	set(&p.AttackSplitMgr, m.AttackSplitMgr)
	set(&p.TotalFalseAlarmRate, m.TotalFalseAlarmRate)
	set(&p.FalseSplitHost, m.FalseSplitHost)
	set(&p.FalseSplitReplica, m.FalseSplitReplica)
	set(&p.PScript, m.PScript)
	set(&p.PExploratory, m.PExploratory)
	set(&p.PInnovative, m.PInnovative)
	set(&p.DetectScript, m.DetectScript)
	set(&p.DetectExploratory, m.DetectExploratory)
	set(&p.DetectInnovative, m.DetectInnovative)
	set(&p.DetectReplica, m.DetectReplica)
	set(&p.DetectMgr, m.DetectMgr)
	set(&p.HostDetectRate, m.HostDetectRate)
	set(&p.ReplicaDetectRate, m.ReplicaDetectRate)
	set(&p.MgrDetectRate, m.MgrDetectRate)
	set(&p.DomainSpreadRate, m.DomainSpreadRate)
	set(&p.SystemSpreadRate, m.SystemSpreadRate)
	set(&p.SpreadRateCoeff, m.SpreadRateCoeff)
	set(&p.AssetSpreadCoeff, m.AssetSpreadCoeff)
	set(&p.CorruptionMult, m.CorruptionMult)
	set(&p.MisbehaveRate, m.MisbehaveRate)
	set(&p.RecoveryRate, m.RecoveryRate)
	set(&p.PartitionRate, m.PartitionRate)
	set(&p.PartitionHealRate, m.PartitionHealRate)
	set(&p.CampaignRate, m.CampaignRate)
	set(&p.CampaignProb, m.CampaignProb)
	p.CampaignSize = m.CampaignSize
	p.RepairCrew = m.RepairCrew
	p.RateBaseHosts = m.RateBaseHosts
	p.RateBaseReplicas = m.RateBaseReplicas
	p.ExcludeOnReplicaConviction = m.ExcludeOnReplicaConviction
	p.Analytic = m.Analytic
	return p, nil
}

// axisParam describes one sweepable parameter: how to apply a value to
// core.Params and what value domain it accepts.
type axisParam struct {
	integer   bool
	enum      bool
	setNum    func(p *core.Params, v float64)
	setEnum   func(p *core.Params, s string) error
	checkEnum func(s string) error
}

// axisParams is the sweepable-parameter table, keyed by the same lowerCamel
// names the model block uses.
var axisParams = map[string]axisParam{
	"domains":        intAxis(func(p *core.Params, v int) { p.NumDomains = v }),
	"hostsPerDomain": intAxis(func(p *core.Params, v int) { p.HostsPerDomain = v }),
	"apps":           intAxis(func(p *core.Params, v int) { p.NumApps = v }),
	"repsPerApp":     intAxis(func(p *core.Params, v int) { p.RepsPerApp = v }),
	"rateBaseHosts":  intAxis(func(p *core.Params, v int) { p.RateBaseHosts = v }),

	"totalAttackRate":     numAxis(func(p *core.Params, v float64) { p.TotalAttackRate = v }),
	"attackSplitHost":     numAxis(func(p *core.Params, v float64) { p.AttackSplitHost = v }),
	"attackSplitReplica":  numAxis(func(p *core.Params, v float64) { p.AttackSplitReplica = v }),
	"attackSplitMgr":      numAxis(func(p *core.Params, v float64) { p.AttackSplitMgr = v }),
	"totalFalseAlarmRate": numAxis(func(p *core.Params, v float64) { p.TotalFalseAlarmRate = v }),
	"hostDetectRate":      numAxis(func(p *core.Params, v float64) { p.HostDetectRate = v }),
	"replicaDetectRate":   numAxis(func(p *core.Params, v float64) { p.ReplicaDetectRate = v }),
	"mgrDetectRate":       numAxis(func(p *core.Params, v float64) { p.MgrDetectRate = v }),
	"domainSpreadRate":    numAxis(func(p *core.Params, v float64) { p.DomainSpreadRate = v }),
	"systemSpreadRate":    numAxis(func(p *core.Params, v float64) { p.SystemSpreadRate = v }),
	"spreadRateCoeff":     numAxis(func(p *core.Params, v float64) { p.SpreadRateCoeff = v }),
	"assetSpreadCoeff":    numAxis(func(p *core.Params, v float64) { p.AssetSpreadCoeff = v }),
	"corruptionMult":      numAxis(func(p *core.Params, v float64) { p.CorruptionMult = v }),
	"misbehaveRate":       numAxis(func(p *core.Params, v float64) { p.MisbehaveRate = v }),
	"recoveryRate":        numAxis(func(p *core.Params, v float64) { p.RecoveryRate = v }),
	"partitionRate":       numAxis(func(p *core.Params, v float64) { p.PartitionRate = v }),
	"partitionHealRate":   numAxis(func(p *core.Params, v float64) { p.PartitionHealRate = v }),
	"campaignRate":        numAxis(func(p *core.Params, v float64) { p.CampaignRate = v }),
	"campaignProb":        numAxis(func(p *core.Params, v float64) { p.CampaignProb = v }),
	"campaignSize":        intAxis(func(p *core.Params, v int) { p.CampaignSize = v }),
	"repairCrew":          intAxis(func(p *core.Params, v int) { p.RepairCrew = v }),

	"policy": {
		enum:      true,
		checkEnum: func(s string) error { _, err := parsePolicy(s); return err },
		setEnum: func(p *core.Params, s string) error {
			pol, err := parsePolicy(s)
			p.Policy = pol
			return err
		},
	},
	"placement": {
		enum:      true,
		checkEnum: func(s string) error { _, err := parsePlacement(s); return err },
		setEnum: func(p *core.Params, s string) error {
			pl, err := parsePlacement(s)
			p.Placement = pl
			return err
		},
	},
}

func numAxis(set func(p *core.Params, v float64)) axisParam {
	return axisParam{setNum: set}
}

func intAxis(set func(p *core.Params, v int)) axisParam {
	return axisParam{integer: true, setNum: func(p *core.Params, v float64) { set(p, int(v)) }}
}

// AxisParams returns the sweepable parameter names, sorted.
func AxisParams() []string {
	names := make([]string, 0, len(axisParams))
	for n := range axisParams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// measureKind describes one measure constructor.
type measureKind struct {
	timed  bool // takes a To instant/interval end
	perApp bool // takes an application index
	build  func(m *core.Model, ms Measure, to float64) reward.Var
}

var measureKinds = map[string]measureKind{
	"unavailability": {timed: true, perApp: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.Unavailability(ms.Name, ms.App, ms.From, to)
	}},
	"unreliability": {timed: true, perApp: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.Unreliability(ms.Name, ms.App, to)
	}},
	"improper-ever": {timed: true, perApp: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.ImproperEver(ms.Name, ms.App, to)
	}},
	"group-failed": {timed: true, perApp: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.GroupFailed(ms.Name, ms.App, to)
	}},
	"replicas-running": {timed: true, perApp: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.ReplicasRunning(ms.Name, ms.App, to)
	}},
	"load-per-host": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.LoadPerHost(ms.Name, to)
	}},
	"frac-domains-excluded": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.FracDomainsExcluded(ms.Name, to)
	}},
	"frac-corrupt-hosts-at-exclusion": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.FracCorruptHostsAtExclusion(ms.Name, to)
	}},
	"domain-exclusions": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.DomainExclusions(ms.Name, to)
	}},
	"corrupt-hosts-frac": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.CorruptHostsFrac(ms.Name, to)
	}},
	"hosts-up": {timed: true, build: func(m *core.Model, ms Measure, to float64) reward.Var {
		return m.HostsUp(ms.Name, to)
	}},
	"time-to-byzantine": {perApp: true, build: func(m *core.Model, ms Measure, _ float64) reward.Var {
		return m.TimeToByzantine(ms.Name, ms.App)
	}},
	"time-to-first-exclusion": {build: func(m *core.Model, ms Measure, _ float64) reward.Var {
		return m.TimeToFirstExclusion(ms.Name)
	}},
}

// MeasureKinds returns the known measure kinds, sorted.
func MeasureKinds() []string {
	kinds := make([]string, 0, len(measureKinds))
	for k := range measureKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Point is one compiled grid point.
type Point struct {
	// Label attributes errors and progress to the point.
	Label string
	// Params is the fully applied model configuration.
	Params core.Params
	// SeedOffset is the point's offset from the scenario's root seed.
	SeedOffset uint64
	// Si and Xi locate the point on the (series, x) grid.
	Si, Xi int
	// X is the point's abscissa (0 for a sweepless scenario).
	X float64
}

// Defaults supplies the compiler's fallback effort when the scenario's run
// block leaves fields zero. The zero value selects 2000 replications, seed 1.
type Defaults struct {
	Reps int
	Seed uint64
}

// Compiled is a validated, normalized, runnable scenario.
type Compiled struct {
	// Scenario is the normalized spec: all defaults applied, so two inputs
	// meaning the same study canonicalize identically.
	Scenario Scenario
	// Points is the compiled grid, series-major (like the hand-written
	// sweeps: all X values of series 0, then series 1, ...).
	Points []Point
	// SeriesNames are the rendered series, one per series-axis value.
	SeriesNames []string
	// NumX is the number of X-axis values (1 for a sweepless scenario).
	NumX int
}

// Compile validates the scenario against the model (every grid point must
// pass core.Params.Validate and collide with no other point's seed range)
// and returns the runnable form. The input is not mutated.
func Compile(sc *Scenario, d Defaults) (*Compiled, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Scenario: *sc}
	norm := &c.Scenario
	if norm.Figure.ID == "" {
		norm.Figure.ID = norm.Name
	}
	if norm.Figure.Title == "" {
		norm.Figure.Title = norm.Name
	}
	if norm.Run.Reps == 0 {
		norm.Run.Reps = d.Reps
	}
	if norm.Run.Reps == 0 {
		norm.Run.Reps = 2000
	}
	if norm.Run.Seed == 0 {
		norm.Run.Seed = d.Seed
	}
	if norm.Run.Seed == 0 {
		norm.Run.Seed = 1
	}
	if norm.precisionMode() && norm.Run.MaxReps == 0 {
		norm.Run.MaxReps = 16 * norm.Run.Reps
	}
	// Normalize measures: panels, labels, and horizons become explicit.
	norm.Measures = append([]Measure(nil), norm.Measures...)
	for i := range norm.Measures {
		ms := &norm.Measures[i]
		if ms.Panel == "" {
			ms.Panel = ms.Name
		}
		if ms.Label == "" {
			ms.Label = ms.Kind
		}
		if measureKinds[ms.Kind].timed && ms.To == 0 {
			ms.To = norm.Horizon
		}
	}

	base, err := norm.Model.Params()
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}

	// Axis value lists: a sweepless scenario is a 1×1 grid.
	type axisVal struct {
		num   float64
		str   string
		label string
	}
	expand := func(ax *Axis, defStride uint64) ([]axisVal, axisParam, uint64) {
		if ax == nil {
			return []axisVal{{}}, axisParam{}, 0
		}
		p := axisParams[ax.Param]
		stride := ax.SeedStride
		if stride == 0 {
			stride = defStride
		}
		var vals []axisVal
		for i, v := range ax.Values {
			av := axisVal{num: v, label: fmt.Sprintf("%s=%g", ax.Param, v)}
			if i < len(ax.Labels) {
				av.label = ax.Labels[i]
			}
			vals = append(vals, av)
		}
		for i, s := range ax.Strings {
			av := axisVal{str: s, label: fmt.Sprintf("%s=%s", ax.Param, s)}
			if i < len(ax.Labels) {
				av.label = ax.Labels[i]
			}
			vals = append(vals, av)
		}
		return vals, p, stride
	}
	var xs, series []axisVal
	var xParam, sParam axisParam
	var xStride, sStride uint64
	var xAxis, sAxis *Axis
	if norm.Sweep != nil {
		xAxis = &norm.Sweep.X
		sAxis = norm.Sweep.Series
	}
	xs, xParam, xStride = expand(xAxis, 1)
	// The default series stride is the smallest power of ten that covers the
	// X range, so default grids never collide.
	defSeries := uint64(10)
	for defSeries < uint64(len(xs))*maxU64(xStride, 1) {
		defSeries *= 10
	}
	series, sParam, sStride = expand(sAxis, defSeries)

	c.NumX = len(xs)
	apply := func(p *core.Params, ax *Axis, prm axisParam, v axisVal) error {
		if ax == nil {
			return nil
		}
		if prm.enum {
			return prm.setEnum(p, v.str)
		}
		prm.setNum(p, v.num)
		return nil
	}
	seen := make(map[uint64]string)
	for si, sv := range series {
		if sAxis != nil {
			c.SeriesNames = append(c.SeriesNames, sv.label)
		}
		for xi, xv := range xs {
			p := base
			if err := apply(&p, sAxis, sParam, sv); err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			if err := apply(&p, xAxis, xParam, xv); err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			label := norm.Name
			if sAxis != nil {
				label += " " + sv.label
			}
			if xAxis != nil {
				label += fmt.Sprintf(" %s=%g", xAxis.Param, xv.num)
			}
			off := norm.Run.SeedOffset + uint64(si)*sStride + uint64(xi)*xStride
			if prev, dup := seen[off]; dup {
				return nil, fmt.Errorf("scenario: seed offset %d collides between %q and %q; adjust sweep seedStride", off, prev, label)
			}
			seen[off] = label
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("scenario: %s: %w", label, err)
			}
			for _, ms := range norm.Measures {
				if measureKinds[ms.Kind].perApp && ms.App >= p.NumApps {
					return nil, fmt.Errorf("scenario: %s: measure %q: app %d out of range (apps=%d)",
						label, ms.Name, ms.App, p.NumApps)
				}
			}
			c.Points = append(c.Points, Point{
				Label:      label,
				Params:     p,
				SeedOffset: off,
				Si:         si,
				Xi:         xi,
				X:          xv.num,
			})
		}
	}
	if len(c.SeriesNames) == 0 {
		c.SeriesNames = []string{norm.Name}
	}
	return c, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (sc *Scenario) precisionMode() bool {
	return sc.Run.TargetRelHW > 0 || sc.Run.TargetAbsHW > 0
}

// Canonical returns the deterministic serialization of the normalized
// scenario: every default applied, struct field order fixed. Two inputs
// with equal canonical bytes produce bit-identical results, which is what
// makes the SHA-256 of these bytes a content address for the study.
func (c *Compiled) Canonical() []byte {
	b, err := json.Marshal(&c.Scenario)
	if err != nil {
		// Scenario is a tree of scalars validated finite; Marshal cannot fail.
		panic(fmt.Sprintf("scenario: canonicalize: %v", err))
	}
	return b
}

// Hash is the hex SHA-256 of Canonical — the scenario's content address.
func (c *Compiled) Hash() string {
	sum := sha256.Sum256(c.Canonical())
	return hex.EncodeToString(sum[:])
}

// Config merges the scenario's run block into a base study configuration:
// scenario effort and seeds win, operational fields (workers, checkpoint,
// watchdogs, warning sink) stay the caller's.
func (c *Compiled) Config(base study.Config) study.Config {
	base.Reps = c.Scenario.Run.Reps
	base.Seed = c.Scenario.Run.Seed
	base.TargetRelHW = c.Scenario.Run.TargetRelHW
	base.TargetAbsHW = c.Scenario.Run.TargetAbsHW
	base.MaxReps = c.Scenario.Run.MaxReps
	return base
}

// vars builds the scenario's reward variables on a constructed model.
func (c *Compiled) vars(m *core.Model) []reward.Var {
	out := make([]reward.Var, len(c.Scenario.Measures))
	for i, ms := range c.Scenario.Measures {
		out[i] = measureKinds[ms.Kind].build(m, ms, ms.To)
	}
	return out
}

// PointSpecs compiles the grid into study sweep points.
func (c *Compiled) PointSpecs() []study.PointSpec {
	specs := make([]study.PointSpec, len(c.Points))
	for i, pt := range c.Points {
		specs[i] = study.PointSpec{
			Label:      pt.Label,
			Params:     pt.Params,
			Until:      c.Scenario.Horizon,
			SeedOffset: pt.SeedOffset,
			Vars:       c.vars,
		}
	}
	return specs
}

// TotalReps is the fixed-mode replication total of the whole grid, the
// denominator for progress reporting; 0 when a precision target makes the
// schedule adaptive.
func (c *Compiled) TotalReps() int64 {
	if c.Scenario.precisionMode() {
		return 0
	}
	return int64(c.Scenario.Run.Reps) * int64(len(c.Points))
}

// Figure assembles the point results into the rendered figure: one panel
// per measure, one series per series-axis value, points in X order.
func (c *Compiled) Figure(prs []*study.PointResult) (*study.Figure, error) {
	if len(prs) != len(c.Points) {
		return nil, fmt.Errorf("scenario: %d point results for %d points", len(prs), len(c.Points))
	}
	fig := &study.Figure{ID: c.Scenario.Figure.ID, Title: c.Scenario.Figure.Title}
	xLabel := "x"
	if c.Scenario.Sweep != nil {
		xLabel = c.Scenario.Sweep.XLabel
		if xLabel == "" {
			xLabel = c.Scenario.Sweep.X.Param
		}
	}
	panels := make([]study.Panel, len(c.Scenario.Measures))
	for mi, ms := range c.Scenario.Measures {
		panels[mi] = study.Panel{ID: ms.Panel, Measure: ms.Label, XLabel: xLabel}
		series := make([]study.Series, len(c.SeriesNames))
		for si := range series {
			series[si].Name = c.SeriesNames[si]
		}
		for _, pt := range c.Points {
			pr := prs[pt.Si*c.NumX+pt.Xi]
			if pr == nil {
				return nil, fmt.Errorf("scenario: missing result for point %q", pt.Label)
			}
			study.AppendPoint(&series[pt.Si], pt.X, ms.Name, pr)
		}
		panels[mi].Series = series
	}
	fig.Panels = panels
	return fig, nil
}

// Run executes the compiled scenario: the grid runs on one flattened worker
// pool via study.RunSweep (sequentially under a precision target), honoring
// cfg's checkpoint, watchdog, and worker settings, and the results assemble
// into the figure. hooks stream progress; see study.SweepHooks.
func (c *Compiled) Run(ctx context.Context, cfg study.Config, hooks study.SweepHooks) (*study.Figure, error) {
	prs, err := study.RunSweep(ctx, c.Config(cfg), c.PointSpecs(), hooks)
	if err != nil {
		return nil, err
	}
	return c.Figure(prs)
}

// Lint runs the static SAN linter over the grid's structural corner shapes
// (the first and last value of each axis — the corners that change which
// activities and places exist), the same defence the lint-models lane gives
// the registered studies. Findings indicate a structurally defective
// workload: dead activities, orphan places, or case distributions that do
// not sum to one.
func (c *Compiled) Lint(opts san.LintOptions) ([]san.LintFinding, error) {
	corner := func(n, i int) bool { return i == 0 || i == n-1 }
	var findings []san.LintFinding
	numSeries := len(c.Points) / c.NumX
	for _, pt := range c.Points {
		if !corner(c.NumX, pt.Xi) || !corner(numSeries, pt.Si) {
			continue
		}
		m, err := core.Build(pt.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario: lint %s: %w", pt.Label, err)
		}
		for _, f := range m.SAN.Lint(opts) {
			findings = append(findings, f)
		}
	}
	return findings, nil
}
