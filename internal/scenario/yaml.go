package scenario

// Minimal YAML-subset reader. The repo takes no external dependencies, so
// instead of a full YAML implementation this file accepts the small,
// unambiguous slice of YAML that scenario files actually need — indented
// block mappings, "- " block sequences, flow scalars/JSON values, and "#"
// comments — and converts it to the JSON value tree the strict scenario
// decoder already understands. Anything outside the subset (anchors, tags,
// multi-line scalars, flow mappings spanning lines, duplicate keys) is a
// hard error, never a guess: scenario files are configuration for long
// simulation campaigns, and a misread file must fail loudly before it burns
// compute.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// yamlToJSON converts the YAML subset to canonical JSON bytes.
func yamlToJSON(data []byte) ([]byte, error) {
	lines, err := yamlLines(data)
	if err != nil {
		return nil, err
	}
	v, rest, err := yamlBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml: line %d: unexpected dedent/content after document", rest[0].num)
	}
	return json.Marshal(v)
}

// yamlLine is one significant (non-blank, non-comment) line.
type yamlLine struct {
	num    int // 1-based source line
	indent int // leading spaces
	text   string
}

func yamlLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", i+1)
		}
		trimmed := strings.TrimLeft(raw, " ")
		body := strings.TrimRight(stripComment(trimmed), " \r")
		if body == "" {
			continue
		}
		out = append(out, yamlLine{num: i + 1, indent: len(raw) - len(trimmed), text: body})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inD:
			inS = !inS
		case r == '"' && !inS:
			inD = !inD
		case r == '#' && !inS && !inD && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// yamlBlock parses one block (mapping or sequence) at the given indentation
// and returns the remaining lines belonging to enclosing blocks.
func yamlBlock(lines []yamlLine, indent int) (any, []yamlLine, error) {
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("yaml: empty block")
	}
	first := lines[0]
	if first.indent != indent {
		return nil, nil, fmt.Errorf("yaml: line %d: bad indentation %d (want %d)", first.num, first.indent, indent)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return yamlSequence(lines, indent)
	}
	return yamlMapping(lines, indent)
}

func yamlMapping(lines []yamlLine, indent int) (any, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml: line %d: unexpected indentation", ln.num)
		}
		key, rest, err := yamlKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			v, err := yamlScalar(rest, ln.num)
			if err != nil {
				return nil, nil, err
			}
			m[key] = v
			continue
		}
		// Key with no inline value: a nested block, or null if nothing
		// deeper follows.
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = nil
			continue
		}
		v, remain, err := yamlBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
		lines = remain
	}
	return m, lines, nil
}

func yamlSequence(lines []yamlLine, indent int) (any, []yamlLine, error) {
	seq := []any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent || (ln.text != "-" && !strings.HasPrefix(ln.text, "- ")) {
			return nil, nil, fmt.Errorf("yaml: line %d: expected sequence item", ln.num)
		}
		item := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if item == "" {
			// "-" alone: the item is the nested block below.
			lines = lines[1:]
			if len(lines) == 0 || lines[0].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, remain, err := yamlBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
			lines = remain
			continue
		}
		if key, rest, err := yamlKey(yamlLine{num: ln.num, text: item}); err == nil {
			// "- key: value" starts an inline mapping whose further keys are
			// indented to the item's column.
			inner := []yamlLine{{num: ln.num, indent: indent + 2, text: item}}
			_ = key
			_ = rest
			lines = lines[1:]
			for len(lines) > 0 && lines[0].indent >= indent+2 {
				inner = append(inner, lines[0])
				lines = lines[1:]
			}
			v, remain, err := yamlMapping(inner, indent+2)
			if err != nil {
				return nil, nil, err
			}
			if len(remain) > 0 {
				return nil, nil, fmt.Errorf("yaml: line %d: bad indentation in sequence item", remain[0].num)
			}
			seq = append(seq, v)
			continue
		}
		v, err := yamlScalar(item, ln.num)
		if err != nil {
			return nil, nil, err
		}
		seq = append(seq, v)
		lines = lines[1:]
	}
	return seq, lines, nil
}

// yamlKey splits "key: value" / "key:" and rejects anything else.
func yamlKey(ln yamlLine) (key, rest string, err error) {
	i := strings.Index(ln.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected \"key: value\"", ln.num)
	}
	if i+1 < len(ln.text) && ln.text[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml: line %d: missing space after %q", ln.num, ln.text[:i+1])
	}
	key = strings.TrimSpace(ln.text[:i])
	if key == "" || strings.ContainsAny(key, "\"'{}[],") {
		return "", "", fmt.Errorf("yaml: line %d: unsupported key %q", ln.num, key)
	}
	return key, strings.TrimSpace(ln.text[i+1:]), nil
}

// yamlScalar interprets a flow value. JSON syntax is tried first, so
// numbers, booleans, null, quoted strings, and inline arrays ([1, 2, 3])
// keep their JSON meaning; everything else is a plain string. Notably the
// YAML-only spellings .nan/.inf stay strings here and are then rejected by
// the scenario decoder's type checks, which is the safe reading for a
// numeric configuration format.
func yamlScalar(s string, num int) (any, error) {
	var v any
	if err := strictJSONValue(s, &v); err == nil {
		return v, nil
	}
	if strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2 {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if strings.ContainsAny(s, "{}[]\"") {
		return nil, fmt.Errorf("yaml: line %d: unsupported flow value %q", num, s)
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	return s, nil
}

// strictJSONValue decodes s as exactly one JSON value with no trailing data.
func strictJSONValue(s string, v *any) error {
	dec := json.NewDecoder(strings.NewReader(s))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data")
	}
	return nil
}
