package scenario

import (
	"testing"
	"time"
)

func TestReviewTrailingGarbage(t *testing.T) {
	valid := `{"name":"a","horizon":1,"model":{"domains":1,"hostsPerDomain":1,"apps":1,"repsPerApp":1},"measures":[{"name":"m","kind":"hosts-up"}]}`
	if _, err := Parse([]byte(valid)); err != nil {
		t.Fatalf("valid: %v", err)
	}
	if _, err := Parse([]byte(valid + " }")); err == nil {
		t.Errorf("invalid trailing garbage ACCEPTED")
	} else {
		t.Logf("trailing garbage rejected: %v", err)
	}
}

func TestReviewStrideHang(t *testing.T) {
	spec := `{"name":"a","horizon":1,"model":{"domains":1,"hostsPerDomain":1,"apps":1,"repsPerApp":1},"measures":[{"name":"m","kind":"hosts-up"}],"sweep":{"x":{"param":"recoveryRate","values":[0.1,0.2,0.3],"seedStride":5000000000000000000},"series":{"param":"policy","strings":["domain-exclusion","host-exclusion"]}}}`
	sc, err := Parse([]byte(spec))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Compile(sc, Defaults{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Logf("compile returned: %v", err)
	case <-time.After(3 * time.Second):
		t.Errorf("Compile HUNG (infinite loop in default series stride)")
	}
}
