// Package scenario is the declarative study layer: a JSON (or YAML-subset)
// file describes a complete ITUA study — topology, attack mix, exclusion
// policy, detection and spread distributions, the measures to estimate, the
// sweep axes, seeds, and precision targets — and compiles into the exact
// core.Params / study.PointSpec shapes the hand-written figure runners
// build in Go. New workloads (partitioned topologies, correlated spread
// campaigns, policy grids) then become data instead of code, which is what
// the job server (internal/server) serves at scale.
//
// Parsing is strict: unknown fields are rejected, every rate and
// probability is bound-checked (including NaN/Inf, which encoding/json's
// number grammar cannot produce but the YAML path could), every grid point
// must pass core.Params.Validate, and seed offsets across the grid must be
// collision-free. Compiled scenarios canonicalize deterministically, so a
// SHA-256 of the canonical bytes content-addresses the study's results:
// equal hashes guarantee bit-identical results.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Scenario is the top-level declarative study spec.
type Scenario struct {
	// Name identifies the scenario (required).
	Name string `json:"name"`
	// Description is free text for listings.
	Description string `json:"description,omitempty"`
	// Figure controls the rendered figure's id and title; both default to
	// Name.
	Figure FigureMeta `json:"figure,omitempty"`
	// Model configures the ITUA model; absent fields keep the paper's
	// baseline (core.DefaultParams). The four topology fields are required.
	Model Model `json:"model"`
	// Horizon is the simulation end time in hours (required, > 0).
	Horizon float64 `json:"horizon"`
	// Measures are the reward variables to estimate (at least one). Each
	// measure renders as one figure panel.
	Measures []Measure `json:"measures"`
	// Sweep, when present, evaluates the measures over a parameter grid;
	// absent, the scenario is a single point.
	Sweep *Sweep `json:"sweep,omitempty"`
	// Run sets the replication schedule and seeds; zero fields take the
	// compiler's defaults (2000 replications, seed 1).
	Run Run `json:"run,omitempty"`
}

// FigureMeta names the rendered figure.
type FigureMeta struct {
	ID    string `json:"id,omitempty"`
	Title string `json:"title,omitempty"`
}

// Model mirrors core.Params declaratively. Pointer fields distinguish "not
// given, keep the paper default" from an explicit zero.
type Model struct {
	// Topology (all required).
	Domains        int `json:"domains"`
	HostsPerDomain int `json:"hostsPerDomain"`
	Apps           int `json:"apps"`
	RepsPerApp     int `json:"repsPerApp"`

	// Policy is "domain-exclusion" (default) or "host-exclusion".
	Policy string `json:"policy,omitempty"`
	// Placement is "uniform" (default), "least-loaded", or
	// "weighted-random".
	Placement string `json:"placement,omitempty"`

	TotalAttackRate    *float64 `json:"totalAttackRate,omitempty"`
	AttackSplitHost    *float64 `json:"attackSplitHost,omitempty"`
	AttackSplitReplica *float64 `json:"attackSplitReplica,omitempty"`
	AttackSplitMgr     *float64 `json:"attackSplitMgr,omitempty"`

	TotalFalseAlarmRate *float64 `json:"totalFalseAlarmRate,omitempty"`
	FalseSplitHost      *float64 `json:"falseSplitHost,omitempty"`
	FalseSplitReplica   *float64 `json:"falseSplitReplica,omitempty"`

	PScript      *float64 `json:"pScript,omitempty"`
	PExploratory *float64 `json:"pExploratory,omitempty"`
	PInnovative  *float64 `json:"pInnovative,omitempty"`

	DetectScript      *float64 `json:"detectScript,omitempty"`
	DetectExploratory *float64 `json:"detectExploratory,omitempty"`
	DetectInnovative  *float64 `json:"detectInnovative,omitempty"`
	DetectReplica     *float64 `json:"detectReplica,omitempty"`
	DetectMgr         *float64 `json:"detectMgr,omitempty"`

	HostDetectRate    *float64 `json:"hostDetectRate,omitempty"`
	ReplicaDetectRate *float64 `json:"replicaDetectRate,omitempty"`
	MgrDetectRate     *float64 `json:"mgrDetectRate,omitempty"`

	DomainSpreadRate *float64 `json:"domainSpreadRate,omitempty"`
	SystemSpreadRate *float64 `json:"systemSpreadRate,omitempty"`
	SpreadRateCoeff  *float64 `json:"spreadRateCoeff,omitempty"`
	AssetSpreadCoeff *float64 `json:"assetSpreadCoeff,omitempty"`

	CorruptionMult *float64 `json:"corruptionMult,omitempty"`
	MisbehaveRate  *float64 `json:"misbehaveRate,omitempty"`
	RecoveryRate   *float64 `json:"recoveryRate,omitempty"`

	// Environment faults: network partitions severing a random domain pair,
	// correlated attack campaigns corrupting a Binomial(campaignSize,
	// campaignProb) batch of hosts per firing, and a bounded repair crew
	// (see the matching core.Params fields).
	PartitionRate     *float64 `json:"partitionRate,omitempty"`
	PartitionHealRate *float64 `json:"partitionHealRate,omitempty"`
	CampaignRate      *float64 `json:"campaignRate,omitempty"`
	CampaignProb      *float64 `json:"campaignProb,omitempty"`
	CampaignSize      int      `json:"campaignSize,omitempty"`
	RepairCrew        int      `json:"repairCrew,omitempty"`

	RateBaseHosts    int `json:"rateBaseHosts,omitempty"`
	RateBaseReplicas int `json:"rateBaseReplicas,omitempty"`

	ExcludeOnReplicaConviction bool `json:"excludeOnReplicaConviction,omitempty"`
	// Analytic saturates the intrusions counter so the CTMC stays finite
	// (see core.Params.Analytic); observables are unchanged.
	Analytic bool `json:"analytic,omitempty"`
}

// Measure is one reward variable and its figure panel.
type Measure struct {
	// Name is the variable's name in results tables (required, unique).
	Name string `json:"name"`
	// Kind selects the measure constructor; see measureKinds.
	Kind string `json:"kind"`
	// App is the application index for per-application measures.
	App int `json:"app,omitempty"`
	// From is the interval start of "unavailability" (default 0).
	From float64 `json:"from,omitempty"`
	// To is the interval end / evaluation instant of timed measures;
	// defaults to the scenario horizon.
	To float64 `json:"to,omitempty"`
	// Panel is the rendered panel's id (default: Name).
	Panel string `json:"panel,omitempty"`
	// Label is the rendered panel's measure description (default: Kind).
	Label string `json:"label,omitempty"`
}

// Sweep is the parameter grid: a numeric X axis, and optionally a second
// axis rendered as one series per value.
type Sweep struct {
	X      Axis   `json:"x"`
	Series *Axis  `json:"series,omitempty"`
	XLabel string `json:"xLabel,omitempty"`
}

// Axis sweeps one model parameter. Numeric parameters list Values; the
// enum parameters "policy" and "placement" list Strings.
type Axis struct {
	// Param is the Model field to sweep (same lowerCamel spelling as the
	// model block, e.g. "domainSpreadRate", "corruptionMult", "policy").
	Param string `json:"param"`
	// Values are the numeric sweep values (integer-valued for topology
	// parameters).
	Values []float64 `json:"values,omitempty"`
	// Strings are the enum sweep values (policy/placement axes only).
	Strings []string `json:"strings,omitempty"`
	// Labels name the series of a series axis (default "param=value").
	// Ignored on the X axis.
	Labels []string `json:"labels,omitempty"`
	// SeedStride is the seed-offset distance between consecutive axis
	// values (default 1 on the X axis, and on the series axis the smallest
	// power of ten covering the X axis, so grids never collide by default).
	SeedStride uint64 `json:"seedStride,omitempty"`
}

// Run sets effort and seeds. It is part of the content address: two
// scenarios differing only in Run produce different results and different
// hashes.
type Run struct {
	// Reps is the replication count per grid point (default 2000); with a
	// precision target it is the initial batch instead.
	Reps int `json:"reps,omitempty"`
	// Seed is the root seed (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// SeedOffset is the base seed offset of the whole grid, added to every
	// point's axis-derived offset. It exists so a scenario can reproduce a
	// registry study's exact seed schedule.
	SeedOffset uint64 `json:"seedOffset,omitempty"`
	// TargetRelHW / TargetAbsHW switch every grid point to sequential
	// precision mode (see study.Config).
	TargetRelHW float64 `json:"targetRelHW,omitempty"`
	TargetAbsHW float64 `json:"targetAbsHW,omitempty"`
	// MaxReps bounds precision mode (default 16×Reps).
	MaxReps int `json:"maxReps,omitempty"`
}

// maxScenarioBytes bounds the accepted input size: scenario files are a few
// KB; anything larger is rejected before JSON work begins.
const maxScenarioBytes = 1 << 20

// Parse decodes a scenario from JSON or from the YAML subset (the format is
// sniffed: input whose first significant byte is '{' is JSON). Decoding is
// strict — unknown fields, duplicate keys (YAML), and trailing data are
// errors — and the result is validated structurally; grid-level checks
// (parameter bounds per point, seed collisions) run in Compile.
func Parse(data []byte) (*Scenario, error) {
	if len(data) > maxScenarioBytes {
		return nil, fmt.Errorf("scenario: input exceeds %d bytes", maxScenarioBytes)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("scenario: empty input")
	}
	if trimmed[0] != '{' {
		jsonBytes, err := yamlToJSON(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		data = jsonBytes
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A clean parse leaves exactly EOF behind: a second decode that
	// succeeds (a trailing value) or fails with anything but EOF (trailing
	// garbage) both mean extra input.
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) || len(bytes.TrimSpace(trailing)) > 0 {
		return nil, fmt.Errorf("scenario: trailing data after the scenario object")
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// finite reports whether x is a usable number (not NaN or ±Inf).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// validate performs the structural checks that need no model construction.
func (sc *Scenario) validate() error {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if strings.TrimSpace(sc.Name) == "" {
		bad("name is required")
	}
	if !finite(sc.Horizon) || sc.Horizon <= 0 {
		bad("horizon must be a finite positive number of hours, got %v", sc.Horizon)
	}
	sc.Model.check(bad)
	if len(sc.Measures) == 0 {
		bad("at least one measure is required")
	}
	seen := make(map[string]bool, len(sc.Measures))
	for i := range sc.Measures {
		sc.Measures[i].check(sc, bad)
		if name := sc.Measures[i].Name; name != "" {
			if seen[name] {
				bad("measure name %q repeats", name)
			}
			seen[name] = true
		}
	}
	if sc.Sweep != nil {
		sc.Sweep.check(bad)
	}
	sc.Run.check(bad)
	if len(errs) > 0 {
		return fmt.Errorf("scenario: invalid spec:\n  - %s", strings.Join(errs, "\n  - "))
	}
	return nil
}

// check validates the pointer-rate fields for NaN/Inf — the bound checks
// proper happen per grid point via core.Params.Validate, which cannot see
// non-finite values (NaN compares false against every bound).
func (m *Model) check(bad func(string, ...any)) {
	for _, f := range []struct {
		name string
		v    *float64
	}{
		{"totalAttackRate", m.TotalAttackRate},
		{"attackSplitHost", m.AttackSplitHost},
		{"attackSplitReplica", m.AttackSplitReplica},
		{"attackSplitMgr", m.AttackSplitMgr},
		{"totalFalseAlarmRate", m.TotalFalseAlarmRate},
		{"falseSplitHost", m.FalseSplitHost},
		{"falseSplitReplica", m.FalseSplitReplica},
		{"pScript", m.PScript},
		{"pExploratory", m.PExploratory},
		{"pInnovative", m.PInnovative},
		{"detectScript", m.DetectScript},
		{"detectExploratory", m.DetectExploratory},
		{"detectInnovative", m.DetectInnovative},
		{"detectReplica", m.DetectReplica},
		{"detectMgr", m.DetectMgr},
		{"hostDetectRate", m.HostDetectRate},
		{"replicaDetectRate", m.ReplicaDetectRate},
		{"mgrDetectRate", m.MgrDetectRate},
		{"domainSpreadRate", m.DomainSpreadRate},
		{"systemSpreadRate", m.SystemSpreadRate},
		{"spreadRateCoeff", m.SpreadRateCoeff},
		{"assetSpreadCoeff", m.AssetSpreadCoeff},
		{"corruptionMult", m.CorruptionMult},
		{"misbehaveRate", m.MisbehaveRate},
		{"recoveryRate", m.RecoveryRate},
		{"partitionRate", m.PartitionRate},
		{"partitionHealRate", m.PartitionHealRate},
		{"campaignRate", m.CampaignRate},
		{"campaignProb", m.CampaignProb},
	} {
		if f.v != nil && !finite(*f.v) {
			bad("model.%s must be finite, got %v", f.name, *f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"domains", m.Domains},
		{"hostsPerDomain", m.HostsPerDomain},
		{"apps", m.Apps},
		{"repsPerApp", m.RepsPerApp},
	} {
		if f.v <= 0 {
			bad("model.%s must be a positive integer, got %d", f.name, f.v)
		}
	}
	if m.RateBaseHosts < 0 || m.RateBaseReplicas < 0 {
		bad("model.rateBaseHosts/rateBaseReplicas must be >= 0")
	}
	if m.CampaignSize < 0 || m.RepairCrew < 0 {
		bad("model.campaignSize/repairCrew must be >= 0")
	}
	if m.Policy != "" {
		if _, err := parsePolicy(m.Policy); err != nil {
			bad("model.policy: %v", err)
		}
	}
	if m.Placement != "" {
		if _, err := parsePlacement(m.Placement); err != nil {
			bad("model.placement: %v", err)
		}
	}
}

func (ms *Measure) check(sc *Scenario, bad func(string, ...any)) {
	if strings.TrimSpace(ms.Name) == "" {
		bad("measure names are required")
	}
	k, ok := measureKinds[ms.Kind]
	if !ok {
		bad("measure %q: unknown kind %q (known: %s)", ms.Name, ms.Kind, strings.Join(MeasureKinds(), ", "))
		return
	}
	if !finite(ms.From) || !finite(ms.To) {
		bad("measure %q: from/to must be finite", ms.Name)
		return
	}
	to := ms.To
	if to == 0 {
		to = sc.Horizon
	}
	if k.timed && (to <= 0 || to > sc.Horizon) {
		bad("measure %q: to must be in (0, horizon=%g], got %g", ms.Name, sc.Horizon, to)
	}
	if ms.Kind == "unavailability" && (ms.From < 0 || ms.From >= to) {
		bad("measure %q: from must be in [0, to=%g), got %g", ms.Name, to, ms.From)
	}
	if !k.perApp && ms.App != 0 {
		bad("measure %q: kind %q takes no app index", ms.Name, ms.Kind)
	}
	if k.perApp && ms.App < 0 {
		bad("measure %q: app must be >= 0, got %d", ms.Name, ms.App)
	}
}

func (sw *Sweep) check(bad func(string, ...any)) {
	sw.X.check("sweep.x", false, bad)
	if sw.Series != nil {
		sw.Series.check("sweep.series", true, bad)
	}
}

func (ax *Axis) check(where string, series bool, bad func(string, ...any)) {
	p, known := axisParams[ax.Param]
	if !known {
		bad("%s: unknown sweep parameter %q (known: %s)", where, ax.Param, strings.Join(AxisParams(), ", "))
		return
	}
	if len(ax.Values) > 0 && len(ax.Strings) > 0 {
		bad("%s: values and strings are mutually exclusive", where)
		return
	}
	n := len(ax.Values) + len(ax.Strings)
	if n == 0 {
		bad("%s: at least one sweep value is required", where)
		return
	}
	if len(ax.Strings) > 0 && !p.enum {
		bad("%s: parameter %q is numeric; use values", where, ax.Param)
		return
	}
	if len(ax.Values) > 0 && p.enum {
		bad("%s: parameter %q is an enum; use strings", where, ax.Param)
	}
	if p.enum && !series {
		// The X axis is the plot abscissa, which must be numeric.
		bad("%s: enum parameter %q can only be a series axis", where, ax.Param)
	}
	for _, v := range ax.Values {
		if !finite(v) {
			bad("%s: sweep values must be finite, got %v", where, v)
		} else if p.integer && v != math.Trunc(v) {
			bad("%s: parameter %q takes integers, got %v", where, ax.Param, v)
		}
	}
	for _, s := range ax.Strings {
		if err := p.checkEnum(s); err != nil {
			bad("%s: %v", where, err)
		}
	}
	if len(ax.Labels) > 0 && len(ax.Labels) != n {
		bad("%s: %d labels for %d values", where, len(ax.Labels), n)
	}
	if !series && len(ax.Labels) > 0 {
		bad("%s: labels are only used on the series axis", where)
	}
}

func (r *Run) check(bad func(string, ...any)) {
	if r.Reps < 0 {
		bad("run.reps must be >= 0, got %d", r.Reps)
	}
	if r.MaxReps < 0 {
		bad("run.maxReps must be >= 0, got %d", r.MaxReps)
	}
	if !finite(r.TargetRelHW) || r.TargetRelHW < 0 {
		bad("run.targetRelHW must be finite and >= 0, got %v", r.TargetRelHW)
	}
	if !finite(r.TargetAbsHW) || r.TargetAbsHW < 0 {
		bad("run.targetAbsHW must be finite and >= 0, got %v", r.TargetAbsHW)
	}
}
