//go:build race

package scenario

// raceEnabled reports that this binary was built with the race detector.
// The faults CSV golden runs the registered study — including its
// 863,550-state exact uniformization anchor — which is an order of
// magnitude past the race lane's time budget, so that golden skips itself
// under -race; the compile/run concurrency it would exercise is covered
// by the fig5 golden and the package's other tests.
const raceEnabled = true
