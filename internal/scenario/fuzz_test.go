package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse drives the strict decoder (both the JSON and the YAML-subset
// path) with arbitrary bytes: it must never panic, and whatever it accepts
// must also survive Compile and canonicalize stably (Parse(Canonical) ==
// same hash) — the invariant the content-addressed result cache depends
// on. Run continuously via `make fuzz-smoke`.
func FuzzParse(f *testing.F) {
	for _, name := range []string{"fig5.json", "fig5.yaml", "analytic.json", "live.json", "faults.json", "faults.yaml"} {
		if data, err := os.ReadFile(filepath.Join(exemplarDir, name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"x","model":{"domains":0},"horizon":5}`))
	f.Add([]byte(`{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":1e308,"measures":[{"name":"u","kind":"unavailability"}]}`))
	f.Add([]byte("name: x\nmodel:\n  domains: 2\n  totalAttackRate: .nan\n"))
	f.Add([]byte("- - -\n  - :\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		c, err := Compile(sc, Defaults{})
		if err != nil {
			return
		}
		// Accepted input: the canonical form must re-parse to the same
		// content address (idempotent normalization).
		canon := c.Canonical()
		sc2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, canon)
		}
		c2, err := Compile(sc2, Defaults{})
		if err != nil {
			t.Fatalf("canonical form does not compile: %v\n%s", err, canon)
		}
		if c.Hash() != c2.Hash() {
			t.Fatalf("canonicalization unstable: %s != %s\n%s", c.Hash(), c2.Hash(), canon)
		}
	})
}
