package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ituaval/internal/san"
)

func lintOptions() san.LintOptions { return san.LintOptions{} }

// exemplarDir is the repo-level scenario exemplar directory, also used by
// the server tests and the serve-smoke lane.
const exemplarDir = "../../testdata/scenarios"

func parseFile(t *testing.T, name string) *Scenario {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(exemplarDir, name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	sc, err := Parse(data)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return sc
}

func compileFile(t *testing.T, name string, d Defaults) *Compiled {
	t.Helper()
	c, err := Compile(parseFile(t, name), d)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return c
}

// TestExemplarsCompile proves every shipped exemplar parses, validates, and
// compiles, and that its grid passes the static SAN lint — the same gate
// the registered studies get from the lint-models lane.
func TestExemplarsCompile(t *testing.T) {
	entries, err := os.ReadDir(exemplarDir)
	if err != nil {
		t.Fatalf("read exemplar dir: %v", err)
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") && !strings.HasSuffix(name, ".yaml") {
			continue
		}
		n++
		c := compileFile(t, name, Defaults{})
		if len(c.Points) == 0 {
			t.Errorf("%s: compiled to an empty grid", name)
		}
		findings, err := c.Lint(lintOptions())
		if err != nil {
			t.Errorf("%s: lint: %v", name, err)
		}
		for _, f := range findings {
			t.Errorf("%s: lint finding: %+v", name, f)
		}
	}
	if n < 3 {
		t.Fatalf("expected at least 3 exemplar scenarios, found %d", n)
	}
}

// TestYAMLTwinHash proves the YAML spelling of each twinned exemplar
// canonicalizes to the same bytes — and so the same content address — as
// its JSON spelling.
func TestYAMLTwinHash(t *testing.T) {
	for _, name := range []string{"fig5", "faults"} {
		j := compileFile(t, name+".json", Defaults{})
		y := compileFile(t, name+".yaml", Defaults{})
		if jh, yh := j.Hash(), y.Hash(); jh != yh {
			t.Fatalf("%s.yaml hash %s != %s.json hash %s\njson: %s\nyaml: %s",
				name, yh, name, jh, j.Canonical(), y.Canonical())
		}
	}
}

// TestHashSensitivity: the content address must change when anything that
// changes results changes (seed, reps, a rate), and must NOT change for a
// byte-level respelling of the same study.
func TestHashSensitivity(t *testing.T) {
	base := compileFile(t, "fig5.json", Defaults{})

	respelled := parseFile(t, "fig5.json")
	c2, err := Compile(respelled, Defaults{Reps: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() != c2.Hash() {
		t.Errorf("explicit defaults changed the hash: %s vs %s", base.Hash(), c2.Hash())
	}

	mut := parseFile(t, "fig5.json")
	mut.Run.Seed = 2
	c3, err := Compile(mut, Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() == c3.Hash() {
		t.Error("changing the seed did not change the hash")
	}
}

func TestParseRejects(t *testing.T) {
	valid := `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},
		"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`
	if _, err := Parse([]byte(valid)); err != nil {
		t.Fatalf("baseline scenario rejected: %v", err)
	}
	cases := map[string]string{
		"unknown field":   `{"name":"x","modle":{}}`,
		"trailing data":   valid + `{"name":"y"}`,
		"empty input":     ``,
		"zero topology":   `{"name":"x","model":{"domains":0,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`,
		"no measures":     `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":5,"measures":[]}`,
		"bad kind":        `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":5,"measures":[{"name":"u","kind":"availability"}]}`,
		"bad policy":      `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2,"policy":"none"},"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`,
		"negative rate":   `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2,"totalAttackRate":-1},"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`,
		"enum x axis":     `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},"horizon":5,"measures":[{"name":"u","kind":"unavailability"}],"sweep":{"x":{"param":"policy","strings":["host-exclusion"]}}}`,
		"yaml nan rate":   "name: x\nmodel:\n  domains: 2\n  hostsPerDomain: 1\n  apps: 1\n  repsPerApp: 2\n  totalAttackRate: .nan\nhorizon: 5\nmeasures:\n  - name: u\n    kind: unavailability\n",
		"yaml dup key":    "name: x\nname: y\n",
		"oversized input": `{"name":"` + strings.Repeat("a", maxScenarioBytes) + `"}`,
	}
	for label, in := range cases {
		sc, err := Parse([]byte(in))
		if err == nil {
			// A negative rate passes Parse's structural pass; it must then
			// die in Compile before any simulation money is spent.
			if _, cerr := Compile(sc, Defaults{}); cerr == nil {
				t.Errorf("%s: accepted", label)
			}
		}
	}
}

// TestCompileRejectsSeedCollision: two grid points sharing a seed offset
// would silently correlate their replication streams; Compile must refuse.
func TestCompileRejectsSeedCollision(t *testing.T) {
	in := `{"name":"x","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},
		"horizon":5,"measures":[{"name":"u","kind":"unavailability"}],
		"sweep":{"x":{"param":"domainSpreadRate","values":[0,1,2]},
		         "series":{"param":"policy","strings":["host-exclusion","domain-exclusion"],"seedStride":2}}}`
	sc, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sc, Defaults{}); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("seed collision not rejected: %v", err)
	}
}

// TestCompileDefaults pins the normalization the content address depends
// on: effort defaults, figure metadata fallbacks, measure horizon fill-in.
func TestCompileDefaults(t *testing.T) {
	in := `{"name":"small","model":{"domains":2,"hostsPerDomain":1,"apps":1,"repsPerApp":2},
		"horizon":5,"measures":[{"name":"u","kind":"unavailability"}]}`
	sc, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(sc, Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	n := &c.Scenario
	if n.Run.Reps != 2000 || n.Run.Seed != 1 {
		t.Errorf("default effort: got reps=%d seed=%d, want 2000/1", n.Run.Reps, n.Run.Seed)
	}
	if n.Figure.ID != "small" || n.Figure.Title != "small" {
		t.Errorf("figure metadata fallback: got %+v", n.Figure)
	}
	if n.Measures[0].To != 5 {
		t.Errorf("measure horizon fill-in: got to=%g, want 5", n.Measures[0].To)
	}
	if len(c.Points) != 1 || c.Points[0].SeedOffset != 0 {
		t.Errorf("sweepless grid: got %d points, offset %d", len(c.Points), c.Points[0].SeedOffset)
	}
	// The input scenario must not have been mutated: normalization belongs
	// to the compiled copy only.
	if sc.Run.Reps != 0 || sc.Figure.ID != "" {
		t.Errorf("Compile mutated its input: %+v %+v", sc.Run, sc.Figure)
	}
}
