package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/study"
)

// paramsJSON is the comparison currency of the shape goldens: two
// core.Params are "the same configuration" iff their JSON is byte-equal.
func paramsJSON(t *testing.T, p core.Params) string {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGoldenShapes proves the exemplar scenarios compile to byte-identical
// core.Params as the hand-written figure runners, using the registered
// study shapes (internal/study/models.go) as the golden source. Every
// shape of the covered studies must be hit by some compiled grid point —
// a scenario that silently drifted from its runner fails here.
func TestGoldenShapes(t *testing.T) {
	cases := []struct {
		file  string
		study string
		key   func(pt Point) string // must match models.go's shape names
	}{
		{"fig5.json", "fig5", func(pt Point) string {
			return fmt.Sprintf("%s,spread=%g", pt.Params.Policy, pt.X)
		}},
		{"fig5.yaml", "fig5", func(pt Point) string {
			return fmt.Sprintf("%s,spread=%g", pt.Params.Policy, pt.X)
		}},
		{"analytic.json", "analytic", func(pt Point) string {
			return fmt.Sprintf("spread=%g", pt.X)
		}},
		{"live.json", "live", func(pt Point) string {
			return fmt.Sprintf("spread=%g", pt.X)
		}},
		{"faults.json", "faults", func(pt Point) string {
			return fmt.Sprintf("camp=%g,part=%g", pt.Params.CampaignRate, pt.X)
		}},
		{"faults.yaml", "faults", func(pt Point) string {
			return fmt.Sprintf("camp=%g,part=%g", pt.Params.CampaignRate, pt.X)
		}},
	}
	shapes := study.StudyModelShapes()
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			c := compileFile(t, tc.file, Defaults{})
			compiled := make(map[string]string, len(c.Points))
			for _, pt := range c.Points {
				compiled[tc.key(pt)] = paramsJSON(t, pt.Params)
			}
			n := 0
			for _, sh := range shapes {
				if sh.Study != tc.study {
					continue
				}
				n++
				got, ok := compiled[sh.Name]
				if !ok {
					t.Errorf("no compiled point for registered shape %q", sh.Name)
					continue
				}
				if want := paramsJSON(t, sh.Params); got != want {
					t.Errorf("shape %q:\n compiled: %s\n registry: %s", sh.Name, got, want)
				}
			}
			if n == 0 {
				t.Fatalf("no registered shapes for study %q", tc.study)
			}
		})
	}
}

// TestGoldenFig5CSV is the end-to-end golden: running the fig5 scenario
// through Compile → RunSweep → Figure must reproduce the registered Fig5
// runner's output byte-for-byte (same CSV, including every IEEE-754
// value), at reduced effort and across worker counts. This pins the whole
// declarative path — seed schedule, grid order, measure construction,
// panel assembly — to the hand-written original.
func TestGoldenFig5CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	want := figureCSV(t, func() (*study.Figure, error) {
		return study.Fig5(ctx, study.Config{Reps: 60, Seed: 7, Workers: 4})
	})
	c := compileFile(t, "fig5.json", Defaults{Reps: 60, Seed: 7})
	for _, workers := range []int{1, 4} {
		got := figureCSV(t, func() (*study.Figure, error) {
			return c.Run(ctx, study.Config{Workers: workers}, study.SweepHooks{})
		})
		if !bytes.Equal(got, want) {
			t.Fatalf("scenario fig5 CSV (workers=%d) differs from study.Fig5\n--- scenario ---\n%s\n--- registry ---\n%s",
				workers, got, want)
		}
	}
}

// TestGoldenFaultsCSV pins the faults scenario to the registered study's
// SAN arm byte-for-byte. A compiled scenario runs the SAN sweep only, so
// the golden is the registered figure with its direct/live/exact arms
// stripped: the remaining series (names, X grid, estimates, counts) must
// match what the declarative path produces at workers 1 and 4 — proving
// the scenario's seed schedule (seedOffset 8000, series stride 4) and
// model block compile to exactly the study's SAN arm.
func TestGoldenFaultsCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("study.Faults' exact anchor (an 863k-state uniformization) is too heavy under -race")
	}
	ctx := context.Background()
	want := figureCSV(t, func() (*study.Figure, error) {
		fig, err := study.Faults(ctx, study.Config{Reps: 60, Seed: 7, Workers: 4})
		if err != nil {
			return nil, err
		}
		san := *fig
		san.Panels = nil
		for _, p := range fig.Panels {
			fp := p
			fp.Series = nil
			for _, s := range p.Series {
				if strings.HasPrefix(s.Name, "SAN ") {
					fp.Series = append(fp.Series, s)
				}
			}
			san.Panels = append(san.Panels, fp)
		}
		return &san, nil
	})
	c := compileFile(t, "faults.json", Defaults{Reps: 60, Seed: 7})
	for _, workers := range []int{1, 4} {
		got := figureCSV(t, func() (*study.Figure, error) {
			return c.Run(ctx, study.Config{Workers: workers}, study.SweepHooks{})
		})
		if !bytes.Equal(got, want) {
			t.Fatalf("scenario faults CSV (workers=%d) differs from study.Faults SAN arm\n--- scenario ---\n%s\n--- registry ---\n%s",
				workers, got, want)
		}
	}
}

func figureCSV(t *testing.T, run func() (*study.Figure, error)) []byte {
	t.Helper()
	fig, err := run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
