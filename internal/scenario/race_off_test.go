//go:build !race

package scenario

// raceEnabled reports that this binary was built with the race detector.
const raceEnabled = false
