// Package prof wires the standard library's CPU/heap/trace collectors
// behind the -cpuprofile/-memprofile/-trace flags the command-line tools
// share, so a slow figure regeneration can be profiled in place with the
// usual `go tool pprof` / `go tool trace` workflow.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// Start begins the collectors selected by the non-empty file paths: a CPU
// profile, a heap profile (written at stop time, after a final GC), and a
// runtime execution trace. It returns a stop function that flushes and
// closes everything; the caller must run it before the process exits, since
// the collectors buffer in memory and exiting early truncates the files.
// os.Exit skips deferred calls, so commands funnel every exit through a
// single return path. An empty path disables its collector; Start with all
// three empty returns a no-op stop.
func Start(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var stops []func() error
	fail := func(err error) (func() error, error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpu profile: %w", err))
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() error {
			rtrace.Stop()
			return f.Close()
		})
	}
	if memFile != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			runtime.GC() // settle allocation statistics before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	return func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
