package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartAllCollectors(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	stop, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, tr} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

func TestStartNoop(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), "", ""); err == nil {
		t.Fatal("want error for uncreatable profile file")
	}
}
