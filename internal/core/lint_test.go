package core

import (
	"testing"

	"ituaval/internal/san"
)

// TestLintCoreModels holds every structurally distinct corner of the ITUA
// model to the static linter's standard: no dead activities, no dead state,
// no bound violations — including the zero-rate configurations where whole
// subsystems are gated out of the net.
func TestLintCoreModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"default", func(p *Params) {}},
		{"paper-size", func(p *Params) { p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 10, 3, 4, 7 }},
		{"no-domain-spread", func(p *Params) { p.DomainSpreadRate = 0 }},
		{"no-sys-spread", func(p *Params) { p.SystemSpreadRate = 0 }},
		{"no-replica-attacks", func(p *Params) { p.AttackSplitReplica = 0 }},
		{"no-host-attacks", func(p *Params) { p.AttackSplitHost = 0 }},
		{"no-mgr-attacks", func(p *Params) { p.AttackSplitMgr = 0 }},
		{"no-misbehave", func(p *Params) { p.MisbehaveRate = 0 }},
		{"no-false-alarms", func(p *Params) { p.TotalFalseAlarmRate = 0 }},
		{"exclude-on-conviction", func(p *Params) { p.ExcludeOnReplicaConviction = true }},
		{"spare-domains", func(p *Params) { p.RepsPerApp = 3; p.ExcludeOnReplicaConviction = true }},
		{"one-host-domains", func(p *Params) { p.HostsPerDomain = 1 }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, pol := range []Policy{DomainExclusion, HostExclusion} {
				p := DefaultParams()
				p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 4, 3, 2, 4
				p.Policy = pol
				c.mut(&p)
				m, err := Build(p)
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range m.SAN.Lint(san.LintOptions{}) {
					t.Errorf("%s: %v", pol, f)
				}
			}
		})
	}
}

// TestGatedModelStillRuns checks that a configuration with entire subsystems
// gated out of the net still builds, finalizes, and keeps its remaining
// dynamics: with only host attacks and host detection live, exclusions must
// still occur.
func TestGatedModelStillRuns(t *testing.T) {
	p := DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 3, 2, 2, 3
	p.AttackSplitReplica = 0
	p.AttackSplitMgr = 0
	p.TotalFalseAlarmRate = 0
	p.DomainSpreadRate = 0
	p.SystemSpreadRate = 0
	m, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.RepDetectDone != nil || m.MgrDetectDone != nil || m.PropDomDone == nil == false {
		t.Fatalf("gated place slices should be nil: rep=%v mgr=%v", m.RepDetectDone, m.MgrDetectDone)
	}
	if m.ExclPending == nil {
		t.Fatal("domain-exclusion pending places missing though host detection is live")
	}
}
