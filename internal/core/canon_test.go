package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"ituaval/internal/mc"
	"ituaval/internal/san"
)

// canonParams is a small analytic configuration whose full chain generates
// quickly; the reachable states serve as the test corpus for the
// canonicalizer (random marking vectors would not respect the model's
// structural invariants).
func canonParams(d, h, apps, reps int) Params {
	p := DefaultParams()
	p.NumDomains = d
	p.HostsPerDomain = h
	p.NumApps = apps
	p.RepsPerApp = reps
	p.DomainSpreadRate = 0
	p.Analytic = true
	return p
}

// canonTrim disables the host/manager attack and replica false-alarm
// channels (keeping replica attacks and host false alarms), collapsing the
// per-host state space so that even a 4x2 topology generates in
// milliseconds. The canonicalizer sees exactly the same place families
// either way; the trim only shrinks the reachable corpus.
func canonTrim(p *Params) {
	p.CorruptionMult = 5
	p.SystemSpreadRate = 0
	p.AttackSplitHost = 0
	p.AttackSplitMgr = 0
	p.FalseSplitReplica = 0
}

func fullChain(t *testing.T, m *Model, maxStates int) *mc.CTMC {
	t.Helper()
	c, err := mc.Generate(m.SAN, mc.Options{MaxStates: maxStates})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// applyGroupElement permutes marking m by an arbitrary group element:
// within-domain host permutations hp (hp[d] over [0,H)) composed with a
// domain permutation dp, driving the canonicalizer's own reference-aware
// permute so OnHost and partition references stay consistent.
func applyGroupElement(c *Canonicalizer, m []san.Marking, hp [][]int, dp []int) {
	s := &canonScratch{
		perm:  make([]int32, c.d*c.h),
		dPerm: make([]int32, c.d),
		out:   make([]san.Marking, len(m)),
	}
	for d := 0; d < c.d; d++ {
		s.dPerm[d] = int32(dp[d])
		for h := 0; h < c.h; h++ {
			s.perm[d*c.h+h] = int32(dp[d]*c.h + hp[d][h])
		}
	}
	c.permute(m, s)
}

func randomGroupElement(r *rand.Rand, d, h int) (hp [][]int, dp []int) {
	hp = make([][]int, d)
	for i := range hp {
		hp[i] = r.Perm(h)
	}
	return hp, r.Perm(d)
}

func TestNewCanonicalizerGate(t *testing.T) {
	p := canonParams(1, 1, 1, 1)
	if NewCanonicalizer(mustBuild(t, p)) != nil {
		t.Fatal("single-host model should have no canonicalizer")
	}
	p = canonParams(2, 2, 1, 2)
	p.Placement = LeastLoadedPlacement
	if NewCanonicalizer(mustBuild(t, p)) != nil {
		t.Fatal("least-loaded placement is not equivariant; canonicalizer must be refused")
	}
	p.Placement = UniformPlacement
	if NewCanonicalizer(mustBuild(t, p)) == nil {
		t.Fatal("expected a canonicalizer for a symmetric topology")
	}
	p.Placement = WeightedRandomPlacement
	if NewCanonicalizer(mustBuild(t, p)) == nil {
		t.Fatal("weighted-random placement is equivariant; expected a canonicalizer")
	}
}

// TestCanonicalizeIdempotentAndOrbitInvariant checks the two contract
// properties on every reachable state of several configurations: applying
// Canonicalize twice equals applying it once, and every marking in an
// orbit — produced by applying random group elements — canonicalizes to
// the same representative.
func TestCanonicalizeIdempotentAndOrbitInvariant(t *testing.T) {
	// Domain symmetry with every default channel, host symmetry, and a
	// trimmed 4x2 exercising both layers at once.
	domSym := canonParams(2, 1, 1, 2)
	hostSym := canonParams(1, 2, 1, 1)
	both := canonParams(4, 2, 1, 2)
	canonTrim(&both)
	configs := []Params{domSym, hostSym, both}
	// Exercise partition-pair reference rewriting and the repair-crew
	// places (campaigns re-enable host corruption, which explodes a 2x2
	// space, so the campaign channel gets its own single-host config).
	envPart := canonParams(2, 2, 1, 2)
	canonTrim(&envPart)
	envPart.PartitionRate = 0.1
	envPart.PartitionHealRate = 2
	envPart.RepairCrew = 1
	envCamp := canonParams(2, 1, 1, 2)
	canonTrim(&envCamp)
	envCamp.RepairCrew = 1
	envCamp.CampaignRate = 0.05
	envCamp.CampaignSize = 2
	envCamp.CampaignProb = 0.5
	configs = append(configs, envPart, envCamp)

	for _, p := range configs {
		m := mustBuild(t, p)
		canon := NewCanonicalizer(m)
		if canon == nil {
			t.Fatalf("%dx%d: nil canonicalizer", p.NumDomains, p.HostsPerDomain)
		}
		c := fullChain(t, m, 1<<19)
		r := rand.New(rand.NewSource(42))
		rep := make([]san.Marking, len(c.StateMarking(0)))
		work := make([]san.Marking, len(rep))
		for id := 0; id < c.NumStates(); id++ {
			copy(rep, c.StateMarking(id))
			canon.Canonicalize(rep)
			copy(work, rep)
			canon.Canonicalize(work)
			if !markingsEqual(rep, work) {
				t.Fatalf("%dx%d state %d: Canonicalize is not idempotent:\n%v\n%v",
					p.NumDomains, p.HostsPerDomain, id, rep, work)
			}
			for trial := 0; trial < 4; trial++ {
				copy(work, c.StateMarking(id))
				hp, dp := randomGroupElement(r, p.NumDomains, p.HostsPerDomain)
				applyGroupElement(canon, work, hp, dp)
				canon.Canonicalize(work)
				if !markingsEqual(rep, work) {
					t.Fatalf("%dx%d state %d: orbit members canonicalize differently:\n%v\n%v",
						p.NumDomains, p.HostsPerDomain, id, rep, work)
				}
			}
		}
	}
}

// TestCanonicalizeLumpsChain is the quick reduction sanity check: the
// quotient chain must be strictly smaller than the full chain (the golden
// numerical-equivalence test lives in internal/exact).
func TestCanonicalizeLumpsChain(t *testing.T) {
	p := canonParams(2, 2, 1, 2)
	p.CorruptionMult = 5
	p.SystemSpreadRate = 0
	p.TotalFalseAlarmRate = 0
	p.AttackSplitMgr = 0
	m := mustBuild(t, p)
	full := fullChain(t, m, 1<<19)
	lumped, err := mc.Generate(m.SAN, mc.Options{MaxStates: 1 << 19, Canon: NewCanonicalizer(m)})
	if err != nil {
		t.Fatal(err)
	}
	if lumped.NumStates() >= full.NumStates() {
		t.Fatalf("lumping did not reduce the chain: %d >= %d", lumped.NumStates(), full.NumStates())
	}
	t.Logf("2x2: full %d states, lumped %d (%.1fx reduction)",
		full.NumStates(), lumped.NumStates(), float64(full.NumStates())/float64(lumped.NumStates()))
}

func markingsEqual(a, b []san.Marking) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- fuzz ----------------------------------------------------------------

type fuzzCorpusEntry struct {
	model *Model
	canon *Canonicalizer
	chain *mc.CTMC
	err   error
}

var (
	fuzzCorpusMu sync.Mutex
	fuzzCorpus   map[int]*fuzzCorpusEntry
)

// fuzzConfigs are the topologies the fuzzer draws reachable markings from;
// kept tiny so the one-time chain generation stays fast.
func fuzzConfigs() []Params {
	small := canonParams(4, 2, 1, 2)
	canonTrim(&small)
	env := canonParams(2, 2, 1, 2)
	canonTrim(&env)
	env.PartitionRate = 0.1
	env.PartitionHealRate = 2
	env.RepairCrew = 1
	tall := canonParams(1, 4, 1, 1)
	tall.CorruptionMult = 5
	tall.SystemSpreadRate = 0
	tall.TotalFalseAlarmRate = 0
	tall.AttackSplitMgr = 0
	return []Params{small, env, tall}
}

func fuzzEntry(cfg int) *fuzzCorpusEntry {
	fuzzCorpusMu.Lock()
	defer fuzzCorpusMu.Unlock()
	if fuzzCorpus == nil {
		fuzzCorpus = make(map[int]*fuzzCorpusEntry)
	}
	if e, ok := fuzzCorpus[cfg]; ok {
		return e
	}
	e := &fuzzCorpusEntry{}
	m, err := Build(fuzzConfigs()[cfg])
	if err != nil {
		e.err = err
	} else {
		e.model = m
		e.canon = NewCanonicalizer(m)
		e.chain, e.err = mc.Generate(m.SAN, mc.Options{MaxStates: 1 << 18})
	}
	fuzzCorpus[cfg] = e
	return e
}

// FuzzCanonicalKey fuzzes the canonicalizer's contract: for any reachable
// marking (the fuzzer picks a topology and a state index) and any group
// element (decoded from the remaining bytes), Canonicalize is idempotent
// and maps the whole orbit to one representative with an identical intern
// key.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{1, 255, 17, 3, 9, 0, 4, 8, 15, 16, 23, 42})
	f.Add([]byte{2, 7, 1, 128, 33})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		e := fuzzEntry(int(data[0]) % len(fuzzConfigs()))
		if e.err != nil {
			t.Skip(e.err)
		}
		id := int(binary.LittleEndian.Uint32(data[1:5])) % e.chain.NumStates()
		p := e.model.Params
		r := rand.New(rand.NewSource(int64(hashBytes(data[5:]))))

		rep := append([]san.Marking(nil), e.chain.StateMarking(id)...)
		e.canon.Canonicalize(rep)
		again := append([]san.Marking(nil), rep...)
		e.canon.Canonicalize(again)
		if !markingsEqual(rep, again) {
			t.Fatalf("not idempotent: %v vs %v", rep, again)
		}
		repKey := san.AppendMarkingKey(nil, rep)

		work := append([]san.Marking(nil), e.chain.StateMarking(id)...)
		hp, dp := randomGroupElement(r, p.NumDomains, p.HostsPerDomain)
		applyGroupElement(e.canon, work, hp, dp)
		e.canon.Canonicalize(work)
		if !bytes.Equal(repKey, san.AppendMarkingKey(nil, work)) {
			t.Fatalf("orbit members produce different intern keys:\n%v\n%v", rep, work)
		}
	})
}

func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
