package core

import (
	"fmt"
	"strings"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

func mustBuild(t *testing.T, p Params) *Model {
	t.Helper()
	m, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallParams() Params {
	p := DefaultParams()
	p.NumDomains = 3
	p.HostsPerDomain = 2
	p.NumApps = 2
	p.RepsPerApp = 3
	return p
}

// invariantVar returns a reward variable that checks every structural
// invariant of the ITUA model in every visited state (including vanishing
// markings) and emits the number of violations (which must be zero).
func invariantVar(m *Model) (reward.Var, *[]string) {
	violations := &[]string{}
	check := func(s *san.State, when float64) {
		report := func(format string, args ...interface{}) {
			if len(*violations) < 20 {
				*violations = append(*violations, fmt.Sprintf("t=%.4f: ", when)+fmt.Sprintf(format, args...))
			}
		}
		p := m.Params
		D, H := p.NumDomains, p.HostsPerDomain

		hostsUp, mgrsCorrupt := 0, 0
		for g := range m.HostStatus {
			excluded := s.Get(m.HostExcluded[g]) == 1
			if !excluded {
				hostsUp++
			}
			if s.Get(m.MgrStatus[g]) == 1 {
				mgrsCorrupt++
				if excluded {
					report("excluded host %d still has corrupt-undetected manager", g)
				}
			}
			if excluded && s.Get(m.MgrStatus[g]) != 2 {
				report("excluded host %d manager status %d", g, s.Get(m.MgrStatus[g]))
			}
			if excluded && s.Get(m.NumReplicas[g]) != 0 {
				report("excluded host %d has %d replicas", g, s.Get(m.NumReplicas[g]))
			}
		}
		if s.Int(m.MgrsRunning) != hostsUp {
			report("mgrs_running=%d but %d hosts up", s.Get(m.MgrsRunning), hostsUp)
		}
		if s.Int(m.UndetMgrs) != mgrsCorrupt {
			report("undetected_corr_mgrs=%d but %d corrupt managers", s.Get(m.UndetMgrs), mgrsCorrupt)
		}

		domExcluded := 0
		for d := 0; d < D; d++ {
			up, corrupt := 0, 0
			for h := 0; h < H; h++ {
				g := d*H + h
				if s.Get(m.HostExcluded[g]) == 0 {
					up++
				}
				if s.Get(m.MgrStatus[g]) == 1 {
					corrupt++
				}
			}
			if s.Int(m.DomMgrsUp[d]) != up {
				report("domain %d mgrs_up=%d want %d", d, s.Get(m.DomMgrsUp[d]), up)
			}
			if s.Int(m.DomMgrsCorrupt[d]) != corrupt {
				report("domain %d mgrs_corrupt=%d want %d", d, s.Get(m.DomMgrsCorrupt[d]), corrupt)
			}
			if s.Get(m.DomExcluded[d]) == 1 {
				domExcluded++
				if up != 0 {
					report("excluded domain %d has %d hosts up", d, up)
				}
			}
		}
		if s.Int(m.DomainsExcluded) != domExcluded {
			report("domains_excluded=%d want %d", s.Get(m.DomainsExcluded), domExcluded)
		}

		for a := 0; a < p.NumApps; a++ {
			running, undet := 0, 0
			perDomain := make([]int, D)
			perHost := make(map[int]int)
			for r := range m.OnHost[a] {
				g := s.Int(m.OnHost[a][r]) - 1
				if g < 0 {
					if s.Get(m.RepCorrupt[a][r]) != 0 || s.Get(m.RepConvicted[a][r]) != 0 {
						report("empty slot app %d rep %d has corruption state", a, r)
					}
					continue
				}
				running++
				perDomain[g/H]++
				perHost[g]++
				if s.Get(m.HostExcluded[g]) == 1 {
					report("app %d rep %d runs on excluded host %d", a, r, g)
				}
				if s.Get(m.RepCorrupt[a][r]) == 1 && s.Get(m.RepConvicted[a][r]) == 0 {
					undet++
				}
			}
			if s.Int(m.Running[a]) != running {
				report("app %d replicas_running=%d want %d", a, s.Get(m.Running[a]), running)
			}
			if s.Int(m.Undet[a]) != undet {
				report("app %d rep_corr_undetected=%d want %d", a, s.Get(m.Undet[a]), undet)
			}
			for d := 0; d < D; d++ {
				if perDomain[d] > 1 {
					report("app %d has %d replicas in domain %d", a, perDomain[d], d)
				}
				want := san.Marking(0)
				if perDomain[d] == 1 {
					want = 1
				}
				if s.Get(m.HasReplica[a][d]) != want {
					report("app %d has_replica[%d]=%d want %d", a, d, s.Get(m.HasReplica[a][d]), want)
				}
			}
		}
		for g := range m.NumReplicas {
			count := 0
			for a := 0; a < p.NumApps; a++ {
				for r := range m.OnHost[a] {
					if s.Int(m.OnHost[a][r]) == g+1 {
						count++
					}
				}
			}
			if s.Int(m.NumReplicas[g]) != count {
				report("host %d num_replicas=%d want %d", g, s.Get(m.NumReplicas[g]), count)
			}
		}
	}

	var latches []int // GrpFail latches must be monotone
	v := &reward.Func{VarName: "invariants", New: func() reward.Observer {
		latches = make([]int, m.Params.NumApps)
		return &invariantObs{m: m, check: check, violations: violations, latches: latches}
	}}
	return v, violations
}

type invariantObs struct {
	m          *Model
	check      func(*san.State, float64)
	violations *[]string
	latches    []int
}

func (o *invariantObs) Init(s *san.State, t float64) { o.check(s, t); o.latch(s, t) }
func (o *invariantObs) Advance(s *san.State, t0, t1 float64) {
}
func (o *invariantObs) Fired(s *san.State, a *san.Activity, c int, t float64) {
	o.check(s, t)
	o.latch(s, t)
}
func (o *invariantObs) Done(s *san.State, t float64) { o.check(s, t) }
func (o *invariantObs) latch(s *san.State, t float64) {
	for a, prev := range o.latches {
		cur := s.Int(o.m.GrpFail[a])
		if cur < prev {
			*o.violations = append(*o.violations, fmt.Sprintf("t=%.4f: app %d rep_grp_failure unlatched", t, a))
		}
		o.latches[a] = cur
	}
}
func (o *invariantObs) Results(emit func(float64)) { emit(float64(len(*o.violations))) }

func runInvariants(t *testing.T, p Params, reps int, until float64, seed uint64) {
	t.Helper()
	m := mustBuild(t, p)
	v, violations := invariantVar(m)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: until, Reps: reps, Seed: seed,
		Vars: []reward.Var{v}, Validate: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MustGet("invariants").Max > 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(*violations, "\n"))
	}
}

func TestInvariantsDomainExclusion(t *testing.T) {
	runInvariants(t, smallParams(), 60, 10, 11)
}

func TestInvariantsHostExclusion(t *testing.T) {
	p := smallParams()
	p.Policy = HostExclusion
	runInvariants(t, p, 60, 10, 12)
}

func TestInvariantsSingleHostDomains(t *testing.T) {
	p := smallParams()
	p.NumDomains = 6
	p.HostsPerDomain = 1
	p.RepsPerApp = 7 // more replicas than domains
	runInvariants(t, p, 60, 10, 13)
}

func TestInvariantsOneDomain(t *testing.T) {
	p := smallParams()
	p.NumDomains = 1
	p.HostsPerDomain = 4
	runInvariants(t, p, 60, 10, 14)
}

func TestInvariantsHighSpread(t *testing.T) {
	p := smallParams()
	p.NumDomains = 4
	p.HostsPerDomain = 3
	p.DomainSpreadRate = 10
	p.CorruptionMult = 5
	runInvariants(t, p, 60, 10, 15)
	p.Policy = HostExclusion
	runInvariants(t, p, 60, 10, 16)
}

func TestBuildValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.NumDomains = 0 },
		func(p *Params) { p.HostsPerDomain = 0 },
		func(p *Params) { p.NumApps = 0 },
		func(p *Params) { p.NumApps = 16 },
		func(p *Params) { p.RepsPerApp = 0 },
		func(p *Params) { p.Policy = 0 },
		func(p *Params) { p.TotalAttackRate = -1 },
		func(p *Params) { p.PScript = 1.5 },
		func(p *Params) { p.PScript, p.PExploratory, p.PInnovative = 0, 0, 0 },
		func(p *Params) { p.DetectReplica = -0.1 },
		func(p *Params) { p.CorruptionMult = 0.5 },
		func(p *Params) { p.RecoveryRate = 0 },
		func(p *Params) { p.AttackSplitHost, p.AttackSplitReplica, p.AttackSplitMgr = 0, 0, 0 },
		func(p *Params) { p.FalseSplitHost, p.FalseSplitReplica = 0, 0 },
		func(p *Params) { p.DomainSpreadRate = -1 },
		func(p *Params) { p.SpreadRateCoeff = -1 },
	}
	for i, mutate := range cases {
		p := smallParams()
		mutate(&p)
		if _, err := Build(p); err == nil {
			t.Errorf("case %d: Build accepted invalid params", i)
		}
	}
}

func TestModelStructure(t *testing.T) {
	p := smallParams() // 3 domains × 2 hosts, 2 apps × 3 reps
	m := mustBuild(t, p)
	// Activities per host: attack_host, prop_dom, prop_sys, attack_mgmt,
	// 3× valid_ID class, valid_ID_mgr, false_ID = 9. Per slot: attack_rep,
	// valid_ID, false_ID, respond = 4 (rep_misbehave is structurally gated
	// out: with min(reps, domains) = 3 running replicas a single corruption
	// already meets the one-third Byzantine threshold, so the misbehaviour
	// conviction predicate can never hold). Per app: recovery. Per domain:
	// shut_domain.
	wantActs := 6*9 + 2*3*4 + 2 + 3
	if got := len(m.SAN.Activities()); got != wantActs {
		t.Fatalf("activities = %d, want %d", got, wantActs)
	}
	if m.SAN.PlaceByName("domain[2].host[1].status") == nil {
		t.Fatal("expected scoped host place name")
	}
	if m.SAN.ActivityByName("domain[0].shut_domain") == nil {
		t.Fatal("expected shut_domain activity")
	}

	p.Policy = HostExclusion
	m2 := mustBuild(t, p)
	wantActs2 := 6*10 + 2*3*4 + 2 // shut_host per host instead of shut_domain per domain
	if got := len(m2.SAN.Activities()); got != wantActs2 {
		t.Fatalf("host-exclusion activities = %d, want %d", got, wantActs2)
	}
}

func TestInitialPlacement(t *testing.T) {
	// Initial replicas = min(reps, domains), one per domain.
	for _, tc := range []struct{ domains, reps, want int }{
		{1, 7, 1}, {3, 7, 3}, {12, 7, 7}, {4, 2, 2},
	} {
		p := smallParams()
		p.NumDomains = tc.domains
		p.HostsPerDomain = 2
		p.RepsPerApp = tc.reps
		m := mustBuild(t, p)
		res, err := sim.Run(sim.Spec{
			Model: m.SAN, Until: 0.0001, Reps: 8, Seed: 3,
			Vars: []reward.Var{m.ReplicasRunning("r0", 0, 0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.MustGet("r0").Mean; got != float64(tc.want) {
			t.Fatalf("domains=%d reps=%d: initial running %v, want %d", tc.domains, tc.reps, got, tc.want)
		}
	}
}

func TestNoAttacksNoFailures(t *testing.T) {
	p := smallParams()
	p.TotalAttackRate = 0
	p.TotalFalseAlarmRate = 0
	m := mustBuild(t, p)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 10, Reps: 20, Seed: 7, Validate: true,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, 10),
			m.Unreliability("unrel", 0, 10),
			m.FracDomainsExcluded("excl", 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"unavail", "unrel", "excl"} {
		if got := res.MustGet(name).Mean; got != 0 {
			t.Fatalf("%s = %v with no attacks", name, got)
		}
	}
}

func TestFalseAlarmsAloneExcludeDomains(t *testing.T) {
	// With only false alarms, domains still get excluded (the paper's
	// explanation for Fig 3(c)'s fraction being below 1 at one host per
	// domain) and the corrupt fraction at exclusion is exactly 0.
	p := smallParams()
	p.TotalAttackRate = 0
	m := mustBuild(t, p)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 10, Reps: 60, Seed: 8, Validate: true,
		Vars: []reward.Var{
			m.FracDomainsExcluded("excl", 10),
			m.FracCorruptHostsAtExclusion("corrfrac", 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MustGet("excl").Mean; got <= 0 {
		t.Fatalf("no domains excluded by false alarms: %v", got)
	}
	cf := res.MustGet("corrfrac")
	if cf.N == 0 || cf.Mean != 0 {
		t.Fatalf("corrupt fraction at exclusion = %v (n=%d), want 0", cf.Mean, cf.N)
	}
}

func TestUnreliabilityMatchesLatch(t *testing.T) {
	// The paper's rep_grp_failure latch and the first-passage definition
	// must agree on every replication.
	p := smallParams()
	m := mustBuild(t, p)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 8, Reps: 300, Seed: 9, Workers: 1,
		Vars: []reward.Var{
			m.Unreliability("fp", 0, 8),
			m.GroupFailed("latch", 0, 8),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, latch := res.MustGet("fp"), res.MustGet("latch")
	if fp.Mean != latch.Mean {
		t.Fatalf("first-passage unreliability %v != latch unreliability %v", fp.Mean, latch.Mean)
	}
}

func TestReproducibleAcrossBuilds(t *testing.T) {
	// Two independent Build calls must produce identical simulations for
	// the same seed (activity ordering is deterministic).
	run := func() float64 {
		m := mustBuild(t, smallParams())
		res, err := sim.Run(sim.Spec{
			Model: m.SAN, Until: 5, Reps: 30, Seed: 10, Workers: 1,
			Vars: []reward.Var{m.Unavailability("u", 0, 0, 5)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MustGet("u").Mean
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results across builds: %v vs %v", a, b)
	}
}

func TestPolicyDivergence(t *testing.T) {
	// Under host exclusion no domain is ever marked excluded; under domain
	// exclusion no lone host is.
	p := smallParams()
	m := mustBuild(t, p)
	vNone := &reward.AtTime{VarName: "hostOnly", T: 10, F: func(s *san.State) float64 {
		// count hosts excluded while their domain is not
		n := 0.0
		for g := range m.HostExcluded {
			if s.Get(m.HostExcluded[g]) == 1 && s.Get(m.DomExcluded[g/p.HostsPerDomain]) == 0 {
				n++
			}
		}
		return n
	}}
	res, err := sim.Run(sim.Spec{Model: m.SAN, Until: 10, Reps: 40, Seed: 21, Vars: []reward.Var{vNone}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MustGet("hostOnly").Max != 0 {
		t.Fatal("domain-exclusion policy excluded an individual host")
	}

	p.Policy = HostExclusion
	m2 := mustBuild(t, p)
	vDom := m2.FracDomainsExcluded("dom", 10)
	res2, err := sim.Run(sim.Spec{Model: m2.SAN, Until: 10, Reps: 40, Seed: 21, Vars: []reward.Var{vDom}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MustGet("dom").Max != 0 {
		t.Fatal("host-exclusion policy marked a whole domain excluded")
	}
}

func TestDeriveRatesSumToTotals(t *testing.T) {
	p := smallParams()
	r := p.derive()
	hosts := float64(p.NumHosts())
	replicas := float64(p.NumApps * p.RepsPerApp) // reps <= domains here
	if p.RepsPerApp > p.NumDomains {
		replicas = float64(p.NumApps * p.NumDomains)
	}
	totalAttack := r.hostAttack*hosts + r.replicaAttack*replicas + r.mgrAttack*hosts
	if diff := totalAttack - p.TotalAttackRate; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("attack rates sum to %v, want %v", totalAttack, p.TotalAttackRate)
	}
	totalFalse := r.hostFalse*hosts + r.replicaFalse*replicas
	if diff := totalFalse - p.TotalFalseAlarmRate; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("false-alarm rates sum to %v, want %v", totalFalse, p.TotalFalseAlarmRate)
	}
}

func TestPolicyString(t *testing.T) {
	if DomainExclusion.String() != "domain-exclusion" || HostExclusion.String() != "host-exclusion" {
		t.Fatal("policy names")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Fatal("unknown policy formatting")
	}
}

func TestTimeMeasures(t *testing.T) {
	p := smallParams()
	m := mustBuild(t, p)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 10, Reps: 400, Seed: 30,
		Vars: []reward.Var{
			m.TimeToByzantine("ttb", 0),
			m.TimeToFirstExclusion("tte"),
			m.Unreliability("unrel", 0, 10),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ttb := res.MustGet("ttb")
	unrel := res.MustGet("unrel")
	// The number of time observations must equal the number of failures.
	if ttb.N != int64(unrel.Mean*float64(unrel.N)+0.5) {
		t.Fatalf("ttb N=%d, unreliable reps=%v", ttb.N, unrel.Mean*float64(unrel.N))
	}
	if ttb.N > 0 && (ttb.Min < 0 || ttb.Max > 10) {
		t.Fatalf("Byzantine times outside horizon: [%v, %v]", ttb.Min, ttb.Max)
	}
	tte := res.MustGet("tte")
	if tte.N == 0 || tte.Min < 0 || tte.Max > 10 {
		t.Fatalf("exclusion times suspicious: n=%d [%v, %v]", tte.N, tte.Min, tte.Max)
	}
}

func TestPlacementStrategiesKeepInvariants(t *testing.T) {
	for _, placement := range []Placement{LeastLoadedPlacement, WeightedRandomPlacement} {
		p := smallParams()
		p.Placement = placement
		runInvariants(t, p, 40, 10, 17)
	}
}

func TestLeastLoadedBalancesInitialPlacement(t *testing.T) {
	// With 1 domain of many hosts, many apps, and least-loaded placement,
	// initial replicas spread perfectly (one per host until wrap-around).
	p := smallParams()
	p.NumDomains = 1
	p.HostsPerDomain = 8
	p.NumApps = 8
	p.RepsPerApp = 1
	p.Placement = LeastLoadedPlacement
	p.TotalAttackRate = 0
	p.TotalFalseAlarmRate = 0
	m := mustBuild(t, p)
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 0.001, Reps: 10, Seed: 31,
		Vars: []reward.Var{m.LoadPerHost("load", 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MustGet("load"); got.Min != 1 || got.Max != 1 {
		t.Fatalf("least-loaded initial load = [%v, %v], want exactly 1", got.Min, got.Max)
	}
}

func TestPlacementValidation(t *testing.T) {
	p := smallParams()
	p.Placement = 0
	if _, err := Build(p); err == nil {
		t.Fatal("zero placement accepted")
	}
	p.Placement = 99
	if _, err := Build(p); err == nil {
		t.Fatal("invalid placement accepted")
	}
	if UniformPlacement.String() != "uniform" || LeastLoadedPlacement.String() != "least-loaded" ||
		WeightedRandomPlacement.String() != "weighted-random" {
		t.Fatal("placement names")
	}
	if !strings.Contains(Placement(9).String(), "9") {
		t.Fatal("unknown placement formatting")
	}
}
