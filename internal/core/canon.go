package core

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"

	"ituaval/internal/san"
)

// Canonicalizer maps a composed ITUA marking to the representative of its
// orbit under the model's structural symmetry group: hosts within a domain
// are exchangeable (they run identical attack/detection/manager machinery
// at identical rates), and whole domains are exchangeable (every domain
// has the same host count and parameters). It satisfies mc.Canonicalizer,
// so plugging it into mc.Options.Canon makes the generator explore the
// lumped quotient chain directly.
//
// The representative is computed by sorting: first the host sub-markings
// within each domain, then the domain blocks, each by a total order on
// their signature bytes. A host's signature is its host-indexed place
// values plus the sorted list of replica slots placed on it; a domain's
// signature is its domain-indexed place values, its membership in the
// active partition pair, and its sorted host signatures. Because a replica
// slot references its host by flattened index (OnHost holds g+1) and the
// partition places reference domains by index, those references are
// rewritten through the sorting permutation, and the partition pair is
// re-normalized to ascending order (the dynamics treat it as unordered).
//
// Soundness (ordinary lumpability): every activity family is instantiated
// identically per host and per domain, every rate function reads only
// values that the permutation transports (host status, domain spread,
// partition membership), and every enumerable choice in the model —
// uniform host placement, weighted-random placement, uniform recovery
// domain, uniform partition pair, uniform campaign subsets, the uniform
// init permutation — is equivariant: permuting the state permutes the
// successor distribution without changing aggregate rates. The one
// exception is LeastLoadedPlacement, whose deterministic lowest-index
// tie-break distinguishes exchangeable hosts; NewCanonicalizer refuses it.
//
// Sorting ties are harmless: two hosts (or domains) compare equal only
// when their signatures — including the inbound reference lists, which
// are disjoint between distinct hosts — are byte-identical, and swapping
// such blocks is the identity on the marking. The canonical form is
// therefore unique, idempotent, and invariant under any group element.
type Canonicalizer struct {
	d, h, a int

	// hostFams holds the non-nil host-indexed place families; each entry
	// has nHosts place indices in flattened host order.
	hostFams [][]int32
	// domFams holds the domain-indexed families (including each app's
	// HasReplica row); each entry has d place indices.
	domFams [][]int32
	// onHost holds the OnHost[a][r] place indices (a-major); their values
	// are flattened host references (g+1, 0 = empty slot).
	onHost []int32
	// partA/partB are the partition place indices, -1 when the model has
	// no partition feature. Their values are domain references (d+1).
	partA, partB int32

	pool sync.Pool // *canonScratch
}

type canonScratch struct {
	refs    [][]int32 // per host: inbound slot ids, ascending
	sigOff  []int32   // per host: end offset into sigBuf
	sigBuf  []byte
	domOff  []int32
	domBuf  []byte
	hostOrd []int32
	domOrd  []int32
	perm    []int32 // old flattened host -> new flattened host
	dPerm   []int32 // old domain -> new domain
	out     []san.Marking
}

// NewCanonicalizer builds the symmetry canonicalizer for a composed model.
// It returns nil when the model admits no usable symmetry: a single host
// (nothing to lump) or LeastLoadedPlacement (its deterministic tie-break
// by host index is not equivariant, so lumping would be unsound). A nil
// return means "generate the full chain".
func NewCanonicalizer(m *Model) *Canonicalizer {
	if m.Params.NumDomains*m.Params.HostsPerDomain <= 1 {
		return nil
	}
	if m.Params.Placement == LeastLoadedPlacement {
		return nil
	}
	c := &Canonicalizer{
		d: m.Params.NumDomains,
		h: m.Params.HostsPerDomain,
		a: m.Params.NumApps,
	}
	idxOf := func(ps []*san.Place) []int32 {
		out := make([]int32, len(ps))
		for i, p := range ps {
			out[i] = int32(p.Index())
		}
		return out
	}
	hostFam := func(ps []*san.Place) {
		if ps != nil {
			c.hostFams = append(c.hostFams, idxOf(ps))
		}
	}
	hostFam(m.HostStatus)
	hostFam(m.HostExcluded)
	hostFam(m.HostDetectDone)
	hostFam(m.MgrStatus)
	hostFam(m.MgrDetectDone)
	hostFam(m.PropDomDone)
	hostFam(m.PropSysDone)
	hostFam(m.NumReplicas)
	hostFam(m.HostExclPending)
	domFam := func(ps []*san.Place) {
		if ps != nil {
			c.domFams = append(c.domFams, idxOf(ps))
		}
	}
	domFam(m.SpreadDom)
	domFam(m.DomExcluded)
	domFam(m.DomMgrsUp)
	domFam(m.DomMgrsCorrupt)
	domFam(m.ExclPending)
	for a := 0; a < c.a; a++ {
		domFam(m.HasReplica[a])
	}
	for a := 0; a < c.a; a++ {
		c.onHost = append(c.onHost, idxOf(m.OnHost[a])...)
	}
	c.partA, c.partB = -1, -1
	if m.PartitionA != nil {
		c.partA = int32(m.PartitionA.Index())
		c.partB = int32(m.PartitionB.Index())
	}
	return c
}

func (c *Canonicalizer) scratch(nPlaces int) *canonScratch {
	if s, ok := c.pool.Get().(*canonScratch); ok {
		return s
	}
	n := c.d * c.h
	return &canonScratch{
		refs:    make([][]int32, n),
		sigOff:  make([]int32, n+1),
		domOff:  make([]int32, c.d+1),
		hostOrd: make([]int32, n),
		domOrd:  make([]int32, c.d),
		perm:    make([]int32, n),
		dPerm:   make([]int32, c.d),
		out:     make([]san.Marking, nPlaces),
	}
}

// Canonicalize rewrites m in place to its orbit representative. Safe for
// concurrent use (scratch state is pooled per call).
func (c *Canonicalizer) Canonicalize(m []san.Marking) {
	s := c.scratch(len(m))
	defer c.pool.Put(s)
	nHosts := c.d * c.h

	// Inbound references: which replica slots sit on each host. Slot ids
	// are appended in ascending order, so each list is already sorted.
	for g := 0; g < nHosts; g++ {
		s.refs[g] = s.refs[g][:0]
	}
	for sid, pi := range c.onHost {
		if v := m[pi]; v > 0 {
			g := int(v) - 1
			s.refs[g] = append(s.refs[g], int32(sid))
		}
	}

	// Host signatures: local place values then inbound slot ids, all as
	// uvarints. Offsets let slices be taken after the buffer stops growing.
	s.sigBuf = s.sigBuf[:0]
	s.sigOff[0] = 0
	for g := 0; g < nHosts; g++ {
		for _, fam := range c.hostFams {
			s.sigBuf = binary.AppendUvarint(s.sigBuf, uint64(uint32(m[fam[g]])))
		}
		for _, sid := range s.refs[g] {
			s.sigBuf = binary.AppendUvarint(s.sigBuf, uint64(sid)+1)
		}
		s.sigOff[g+1] = int32(len(s.sigBuf))
	}
	hostSig := func(g int32) []byte { return s.sigBuf[s.sigOff[g]:s.sigOff[g+1]] }

	// Sort hosts within each domain by signature bytes.
	for g := range s.hostOrd {
		s.hostOrd[g] = int32(g)
	}
	for d := 0; d < c.d; d++ {
		blk := s.hostOrd[d*c.h : (d+1)*c.h]
		sort.Slice(blk, func(i, j int) bool {
			return bytes.Compare(hostSig(blk[i]), hostSig(blk[j])) < 0
		})
	}

	// Domain signatures: domain-local values, partition membership, then
	// the sorted host signatures (length-prefixed, so concatenation stays
	// injective across host boundaries).
	s.domBuf = s.domBuf[:0]
	s.domOff[0] = 0
	for d := 0; d < c.d; d++ {
		for _, fam := range c.domFams {
			s.domBuf = binary.AppendUvarint(s.domBuf, uint64(uint32(m[fam[d]])))
		}
		inCut := uint64(0)
		if c.partA >= 0 && m[c.partA] != 0 &&
			(int(m[c.partA]) == d+1 || int(m[c.partB]) == d+1) {
			inCut = 1
		}
		s.domBuf = binary.AppendUvarint(s.domBuf, inCut)
		for h := 0; h < c.h; h++ {
			sig := hostSig(s.hostOrd[d*c.h+h])
			s.domBuf = binary.AppendUvarint(s.domBuf, uint64(len(sig)))
			s.domBuf = append(s.domBuf, sig...)
		}
		s.domOff[d+1] = int32(len(s.domBuf))
	}
	domSig := func(d int32) []byte { return s.domBuf[s.domOff[d]:s.domOff[d+1]] }
	for d := range s.domOrd {
		s.domOrd[d] = int32(d)
	}
	sort.Slice(s.domOrd, func(i, j int) bool {
		return bytes.Compare(domSig(s.domOrd[i]), domSig(s.domOrd[j])) < 0
	})

	// Compose the permutation: domain dOld moves to position dNew, and its
	// h-th smallest host moves to slot h of the new block.
	for dNew, dOld := range s.domOrd {
		s.dPerm[dOld] = int32(dNew)
		for h := 0; h < c.h; h++ {
			gOld := s.hostOrd[int(dOld)*c.h+h]
			s.perm[gOld] = int32(dNew*c.h + h)
		}
	}

	c.permute(m, s)
}

// permute applies the permutation in s (perm over hosts, dPerm over
// domains) to m via the scratch output vector: host- and domain-indexed
// families move, host references in OnHost and domain references in the
// partition pair are rewritten, and the partition pair is re-normalized
// to ascending order. Everything else is copied through unchanged.
func (c *Canonicalizer) permute(m []san.Marking, s *canonScratch) {
	copy(s.out, m)
	nHosts := c.d * c.h
	for _, fam := range c.hostFams {
		for g := 0; g < nHosts; g++ {
			s.out[fam[s.perm[g]]] = m[fam[g]]
		}
	}
	for _, fam := range c.domFams {
		for d := 0; d < c.d; d++ {
			s.out[fam[s.dPerm[d]]] = m[fam[d]]
		}
	}
	for _, pi := range c.onHost {
		if v := m[pi]; v > 0 {
			s.out[pi] = s.perm[int(v)-1] + 1
		}
	}
	if c.partA >= 0 && m[c.partA] != 0 {
		pa := s.dPerm[int(m[c.partA])-1] + 1
		pb := s.dPerm[int(m[c.partB])-1] + 1
		if pa > pb {
			pa, pb = pb, pa
		}
		s.out[c.partA] = pa
		s.out[c.partB] = pb
	}
	copy(m, s.out)
}
