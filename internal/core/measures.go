package core

import (
	"ituaval/internal/reward"
	"ituaval/internal/san"
)

// Improper returns the improper-service predicate for application app: a
// third or more of the currently running replicas are corrupt but
// undetected (a Byzantine fault), with "no replicas running" improper.
// When the model has the partition feature, service is also improper while
// an active partition isolates the whole replica group across the cut:
// every running replica sits in one of the two severed domains with at
// least one on each side, so no relay path exists and neither side can
// assemble a response majority (under the one-replica-per-domain placement
// law the severed sides hold one replica each). Partitions never cause
// Byzantine (wrong-answer) faults, so Byzantine is unchanged.
func (m *Model) Improper(app int) func(s *san.State) bool {
	running, undet := m.Running[app], m.Undet[app]
	hasRep := m.HasReplica[app]
	pa, pb := m.PartitionA, m.PartitionB
	return func(s *san.State) bool {
		if 3*s.Int(undet) >= s.Int(running) {
			return true
		}
		if pa == nil || s.Get(pa) == 0 {
			return false
		}
		da, db := s.Int(pa)-1, s.Int(pb)-1
		inCut := 0
		for d := range hasRep {
			if s.Get(hasRep[d]) == 0 {
				continue
			}
			if d == da || d == db {
				inCut++
			} else {
				return false // a replica outside the cut relays
			}
		}
		return inCut == 2
	}
}

// improperIndicator is Improper as a 0/1 rate reward.
func (m *Model) improperIndicator(app int) func(s *san.State) float64 {
	pred := m.Improper(app)
	return func(s *san.State) float64 {
		if pred(s) {
			return 1
		}
		return 0
	}
}

// Unavailability is the paper's "unavailability for an interval": the
// expected fraction of [from, to] during which application app's service is
// improper.
func (m *Model) Unavailability(name string, app int, from, to float64) reward.Var {
	return &reward.TimeAverage{VarName: name, F: m.improperIndicator(app), From: from, To: to}
}

// Byzantine returns the Byzantine-fault predicate for application app: at
// least one running replica is corrupt-undetected and such replicas are a
// third or more of those running. This is the condition under which the
// model latches rep_grp_failure; unlike Improper it excludes pure
// replica exhaustion.
func (m *Model) Byzantine(app int) func(s *san.State) bool {
	running, undet := m.Running[app], m.Undet[app]
	return func(s *san.State) bool {
		u := s.Int(undet)
		return u > 0 && 3*u >= s.Int(running)
	}
}

// Unreliability is the paper's "unreliability for an interval": the
// probability that the application suffered a Byzantine fault (the
// rep_grp_failure condition) at least once in [0, by].
func (m *Model) Unreliability(name string, app int, by float64) reward.Var {
	return &reward.FirstPassage{VarName: name, Pred: m.Byzantine(app), By: by}
}

// ImproperEver is the probability that service was improper — Byzantine
// fault or no replicas left — at least once in [0, by] (a stricter
// diagnostic variant of Unreliability).
func (m *Model) ImproperEver(name string, app int, by float64) reward.Var {
	return &reward.FirstPassage{VarName: name, Pred: m.Improper(app), By: by}
}

// GroupFailed reads the model's rep_grp_failure latch at time t — the
// paper's own encoding of unreliability, kept alongside Unreliability so
// tests can verify the two definitions coincide.
func (m *Model) GroupFailed(name string, app int, t float64) reward.Var {
	latch := m.GrpFail[app]
	return &reward.AtTime{VarName: name, T: t, F: func(s *san.State) float64 {
		return float64(s.Get(latch))
	}}
}

// ReplicasRunning is the number of replicas of application app still
// running at time t.
func (m *Model) ReplicasRunning(name string, app int, t float64) reward.Var {
	running := m.Running[app]
	return &reward.AtTime{VarName: name, T: t, F: func(s *san.State) float64 {
		return float64(s.Get(running))
	}}
}

// LoadPerHost is the mean number of replicas per non-excluded host at time
// t (the paper's "number of replicas per host or the load on a host"). If
// every host is excluded the load is reported as zero.
func (m *Model) LoadPerHost(name string, t float64) reward.Var {
	return &reward.AtTime{VarName: name, T: t, F: func(s *san.State) float64 {
		replicas, up := 0, 0
		for g := range m.NumReplicas {
			if s.Get(m.HostExcluded[g]) == 0 {
				up++
				replicas += s.Int(m.NumReplicas[g])
			}
		}
		if up == 0 {
			return 0
		}
		return float64(replicas) / float64(up)
	}}
}

// FracDomainsExcluded is the fraction of security domains excluded by time
// t.
func (m *Model) FracDomainsExcluded(name string, t float64) reward.Var {
	excluded := m.DomainsExcluded
	n := float64(m.Params.NumDomains)
	return &reward.AtTime{VarName: name, T: t, F: func(s *san.State) float64 {
		return float64(s.Get(excluded)) / n
	}}
}

// FracCorruptHostsAtExclusion is the paper's "fraction of corrupt hosts in
// a domain when it is excluded", averaged over the exclusion events of one
// replication within [0, by]. Only meaningful under DomainExclusion.
func (m *Model) FracCorruptHostsAtExclusion(name string, by float64) reward.Var {
	return &reward.ImpulseMean{
		VarName: name,
		Match: func(a *san.Activity, _ int) bool {
			return m.shutActivity[a.Name()]
		},
		V: func(s *san.State, _ *san.Activity) float64 {
			total := s.Int(m.LastExclTotal)
			if total == 0 {
				return 0
			}
			return float64(s.Get(m.LastExclCorrupt)) / float64(total)
		},
		From: 0, To: by,
	}
}

// DomainExclusions counts domain (or host, under HostExclusion) exclusion
// events in [0, by].
func (m *Model) DomainExclusions(name string, by float64) reward.Var {
	return &reward.Count{
		VarName: name,
		Match: func(a *san.Activity, _ int) bool {
			return m.shutActivity[a.Name()]
		},
		From: 0, To: by,
	}
}

// CorruptHostsFrac is the fraction of all hosts whose OS is corrupt at time
// t (diagnostic; not a paper figure).
func (m *Model) CorruptHostsFrac(name string, t float64) reward.Var {
	n := float64(len(m.HostStatus))
	return &reward.AtTime{VarName: name, T: t, F: func(s *san.State) float64 {
		c := 0
		for _, hs := range m.HostStatus {
			if s.Get(hs) > 0 {
				c++
			}
		}
		return float64(c) / n
	}}
}

// TimeToByzantine emits the time of application app's first Byzantine
// fault (only for replications where one occurred); together with
// Unreliability it characterizes the failure-time distribution.
func (m *Model) TimeToByzantine(name string, app int) reward.Var {
	return &reward.FirstPassageTime{VarName: name, Pred: m.Byzantine(app)}
}

// TimeToFirstExclusion emits the time of the first domain (or host, under
// HostExclusion) exclusion, for replications with at least one.
func (m *Model) TimeToFirstExclusion(name string) reward.Var {
	return &reward.Func{VarName: name, New: func() reward.Observer {
		return &firstExclusionObs{m: m}
	}}
}

type firstExclusionObs struct {
	m        *Model
	recorded bool
	when     float64
}

func (o *firstExclusionObs) Init(*san.State, float64)             {}
func (o *firstExclusionObs) Advance(*san.State, float64, float64) {}
func (o *firstExclusionObs) Done(*san.State, float64)             {}
func (o *firstExclusionObs) Fired(_ *san.State, a *san.Activity, _ int, t float64) {
	if !o.recorded && o.m.shutActivity[a.Name()] {
		o.recorded, o.when = true, t
	}
}
func (o *firstExclusionObs) Results(emit func(float64)) {
	if o.recorded {
		emit(o.when)
	}
}

// hostsUpF returns a rate-reward function counting non-excluded hosts
// (resource-preservation diagnostic used by the policy comparison).
func (m *Model) hostsUpF() func(s *san.State) float64 {
	return func(s *san.State) float64 {
		up := 0
		for _, e := range m.HostExcluded {
			if s.Get(e) == 0 {
				up++
			}
		}
		return float64(up)
	}
}

// HostsUp is the number of non-excluded hosts at time t.
func (m *Model) HostsUp(name string, t float64) reward.Var {
	return &reward.AtTime{VarName: name, T: t, F: m.hostsUpF()}
}
