// Package core implements the paper's primary contribution: the composed
// stochastic activity network model of the ITUA intrusion-tolerant
// replication system, with both the domain-exclusion and host-exclusion
// management algorithms, and the intrusion-tolerance measures defined on it
// (unavailability and unreliability for an interval, replicas running, load
// per host, fraction of corrupt hosts in an excluded domain, and fraction of
// excluded domains).
//
// The model follows Section 2–3 of Singh, Cukier & Sanders (DSN 2003):
// hosts grouped into security domains, each host running one manager;
// applications replicated with at most one replica per application per
// domain; three classes of host attacks (script-based, exploratory,
// innovative) with class-specific intrusion-detection probabilities; false
// alarms that convict innocent replicas and hosts; intra-domain and
// system-wide attack spread that raises host attack rates; Byzantine
// one-third thresholds for replication groups and manager groups; and a
// decentralized recovery algorithm that restarts killed replicas on
// uniformly chosen qualifying domains and hosts.
package core

import (
	"errors"
	"fmt"
)

// Policy selects the management algorithm's response to a detected
// corruption (Section 4.3 of the paper).
type Policy int

const (
	// DomainExclusion excludes the entire security domain containing a
	// detected corruption — the paper's preemptive default.
	DomainExclusion Policy = iota + 1
	// HostExclusion excludes only the host on which the corruption was
	// detected — the paper's resource-saving alternative.
	HostExclusion
)

func (p Policy) String() string {
	switch p {
	case DomainExclusion:
		return "domain-exclusion"
	case HostExclusion:
		return "host-exclusion"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Placement selects how the recovery algorithm picks the host for a new
// replica within the chosen domain. The paper uses uniform random choice;
// the alternatives explore the ITUA architecture's "unpredictable
// adaptation" theme (ablation abl-placement).
type Placement int

const (
	// UniformPlacement picks a live host uniformly (the paper's scheme).
	UniformPlacement Placement = iota + 1
	// LeastLoadedPlacement picks the live host with the fewest replicas
	// (deterministic, hence predictable by the attacker).
	LeastLoadedPlacement
	// WeightedRandomPlacement picks a live host with probability inversely
	// proportional to 1 + its replica count (randomized load balancing).
	WeightedRandomPlacement
)

func (p Placement) String() string {
	switch p {
	case UniformPlacement:
		return "uniform"
	case LeastLoadedPlacement:
		return "least-loaded"
	case WeightedRandomPlacement:
		return "weighted-random"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Params configures the ITUA model. Time unit is one hour throughout, as in
// the paper ("for ease of understanding, consider one time unit = one
// hour"). The zero value is not usable; start from DefaultParams.
type Params struct {
	// Topology.
	NumDomains     int // security domains
	HostsPerDomain int // hosts in each domain (paper assumes equal sizes)
	NumApps        int // replicated applications
	RepsPerApp     int // replicas per application (7 in every paper study)

	// Policy is the exclusion algorithm.
	Policy Policy

	// TotalAttackRate is the cumulative base rate of successful attacks on
	// the system (3/h in the paper). It is divided over attack targets by
	// the AttackSplit weights and then evenly over the entities of each
	// kind; spread and corruption multipliers raise the effective rates
	// above the base, as in the paper.
	TotalAttackRate    float64
	AttackSplitHost    float64 // weight of host-OS/services attacks
	AttackSplitReplica float64 // weight of application-replica attacks
	AttackSplitMgr     float64 // weight of management-entity attacks

	// TotalFalseAlarmRate is the cumulative false-alarm rate (2/h in the
	// paper), split by the FalseSplit weights between host-level alarms
	// (OS or manager infiltration) and replica-corruption alarms.
	TotalFalseAlarmRate float64
	FalseSplitHost      float64
	FalseSplitReplica   float64

	// Attack-class distribution for host attacks (80/15/5 in the paper).
	PScript, PExploratory, PInnovative float64

	// Intrusion-detection success probabilities (paper defaults: 0.9
	// script, 0.75 exploratory, 0.4 innovative, 0.8 replicas, 0.8
	// managers). Each corruption gets one detection trial.
	DetectScript, DetectExploratory, DetectInnovative float64
	DetectReplica, DetectMgr                          float64

	// Detection trial rates: the reciprocal mean latency of the whole
	// detect-confirm-respond pipeline of the intrusion detection software.
	// The paper does not publish these; the defaults (0.25/h) were
	// calibrated so the exclusion dynamics reproduce the published figure
	// shapes (see DESIGN.md and EXPERIMENTS.md).
	HostDetectRate, ReplicaDetectRate, MgrDetectRate float64

	// Attack spread. A corrupted host fires one intra-domain and one
	// system-wide propagation event. As in the paper, a single "spread
	// effect" variable per level both sets the propagation rate and scales
	// the resulting vulnerability increase: with d intra-domain and s
	// system-wide propagation events recorded, host attack rates grow as
	// base × (1 + SpreadRateCoeff × (DomainSpreadRate·d + SystemSpreadRate·s)).
	DomainSpreadRate float64 // 1/h default; swept 0..10 in study 3
	SystemSpreadRate float64 // 0.1/h default
	SpreadRateCoeff  float64 // default 1

	// AssetSpreadCoeff scales how much intra-domain spread additionally
	// raises the attack rates on the *assets* (replicas and managers) of
	// the domain's hosts, on top of the host-corruption multiplier:
	// assetRate × (1 + AssetSpreadCoeff × DomainSpreadRate × spreadCount).
	// Zero restricts the spread effect to host-OS attacks as in the
	// narrowest reading of the paper.
	AssetSpreadCoeff float64

	// CorruptionMult multiplies the attack rates on a host's replicas and
	// manager once the host OS is corrupted (2 default; 5 in study 3).
	CorruptionMult float64

	// MisbehaveRate is the rate at which a corrupt replica exhibits
	// anomalous behaviour observable by its replication group (2/h).
	MisbehaveRate float64

	// RecoveryRate is the rate of the management recovery action that
	// starts one replacement replica (high: default 60/h ≈ one minute).
	RecoveryRate float64

	// RateBaseHosts and RateBaseReplicas, when positive, fix the entity
	// counts used to convert the cumulative attack and false-alarm budgets
	// into per-entity rates, instead of the swept topology's own counts.
	// Study 2 (Fig 4) holds the per-host intrusion probability constant
	// while the total number of hosts grows, so its sweep sets
	// RateBaseHosts to the baseline topology's host count.
	RateBaseHosts    int
	RateBaseReplicas int

	// Placement selects the host-choice rule used by recovery and initial
	// placement (default UniformPlacement, the paper's scheme).
	Placement Placement

	// ExcludeOnReplicaConviction controls the management response to a
	// replica convicted by its replication group or by the IDS: if true,
	// the conviction requests the configured domain/host exclusion (the
	// strict reading of Section 2's prose); if false (default), the
	// convicted replica is killed and restarted elsewhere, and exclusions
	// are triggered only by IDS detections of host-OS or manager
	// infiltration. The published curves of Figures 3–5 are reproduced by
	// the default; EXPERIMENTS.md discusses the discrepancy.
	ExcludeOnReplicaConviction bool

	// Analytic marks the model for numerical (CTMC) solution rather than
	// simulation. The only behavioural difference is that the intrusions
	// counter saturates at 1 instead of growing without bound — every
	// guard and measure tests intrusions == 0 only, so all observable
	// quantities are untouched while the reachable state space becomes
	// finite. Simulation of an Analytic model is still valid and agrees
	// with the non-Analytic one on every measure.
	Analytic bool

	// Environment faults (all zero by default, reproducing the paper's
	// independent-intrusion world exactly — see DESIGN.md "Environment
	// faults"). The Environment submodel adds correlated adversity on top
	// of the per-entity attack processes.

	// PartitionRate is the rate at which the network severs one uniformly
	// chosen pair of security domains. At most one partition is active at
	// a time; while severed, management quorums are blocked (no
	// convictions, exclusions, or recoveries complete) and system-wide
	// attack spread cannot originate from either side of the cut. A
	// positive rate requires PartitionHealRate > 0 and NumDomains >= 2.
	PartitionRate float64
	// PartitionHealRate is the reciprocal mean duration of a partition
	// (exponential healing time).
	PartitionHealRate float64

	// CampaignRate is the rate of correlated attack campaigns. Each
	// firing picks min(CampaignSize, eligible) distinct uncorrupted,
	// unexcluded hosts uniformly and corrupts each independently with
	// probability CampaignProb — a Binomial(k, p) batch compromise in one
	// event. Corrupted hosts draw an attack class from the usual
	// PScript/PExploratory/PInnovative mix; spread and detection then
	// follow the ordinary per-host machinery.
	CampaignRate float64
	// CampaignSize is the number of hosts targeted per campaign firing
	// (the Binomial k). Must be >= 1 when CampaignRate > 0.
	CampaignSize int
	// CampaignProb is the per-target compromise probability (the Binomial
	// p). Must be in (0, 1] when CampaignRate > 0.
	CampaignProb float64

	// RepairCrew, when positive, bounds the management infrastructure's
	// restart capacity: a pool of RepairCrew repair servers, each able to
	// serve one application's recovery at a time. A recovery must first
	// claim an idle crew member (instantaneous when one is free) and
	// holds it for the whole exponential RecoveryRate service; the model
	// maintains the conservation law busy + idle = RepairCrew. Zero means
	// unbounded repair capacity (the paper's implicit assumption).
	RepairCrew int
}

// DefaultParams returns the paper's baseline configuration (Section 4):
// the topology fields are zero and must be set by the caller.
func DefaultParams() Params {
	return Params{
		Policy:              DomainExclusion,
		TotalAttackRate:     3,
		AttackSplitHost:     1,
		AttackSplitReplica:  2,
		AttackSplitMgr:      0.3,
		TotalFalseAlarmRate: 2,
		FalseSplitHost:      1,
		FalseSplitReplica:   1,
		PScript:             0.80,
		PExploratory:        0.15,
		PInnovative:         0.05,
		DetectScript:        0.90,
		DetectExploratory:   0.75,
		DetectInnovative:    0.40,
		DetectReplica:       0.80,
		DetectMgr:           0.80,
		HostDetectRate:      0.25,
		ReplicaDetectRate:   0.25,
		MgrDetectRate:       0.25,
		DomainSpreadRate:    1,
		SystemSpreadRate:    0.1,
		SpreadRateCoeff:     1,
		AssetSpreadCoeff:    0.5,
		CorruptionMult:      2,
		MisbehaveRate:       2,
		RecoveryRate:        60,
		Placement:           UniformPlacement,
	}
}

// Validate checks the configuration.
func (p Params) Validate() error {
	var errs []error
	add := func(cond bool, format string, args ...interface{}) {
		if cond {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	add(p.NumDomains < 1, "NumDomains must be >= 1, got %d", p.NumDomains)
	add(p.HostsPerDomain < 1, "HostsPerDomain must be >= 1, got %d", p.HostsPerDomain)
	add(p.NumApps < 1, "NumApps must be >= 1, got %d", p.NumApps)
	add(p.NumApps > 15, "NumApps must be <= 15 (the paper's app_id bit-vector bound), got %d", p.NumApps)
	add(p.RepsPerApp < 1, "RepsPerApp must be >= 1, got %d", p.RepsPerApp)
	add(p.Policy != DomainExclusion && p.Policy != HostExclusion, "invalid Policy %d", int(p.Policy))
	add(p.TotalAttackRate < 0, "TotalAttackRate must be >= 0")
	add(p.AttackSplitHost < 0 || p.AttackSplitReplica < 0 || p.AttackSplitMgr < 0, "attack split weights must be >= 0")
	add(p.AttackSplitHost+p.AttackSplitReplica+p.AttackSplitMgr <= 0, "attack split weights must not all be zero")
	add(p.TotalFalseAlarmRate < 0, "TotalFalseAlarmRate must be >= 0")
	add(p.FalseSplitHost < 0 || p.FalseSplitReplica < 0, "false-alarm split weights must be >= 0")
	add(p.FalseSplitHost+p.FalseSplitReplica <= 0, "false-alarm split weights must not all be zero")
	probs := map[string]float64{
		"PScript": p.PScript, "PExploratory": p.PExploratory, "PInnovative": p.PInnovative,
		"DetectScript": p.DetectScript, "DetectExploratory": p.DetectExploratory,
		"DetectInnovative": p.DetectInnovative, "DetectReplica": p.DetectReplica, "DetectMgr": p.DetectMgr,
	}
	for name, v := range probs {
		add(v < 0 || v > 1, "%s must be in [0,1], got %v", name, v)
	}
	add(p.PScript+p.PExploratory+p.PInnovative <= 0, "attack class probabilities must not all be zero")
	add(p.HostDetectRate < 0 || p.ReplicaDetectRate < 0 || p.MgrDetectRate < 0, "detection rates must be >= 0")
	add(p.DomainSpreadRate < 0 || p.SystemSpreadRate < 0, "spread rates must be >= 0")
	add(p.SpreadRateCoeff < 0, "SpreadRateCoeff must be >= 0")
	add(p.AssetSpreadCoeff < 0, "AssetSpreadCoeff must be >= 0")
	add(p.CorruptionMult < 1, "CorruptionMult must be >= 1, got %v", p.CorruptionMult)
	add(p.MisbehaveRate < 0, "MisbehaveRate must be >= 0")
	add(p.RecoveryRate <= 0, "RecoveryRate must be > 0")
	add(p.RateBaseHosts < 0 || p.RateBaseReplicas < 0, "rate base counts must be >= 0")
	add(p.Placement < UniformPlacement || p.Placement > WeightedRandomPlacement, "invalid Placement %d", int(p.Placement))
	add(p.PartitionRate < 0, "PartitionRate must be >= 0")
	add(p.PartitionHealRate < 0, "PartitionHealRate must be >= 0")
	add(p.PartitionRate > 0 && p.PartitionHealRate <= 0, "PartitionRate > 0 requires PartitionHealRate > 0")
	add(p.PartitionRate > 0 && p.NumDomains < 2, "PartitionRate > 0 requires NumDomains >= 2")
	add(p.CampaignRate < 0, "CampaignRate must be >= 0")
	add(p.CampaignSize < 0, "CampaignSize must be >= 0")
	add(p.CampaignProb < 0 || p.CampaignProb > 1, "CampaignProb must be in [0,1], got %v", p.CampaignProb)
	add(p.CampaignRate > 0 && p.CampaignSize < 1, "CampaignRate > 0 requires CampaignSize >= 1")
	add(p.CampaignRate > 0 && p.CampaignProb <= 0, "CampaignRate > 0 requires CampaignProb > 0")
	add(p.RepairCrew < 0, "RepairCrew must be >= 0")
	return errors.Join(errs...)
}

// NumHosts returns the total host count.
func (p Params) NumHosts() int { return p.NumDomains * p.HostsPerDomain }

// InitialGroupSize returns the number of replicas each application starts
// with: RepsPerApp capped by the one-replica-per-domain placement rule.
func (p Params) InitialGroupSize() int { return min(p.RepsPerApp, p.NumDomains) }

// derived per-entity base rates.
type rates struct {
	hostAttack    float64 // per host
	replicaAttack float64 // per replica slot (running)
	mgrAttack     float64 // per manager
	hostFalse     float64 // per host
	replicaFalse  float64 // per running replica
}

func (p Params) derive() rates {
	wSum := p.AttackSplitHost + p.AttackSplitReplica + p.AttackSplitMgr
	hosts := float64(p.NumHosts())
	if p.RateBaseHosts > 0 {
		hosts = float64(p.RateBaseHosts)
	}
	replicas := float64(p.NumApps * p.InitialGroupSize())
	if p.RateBaseReplicas > 0 {
		replicas = float64(p.RateBaseReplicas)
	}
	fSum := p.FalseSplitHost + p.FalseSplitReplica
	r := rates{}
	if hosts > 0 {
		r.hostAttack = p.TotalAttackRate * p.AttackSplitHost / wSum / hosts
		r.mgrAttack = p.TotalAttackRate * p.AttackSplitMgr / wSum / hosts
		r.hostFalse = p.TotalFalseAlarmRate * p.FalseSplitHost / fSum / hosts
	}
	if replicas > 0 {
		r.replicaAttack = p.TotalAttackRate * p.AttackSplitReplica / wSum / replicas
		r.replicaFalse = p.TotalFalseAlarmRate * p.FalseSplitReplica / fSum / replicas
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
