package core

import (
	"fmt"

	"ituaval/internal/rng"
	"ituaval/internal/san"
)

// Model is the composed ITUA SAN together with the place handles the
// measures and tests need. Host g below is the flattened host index
// g = domain*HostsPerDomain + hostInDomain; places that encode a host in a
// marking store g+1 so that 0 means "none".
type Model struct {
	Params Params
	SAN    *san.Model

	// Global places.
	SpreadSys       *san.Place // attack_spread_system
	Intrusions      *san.Place // successful attacks so far (quenches false alarms)
	UndetMgrs       *san.Place // undetected_corr_mgrs (system-wide)
	MgrsRunning     *san.Place // currently active managers (system-wide)
	DomainsExcluded *san.Place // number of excluded domains
	LastExclCorrupt *san.Place // corrupt hosts in the most recently excluded domain
	LastExclTotal   *san.Place // hosts in the most recently excluded domain

	// Per-domain places (index d).
	SpreadDom      []*san.Place // attack_spread_domain
	DomExcluded    []*san.Place // exclude flag
	DomMgrsUp      []*san.Place // active managers in the domain
	DomMgrsCorrupt []*san.Place // undetected corrupt managers in the domain
	ExclPending    []*san.Place // domain conviction awaiting shut_domain

	// Per-host places (flattened index g). The one-shot detection/spread
	// flags and the pending-exclusion places exist only in configurations
	// whose rates make the corresponding activities possible (see the
	// structural gates in Build); a slice is nil when its places cannot be
	// used, so a silently-dead place never exists to begin with.
	HostStatus      []*san.Place // 0 ok; 1 script; 2 exploratory; 3 innovative
	HostExcluded    []*san.Place
	HostDetectDone  []*san.Place // host-OS IDS trial consumed
	MgrStatus       []*san.Place // 0 ok; 1 corrupt undetected; 2 removed
	MgrDetectDone   []*san.Place
	PropDomDone     []*san.Place // intra-domain spread fired
	PropSysDone     []*san.Place // system-wide spread fired
	NumReplicas     []*san.Place // replicas running on the host
	HostExclPending []*san.Place // host conviction awaiting shut_host

	// Per-application places (index a).
	Running      []*san.Place // replicas_running
	Undet        []*san.Place // rep_corr_undetected
	GrpFail      []*san.Place // rep_grp_failure latch
	NeedRecovery []*san.Place

	// HasReplica[a][d] is 1 while application a has a replica in domain d.
	HasReplica [][]*san.Place

	// Environment-fault places (nil unless the corresponding fault rates
	// are positive; see the structural gates in Build). PartitionA/B hold
	// the severed domain + 1 while a partition is active (0 = healed).
	// RepairBusy + RepairIdle = Params.RepairCrew is the crew conservation
	// law, and RepairInService[a] is 1 while a crew member is serving
	// application a's recovery (RepairBusy = Σa RepairInService[a]).
	PartitionA      *san.Place
	PartitionB      *san.Place
	RepairBusy      *san.Place
	RepairIdle      *san.Place
	RepairInService []*san.Place

	// Per-replica-slot places ([a][r]); the slot count is min(RepsPerApp,
	// NumDomains), the most replicas an app can run at once under the
	// one-per-domain placement law.
	OnHost        [][]*san.Place // 0 = slot empty, else flattened host + 1
	RepCorrupt    [][]*san.Place
	RepConvicted  [][]*san.Place
	RepDetectDone [][]*san.Place

	// shutActivity[name] is true for the exclusion activities, which the
	// fraction-of-corrupt-hosts impulse measure matches on.
	shutActivity map[string]bool
}

// Build constructs and finalizes the composed ITUA model for p.
func Build(p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid params: %w", err)
	}
	D, H, A, R := p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp
	nHosts := D * H
	rt := p.derive()

	// ---- structural gates ------------------------------------------------
	// An activity whose rate parameters make it impossible is not created at
	// all, and the one-shot bookkeeping places only it can use are not
	// created either. A gated-out activity previously existed with a
	// constant-false predicate and never consumed randomness, so omitting it
	// leaves every trajectory bit-identical while letting the static linter
	// (san.Model.Lint) hold the remaining net to full liveness standards.
	canAttackHost := rt.hostAttack > 0
	canAttackMgr := rt.mgrAttack > 0
	canAttackRep := rt.replicaAttack > 0
	// Correlated campaigns are a second way hosts become corrupt, so every
	// gate that used to ask "can a host attack succeed" asks "can a host
	// become corrupt" instead; with the campaign rates zero the two are the
	// same predicate and the net is structurally unchanged.
	canCampaign := p.CampaignRate > 0 && p.CampaignSize > 0 && p.CampaignProb > 0
	canCorruptHost := canAttackHost || canCampaign
	// Domain spread raises the attack rates on the domain's hosts, managers
	// and replicas; it is observable only if at least one of those attack
	// processes exists. System spread raises host attack rates only.
	canSpreadDom := p.DomainSpreadRate > 0 && canCorruptHost &&
		(canAttackHost || canAttackMgr || canAttackRep)
	canSpreadSys := p.SystemSpreadRate > 0 && canAttackHost
	canDetectHost := p.HostDetectRate > 0 && canCorruptHost
	canDetectMgr := p.MgrDetectRate > 0 && canAttackMgr
	canDetectRep := p.ReplicaDetectRate > 0 && canAttackRep
	// Misbehaviour conviction requires a group with strictly less than a
	// third of its running replicas corrupt while at least one is: with
	// min(R, D) <= 3 running replicas, a single corruption already meets
	// the one-third threshold, so the predicate can never hold.
	canMisbehave := p.MisbehaveRate > 0 && canAttackRep && min(R, D) > 3
	// A replica can be convicted by detection, misbehaviour, or a false alarm.
	canConvict := canDetectRep || canMisbehave || rt.replicaFalse > 0
	// An exclusion can originate from host/manager detection, a host-level
	// false alarm, or (under the alternative response) a replica conviction.
	canExclude := canDetectHost || canDetectMgr || rt.hostFalse > 0 ||
		(canConvict && p.ExcludeOnReplicaConviction)
	// Replicas die through slot convictions, host exclusions, or domain
	// exclusions; recovery needs a kill source plus a qualifying target
	// domain. A whole-domain exclusion can never free a usable domain, so
	// when every domain starts with a replica (min(R, D) == D) the
	// domain-exclusion policy alone cannot make recovery fire; the same
	// holds for host exclusion at one host per domain.
	canRecover := (canConvict && !p.ExcludeOnReplicaConviction) ||
		(p.Policy == HostExclusion && canExclude && (H > 1 || min(R, D) < D)) ||
		(p.Policy == DomainExclusion && canExclude && min(R, D) < D)
	// Environment faults: partitions need a pair of domains to sever, and
	// a repair crew only matters if recovery can fire at all.
	canPartition := p.PartitionRate > 0 && p.PartitionHealRate > 0 && D > 1
	canCrew := p.RepairCrew > 0 && canRecover
	// An app holds at most min(R, D) replicas at once (one per domain), and
	// recovery always reuses the lowest free slot, so slots beyond that
	// count can never be occupied — they are not created.
	nSlots := min(R, D)

	m := &Model{
		Params:       p,
		SAN:          san.NewModel(fmt.Sprintf("itua-%s-%dx%d-%dx%d", p.Policy, D, H, A, R)),
		shutActivity: make(map[string]bool),
	}
	s := m.SAN

	// ---- places ------------------------------------------------------
	if canAttackHost {
		// Only host attacks read the system-wide spread marking, and only
		// their propagation writes it.
		m.SpreadSys = s.Place("attack_spread_system", 0)
	}
	m.Intrusions = s.Place("intrusions", 0)
	// recordIntrusion counts a successful attack. The measures and guards
	// only ever test intrusions == 0, so in analytic mode the counter
	// saturates at 1 — keeping the state space finite for the numerical
	// solver without changing any observable behaviour.
	recordIntrusion := func(st *san.State) {
		if p.Analytic && st.Get(m.Intrusions) > 0 {
			return
		}
		st.Add(m.Intrusions, 1)
	}
	m.UndetMgrs = s.Place("undetected_corr_mgrs", 0)
	m.MgrsRunning = s.Place("mgrs_running", san.Marking(nHosts))
	m.DomainsExcluded = s.Place("domains_excluded", 0)
	m.LastExclCorrupt = s.Place("last_excl_corrupt", 0)
	m.LastExclTotal = s.Place("last_excl_total", 0)

	perDomain := func(name string, init san.Marking) []*san.Place {
		ps := make([]*san.Place, D)
		for d := 0; d < D; d++ {
			ps[d] = s.Place(fmt.Sprintf("domain[%d].%s", d, name), init)
		}
		return ps
	}
	m.SpreadDom = perDomain("attack_spread_domain", 0)
	m.DomExcluded = perDomain("excluded", 0)
	m.DomMgrsUp = perDomain("mgrs_up", san.Marking(H))
	m.DomMgrsCorrupt = perDomain("mgrs_corrupt", 0)
	if p.Policy == DomainExclusion && canExclude {
		m.ExclPending = perDomain("exclude_pending", 0)
	}

	perHost := func(name string) []*san.Place {
		ps := make([]*san.Place, nHosts)
		for g := 0; g < nHosts; g++ {
			ps[g] = s.Place(fmt.Sprintf("domain[%d].host[%d].%s", g/H, g%H, name), 0)
		}
		return ps
	}
	m.HostStatus = perHost("status")
	m.HostExcluded = perHost("excluded")
	if canDetectHost {
		m.HostDetectDone = perHost("detect_done")
	}
	m.MgrStatus = perHost("mgr_status")
	if canDetectMgr {
		m.MgrDetectDone = perHost("mgr_detect_done")
	}
	if canSpreadDom {
		m.PropDomDone = perHost("prop_domain_done")
	}
	if canSpreadSys {
		m.PropSysDone = perHost("prop_sys_done")
	}
	m.NumReplicas = perHost("num_replicas")
	if p.Policy == HostExclusion && canExclude {
		m.HostExclPending = perHost("exclude_pending")
	}

	perApp := func(name string) []*san.Place {
		ps := make([]*san.Place, A)
		for a := 0; a < A; a++ {
			ps[a] = s.Place(fmt.Sprintf("app[%d].%s", a, name), 0)
		}
		return ps
	}
	m.Running = perApp("replicas_running")
	m.Undet = perApp("rep_corr_undetected")
	m.GrpFail = perApp("rep_grp_failure")
	m.NeedRecovery = perApp("need_recovery")

	m.HasReplica = make([][]*san.Place, A)
	m.OnHost = make([][]*san.Place, A)
	m.RepCorrupt = make([][]*san.Place, A)
	m.RepConvicted = make([][]*san.Place, A)
	if canDetectRep {
		m.RepDetectDone = make([][]*san.Place, A)
	}
	for a := 0; a < A; a++ {
		m.HasReplica[a] = make([]*san.Place, D)
		for d := 0; d < D; d++ {
			m.HasReplica[a][d] = s.Place(fmt.Sprintf("app[%d].has_replica[%d]", a, d), 0)
		}
		m.OnHost[a] = make([]*san.Place, nSlots)
		m.RepCorrupt[a] = make([]*san.Place, nSlots)
		m.RepConvicted[a] = make([]*san.Place, nSlots)
		if canDetectRep {
			m.RepDetectDone[a] = make([]*san.Place, nSlots)
		}
		for r := 0; r < nSlots; r++ {
			m.OnHost[a][r] = s.Place(fmt.Sprintf("app[%d].rep[%d].on_host", a, r), 0)
			m.RepCorrupt[a][r] = s.Place(fmt.Sprintf("app[%d].rep[%d].corrupt", a, r), 0)
			m.RepConvicted[a][r] = s.Place(fmt.Sprintf("app[%d].rep[%d].convicted", a, r), 0)
			if canDetectRep {
				m.RepDetectDone[a][r] = s.Place(fmt.Sprintf("app[%d].rep[%d].detect_done", a, r), 0)
			}
		}
	}

	if canPartition {
		m.PartitionA = s.Place("env.partition_a", 0)
		m.PartitionB = s.Place("env.partition_b", 0)
	}
	if canCrew {
		m.RepairBusy = s.Place("env.repair_busy", 0)
		m.RepairIdle = s.Place("env.repair_idle", san.Marking(p.RepairCrew))
		m.RepairInService = perApp("repair_in_service")
	}

	// ---- shared predicates and effect helpers -------------------------

	// Manager quorum conditions: "less than a third of the currently
	// active group members are corrupt" (Section 2). An active network
	// partition blocks the system-wide quorum entirely (a conservative
	// reading: the global management group cannot certify a majority view
	// while any two domains cannot talk); domain-local groups are
	// unaffected because a partition severs only inter-domain links.
	globalQuorumOK := func(st *san.State) bool {
		if m.PartitionA != nil && st.Get(m.PartitionA) != 0 {
			return false
		}
		return 3*st.Int(m.UndetMgrs) < st.Int(m.MgrsRunning)
	}
	// cutsDomain reports whether domain d sits on either side of the
	// currently active partition.
	cutsDomain := func(st *san.State, d int) bool {
		if m.PartitionA == nil {
			return false
		}
		pa := st.Int(m.PartitionA)
		return pa != 0 && (pa == d+1 || st.Int(m.PartitionB) == d+1)
	}
	domainGroupOK := func(st *san.State, d int) bool {
		return 3*st.Int(m.DomMgrsCorrupt[d]) < st.Int(m.DomMgrsUp[d])
	}

	// checkByzantine latches rep_grp_failure when a third or more of the
	// currently running replicas of app a are corrupt but undetected — a
	// Byzantine fault of the replication group (Section 3.2). Exhaustion
	// (running == 0 with no corruptions) is improper *service* and counts
	// toward unavailability, but is not a Byzantine fault and does not
	// latch, matching the paper's rep_grp_failure semantics.
	checkByzantine := func(st *san.State, a int) {
		undet := st.Int(m.Undet[a])
		if undet > 0 && 3*undet >= st.Int(m.Running[a]) {
			st.Set(m.GrpFail[a], 1)
		}
	}

	// killReplicasOnHost kills every replica running on host g: the paper's
	// kill_replica behaviour (decrement replicas_running, reset the slot's
	// local places for reuse, raise need_recovery).
	killReplicasOnHost := func(st *san.State, g int) {
		d := g / H
		for a := 0; a < A; a++ {
			touched := false
			for r := 0; r < nSlots; r++ {
				if st.Int(m.OnHost[a][r]) != g+1 {
					continue
				}
				st.Set(m.OnHost[a][r], 0)
				// A replica contributes to rep_corr_undetected exactly
				// while corrupt and not yet convicted.
				if st.Get(m.RepCorrupt[a][r]) == 1 && st.Get(m.RepConvicted[a][r]) == 0 {
					st.Add(m.Undet[a], -1)
				}
				st.Set(m.RepCorrupt[a][r], 0)
				st.Set(m.RepConvicted[a][r], 0)
				if m.RepDetectDone != nil {
					st.Set(m.RepDetectDone[a][r], 0)
				}
				st.Add(m.Running[a], -1)
				st.Set(m.HasReplica[a][d], 0)
				st.Add(m.NeedRecovery[a], 1)
				touched = true
			}
			if touched {
				checkByzantine(st, a)
			}
		}
		st.Set(m.NumReplicas[g], 0)
	}

	// killReplicaSlot kills a single convicted replica (slot a, r running on
	// host g), freeing the slot for a restart elsewhere.
	killReplicaSlot := func(st *san.State, a, r, g int) {
		st.Set(m.OnHost[a][r], 0)
		if st.Get(m.RepCorrupt[a][r]) == 1 && st.Get(m.RepConvicted[a][r]) == 0 {
			st.Add(m.Undet[a], -1)
		}
		st.Set(m.RepCorrupt[a][r], 0)
		st.Set(m.RepConvicted[a][r], 0)
		if m.RepDetectDone != nil {
			st.Set(m.RepDetectDone[a][r], 0)
		}
		st.Add(m.Running[a], -1)
		st.Set(m.HasReplica[a][g/H], 0)
		st.Add(m.NeedRecovery[a], 1)
		st.Add(m.NumReplicas[g], -1)
		checkByzantine(st, a)
	}

	// excludeHost removes host g and everything on it.
	excludeHost := func(st *san.State, g int) {
		if st.Get(m.HostExcluded[g]) == 1 {
			return
		}
		d := g / H
		st.Set(m.HostExcluded[g], 1)
		if st.Get(m.MgrStatus[g]) == 1 {
			st.Add(m.UndetMgrs, -1)
			st.Add(m.DomMgrsCorrupt[d], -1)
		}
		st.Set(m.MgrStatus[g], 2)
		st.Add(m.MgrsRunning, -1)
		st.Add(m.DomMgrsUp[d], -1)
		killReplicasOnHost(st, g)
	}

	// excludeDomain records the resource-waste statistics and removes every
	// host of domain d.
	excludeDomain := func(st *san.State, d int) {
		if st.Get(m.DomExcluded[d]) == 1 {
			return
		}
		// A host counts as corrupt if any component on it is corrupt: the
		// host OS/services, its manager, or a replica it runs. False-alarm
		// exclusions are the only way a domain is excluded with no corrupt
		// host, which is the paper's explanation for Fig 3(c) being below
		// one at one host per domain.
		corrupt := 0
		for h := 0; h < H; h++ {
			g := d*H + h
			isCorrupt := st.Get(m.HostStatus[g]) > 0 || st.Get(m.MgrStatus[g]) == 1
			if !isCorrupt {
			slots:
				for a := 0; a < A; a++ {
					for r := 0; r < nSlots; r++ {
						if st.Int(m.OnHost[a][r]) == g+1 && st.Get(m.RepCorrupt[a][r]) == 1 {
							isCorrupt = true
							break slots
						}
					}
				}
			}
			if isCorrupt {
				corrupt++
			}
		}
		st.Set(m.LastExclCorrupt, san.Marking(corrupt))
		st.Set(m.LastExclTotal, san.Marking(H))
		for h := 0; h < H; h++ {
			excludeHost(st, d*H+h)
		}
		st.Set(m.DomExcluded[d], 1)
		st.Add(m.DomainsExcluded, 1)
	}

	// requestExclusion routes a successful detection response to the
	// configured management algorithm: convict the whole domain (default)
	// or only the offending host (alternative algorithm, Section 3.4).
	requestExclusion := func(st *san.State, g int) {
		d := g / H
		switch p.Policy {
		case DomainExclusion:
			if st.Get(m.DomExcluded[d]) == 0 {
				st.Set(m.ExclPending[d], 1)
			}
		case HostExclusion:
			if st.Get(m.HostExcluded[g]) == 0 {
				st.Set(m.HostExclPending[g], 1)
			}
		}
	}

	// chooseHost picks a live host of domain d for a new replica according
	// to the configured placement strategy.
	chooseHost := func(ctx *san.Context, d int) int {
		st := ctx.State
		var hostsUp []int
		for h := 0; h < H; h++ {
			if st.Get(m.HostExcluded[d*H+h]) == 0 {
				hostsUp = append(hostsUp, d*H+h)
			}
		}
		switch p.Placement {
		case LeastLoadedPlacement:
			best := hostsUp[0]
			for _, g := range hostsUp[1:] {
				if st.Get(m.NumReplicas[g]) < st.Get(m.NumReplicas[best]) {
					best = g
				}
			}
			return best
		case WeightedRandomPlacement:
			weights := make([]float64, len(hostsUp))
			for i, g := range hostsUp {
				weights[i] = 1 / (1 + float64(st.Get(m.NumReplicas[g])))
			}
			return hostsUp[ctx.ChooseWeighted(weights)]
		default:
			return hostsUp[ctx.Choose(len(hostsUp))]
		}
	}

	// ---- initialization ------------------------------------------------
	// The middleware starts min(RepsPerApp, NumDomains) replicas per
	// application (one replica per application per domain), on a uniformly
	// chosen host of each chosen domain. The paper does this with
	// high-rate assign_id/start_replica activities; the hook is the direct
	// expression of the same random placement.
	s.SetInit(func(ctx *san.Context) {
		st := ctx.State
		k := R
		if D < k {
			k = D
		}
		domPerm := make([]int, D)
		for a := 0; a < A; a++ {
			ctx.Permute(domPerm)
			for i := 0; i < k; i++ {
				d := domPerm[i]
				g := chooseHost(ctx, d)
				st.Set(m.OnHost[a][i], san.Marking(g+1))
				st.Set(m.HasReplica[a][d], 1)
				st.Add(m.NumReplicas[g], 1)
				st.Add(m.Running[a], 1)
			}
		}
	})

	// ---- host activities ------------------------------------------------
	for g := 0; g < nHosts; g++ {
		g := g
		d := g / H
		hostScope := fmt.Sprintf("domain[%d].host[%d]", d, g%H)

		// attack_host: three cases for the three attack classes; the rate
		// grows linearly with the domain and system spread markings.
		if canAttackHost {
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".attack_host",
				Kind: san.Timed,
				Dist: func(st *san.State) rng.Dist {
					// One spread variable per level governs both how fast the
					// attack propagates and how much more vulnerable the
					// exposed hosts become (Section 3.4).
					boost := p.DomainSpreadRate*float64(st.Get(m.SpreadDom[d])) +
						p.SystemSpreadRate*float64(st.Get(m.SpreadSys))
					return rng.Expo(rt.hostAttack * (1 + p.SpreadRateCoeff*boost))
				},
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostExcluded[g]) == 0 && st.Get(m.HostStatus[g]) == 0
				},
				Reads: []*san.Place{m.HostExcluded[g], m.HostStatus[g], m.SpreadDom[d], m.SpreadSys},
				Cases: []san.Case{
					{Name: "script", Prob: p.PScript, Effect: func(ctx *san.Context) {
						ctx.State.Set(m.HostStatus[g], 1)
						recordIntrusion(ctx.State)
					}},
					{Name: "exploratory", Prob: p.PExploratory, Effect: func(ctx *san.Context) {
						ctx.State.Set(m.HostStatus[g], 2)
						recordIntrusion(ctx.State)
					}},
					{Name: "innovative", Prob: p.PInnovative, Effect: func(ctx *san.Context) {
						ctx.State.Set(m.HostStatus[g], 3)
						recordIntrusion(ctx.State)
					}},
				},
			})
		}

		// propagate_domain / propagate_sys: fire exactly once per corrupt
		// host, increasing the spread markings.
		if canSpreadDom {
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".propagate_domain",
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(p.DomainSpreadRate) },
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostStatus[g]) > 0 &&
						st.Get(m.HostExcluded[g]) == 0 && st.Get(m.PropDomDone[g]) == 0
				},
				Reads: []*san.Place{m.HostStatus[g], m.HostExcluded[g], m.PropDomDone[g]},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Add(m.SpreadDom[d], 1)
					ctx.State.Set(m.PropDomDone[g], 1)
				}}},
			})
		}
		if canSpreadSys {
			// A partition stops system-wide spread from originating in a
			// severed domain: the attacker cannot reach across the cut.
			sysReads := []*san.Place{m.HostStatus[g], m.HostExcluded[g], m.PropSysDone[g]}
			if canPartition {
				sysReads = append(sysReads, m.PartitionA, m.PartitionB)
			}
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".propagate_sys",
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(p.SystemSpreadRate) },
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostStatus[g]) > 0 &&
						st.Get(m.HostExcluded[g]) == 0 && st.Get(m.PropSysDone[g]) == 0 &&
						!cutsDomain(st, d)
				},
				Reads: sysReads,
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Add(m.SpreadSys, 1)
					ctx.State.Set(m.PropSysDone[g], 1)
				}}},
			})
		}

		// attack_mgmt: attacks on the manager; faster on a corrupt host and
		// in a domain the attack has spread through.
		if canAttackMgr {
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".attack_mgmt",
				Kind: san.Timed,
				Dist: func(st *san.State) rng.Dist {
					rate := rt.mgrAttack
					if st.Get(m.HostStatus[g]) > 0 {
						rate *= p.CorruptionMult
					}
					boost := p.DomainSpreadRate * float64(st.Get(m.SpreadDom[d]))
					return rng.Expo(rate * (1 + p.AssetSpreadCoeff*boost))
				},
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostExcluded[g]) == 0 && st.Get(m.MgrStatus[g]) == 0
				},
				Reads: []*san.Place{m.HostExcluded[g], m.MgrStatus[g], m.HostStatus[g], m.SpreadDom[d]},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Set(m.MgrStatus[g], 1)
					ctx.State.Add(m.UndetMgrs, 1)
					ctx.State.Add(m.DomMgrsCorrupt[d], 1)
					recordIntrusion(ctx.State)
				}}},
			})
		}

		// valid_ID_{scp,exp,inv}: one detection trial per host corruption;
		// on success the response runs provided the local manager and the
		// domain's manager group are not corrupt (Section 3.4).
		if canDetectHost {
			for class, detectProb := range []float64{1: p.DetectScript, 2: p.DetectExploratory, 3: p.DetectInnovative} {
				if class == 0 {
					continue
				}
				class, detectProb := class, detectProb
				suffix := [...]string{1: "scp", 2: "exp", 3: "inv"}[class]
				s.AddActivity(san.ActivityDef{
					Name: fmt.Sprintf("%s.valid_ID_%s", hostScope, suffix),
					Kind: san.Timed,
					Dist: func(*san.State) rng.Dist { return rng.Expo(p.HostDetectRate) },
					Enabled: func(st *san.State) bool {
						return st.Int(m.HostStatus[g]) == class &&
							st.Get(m.HostExcluded[g]) == 0 && st.Get(m.HostDetectDone[g]) == 0
					},
					Reads: []*san.Place{m.HostStatus[g], m.HostExcluded[g], m.HostDetectDone[g]},
					Cases: []san.Case{
						{Name: "detect", Prob: detectProb, Effect: func(ctx *san.Context) {
							ctx.State.Set(m.HostDetectDone[g], 1)
							if ctx.State.Get(m.MgrStatus[g]) == 0 && domainGroupOK(ctx.State, d) {
								requestExclusion(ctx.State, g)
							}
						}},
						{Name: "miss", Prob: 1 - detectProb, Effect: func(ctx *san.Context) {
							ctx.State.Set(m.HostDetectDone[g], 1)
						}},
					},
				})
			}
		}

		// valid_ID_mgr: detection of manager infiltration. The manager
		// group convicts its own members, so the response needs either a
		// correct domain manager group or a good system-wide quorum.
		if canDetectMgr {
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".valid_ID_mgr",
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(p.MgrDetectRate) },
				Enabled: func(st *san.State) bool {
					return st.Get(m.MgrStatus[g]) == 1 &&
						st.Get(m.HostExcluded[g]) == 0 && st.Get(m.MgrDetectDone[g]) == 0
				},
				Reads: []*san.Place{m.MgrStatus[g], m.HostExcluded[g], m.MgrDetectDone[g]},
				Cases: []san.Case{
					{Name: "detect", Prob: p.DetectMgr, Effect: func(ctx *san.Context) {
						ctx.State.Set(m.MgrDetectDone[g], 1)
						if domainGroupOK(ctx.State, d) || globalQuorumOK(ctx.State) {
							requestExclusion(ctx.State, g)
						}
					}},
					{Name: "miss", Prob: 1 - p.DetectMgr, Effect: func(ctx *san.Context) {
						ctx.State.Set(m.MgrDetectDone[g], 1)
					}},
				},
			})
		}

		// false_ID: false alarms of host-OS or manager infiltration,
		// "enabled as long as there have not been any actual intrusions"
		// (Section 3.4) — the alarms quench once a real attack has
		// succeeded anywhere; the response is the same as for a valid
		// detection.
		if rt.hostFalse > 0 {
			s.AddActivity(san.ActivityDef{
				Name: hostScope + ".false_ID",
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(rt.hostFalse) },
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostExcluded[g]) == 0 && st.Get(m.Intrusions) == 0
				},
				Reads: []*san.Place{m.HostExcluded[g], m.Intrusions},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					if ctx.State.Get(m.MgrStatus[g]) == 0 && domainGroupOK(ctx.State, d) {
						requestExclusion(ctx.State, g)
					}
				}}},
			})
		}

		// shut_host (host-exclusion algorithm only): carries out a pending
		// host conviction.
		if p.Policy == HostExclusion && canExclude {
			act := s.AddActivity(san.ActivityDef{
				Name:     hostScope + ".shut_host",
				Kind:     san.Instant,
				Priority: 10,
				Enabled: func(st *san.State) bool {
					return st.Get(m.HostExclPending[g]) == 1 && st.Get(m.HostExcluded[g]) == 0
				},
				Reads: []*san.Place{m.HostExclPending[g], m.HostExcluded[g]},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Set(m.HostExclPending[g], 0)
					excludeHost(ctx.State, g)
				}}},
			})
			m.shutActivity[act.Name()] = true
		}
	}

	// ---- domain activities ----------------------------------------------
	if p.Policy == DomainExclusion && canExclude {
		for d := 0; d < D; d++ {
			d := d
			act := s.AddActivity(san.ActivityDef{
				Name:     fmt.Sprintf("domain[%d].shut_domain", d),
				Kind:     san.Instant,
				Priority: 10,
				Enabled: func(st *san.State) bool {
					return st.Get(m.ExclPending[d]) == 1 && st.Get(m.DomExcluded[d]) == 0
				},
				Reads: []*san.Place{m.ExclPending[d], m.DomExcluded[d]},
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Set(m.ExclPending[d], 0)
					excludeDomain(ctx.State, d)
				}}},
			})
			m.shutActivity[act.Name()] = true
		}
	}

	// ---- environment activities ------------------------------------------
	// The Environment submodel injects correlated adversity: one partition
	// at a time severing a uniformly chosen domain pair, and attack
	// campaigns corrupting a Binomial(CampaignSize, CampaignProb) batch of
	// hosts in a single firing. Both are gated out structurally when their
	// rates are zero, so the paper's baseline net is unchanged.
	if canPartition {
		nPairs := D * (D - 1) / 2
		s.AddActivity(san.ActivityDef{
			Name:    "env.partition",
			Kind:    san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(p.PartitionRate) },
			Enabled: func(st *san.State) bool { return st.Get(m.PartitionA) == 0 },
			Reads:   []*san.Place{m.PartitionA},
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				// Uniform over the D*(D-1)/2 unordered domain pairs,
				// enumerated (0,1), (0,2), ..., (D-2,D-1). Excluded domains
				// are legitimate targets too: the network does not know the
				// management algorithm's exclusion state.
				k := ctx.Choose(nPairs)
				da := 0
				for k >= D-1-da {
					k -= D - 1 - da
					da++
				}
				db := da + 1 + k
				ctx.State.Set(m.PartitionA, san.Marking(da+1))
				ctx.State.Set(m.PartitionB, san.Marking(db+1))
			}}},
		})
		s.AddActivity(san.ActivityDef{
			Name:    "env.partition_heal",
			Kind:    san.Timed,
			Dist:    func(*san.State) rng.Dist { return rng.Expo(p.PartitionHealRate) },
			Enabled: func(st *san.State) bool { return st.Get(m.PartitionA) != 0 },
			Reads:   []*san.Place{m.PartitionA},
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				ctx.State.Set(m.PartitionA, 0)
				ctx.State.Set(m.PartitionB, 0)
			}}},
		})
	}
	if canCampaign {
		campaignReads := append([]*san.Place(nil), m.HostStatus...)
		campaignReads = append(campaignReads, m.HostExcluded...)
		bern := []float64{p.CampaignProb, 1 - p.CampaignProb}
		classes := []float64{p.PScript, p.PExploratory, p.PInnovative}
		s.AddActivity(san.ActivityDef{
			Name: "env.campaign",
			Kind: san.Timed,
			Dist: func(*san.State) rng.Dist { return rng.Expo(p.CampaignRate) },
			Enabled: func(st *san.State) bool {
				for g := 0; g < nHosts; g++ {
					if st.Get(m.HostStatus[g]) == 0 && st.Get(m.HostExcluded[g]) == 0 {
						return true
					}
				}
				return false
			},
			Reads: campaignReads,
			Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
				st := ctx.State
				var eligible []int
				for g := 0; g < nHosts; g++ {
					if st.Get(m.HostStatus[g]) == 0 && st.Get(m.HostExcluded[g]) == 0 {
						eligible = append(eligible, g)
					}
				}
				k := p.CampaignSize
				if len(eligible) <= k {
					k = len(eligible)
				} else {
					// Partial Fisher–Yates: the first k entries become a
					// uniform k-subset of the eligible hosts.
					for i := 0; i < k; i++ {
						j := i + ctx.Choose(len(eligible)-i)
						eligible[i], eligible[j] = eligible[j], eligible[i]
					}
				}
				for _, g := range eligible[:k] {
					if ctx.ChooseWeighted(bern) != 0 {
						continue
					}
					class := 1 + ctx.ChooseWeighted(classes)
					st.Set(m.HostStatus[g], san.Marking(class))
					recordIntrusion(st)
				}
			}}},
		})
	}

	// ---- replica activities ----------------------------------------------
	// Conservative dependency sets for activities whose host is dynamic.
	allHostStatus := append([]*san.Place(nil), m.HostStatus...)
	quorumReads := []*san.Place{m.UndetMgrs, m.MgrsRunning}
	quorumReads = append(quorumReads, m.DomMgrsCorrupt...)
	quorumReads = append(quorumReads, m.DomMgrsUp...)
	if canPartition {
		quorumReads = append(quorumReads, m.PartitionA)
	}

	for a := 0; a < A; a++ {
		a := a
		for r := 0; r < nSlots; r++ {
			r := r
			repScope := fmt.Sprintf("app[%d].rep[%d]", a, r)
			onHost, corrupt := m.OnHost[a][r], m.RepCorrupt[a][r]
			convicted := m.RepConvicted[a][r]

			// attack_rep: the rate is multiplied by CorruptionMult when the
			// host the replica runs on is corrupted, and grows with the
			// attack spread recorded in the replica's domain (the attacker
			// who has spread through a domain attacks everything in it).
			if canAttackRep {
				reads := []*san.Place{onHost, corrupt, convicted}
				reads = append(reads, allHostStatus...)
				reads = append(reads, m.SpreadDom...)
				s.AddActivity(san.ActivityDef{
					Name: repScope + ".attack_rep",
					Kind: san.Timed,
					Dist: func(st *san.State) rng.Dist {
						rate := rt.replicaAttack
						if g := st.Int(onHost) - 1; g >= 0 {
							if st.Get(m.HostStatus[g]) > 0 {
								rate *= p.CorruptionMult
							}
							boost := p.DomainSpreadRate * float64(st.Get(m.SpreadDom[g/H]))
							rate *= 1 + p.AssetSpreadCoeff*boost
						}
						return rng.Expo(rate)
					},
					Enabled: func(st *san.State) bool {
						return st.Get(onHost) > 0 &&
							st.Get(corrupt) == 0 && st.Get(convicted) == 0
					},
					Reads: reads,
					Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
						ctx.State.Set(corrupt, 1)
						ctx.State.Add(m.Undet[a], 1)
						recordIntrusion(ctx.State)
						checkByzantine(ctx.State, a)
					}}},
				})
			}

			// valid_ID: one intrusion-detection trial per replica
			// corruption (probability DetectReplica of conviction).
			if canDetectRep {
				detectDone := m.RepDetectDone[a][r]
				s.AddActivity(san.ActivityDef{
					Name: repScope + ".valid_ID",
					Kind: san.Timed,
					Dist: func(*san.State) rng.Dist { return rng.Expo(p.ReplicaDetectRate) },
					Enabled: func(st *san.State) bool {
						return st.Get(corrupt) == 1 &&
							st.Get(convicted) == 0 && st.Get(detectDone) == 0
					},
					Reads: []*san.Place{corrupt, convicted, detectDone},
					Cases: []san.Case{
						{Name: "detect", Prob: p.DetectReplica, Effect: func(ctx *san.Context) {
							ctx.State.Set(detectDone, 1)
							ctx.State.Set(convicted, 1)
							ctx.State.Add(m.Undet[a], -1)
						}},
						{Name: "miss", Prob: 1 - p.DetectReplica, Effect: func(ctx *san.Context) {
							ctx.State.Set(detectDone, 1)
						}},
					},
				})
			}

			// rep_misbehave: a corrupt replica shows anomalous behaviour
			// and is always convicted by the group, provided less than a
			// third of the currently running replicas are corrupt.
			if canMisbehave {
				s.AddActivity(san.ActivityDef{
					Name: repScope + ".rep_misbehave",
					Kind: san.Timed,
					Dist: func(*san.State) rng.Dist { return rng.Expo(p.MisbehaveRate) },
					Enabled: func(st *san.State) bool {
						return st.Get(corrupt) == 1 && st.Get(convicted) == 0 &&
							st.Int(m.Running[a]) > 3*st.Int(m.Undet[a])
					},
					Reads: []*san.Place{corrupt, convicted, m.Running[a], m.Undet[a]},
					Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
						ctx.State.Set(convicted, 1)
						ctx.State.Add(m.Undet[a], -1)
					}}},
				})
			}

			// false_ID: a false alarm convicts an innocent running replica;
			// like the host-level alarms it is enabled only while no real
			// intrusion has happened.
			if rt.replicaFalse > 0 {
				s.AddActivity(san.ActivityDef{
					Name: repScope + ".false_ID",
					Kind: san.Timed,
					Dist: func(*san.State) rng.Dist { return rng.Expo(rt.replicaFalse) },
					Enabled: func(st *san.State) bool {
						return st.Get(onHost) > 0 &&
							st.Get(corrupt) == 0 && st.Get(convicted) == 0 &&
							st.Get(m.Intrusions) == 0
					},
					Reads: []*san.Place{onHost, corrupt, convicted, m.Intrusions},
					Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
						ctx.State.Set(convicted, 1)
					}}},
				})
			}

			// respond: the managers act on a convicted replica once either
			// the domain's manager group is correct or the system-wide
			// manager group has a good quorum, requesting the configured
			// exclusion.
			if canConvict {
				respondReads := []*san.Place{convicted, onHost}
				respondReads = append(respondReads, quorumReads...)
				s.AddActivity(san.ActivityDef{
					Name:     repScope + ".respond",
					Kind:     san.Instant,
					Priority: 5,
					Enabled: func(st *san.State) bool {
						g := st.Int(onHost) - 1
						if st.Get(convicted) != 1 || g < 0 {
							return false
						}
						return domainGroupOK(st, g/H) || globalQuorumOK(st)
					},
					Reads: respondReads,
					Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
						g := ctx.State.Int(onHost) - 1
						if p.ExcludeOnReplicaConviction {
							requestExclusion(ctx.State, g)
							return
						}
						killReplicaSlot(ctx.State, a, r, g)
					}}},
				})
			}
		}

		// recovery: the management algorithm starts one replacement
		// replica on a uniformly chosen qualifying domain and a uniformly
		// chosen non-excluded host within it (Sections 2 and 3.3).
		if !canRecover {
			continue
		}
		recoveryReads := []*san.Place{m.NeedRecovery[a], m.UndetMgrs, m.MgrsRunning}
		recoveryReads = append(recoveryReads, m.DomExcluded...)
		recoveryReads = append(recoveryReads, m.HasReplica[a]...)
		recoveryReads = append(recoveryReads, m.HostExcluded...)
		if canPartition {
			recoveryReads = append(recoveryReads, m.PartitionA)
		}
		qualifying := func(st *san.State, d int) bool {
			if st.Get(m.DomExcluded[d]) == 1 || st.Get(m.HasReplica[a][d]) == 1 {
				return false
			}
			for h := 0; h < H; h++ {
				if st.Get(m.HostExcluded[d*H+h]) == 0 {
					return true
				}
			}
			return false
		}
		anyQualifying := func(st *san.State) bool {
			for d := 0; d < D; d++ {
				if qualifying(st, d) {
					return true
				}
			}
			return false
		}
		doRecovery := func(ctx *san.Context) {
			st := ctx.State
			var doms []int
			for d := 0; d < D; d++ {
				if qualifying(st, d) {
					doms = append(doms, d)
				}
			}
			d := doms[ctx.Choose(len(doms))]
			g := chooseHost(ctx, d)
			slot := -1
			for r := 0; r < nSlots; r++ {
				if st.Get(m.OnHost[a][r]) == 0 {
					slot = r
					break
				}
			}
			if slot < 0 {
				panic("core: recovery with no free replica slot")
			}
			st.Set(m.OnHost[a][slot], san.Marking(g+1))
			st.Set(m.HasReplica[a][d], 1)
			st.Add(m.NumReplicas[g], 1)
			st.Add(m.Running[a], 1)
			st.Add(m.NeedRecovery[a], -1)
		}
		if canCrew {
			// Bounded repair capacity: a recovery first claims an idle crew
			// member (instantaneous while one is free, below respond's
			// priority so convictions settle first) and holds it for the
			// whole exponential service. At most one crew member serves an
			// application at a time, matching the unbounded model's
			// serialized per-app recovery.
			inService := m.RepairInService[a]
			s.AddActivity(san.ActivityDef{
				Name:     fmt.Sprintf("app[%d].repair_start", a),
				Kind:     san.Instant,
				Priority: 3,
				Enabled: func(st *san.State) bool {
					return st.Get(m.NeedRecovery[a]) > 0 && st.Get(inService) == 0 &&
						st.Get(m.RepairIdle) > 0 && globalQuorumOK(st) && anyQualifying(st)
				},
				Reads: append([]*san.Place{inService, m.RepairIdle}, recoveryReads...),
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					ctx.State.Set(inService, 1)
					ctx.State.Add(m.RepairIdle, -1)
					ctx.State.Add(m.RepairBusy, 1)
				}}},
			})
			s.AddActivity(san.ActivityDef{
				Name: fmt.Sprintf("app[%d].recovery", a),
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(p.RecoveryRate) },
				Enabled: func(st *san.State) bool {
					// The crew member stays claimed if every qualifying
					// domain disappears mid-service; the timer resumes when
					// one reappears.
					return st.Get(inService) == 1 && globalQuorumOK(st) && anyQualifying(st)
				},
				Reads: append([]*san.Place{inService}, recoveryReads...),
				Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
					doRecovery(ctx)
					ctx.State.Set(inService, 0)
					ctx.State.Add(m.RepairIdle, 1)
					ctx.State.Add(m.RepairBusy, -1)
				}}},
			})
		} else {
			s.AddActivity(san.ActivityDef{
				Name: fmt.Sprintf("app[%d].recovery", a),
				Kind: san.Timed,
				Dist: func(*san.State) rng.Dist { return rng.Expo(p.RecoveryRate) },
				Enabled: func(st *san.State) bool {
					return st.Get(m.NeedRecovery[a]) > 0 && globalQuorumOK(st) && anyQualifying(st)
				},
				Reads: recoveryReads,
				Cases: []san.Case{{Prob: 1, Effect: doRecovery}},
			})
		}
	}

	// ---- measure visibility and declared bounds --------------------------
	// Places whose only readers are the reward measures (internal/core's
	// measures.go) are declared Observed so the static linter does not flag
	// them as write-only; declared bounds give both the linter and the
	// runtime invariant monitors the legal marking range of each place.
	s.Observe(m.DomainsExcluded, m.LastExclCorrupt, m.LastExclTotal, m.Intrusions)
	s.Observe(m.HostStatus...)
	s.Observe(m.HostExcluded...)
	s.Observe(m.NumReplicas...)
	s.Observe(m.Running...)
	s.Observe(m.Undet...)
	s.Observe(m.GrpFail...)
	// The placement and recovery bookkeeping is read by the runtime
	// invariant monitors (internal/integrity) even in configurations where
	// no activity reads it (e.g. recovery gated out).
	s.Observe(m.NeedRecovery...)
	for a := 0; a < A; a++ {
		s.Observe(m.HasReplica[a]...)
	}
	// The partition places feed the Improper measure and the environment
	// invariant monitors; the crew places feed the conservation invariant.
	if canPartition {
		s.Observe(m.PartitionA, m.PartitionB)
	}
	if canCrew {
		s.Observe(m.RepairBusy, m.RepairIdle)
		s.Observe(m.RepairInService...)
	}

	boundEach := func(ps []*san.Place, max san.Marking) {
		for _, pl := range ps {
			if pl != nil {
				s.Bound(pl, max)
			}
		}
	}
	k := R
	if D < k {
		k = D // replicas per app: one per distinct domain
	}
	// Intrusions saturates at 1 in analytic mode (see recordIntrusion);
	// otherwise it is deliberately unbounded: recovered replicas can be
	// corrupted again, so the counter grows without limit.
	if p.Analytic {
		s.Bound(m.Intrusions, 1)
	}
	if m.SpreadSys != nil {
		s.Bound(m.SpreadSys, san.Marking(nHosts))
	}
	s.Bound(m.UndetMgrs, san.Marking(nHosts))
	s.Bound(m.MgrsRunning, san.Marking(nHosts))
	s.Bound(m.DomainsExcluded, san.Marking(D))
	s.Bound(m.LastExclCorrupt, san.Marking(H))
	s.Bound(m.LastExclTotal, san.Marking(H))
	boundEach(m.SpreadDom, san.Marking(H))
	boundEach(m.DomExcluded, 1)
	boundEach(m.DomMgrsUp, san.Marking(H))
	boundEach(m.DomMgrsCorrupt, san.Marking(H))
	boundEach(m.ExclPending, 1)
	boundEach(m.HostStatus, 3)
	boundEach(m.HostExcluded, 1)
	boundEach(m.HostDetectDone, 1)
	boundEach(m.MgrStatus, 2)
	boundEach(m.MgrDetectDone, 1)
	boundEach(m.PropDomDone, 1)
	boundEach(m.PropSysDone, 1)
	boundEach(m.NumReplicas, san.Marking(A)) // one replica per app per host
	boundEach(m.HostExclPending, 1)
	boundEach(m.Running, san.Marking(k))
	boundEach(m.Undet, san.Marking(k))
	boundEach(m.GrpFail, 1)
	boundEach(m.NeedRecovery, san.Marking(k))
	if canPartition {
		s.Bound(m.PartitionA, san.Marking(D))
		s.Bound(m.PartitionB, san.Marking(D))
	}
	if canCrew {
		s.Bound(m.RepairBusy, san.Marking(p.RepairCrew))
		s.Bound(m.RepairIdle, san.Marking(p.RepairCrew))
		boundEach(m.RepairInService, 1)
	}
	for a := 0; a < A; a++ {
		boundEach(m.HasReplica[a], 1)
		boundEach(m.OnHost[a], san.Marking(nHosts)) // stores flattened host + 1
		boundEach(m.RepCorrupt[a], 1)
		boundEach(m.RepConvicted[a], 1)
		if m.RepDetectDone != nil {
			boundEach(m.RepDetectDone[a], 1)
		}
	}

	if err := s.Finalize(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return m, nil
}
