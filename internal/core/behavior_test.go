package core

import (
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

// estimate runs the model and returns the named means.
func estimate(t *testing.T, p Params, until float64, reps int, seed uint64,
	vars func(m *Model) []reward.Var) map[string]float64 {
	t.Helper()
	m := mustBuild(t, p)
	vs := vars(m)
	res, err := sim.Run(sim.Spec{Model: m.SAN, Until: until, Reps: reps, Seed: seed, Vars: vs})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(vs))
	for _, v := range vs {
		out[v.Name()] = res.MustGet(v.Name()).Mean
	}
	return out
}

func TestHigherAttackRateHurts(t *testing.T) {
	base := smallParams()
	vars := func(m *Model) []reward.Var {
		return []reward.Var{m.Unavailability("u", 0, 0, 8), m.FracDomainsExcluded("e", 8)}
	}
	low := estimate(t, base, 8, 1200, 41, vars)
	hot := base
	hot.TotalAttackRate = 9
	high := estimate(t, hot, 8, 1200, 41, vars)
	if high["u"] <= low["u"] {
		t.Errorf("tripling the attack rate did not raise unavailability: %v vs %v", high["u"], low["u"])
	}
	// Note: exclusions are deliberately NOT asserted monotone — under
	// overwhelming attack the manager infrastructure corrupts faster than
	// it detects, response conditions fail, and the system excludes *less*
	// while suffering more. That emergent collapse is part of the model.
}

func TestCorruptionMultiplierMatters(t *testing.T) {
	// With all direct replica/manager attacks disabled, corruption reaches
	// replicas only through corrupt hosts; a larger multiplier must raise
	// unreliability.
	base := smallParams()
	base.NumDomains = 6
	base.HostsPerDomain = 2
	base.AttackSplitReplica = 0.001 // keep a tiny direct channel for enabling
	base.AttackSplitMgr = 0.001
	vars := func(m *Model) []reward.Var {
		return []reward.Var{m.Unreliability("r", 0, 10)}
	}
	base.CorruptionMult = 1
	low := estimate(t, base, 10, 1500, 43, vars)
	base.CorruptionMult = 30
	high := estimate(t, base, 10, 1500, 43, vars)
	if high["r"] <= low["r"] {
		t.Errorf("multiplier 30 did not raise unreliability: %v vs %v", high["r"], low["r"])
	}
}

func TestSpreadRaisesHostCorruption(t *testing.T) {
	p := smallParams()
	p.NumDomains = 3
	p.HostsPerDomain = 4
	p.Policy = HostExclusion // keep corrupted hosts observable
	vars := func(m *Model) []reward.Var {
		return []reward.Var{m.CorruptHostsFrac("c", 5)}
	}
	p.DomainSpreadRate = 0
	low := estimate(t, p, 5, 1200, 44, vars)
	p.DomainSpreadRate = 10
	high := estimate(t, p, 5, 1200, 44, vars)
	if high["c"] <= low["c"] {
		t.Errorf("spread 10 did not raise corrupt-host fraction: %v vs %v", high["c"], low["c"])
	}
}

func TestDetectionProbabilityZeroMeansNoHostExclusions(t *testing.T) {
	// With every detection probability zero, no false alarms, and the
	// restart-only conviction response, nothing is ever excluded.
	p := smallParams()
	p.DetectScript, p.DetectExploratory, p.DetectInnovative = 0, 0, 0
	p.DetectMgr = 0
	p.TotalFalseAlarmRate = 0
	vars := func(m *Model) []reward.Var {
		return []reward.Var{m.FracDomainsExcluded("e", 10)}
	}
	got := estimate(t, p, 10, 400, 45, vars)
	if got["e"] != 0 {
		t.Errorf("exclusions happened with zero detection probability: %v", got["e"])
	}
}

func TestRecoveryKeepsReplicasUp(t *testing.T) {
	// With recovery enabled replicas return after kills; with an
	// effectively disabled recovery (tiny rate) the running count at T is
	// lower.
	p := smallParams()
	p.NumDomains = 6
	p.HostsPerDomain = 1
	p.RepsPerApp = 3
	vars := func(m *Model) []reward.Var {
		return []reward.Var{m.ReplicasRunning("n", 0, 8)}
	}
	fast := estimate(t, p, 8, 1200, 46, vars)
	p.RecoveryRate = 0.001
	slow := estimate(t, p, 8, 1200, 46, vars)
	if fast["n"] <= slow["n"] {
		t.Errorf("recovery did not help: fast %v vs slow %v", fast["n"], slow["n"])
	}
}

func TestQuorumLossBlocksConvictionResponses(t *testing.T) {
	// When corrupt managers are never detected the global quorum dies, and
	// convicted replicas pile up awaiting a response (the respond activity
	// needs a correct domain group or a good system-wide quorum). With the
	// same attack process but fast manager detection, convictions clear.
	base := smallParams()
	base.NumDomains = 4
	base.HostsPerDomain = 3
	base.RepsPerApp = 3
	base.Policy = HostExclusion // shed corrupt hosts one at a time
	base.AttackSplitHost = 0.2
	base.AttackSplitReplica = 1
	base.AttackSplitMgr = 5 // managers fall fast
	base.TotalAttackRate = 4
	pendingConvictions := func(m *Model) []reward.Var {
		return []reward.Var{&reward.AtTime{VarName: "pending", T: 10, F: func(s *san.State) float64 {
			n := 0.0
			for a := range m.RepConvicted {
				for r := range m.RepConvicted[a] {
					if s.Get(m.RepConvicted[a][r]) == 1 {
						n++
					}
				}
			}
			return n
		}}}
	}
	sick := base
	sick.DetectMgr = 0 // corrupt managers never caught: quorum dies
	sickRes := estimate(t, sick, 10, 800, 47, pendingConvictions)
	healthy := base
	healthy.DetectMgr = 1
	healthy.MgrDetectRate = 8 // corrupt managers excluded promptly
	healthyRes := estimate(t, healthy, 10, 800, 47, pendingConvictions)
	if sickRes["pending"] <= 2*healthyRes["pending"] {
		t.Errorf("dead quorum did not strand convictions: sick %v vs healthy %v",
			sickRes["pending"], healthyRes["pending"])
	}
}

func TestHostExclusionPreservesMoreHosts(t *testing.T) {
	// The resource argument of Section 4.3: host exclusion sacrifices
	// fewer hosts than domain exclusion for the same attack process.
	p := smallParams()
	p.NumDomains = 4
	p.HostsPerDomain = 3
	hostsUp := func(m *Model) []reward.Var {
		return []reward.Var{&reward.AtTime{VarName: "up", T: 8, F: m.hostsUpF()}}
	}
	dom := estimate(t, p, 8, 1000, 48, hostsUp)
	p.Policy = HostExclusion
	host := estimate(t, p, 8, 1000, 48, hostsUp)
	if host["up"] <= dom["up"] {
		t.Errorf("host exclusion kept fewer hosts (%v) than domain exclusion (%v)", host["up"], dom["up"])
	}
}
