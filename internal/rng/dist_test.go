package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// checkMoments draws n samples and verifies the empirical mean and variance
// against theory within tol standard errors.
func checkMoments(t *testing.T, d Dist, wantMean, wantVar float64, n int, tolMean, tolVar float64) {
	t.Helper()
	s := New(0xd15720)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(s)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-wantMean) > tolMean {
		t.Fatalf("%v: mean %v, want %v ± %v", d, mean, wantMean, tolMean)
	}
	if math.Abs(variance-wantVar) > tolVar {
		t.Fatalf("%v: variance %v, want %v ± %v", d, variance, wantVar, tolVar)
	}
}

func TestExponentialDist(t *testing.T) {
	d := Expo(4)
	if math.Abs(d.Mean()-0.25) > 1e-12 {
		t.Fatalf("Mean() = %v", d.Mean())
	}
	if d.Rate() != 4 {
		t.Fatalf("Rate() = %v", d.Rate())
	}
	checkMoments(t, d, 0.25, 0.0625, 200000, 0.005, 0.005)
}

func TestDeterministicDist(t *testing.T) {
	d := Deterministic{V: 3.5}
	s := New(1)
	for i := 0; i < 10; i++ {
		if d.Sample(s) != 3.5 {
			t.Fatal("deterministic sample varied")
		}
	}
	checkMoments(t, d, 3.5, 0, 100, 1e-12, 1e-12)
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	s := New(2)
	for i := 0; i < 10000; i++ {
		x := d.Sample(s)
		if x < 2 || x >= 6 {
			t.Fatalf("uniform sample %v out of [2,6)", x)
		}
	}
	checkMoments(t, d, 4, 16.0/12, 200000, 0.02, 0.03)
}

func TestErlangDist(t *testing.T) {
	d := Erlang{K: 3, R: 2}
	checkMoments(t, d, 1.5, 0.75, 200000, 0.02, 0.03)
}

func TestGammaDist(t *testing.T) {
	for _, d := range []Gamma{{Alpha: 0.5, R: 1}, {Alpha: 2.5, R: 2}, {Alpha: 9, R: 3}} {
		wantMean := d.Alpha / d.R
		wantVar := d.Alpha / (d.R * d.R)
		checkMoments(t, d, wantMean, wantVar, 300000, 0.03*wantMean+0.01, 0.06*wantVar+0.02)
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma with zero shape did not panic")
		}
	}()
	Gamma{Alpha: 0, R: 1}.Sample(New(1))
}

func TestWeibullDist(t *testing.T) {
	d := Weibull{K: 2, Lambda: 3}
	mean := 3 * math.Gamma(1.5)
	variance := 9*math.Gamma(2) - mean*mean
	checkMoments(t, d, mean, variance, 200000, 0.02, 0.05)
	if math.Abs(d.Mean()-mean) > 1e-12 {
		t.Fatalf("Weibull Mean() = %v want %v", d.Mean(), mean)
	}
}

func TestNormalDist(t *testing.T) {
	checkMoments(t, Normal{Mu: -1, Sigma: 2}, -1, 4, 200000, 0.02, 0.06)
}

func TestLognormalDist(t *testing.T) {
	d := Lognormal{Mu: 0, Sigma: 0.5}
	mean := math.Exp(0.125)
	variance := (math.Exp(0.25) - 1) * math.Exp(0.25)
	checkMoments(t, d, mean, variance, 300000, 0.02, 0.05)
}

func TestBetaDist(t *testing.T) {
	d := Beta{A: 2, B: 5}
	mean := 2.0 / 7
	variance := 2 * 5 / (49.0 * 8)
	s := New(6)
	for i := 0; i < 10000; i++ {
		x := d.Sample(s)
		if x < 0 || x > 1 {
			t.Fatalf("beta sample %v out of [0,1]", x)
		}
	}
	checkMoments(t, d, mean, variance, 300000, 0.005, 0.005)
}

func TestGeometricDist(t *testing.T) {
	d := Geometric{P: 0.25}
	checkMoments(t, d, 3, 12, 300000, 0.05, 0.4)
	one := Geometric{P: 1}
	if one.Sample(New(1)) != 0 {
		t.Fatal("Geometric(1) should always be 0")
	}
}

func TestBinomialDist(t *testing.T) {
	d := Binomial{N: 10, P: 0.3}
	checkMoments(t, d, 3, 2.1, 200000, 0.03, 0.06)
}

func TestEmpiricalDist(t *testing.T) {
	e, err := NewEmpirical([]float64{1, 2, 10}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := (1 + 4 + 10) / 4.0
	if math.Abs(e.Mean()-wantMean) > 1e-12 {
		t.Fatalf("empirical Mean() = %v want %v", e.Mean(), wantMean)
	}
	s := New(9)
	counts := map[float64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[e.Sample(s)]++
	}
	for v, wantFrac := range map[float64]float64{1: 0.25, 2: 0.5, 10: 0.25} {
		got := float64(counts[v]) / n
		if math.Abs(got-wantFrac) > 0.01 {
			t.Fatalf("empirical value %v frequency %v want %v", v, got, wantFrac)
		}
	}
}

func TestEmpiricalZeroWeightNeverSampled(t *testing.T) {
	e, err := NewEmpirical([]float64{1, 2, 3}, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(10)
	for i := 0; i < 20000; i++ {
		if e.Sample(s) == 2 {
			t.Fatal("sampled a zero-weight value")
		}
	}
}

func TestEmpiricalErrors(t *testing.T) {
	cases := []struct {
		values, weights []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{1, 2}},
		{[]float64{1}, []float64{-1}},
		{[]float64{1, 2}, []float64{0, 0}},
	}
	for i, c := range cases {
		if _, err := NewEmpirical(c.values, c.weights); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestQuickGammaPositive(t *testing.T) {
	f := func(seed uint64, aRaw, rRaw uint16) bool {
		alpha := float64(aRaw%500)/100 + 0.05
		rate := float64(rRaw%500)/100 + 0.05
		return Gamma{Alpha: alpha, R: rate}.Sample(New(seed)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickErlangAtLeastExponential(t *testing.T) {
	// An Erlang(k) variate is a sum of k exponentials, so with common random
	// numbers each increment is non-negative: sample(k+1) built from the same
	// stream prefix exceeds sample(k). Here we just assert positivity and
	// mean ordering property via single samples being positive.
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		return Erlang{K: k, R: 1}.Sample(New(seed)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistStrings(t *testing.T) {
	for _, d := range []Dist{
		Expo(1), Deterministic{V: 1}, Uniform{0, 1}, Erlang{2, 1}, Gamma{1, 1},
		Weibull{1, 1}, Normal{0, 1}, Lognormal{0, 1}, Beta{1, 1}, Geometric{0.5},
		Binomial{2, 0.5},
	} {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}
