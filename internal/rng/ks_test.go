package rng_test

// Kolmogorov–Smirnov goodness-of-fit tests for the continuous samplers:
// stronger than the moment checks in dist_test.go because they compare the
// whole empirical CDF against theory. External test package so the stats
// helpers can be used without an import cycle.

import (
	"math"
	"testing"

	"ituaval/internal/rng"
	"ituaval/internal/stats"
)

func ksCheck(t *testing.T, name string, d rng.Dist, cdf func(float64) float64) {
	t.Helper()
	s := rng.New(0xcafe)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = d.Sample(s)
	}
	stat := stats.KSStatistic(xs, cdf)
	p := stats.KSPValue(stat, len(xs))
	if p < 0.005 {
		t.Errorf("%s: KS rejected the sampler: D=%v p=%v", name, stat, p)
	}
}

func TestKSExponential(t *testing.T) {
	ksCheck(t, "Expo(2.5)", rng.Expo(2.5), func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-2.5*x)
	})
}

func TestKSUniform(t *testing.T) {
	ksCheck(t, "Unif(2,6)", rng.Uniform{Lo: 2, Hi: 6}, func(x float64) float64 {
		switch {
		case x < 2:
			return 0
		case x > 6:
			return 1
		default:
			return (x - 2) / 4
		}
	})
}

func TestKSWeibull(t *testing.T) {
	ksCheck(t, "Weibull(2,3)", rng.Weibull{K: 2, Lambda: 3}, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-math.Pow(x/3, 2))
	})
}

func TestKSNormal(t *testing.T) {
	ksCheck(t, "Normal(-1,2)", rng.Normal{Mu: -1, Sigma: 2}, func(x float64) float64 {
		return stats.NormalCDF((x + 1) / 2)
	})
}

func TestKSLognormal(t *testing.T) {
	ksCheck(t, "Lognormal(0,0.5)", rng.Lognormal{Mu: 0, Sigma: 0.5}, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return stats.NormalCDF(math.Log(x) / 0.5)
	})
}

func TestKSErlang(t *testing.T) {
	// Erlang(3, 2) CDF = P(3, 2x) (regularized lower incomplete gamma).
	ksCheck(t, "Erlang(3,2)", rng.Erlang{K: 3, R: 2}, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return stats.RegGammaP(3, 2*x)
	})
}

func TestKSGamma(t *testing.T) {
	ksCheck(t, "Gamma(2.5,1.5)", rng.Gamma{Alpha: 2.5, R: 1.5}, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return stats.RegGammaP(2.5, 1.5*x)
	})
}

func TestKSBeta(t *testing.T) {
	ksCheck(t, "Beta(2,5)", rng.Beta{A: 2, B: 5}, func(x float64) float64 {
		return stats.RegIncBeta(2, 5, x)
	})
}

func TestKSDetectsWrongSampler(t *testing.T) {
	// Negative control: an Expo(1) sample against an Expo(2) hypothesis
	// must be rejected decisively.
	s := rng.New(7)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = s.Expo(1)
	}
	stat := stats.KSStatistic(xs, func(x float64) float64 { return 1 - math.Exp(-2*x) })
	if p := stats.KSPValue(stat, len(xs)); p > 1e-9 {
		t.Fatalf("KS failed to reject a mismatched sampler: D=%v p=%v", stat, p)
	}
}
