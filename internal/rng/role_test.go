package rng

import (
	"math"
	"testing"
)

func TestRoleStableAndIndependent(t *testing.T) {
	root := New(7)
	r1 := root.Role(3)
	r2 := root.Role(3)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Role with the same id is not reproducible")
	}
	if root.Role(3).Uint64() == root.Role(4).Uint64() {
		t.Fatal("Role with different ids produced the same first draw")
	}
	// Role and Derive with the same id must live in separate domains.
	if root.Role(3).Uint64() == root.Derive(3).Uint64() {
		t.Fatal("Role(3) collides with Derive(3)")
	}
	// Role must not advance the parent stream.
	before := *root
	root.Role(99)
	if before != *root {
		t.Fatal("Role mutated the parent stream")
	}
}

func TestRoleNamedMatchesRoleKey(t *testing.T) {
	root := New(5)
	a := root.RoleNamed("domain[0].host[1].attack_host")
	b := root.Role(RoleKey("domain[0].host[1].attack_host"))
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RoleNamed diverges from Role(RoleKey(name))")
		}
	}
}

func TestRoleKeyDistinguishesNames(t *testing.T) {
	names := []string{
		"__init__", "__race__",
		"domain[0].host[0].attack_host", "domain[0].host[1].attack_host",
		"app[0].rep[0].valid_ID", "app[0].rep[1].valid_ID", "app[0].recovery",
	}
	seen := make(map[uint64]string)
	for _, n := range names {
		k := RoleKey(n)
		if prev, dup := seen[k]; dup {
			t.Fatalf("RoleKey collision: %q and %q -> %d", prev, n, k)
		}
		seen[k] = n
	}
}

// TestAntitheticComplement is the defining property of the wrapper: each
// uniform of the antithetic partner is 1−U of the original, exact to one
// ulp of the 53-bit grid, and the partner stays in [0,1).
func TestAntitheticComplement(t *testing.T) {
	s := New(17)
	a := s.Antithetic()
	if !a.IsAntithetic() || s.IsAntithetic() {
		t.Fatal("antithetic mark misplaced")
	}
	const ulp = 1.0 / (1 << 53)
	for i := 0; i < 100000; i++ {
		u := s.Float64()
		v := a.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("antithetic Float64 out of [0,1): %v", v)
		}
		if d := math.Abs(u + v - 1); d > ulp+1e-18 {
			t.Fatalf("draw %d: u=%v v=%v, u+v deviates from 1 by %v", i, u, v, d)
		}
	}
}

func TestAntitheticInvolution(t *testing.T) {
	s := New(23)
	back := s.Antithetic().Antithetic()
	for i := 0; i < 100; i++ {
		if s.Uint64() != back.Uint64() {
			t.Fatal("Antithetic applied twice is not the identity")
		}
	}
}

// TestAntitheticPropagates checks that the orientation survives Derive and
// Role, so root.Antithetic().Derive(i).Role(k) is the antithetic partner of
// root.Derive(i).Role(k) — the property the paired runner relies on.
func TestAntitheticPropagates(t *testing.T) {
	root := New(31)
	anti := root.Antithetic()
	a := root.Derive(5).Role(9)
	b := anti.Derive(5).Role(9)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != ^b.Uint64() {
			t.Fatalf("derived antithetic partner diverged at draw %d", i)
		}
	}
}

// TestAntitheticExpoNegativeCorrelation: the whole point of antithetic
// streams is negative correlation between paired variates.
func TestAntitheticExpoNegativeCorrelation(t *testing.T) {
	s := New(41)
	a := s.Antithetic()
	var sx, sy, sxy, sxx, syy float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := s.Expo(1)
		y := a.Expo(1)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	corr := cov / math.Sqrt((sxx/n-(sx/n)*(sx/n))*(syy/n-(sy/n)*(sy/n)))
	if corr > -0.5 {
		t.Fatalf("antithetic exponential pairs have correlation %v, want strongly negative", corr)
	}
}
