package rng

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFloats reinterprets the fuzzer's byte stream as float64s, so the
// corpus can reach NaNs, infinities, subnormals, and signed zeros that a
// typed float argument list would rarely produce.
func fuzzFloats(data []byte) []float64 {
	xs := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		xs = append(xs, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	return xs
}

// FuzzNewEmpirical drives the empirical-distribution constructor with
// arbitrary values/weights. The constructor must either reject the input
// with an error or return a distribution whose Sample always yields one of
// the supplied values — never a panic, never an out-of-range index from the
// cumulative-weight binary search.
func FuzzNewEmpirical(f *testing.F) {
	f.Add([]byte{}, []byte{})
	seed := func(vals, ws []float64) {
		vb := make([]byte, 8*len(vals))
		wb := make([]byte, 8*len(ws))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(vb[8*i:], math.Float64bits(v))
		}
		for i, w := range ws {
			binary.LittleEndian.PutUint64(wb[8*i:], math.Float64bits(w))
		}
		f.Add(vb, wb)
	}
	seed([]float64{1, 2, 3}, []float64{1, 0, 2})
	seed([]float64{5}, []float64{0})
	seed([]float64{1, 2}, []float64{math.Inf(1), 1})
	f.Fuzz(func(t *testing.T, valBytes, weightBytes []byte) {
		values := fuzzFloats(valBytes)
		weights := fuzzFloats(weightBytes)
		e, err := NewEmpirical(values, weights)
		if err != nil {
			return
		}
		want := map[uint64]bool{}
		for _, v := range values {
			want[math.Float64bits(v)] = true
		}
		s := New(1).Derive(0)
		for i := 0; i < 32; i++ {
			x := e.Sample(s)
			if !want[math.Float64bits(x)] {
				t.Fatalf("Sample returned %g, not one of the input values", x)
			}
		}
	})
}
