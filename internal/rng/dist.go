package rng

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a sampling distribution over the non-negative reals (firing-time
// distributions for timed activities) or, for some members, the full real
// line. Implementations are immutable value types safe for concurrent use;
// all per-call randomness comes from the supplied stream.
type Dist interface {
	// Sample draws one variate using s.
	Sample(s *Stream) float64
	// Mean returns the theoretical mean (NaN if undefined).
	Mean() float64
	// String describes the distribution for diagnostics and DOT export.
	String() string
}

// RateDist is implemented by distributions that are fully characterized by a
// single rate parameter and are memoryless, so a simulator may resample them
// when the rate changes without biasing the process. Only Exponential
// qualifies.
type RateDist interface {
	Dist
	Rate() float64
}

// Exponential is the exponential distribution with the given rate (>0).
type Exponential struct{ R float64 }

// Expo is shorthand for Exponential{R: rate}.
func Expo(rate float64) Exponential { return Exponential{R: rate} }

func (d Exponential) Sample(s *Stream) float64 { return s.Expo(d.R) }
func (d Exponential) Mean() float64            { return 1 / d.R }
func (d Exponential) Rate() float64            { return d.R }
func (d Exponential) String() string           { return fmt.Sprintf("Expo(%g)", d.R) }

// Deterministic always returns V (>= 0 for firing times).
type Deterministic struct{ V float64 }

func (d Deterministic) Sample(*Stream) float64 { return d.V }
func (d Deterministic) Mean() float64          { return d.V }
func (d Deterministic) String() string         { return fmt.Sprintf("Det(%g)", d.V) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

func (d Uniform) Sample(s *Stream) float64 { return d.Lo + (d.Hi-d.Lo)*s.Float64() }
func (d Uniform) Mean() float64            { return (d.Lo + d.Hi) / 2 }
func (d Uniform) String() string           { return fmt.Sprintf("Unif(%g,%g)", d.Lo, d.Hi) }

// Erlang is the sum of K independent exponentials of rate R.
type Erlang struct {
	K int
	R float64
}

func (d Erlang) Sample(s *Stream) float64 {
	// Product of uniforms avoids K logarithms.
	prod := 1.0
	for i := 0; i < d.K; i++ {
		prod *= s.OpenFloat64()
	}
	return -math.Log(prod) / d.R
}
func (d Erlang) Mean() float64  { return float64(d.K) / d.R }
func (d Erlang) String() string { return fmt.Sprintf("Erlang(%d,%g)", d.K, d.R) }

// Gamma is the gamma distribution with shape Alpha > 0 and rate R > 0.
type Gamma struct{ Alpha, R float64 }

func (d Gamma) Sample(s *Stream) float64 {
	return sampleGamma(s, d.Alpha) / d.R
}
func (d Gamma) Mean() float64  { return d.Alpha / d.R }
func (d Gamma) String() string { return fmt.Sprintf("Gamma(%g,%g)", d.Alpha, d.R) }

// sampleGamma draws from Gamma(alpha, 1) using Marsaglia–Tsang, with the
// standard boost for alpha < 1.
func sampleGamma(s *Stream, alpha float64) float64 {
	if alpha <= 0 || math.IsNaN(alpha) {
		panic("rng: Gamma with non-positive shape")
	}
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := s.OpenFloat64()
		return sampleGamma(s, alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.OpenFloat64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull has shape K > 0 and scale Lambda > 0.
type Weibull struct{ K, Lambda float64 }

func (d Weibull) Sample(s *Stream) float64 {
	return d.Lambda * math.Pow(-math.Log(s.OpenFloat64()), 1/d.K)
}
func (d Weibull) Mean() float64  { return d.Lambda * math.Gamma(1+1/d.K) }
func (d Weibull) String() string { return fmt.Sprintf("Weibull(%g,%g)", d.K, d.Lambda) }

// Normal is the normal distribution with mean Mu and standard deviation
// Sigma. When used as a firing-time distribution, samples are truncated at
// zero by the engine's callers if required; Sample itself may return
// negative values.
type Normal struct{ Mu, Sigma float64 }

func (d Normal) Sample(s *Stream) float64 { return d.Mu + d.Sigma*s.Normal() }
func (d Normal) Mean() float64            { return d.Mu }
func (d Normal) String() string           { return fmt.Sprintf("Normal(%g,%g)", d.Mu, d.Sigma) }

// Lognormal is exp(Normal(Mu, Sigma)).
type Lognormal struct{ Mu, Sigma float64 }

func (d Lognormal) Sample(s *Stream) float64 { return math.Exp(d.Mu + d.Sigma*s.Normal()) }
func (d Lognormal) Mean() float64            { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }
func (d Lognormal) String() string           { return fmt.Sprintf("Lognormal(%g,%g)", d.Mu, d.Sigma) }

// Beta is the beta distribution on [0,1] with parameters A, B > 0.
type Beta struct{ A, B float64 }

func (d Beta) Sample(s *Stream) float64 {
	x := sampleGamma(s, d.A)
	y := sampleGamma(s, d.B)
	return x / (x + y)
}
func (d Beta) Mean() float64  { return d.A / (d.A + d.B) }
func (d Beta) String() string { return fmt.Sprintf("Beta(%g,%g)", d.A, d.B) }

// Geometric is the discrete geometric distribution counting the number of
// Bernoulli(P) failures before the first success (support 0, 1, 2, ...).
type Geometric struct{ P float64 }

func (d Geometric) Sample(s *Stream) float64 {
	if d.P <= 0 || d.P > 1 {
		panic("rng: Geometric with P outside (0,1]")
	}
	if d.P == 1 {
		return 0
	}
	return math.Floor(math.Log(s.OpenFloat64()) / math.Log(1-d.P))
}
func (d Geometric) Mean() float64  { return (1 - d.P) / d.P }
func (d Geometric) String() string { return fmt.Sprintf("Geom(%g)", d.P) }

// Binomial is the discrete binomial distribution with N trials of success
// probability P. Sampling is by direct simulation, which is fine for the
// small N used in modeling contexts.
type Binomial struct {
	N int
	P float64
}

func (d Binomial) Sample(s *Stream) float64 {
	k := 0
	for i := 0; i < d.N; i++ {
		if s.Bernoulli(d.P) {
			k++
		}
	}
	return float64(k)
}
func (d Binomial) Mean() float64  { return float64(d.N) * d.P }
func (d Binomial) String() string { return fmt.Sprintf("Binom(%d,%g)", d.N, d.P) }

// Empirical samples from a finite set of values with the given (unnormalized)
// weights, using binary search over the cumulative weights.
type Empirical struct {
	values []float64
	cum    []float64 // strictly increasing cumulative weights
	mean   float64
}

// NewEmpirical builds an empirical distribution. It returns an error if the
// slices differ in length, are empty, or any weight is negative or the total
// is not positive.
func NewEmpirical(values, weights []float64) (*Empirical, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("rng: empirical needs matching non-empty values/weights, got %d/%d", len(values), len(weights))
	}
	e := &Empirical{values: append([]float64(nil), values...)}
	total := 0.0
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rng: empirical weight %d is negative or NaN", i)
		}
		total += w
		sum += w * values[i]
		e.cum = append(e.cum, total)
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: empirical total weight %g is not positive", total)
	}
	e.mean = sum / total
	return e, nil
}

func (e *Empirical) Sample(s *Stream) float64 {
	u := s.Float64() * e.cum[len(e.cum)-1]
	i := sort.SearchFloat64s(e.cum, u)
	if i == len(e.cum) {
		i--
	}
	// SearchFloat64s finds the first cum >= u; when u lands exactly on a
	// boundary the next bucket is correct, so advance past zero-width ones.
	for i < len(e.cum)-1 && e.cum[i] <= u {
		i++
	}
	return e.values[i]
}
func (e *Empirical) Mean() float64  { return e.mean }
func (e *Empirical) String() string { return fmt.Sprintf("Empirical(%d points)", len(e.values)) }
