package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependentAndStable(t *testing.T) {
	root := New(7)
	d1 := root.Derive(3)
	d2 := root.Derive(3)
	if d1.Uint64() != d2.Uint64() {
		t.Fatal("Derive with the same id is not reproducible")
	}
	d3 := root.Derive(4)
	if d3.Uint64() == root.Derive(3).Uint64() {
		t.Fatal("Derive with different ids produced the same first draw")
	}
	// Derivation must not advance the root stream.
	before := *root
	root.Derive(99)
	if before != *root {
		t.Fatal("Derive mutated the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 100000; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestOpenFloat64Positive(t *testing.T) {
	s := New(13)
	for i := 0; i < 100000; i++ {
		if u := s.OpenFloat64(); u <= 0 || u >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", u)
		}
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// 16 buckets, 160k draws: chi-square with 15 dof, 99.9% critical
	// value is 37.70.
	s := New(99)
	const buckets, n = 16, 160000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[int(s.Float64()*buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.70 {
		t.Fatalf("uniformity chi-square too high: %v", chi2)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for n := 1; n <= 20; n++ {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) returned %d", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(21)
	const n, draws = 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Intn bucket %d count %d far from expected %v", i, c, expected)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	s := New(8)
	p := make([]int, 10)
	s.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(123)
	const n, draws = 5, 50000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < draws; i++ {
		s.Perm(p)
		counts[p[0]]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("Perm first-element bucket %d count %d far from %v", i, c, expected)
		}
	}
}

func TestCategory(t *testing.T) {
	s := New(77)
	weights := []float64{0.8, 0.15, 0.05}
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[s.Category(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		if math.Abs(got-w) > 0.01 {
			t.Fatalf("Category bucket %d frequency %v, want ~%v", i, got, w)
		}
	}
}

func TestCategoryZeroWeightNeverChosen(t *testing.T) {
	s := New(31)
	weights := []float64{0, 1, 0}
	for i := 0; i < 10000; i++ {
		if got := s.Category(weights); got != 1 {
			t.Fatalf("Category chose zero-weight bucket %d", got)
		}
	}
}

func TestCategoryPanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Category(%v) did not panic", weights)
				}
			}()
			New(1).Category(weights)
		}()
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(55)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, got)
	}
}

func TestExpoMoments(t *testing.T) {
	s := New(3)
	const rate, n = 2.5, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Expo(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean %v, want %v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Fatalf("exponential variance %v, want %v", variance, 1/(rate*rate))
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(4)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 || math.Abs(variance-1) > 0.02 {
		t.Fatalf("standard normal moments mean=%v var=%v", mean, variance)
	}
}

// quickStream gives property tests a stream derived from the quick seed.
func quickStream(seed uint64) *Stream { return New(seed) }

func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := quickStream(seed)
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpoNonNegative(t *testing.T) {
	f := func(seed uint64, rateRaw uint16) bool {
		rate := float64(rateRaw%1000)/100 + 0.01
		return quickStream(seed).Expo(rate) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64HalfOpen(t *testing.T) {
	f := func(seed uint64) bool {
		u := quickStream(seed).Float64()
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
