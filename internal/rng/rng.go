// Package rng provides the random-variate substrate for the simulator: a
// fast, deterministic, splittable pseudo-random number generator and a
// library of sampling distributions equivalent to the distribution library
// shipped with the Möbius modeling tool.
//
// Streams are cheap value types. Every simulation replication derives its
// own statistically independent stream from a root seed, so replicated runs
// are reproducible and embarrassingly parallel.
package rng

import "math"

// splitmix64 is used for seeding and stream derivation. It is the standard
// seed-scrambling generator recommended by the xoshiro authors.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream is a xoshiro256** pseudo-random number generator. The zero value
// is not usable; construct streams with New or Derive.
//
// A stream may be marked antithetic (see Antithetic): it then emits the
// bitwise complement of the underlying xoshiro sequence, so every uniform
// U becomes 1−U (up to one ulp) while the state evolution — and therefore
// Derive and Role — is identical to its non-antithetic partner.
type Stream struct {
	s0, s1, s2, s3 uint64
	anti           bool
}

// New returns a stream seeded from seed. Different seeds give streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Stream {
	st := &Stream{}
	st.Reseed(seed)
	return st
}

// Reseed reinitializes the stream in place from seed.
func (s *Stream) Reseed(seed uint64) {
	s.s0 = splitmix64(seed)
	s.s1 = splitmix64(s.s0)
	s.s2 = splitmix64(s.s1)
	s.s3 = splitmix64(s.s2)
	// xoshiro256** requires a nonzero state; splitmix64 of any seed chain
	// yields all-zero with probability ~2^-256, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Derive returns a new stream independent of s, identified by id. Deriving
// the same id from the same root stream always yields the same stream, which
// gives per-replication reproducibility regardless of scheduling order.
// The antithetic mark propagates to the derived stream.
func (s *Stream) Derive(id uint64) *Stream {
	// Mix the root state with the id through splitmix64 rather than
	// consuming numbers from s, so derivation does not perturb s.
	base := s.s0 ^ rotl(s.s2, 17)
	d := New(splitmix64(base ^ (id+1)*0x9e3779b97f4a7c15))
	d.anti = s.anti
	return d
}

// roleSalt separates the Role derivation domain from Derive, so that
// Role(k) and Derive(k) of the same stream are independent.
const roleSalt = 0xd1342543de82ef95

// Role returns the substream of s for the stochastic role identified by k.
// Roles partition a replication's randomness by purpose (one activity's
// firing delays, one host's detection trials, a placement draw), which is
// what makes common random numbers work: two model variants that derive
// the same role from the same replication stream consume the same uniforms
// for the same purpose, no matter how their event interleavings differ.
// Like Derive, Role does not perturb s and propagates the antithetic mark.
func (s *Stream) Role(k uint64) *Stream {
	base := s.s0 ^ rotl(s.s2, 17)
	d := New(splitmix64(base ^ roleSalt ^ (k+1)*0x9e3779b97f4a7c15))
	d.anti = s.anti
	return d
}

// RoleNamed is Role(RoleKey(name)).
func (s *Stream) RoleNamed(name string) *Stream { return s.Role(RoleKey(name)) }

// RoleKey hashes a stable role name (usually an activity or entity name)
// to a role id for Role, using FNV-1a. Names are model-stable across
// configuration variants, which is exactly the property common-random-number
// pairing needs.
func RoleKey(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// Antithetic returns the antithetic partner of s: a stream with identical
// state whose every uniform draw is the complement 1−U of s's draw (via
// bitwise complement of the raw 64-bit output, exact to one ulp). Applying
// it twice returns to the original orientation. The partner shares no state
// with s — advancing one does not advance the other.
func (s *Stream) Antithetic() *Stream {
	t := *s
	t.anti = !t.anti
	return &t
}

// IsAntithetic reports whether the stream emits complemented uniforms.
func (s *Stream) IsAntithetic() bool { return s.anti }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	if s.anti {
		return ^result
	}
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform value in (0, 1), never exactly zero, which
// is required by inverse-transform samplers that take a logarithm.
func (s *Stream) OpenFloat64() float64 {
	for {
		if u := s.Float64(); u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Expo returns an exponential variate with the given rate. It panics if
// rate <= 0.
func (s *Stream) Expo(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Expo with non-positive rate")
	}
	return -math.Log(s.OpenFloat64()) / rate
}

// Normal returns a standard normal variate using the polar (Marsaglia)
// method. Distributions that need pairs should cache their own spare.
func (s *Stream) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (s *Stream) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choose returns a uniformly chosen element index of a set of size n
// represented by the caller, equivalent to Intn but named for readability at
// call sites that implement "equally likely to fire first" race semantics.
func (s *Stream) Choose(n int) int { return s.Intn(n) }

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Category samples an index from the discrete distribution given by weights
// (which need not be normalized). It panics if the total weight is not
// positive or any weight is negative.
func (s *Stream) Category(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN category weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive total category weight")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1 // float round-off: return the last positive-weight index
}
