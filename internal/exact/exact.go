// Package exact evaluates the paper's measures numerically: it converts a
// core ITUA configuration to a CTMC (internal/mc) and computes interval
// unavailability, unreliability, and the exclusion fraction by
// uniformization — no sampling, no confidence intervals. This is the
// third, strongest arm of the validation triangle next to the SAN engine
// and the direct simulator: on configurations small enough to generate,
// both simulators' estimates must bracket these values.
//
// The solver forces Params.Analytic, which saturates the intrusions
// counter at 1 so the reachable state space is finite; every guard and
// measure only tests intrusions == 0, so the simulated and analytic
// models agree on all observables (core.Params.Analytic documents the
// argument).
package exact

import (
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/mc"
	"ituaval/internal/san"
)

// Solver holds a generated chain together with the model handles the
// measure definitions need. Methods are safe to call repeatedly; each
// runs one numerical solution on the shared chain.
type Solver struct {
	M *core.Model
	C *mc.CTMC
}

// NewSolver builds the composed ITUA model for p (with Analytic forced
// on) and generates its CTMC. Configurations that are too large surface
// as the mc.Generate MaxStates error.
func NewSolver(p core.Params, opts mc.Options) (*Solver, error) {
	p.Analytic = true
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	c, err := mc.Generate(m.SAN, opts)
	if err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	return &Solver{M: m, C: c}, nil
}

// indicator lifts a predicate to a 0/1 rate reward.
func indicator(pred func(*san.State) bool) func(*san.State) float64 {
	return func(s *san.State) float64 {
		if pred(s) {
			return 1
		}
		return 0
	}
}

// Unavailability is the expected fraction of [0, T] during which
// application app's service is improper — the exact value of
// core.Model.Unavailability.
func (s *Solver) Unavailability(app int, T float64) (float64, error) {
	return s.C.IntervalAverageReward(T, indicator(s.M.Improper(app)))
}

// Unreliability is the probability that application app suffers a
// Byzantine fault at least once in [0, T] — the exact value of
// core.Model.Unreliability.
func (s *Solver) Unreliability(app int, T float64) (float64, error) {
	return s.C.FirstPassageProb(T, s.M.Byzantine(app))
}

// FracDomainsExcluded is the expected fraction of security domains
// excluded by time T — the exact value of core.Model.FracDomainsExcluded.
func (s *Solver) FracDomainsExcluded(T float64) (float64, error) {
	excluded := s.M.DomainsExcluded
	n := float64(s.M.Params.NumDomains)
	return s.C.TransientReward(T, func(st *san.State) float64 {
		return float64(st.Get(excluded)) / n
	})
}
