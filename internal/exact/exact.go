// Package exact evaluates the paper's measures numerically: it converts a
// core ITUA configuration to a CTMC (internal/mc) and computes interval
// unavailability, unreliability, and the exclusion fraction by
// uniformization — no sampling, no confidence intervals. This is the
// third, strongest arm of the validation triangle next to the SAN engine
// and the direct simulator: on configurations small enough to generate,
// both simulators' estimates must bracket these values.
//
// The solver forces Params.Analytic, which saturates the intrusions
// counter at 1 so the reachable state space is finite; every guard and
// measure only tests intrusions == 0, so the simulated and analytic
// models agree on all observables (core.Params.Analytic documents the
// argument).
//
// By default the solver generates the symmetry-lumped quotient chain
// (core.NewCanonicalizer): hosts within a domain and whole domains are
// exchangeable, so the full chain's orbits collapse into single states and
// multi-host topologies that are far beyond MaxStates become solvable.
// Every measure this package computes is orbit-invariant (Improper,
// Byzantine, and DomainsExcluded read only permutation-transported
// counts), so the quotient yields bit-accurate answers in the sense of
// ordinary lumpability. Configurations the canonicalizer refuses
// (least-loaded placement, single-host topologies) fall back to the full
// chain automatically; Options.NoLump forces the full chain everywhere,
// which the equivalence tests use.
package exact

import (
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/mc"
	"ituaval/internal/san"
)

// Options configures chain generation for the solver.
type Options struct {
	// MaxStates aborts generation beyond this many states (0 = mc default).
	MaxStates int
	// Workers is the generation and solve parallelism (0 = GOMAXPROCS).
	Workers int
	// NoLump disables symmetry lumping and generates the full chain even
	// when the configuration is symmetric. Measures are unchanged (ordinary
	// lumpability); only the state count and runtime differ.
	NoLump bool
}

// Solver holds a generated chain together with the model handles the
// measure definitions need. Methods are safe to call repeatedly; each
// runs one numerical solution on the shared chain.
type Solver struct {
	M *core.Model
	C *mc.CTMC
	// Lumped reports whether the chain is the symmetry quotient rather
	// than the full chain.
	Lumped bool
}

// NewSolver builds the composed ITUA model for p (with Analytic forced
// on) and generates its CTMC — the symmetry-lumped quotient when the
// configuration admits one and opts.NoLump is unset. Configurations that
// are too large surface as the mc.Generate MaxStates error.
func NewSolver(p core.Params, opts Options) (*Solver, error) {
	p.Analytic = true
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	mcOpts := mc.Options{MaxStates: opts.MaxStates, Workers: opts.Workers}
	lumped := false
	if !opts.NoLump {
		if canon := core.NewCanonicalizer(m); canon != nil {
			mcOpts.Canon = canon
			lumped = true
		}
	}
	c, err := mc.Generate(m.SAN, mcOpts)
	if err != nil {
		return nil, fmt.Errorf("exact: %w", err)
	}
	return &Solver{M: m, C: c, Lumped: lumped}, nil
}

// indicator lifts a predicate to a 0/1 rate reward.
func indicator(pred func(*san.State) bool) func(*san.State) float64 {
	return func(s *san.State) float64 {
		if pred(s) {
			return 1
		}
		return 0
	}
}

// Unavailability is the expected fraction of [0, T] during which
// application app's service is improper — the exact value of
// core.Model.Unavailability.
func (s *Solver) Unavailability(app int, T float64) (float64, error) {
	return s.C.IntervalAverageReward(T, indicator(s.M.Improper(app)))
}

// Unreliability is the probability that application app suffers a
// Byzantine fault at least once in [0, T] — the exact value of
// core.Model.Unreliability.
func (s *Solver) Unreliability(app int, T float64) (float64, error) {
	return s.C.FirstPassageProb(T, s.M.Byzantine(app))
}

// FracDomainsExcluded is the expected fraction of security domains
// excluded by time T — the exact value of core.Model.FracDomainsExcluded.
func (s *Solver) FracDomainsExcluded(T float64) (float64, error) {
	excluded := s.M.DomainsExcluded
	n := float64(s.M.Params.NumDomains)
	return s.C.TransientReward(T, func(st *san.State) float64 {
		return float64(st.Get(excluded)) / n
	})
}
