package exact

import (
	"testing"

	"ituaval/internal/core"
)

// TestSolverSmallConfig generates the 2-domain, 1-host-per-domain
// analytic configuration (the study's topology, ~8·10^4 states at zero
// spread) and sanity-checks the exact measures: all in [0,1],
// unreliability monotone in the horizon.
func TestSolverSmallConfig(t *testing.T) {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	p.DomainSpreadRate = 0 // keeps the chain under 10^5 states
	s, err := NewSolver(p, Options{MaxStates: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d transitions=%d", s.C.NumStates(), s.C.NumTransitions())
	u5, err := s.Unavailability(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	u10, err := s.Unavailability(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := s.Unreliability(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := s.Unreliability(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	e10, err := s.FracDomainsExcluded(10)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("u5=%g u10=%g r5=%g r10=%g e10=%g", u5, u10, r5, r10, e10)
	for _, v := range []float64{u5, u10, r5, r10, e10} {
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("measure out of [0,1]: %v", v)
		}
	}
	if r10 < r5-1e-12 {
		t.Fatalf("unreliability not monotone: r5=%g r10=%g", r5, r10)
	}
}
