package exact_test

// Golden lumped-vs-full equivalence: by ordinary lumpability the
// symmetry-lumped quotient chain must reproduce the full chain's measures
// exactly (up to floating-point accumulation order, bounded far below the
// solver's 1e-12 uniformization tolerance). TestLumpedEquivalence checks
// a fixed pair of small configurations on every `go test` run; the
// exhaustive sweep over every registered study shape — plus the
// worker-count determinism check — runs under LUMPCHECK_FULL=1
// (`make lumpcheck`).

import (
	"math"
	"os"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/exact"
	"ituaval/internal/study"
)

// lumpTol bounds |full - lumped| for every measure. Both solvers run the
// same uniformization with eps 1e-12; the chains are different orderings
// of the same lumped dynamics, so the difference is pure round-off.
const lumpTol = 1e-12

// equivMeasures solves one configuration on a solver and returns the three
// exact measures at horizon T.
func equivMeasures(t *testing.T, s *exact.Solver, T float64) [3]float64 {
	t.Helper()
	u, err := s.Unavailability(0, T)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Unreliability(0, T)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.FracDomainsExcluded(T)
	if err != nil {
		t.Fatal(err)
	}
	return [3]float64{u, r, e}
}

// checkLumpedEquivalence generates the full and lumped chains for p and
// compares every measure; it returns false (after logging) when the full
// chain does not generate under maxStates. Workers are varied on the
// lumped side to pin quotient determinism: the canonical renumber must
// make the quotient chain — and therefore every solved value —
// bit-identical at any worker count.
func checkLumpedEquivalence(t *testing.T, name string, p core.Params, maxStates int, workerCounts []int) bool {
	t.Helper()
	const T = 10.0
	full, err := exact.NewSolver(p, exact.Options{MaxStates: maxStates, NoLump: true})
	if err != nil {
		t.Logf("%s: full chain skipped: %v", name, err)
		return false
	}
	fm := equivMeasures(t, full, T)

	var first *exact.Solver
	var firstM [3]float64
	for _, w := range workerCounts {
		lumped, err := exact.NewSolver(p, exact.Options{MaxStates: maxStates, Workers: w})
		if err != nil {
			t.Fatalf("%s: lumped chain (workers=%d): %v", name, w, err)
		}
		lm := equivMeasures(t, lumped, T)
		if first == nil {
			first, firstM = lumped, lm
			if !lumped.Lumped {
				t.Logf("%s: no symmetry (canonicalizer refused); full == lumped trivially", name)
			}
			for i, mname := range [3]string{"unavailability", "unreliability", "fracExcluded"} {
				if d := math.Abs(fm[i] - lm[i]); d > lumpTol || math.IsNaN(d) {
					t.Errorf("%s: %s differs: full=%.17g lumped=%.17g (|Δ|=%.3g > %g)",
						name, mname, fm[i], lm[i], d, lumpTol)
				}
			}
			continue
		}
		if lumped.C.NumStates() != first.C.NumStates() || lumped.C.NumTransitions() != first.C.NumTransitions() {
			t.Errorf("%s: quotient chain shape depends on workers=%d: %d/%d states, %d/%d transitions",
				name, w, lumped.C.NumStates(), first.C.NumStates(),
				lumped.C.NumTransitions(), first.C.NumTransitions())
		}
		if lm != firstM {
			t.Errorf("%s: quotient solve not bit-identical at workers=%d: %v vs %v", name, w, lm, firstM)
		}
	}
	t.Logf("%s: full %d states / lumped %d states (%.2fx reduction), measures agree to %g",
		name, full.C.NumStates(), first.C.NumStates(),
		float64(full.C.NumStates())/float64(first.C.NumStates()), lumpTol)
	return true
}

// TestLumpedEquivalence covers both symmetry layers cheaply: domain
// exchange (2 domains x 1 host, the analytic study's configuration) and
// host exchange (1 domain x 2 hosts).
func TestLumpedEquivalence(t *testing.T) {
	dom := core.DefaultParams()
	dom.NumDomains, dom.HostsPerDomain, dom.NumApps, dom.RepsPerApp = 2, 1, 1, 2
	dom.CorruptionMult = 5
	dom.DomainSpreadRate = 0
	if !checkLumpedEquivalence(t, "2x1 domain-symmetry", dom, 500_000, []int{1, 8}) {
		t.Fatal("2x1 configuration must generate")
	}

	host := core.DefaultParams()
	host.NumDomains, host.HostsPerDomain, host.NumApps, host.RepsPerApp = 1, 2, 1, 1
	host.DomainSpreadRate = 0
	if !checkLumpedEquivalence(t, "1x2 host-symmetry", host, 100_000, []int{1, 8}) {
		t.Fatal("1x2 configuration must generate")
	}
}

// TestLumpedEquivalenceShapes is the exhaustive sweep (`make lumpcheck`):
// every registered study shape, Analytic forced, full chain attempted
// under a 1<<20 cap — whatever generates must match its quotient to
// lumpTol at worker counts 1 and 4, and shapes too large to generate in
// full are logged and skipped (that scaling gap is exactly what the
// lumped path exists for).
func TestLumpedEquivalenceShapes(t *testing.T) {
	if os.Getenv("LUMPCHECK_FULL") == "" {
		t.Skip("set LUMPCHECK_FULL=1 (make lumpcheck) to run the exhaustive shape sweep")
	}
	shapes := study.StudyModelShapes()
	checked := 0
	for _, sh := range shapes {
		p := sh.Params
		p.Analytic = true
		if checkLumpedEquivalence(t, sh.Study+"/"+sh.Name, p, 1<<20, []int{1, 4}) {
			checked++
		}
	}
	// A three-host domain exercises a non-trivial host orbit (3! = 6).
	tall := core.DefaultParams()
	tall.NumDomains, tall.HostsPerDomain, tall.NumApps, tall.RepsPerApp = 1, 3, 1, 1
	tall.DomainSpreadRate = 0
	if checkLumpedEquivalence(t, "1x3 host-symmetry", tall, 1<<21, []int{1, 4}) {
		checked++
	}
	if checked == 0 {
		t.Fatal("no shape generated in full; the equivalence sweep checked nothing")
	}
	t.Logf("equivalence verified on %d configurations", checked)
}
