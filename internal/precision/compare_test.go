package precision

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// fig5Spec builds the exclusion-policy study of Figure 5 at a reduced
// topology (6 domains x 2 hosts, 2 apps x 5 replicas) and a 4-hour horizon
// so the test stays fast while keeping the policies' stochastic roles
// aligned for CRN.
func fig5Spec(t *testing.T, policy core.Policy, spread float64, reps int) sim.Spec {
	t.Helper()
	const horizon = 4
	p := core.DefaultParams()
	p.NumDomains = 6
	p.HostsPerDomain = 2
	p.NumApps = 2
	p.RepsPerApp = 5
	p.CorruptionMult = 5
	p.DomainSpreadRate = spread
	p.Policy = policy
	m, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Spec{
		Model: m.SAN, Until: horizon, Reps: reps, Seed: 97,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, horizon),
			m.Unreliability("unrel", 0, horizon),
		},
	}
}

// TestCRNPairingReducesFig5DeltaVariance is the headline acceptance test:
// pairing the host- and domain-exclusion configurations on common random
// numbers must shrink the variance of the unavailability delta by at least
// 4x compared with independent sampling at equal replication counts. The
// VRF is exactly that ratio — (VarA + VarB), the delta variance two
// independent runs with these marginals would have, over the paired
// VarDelta.
func TestCRNPairingReducesFig5DeltaVariance(t *testing.T) {
	const reps = 384
	a := fig5Spec(t, core.HostExclusion, 2, reps)
	b := fig5Spec(t, core.DomainExclusion, 2, reps)
	cmp, err := Compare(context.Background(), a, b, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := cmp.Get("unavail")
	if !ok {
		t.Fatal("no unavailability measure")
	}
	if m.N < reps*9/10 {
		t.Fatalf("only %d of %d pairs completed", m.N, reps)
	}
	if m.Corr <= 0 {
		t.Fatalf("CRN produced non-positive unavailability correlation %v", m.Corr)
	}
	if m.VRF < 4 {
		t.Fatalf("variance reduction factor %v < 4 (corr %v)", m.VRF, m.Corr)
	}
	// The paired half-width must beat the independent-design half-width the
	// marginals imply, by the same sqrt(VRF) margin.
	indep := math.Sqrt(m.A.HalfWidth95*m.A.HalfWidth95 + m.B.HalfWidth95*m.B.HalfWidth95)
	if m.HalfWidth >= indep/2 {
		t.Fatalf("paired hw %v not at least 2x tighter than independent %v", m.HalfWidth, indep)
	}
}

// TestCompareMatchesManualPairedT pins Compare's bookkeeping to the stats
// layer: recomputing the paired-t from the returned per-replication values
// must reproduce every measure exactly.
func TestCompareMatchesManualPairedT(t *testing.T) {
	a := repairSpec(t, 4, 21)
	b := repairSpec(t, 6, 21)
	a.Reps, b.Reps = 64, 64
	cmp, err := Compare(context.Background(), a, b, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	m := cmp.Measures[0]
	want, err := stats.PairedT(cmp.A.PerRep[0], cmp.B.PerRep[0], 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if m.PairedResult != want {
		t.Fatalf("measure %+v does not match manual paired-t %+v", m.PairedResult, want)
	}
	// A faster repair rate means strictly higher availability for B on the
	// same randomness; the paired interval should resolve the sign.
	if m.Delta >= 0 || m.Hi >= 0 {
		t.Fatalf("expected a clearly negative availability delta, got %v [%v, %v]", m.Delta, m.Lo, m.Hi)
	}
}

func TestCompareDeterministicAcrossWorkers(t *testing.T) {
	var ref *Comparison
	for _, workers := range []int{1, 3, 8} {
		a := repairSpec(t, 4, 22)
		b := repairSpec(t, 6, 22)
		a.Workers, b.Workers = workers, workers
		a.Reps, b.Reps = 96, 96
		cmp, err := Compare(context.Background(), a, b, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cmp
			continue
		}
		if !reflect.DeepEqual(cmp.Measures, ref.Measures) {
			t.Fatalf("workers=%d: measures differ", workers)
		}
		if !reflect.DeepEqual(cmp.A.PerRep, ref.A.PerRep) || !reflect.DeepEqual(cmp.B.PerRep, ref.B.PerRep) {
			t.Fatalf("workers=%d: per-replication values differ", workers)
		}
	}
}

// TestCompareSequentialStops drives the paired comparison to a delta
// precision target and checks both the stop condition and the schedule's
// bit-reproducibility across worker counts.
func TestCompareSequentialStops(t *testing.T) {
	opts := Opts{
		Targets:     []Target{{Var: "avail", AbsHW: 0.01}},
		InitialReps: 16,
		MaxReps:     1 << 14,
	}
	var ref *Comparison
	for _, workers := range []int{1, 4} {
		a := repairSpec(t, 4, 23)
		b := repairSpec(t, 6, 23)
		a.Workers, b.Workers = workers, workers
		cmp, err := Compare(context.Background(), a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !cmp.Met {
			t.Fatalf("workers=%d: delta target not reached within %d reps", workers, opts.MaxReps)
		}
		m := cmp.Measures[0]
		if m.HalfWidth > 0.01 {
			t.Fatalf("workers=%d: stopped with delta hw %v > 0.01", workers, m.HalfWidth)
		}
		if cmp.Reps >= opts.MaxReps {
			t.Fatalf("workers=%d: used the whole cap", workers)
		}
		if ref == nil {
			ref = cmp
			continue
		}
		if cmp.Reps != ref.Reps || cmp.Batches != ref.Batches {
			t.Fatalf("schedule diverged across workers: %d/%d reps, %d/%d batches",
				cmp.Reps, ref.Reps, cmp.Batches, ref.Batches)
		}
		if !reflect.DeepEqual(cmp.Measures, ref.Measures) {
			t.Fatal("measures diverged across workers")
		}
	}
}

func TestCompareValidation(t *testing.T) {
	a := repairSpec(t, 4, 24)
	b := repairSpec(t, 6, 24)
	a.Reps, b.Reps = 16, 16

	anti := a
	anti.Antithetic = true
	if _, err := Compare(context.Background(), anti, b, Opts{}); err == nil {
		t.Error("Compare accepted mismatched Antithetic flags")
	}

	q := a
	q.Quantiles = []float64{0.5}
	if _, err := Compare(context.Background(), q, b, Opts{}); err == nil {
		t.Error("Compare accepted Quantiles")
	}

	zero := a
	zero.Reps = 0
	if _, err := Compare(context.Background(), zero, b, Opts{}); err == nil {
		t.Error("Compare accepted zero reps")
	}

	if _, err := Compare(context.Background(), a, b, Opts{
		Targets: []Target{{Var: "nope", RelHW: 0.1}},
	}); err == nil {
		t.Error("Compare accepted a target on an unknown measure")
	}
}
