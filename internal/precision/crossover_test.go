package precision

import (
	"math"
	"testing"
)

func TestCrossoversInterpolates(t *testing.T) {
	xs := []float64{0, 2, 4, 6}
	deltas := []float64{-2, -1, 1, 3}
	hws := []float64{0.1, 0.1, 0.1, 0.1}
	cs := Crossovers(xs, deltas, hws)
	if len(cs) != 1 {
		t.Fatalf("found %d crossings, want 1: %+v", len(cs), cs)
	}
	// Linear interpolation between (2,-1) and (4,1) crosses zero at x=3.
	if math.Abs(cs[0].X-3) > 1e-12 || cs[0].I != 1 {
		t.Fatalf("crossing at x=%v (I=%d), want x=3 (I=1)", cs[0].X, cs[0].I)
	}
	if !cs[0].Resolved {
		t.Fatal("crossing with tight intervals not marked resolved")
	}
}

func TestCrossoversUnresolvedWhenNoisy(t *testing.T) {
	xs := []float64{0, 1}
	deltas := []float64{-0.5, 0.5}
	hws := []float64{0.6, 0.1} // left bracket's CI covers zero
	cs := Crossovers(xs, deltas, hws)
	if len(cs) != 1 || cs[0].Resolved {
		t.Fatalf("want one unresolved crossing, got %+v", cs)
	}
	if cs = Crossovers(xs, deltas, nil); len(cs) != 1 || cs[0].Resolved {
		t.Fatalf("nil half-widths must never resolve, got %+v", cs)
	}
}

func TestCrossoversSkipsNaNAndHandlesZero(t *testing.T) {
	nan := math.NaN()
	xs := []float64{0, 1, 2, 3, 4}
	deltas := []float64{-1, nan, 1, 0, -1}
	cs := Crossovers(xs, deltas, nil)
	if len(cs) != 2 {
		t.Fatalf("found %d crossings, want 2: %+v", len(cs), cs)
	}
	// The first bridges the NaN gap: between (0,-1) and (2,1), at x=1.
	if math.Abs(cs[0].X-1) > 1e-12 || cs[0].I != 0 {
		t.Fatalf("first crossing at x=%v (I=%d), want x=1 (I=0)", cs[0].X, cs[0].I)
	}
	// The second is the exact zero at x=3; the following sign change
	// against a zero delta is not double-counted.
	if cs[1].X != 3 || cs[1].I != 3 {
		t.Fatalf("second crossing at x=%v (I=%d), want x=3 (I=3)", cs[1].X, cs[1].I)
	}
}

func TestCrossoversNoSignChange(t *testing.T) {
	if cs := Crossovers([]float64{0, 1, 2}, []float64{1, 2, 3}, nil); len(cs) != 0 {
		t.Fatalf("monotone positive deltas produced crossings: %+v", cs)
	}
	if cs := Crossovers(nil, nil, nil); len(cs) != 0 {
		t.Fatalf("empty input produced crossings: %+v", cs)
	}
}
