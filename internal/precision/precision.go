// Package precision implements variance reduction and adaptive precision
// for replicated simulation studies: sequential stopping (grow the
// replication count geometrically until every requested measure reaches a
// 95% half-width target), and paired policy comparison on common random
// numbers with paired-t confidence intervals, variance-reduction reporting,
// and crossover location for policy sweeps.
//
// Both entry points are deterministic for a fixed seed: batch boundaries
// depend only on the spec (never on timing or worker scheduling), every
// batch keeps per-replication values so aggregation runs in replication
// order, and contiguous batches merge exactly. Running with 1 worker or 16
// yields bit-identical results, and re-running the schedule from a
// checkpoint reproduces it.
package precision

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// Defaults for the sequential-stopping schedule.
const (
	DefaultInitialReps = 32
	DefaultMaxReps     = 4096
	DefaultGrowth      = 2.0
)

// Target requests a confidence-interval precision for one reward variable.
// At least one of the two half-width targets must be positive; meeting
// either satisfies the target (see stats.PrecisionMet, including the
// degradation of the relative rule at mean ≈ 0).
type Target struct {
	// Var names the reward variable (sim Estimate name). In a paired
	// comparison the target applies to the measure's delta.
	Var string
	// RelHW is the relative 95% half-width target: stop when
	// hw <= RelHW·|mean|. Zero means not requested.
	RelHW float64
	// AbsHW is the absolute 95% half-width target: stop when hw <= AbsHW.
	// Zero means not requested.
	AbsHW float64
}

// Spec describes a sequentially-stopped study: the base simulation spec
// plus the precision schedule. Sim.Reps is ignored — the schedule governs
// how many replications run.
type Spec struct {
	// Sim is the base study. KeepPerRep is forced on; Quantiles are not
	// supported (batches cannot merge them).
	Sim sim.Spec
	// Targets lists the measures that must reach their precision before
	// stopping; every entry must name a variable of Sim.Vars.
	Targets []Target
	// InitialReps is the size of the first batch (default
	// DefaultInitialReps; rounded up to even under Sim.Antithetic).
	InitialReps int
	// MaxReps bounds the total replication count (default DefaultMaxReps).
	MaxReps int
	// Growth is the geometric factor by which the cumulative replication
	// count grows between precision checks (default DefaultGrowth; must
	// exceed 1).
	Growth float64
}

// Result is the outcome of a sequentially-stopped study.
type Result struct {
	// Results aggregates every batch that ran (merged exactly, as if the
	// total had been requested up front in one call).
	Results *sim.Results
	// Batches is the number of batches executed.
	Batches int
	// Met reports whether every target was satisfied when the run stopped;
	// false means the schedule hit MaxReps (or was interrupted) first.
	Met bool
}

// normalize fills schedule defaults and validates the spec. It returns the
// effective (initial, max, growth).
func (s *Spec) normalize() (int, int, float64, error) {
	initial, max, growth := s.InitialReps, s.MaxReps, s.Growth
	if initial == 0 {
		initial = DefaultInitialReps
	}
	if max == 0 {
		max = DefaultMaxReps
	}
	if growth == 0 {
		growth = DefaultGrowth
	}
	if initial < 1 {
		return 0, 0, 0, fmt.Errorf("precision: InitialReps must be >= 1, got %d", initial)
	}
	if s.Sim.Antithetic && initial%2 != 0 {
		initial++
	}
	if max < initial {
		return 0, 0, 0, fmt.Errorf("precision: MaxReps %d below the initial batch %d", max, initial)
	}
	if s.Sim.Antithetic && max%2 != 0 {
		return 0, 0, 0, fmt.Errorf("precision: MaxReps must be even under Antithetic, got %d", max)
	}
	if growth <= 1 {
		return 0, 0, 0, fmt.Errorf("precision: Growth must exceed 1, got %v", growth)
	}
	if len(s.Sim.Quantiles) > 0 {
		return 0, 0, 0, errors.New("precision: Quantiles are not supported (batches cannot merge them)")
	}
	return initial, max, growth, nil
}

// validateTargets checks that every target names a known variable and
// requests at least one positive half-width.
func validateTargets(targets []Target, known map[string]bool) error {
	if len(targets) == 0 {
		return errors.New("precision: at least one Target is required")
	}
	for _, t := range targets {
		if !known[t.Var] {
			return fmt.Errorf("precision: target names unknown variable %q", t.Var)
		}
		if t.RelHW < 0 || t.AbsHW < 0 {
			return fmt.Errorf("precision: target %q has a negative half-width", t.Var)
		}
		if t.RelHW == 0 && t.AbsHW == 0 {
			return fmt.Errorf("precision: target %q requests no precision", t.Var)
		}
	}
	return nil
}

// nextBatch returns the size of the batch to run after total replications,
// growing the cumulative count geometrically and clamping at max. even
// forces an even batch (antithetic pairing); total and max are then even,
// so the clamp preserves evenness.
func nextBatch(total, initial, max int, growth float64, even bool) int {
	n := initial
	if total > 0 {
		n = int(math.Ceil(float64(total) * (growth - 1)))
		if n < 1 {
			n = 1
		}
	}
	if even && n%2 != 0 {
		n++
	}
	if total+n > max {
		n = max - total
	}
	return n
}

// Run executes the study in geometrically growing batches until every
// target is met or MaxReps is reached. The merged results are identical to
// a single run of the same total replication count, bit-for-bit, for any
// worker count.
//
// Like sim.RunContext, Run returns partial results alongside the error when
// the context is cancelled or a batch exceeds its failure tolerance.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	initial, max, growth, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(spec.Sim.Vars))
	for _, v := range spec.Sim.Vars {
		known[v.Name()] = true
	}
	if err := validateTargets(spec.Targets, known); err != nil {
		return nil, err
	}

	s := spec.Sim
	s.KeepPerRep = true
	out := &Result{}
	total := 0
	for total < max {
		s.FirstRep = spec.Sim.FirstRep + total
		s.Reps = nextBatch(total, initial, max, growth, s.Antithetic)
		batch, err := sim.RunContext(ctx, s)
		if batch != nil {
			if out.Results == nil {
				out.Results = batch
			} else if merr := out.Results.Merge(batch); merr != nil {
				return out, merr
			}
			out.Batches++
			total += s.Reps
		}
		if err != nil {
			return out, err
		}
		if targetsMet(spec.Targets, out.Results) {
			out.Met = true
			return out, nil
		}
	}
	return out, nil
}

// targetsMet reports whether every target's estimate satisfies its
// precision request.
func targetsMet(targets []Target, res *sim.Results) bool {
	for _, t := range targets {
		est, ok := res.Get(t.Var)
		if !ok || !stats.PrecisionMet(est.Mean, est.HalfWidth95, t.RelHW, t.AbsHW) {
			return false
		}
	}
	return true
}
