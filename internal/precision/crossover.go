package precision

import "math"

// Crossover marks a zero crossing of a delta curve along a sweep — the
// point at which the better policy changes (Figure 5's question: up to
// which intra-domain spread rate does host exclusion beat domain
// exclusion?).
type Crossover struct {
	// X is the abscissa at which the piecewise-linear interpolant of the
	// deltas crosses zero.
	X float64
	// I is the left bracketing sweep index: the crossing lies within
	// [xs[I], xs[I+1]] (or exactly at xs[I] for an exactly-zero delta).
	I int
	// Resolved reports whether both bracketing deltas are statistically
	// distinguishable from zero (|delta| exceeds its confidence
	// half-width), so the sign change is not plausibly noise.
	Resolved bool
}

// Crossovers locates every sign change of the delta curve sampled at sweep
// points xs. hws, when non-nil, gives each delta's confidence half-width
// and determines Resolved; with nil half-widths no crossing is marked
// resolved. NaN deltas (failed sweep points) are skipped, and an
// exactly-zero delta is reported as a crossing at its own abscissa. xs must
// be strictly increasing and parallel to deltas.
func Crossovers(xs, deltas, hws []float64) []Crossover {
	var out []Crossover
	prev := -1
	for i := range deltas {
		if math.IsNaN(deltas[i]) {
			continue
		}
		if deltas[i] == 0 {
			out = append(out, Crossover{X: xs[i], I: i})
			prev = i
			continue
		}
		if prev >= 0 && deltas[prev] != 0 && (deltas[prev] < 0) != (deltas[i] < 0) {
			d0, d1 := deltas[prev], deltas[i]
			c := Crossover{
				X: xs[prev] + (xs[i]-xs[prev])*d0/(d0-d1),
				I: prev,
			}
			if hws != nil {
				c.Resolved = math.Abs(d0) > hws[prev] && math.Abs(d1) > hws[i]
			}
			out = append(out, c)
		}
		prev = i
	}
	return out
}
