package precision

import (
	"context"
	"errors"
	"fmt"

	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// Opts configures a paired comparison.
type Opts struct {
	// Level is the confidence level of the paired-t intervals (default
	// 0.95).
	Level float64
	// Targets, when non-empty, turns the comparison sequential: batches of
	// replications grow geometrically until every listed measure's *delta*
	// meets its precision, bounded by MaxReps. Empty runs a single batch of
	// specA.Reps replications.
	Targets []Target
	// InitialReps, MaxReps, Growth configure the sequential schedule
	// exactly as in Spec (ignored without Targets).
	InitialReps int
	MaxReps     int
	Growth      float64
}

// Measure is the paired comparison of one reward variable shared by the two
// configurations: the paired-t summary of the per-replication deltas
// (A − B), plus both marginal estimates for context.
type Measure struct {
	Name string
	stats.PairedResult
	// A and B are the marginal estimates of the two configurations.
	A, B sim.Estimate
}

func (m Measure) String() string {
	return fmt.Sprintf("Δ%s = %.6g ± %.2g (n=%d, corr %.2f, VRF %.1f)",
		m.Name, m.Delta, m.HalfWidth, m.N, m.Corr, m.VRF)
}

// Comparison is the outcome of Compare.
type Comparison struct {
	// Measures, in specA.Vars order, covers every variable name the two
	// specs share.
	Measures []Measure
	// A and B are the full per-configuration results.
	A, B *sim.Results
	// Reps is the number of replications run per configuration.
	Reps int
	// Batches is the number of batches executed (1 without Targets).
	Batches int
	// Met reports whether every requested delta target was satisfied; it is
	// true when no targets were requested.
	Met bool
}

// Get returns the named measure.
func (c *Comparison) Get(name string) (Measure, bool) {
	for _, m := range c.Measures {
		if m.Name == name {
			return m, true
		}
	}
	return Measure{}, false
}

// Compare estimates the difference between two model configurations on
// common random numbers. Both specs are forced into CRN mode with
// per-replication retention, and specB is re-seeded from specA so
// replication i of either configuration consumes the identical randomness
// for identical stochastic roles; the per-replication deltas then admit a
// paired-t interval whose variance shrinks by the measures' CRN-induced
// correlation (reported as VRF, the factor versus independent sampling at
// equal replications).
//
// Without opts.Targets a single batch of specA.Reps replications runs per
// configuration. With targets the comparison is sequential: batches grow
// geometrically until every listed measure's delta reaches its half-width
// target or MaxReps is hit (Met reports which). Either way the result is
// bit-identical for a fixed seed across worker counts.
//
// The two specs may differ in model structure; variables are matched by
// name, and both Antithetic flags must agree. On a partial failure
// (cancellation, failure tolerance exceeded) the comparison built so far is
// returned alongside the error.
func Compare(ctx context.Context, specA, specB sim.Spec, opts Opts) (*Comparison, error) {
	level := opts.Level
	if level == 0 {
		level = 0.95
	}
	if specA.Antithetic != specB.Antithetic {
		return nil, errors.New("precision: Compare requires matching Antithetic flags")
	}
	if len(specA.Quantiles) > 0 || len(specB.Quantiles) > 0 {
		return nil, errors.New("precision: Compare does not support Quantiles")
	}
	specA.CRN, specB.CRN = true, true
	specA.KeepPerRep, specB.KeepPerRep = true, true
	specB.Seed = specA.Seed
	specB.FirstRep = specA.FirstRep

	// Variables are matched by name; the shared set in specA order defines
	// the measures.
	idxA := make(map[string]int, len(specA.Vars))
	for i, v := range specA.Vars {
		idxA[v.Name()] = i
	}
	idxB := make(map[string]int, len(specB.Vars))
	for i, v := range specB.Vars {
		idxB[v.Name()] = i
	}
	var shared []string
	known := make(map[string]bool)
	for _, v := range specA.Vars {
		if _, ok := idxB[v.Name()]; ok {
			shared = append(shared, v.Name())
			known[v.Name()] = true
		}
	}
	if len(shared) == 0 {
		return nil, errors.New("precision: the two specs share no variable names")
	}

	sequential := len(opts.Targets) > 0
	var initial, max int
	var growth float64
	if sequential {
		if err := validateTargets(opts.Targets, known); err != nil {
			return nil, err
		}
		sched := Spec{Sim: specA, Targets: opts.Targets,
			InitialReps: opts.InitialReps, MaxReps: opts.MaxReps, Growth: opts.Growth}
		var err error
		if initial, max, growth, err = sched.normalize(); err != nil {
			return nil, err
		}
	} else {
		if specA.Reps < 1 {
			return nil, fmt.Errorf("precision: specA.Reps must be >= 1, got %d", specA.Reps)
		}
		initial, max, growth = specA.Reps, specA.Reps, 2
	}

	out := &Comparison{}
	total := 0
	for total < max {
		reps := nextBatch(total, initial, max, growth, specA.Antithetic)
		first := specA.FirstRep + total
		if err := runBatches(ctx, specA, specB, first, reps, &out.A, &out.B); err != nil {
			out.finish(shared, idxA, idxB, level)
			return out, err
		}
		total += reps
		out.Reps = total
		out.Batches++
		out.finish(shared, idxA, idxB, level)
		if sequential && deltaTargetsMet(opts.Targets, out) {
			out.Met = true
			return out, nil
		}
	}
	out.Met = !sequential
	return out, nil
}

// runBatches runs one batch of both arms at the given absolute offset on a
// single shared worker pool (sim.RunFlat) and merges each into its
// accumulator. Sharing the pool halves the per-batch synchronization
// barriers without changing a bit of the result: both arms retain
// per-replication values, so each aggregates in replication order no matter
// how the pool interleaves them. On error the completed work of both arms is
// still merged, so the caller's partial comparison stays paired.
func runBatches(ctx context.Context, specA, specB sim.Spec, first, reps int, accA, accB **sim.Results) error {
	specA.FirstRep, specA.Reps = first, reps
	specB.FirstRep, specB.Reps = first, reps
	frs := sim.RunFlat(ctx, []sim.Spec{specA, specB}, specA.Workers)
	var firstErr error
	for i, acc := range []**sim.Results{accA, accB} {
		fr := frs[i]
		err := fr.Err
		if fr.Results != nil {
			if *acc == nil {
				*acc = fr.Results
			} else if merr := (*acc).Merge(fr.Results); merr != nil && err == nil {
				err = merr
			}
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// finish recomputes the paired measures from the accumulated results.
func (c *Comparison) finish(shared []string, idxA, idxB map[string]int, level float64) {
	c.Measures = c.Measures[:0]
	if c.A == nil || c.B == nil {
		return
	}
	for _, name := range shared {
		m := Measure{Name: name}
		m.A, _ = c.A.Get(name)
		m.B, _ = c.B.Get(name)
		if pr, err := stats.PairedT(c.A.PerRep[idxA[name]], c.B.PerRep[idxB[name]], level); err == nil {
			m.PairedResult = pr
		} else {
			m.Level = level
		}
		c.Measures = append(c.Measures, m)
	}
}

// deltaTargetsMet checks every target against its measure's paired delta.
func deltaTargetsMet(targets []Target, c *Comparison) bool {
	for _, t := range targets {
		m, ok := c.Get(t.Var)
		if !ok || m.N < 2 || !stats.PrecisionMet(m.Delta, m.HalfWidth, t.RelHW, t.AbsHW) {
			return false
		}
	}
	return true
}
