package precision

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

// buildRepairModel is a tiny two-state availability model: a unit fails at
// rate 1 and repairs at rate 4; the measure is its availability over
// [0, 10]. Cheap enough for schedule tests, noisy enough to need many
// replications for a tight interval.
func buildRepairModel(t *testing.T, repairRate float64) (*san.Model, reward.Var) {
	t.Helper()
	m := san.NewModel("repair")
	up := m.Place("up", 1)
	m.AddActivity(san.ActivityDef{
		Name: "fail", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(1) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 1 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 0) }}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "repair", Kind: san.Timed,
		Dist:    func(*san.State) rng.Dist { return rng.Expo(repairRate) },
		Enabled: func(s *san.State) bool { return s.Get(up) == 0 },
		Reads:   []*san.Place{up},
		Cases:   []san.Case{{Prob: 1, Effect: func(ctx *san.Context) { ctx.State.Set(up, 1) }}},
	})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	v := &reward.TimeAverage{VarName: "avail", From: 0, To: 10,
		F: func(s *san.State) float64 { return float64(s.Get(up)) }}
	return m, v
}

func repairSpec(t *testing.T, repairRate float64, seed uint64) sim.Spec {
	t.Helper()
	m, v := buildRepairModel(t, repairRate)
	return sim.Spec{Model: m, Until: 10, Seed: seed, Vars: []reward.Var{v}}
}

func TestSequentialStoppingTerminates(t *testing.T) {
	spec := Spec{
		Sim:         repairSpec(t, 4, 11),
		Targets:     []Target{{Var: "avail", RelHW: 0.02}},
		InitialReps: 16,
		MaxReps:     1 << 14,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("stopping did not reach the target within %d reps", spec.MaxReps)
	}
	est := res.Results.MustGet("avail")
	if est.HalfWidth95 > 0.02*math.Abs(est.Mean) {
		t.Fatalf("stopped with hw %v > 2%% of mean %v", est.HalfWidth95, est.Mean)
	}
	if res.Results.Reps >= spec.MaxReps {
		t.Fatalf("used all %d reps; target should be reachable sooner", spec.MaxReps)
	}
	if res.Batches < 2 {
		t.Fatalf("expected several batches from a 16-rep start, got %d", res.Batches)
	}
	// The schedule is geometric: total reps after the first batch double
	// (growth 2), so the total must be 16·2^k.
	if r := res.Results.Reps; r&(r-1) != 0 {
		t.Errorf("total reps %d is not on the geometric schedule", r)
	}
}

func TestSequentialStoppingHitsCap(t *testing.T) {
	spec := Spec{
		Sim:         repairSpec(t, 4, 12),
		Targets:     []Target{{Var: "avail", RelHW: 1e-9}},
		InitialReps: 16,
		MaxReps:     64,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("an unreachable target was reported met")
	}
	if res.Results.Reps != 64 {
		t.Fatalf("ran %d reps, want the full cap of 64", res.Results.Reps)
	}
}

// TestSequentialEqualsSingleRun pins the batching exactness: the merged
// schedule reproduces the per-replication trajectories of one monolithic
// run of the same total bit-for-bit, and the aggregated moments agree to
// accumulator-merge rounding (the Chan et al. merge reorders floating-point
// additions, so the last few bits of the half-width may differ).
func TestSequentialEqualsSingleRun(t *testing.T) {
	spec := Spec{
		Sim:         repairSpec(t, 4, 13),
		Targets:     []Target{{Var: "avail", RelHW: 0.05}},
		InitialReps: 16,
		MaxReps:     1 << 14,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	single := spec.Sim
	single.KeepPerRep = true
	single.Reps = res.Results.Reps
	want, err := sim.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Results.PerRep, want.PerRep) {
		t.Fatal("batched per-replication values differ from monolithic run")
	}
	for i, got := range res.Results.Estimates {
		ref := want.Estimates[i]
		if got.N != ref.N || got.Min != ref.Min || got.Max != ref.Max {
			t.Fatalf("estimate %q: counts/extremes differ: %+v vs %+v", got.Name, got, ref)
		}
		if math.Abs(got.Mean-ref.Mean) > 1e-12*math.Abs(ref.Mean) {
			t.Fatalf("estimate %q: mean %v vs %v", got.Name, got.Mean, ref.Mean)
		}
		if math.Abs(got.HalfWidth95-ref.HalfWidth95) > 1e-9*ref.HalfWidth95 {
			t.Fatalf("estimate %q: half-width %v vs %v", got.Name, got.HalfWidth95, ref.HalfWidth95)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := Spec{
		Sim:         repairSpec(t, 4, 14),
		Targets:     []Target{{Var: "avail", RelHW: 0.05}},
		InitialReps: 16,
		MaxReps:     1 << 14,
	}
	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		spec := base
		spec.Sim.Workers = workers
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Batches != ref.Batches || res.Met != ref.Met {
			t.Fatalf("workers=%d: schedule diverged (batches %d vs %d, met %v vs %v)",
				workers, res.Batches, ref.Batches, res.Met, ref.Met)
		}
		if !reflect.DeepEqual(res.Results.Estimates, ref.Results.Estimates) {
			t.Fatalf("workers=%d: estimates differ", workers)
		}
		if !reflect.DeepEqual(res.Results.PerRep, ref.Results.PerRep) {
			t.Fatalf("workers=%d: per-replication values differ", workers)
		}
	}
}

func TestRunAntitheticSchedule(t *testing.T) {
	spec := Spec{
		Sim:         repairSpec(t, 4, 15),
		Targets:     []Target{{Var: "avail", RelHW: 0.05}},
		InitialReps: 15, // odd: must round up to 16
		MaxReps:     1 << 14,
	}
	spec.Sim.Antithetic = true
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("antithetic run did not reach the target")
	}
	if res.Results.Reps%2 != 0 {
		t.Fatalf("antithetic run ended with odd total %d", res.Results.Reps)
	}
}

func TestRunValidation(t *testing.T) {
	good := Spec{Sim: repairSpec(t, 4, 16), Targets: []Target{{Var: "avail", RelHW: 0.5}}}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no targets", func(s *Spec) { s.Targets = nil }},
		{"unknown variable", func(s *Spec) { s.Targets = []Target{{Var: "nope", RelHW: 0.5}} }},
		{"no precision requested", func(s *Spec) { s.Targets = []Target{{Var: "avail"}} }},
		{"negative target", func(s *Spec) { s.Targets = []Target{{Var: "avail", RelHW: -1}} }},
		{"growth <= 1", func(s *Spec) { s.Growth = 1 }},
		{"max below initial", func(s *Spec) { s.InitialReps = 64; s.MaxReps = 32 }},
		{"quantiles", func(s *Spec) { s.Sim.Quantiles = []float64{0.5} }},
		{"odd antithetic cap", func(s *Spec) { s.Sim.Antithetic = true; s.MaxReps = 101 }},
	}
	for _, c := range cases {
		spec := good
		c.mutate(&spec)
		if _, err := Run(context.Background(), spec); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", c.name)
		}
	}
	if _, err := Run(context.Background(), good); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
}

func TestNextBatchSchedule(t *testing.T) {
	// Growth 2 from 16: cumulative 16, 32, 64, ... capped at 100.
	var got []int
	total := 0
	for total < 100 {
		n := nextBatch(total, 16, 100, 2, false)
		got = append(got, n)
		total += n
	}
	want := []int{16, 16, 32, 36}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch sizes %v, want %v", got, want)
	}
	// Even mode keeps batches even.
	total = 0
	for total < 60 {
		n := nextBatch(total, 10, 60, 1.5, true)
		if n%2 != 0 {
			t.Fatalf("even schedule produced odd batch %d", n)
		}
		total += n
	}
	if total != 60 {
		t.Fatalf("even schedule overshot the cap: %d", total)
	}
}
