// Package integrity is the model-integrity and self-checking subsystem: it
// derives runtime invariant monitors from the composed ITUA model's
// structural laws (internal/sim enforces them during replications), and
// cross-validates the SAN engine against the independent direct simulator
// (crosscheck.go). Together with the static linter (san.Model.Lint) and the
// tamper-evident study checkpoints (internal/study), it gives the
// reproduction study defence in depth against silent model or engine bugs:
// a defect either cannot build (Finalize), is flagged before any run
// (Lint), aborts and classifies the affected replications (invariants), or
// shows up as disagreement between two independently coded engines.
package integrity

import (
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/san"
	"ituaval/internal/sim"
)

// DeclaredBounds returns an invariant enforcing every marking bound
// declared with san.Model.Bound, plus non-negativity for all places.
func DeclaredBounds(m *san.Model) sim.Invariant {
	return sim.Invariant{
		Name: "declared-bounds",
		Check: func(s *san.State) error {
			for _, p := range m.Places() {
				v := s.Get(p)
				if v < 0 {
					return fmt.Errorf("place %s has negative marking %d", p.Name(), v)
				}
				if b, ok := m.BoundOf(p); ok && v > b {
					return fmt.Errorf("place %s marking %d exceeds declared bound %d", p.Name(), v, b)
				}
			}
			return nil
		},
	}
}

// ITUAInvariants derives the composed ITUA model's conservation laws as
// runtime invariant monitors. Each law is a redundant encoding the model
// maintains incrementally (counters updated alongside the per-entity
// places); the monitors recompute every counter from the ground-truth
// per-entity state and fail the replication on any divergence, so a buggy
// output gate cannot silently skew the measures. Install them via
// sim.Spec.Invariants; they read the marking only and never consume
// randomness, so monitored trajectories are bit-identical to unmonitored
// ones.
func ITUAInvariants(m *core.Model) []sim.Invariant {
	p := m.Params
	D, H, A, R := p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp
	nHosts := D * H
	perApp := R
	if D < perApp {
		perApp = D // initial replicas per app, conserved as running + pending
	}

	replicas := sim.Invariant{
		Name: "replica-accounting",
		Check: func(s *san.State) error {
			for a := 0; a < A; a++ {
				running, undet := 0, 0
				for r := range m.OnHost[a] {
					g := s.Int(m.OnHost[a][r]) - 1
					if g < 0 {
						if s.Get(m.RepCorrupt[a][r]) != 0 || s.Get(m.RepConvicted[a][r]) != 0 {
							return fmt.Errorf("app %d slot %d: empty slot with stale corruption state", a, r)
						}
						continue
					}
					running++
					if g >= nHosts {
						return fmt.Errorf("app %d slot %d: host index %d out of range", a, r, g)
					}
					if s.Get(m.HostExcluded[g]) == 1 {
						return fmt.Errorf("app %d slot %d: replica running on excluded host %d", a, r, g)
					}
					if s.Get(m.RepCorrupt[a][r]) == 1 && s.Get(m.RepConvicted[a][r]) == 0 {
						undet++
					}
				}
				if got := s.Int(m.Running[a]); got != running {
					return fmt.Errorf("app %d: replicas_running = %d, slots say %d", a, got, running)
				}
				if got := s.Int(m.Undet[a]); got != undet {
					return fmt.Errorf("app %d: rep_corr_undetected = %d, slots say %d", a, got, undet)
				}
				if got := s.Int(m.Running[a]) + s.Int(m.NeedRecovery[a]); got != perApp {
					return fmt.Errorf("app %d: running+pending = %d, want the conserved %d", a, got, perApp)
				}
			}
			return nil
		},
	}

	placement := sim.Invariant{
		Name: "placement-accounting",
		Check: func(s *san.State) error {
			for g := 0; g < nHosts; g++ {
				load := 0
				for a := 0; a < A; a++ {
					for r := range m.OnHost[a] {
						if s.Int(m.OnHost[a][r]) == g+1 {
							load++
						}
					}
				}
				if got := s.Int(m.NumReplicas[g]); got != load {
					return fmt.Errorf("host %d: num_replicas = %d, slots say %d", g, got, load)
				}
			}
			for a := 0; a < A; a++ {
				for d := 0; d < D; d++ {
					n := 0
					for r := range m.OnHost[a] {
						if g := s.Int(m.OnHost[a][r]) - 1; g >= 0 && g/H == d {
							n++
						}
					}
					if n > 1 {
						return fmt.Errorf("app %d: %d replicas in domain %d, want at most 1", a, n, d)
					}
					if got := s.Int(m.HasReplica[a][d]); got != n {
						return fmt.Errorf("app %d domain %d: has_replica = %d, slots say %d", a, d, got, n)
					}
				}
			}
			return nil
		},
	}

	managers := sim.Invariant{
		Name: "manager-accounting",
		Check: func(s *san.State) error {
			up, corrupt := 0, 0
			for d := 0; d < D; d++ {
				domUp, domCorrupt := 0, 0
				for h := 0; h < H; h++ {
					g := d*H + h
					switch s.Int(m.MgrStatus[g]) {
					case 0:
						domUp++
					case 1:
						domUp++
						domCorrupt++
					case 2:
						if s.Get(m.HostExcluded[g]) != 1 {
							return fmt.Errorf("host %d: manager removed but host not excluded", g)
						}
					}
					if s.Get(m.HostExcluded[g]) == 1 && s.Int(m.MgrStatus[g]) != 2 {
						return fmt.Errorf("host %d: excluded host with live manager", g)
					}
				}
				if got := s.Int(m.DomMgrsUp[d]); got != domUp {
					return fmt.Errorf("domain %d: mgrs_up = %d, hosts say %d", d, got, domUp)
				}
				if got := s.Int(m.DomMgrsCorrupt[d]); got != domCorrupt {
					return fmt.Errorf("domain %d: mgrs_corrupt = %d, hosts say %d", d, got, domCorrupt)
				}
				up += domUp
				corrupt += domCorrupt
			}
			if got := s.Int(m.MgrsRunning); got != up {
				return fmt.Errorf("mgrs_running = %d, hosts say %d", got, up)
			}
			if got := s.Int(m.UndetMgrs); got != corrupt {
				return fmt.Errorf("undetected_corr_mgrs = %d, hosts say %d", got, corrupt)
			}
			return nil
		},
	}

	exclusions := sim.Invariant{
		Name: "exclusion-accounting",
		Check: func(s *san.State) error {
			excluded := 0
			for d := 0; d < D; d++ {
				if s.Get(m.DomExcluded[d]) == 0 {
					continue
				}
				excluded++
				for h := 0; h < H; h++ {
					if s.Get(m.HostExcluded[d*H+h]) == 0 {
						return fmt.Errorf("domain %d excluded but host %d is not", d, d*H+h)
					}
				}
			}
			if got := s.Int(m.DomainsExcluded); got != excluded {
				return fmt.Errorf("domains_excluded = %d, flags say %d", got, excluded)
			}
			return nil
		},
	}

	inv := []sim.Invariant{replicas, placement, managers, exclusions}
	if m.PartitionA != nil || m.RepairIdle != nil {
		inv = append(inv, environmentInvariant(m))
	}
	return append(inv, DeclaredBounds(m.SAN))
}

// environmentInvariant checks the environment submodel's conservation laws:
// a partition is either absent (both endpoint places zero) or severs two
// distinct domains, and the bounded repair crew conserves its capacity
// (busy + idle = RepairCrew, with busy equal to the number of applications
// holding a crew member in service). Only installed when the model has the
// corresponding environment features.
func environmentInvariant(m *core.Model) sim.Invariant {
	crew := m.Params.RepairCrew
	return sim.Invariant{
		Name: "environment-accounting",
		Check: func(s *san.State) error {
			if m.PartitionA != nil {
				a, b := s.Int(m.PartitionA), s.Int(m.PartitionB)
				if (a == 0) != (b == 0) {
					return fmt.Errorf("partition endpoints %d,%d: one severed domain without the other", a, b)
				}
				if a != 0 && a == b {
					return fmt.Errorf("partition severs domain %d from itself", a-1)
				}
			}
			if m.RepairIdle != nil {
				busy, idle := s.Int(m.RepairBusy), s.Int(m.RepairIdle)
				if busy+idle != crew {
					return fmt.Errorf("repair crew busy %d + idle %d != capacity %d", busy, idle, crew)
				}
				inService := 0
				for _, p := range m.RepairInService {
					inService += s.Int(p)
				}
				if busy != inService {
					return fmt.Errorf("repair crew busy %d, but %d applications hold a crew member", busy, inService)
				}
			}
			return nil
		},
	}
}
