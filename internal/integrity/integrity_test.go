package integrity

import (
	"context"
	"os"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/san"
	"ituaval/internal/sim"
	"ituaval/internal/study"
)

func baseParams(policy core.Policy) core.Params {
	p := core.DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 4, 2, 3, 4
	p.Policy = policy
	return p
}

// A clean model must survive the full monitor set checked at every event.
func TestITUAInvariantsCleanRun(t *testing.T) {
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		m, err := core.Build(baseParams(policy))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Spec{
			Model: m.SAN, Until: 6, Reps: 40, Seed: 7,
			Vars:           []reward.Var{m.Unavailability("unavail", 0, 0, 6)},
			Invariants:     ITUAInvariants(m),
			InvariantEvery: 1,
			MaxFailureFrac: 0,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Failed != 0 {
			t.Fatalf("%s: %d replications violated invariants: %v",
				policy, res.Failed, res.Failures[0])
		}
	}
}

// Monitored and unmonitored runs must produce identical estimates: the
// checks read markings but never consume randomness.
func TestITUAInvariantsDoNotPerturb(t *testing.T) {
	m, err := core.Build(baseParams(core.DomainExclusion))
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.Spec{
		Model: m.SAN, Until: 6, Reps: 25, Seed: 3,
		Vars: []reward.Var{m.Unavailability("unavail", 0, 0, 6)},
	}
	plain, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Invariants = ITUAInvariants(m)
	spec.InvariantEvery = 16
	monitored, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.MustGet("unavail"), monitored.MustGet("unavail")
	if a.Mean != b.Mean || a.N != b.N {
		t.Fatalf("monitoring changed the estimate: %+v vs %+v", a, b)
	}
}

// Each monitor must actually detect the corruption class it guards
// against: tamper with a fresh initial state and expect a complaint.
func TestITUAInvariantsDetectTampering(t *testing.T) {
	m, err := core.Build(baseParams(core.DomainExclusion))
	if err != nil {
		t.Fatal(err)
	}
	inv := map[string]sim.Invariant{}
	for _, iv := range ITUAInvariants(m) {
		inv[iv.Name] = iv
	}
	cases := []struct {
		monitor string
		tamper  func(s *san.State)
	}{
		{"replica-accounting", func(s *san.State) { s.Add(m.Running[0], 1) }},
		{"replica-accounting", func(s *san.State) { s.Add(m.Undet[1], 1) }},
		{"replica-accounting", func(s *san.State) { s.Add(m.NeedRecovery[0], 1) }},
		{"placement-accounting", func(s *san.State) { s.Add(m.NumReplicas[0], 1) }},
		{"placement-accounting", func(s *san.State) {
			// Force two replicas of app 0 into domain 0.
			s.Set(m.OnHost[0][0], 1)
			s.Set(m.OnHost[0][1], 2)
		}},
		{"manager-accounting", func(s *san.State) { s.Add(m.MgrsRunning, -1) }},
		{"manager-accounting", func(s *san.State) { s.Set(m.MgrStatus[3], 1) }},
		{"exclusion-accounting", func(s *san.State) { s.Add(m.DomainsExcluded, 1) }},
		{"declared-bounds", func(s *san.State) { s.Set(m.HostStatus[0], 9) }},
		{"declared-bounds", func(s *san.State) { s.Set(m.MgrStatus[0], 3) }},
	}
	for i, c := range cases {
		iv, ok := inv[c.monitor]
		if !ok {
			t.Fatalf("case %d: no monitor named %q", i, c.monitor)
		}
		s := cleanState(t, m)
		if err := iv.Check(s); err != nil {
			t.Fatalf("case %d: %s rejects the clean initial state: %v", i, c.monitor, err)
		}
		c.tamper(s)
		if err := iv.Check(s); err == nil {
			t.Errorf("case %d: %s accepted the tampered state", i, c.monitor)
		}
	}
}

// faultParams enables the full environment-fault vocabulary — partitions,
// correlated attack campaigns, and a bounded repair crew — on a given base.
func faultParams(p core.Params) core.Params {
	p.PartitionRate = 2
	p.PartitionHealRate = 2
	p.CampaignRate = 0.5
	p.CampaignSize = 2
	p.CampaignProb = 0.5
	p.RepairCrew = 1
	return p
}

// The environment monitor must reject states violating the partition
// pairing law or the repair-crew conservation law, and a fault-enabled
// model must survive the monitor over full replications.
func TestEnvironmentInvariant(t *testing.T) {
	p := faultParams(baseParams(core.DomainExclusion))
	m, err := core.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	var env *sim.Invariant
	for _, iv := range ITUAInvariants(m) {
		if iv.Name == "environment-accounting" {
			iv := iv
			env = &iv
		}
	}
	if env == nil {
		t.Fatal("fault-enabled model has no environment-accounting monitor")
	}
	cases := []struct {
		name   string
		tamper func(s *san.State)
	}{
		{"half-partition", func(s *san.State) { s.Set(m.PartitionA, 1) }},
		{"self-partition", func(s *san.State) { s.Set(m.PartitionA, 2); s.Set(m.PartitionB, 2) }},
		{"crew-leak", func(s *san.State) { s.Add(m.RepairIdle, -1) }},
		{"crew-phantom", func(s *san.State) { s.Add(m.RepairBusy, 1); s.Add(m.RepairIdle, -1) }},
	}
	for _, c := range cases {
		s := cleanState(t, m)
		if err := env.Check(s); err != nil {
			t.Fatalf("%s: monitor rejects the clean initial state: %v", c.name, err)
		}
		c.tamper(s)
		if err := env.Check(s); err == nil {
			t.Errorf("%s: monitor accepted the tampered state", c.name)
		}
	}

	// Clean fault-enabled replications must survive the full monitor set.
	res, err := sim.Run(sim.Spec{
		Model: m.SAN, Until: 6, Reps: 40, Seed: 7,
		Vars:           []reward.Var{m.Unavailability("unavail", 0, 0, 6)},
		Invariants:     ITUAInvariants(m),
		InvariantEvery: 1,
		MaxFailureFrac: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d fault-enabled replications violated invariants: %v", res.Failed, res.Failures[0])
	}
}

// cleanState reproduces the initial stable configuration the engine would
// start a replication from, by running one zero-length replication and
// rebuilding the placement through the model's own init hook via sim.
func cleanState(t *testing.T, m *core.Model) *san.State {
	t.Helper()
	s := m.SAN.NewState()
	// The init hook places replicas; reproduce it through a 1-replication
	// run is overkill — instead place them directly, respecting the
	// one-per-domain law the monitors enforce.
	p := m.Params
	k := p.RepsPerApp
	if p.NumDomains < k {
		k = p.NumDomains
	}
	for a := 0; a < p.NumApps; a++ {
		for i := 0; i < k; i++ {
			g := i * p.HostsPerDomain // host 0 of domain i
			s.Set(m.OnHost[a][i], san.Marking(g+1))
			s.Set(m.HasReplica[a][i], 1)
			s.Add(m.NumReplicas[g], 1)
			s.Add(m.Running[a], 1)
		}
	}
	return s
}

func TestCrossCheckSmoke(t *testing.T) {
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := baseParams(policy)
		report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
			Reps: 150, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if len(report.Measures) != 3 {
			t.Fatalf("%s: %d measures, want 3", policy, len(report.Measures))
		}
		if !report.Agree() {
			t.Errorf("%s: engines disagree:\n%s", policy, report)
		}
	}
}

// TestCrossCheckExact runs the three-arm variant on a configuration small
// enough for state-space generation: both simulators' 95% intervals must
// cover the uniformization value of every measure.
func TestCrossCheckExact(t *testing.T) {
	p := core.DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 2, 1, 1, 2
	report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
		Reps: 300, Seed: 17, Exact: true, ExactMaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	for _, m := range report.Measures {
		if !m.HasExact {
			t.Fatalf("%s: exact arm did not run", m.Name)
		}
	}
	if !report.Agree() {
		t.Errorf("three-arm cross-check disagrees:\n%s", report)
	}
}

// TestCrossCheckFull is the heavyweight variant behind `make crosscheck`:
// more replications, tighter intervals, both policies and a larger
// topology. Gated on CROSSCHECK_FULL=1 so the ordinary test lane stays
// fast.
func TestCrossCheckFull(t *testing.T) {
	if os.Getenv("CROSSCHECK_FULL") == "" {
		t.Skip("set CROSSCHECK_FULL=1 to run the full cross-engine validation")
	}
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := core.DefaultParams()
		p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 6, 2, 3, 7
		p.Policy = policy
		report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
			Reps: 2000, Seed: 29,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		t.Logf("\n%s", report)
		if !report.Agree() {
			t.Errorf("%s: engines disagree:\n%s", policy, report)
		}
	}
}

// TestCrossCheckLive runs the four-arm variant on the exact-tractable
// configuration: the live replicated service's 95% intervals must overlap
// both model engines' and the union of all three sampled intervals must
// cover the uniformization values. The live probes are also checked
// event-wise against the model oracle — zero divergences under the default
// worst-case adversary.
func TestCrossCheckLive(t *testing.T) {
	p := core.DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 2, 1, 1, 2
	report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
		Reps: 300, LiveReps: 120, Seed: 23, Live: true, Exact: true, ExactMaxStates: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	for _, m := range report.Measures {
		if !m.HasLive || !m.HasExact {
			t.Fatalf("%s: live=%v exact=%v, want both arms", m.Name, m.HasLive, m.HasExact)
		}
	}
	if report.LiveProbes == 0 {
		t.Fatal("live arm issued no probes")
	}
	if report.LiveDivergences != 0 {
		t.Errorf("%d of %d live probes diverged from the model oracle", report.LiveDivergences, report.LiveProbes)
	}
	if !report.Agree() {
		t.Errorf("four-arm cross-check disagrees:\n%s", report)
	}
}

// TestCrossCheckFaults runs the four-arm cross-check with the environment
// faults enabled on the exact-tractable configuration: network partitions,
// correlated attack campaigns, and a bounded repair crew all active. Every
// engine — SAN, direct, live, and the uniformization solver — must land in
// the same confidence region, and the live probes must still match the
// model oracle event for event (the oracle's improper predicate includes
// partition blocking).
func TestCrossCheckFaults(t *testing.T) {
	p := core.DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 2, 1, 1, 2
	p = faultParams(p)
	report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
		Reps: 300, LiveReps: 120, Seed: 37, Live: true, Exact: true, ExactMaxStates: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	for _, m := range report.Measures {
		if !m.HasLive || !m.HasExact {
			t.Fatalf("%s: live=%v exact=%v, want both arms", m.Name, m.HasLive, m.HasExact)
		}
	}
	if report.LiveDivergences != 0 {
		t.Errorf("%d of %d live probes diverged from the model oracle", report.LiveDivergences, report.LiveProbes)
	}
	if !report.Agree() {
		t.Errorf("fault-enabled four-arm cross-check disagrees:\n%s", report)
	}
}

// TestCrossCheckFaultsFull is the heavyweight fault validation behind
// `make faultcheck`: the four-arm check at higher replication counts, plus
// a larger SAN-vs-direct topology where the exact and live arms are ruled
// out (state space, and the model's partition-relay approximation under
// f >= 1 Byzantine budgets). Gated on FAULTCHECK_FULL=1.
func TestCrossCheckFaultsFull(t *testing.T) {
	if os.Getenv("FAULTCHECK_FULL") == "" {
		t.Skip("set FAULTCHECK_FULL=1 to run the full environment-fault validation")
	}
	p := core.DefaultParams()
	p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 2, 1, 1, 2
	p = faultParams(p)
	report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
		Reps: 2000, LiveReps: 1000, Seed: 41, Live: true, Exact: true, ExactMaxStates: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	if report.LiveDivergences != 0 {
		t.Errorf("%d of %d live probes diverged from the model oracle", report.LiveDivergences, report.LiveProbes)
	}
	if !report.Agree() {
		t.Errorf("fault-enabled four-arm cross-check disagrees:\n%s", report)
	}

	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := core.DefaultParams()
		p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 4, 2, 1, 4
		p.Policy = policy
		p = faultParams(p)
		report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
			Reps: 2000, Seed: 43,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		t.Logf("\n%s", report)
		if !report.Agree() {
			t.Errorf("%s: engines disagree under environment faults:\n%s", policy, report)
		}
	}
}

// TestCrossCheckLumpedAnchor is the scale half of the lumpcheck lane
// (`make lumpcheck`): the 4-domain x 2-host x 3-app Figure-5 anchor whose
// full chain is far beyond the default generation cap, solved exactly on
// its symmetry-lumped quotient (~1.59M states) and cross-checked against
// the SAN and direct simulators — the exact values must land inside the
// union of the two 95% confidence intervals. Before lumping this
// configuration was reachable only by the simulators; the numerical
// equivalence of the quotient itself is established by the other half of
// the lane (exact.TestLumpedEquivalenceShapes). Gated on LUMPCHECK_FULL=1.
func TestCrossCheckLumpedAnchor(t *testing.T) {
	if os.Getenv("LUMPCHECK_FULL") == "" {
		t.Skip("set LUMPCHECK_FULL=1 to run the lumped 4x2 anchor cross-check")
	}
	p := study.AnalyticAnchorParams()
	report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
		Reps: 1000, Seed: 29, Exact: true, ExactMaxStates: study.AnalyticAnchorMaxStates,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	for _, m := range report.Measures {
		if !m.HasExact {
			t.Fatalf("%s: exact arm did not run", m.Name)
		}
		if !m.ExactCovered() {
			t.Errorf("%s: exact value %.6g outside the simulators' CI union", m.Name, m.Exact)
		}
	}
	if !report.Agree() {
		t.Errorf("lumped-anchor cross-check disagrees:\n%s", report)
	}
}

// TestCrossCheckLiveFull is the heavyweight live validation behind
// `make livecheck`: more replications, both policies, and a larger topology
// (without the exact arm, which the larger state space rules out). Gated on
// LIVECHECK_FULL=1 so the ordinary test lane stays fast.
func TestCrossCheckLiveFull(t *testing.T) {
	if os.Getenv("LIVECHECK_FULL") == "" {
		t.Skip("set LIVECHECK_FULL=1 to run the full live validation")
	}
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		p := core.DefaultParams()
		p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = 4, 2, 1, 4
		p.Policy = policy
		report, err := CrossCheck(context.Background(), p, CrossCheckOptions{
			Reps: 2000, LiveReps: 1500, Seed: 31, Live: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		t.Logf("\n%s", report)
		if report.LiveDivergences != 0 {
			t.Errorf("%s: %d of %d live probes diverged from the model oracle",
				policy, report.LiveDivergences, report.LiveProbes)
		}
		if !report.Agree() {
			t.Errorf("%s: live arm disagrees with the model:\n%s", policy, report)
		}
	}
}
