package integrity

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// CrossCheckOptions tunes a cross-engine validation run. Zero values select
// a smoke-sized check (a few hundred replications per engine) that runs in
// seconds; raise Reps for the full variant (`make crosscheck`).
type CrossCheckOptions struct {
	// Reps is the number of replications per engine. Default 200.
	Reps int
	// T is the study horizon in hours. Default 6 (the paper's interval).
	T float64
	// Seed is the root seed; the SAN engine uses Seed, the direct
	// simulator Seed+1, so the two estimates are independent. Default 1.
	Seed uint64
	// Workers bounds SAN-engine parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o *CrossCheckOptions) fill() {
	if o.Reps <= 0 {
		o.Reps = 200
	}
	if o.T <= 0 {
		o.T = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MeasureAgreement compares one measure's estimate under the two engines.
type MeasureAgreement struct {
	Name       string
	SANMean    float64
	SANHalf    float64 // 95% confidence half-width
	DirectMean float64
	DirectHalf float64
}

// Overlaps reports whether the two 95% confidence intervals intersect —
// the agreement criterion: independent estimators of the same quantity
// whose intervals are disjoint indicate a modeling or engine discrepancy.
func (a MeasureAgreement) Overlaps() bool {
	return math.Abs(a.SANMean-a.DirectMean) <= a.SANHalf+a.DirectHalf
}

func (a MeasureAgreement) String() string {
	verdict := "agree"
	if !a.Overlaps() {
		verdict = "DISAGREE"
	}
	return fmt.Sprintf("%s: SAN %.4g ± %.2g vs direct %.4g ± %.2g (%s)",
		a.Name, a.SANMean, a.SANHalf, a.DirectMean, a.DirectHalf, verdict)
}

// CrossCheckReport is the outcome of one cross-engine validation run.
type CrossCheckReport struct {
	Policy   core.Policy
	Reps     int
	Measures []MeasureAgreement
}

// Agree reports whether every measure's confidence intervals overlap.
func (r *CrossCheckReport) Agree() bool {
	for _, m := range r.Measures {
		if !m.Overlaps() {
			return false
		}
	}
	return true
}

func (r *CrossCheckReport) String() string {
	lines := make([]string, 0, len(r.Measures)+1)
	lines = append(lines, fmt.Sprintf("cross-check %s (%d reps/engine):", r.Policy, r.Reps))
	for _, m := range r.Measures {
		lines = append(lines, "  "+m.String())
	}
	return strings.Join(lines, "\n")
}

// CrossCheck runs the same ITUA configuration through the SAN engine
// (internal/sim on the composed internal/core model) and the independently
// coded direct simulator (internal/ituadirect), and compares interval
// unavailability, unreliability, and the fraction of excluded domains. The
// two implementations share only the parameter struct — the SAN engine
// executes gate closures over a marking vector while the direct simulator
// is a hand-written Gillespie loop over its own state records — so
// agreement within confidence intervals is strong evidence against an
// engine-level bug. The SAN run also carries the full ITUAInvariants
// monitor set, so a conservation-law violation surfaces as an error here
// rather than as a silent skew.
func CrossCheck(ctx context.Context, p core.Params, o CrossCheckOptions) (*CrossCheckReport, error) {
	o.fill()
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	T := o.T
	res, err := sim.RunContext(ctx, sim.Spec{
		Model:   m.SAN,
		Until:   T,
		Reps:    o.Reps,
		Seed:    o.Seed,
		Workers: o.Workers,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
			m.FracDomainsExcluded("excl", T),
		},
		Invariants: ITUAInvariants(m),
	})
	if err != nil {
		return nil, fmt.Errorf("integrity: SAN engine: %w", err)
	}
	if res.Failed > 0 {
		return nil, fmt.Errorf("integrity: SAN engine failed %d of %d replications: %w",
			res.Failed, res.Reps, &res.Failures[0])
	}

	var unavail, unrel, excl stats.Accumulator
	root := rng.New(o.Seed + 1)
	for rep := 0; rep < o.Reps; rep++ {
		dr, err := ituadirect.RunContext(ctx, p, root.Derive(uint64(rep)), []float64{T})
		if err != nil {
			return nil, fmt.Errorf("integrity: direct simulator: %w", err)
		}
		unavail.Add(dr.UnavailTime[0] / T)
		if dr.ByzantineBy[0] {
			unrel.Add(1)
		} else {
			unrel.Add(0)
		}
		excl.Add(dr.FracDomainsExcluded[0])
	}

	report := &CrossCheckReport{Policy: p.Policy, Reps: o.Reps}
	for _, c := range []struct {
		name string
		acc  *stats.Accumulator
	}{
		{"unavail", &unavail}, {"unrel", &unrel}, {"excl", &excl},
	} {
		est := res.MustGet(c.name)
		report.Measures = append(report.Measures, MeasureAgreement{
			Name:       c.name,
			SANMean:    est.Mean,
			SANHalf:    est.HalfWidth95,
			DirectMean: c.acc.Mean(),
			DirectHalf: c.acc.HalfWidth(0.95),
		})
	}
	return report, nil
}
