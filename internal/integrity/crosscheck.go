package integrity

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ituaval/internal/core"
	"ituaval/internal/exact"
	"ituaval/internal/ituadirect"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/rsm"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// CrossCheckOptions tunes a cross-engine validation run. Zero values select
// a smoke-sized check (a few hundred replications per engine) that runs in
// seconds; raise Reps for the full variant (`make crosscheck`).
type CrossCheckOptions struct {
	// Reps is the number of replications per engine. Default 200.
	Reps int
	// T is the study horizon in hours. Default 6 (the paper's interval).
	T float64
	// Seed is the root seed; the SAN engine uses Seed, the direct
	// simulator Seed+1, so the two estimates are independent. Default 1.
	Seed uint64
	// Workers bounds SAN-engine parallelism (0 = GOMAXPROCS).
	Workers int
	// Live, when true, adds the live arm: the measures estimated on a real
	// message-passing replica group (internal/rsm) subjected to the model's
	// attack process by fault injection, with seed Seed+2. Live probes are
	// also checked event-wise against the model oracle; the divergence count
	// is reported.
	Live bool
	// LiveReps is the number of live replications (0 = Reps). Live
	// replications carry a real protocol execution per injected event and
	// cost more than a model replication; lower this for smoke runs.
	LiveReps int
	// Exact, when true, adds a third arm: the same measures computed
	// numerically (state-space generation + uniformization, internal/exact)
	// with no sampling error. Both simulators' confidence intervals are
	// then checked against the exact values, turning the pairwise
	// CI-overlap test into an absolute one. The configuration must be
	// small enough to generate; ExactMaxStates caps the attempt and the
	// run errors out when exceeded.
	Exact bool
	// ExactMaxStates bounds state-space generation of the exact arm
	// (0 = the mc.Generate default, 1<<20).
	ExactMaxStates int
}

func (o *CrossCheckOptions) fill() {
	if o.Reps <= 0 {
		o.Reps = 200
	}
	if o.T <= 0 {
		o.T = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MeasureAgreement compares one measure's estimate under the two engines,
// and — when the exact arm ran — against the numerically exact value.
type MeasureAgreement struct {
	Name       string
	SANMean    float64
	SANHalf    float64 // 95% confidence half-width
	DirectMean float64
	DirectHalf float64
	// Exact is the uniformization value of the measure; valid only when
	// HasExact is set (CrossCheckOptions.Exact ran).
	Exact    float64
	HasExact bool
	// LiveMean/LiveHalf estimate the measure on the live replicated service
	// (internal/rsm); valid only when HasLive is set.
	LiveMean float64
	LiveHalf float64
	HasLive  bool
}

// Overlaps reports whether the two 95% confidence intervals intersect —
// the agreement criterion: independent estimators of the same quantity
// whose intervals are disjoint indicate a modeling or engine discrepancy.
func (a MeasureAgreement) Overlaps() bool {
	return math.Abs(a.SANMean-a.DirectMean) <= a.SANHalf+a.DirectHalf
}

// LiveOverlaps reports whether the live arm's 95% interval intersects both
// model engines' intervals — the live-validation criterion: the empirical
// measures of the real replicated service estimate the same quantities the
// model predicts. With no live arm it is vacuously true.
func (a MeasureAgreement) LiveOverlaps() bool {
	if !a.HasLive {
		return true
	}
	return math.Abs(a.LiveMean-a.SANMean) <= a.LiveHalf+a.SANHalf &&
		math.Abs(a.LiveMean-a.DirectMean) <= a.LiveHalf+a.DirectHalf
}

// ExactCovered reports whether the exact value lies within the union of
// the sampled arms' 95% intervals (both engines, plus the live arm when it
// ran). With no exact arm it is vacuously true. Each interval individually
// misses the true value 5% of the time, so the union — miss probability
// well under 5% per measure — is the right absolute criterion for an
// automated gate.
func (a MeasureAgreement) ExactCovered() bool {
	if !a.HasExact {
		return true
	}
	lo := math.Min(a.SANMean-a.SANHalf, a.DirectMean-a.DirectHalf)
	hi := math.Max(a.SANMean+a.SANHalf, a.DirectMean+a.DirectHalf)
	if a.HasLive {
		lo = math.Min(lo, a.LiveMean-a.LiveHalf)
		hi = math.Max(hi, a.LiveMean+a.LiveHalf)
	}
	return a.Exact >= lo && a.Exact <= hi
}

func (a MeasureAgreement) String() string {
	verdict := "agree"
	if !a.Overlaps() || !a.LiveOverlaps() || !a.ExactCovered() {
		verdict = "DISAGREE"
	}
	s := fmt.Sprintf("%s: SAN %.4g ± %.2g vs direct %.4g ± %.2g",
		a.Name, a.SANMean, a.SANHalf, a.DirectMean, a.DirectHalf)
	if a.HasLive {
		s += fmt.Sprintf(" vs live %.4g ± %.2g", a.LiveMean, a.LiveHalf)
	}
	if a.HasExact {
		s += fmt.Sprintf(" vs exact %.4g", a.Exact)
	}
	return s + " (" + verdict + ")"
}

// CrossCheckReport is the outcome of one cross-engine validation run.
type CrossCheckReport struct {
	Policy   core.Policy
	Reps     int
	Measures []MeasureAgreement
	// LiveProbes/LiveDivergences report the live arm's event-wise check:
	// client probes issued against the live service, and how many of them
	// disagreed with the model oracle's improper-service predicate (zero
	// under the default worst-case adversary).
	LiveProbes      int64
	LiveDivergences int64
}

// Agree reports whether every measure's confidence intervals overlap (the
// live arm's against both engines', when it ran) and, when the exact arm
// ran, every exact value is covered (ExactCovered).
func (r *CrossCheckReport) Agree() bool {
	for _, m := range r.Measures {
		if !m.Overlaps() || !m.LiveOverlaps() || !m.ExactCovered() {
			return false
		}
	}
	return true
}

func (r *CrossCheckReport) String() string {
	lines := make([]string, 0, len(r.Measures)+2)
	lines = append(lines, fmt.Sprintf("cross-check %s (%d reps/engine):", r.Policy, r.Reps))
	for _, m := range r.Measures {
		lines = append(lines, "  "+m.String())
	}
	if r.LiveProbes > 0 {
		lines = append(lines, fmt.Sprintf("  live probes %d, oracle divergences %d", r.LiveProbes, r.LiveDivergences))
	}
	return strings.Join(lines, "\n")
}

// CrossCheck runs the same ITUA configuration through the SAN engine
// (internal/sim on the composed internal/core model) and the independently
// coded direct simulator (internal/ituadirect), and compares interval
// unavailability, unreliability, and the fraction of excluded domains. The
// two implementations share only the parameter struct — the SAN engine
// executes gate closures over a marking vector while the direct simulator
// is a hand-written Gillespie loop over its own state records — so
// agreement within confidence intervals is strong evidence against an
// engine-level bug. The SAN run also carries the full ITUAInvariants
// monitor set, so a conservation-law violation surfaces as an error here
// rather than as a silent skew. With Options.Exact set a third arm — the
// uniformization solution of the generated CTMC — anchors both sampled
// estimates to the numerically exact values (small configurations only).
// With Options.Live set a fourth arm runs the attack process against a real
// message-passing replica group (internal/rsm) and checks that the measured
// service — not a model of it — lands in the same confidence region.
func CrossCheck(ctx context.Context, p core.Params, o CrossCheckOptions) (*CrossCheckReport, error) {
	o.fill()
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	T := o.T
	res, err := sim.RunContext(ctx, sim.Spec{
		Model:   m.SAN,
		Until:   T,
		Reps:    o.Reps,
		Seed:    o.Seed,
		Workers: o.Workers,
		Vars: []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
			m.FracDomainsExcluded("excl", T),
		},
		Invariants: ITUAInvariants(m),
	})
	if err != nil {
		return nil, fmt.Errorf("integrity: SAN engine: %w", err)
	}
	if res.Failed > 0 {
		return nil, fmt.Errorf("integrity: SAN engine failed %d of %d replications: %w",
			res.Failed, res.Reps, &res.Failures[0])
	}

	var unavail, unrel, excl stats.Accumulator
	root := rng.New(o.Seed + 1)
	for rep := 0; rep < o.Reps; rep++ {
		dr, err := ituadirect.RunContext(ctx, p, root.Derive(uint64(rep)), []float64{T})
		if err != nil {
			return nil, fmt.Errorf("integrity: direct simulator: %w", err)
		}
		unavail.Add(dr.UnavailTime[0] / T)
		if dr.ByzantineBy[0] {
			unrel.Add(1)
		} else {
			unrel.Add(0)
		}
		excl.Add(dr.FracDomainsExcluded[0])
	}

	// Optional live arm: the same measures observed on a real replica group
	// under fault injection. The injector replays the model's stochastic law
	// against live Bracha-broadcast replicas, so the client's empirical
	// unavailability/unreliability estimate the same quantities — and every
	// probe is additionally checked against the model oracle event-wise.
	var liveRes *rsm.Result
	if o.Live {
		liveReps := o.LiveReps
		if liveReps <= 0 {
			liveReps = o.Reps
		}
		liveRes, err = rsm.Run(ctx, rsm.Spec{
			Params:  p,
			T:       T,
			Reps:    liveReps,
			Seed:    o.Seed + 2,
			Workers: o.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("integrity: live arm: %w", err)
		}
	}

	// Optional third arm: the numerically exact values. Saturating the
	// intrusions counter (Params.Analytic, forced by exact.NewSolver) does
	// not change any observable, so the exact chain solves the same model
	// the two simulators just sampled.
	var exactVals map[string]float64
	if o.Exact {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := exact.NewSolver(p, exact.Options{MaxStates: o.ExactMaxStates, Workers: o.Workers})
		if err != nil {
			return nil, fmt.Errorf("integrity: exact arm: %w", err)
		}
		ua, err := s.Unavailability(0, T)
		if err != nil {
			return nil, fmt.Errorf("integrity: exact unavailability: %w", err)
		}
		ur, err := s.Unreliability(0, T)
		if err != nil {
			return nil, fmt.Errorf("integrity: exact unreliability: %w", err)
		}
		ex, err := s.FracDomainsExcluded(T)
		if err != nil {
			return nil, fmt.Errorf("integrity: exact exclusion fraction: %w", err)
		}
		exactVals = map[string]float64{"unavail": ua, "unrel": ur, "excl": ex}
	}

	report := &CrossCheckReport{Policy: p.Policy, Reps: o.Reps}
	var liveAccs map[string]*stats.Accumulator
	if liveRes != nil {
		report.LiveProbes = liveRes.Probes
		report.LiveDivergences = liveRes.Divergences
		liveAccs = map[string]*stats.Accumulator{
			"unavail": &liveRes.Unavail,
			"unrel":   &liveRes.Unrel,
			"excl":    &liveRes.FracExcl,
		}
	}
	for _, c := range []struct {
		name string
		acc  *stats.Accumulator
	}{
		{"unavail", &unavail}, {"unrel", &unrel}, {"excl", &excl},
	} {
		est := res.MustGet(c.name)
		ma := MeasureAgreement{
			Name:       c.name,
			SANMean:    est.Mean,
			SANHalf:    est.HalfWidth95,
			DirectMean: c.acc.Mean(),
			DirectHalf: c.acc.HalfWidth(0.95),
		}
		if liveAccs != nil {
			la := liveAccs[c.name]
			ma.LiveMean, ma.LiveHalf, ma.HasLive = la.Mean(), la.HalfWidth(0.95), true
		}
		if exactVals != nil {
			ma.Exact, ma.HasExact = exactVals[c.name], true
		}
		report.Measures = append(report.Measures, ma)
	}
	return report, nil
}
