package study

import (
	"fmt"

	"ituaval/internal/core"
)

// StudyModelShape names one model configuration a registered study builds.
// The lint lane (TestLintRegisteredModels, `make lint-models`) runs the
// static SAN linter over every shape, so a structural defect in any swept
// configuration — an activity gated dead by a zero rate, an orphaned
// bookkeeping place, a case distribution that stopped summing to one — is
// caught before any replication money is spent on it.
type StudyModelShape struct {
	Study  string // registry id the shape belongs to
	Name   string // which corner of the study's sweep
	Params core.Params
}

// StudyModelShapes enumerates representative parameter shapes for every
// experiment in Registry. Sweeps are sampled at their structural extremes:
// the corners that change which activities and places exist (zero rates,
// one-domain and one-host-per-domain topologies, both policies, conviction
// response variants), not every interior rate value, since interior points
// share the extreme points' structure.
func StudyModelShapes() []StudyModelShape {
	var shapes []StudyModelShape
	add := func(study, name string, mut func(p *core.Params)) {
		p := core.DefaultParams()
		mut(&p)
		shapes = append(shapes, StudyModelShape{Study: study, Name: name, Params: p})
	}
	topo := func(p *core.Params, d, h, a, r int) {
		p.NumDomains, p.HostsPerDomain, p.NumApps, p.RepsPerApp = d, h, a, r
	}

	// fig3: 12 hosts split into domains, rate base anchored at 12/28.
	for _, hpd := range []int{1, 12} { // 12 domains of 1 vs 1 domain of 12
		for _, apps := range []int{2, 8} {
			hpd, apps := hpd, apps
			add("fig3", fmtShape("hpd=%d,apps=%d", hpd, apps), func(p *core.Params) {
				topo(p, 12/hpd, hpd, apps, 7)
				p.RateBaseHosts, p.RateBaseReplicas = 12, 28
			})
		}
	}

	// fig4: 10 domains, growing hosts per domain, per-host rates pinned.
	for _, hpd := range []int{1, 4} {
		hpd := hpd
		add("fig4", fmtShape("hpd=%d", hpd), func(p *core.Params) {
			topo(p, 10, hpd, 4, 7)
			p.RateBaseHosts = 10
		})
	}

	// fig5 / fig5-paired: spread-rate sweep under both policies; spread=0
	// is the structural corner where intra-domain propagation is gated out.
	for _, policy := range []core.Policy{core.HostExclusion, core.DomainExclusion} {
		for _, spread := range []float64{0, 10} {
			policy, spread := policy, spread
			add("fig5", fmtShape("%s,spread=%g", policy, spread), func(p *core.Params) {
				topo(p, 10, 3, 4, 7)
				p.CorruptionMult = 5
				p.DomainSpreadRate = spread
				p.Policy = policy
			})
		}
	}

	// analytic: the exact-vs-simulated study's small configuration at the
	// structural corners of its spread sweep (spread=0 gates intra-domain
	// propagation out). Analytic is on, as in the study, so the linted
	// shape is the one whose state space the generator explores.
	for _, spread := range []float64{0, 10} {
		spread := spread
		add("analytic", fmtShape("spread=%g", spread), func(p *core.Params) {
			topo(p, 2, 1, 1, 2)
			p.CorruptionMult = 5
			p.DomainSpreadRate = spread
			p.Analytic = true
		})
	}

	// live: the live study's SAN arm sweeps the same small configuration
	// as analytic (without intrusion-counter saturation, since nothing is
	// generated); spread=0 is again the structural corner.
	for _, spread := range []float64{0, 10} {
		spread := spread
		add("live", fmtShape("spread=%g", spread), func(p *core.Params) {
			topo(p, 2, 1, 1, 2)
			p.CorruptionMult = 5
			p.DomainSpreadRate = spread
		})
	}

	// faults: the environment-fault study's grid corners — partitions and
	// campaigns each toggle whole activity/place groups in and out, so every
	// on/off combination is a distinct structure; the repair crew is always
	// on (its places exist in all four shapes).
	for _, camp := range []float64{0, 0.5} {
		for _, part := range []float64{0, 8} {
			camp, part := camp, part
			add("faults", fmtShape("camp=%g,part=%g", camp, part), func(p *core.Params) {
				topo(p, 2, 1, 1, 2)
				p.CorruptionMult = 5
				p.PartitionRate = part
				p.PartitionHealRate = 2
				p.CampaignRate = camp
				p.CampaignSize = 2
				p.CampaignProb = 0.5
				p.RepairCrew = 1
			})
		}
	}

	// xval: the cross-validation baseline, both policies.
	for _, policy := range []core.Policy{core.DomainExclusion, core.HostExclusion} {
		policy := policy
		add("xval", policy.String(), func(p *core.Params) {
			topo(p, 4, 2, 3, 4)
			p.Policy = policy
		})
	}
	// numval builds its own reduced SAN rather than the composed ITUA
	// model; reducedValidationModel is linted directly by the lane.

	// abl-detect: detection-pipeline rate sweep (structure is rate-invariant
	// for positive rates; sample the extremes anyway).
	for _, rate := range []float64{0.1, 4} {
		rate := rate
		add("abl-detect", fmtShape("rate=%g", rate), func(p *core.Params) {
			topo(p, 12, 1, 4, 7)
			p.HostDetectRate, p.ReplicaDetectRate, p.MgrDetectRate = rate, rate, rate
		})
	}

	// abl-split: replica attack weight 0 gates out the whole replica attack
	// subtree (misbehave, conviction, recovery-by-conviction).
	for _, wr := range []float64{0, 8} {
		wr := wr
		add("abl-split", fmtShape("wr=%g", wr), func(p *core.Params) {
			topo(p, 12, 1, 4, 7)
			p.AttackSplitReplica = wr
		})
	}

	// abl-convict: conviction response variants across the hosts/domain
	// extremes, including the 1-domain corner where exclusion on conviction
	// leaves no recovery target.
	for _, excl := range []bool{false, true} {
		for _, hpd := range []int{1, 12} {
			excl, hpd := excl, hpd
			add("abl-convict", fmtShape("excl=%t,hpd=%d", excl, hpd), func(p *core.Params) {
				topo(p, 12/hpd, hpd, 4, 7)
				p.ExcludeOnReplicaConviction = excl
			})
		}
	}

	// abl-placement: placement strategy changes output-gate effects, not
	// structure; lint each strategy at the zero-spread corner.
	for _, placement := range []core.Placement{
		core.UniformPlacement, core.LeastLoadedPlacement, core.WeightedRandomPlacement,
	} {
		placement := placement
		add("abl-placement", placement.String(), func(p *core.Params) {
			topo(p, 10, 3, 4, 7)
			p.CorruptionMult = 5
			p.DomainSpreadRate = 0
			p.Placement = placement
		})
	}
	return shapes
}

func fmtShape(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
