//go:build race

package study

// raceEnabled reports that this binary was built with the race detector.
// The fault study's exact uniformization anchor (an 863,550-state chain)
// is an order of magnitude past the race lane's time budget, so the tests
// that run it skip themselves under -race; the concurrent machinery they
// would exercise (the flattened sweep pool, the rsm transport, the mc
// solver) is raced by the faster tests of those packages.
const raceEnabled = true
