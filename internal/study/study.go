// Package study is the experiment harness: it sweeps model parameters,
// runs replicated simulations for every sweep point, and assembles the
// series behind each figure of the paper — the Möbius "Study/Experiment"
// layer. The three paper studies (Sections 4.1–4.3) are pre-canned, along
// with the cross-validation and ablation experiments listed in DESIGN.md.
package study

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

// Config controls simulation effort and fault-tolerance policy for all
// studies.
type Config struct {
	// Reps is the number of replications per sweep point (default 2000).
	Reps int
	// Seed is the root seed (default 1).
	Seed uint64
	// Workers bounds parallelism (0 = all cores).
	Workers int
	// RepDeadline, when positive, is the per-replication wall-clock
	// watchdog forwarded to sim.Spec: a hung replication becomes a recorded
	// failure instead of wedging the sweep.
	RepDeadline time.Duration
	// MaxFailureFrac is forwarded to sim.Spec.MaxFailureFrac (0 = the sim
	// package default): the fraction of replications per point allowed to
	// fail before the point — and so the study — errors out.
	MaxFailureFrac float64
	// Checkpoint, when non-nil, records every completed sweep point and
	// skips points it already holds, making interrupted studies resumable
	// with bit-identical results (seeds are derived per point and per
	// replication from the root seed).
	Checkpoint *Checkpoint
	// Warnf, when non-nil, receives warnings such as per-point replication
	// failures that stayed under the tolerated fraction. Nil discards them.
	Warnf func(format string, args ...any)
}

func (c Config) warnf(format string, args ...any) {
	if c.Warnf != nil {
		c.Warnf(format, args...)
	}
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Series is one curve of a figure panel.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	HW   []float64 // 95% confidence half-widths
}

// Panel is one sub-figure: a measure plotted over the sweep variable.
type Panel struct {
	ID      string // e.g. "3a"
	Measure string // e.g. "Unavailability for first 5 hours"
	XLabel  string
	Series  []Series
}

// Figure groups the panels of one paper figure.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// WriteText renders the figure as aligned text tables.
func (f *Figure) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure %s: %s ==\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n-- %s: %s --\n", p.ID, p.Measure)
		fmt.Fprintf(&b, "%12s", p.XLabel)
		for _, s := range p.Series {
			fmt.Fprintf(&b, " %22s", s.Name)
		}
		b.WriteByte('\n')
		if len(p.Series) == 0 {
			continue
		}
		for i := range p.Series[0].X {
			fmt.Fprintf(&b, "%12g", p.Series[0].X[i])
			for _, s := range p.Series {
				fmt.Fprintf(&b, "    %10.5f ±%7.5f", s.Y[i], s.HW[i])
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV: figure,panel,series,x,y,hw.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("figure,panel,series,x,y,hw\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i := range s.X {
				fmt.Fprintf(&b, "%s,%s,%q,%g,%g,%g\n", f.ID, p.ID, s.Name, s.X[i], s.Y[i], s.HW[i])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// point runs one sweep point and returns the named estimates. When
// cfg.Checkpoint is set, a point whose exact spec (params, horizon, reps,
// seed) was already completed is returned from the checkpoint without
// simulating, and a freshly computed point is persisted before returning —
// the unit of resume granularity for interrupted sweeps.
func point(ctx context.Context, cfg Config, p core.Params, until float64, seedOffset uint64,
	vars func(m *core.Model) []reward.Var) (map[string]sim.Estimate, error) {
	var key string
	if cfg.Checkpoint != nil {
		key = pointKey(cfg, p, until, seedOffset)
		if est, ok := cfg.Checkpoint.lookup(key); ok {
			return est, nil
		}
	}
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(ctx, sim.Spec{
		Model:          m.SAN,
		Until:          until,
		Reps:           cfg.Reps,
		Seed:           cfg.Seed + seedOffset,
		Workers:        cfg.Workers,
		Vars:           vars(m),
		RepDeadline:    cfg.RepDeadline,
		MaxFailureFrac: cfg.MaxFailureFrac,
	})
	if err != nil {
		return nil, err
	}
	if res.Failed > 0 {
		cfg.warnf("study: %d of %d replications failed at this sweep point; estimates use the %d survivors (first failure: %v)",
			res.Failed, res.Reps, res.Completed, &res.Failures[0])
	}
	out := make(map[string]sim.Estimate, len(res.Estimates))
	for _, e := range res.Estimates {
		out[e.Name] = e
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.store(key, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendPoint pushes an estimate onto a series.
func appendPoint(s *Series, x float64, e sim.Estimate) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, e.Mean)
	s.HW = append(s.HW, e.HalfWidth95)
}
