// Package study is the experiment harness: it sweeps model parameters,
// runs replicated simulations for every sweep point, and assembles the
// series behind each figure of the paper — the Möbius "Study/Experiment"
// layer. The three paper studies (Sections 4.1–4.3) are pre-canned, along
// with the cross-validation and ablation experiments listed in DESIGN.md.
package study

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ituaval/internal/core"
	"ituaval/internal/precision"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

// Config controls simulation effort and fault-tolerance policy for all
// studies.
type Config struct {
	// Reps is the number of replications per sweep point (default 2000).
	// With a precision target set (TargetRelHW or TargetAbsHW) it is the
	// *initial* batch instead, and the sweep point grows geometrically from
	// there until the target is met or MaxReps is hit.
	Reps int
	// Seed is the root seed (default 1).
	Seed uint64
	// Workers bounds parallelism (0 = all cores).
	Workers int
	// RepDeadline, when positive, is the per-replication wall-clock
	// watchdog forwarded to sim.Spec: a hung replication becomes a recorded
	// failure instead of wedging the sweep.
	RepDeadline time.Duration
	// MaxFailureFrac is forwarded to sim.Spec.MaxFailureFrac (0 = the sim
	// package default): the fraction of replications per point allowed to
	// fail before the point — and so the study — errors out.
	MaxFailureFrac float64
	// TargetRelHW, when positive, switches every sweep point to sequential
	// precision mode: replications grow geometrically from Reps until every
	// measure's 95% half-width falls to TargetRelHW·|mean| (or AbsHW,
	// whichever is met first), bounded by MaxReps. See internal/precision.
	TargetRelHW float64
	// TargetAbsHW, when positive, is the absolute 95% half-width target of
	// precision mode (combinable with TargetRelHW; either met suffices).
	TargetAbsHW float64
	// MaxReps bounds the replication count of a sweep point in precision
	// mode (default 16·Reps). Ignored without a target.
	MaxReps int
	// Checkpoint, when non-nil, records every completed sweep point and
	// skips points it already holds, making interrupted studies resumable
	// with bit-identical results (seeds are derived per point and per
	// replication from the root seed).
	Checkpoint *Checkpoint
	// Warnf, when non-nil, receives warnings such as per-point replication
	// failures that stayed under the tolerated fraction. Nil discards them.
	Warnf func(format string, args ...any)
}

func (c Config) warnf(format string, args ...any) {
	if c.Warnf != nil {
		c.Warnf(format, args...)
	}
}

// precisionMode reports whether sweep points run under a sequential
// half-width target.
func (c Config) precisionMode() bool { return c.TargetRelHW > 0 || c.TargetAbsHW > 0 }

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.precisionMode() && c.MaxReps <= 0 {
		c.MaxReps = 16 * c.Reps
	}
	return c
}

// targets builds one precision target per reward variable from the
// configured half-widths.
func (c Config) targets(vars []reward.Var) []precision.Target {
	ts := make([]precision.Target, len(vars))
	for i, v := range vars {
		ts[i] = precision.Target{Var: v.Name(), RelHW: c.TargetRelHW, AbsHW: c.TargetAbsHW}
	}
	return ts
}

// PointResult is everything a sweep point contributes to a figure: the
// named estimates plus the replication accounting behind them. It is the
// unit of checkpointing, so resuming an interrupted sweep restores counts
// as well as values.
type PointResult struct {
	// Est maps reward-variable names to their estimates.
	Est map[string]sim.Estimate `json:"est"`
	// Reps is the number of replications requested (after any sequential
	// growth); Completed+Failed+Skipped == Reps. For a paired point the
	// counts sum both configurations.
	Reps      int `json:"reps"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Skipped   int `json:"skipped"`
}

// Series is one curve of a figure panel. The count slices are parallel to
// X: N is the per-point observation count behind Y (replications that
// emitted a value), and Reps/Completed/Failed/Skipped account for every
// replication the point requested.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	HW   []float64 // 95% confidence half-widths
	N    []int64   // observations behind each Y
	// Replication accounting per point (see PointResult).
	Reps      []int
	Completed []int
	Failed    []int
	Skipped   []int
}

// Panel is one sub-figure: a measure plotted over the sweep variable.
type Panel struct {
	ID      string // e.g. "3a"
	Measure string // e.g. "Unavailability for first 5 hours"
	XLabel  string
	Series  []Series
}

// Figure groups the panels of one paper figure. Notes carries free-text
// observations computed from the sweep (for example crossover locations in
// the paired exclusion-policy study).
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
	Notes  []string
}

func intAt(v []int, i int) int {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func int64At(v []int64, i int) int64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// writeTable renders one aligned table of the panel, with cell contents
// supplied per series and point.
func writeTable(b *strings.Builder, p Panel, width int, cell func(s Series, i int) string) {
	fmt.Fprintf(b, "%12s", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(b, " %*s", width, s.Name)
	}
	b.WriteByte('\n')
	if len(p.Series) == 0 {
		return
	}
	for i := range p.Series[0].X {
		fmt.Fprintf(b, "%12g", p.Series[0].X[i])
		for _, s := range p.Series {
			fmt.Fprintf(b, " %*s", width, cell(s, i))
		}
		b.WriteByte('\n')
	}
}

// WriteText renders the figure as aligned text tables: per panel the
// estimates with half-widths and observation counts, followed by the
// replication accounting (completed/failed/skipped of requested) for every
// sweep point.
func (f *Figure) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure %s: %s ==\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n-- %s: %s --\n", p.ID, p.Measure)
		writeTable(&b, p, 30, func(s Series, i int) string {
			return fmt.Sprintf("%10.5f ±%7.5f n=%-6d", s.Y[i], s.HW[i], int64At(s.N, i))
		})
		b.WriteString("   replications per point (completed/failed/skipped of requested):\n")
		writeTable(&b, p, 30, func(s Series, i int) string {
			return fmt.Sprintf("%d/%d/%d of %d",
				intAt(s.Completed, i), intAt(s.Failed, i), intAt(s.Skipped, i), intAt(s.Reps, i))
		})
	}
	if len(f.Notes) > 0 {
		b.WriteString("\nnotes:\n")
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV:
// figure,panel,series,x,y,hw,n,reps,completed,failed,skipped.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("figure,panel,series,x,y,hw,n,reps,completed,failed,skipped\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i := range s.X {
				fmt.Fprintf(&b, "%s,%s,%q,%g,%g,%g,%d,%d,%d,%d,%d\n",
					f.ID, p.ID, s.Name, s.X[i], s.Y[i], s.HW[i], int64At(s.N, i),
					intAt(s.Reps, i), intAt(s.Completed, i), intAt(s.Failed, i), intAt(s.Skipped, i))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// newPointResult wraps simulation results as a sweep point.
func newPointResult(res *sim.Results) *PointResult {
	est := make(map[string]sim.Estimate, len(res.Estimates))
	for _, e := range res.Estimates {
		est[e.Name] = e
	}
	return &PointResult{Est: est, Reps: res.Reps,
		Completed: res.Completed, Failed: res.Failed, Skipped: res.Skipped}
}

// point runs one sweep point and returns its estimates and replication
// accounting. When cfg.Checkpoint is set, a point whose exact spec (params,
// horizon, reps, precision targets, seed) was already completed is returned
// from the checkpoint without simulating, and a freshly computed point is
// persisted before returning — the unit of resume granularity for
// interrupted sweeps. With a precision target configured the point runs
// sequentially (internal/precision) instead of at a fixed replication
// count.
func point(ctx context.Context, cfg Config, p core.Params, until float64, seedOffset uint64,
	vars func(m *core.Model) []reward.Var) (*PointResult, error) {
	var key string
	if cfg.Checkpoint != nil {
		key = pointKey(cfg, p, until, seedOffset)
		if pr, ok := cfg.Checkpoint.lookup(key); ok {
			return pr, nil
		}
	}
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	spec := sim.Spec{
		Model:          m.SAN,
		Until:          until,
		Reps:           cfg.Reps,
		Seed:           cfg.Seed + seedOffset,
		Workers:        cfg.Workers,
		Vars:           vars(m),
		RepDeadline:    cfg.RepDeadline,
		MaxFailureFrac: cfg.MaxFailureFrac,
	}
	var res *sim.Results
	if cfg.precisionMode() {
		pres, err := precision.Run(ctx, precision.Spec{
			Sim:         spec,
			Targets:     cfg.targets(spec.Vars),
			InitialReps: cfg.Reps,
			MaxReps:     cfg.MaxReps,
		})
		if err != nil {
			return nil, err
		}
		if !pres.Met {
			cfg.warnf("study: precision target (rel %g, abs %g) not reached at this sweep point after %d replications",
				cfg.TargetRelHW, cfg.TargetAbsHW, pres.Results.Reps)
		}
		res = pres.Results
	} else {
		if res, err = sim.RunContext(ctx, spec); err != nil {
			return nil, err
		}
	}
	if res.Failed > 0 {
		cfg.warnf("study: %d of %d replications failed at this sweep point; estimates use the %d survivors (first failure: %v)",
			res.Failed, res.Reps, res.Completed, &res.Failures[0])
	}
	pr := newPointResult(res)
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.store(key, pr); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// appendCell pushes one fully specified point onto a series.
func appendCell(s *Series, x, y, hw float64, n int64, reps, completed, failed, skipped int) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.HW = append(s.HW, hw)
	s.N = append(s.N, n)
	s.Reps = append(s.Reps, reps)
	s.Completed = append(s.Completed, completed)
	s.Failed = append(s.Failed, failed)
	s.Skipped = append(s.Skipped, skipped)
}

// appendPoint pushes the named estimate of a sweep point onto a series,
// carrying the point's replication accounting along.
func appendPoint(s *Series, x float64, name string, pr *PointResult) {
	e := pr.Est[name]
	appendCell(s, x, e.Mean, e.HalfWidth95, e.N, pr.Reps, pr.Completed, pr.Failed, pr.Skipped)
}
