// Package study is the experiment harness: it sweeps model parameters,
// runs replicated simulations for every sweep point, and assembles the
// series behind each figure of the paper — the Möbius "Study/Experiment"
// layer. The three paper studies (Sections 4.1–4.3) are pre-canned, along
// with the cross-validation and ablation experiments listed in DESIGN.md.
package study

import (
	"fmt"
	"io"
	"strings"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

// Config controls simulation effort for all studies.
type Config struct {
	// Reps is the number of replications per sweep point (default 2000).
	Reps int
	// Seed is the root seed (default 1).
	Seed uint64
	// Workers bounds parallelism (0 = all cores).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Reps <= 0 {
		c.Reps = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Series is one curve of a figure panel.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	HW   []float64 // 95% confidence half-widths
}

// Panel is one sub-figure: a measure plotted over the sweep variable.
type Panel struct {
	ID      string // e.g. "3a"
	Measure string // e.g. "Unavailability for first 5 hours"
	XLabel  string
	Series  []Series
}

// Figure groups the panels of one paper figure.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// WriteText renders the figure as aligned text tables.
func (f *Figure) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure %s: %s ==\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "\n-- %s: %s --\n", p.ID, p.Measure)
		fmt.Fprintf(&b, "%12s", p.XLabel)
		for _, s := range p.Series {
			fmt.Fprintf(&b, " %22s", s.Name)
		}
		b.WriteByte('\n')
		if len(p.Series) == 0 {
			continue
		}
		for i := range p.Series[0].X {
			fmt.Fprintf(&b, "%12g", p.Series[0].X[i])
			for _, s := range p.Series {
				fmt.Fprintf(&b, "    %10.5f ±%7.5f", s.Y[i], s.HW[i])
			}
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the figure as CSV: figure,panel,series,x,y,hw.
func (f *Figure) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("figure,panel,series,x,y,hw\n")
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i := range s.X {
				fmt.Fprintf(&b, "%s,%s,%q,%g,%g,%g\n", f.ID, p.ID, s.Name, s.X[i], s.Y[i], s.HW[i])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// point runs one sweep point and returns the named estimates.
func point(cfg Config, p core.Params, until float64, seedOffset uint64,
	vars func(m *core.Model) []reward.Var) (map[string]sim.Estimate, error) {
	m, err := core.Build(p)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Spec{
		Model:   m.SAN,
		Until:   until,
		Reps:    cfg.Reps,
		Seed:    cfg.Seed + seedOffset,
		Workers: cfg.Workers,
		Vars:    vars(m),
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]sim.Estimate, len(res.Estimates))
	for _, e := range res.Estimates {
		out[e.Name] = e
	}
	return out, nil
}

// appendPoint pushes an estimate onto a series.
func appendPoint(s *Series, x float64, e sim.Estimate) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, e.Mean)
	s.HW = append(s.HW, e.HalfWidth95)
}
