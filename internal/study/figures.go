package study

import (
	"context"
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/reward"
)

// Fig3HostsPerDomain are the sweep points of study 1: 12 hosts distributed
// into 12, 6, 4, 3, 2, or 1 domains.
var Fig3HostsPerDomain = []int{1, 2, 3, 4, 6, 12}

// Fig3Apps are the application counts of study 1.
var Fig3Apps = []int{2, 4, 6, 8}

// Fig3 reproduces Figure 3 (Section 4.1): different distributions of 12
// hosts into domains, 7 replicas per application, first 5 hours.
func Fig3(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	fig := &Figure{ID: "3", Title: "Variations in Measures for Different Distributions of 12 Hosts (first 5 h)"}
	panels := []Panel{
		{ID: "3a", Measure: "Unavailability for first 5 hours", XLabel: "hosts/domain"},
		{ID: "3b", Measure: "Unreliability for first 5 hours", XLabel: "hosts/domain"},
		{ID: "3c", Measure: "Fraction of corrupt hosts in an excluded domain", XLabel: "hosts/domain"},
		{ID: "3d", Measure: "Fraction of domains excluded at 5 h", XLabel: "hosts/domain"},
	}
	for _, apps := range Fig3Apps {
		series := make([]Series, len(panels))
		for i := range series {
			series[i].Name = fmt.Sprintf("%d applications", apps)
		}
		for pi, hpd := range Fig3HostsPerDomain {
			p := core.DefaultParams()
			p.NumDomains = 12 / hpd
			p.HostsPerDomain = hpd
			p.NumApps = apps
			p.RepsPerApp = 7
			// Per-entity rates are anchored at the 4-application baseline
			// (12 hosts, 28 replicas), so the per-replica intrusion
			// probability does not depend on the number of applications —
			// the convention under which the paper observes that
			// "unavailability ... does not change much with an increase in
			// the number of applications".
			p.RateBaseHosts = 12
			p.RateBaseReplicas = 28
			est, err := point(ctx, cfg, p, T, uint64(1000*apps+pi),
				func(m *core.Model) []reward.Var {
					return []reward.Var{
						m.Unavailability("unavail", 0, 0, T),
						m.Unreliability("unrel", 0, T),
						m.FracCorruptHostsAtExclusion("corrfrac", T),
						m.FracDomainsExcluded("exclfrac", T),
					}
				})
			if err != nil {
				return nil, fmt.Errorf("fig3 apps=%d hpd=%d: %w", apps, hpd, err)
			}
			x := float64(hpd)
			appendPoint(&series[0], x, est["unavail"])
			appendPoint(&series[1], x, est["unrel"])
			appendPoint(&series[2], x, est["corrfrac"])
			appendPoint(&series[3], x, est["exclfrac"])
		}
		for i := range panels {
			panels[i].Series = append(panels[i].Series, series[i])
		}
	}
	fig.Panels = panels
	return fig, nil
}

// Fig4HostsPerDomain are the sweep points of study 2: 10 domains with 1-4
// hosts each.
var Fig4HostsPerDomain = []int{1, 2, 3, 4}

// Fig4 reproduces Figure 4 (Section 4.2): 10 domains, growing hosts per
// domain, 4 applications with 7 replicas each. The per-host intrusion
// probability is held constant across the sweep (RateBaseHosts pins the
// rate denominators to the 10-host baseline), as the paper states.
func Fig4(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	const steadyT = 120.0
	fig := &Figure{ID: "4", Title: "Variations in Measures for Different Numbers of Hosts in 10 Domains"}
	panels := []Panel{
		{ID: "4a", Measure: "Unavailability", XLabel: "hosts/domain"},
		{ID: "4b", Measure: "Unreliability", XLabel: "hosts/domain"},
		{ID: "4c", Measure: "Fraction of corrupt hosts in an excluded domain (steady state)", XLabel: "hosts/domain"},
		{ID: "4d", Measure: "Fraction of domains excluded", XLabel: "hosts/domain"},
	}
	s5 := Series{Name: "for interval [0,5]"}
	s10 := Series{Name: "for interval [0,10]"}
	r5 := Series{Name: "for interval [0,5]"}
	r10 := Series{Name: "for interval [0,10]"}
	ss := Series{Name: "steady state"}
	e5 := Series{Name: "at time 5"}
	e10 := Series{Name: "at time 10"}
	for pi, hpd := range Fig4HostsPerDomain {
		p := core.DefaultParams()
		p.NumDomains = 10
		p.HostsPerDomain = hpd
		p.NumApps = 4
		p.RepsPerApp = 7
		p.RateBaseHosts = 10 // constant per-host rates across the sweep
		est, err := point(ctx, cfg, p, T, uint64(2000+pi), func(m *core.Model) []reward.Var {
			return []reward.Var{
				m.Unavailability("u5", 0, 0, 5),
				m.Unavailability("u10", 0, 0, 10),
				m.Unreliability("r5", 0, 5),
				m.Unreliability("r10", 0, 10),
				m.FracDomainsExcluded("e5", 5),
				m.FracDomainsExcluded("e10", 10),
			}
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 hpd=%d: %w", hpd, err)
		}
		// Steady state: the model has no repair, so the long-horizon
		// average over all exclusion events is the absorbed value.
		longCfg := cfg
		if longCfg.Reps > 500 {
			longCfg.Reps = 500
		}
		estSS, err := point(ctx, longCfg, p, steadyT, uint64(2100+pi), func(m *core.Model) []reward.Var {
			return []reward.Var{m.FracCorruptHostsAtExclusion("cf", steadyT)}
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 steady hpd=%d: %w", hpd, err)
		}
		x := float64(hpd)
		appendPoint(&s5, x, est["u5"])
		appendPoint(&s10, x, est["u10"])
		appendPoint(&r5, x, est["r5"])
		appendPoint(&r10, x, est["r10"])
		appendPoint(&ss, x, estSS["cf"])
		appendPoint(&e5, x, est["e5"])
		appendPoint(&e10, x, est["e10"])
	}
	panels[0].Series = []Series{s5, s10}
	panels[1].Series = []Series{r5, r10}
	panels[2].Series = []Series{ss}
	panels[3].Series = []Series{e5, e10}
	fig.Panels = panels
	return fig, nil
}

// Fig5SpreadRates are the sweep points of study 3.
var Fig5SpreadRates = []float64{0, 2, 4, 6, 8, 10}

// Fig5 reproduces Figure 5 (Section 4.3): domain-exclusion versus
// host-exclusion for varying intra-domain attack-spread rates; 10 domains
// of 3 hosts, 4 applications with 7 replicas, corruption multiplier 5.
func Fig5(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	fig := &Figure{ID: "5", Title: "Unavailability and Unreliability for Different Exclusion Algorithms"}
	panels := []Panel{
		{ID: "5a", Measure: "Unavailability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5b", Measure: "Unavailability for the first 10 hours", XLabel: "spread rate"},
		{ID: "5c", Measure: "Unreliability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5d", Measure: "Unreliability for the first 10 hours", XLabel: "spread rate"},
	}
	for si, policy := range []core.Policy{core.HostExclusion, core.DomainExclusion} {
		name := map[core.Policy]string{
			core.HostExclusion:   "Host exclusion",
			core.DomainExclusion: "Domain exclusion",
		}[policy]
		series := [4]Series{{Name: name}, {Name: name}, {Name: name}, {Name: name}}
		for pi, spread := range Fig5SpreadRates {
			p := core.DefaultParams()
			p.NumDomains = 10
			p.HostsPerDomain = 3
			p.NumApps = 4
			p.RepsPerApp = 7
			p.CorruptionMult = 5
			p.DomainSpreadRate = spread
			p.Policy = policy
			est, err := point(ctx, cfg, p, T, uint64(3000+100*si+pi), func(m *core.Model) []reward.Var {
				return []reward.Var{
					m.Unavailability("u5", 0, 0, 5),
					m.Unavailability("u10", 0, 0, 10),
					m.Unreliability("r5", 0, 5),
					m.Unreliability("r10", 0, 10),
				}
			})
			if err != nil {
				return nil, fmt.Errorf("fig5 %v spread=%v: %w", policy, spread, err)
			}
			appendPoint(&series[0], spread, est["u5"])
			appendPoint(&series[1], spread, est["u10"])
			appendPoint(&series[2], spread, est["r5"])
			appendPoint(&series[3], spread, est["r10"])
		}
		for i := range panels {
			panels[i].Series = append(panels[i].Series, series[i])
		}
	}
	fig.Panels = panels
	return fig, nil
}
