package study

import (
	"context"
	"fmt"
	"math"

	"ituaval/internal/core"
	"ituaval/internal/precision"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

// Fig3HostsPerDomain are the sweep points of study 1: 12 hosts distributed
// into 12, 6, 4, 3, 2, or 1 domains.
var Fig3HostsPerDomain = []int{1, 2, 3, 4, 6, 12}

// Fig3Apps are the application counts of study 1.
var Fig3Apps = []int{2, 4, 6, 8}

// Fig3 reproduces Figure 3 (Section 4.1): different distributions of 12
// hosts into domains, 7 replicas per application, first 5 hours.
func Fig3(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	fig := &Figure{ID: "3", Title: "Variations in Measures for Different Distributions of 12 Hosts (first 5 h)"}
	panels := []Panel{
		{ID: "3a", Measure: "Unavailability for first 5 hours", XLabel: "hosts/domain"},
		{ID: "3b", Measure: "Unreliability for first 5 hours", XLabel: "hosts/domain"},
		{ID: "3c", Measure: "Fraction of corrupt hosts in an excluded domain", XLabel: "hosts/domain"},
		{ID: "3d", Measure: "Fraction of domains excluded at 5 h", XLabel: "hosts/domain"},
	}
	vars := func(m *core.Model) []reward.Var {
		return []reward.Var{
			m.Unavailability("unavail", 0, 0, T),
			m.Unreliability("unrel", 0, T),
			m.FracCorruptHostsAtExclusion("corrfrac", T),
			m.FracDomainsExcluded("exclfrac", T),
		}
	}
	sw := newSweep(cfg)
	prs := make([][]*PointResult, len(Fig3Apps))
	for ai, apps := range Fig3Apps {
		prs[ai] = make([]*PointResult, len(Fig3HostsPerDomain))
		for pi, hpd := range Fig3HostsPerDomain {
			p := core.DefaultParams()
			p.NumDomains = 12 / hpd
			p.HostsPerDomain = hpd
			p.NumApps = apps
			p.RepsPerApp = 7
			// Per-entity rates are anchored at the 4-application baseline
			// (12 hosts, 28 replicas), so the per-replica intrusion
			// probability does not depend on the number of applications —
			// the convention under which the paper observes that
			// "unavailability ... does not change much with an increase in
			// the number of applications".
			p.RateBaseHosts = 12
			p.RateBaseReplicas = 28
			sw.add(&prs[ai][pi], fmt.Sprintf("fig3 apps=%d hpd=%d", apps, hpd),
				cfg, p, T, uint64(1000*apps+pi), vars)
		}
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for ai, apps := range Fig3Apps {
		series := make([]Series, len(panels))
		for i := range series {
			series[i].Name = fmt.Sprintf("%d applications", apps)
		}
		for pi, hpd := range Fig3HostsPerDomain {
			pr := prs[ai][pi]
			x := float64(hpd)
			appendPoint(&series[0], x, "unavail", pr)
			appendPoint(&series[1], x, "unrel", pr)
			appendPoint(&series[2], x, "corrfrac", pr)
			appendPoint(&series[3], x, "exclfrac", pr)
		}
		for i := range panels {
			panels[i].Series = append(panels[i].Series, series[i])
		}
	}
	fig.Panels = panels
	return fig, nil
}

// Fig4HostsPerDomain are the sweep points of study 2: 10 domains with 1-4
// hosts each.
var Fig4HostsPerDomain = []int{1, 2, 3, 4}

// Fig4 reproduces Figure 4 (Section 4.2): 10 domains, growing hosts per
// domain, 4 applications with 7 replicas each. The per-host intrusion
// probability is held constant across the sweep (RateBaseHosts pins the
// rate denominators to the 10-host baseline), as the paper states.
func Fig4(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	const steadyT = 120.0
	fig := &Figure{ID: "4", Title: "Variations in Measures for Different Numbers of Hosts in 10 Domains"}
	panels := []Panel{
		{ID: "4a", Measure: "Unavailability", XLabel: "hosts/domain"},
		{ID: "4b", Measure: "Unreliability", XLabel: "hosts/domain"},
		{ID: "4c", Measure: "Fraction of corrupt hosts in an excluded domain (steady state)", XLabel: "hosts/domain"},
		{ID: "4d", Measure: "Fraction of domains excluded", XLabel: "hosts/domain"},
	}
	s5 := Series{Name: "for interval [0,5]"}
	s10 := Series{Name: "for interval [0,10]"}
	r5 := Series{Name: "for interval [0,5]"}
	r10 := Series{Name: "for interval [0,10]"}
	ss := Series{Name: "steady state"}
	e5 := Series{Name: "at time 5"}
	e10 := Series{Name: "at time 10"}
	sw := newSweep(cfg)
	prs := make([]*PointResult, len(Fig4HostsPerDomain))
	prSSs := make([]*PointResult, len(Fig4HostsPerDomain))
	// Steady state: the model has no repair, so the long-horizon average
	// over all exclusion events is the absorbed value.
	longCfg := cfg
	if longCfg.Reps > 500 {
		longCfg.Reps = 500
	}
	for pi, hpd := range Fig4HostsPerDomain {
		p := core.DefaultParams()
		p.NumDomains = 10
		p.HostsPerDomain = hpd
		p.NumApps = 4
		p.RepsPerApp = 7
		p.RateBaseHosts = 10 // constant per-host rates across the sweep
		sw.add(&prs[pi], fmt.Sprintf("fig4 hpd=%d", hpd), cfg, p, T, uint64(2000+pi),
			func(m *core.Model) []reward.Var {
				return []reward.Var{
					m.Unavailability("u5", 0, 0, 5),
					m.Unavailability("u10", 0, 0, 10),
					m.Unreliability("r5", 0, 5),
					m.Unreliability("r10", 0, 10),
					m.FracDomainsExcluded("e5", 5),
					m.FracDomainsExcluded("e10", 10),
				}
			})
		sw.add(&prSSs[pi], fmt.Sprintf("fig4 steady hpd=%d", hpd), longCfg, p, steadyT, uint64(2100+pi),
			func(m *core.Model) []reward.Var {
				return []reward.Var{m.FracCorruptHostsAtExclusion("cf", steadyT)}
			})
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for pi, hpd := range Fig4HostsPerDomain {
		x := float64(hpd)
		appendPoint(&s5, x, "u5", prs[pi])
		appendPoint(&s10, x, "u10", prs[pi])
		appendPoint(&r5, x, "r5", prs[pi])
		appendPoint(&r10, x, "r10", prs[pi])
		appendPoint(&ss, x, "cf", prSSs[pi])
		appendPoint(&e5, x, "e5", prs[pi])
		appendPoint(&e10, x, "e10", prs[pi])
	}
	panels[0].Series = []Series{s5, s10}
	panels[1].Series = []Series{r5, r10}
	panels[2].Series = []Series{ss}
	panels[3].Series = []Series{e5, e10}
	fig.Panels = panels
	return fig, nil
}

// Fig5SpreadRates are the sweep points of study 3.
var Fig5SpreadRates = []float64{0, 2, 4, 6, 8, 10}

// Fig5 reproduces Figure 5 (Section 4.3): domain-exclusion versus
// host-exclusion for varying intra-domain attack-spread rates; 10 domains
// of 3 hosts, 4 applications with 7 replicas, corruption multiplier 5.
func Fig5(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	fig := &Figure{ID: "5", Title: "Unavailability and Unreliability for Different Exclusion Algorithms"}
	panels := []Panel{
		{ID: "5a", Measure: "Unavailability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5b", Measure: "Unavailability for the first 10 hours", XLabel: "spread rate"},
		{ID: "5c", Measure: "Unreliability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5d", Measure: "Unreliability for the first 10 hours", XLabel: "spread rate"},
	}
	policies := []core.Policy{core.HostExclusion, core.DomainExclusion}
	sw := newSweep(cfg)
	prs := make([][]*PointResult, len(policies))
	for si, policy := range policies {
		prs[si] = make([]*PointResult, len(Fig5SpreadRates))
		for pi, spread := range Fig5SpreadRates {
			sw.add(&prs[si][pi], fmt.Sprintf("fig5 %v spread=%v", policy, spread),
				cfg, fig5Params(spread, policy), T, uint64(3000+100*si+pi), fig5Vars)
		}
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for si, policy := range policies {
		name := map[core.Policy]string{
			core.HostExclusion:   "Host exclusion",
			core.DomainExclusion: "Domain exclusion",
		}[policy]
		series := [4]Series{{Name: name}, {Name: name}, {Name: name}, {Name: name}}
		for pi, spread := range Fig5SpreadRates {
			pr := prs[si][pi]
			appendPoint(&series[0], spread, "u5", pr)
			appendPoint(&series[1], spread, "u10", pr)
			appendPoint(&series[2], spread, "r5", pr)
			appendPoint(&series[3], spread, "r10", pr)
		}
		for i := range panels {
			panels[i].Series = append(panels[i].Series, series[i])
		}
	}
	fig.Panels = panels
	return fig, nil
}

// fig5Params is the study-3 configuration: 10 domains of 3 hosts, 4
// applications with 7 replicas, corruption multiplier 5, swept over the
// intra-domain spread rate under either exclusion policy.
func fig5Params(spread float64, policy core.Policy) core.Params {
	p := core.DefaultParams()
	p.NumDomains = 10
	p.HostsPerDomain = 3
	p.NumApps = 4
	p.RepsPerApp = 7
	p.CorruptionMult = 5
	p.DomainSpreadRate = spread
	p.Policy = policy
	return p
}

// fig5Vars are the four measures of study 3.
func fig5Vars(m *core.Model) []reward.Var {
	return []reward.Var{
		m.Unavailability("u5", 0, 0, 5),
		m.Unavailability("u10", 0, 0, 10),
		m.Unreliability("r5", 0, 5),
		m.Unreliability("r10", 0, 10),
	}
}

// fig5MeasureNames are the var names of fig5Vars, in order.
var fig5MeasureNames = []string{"u5", "u10", "r5", "r10"}

// finiteOr0 maps NaN and ±Inf to 0 so derived statistics (correlation and
// VRF can be undefined at zero variance) stay JSON-encodable in
// checkpoints; 0 reads as "undefined" downstream.
func finiteOr0(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// pairedPoint runs one CRN-paired sweep point comparing two configurations
// (internal/precision.Compare) and flattens the comparison into a
// PointResult so it checkpoints exactly like an ordinary point. For every
// shared measure <v> the estimate map holds <v>.a and <v>.b (the marginal
// estimates), <v>.delta (mean = paired delta A−B, half-width = paired-t
// 95% half-width, N = complete pairs), and <v>.corr / <v>.vrf (the
// CRN-induced correlation and variance-reduction factor, as means; 0 when
// undefined). Replication accounting sums both configurations. With a
// precision target configured the comparison is sequential on the deltas.
func pairedPoint(ctx context.Context, cfg Config, pa, pb core.Params, until float64, seedOffset uint64,
	vars func(m *core.Model) []reward.Var) (*PointResult, error) {
	var key string
	if cfg.Checkpoint != nil {
		key = pairedPointKey(cfg, pa, pb, until, seedOffset)
		if pr, ok := cfg.Checkpoint.lookup(key); ok {
			return pr, nil
		}
	}
	mkSpec := func(p core.Params) (sim.Spec, error) {
		m, err := core.Build(p)
		if err != nil {
			return sim.Spec{}, err
		}
		return sim.Spec{
			Model:          m.SAN,
			Until:          until,
			Reps:           cfg.Reps,
			Seed:           cfg.Seed + seedOffset,
			Workers:        cfg.Workers,
			Vars:           vars(m),
			RepDeadline:    cfg.RepDeadline,
			MaxFailureFrac: cfg.MaxFailureFrac,
		}, nil
	}
	specA, err := mkSpec(pa)
	if err != nil {
		return nil, err
	}
	specB, err := mkSpec(pb)
	if err != nil {
		return nil, err
	}
	opts := precision.Opts{}
	if cfg.precisionMode() {
		opts.Targets = cfg.targets(specA.Vars)
		opts.InitialReps = cfg.Reps
		opts.MaxReps = cfg.MaxReps
	}
	cmp, err := precision.Compare(ctx, specA, specB, opts)
	if err != nil {
		return nil, err
	}
	if !cmp.Met {
		cfg.warnf("study: paired precision target (rel %g, abs %g) not reached at this sweep point after %d replications per arm",
			cfg.TargetRelHW, cfg.TargetAbsHW, cmp.Reps)
	}
	if failed := cmp.A.Failed + cmp.B.Failed; failed > 0 {
		cfg.warnf("study: %d replications failed across the two arms of this paired sweep point; %d complete pairs remain",
			failed, cmp.Measures[0].N)
	}
	est := make(map[string]sim.Estimate, 5*len(cmp.Measures))
	for _, m := range cmp.Measures {
		est[m.Name+".a"] = m.A
		est[m.Name+".b"] = m.B
		est[m.Name+".delta"] = sim.Estimate{Name: m.Name + ".delta",
			Mean: m.Delta, HalfWidth95: m.HalfWidth, N: int64(m.N), Min: m.Lo, Max: m.Hi}
		est[m.Name+".corr"] = sim.Estimate{Name: m.Name + ".corr", Mean: finiteOr0(m.Corr), N: int64(m.N)}
		est[m.Name+".vrf"] = sim.Estimate{Name: m.Name + ".vrf", Mean: finiteOr0(m.VRF), N: int64(m.N)}
	}
	pr := &PointResult{Est: est,
		Reps:      cmp.A.Reps + cmp.B.Reps,
		Completed: cmp.A.Completed + cmp.B.Completed,
		Failed:    cmp.A.Failed + cmp.B.Failed,
		Skipped:   cmp.A.Skipped + cmp.B.Skipped,
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.store(key, pr); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// Fig5Paired is the variance-reduced reading of study 3: instead of two
// independent sweeps, each spread rate runs host- against domain-exclusion
// on common random numbers and reports the paired delta with its paired-t
// interval — the statistically sound way to resolve where the two policy
// curves of Figure 5 cross. Panels carry the two marginal series plus the
// delta series; crossover locations estimated from the delta sign changes
// (linear interpolation, flagged resolved when the bracketing deltas clear
// their intervals) land in Figure.Notes together with the observed
// CRN variance-reduction factors.
func Fig5Paired(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	fig := &Figure{ID: "5p", Title: "Exclusion Algorithms Compared on Common Random Numbers (host - domain deltas)"}
	panels := []Panel{
		{ID: "5pa", Measure: "Unavailability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5pb", Measure: "Unavailability for the first 10 hours", XLabel: "spread rate"},
		{ID: "5pc", Measure: "Unreliability for the first 5 hours", XLabel: "spread rate"},
		{ID: "5pd", Measure: "Unreliability for the first 10 hours", XLabel: "spread rate"},
	}
	var host, dom, delta [4]Series
	for i := range panels {
		host[i].Name = "Host exclusion"
		dom[i].Name = "Domain exclusion"
		delta[i].Name = "delta (host - domain)"
	}
	var meanCorr, meanVRF [4]float64
	for pi, spread := range Fig5SpreadRates {
		pr, err := pairedPoint(ctx, cfg,
			fig5Params(spread, core.HostExclusion),
			fig5Params(spread, core.DomainExclusion),
			T, uint64(3500+pi), fig5Vars)
		if err != nil {
			return nil, fmt.Errorf("fig5-paired spread=%v: %w", spread, err)
		}
		for i, v := range fig5MeasureNames {
			appendPoint(&host[i], spread, v+".a", pr)
			appendPoint(&dom[i], spread, v+".b", pr)
			appendPoint(&delta[i], spread, v+".delta", pr)
			meanCorr[i] += pr.Est[v+".corr"].Mean / float64(len(Fig5SpreadRates))
			meanVRF[i] += pr.Est[v+".vrf"].Mean / float64(len(Fig5SpreadRates))
		}
	}
	for i := range panels {
		panels[i].Series = []Series{host[i], dom[i], delta[i]}
		crossings := precision.Crossovers(delta[i].X, delta[i].Y, delta[i].HW)
		for _, c := range crossings {
			state := "within noise"
			if c.Resolved {
				state = "CI-resolved"
			}
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%s: delta (host - domain) changes sign near spread %.2f (%s)", panels[i].ID, c.X, state))
		}
		if len(crossings) == 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"%s: delta (host - domain) keeps its sign across the sweep", panels[i].ID))
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: CRN pairing: mean correlation %.2f, mean variance-reduction factor %.1f",
			panels[i].ID, meanCorr[i], meanVRF[i]))
	}
	fig.Panels = panels
	return fig, nil
}
