//go:build !race

package study

// raceEnabled reports that this binary was built with the race detector.
const raceEnabled = false
