package study

import (
	"context"
	"errors"
	"fmt"

	"ituaval/internal/core"
	"ituaval/internal/reward"
	"ituaval/internal/sim"
)

// sweep collects the points of one figure and runs them on a single flat
// worker pool (sim.RunFlat): the (point, replication) pairs of the whole
// figure form one work stream, so workers stay busy to the end instead of
// paying a synchronization barrier per point. Results are bit-identical to
// running the points sequentially through point() — each replication draws
// from the same derived stream and each point aggregates in replication
// order — and independent of the worker count.
type sweep struct {
	cfg   Config
	reqs  []sweepReq
	hooks SweepHooks
}

// sweepReq is one scheduled point: where its result goes, the error label
// that keeps sweep failures attributable, and the point's own configuration
// (which may differ from the sweep's, e.g. a capped-Reps steady-state
// point).
type sweepReq struct {
	out        **PointResult
	label      string
	cfg        Config
	params     core.Params
	until      float64
	seedOffset uint64
	vars       func(m *core.Model) []reward.Var
}

func newSweep(cfg Config) *sweep { return &sweep{cfg: cfg} }

// add schedules one sweep point; *out is assigned when run completes. label
// prefixes any error attributed to this point.
func (sw *sweep) add(out **PointResult, label string, pcfg Config, p core.Params, until float64,
	seedOffset uint64, vars func(m *core.Model) []reward.Var) {
	sw.reqs = append(sw.reqs, sweepReq{out, label, pcfg, p, until, seedOffset, vars})
}

// notifyPoint forwards one finished point to the progress hook, if any. In
// the flat path it fires from worker goroutines while other points are still
// running; SweepHooks documents the concurrency contract.
func (sw *sweep) notifyPoint(i int, pr *PointResult) {
	if sw.hooks.OnPoint != nil {
		sw.hooks.OnPoint(i, pr)
	}
}

// run executes every scheduled point. In precision mode the points run
// sequentially through point() — sequential stopping decides each point's
// replication count adaptively, which has no fixed flat decomposition —
// otherwise all points share one sim.RunFlat pool. Checkpointed points are
// restored without simulating, and freshly computed points are persisted
// before run returns; a point that fully completed before a cancellation is
// persisted too, so resumed sweeps lose none of the finished work.
func (sw *sweep) run(ctx context.Context) error {
	if sw.cfg.precisionMode() {
		for i := range sw.reqs {
			req := &sw.reqs[i]
			pr, err := point(ctx, req.cfg, req.params, req.until, req.seedOffset, req.vars)
			if err != nil {
				return fmt.Errorf("%s: %w", req.label, err)
			}
			*req.out = pr
			sw.notifyPoint(i, pr)
		}
		return nil
	}
	var pending []*sweepReq
	var pendIdx []int
	var specs []sim.Spec
	var keys []string
	for i := range sw.reqs {
		req := &sw.reqs[i]
		var key string
		if req.cfg.Checkpoint != nil {
			key = pointKey(req.cfg, req.params, req.until, req.seedOffset)
			if pr, ok := req.cfg.Checkpoint.lookup(key); ok {
				*req.out = pr
				sw.notifyPoint(i, pr)
				continue
			}
		}
		m, err := core.Build(req.params)
		if err != nil {
			return fmt.Errorf("%s: %w", req.label, err)
		}
		specs = append(specs, sim.Spec{
			Model:          m.SAN,
			Until:          req.until,
			Reps:           req.cfg.Reps,
			Seed:           req.cfg.Seed + req.seedOffset,
			Workers:        req.cfg.Workers,
			Vars:           req.vars(m),
			RepDeadline:    req.cfg.RepDeadline,
			MaxFailureFrac: req.cfg.MaxFailureFrac,
		})
		pending = append(pending, req)
		pendIdx = append(pendIdx, i)
		keys = append(keys, key)
	}
	if len(pending) == 0 {
		return nil
	}
	hooks := sim.FlatHooks{}
	if sw.hooks.OnRep != nil {
		hooks.OnRep = func(si int) { sw.hooks.OnRep(pendIdx[si]) }
	}
	if sw.hooks.OnPoint != nil {
		// Stream each point's eager snapshot as soon as the pool finishes it.
		// The streamed PointResult precedes the commit loop below (warnings,
		// checkpoint persistence), which still runs in deterministic order.
		hooks.OnSpec = func(si int, fr sim.FlatResult) {
			if fr.Err == nil && fr.Results != nil {
				sw.hooks.OnPoint(pendIdx[si], newPointResult(fr.Results))
			}
		}
	}
	frs := sim.RunFlatFunc(ctx, specs, sw.cfg.Workers, hooks)
	var firstErr error
	for i, req := range pending {
		fr := frs[i]
		res := fr.Results
		if err := ctx.Err(); err != nil && fr.Err == nil {
			// Cancelled after the simulation finished, mid-bookkeeping (for
			// example from a checkpoint save hook): stop committing further
			// points so cancellation halts the sweep at point granularity,
			// exactly as the sequential scheduler did.
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", req.label, err)
			}
			continue
		}
		if fr.Err != nil {
			// A point whose every replication completed before the sweep was
			// cancelled is still a full, checkpointable result; anything
			// else aborts the point (the sweep keeps salvaging the rest).
			cancelled := errors.Is(fr.Err, context.Canceled) || errors.Is(fr.Err, context.DeadlineExceeded)
			if !cancelled || res == nil || res.Skipped > 0 || res.Failed > 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", req.label, fr.Err)
				}
				continue
			}
		}
		if res.Failed > 0 {
			req.cfg.warnf("study: %d of %d replications failed at this sweep point; estimates use the %d survivors (first failure: %v)",
				res.Failed, res.Reps, res.Completed, &res.Failures[0])
		}
		pr := newPointResult(res)
		if req.cfg.Checkpoint != nil {
			if err := req.cfg.Checkpoint.store(keys[i], pr); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", req.label, err)
				}
				continue
			}
		}
		*req.out = pr
	}
	return firstErr
}
