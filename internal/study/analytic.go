package study

import (
	"context"
	"fmt"
	"math"

	"ituaval/internal/core"
	"ituaval/internal/exact"
	"ituaval/internal/reward"
)

// AnalyticSpreadRates is the sweep grid of the analytic study — the same
// intra-domain spread rates as Figure 5.
var AnalyticSpreadRates = Fig5SpreadRates

// analyticParams is the largest ITUA configuration whose CTMC stays
// comfortably generateable (~3·10^5 states with spread enabled): two
// domains of one host, one application with two replicas, corruption
// multiplier 5, like study 3 swept over the intra-domain spread rate.
// Analytic is set so the intrusions counter saturates (finite state
// space); the simulated arm runs the same saturated model, which agrees
// with the unbounded one on every observable.
func analyticParams(spread float64) core.Params {
	p := core.DefaultParams()
	p.NumDomains = 2
	p.HostsPerDomain = 1
	p.NumApps = 1
	p.RepsPerApp = 2
	p.CorruptionMult = 5
	p.DomainSpreadRate = spread
	p.Policy = core.DomainExclusion
	p.Analytic = true
	return p
}

// AnalyticAnchorParams is the full-scale exact anchor made reachable by
// symmetry lumping (PR 9): the Figure-5 topology at four domains of two
// hosts, three applications with two replicas each, corruption multiplier
// 5, at the spread-0 grid point with the host- and manager-attack splits
// zeroed (replica attacks and host false alarms remain, so corruptions and
// exclusions still occur). Its full chain exceeds 2^22 states — far beyond
// the default generation cap — while the S_4 x (S_2)^4 quotient is about
// 1.59 million states, generated and solved in minutes. The lumpcheck CI
// lane (integrity.TestCrossCheckLumpedAnchor) solves this configuration
// exactly and requires the values to land inside the union of the SAN and
// direct simulators' 95% confidence intervals.
func AnalyticAnchorParams() core.Params {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 3
	p.RepsPerApp = 2
	p.CorruptionMult = 5
	p.DomainSpreadRate = 0
	p.SystemSpreadRate = 0
	p.AttackSplitHost = 0
	p.AttackSplitMgr = 0
	p.Policy = core.DomainExclusion
	p.Analytic = true
	return p
}

// AnalyticAnchorMaxStates comfortably bounds the anchor's lumped quotient
// (~1.59M states; the full chain blows through 2^22).
const AnalyticAnchorMaxStates = 1 << 21

// analyticVars are the simulated counterparts of the exactly computed
// measures, evaluated on application 0 like study 3.
func analyticVars(m *core.Model) []reward.Var {
	return []reward.Var{
		m.Unavailability("u5", 0, 0, 5),
		m.Unavailability("u10", 0, 0, 10),
		m.Unreliability("r5", 0, 5),
		m.Unreliability("r10", 0, 10),
	}
}

// Analytic is the exact-vs-simulated study: for every Figure-5 spread
// rate on the small analyticParams configuration it computes interval
// unavailability and unreliability twice — numerically (state-space
// generation plus uniformization, internal/exact; no sampling error) and
// by the ordinary simulation sweep — and plots both series per panel.
// The exact series carries zero half-widths; the notes record the chain
// sizes and the worst simulated deviation in units of the simulation's
// 95% half-width, so a bias in either path is visible at a glance.
// Exact values are not checkpointed: recomputing them is cheap and they
// are deterministic.
func Analytic(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	fig := &Figure{ID: "A", Title: "Exact (Uniformization) versus Simulated Measures, 2 Domains x 1 Host"}
	panels := []Panel{
		{ID: "Aa", Measure: "Unavailability for the first 5 hours", XLabel: "spread rate"},
		{ID: "Ab", Measure: "Unavailability for the first 10 hours", XLabel: "spread rate"},
		{ID: "Ac", Measure: "Unreliability for the first 5 hours", XLabel: "spread rate"},
		{ID: "Ad", Measure: "Unreliability for the first 10 hours", XLabel: "spread rate"},
	}
	measures := []string{"u5", "u10", "r5", "r10"}

	// Simulated arm: an ordinary checkpointable sweep.
	sw := newSweep(cfg)
	prs := make([]*PointResult, len(AnalyticSpreadRates))
	for pi, spread := range AnalyticSpreadRates {
		sw.add(&prs[pi], fmt.Sprintf("analytic spread=%v", spread),
			cfg, analyticParams(spread), T, uint64(4000+pi), analyticVars)
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}

	// Exact arm: generate and solve each configuration's CTMC.
	var exSeries, simSeries [4]Series
	for i := range panels {
		exSeries[i].Name = "exact (uniformization)"
		simSeries[i].Name = "simulation"
	}
	worstSigma := 0.0
	for pi, spread := range AnalyticSpreadRates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := exact.NewSolver(analyticParams(spread), exact.Options{Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("analytic spread=%v: %w", spread, err)
		}
		ex := make(map[string]float64, 4)
		for _, horizon := range []float64{5, 10} {
			u, err := s.Unavailability(0, horizon)
			if err != nil {
				return nil, fmt.Errorf("analytic spread=%v unavailability[0,%g]: %w", spread, horizon, err)
			}
			r, err := s.Unreliability(0, horizon)
			if err != nil {
				return nil, fmt.Errorf("analytic spread=%v unreliability[0,%g]: %w", spread, horizon, err)
			}
			ex[fmt.Sprintf("u%g", horizon)] = u
			ex[fmt.Sprintf("r%g", horizon)] = r
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"spread %g: %d states, %d transitions", spread, s.C.NumStates(), s.C.NumTransitions()))
		for i, name := range measures {
			appendCell(&exSeries[i], spread, ex[name], 0, 0, 0, 0, 0, 0)
			appendPoint(&simSeries[i], spread, name, prs[pi])
			if e := prs[pi].Est[name]; e.HalfWidth95 > 0 {
				if sig := math.Abs(e.Mean-ex[name]) / e.HalfWidth95; sig > worstSigma {
					worstSigma = sig
				}
			}
		}
	}
	for i := range panels {
		panels[i].Series = []Series{exSeries[i], simSeries[i]}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"worst |simulated - exact| across all points: %.2f simulation half-widths (expect ~1 at 95%%)", worstSigma))
	fig.Panels = panels
	return fig, nil
}
