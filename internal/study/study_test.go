package study

import (
	"context"
	"math"
	"strings"
	"testing"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/stats"
)

// quick returns a low-effort config so study tests stay fast; shape
// assertions below use wide tolerances accordingly.
func quick() Config { return Config{Reps: 250, Seed: 7} }

func TestFig3Shapes(t *testing.T) {
	fig, err := Fig3(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("panels = %d", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != len(Fig3Apps) {
			t.Fatalf("panel %s series = %d", p.ID, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.X) != len(Fig3HostsPerDomain) {
				t.Fatalf("panel %s series %q points = %d", p.ID, s.Name, len(s.X))
			}
		}
	}
	// Shape assertions on the 4-application series (index 1).
	unavail := fig.Panels[0].Series[1]
	if unavail.Y[0] >= unavail.Y[len(unavail.Y)-1] {
		t.Errorf("3a: unavailability should rise with hosts/domain: %v", unavail.Y)
	}
	unrel := fig.Panels[1].Series[1]
	peak := 0
	for i, y := range unrel.Y {
		if y > unrel.Y[peak] {
			peak = i
		}
	}
	if hpd := Fig3HostsPerDomain[peak]; hpd < 3 || hpd > 6 {
		t.Errorf("3b: unreliability peak at %d hosts/domain (want 3-6): %v", hpd, unrel.Y)
	}
	if unrel.Y[len(unrel.Y)-1] >= unrel.Y[peak] {
		t.Errorf("3b: unreliability should decline after the peak: %v", unrel.Y)
	}
	corr := fig.Panels[2].Series[1]
	if corr.Y[0] < 0.7 || corr.Y[0] <= corr.Y[len(corr.Y)-1] {
		t.Errorf("3c: corrupt fraction should start high and decline: %v", corr.Y)
	}
	excl := fig.Panels[3].Series[1]
	if excl.Y[0] >= excl.Y[len(excl.Y)-1] {
		t.Errorf("3d: excluded fraction should rise: %v", excl.Y)
	}
}

func TestFig4Shapes(t *testing.T) {
	fig, err := Fig4(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	// 4a: [0,10] above [0,5]; both increasing overall.
	u5, u10 := fig.Panels[0].Series[0], fig.Panels[0].Series[1]
	for i := range u5.Y {
		if u10.Y[i] < u5.Y[i] {
			t.Errorf("4a: unavailability [0,10] below [0,5] at x=%v", u5.X[i])
		}
	}
	if u5.Y[len(u5.Y)-1] <= u5.Y[0]*0.8 {
		t.Errorf("4a: unavailability should not fall with hosts/domain: %v", u5.Y)
	}
	// 4c: steady-state corrupt fraction decreasing.
	ss := fig.Panels[2].Series[0]
	if ss.Y[0] < 0.7 || ss.Y[len(ss.Y)-1] >= ss.Y[0] {
		t.Errorf("4c: steady-state corrupt fraction should decline from high: %v", ss.Y)
	}
	// 4d: more excluded at 10 than at 5, rising with hosts/domain.
	e5, e10 := fig.Panels[3].Series[0], fig.Panels[3].Series[1]
	for i := range e5.Y {
		if e10.Y[i] < e5.Y[i] {
			t.Errorf("4d: excluded at 10 below excluded at 5 at x=%v", e5.X[i])
		}
	}
	if e5.Y[len(e5.Y)-1] <= e5.Y[0] {
		t.Errorf("4d: excluded fraction should rise with hosts/domain: %v", e5.Y)
	}
}

func TestFig5Shapes(t *testing.T) {
	// Per-run unavailability is heavy-tailed, so this sweep needs more
	// replications than the other shape tests for stable orderings.
	fig, err := Fig5(context.Background(), Config{Reps: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Series order: [host, domain] per panel. The 10-hour measures (5b,
	// 5d) are much less noisy than 5-hour unavailability, so the shape
	// assertions use those.
	hostU10, domU10 := fig.Panels[1].Series[0], fig.Panels[1].Series[1]
	last := len(hostU10.Y) - 1
	if hostU10.Y[0] >= domU10.Y[0] {
		t.Errorf("5b: host exclusion should be better at spread 0: host=%v dom=%v", hostU10.Y[0], domU10.Y[0])
	}
	hostR10, domR10 := fig.Panels[3].Series[0], fig.Panels[3].Series[1]
	if hostR10.Y[0] >= domR10.Y[0] {
		t.Errorf("5d: host exclusion should be more reliable at spread 0: host=%v dom=%v", hostR10.Y[0], domR10.Y[0])
	}
	if hostR10.Y[last] <= 2*hostR10.Y[0] {
		t.Errorf("5d: host exclusion should degrade sharply with spread: %v", hostR10.Y)
	}
	// The host/domain gap must close substantially from spread 0 to 10.
	if gap0, gap10 := hostR10.Y[0]/domR10.Y[0], hostR10.Y[last]/domR10.Y[last]; gap10 <= 1.5*gap0 {
		t.Errorf("5d: long-run gap should close with spread: ratio %v -> %v", gap0, gap10)
	}
	// Host exclusion must degrade faster (relatively) than domain exclusion.
	if hg, dg := hostR10.Y[last]/hostR10.Y[0], domR10.Y[last]/domR10.Y[0]; hg <= 1.3*dg {
		t.Errorf("5d: host exclusion should degrade faster: host %vx vs domain %vx", hg, dg)
	}
}

func TestCrossValidationAgreement(t *testing.T) {
	fig, err := CrossValidation(context.Background(), Config{Reps: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Panels {
		san, direct := p.Series[0], p.Series[1]
		for i := range san.Y {
			tol := 3*(san.HW[i]+direct.HW[i]) + 0.01
			if d := math.Abs(san.Y[i] - direct.Y[i]); d > tol {
				t.Errorf("%s x=%v: SAN %v vs direct %v (|d|=%v tol=%v)",
					p.ID, san.X[i], san.Y[i], direct.Y[i], d, tol)
			}
		}
	}
}

func TestNumericalValidationAgreement(t *testing.T) {
	fig, err := NumericalValidation(context.Background(), Config{Reps: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := fig.Panels[0]
	simS, numS := p.Series[0], p.Series[1]
	for i := range simS.Y {
		tol := 3*simS.HW[i] + 0.005
		if d := math.Abs(simS.Y[i] - numS.Y[i]); d > tol {
			t.Errorf("T=%v: sim %v vs numeric %v (|d|=%v tol=%v)", simS.X[i], simS.Y[i], numS.Y[i], d, tol)
		}
	}
}

func TestAblationConvictionOrdering(t *testing.T) {
	fig, err := AblationConviction(context.Background(), Config{Reps: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Excluding a domain on every replica conviction must exclude at least
	// as many domains as restart-only, at every sweep point.
	excl := fig.Panels[1]
	restart, exclude := excl.Series[0], excl.Series[1]
	for i := range restart.Y {
		if exclude.Y[i]+0.05 < restart.Y[i] {
			t.Errorf("x=%v: exclusion-on-conviction excluded fewer domains (%v) than restart (%v)",
				restart.X[i], exclude.Y[i], restart.Y[i])
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatal("IDs() length mismatch")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs() not sorted")
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestWriters(t *testing.T) {
	fig, err := AblationDetectionRate(context.Background(), Config{Reps: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var text, csv strings.Builder
	if err := fig.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Figure X3") {
		t.Fatalf("text output missing title:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "replications per point") {
		t.Fatalf("text output missing replication accounting:\n%s", text.String())
	}
	if !strings.Contains(text.String(), "60/0/0 of 60") {
		t.Fatalf("text output missing completed/failed/skipped counts:\n%s", text.String())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "figure,panel,series,x,y,hw,n,reps,completed,failed,skipped" || len(lines) < 10 {
		t.Fatalf("csv output unexpected:\n%s", csv.String())
	}
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, ",60,60,0,0") {
			t.Fatalf("csv row missing replication accounting: %s", line)
		}
	}
	// Every series carries per-point counts parallel to X.
	for _, p := range fig.Panels {
		for _, s := range p.Series {
			if len(s.N) != len(s.X) || len(s.Completed) != len(s.X) ||
				len(s.Failed) != len(s.X) || len(s.Skipped) != len(s.X) || len(s.Reps) != len(s.X) {
				t.Fatalf("series %q counts not parallel to X", s.Name)
			}
		}
	}
}

// TestPointPrecisionMode drives one sweep point under a relative half-width
// target: the replication count must grow geometrically from Reps until the
// target holds for every measure (or the cap is hit).
func TestPointPrecisionMode(t *testing.T) {
	p := core.DefaultParams()
	p.NumDomains = 4
	p.HostsPerDomain = 2
	p.NumApps = 3
	p.RepsPerApp = 4
	const T = 5.0
	cfg := Config{Reps: 50, Seed: 3, TargetRelHW: 0.25, MaxReps: 6400}
	pr, err := point(context.Background(), cfg, p, T, 0, func(m *core.Model) []reward.Var {
		return []reward.Var{m.Unavailability("u", 0, 0, T)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Reps < cfg.Reps {
		t.Fatalf("precision point ran %d reps, below the initial batch %d", pr.Reps, cfg.Reps)
	}
	// The schedule is geometric from 50 with growth 2 and cap 6400.
	onSchedule := false
	for n := cfg.Reps; n <= cfg.MaxReps; n *= 2 {
		if pr.Reps == n {
			onSchedule = true
		}
	}
	if !onSchedule {
		t.Fatalf("total reps %d is not on the geometric schedule from %d", pr.Reps, cfg.Reps)
	}
	u := pr.Est["u"]
	if pr.Reps < cfg.MaxReps && u.HalfWidth95 > cfg.TargetRelHW*math.Abs(u.Mean) {
		t.Fatalf("stopped early with hw %v > %v of mean %v", u.HalfWidth95, cfg.TargetRelHW, u.Mean)
	}
	if pr.Completed+pr.Failed+pr.Skipped != pr.Reps {
		t.Fatalf("replication accounting inconsistent: %+v", pr)
	}
}

// TestFig5PairedShapes checks the CRN-paired reading of study 3: panel
// structure, a negative host-minus-domain delta at spread 0 (host exclusion
// is strictly better without intra-domain spread), and the crossover /
// variance-reduction notes.
func TestFig5PairedShapes(t *testing.T) {
	fig, err := Fig5Paired(context.Background(), Config{Reps: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 4 {
		t.Fatalf("panels = %d", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Series) != 3 {
			t.Fatalf("panel %s series = %d, want host/domain/delta", p.ID, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.X) != len(Fig5SpreadRates) || len(s.N) != len(s.X) {
				t.Fatalf("panel %s series %q shape wrong", p.ID, s.Name)
			}
		}
		host, dom, delta := p.Series[0], p.Series[1], p.Series[2]
		for i := range delta.Y {
			if d := delta.Y[i] - (host.Y[i] - dom.Y[i]); math.Abs(d) > 1e-9 {
				t.Fatalf("panel %s x=%v: delta %v inconsistent with marginals %v - %v",
					p.ID, delta.X[i], delta.Y[i], host.Y[i], dom.Y[i])
			}
		}
	}
	// 5pd (unreliability over 10 h) resolves the policies most clearly at
	// spread 0: host exclusion keeps more of the system alive.
	delta := fig.Panels[3].Series[2]
	if delta.Y[0] >= 0 {
		t.Errorf("5pd: host-minus-domain unreliability delta at spread 0 should be negative, got %v", delta.Y[0])
	}
	if len(fig.Notes) == 0 {
		t.Error("paired figure carries no crossover/VRF notes")
	}
}

func TestMaxAbsGap(t *testing.T) {
	p := Panel{Series: []Series{
		{Y: []float64{1, 2, 3}},
		{Y: []float64{1, 2.5, 2}},
	}}
	if g := MaxAbsGap(p); g != 1 {
		t.Fatalf("gap = %v", g)
	}
	if !math.IsNaN(MaxAbsGap(Panel{})) {
		t.Fatal("gap of empty panel should be NaN")
	}
}

func TestAblationPlacementLoadBalancing(t *testing.T) {
	fig, err := AblationPlacement(context.Background(), Config{Reps: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 2 || len(fig.Panels[0].Series) != 3 {
		t.Fatalf("unexpected structure: %d panels", len(fig.Panels))
	}
	// All three strategies must produce comparable availability (placement
	// is a second-order effect) — no strategy should differ by an order of
	// magnitude at spread 0.
	u := fig.Panels[0]
	for _, s := range u.Series[1:] {
		if s.Y[0] > 10*u.Series[0].Y[0]+0.05 || u.Series[0].Y[0] > 10*s.Y[0]+0.05 {
			t.Errorf("placement strategy %q availability wildly different: %v vs %v",
				s.Name, s.Y[0], u.Series[0].Y[0])
		}
	}
}

func TestCrossValidationWithPlacementStrategies(t *testing.T) {
	// The SAN model and the direct simulator implement the placement
	// strategies independently; they must agree for each.
	for _, placement := range []core.Placement{core.LeastLoadedPlacement, core.WeightedRandomPlacement} {
		p := core.DefaultParams()
		p.NumDomains = 4
		p.HostsPerDomain = 3
		p.NumApps = 3
		p.RepsPerApp = 4
		p.Placement = placement
		const T, reps = 6.0, 1200
		pr, err := point(context.Background(), Config{Reps: reps, Seed: 21}, p, T, 0, func(m *core.Model) []reward.Var {
			return []reward.Var{m.Unavailability("u", 0, 0, T)}
		})
		if err != nil {
			t.Fatal(err)
		}
		est := pr.Est
		var acc stats.Accumulator
		root := rng.New(77)
		for i := 0; i < reps; i++ {
			res, err := ituadirect.Run(p, root.Derive(uint64(i)), []float64{T})
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(res.UnavailTime[0] / T)
		}
		tol := 3*(est["u"].HalfWidth95+acc.HalfWidth(0.95)) + 0.01
		if d := math.Abs(est["u"].Mean - acc.Mean()); d > tol {
			t.Errorf("%v: SAN %v vs direct %v (|d|=%v tol=%v)",
				placement, est["u"].Mean, acc.Mean(), d, tol)
		}
	}
}
