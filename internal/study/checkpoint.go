package study

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"ituaval/internal/core"
	"ituaval/internal/sim"
)

// checkpointVersion is bumped whenever the on-disk format or the point-key
// derivation changes incompatibly; mismatched files are rejected rather
// than silently producing wrong resumes.
const checkpointVersion = 1

// Checkpoint persists completed sweep points so an interrupted study can
// resume without recomputation. After every sweep point the whole
// checkpoint is rewritten atomically (temp file + rename), so a kill at any
// moment leaves either the previous or the new consistent file, never a
// torn one.
//
// Resume is exact, not approximate: a point's key fingerprints the full
// simulation spec (model parameters, horizon, replication count, and the
// effective root seed), and replication seeds are derived per-replication
// from the root seed, so a resumed study is bit-identical to an
// uninterrupted one.
type Checkpoint struct {
	mu     sync.Mutex
	path   string
	points map[string]map[string]sim.Estimate
	onSave func() // test hook, called after each successful save
}

// checkpointFile is the JSON schema of the on-disk checkpoint.
type checkpointFile struct {
	Version int                                `json:"version"`
	Points  map[string]map[string]sim.Estimate `json:"points"`
}

// OpenCheckpoint opens a checkpoint backed by path. With resume true, an
// existing file is loaded and its completed points are skipped on the next
// run; a missing file is not an error (the study simply starts from
// scratch). With resume false the checkpoint starts empty and the file is
// replaced at the first completed point.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	ck := &Checkpoint{path: path, points: make(map[string]map[string]sim.Estimate)}
	if !resume {
		return ck, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("study: reading checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("study: corrupt checkpoint %s: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("study: checkpoint %s has version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.Points != nil {
		ck.points = f.Points
	}
	return ck, nil
}

// Len reports the number of completed sweep points recorded.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// lookup returns the stored estimates for a point key, if present.
func (c *Checkpoint) lookup(key string) (map[string]sim.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	est, ok := c.points[key]
	return est, ok
}

// store records a completed point and rewrites the checkpoint file
// atomically.
func (c *Checkpoint) store(key string, est map[string]sim.Estimate) error {
	c.mu.Lock()
	c.points[key] = est
	err := c.save()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.onSave != nil {
		c.onSave()
	}
	return nil
}

// save writes the checkpoint under c.mu: marshal to a temp file in the
// destination directory, fsync-free rename into place.
func (c *Checkpoint) save() error {
	data, err := json.Marshal(checkpointFile{Version: checkpointVersion, Points: c.points})
	if err != nil {
		return fmt.Errorf("study: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	return nil
}

// pointKey fingerprints everything that determines a sweep point's result:
// the model parameters, the horizon, the replication count, and the
// effective root seed. Two points with equal keys are guaranteed equal
// results, which is what makes resume exact.
func pointKey(cfg Config, p core.Params, until float64, seedOffset uint64) string {
	pj, err := json.Marshal(p)
	if err != nil {
		// core.Params is a struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("study: marshaling params: %v", err))
	}
	return fmt.Sprintf("v%d|reps=%d|seed=%d|until=%g|params=%s",
		checkpointVersion, cfg.Reps, cfg.Seed+seedOffset, until, pj)
}
