package study

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"ituaval/internal/core"
)

// checkpointVersion is bumped whenever the on-disk format or the point-key
// derivation changes incompatibly; mismatched files are rejected rather
// than silently producing wrong resumes. Version 2 stores full PointResult
// values (estimates plus replication accounting) and fingerprints the
// precision targets in the point key.
const checkpointVersion = 2

// Checkpoint persists completed sweep points so an interrupted study can
// resume without recomputation. After every sweep point the whole
// checkpoint is rewritten atomically (temp file + rename), so a kill at any
// moment leaves either the previous or the new consistent file, never a
// torn one.
//
// Resume is exact, not approximate: a point's key fingerprints the full
// simulation spec (model parameters, horizon, replication schedule —
// including any sequential precision targets — and the effective root
// seed), and replication seeds are derived per-replication from the root
// seed, so a resumed study is bit-identical to an uninterrupted one.
type Checkpoint struct {
	mu     sync.Mutex
	path   string
	points map[string]*PointResult
	onSave func() // test hook, called after each successful save
}

// checkpointFile is the JSON schema of the on-disk checkpoint.
type checkpointFile struct {
	Version int                     `json:"version"`
	Points  map[string]*PointResult `json:"points"`
}

// OpenCheckpoint opens a checkpoint backed by path. With resume true, an
// existing file is loaded and its completed points are skipped on the next
// run; a missing file is not an error (the study simply starts from
// scratch). With resume false the checkpoint starts empty and the file is
// replaced at the first completed point.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	ck := &Checkpoint{path: path, points: make(map[string]*PointResult)}
	if !resume {
		return ck, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("study: reading checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("study: corrupt checkpoint %s: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("study: checkpoint %s has version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.Points != nil {
		ck.points = f.Points
	}
	return ck, nil
}

// Len reports the number of completed sweep points recorded.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// lookup returns the stored point for a key, if present.
func (c *Checkpoint) lookup(key string) (*PointResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pr, ok := c.points[key]
	return pr, ok
}

// store records a completed point and rewrites the checkpoint file
// atomically.
func (c *Checkpoint) store(key string, pr *PointResult) error {
	c.mu.Lock()
	c.points[key] = pr
	err := c.save()
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.onSave != nil {
		c.onSave()
	}
	return nil
}

// save writes the checkpoint under c.mu: marshal to a temp file in the
// destination directory, fsync-free rename into place.
func (c *Checkpoint) save() error {
	data, err := json.Marshal(checkpointFile{Version: checkpointVersion, Points: c.points})
	if err != nil {
		return fmt.Errorf("study: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, c.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	return nil
}

// precKey encodes the replication schedule of a point: the fixed count, or
// the sequential precision targets and cap when precision mode is on. Two
// configs with equal schedules produce equal results for equal seeds.
func precKey(cfg Config) string {
	if !cfg.precisionMode() {
		return fmt.Sprintf("reps=%d", cfg.Reps)
	}
	return fmt.Sprintf("reps=%d|rel=%g|abs=%g|max=%d",
		cfg.Reps, cfg.TargetRelHW, cfg.TargetAbsHW, cfg.MaxReps)
}

// pointKey fingerprints everything that determines a sweep point's result:
// the model parameters, the horizon, the replication schedule, and the
// effective root seed. Two points with equal keys are guaranteed equal
// results, which is what makes resume exact.
func pointKey(cfg Config, p core.Params, until float64, seedOffset uint64) string {
	return fmt.Sprintf("v%d|%s|seed=%d|until=%g|params=%s",
		checkpointVersion, precKey(cfg), cfg.Seed+seedOffset, until, paramsJSON(p))
}

// pairedPointKey fingerprints a CRN-paired sweep point: both parameter
// sets plus the shared schedule and seed.
func pairedPointKey(cfg Config, a, b core.Params, until float64, seedOffset uint64) string {
	return fmt.Sprintf("v%d|paired|%s|seed=%d|until=%g|a=%s|b=%s",
		checkpointVersion, precKey(cfg), cfg.Seed+seedOffset, until, paramsJSON(a), paramsJSON(b))
}

func paramsJSON(p core.Params) []byte {
	pj, err := json.Marshal(p)
	if err != nil {
		// core.Params is a struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("study: marshaling params: %v", err))
	}
	return pj
}
