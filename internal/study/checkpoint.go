package study

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"ituaval/internal/core"
)

// checkpointVersion is bumped whenever the on-disk format or the point-key
// derivation changes incompatibly; mismatched entries are quarantined rather
// than silently producing wrong resumes. Version 3 is an append-only JSONL
// format with a SHA-256 content checksum per entry, making checkpoints
// tamper-evident: a flipped bit, a torn write, or a stale-schema entry is
// detected on resume, the damaged file is quarantined, and every intact
// entry is salvaged.
const checkpointVersion = 3

// Checkpoint persists completed sweep points so an interrupted study can
// resume without recomputation. Each completed point appends one line
//
//	{"sum":"<sha256 of entry>","entry":{"v":3,"key":...,"point":{...}}}
//
// so a kill mid-write can damage at most the final line, and damage of any
// kind is evident: on resume every line's checksum and schema version are
// verified, damaged or stale lines are dropped, the original file is moved
// aside to <path>.corrupt-<n>, and a clean file holding the surviving
// entries is written in its place. Recovery reports what happened.
//
// Resume is exact, not approximate: a point's key fingerprints the full
// simulation spec (model parameters, horizon, replication schedule —
// including any sequential precision targets — and the effective root
// seed), and replication seeds are derived per-replication from the root
// seed, so a resumed study is bit-identical to an uninterrupted one.
type Checkpoint struct {
	mu       sync.Mutex
	path     string
	points   map[string]*PointResult
	truncate bool // first store replaces any pre-existing (unloaded) file
	recovery Recovery
	onSave   func() // test hook, called after each successful save
}

// Recovery describes what OpenCheckpoint found when it verified an existing
// checkpoint file. The zero value means the file was absent or fully intact.
type Recovery struct {
	// Quarantined is the path the damaged original was moved to, or "" if
	// every line verified.
	Quarantined string
	// Salvaged is the number of intact entries recovered from a damaged
	// file.
	Salvaged int
	// Dropped is the number of lines discarded for corruption: unparsable
	// JSON, a checksum mismatch, or a torn final line.
	Dropped int
	// Stale is the number of well-formed entries discarded because they
	// were written by a different checkpoint schema version (including
	// whole files in the pre-v3 format).
	Stale int
}

// Damaged reports whether the checkpoint file needed quarantine.
func (r Recovery) Damaged() bool { return r.Quarantined != "" }

func (r Recovery) String() string {
	if !r.Damaged() {
		return "checkpoint intact"
	}
	return fmt.Sprintf("checkpoint damaged: %d entries salvaged, %d corrupt and %d stale dropped; original quarantined at %s",
		r.Salvaged, r.Dropped, r.Stale, r.Quarantined)
}

// checkpointLine is the JSONL envelope: the checksum binds the exact entry
// bytes, so any mutation of the payload is detected.
type checkpointLine struct {
	Sum   string          `json:"sum"`
	Entry json.RawMessage `json:"entry"`
}

// checkpointEntry is one completed sweep point.
type checkpointEntry struct {
	V     int          `json:"v"`
	Key   string       `json:"key"`
	Point *PointResult `json:"point"`
}

// lineVerdict classifies one checkpoint line during verification.
type lineVerdict int

const (
	lineOK lineVerdict = iota
	// lineCorrupt: unparsable, checksum mismatch, or missing fields.
	lineCorrupt
	// lineStale: checksum (or legacy shape) is fine but the schema version
	// is not ours — honestly written by other code, not tampered with.
	lineStale
)

// decodeCheckpointLine verifies and decodes one line of a v3 checkpoint.
func decodeCheckpointLine(line []byte) (key string, pr *PointResult, v lineVerdict) {
	var l checkpointLine
	if err := json.Unmarshal(line, &l); err != nil {
		return "", nil, lineCorrupt
	}
	if l.Sum == "" || len(l.Entry) == 0 {
		// Not the envelope shape. A pre-v3 checkpoint was a single JSON
		// object {"version":N,...}; classify that as stale, not corrupt.
		var legacy struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(line, &legacy); err == nil && legacy.Version != 0 {
			return "", nil, lineStale
		}
		return "", nil, lineCorrupt
	}
	sum := sha256.Sum256(l.Entry)
	if hex.EncodeToString(sum[:]) != l.Sum {
		return "", nil, lineCorrupt
	}
	var e checkpointEntry
	if err := json.Unmarshal(l.Entry, &e); err != nil {
		return "", nil, lineCorrupt
	}
	if e.V != checkpointVersion {
		return "", nil, lineStale
	}
	if e.Key == "" || e.Point == nil {
		return "", nil, lineCorrupt
	}
	return e.Key, e.Point, lineOK
}

// encodeCheckpointLine builds the checksummed JSONL line for one entry.
func encodeCheckpointLine(key string, pr *PointResult) ([]byte, error) {
	entry, err := json.Marshal(checkpointEntry{V: checkpointVersion, Key: key, Point: pr})
	if err != nil {
		return nil, fmt.Errorf("study: encoding checkpoint entry: %w", err)
	}
	sum := sha256.Sum256(entry)
	line, err := json.Marshal(checkpointLine{Sum: hex.EncodeToString(sum[:]), Entry: entry})
	if err != nil {
		return nil, fmt.Errorf("study: encoding checkpoint line: %w", err)
	}
	return append(line, '\n'), nil
}

// OpenCheckpoint opens a checkpoint backed by path. With resume true, an
// existing file is verified line by line and its intact points are skipped
// on the next run; a missing file is not an error (the study simply starts
// from scratch), and a damaged file is quarantined to <path>.corrupt-<n>
// with the surviving entries salvaged (inspect Recovery for details). With
// resume false the checkpoint starts empty and the file is replaced at the
// first completed point.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	ck := &Checkpoint{path: path, points: make(map[string]*PointResult)}
	if !resume {
		ck.truncate = true
		return ck, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("study: reading checkpoint: %w", err)
	}
	var good [][]byte
	var corrupt, stale int
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		key, pr, verdict := decodeCheckpointLine(line)
		switch verdict {
		case lineOK:
			ck.points[key] = pr
			good = append(good, line)
		case lineStale:
			stale++
		default:
			corrupt++
		}
	}
	if corrupt+stale > 0 {
		qpath, err := quarantine(path)
		if err != nil {
			return nil, err
		}
		if err := writeLines(path, good); err != nil {
			return nil, err
		}
		ck.recovery = Recovery{
			Quarantined: qpath,
			Salvaged:    len(ck.points),
			Dropped:     corrupt,
			Stale:       stale,
		}
	}
	return ck, nil
}

// Recovery reports what OpenCheckpoint found in the existing file.
func (c *Checkpoint) Recovery() Recovery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovery
}

// quarantine moves path aside to the first free <path>.corrupt-<n>.
func quarantine(path string) (string, error) {
	for n := 1; ; n++ {
		qpath := fmt.Sprintf("%s.corrupt-%d", path, n)
		if _, err := os.Lstat(qpath); err == nil {
			continue
		} else if !errors.Is(err, fs.ErrNotExist) {
			return "", fmt.Errorf("study: quarantining checkpoint: %w", err)
		}
		if err := os.Rename(path, qpath); err != nil {
			return "", fmt.Errorf("study: quarantining checkpoint: %w", err)
		}
		return qpath, nil
	}
}

// writeLines atomically replaces path with the given lines.
func writeLines(path string, lines [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	for _, line := range lines {
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	return nil
}

// Len reports the number of completed sweep points recorded.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.points)
}

// lookup returns the stored point for a key, if present.
func (c *Checkpoint) lookup(key string) (*PointResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pr, ok := c.points[key]
	return pr, ok
}

// store records a completed point and appends its checksummed line to the
// checkpoint file.
func (c *Checkpoint) store(key string, pr *PointResult) error {
	c.mu.Lock()
	c.points[key] = pr
	err := c.appendLine(key, pr)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if c.onSave != nil {
		c.onSave()
	}
	return nil
}

// appendLine writes one entry under c.mu. The first store of a
// non-resuming checkpoint truncates whatever file was there before.
func (c *Checkpoint) appendLine(key string, pr *PointResult) error {
	line, err := encodeCheckpointLine(key, pr)
	if err != nil {
		return err
	}
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if c.truncate {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(c.path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	c.truncate = false
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("study: writing checkpoint: %w", err)
	}
	return nil
}

// precKey encodes the replication schedule of a point: the fixed count, or
// the sequential precision targets and cap when precision mode is on. Two
// configs with equal schedules produce equal results for equal seeds.
func precKey(cfg Config) string {
	if !cfg.precisionMode() {
		return fmt.Sprintf("reps=%d", cfg.Reps)
	}
	return fmt.Sprintf("reps=%d|rel=%g|abs=%g|max=%d",
		cfg.Reps, cfg.TargetRelHW, cfg.TargetAbsHW, cfg.MaxReps)
}

// pointKey fingerprints everything that determines a sweep point's result:
// the model parameters, the horizon, the replication schedule, and the
// effective root seed. Two points with equal keys are guaranteed equal
// results, which is what makes resume exact.
func pointKey(cfg Config, p core.Params, until float64, seedOffset uint64) string {
	return fmt.Sprintf("v%d|%s|seed=%d|until=%g|params=%s",
		checkpointVersion, precKey(cfg), cfg.Seed+seedOffset, until, paramsJSON(p))
}

// pairedPointKey fingerprints a CRN-paired sweep point: both parameter
// sets plus the shared schedule and seed.
func pairedPointKey(cfg Config, a, b core.Params, until float64, seedOffset uint64) string {
	return fmt.Sprintf("v%d|paired|%s|seed=%d|until=%g|a=%s|b=%s",
		checkpointVersion, precKey(cfg), cfg.Seed+seedOffset, until, paramsJSON(a), paramsJSON(b))
}

func paramsJSON(p core.Params) []byte {
	pj, err := json.Marshal(p)
	if err != nil {
		// core.Params is a struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("study: marshaling params: %v", err))
	}
	return pj
}
