package study

import (
	"context"
	"fmt"
	"math"

	"ituaval/internal/core"
	"ituaval/internal/ituadirect"
	"ituaval/internal/mc"
	"ituaval/internal/reward"
	"ituaval/internal/rng"
	"ituaval/internal/san"
	"ituaval/internal/sim"
	"ituaval/internal/stats"
)

// CrossValidation (experiment X1) compares the SAN model against the
// independent direct simulator on the baseline configuration under both
// exclusion policies, returning a figure with one panel per measure, each
// holding a "SAN" and a "direct" series indexed by policy (x = 1 for
// domain exclusion, 2 for host exclusion).
func CrossValidation(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 6.0
	fig := &Figure{ID: "X1", Title: "SAN model vs independent direct simulator"}
	panels := []Panel{
		{ID: "X1-unavail", Measure: "Unavailability [0,6]", XLabel: "policy (1=domain 2=host)"},
		{ID: "X1-unrel", Measure: "Unreliability [0,6]", XLabel: "policy (1=domain 2=host)"},
		{ID: "X1-excl", Measure: "Fraction domains excluded at 6", XLabel: "policy (1=domain 2=host)"},
	}
	sanS := [3]Series{{Name: "SAN"}, {Name: "SAN"}, {Name: "SAN"}}
	dirS := [3]Series{{Name: "direct"}, {Name: "direct"}, {Name: "direct"}}
	policies := []core.Policy{core.DomainExclusion, core.HostExclusion}
	params := make([]core.Params, len(policies))
	prs := make([]*PointResult, len(policies))
	sw := newSweep(cfg)
	for i, policy := range policies {
		p := core.DefaultParams()
		p.NumDomains = 4
		p.HostsPerDomain = 2
		p.NumApps = 3
		p.RepsPerApp = 4
		p.Policy = policy
		params[i] = p
		sw.add(&prs[i], fmt.Sprintf("crossval policy=%v", policy), cfg, p, T, uint64(4000+i),
			func(m *core.Model) []reward.Var {
				return []reward.Var{
					m.Unavailability("unavail", 0, 0, T),
					m.Unreliability("unrel", 0, T),
					m.FracDomainsExcluded("excl", T),
				}
			})
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for i := range policies {
		x := float64(i + 1)
		appendPoint(&sanS[0], x, "unavail", prs[i])
		appendPoint(&sanS[1], x, "unrel", prs[i])
		appendPoint(&sanS[2], x, "excl", prs[i])

		var unavail, unrel, excl stats.Accumulator
		root := rng.New(cfg.Seed + uint64(4100+i))
		for rep := 0; rep < cfg.Reps; rep++ {
			res, err := ituadirect.RunContext(ctx, params[i], root.Derive(uint64(rep)), []float64{T})
			if err != nil {
				return nil, err
			}
			unavail.Add(res.UnavailTime[0] / T)
			if res.ByzantineBy[0] {
				unrel.Add(1)
			} else {
				unrel.Add(0)
			}
			excl.Add(res.FracDomainsExcluded[0])
		}
		for j, acc := range []*stats.Accumulator{&unavail, &unrel, &excl} {
			appendCell(&dirS[j], x, acc.Mean(), acc.HalfWidth(0.95), acc.N(),
				cfg.Reps, cfg.Reps, 0, 0)
		}
	}
	for i := range panels {
		panels[i].Series = []Series{sanS[i], dirS[i]}
	}
	fig.Panels = panels
	return fig, nil
}

// NumericalValidation (experiment X2) checks the simulation engine against
// the numerical CTMC solver on a reduced ITUA-like availability model
// (failure/detection/recovery of a replicated service) that is small enough
// for exact transient solution.
func NumericalValidation(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	m, good, bad, _, err := reducedValidationModel()
	if err != nil {
		return nil, err
	}
	improper := func(s *san.State) float64 {
		if 3*s.Int(bad) >= s.Int(good)+s.Int(bad) {
			return 1
		}
		return 0
	}
	chain, err := mc.Generate(m, mc.Options{})
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "X2", Title: "Simulator vs numerical CTMC solution (reduced model)"}
	simS := Series{Name: "simulation"}
	numS := Series{Name: "uniformization"}
	for _, t := range []float64{1, 2, 3, 4, 5} {
		want, err := chain.IntervalAverageReward(t, improper)
		if err != nil {
			return nil, err
		}
		appendCell(&numS, t, want, 0, 0, 0, 0, 0, 0)

		res, err := sim.RunContext(ctx, sim.Spec{
			Model: m, Until: t, Reps: cfg.Reps, Seed: cfg.Seed + 4200, Workers: cfg.Workers,
			Vars:        []reward.Var{&reward.TimeAverage{VarName: "u", F: improper, From: 0, To: t}},
			RepDeadline: cfg.RepDeadline, MaxFailureFrac: cfg.MaxFailureFrac,
		})
		if err != nil {
			return nil, err
		}
		appendPoint(&simS, t, "u", newPointResult(res))
	}
	fig.Panels = []Panel{{
		ID: "X2", Measure: fmt.Sprintf("Time-averaged improper-service indicator (T up to %g)", T),
		XLabel: "T", Series: []Series{simS, numS},
	}}
	return fig, nil
}

// reducedValidationModel builds the small failure/detection/recovery SAN
// that NumericalValidation solves exactly; factored out so the model lint
// lane covers it alongside the composed ITUA shapes.
func reducedValidationModel() (m *san.Model, good, bad, pending *san.Place, err error) {
	const (
		attack  = 0.6
		detect  = 1.5
		recover = 4.0
		nRep    = 3
	)
	m = san.NewModel("reduced-itua")
	good = m.Place("good", nRep)
	bad = m.Place("bad", 0)
	pending = m.Place("pending", 0)
	m.AddActivity(san.ActivityDef{
		Name: "attack", Kind: san.Timed,
		Dist: func(s *san.State) rng.Dist {
			return rng.Expo(attack * float64(s.Get(good)))
		},
		Enabled: func(s *san.State) bool { return s.Get(good) > 0 },
		Reads:   []*san.Place{good},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(good, -1)
			ctx.State.Add(bad, 1)
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "detect", Kind: san.Timed,
		Dist: func(s *san.State) rng.Dist {
			return rng.Expo(detect * float64(s.Get(bad)))
		},
		Enabled: func(s *san.State) bool { return s.Get(bad) > 0 },
		Reads:   []*san.Place{bad},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(bad, -1)
			ctx.State.Add(pending, 1)
		}}},
	})
	m.AddActivity(san.ActivityDef{
		Name: "restart", Kind: san.Timed,
		Dist: func(s *san.State) rng.Dist {
			return rng.Expo(recover * float64(s.Get(pending)))
		},
		Enabled: func(s *san.State) bool { return s.Get(pending) > 0 },
		Reads:   []*san.Place{pending},
		Cases: []san.Case{{Prob: 1, Effect: func(ctx *san.Context) {
			ctx.State.Add(pending, -1)
			ctx.State.Add(good, 1)
		}}},
	})
	if err := m.Finalize(); err != nil {
		return nil, nil, nil, nil, err
	}
	return m, good, bad, pending, nil
}

// AblationDetectionRate (experiment X3) sweeps the IDS pipeline rate to
// show how the calibrated default (0.25/h) governs exclusion dynamics.
func AblationDetectionRate(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	fig := &Figure{ID: "X3", Title: "Sensitivity to the detection pipeline rate"}
	unavail := Series{Name: "unavailability [0,5]"}
	unrel := Series{Name: "unreliability [0,5]"}
	excl := Series{Name: "domains excluded at 5"}
	rates := []float64{0.1, 0.25, 0.5, 1, 2, 4}
	prs := make([]*PointResult, len(rates))
	sw := newSweep(cfg)
	for i, rate := range rates {
		p := core.DefaultParams()
		p.NumDomains = 12
		p.HostsPerDomain = 1
		p.NumApps = 4
		p.RepsPerApp = 7
		p.HostDetectRate = rate
		p.ReplicaDetectRate = rate
		p.MgrDetectRate = rate
		sw.add(&prs[i], fmt.Sprintf("X3 rate=%v", rate), cfg, p, T, uint64(4300+i),
			func(m *core.Model) []reward.Var {
				return []reward.Var{
					m.Unavailability("u", 0, 0, T),
					m.Unreliability("r", 0, T),
					m.FracDomainsExcluded("e", T),
				}
			})
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for i, rate := range rates {
		appendPoint(&unavail, rate, "u", prs[i])
		appendPoint(&unrel, rate, "r", prs[i])
		appendPoint(&excl, rate, "e", prs[i])
	}
	fig.Panels = []Panel{{ID: "X3", Measure: "Measures vs IDS rate (12×1 hosts, 4 apps)",
		XLabel: "detection rate (1/h)", Series: []Series{unavail, unrel, excl}}}
	return fig, nil
}

// AblationRateSplit (experiment X4) sweeps the share of the attack budget
// aimed directly at replicas.
func AblationRateSplit(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	fig := &Figure{ID: "X4", Title: "Sensitivity to the attack-budget split"}
	unavail := Series{Name: "unavailability [0,5]"}
	unrel := Series{Name: "unreliability [0,5]"}
	weights := []float64{0, 0.5, 1, 2, 4, 8}
	prs := make([]*PointResult, len(weights))
	sw := newSweep(cfg)
	for i, wr := range weights {
		p := core.DefaultParams()
		p.NumDomains = 12
		p.HostsPerDomain = 1
		p.NumApps = 4
		p.RepsPerApp = 7
		p.AttackSplitReplica = wr
		sw.add(&prs[i], fmt.Sprintf("X4 split=%v", wr), cfg, p, T, uint64(4400+i),
			func(m *core.Model) []reward.Var {
				return []reward.Var{
					m.Unavailability("u", 0, 0, T),
					m.Unreliability("r", 0, T),
				}
			})
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for i, wr := range weights {
		appendPoint(&unavail, wr, "u", prs[i])
		appendPoint(&unrel, wr, "r", prs[i])
	}
	fig.Panels = []Panel{{ID: "X4", Measure: "Measures vs replica attack weight (12×1 hosts)",
		XLabel: "AttackSplitReplica", Series: []Series{unavail, unrel}}}
	return fig, nil
}

// AblationConviction (experiment X5) compares the two readings of the
// management response to replica convictions: restart-only (default) versus
// domain/host exclusion on every conviction (the strict prose reading).
func AblationConviction(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 5.0
	fig := &Figure{ID: "X5", Title: "Replica-conviction response: restart vs exclusion"}
	panels := []Panel{
		{ID: "X5-unavail", Measure: "Unavailability [0,5]", XLabel: "hosts/domain"},
		{ID: "X5-excl", Measure: "Fraction domains excluded at 5", XLabel: "hosts/domain"},
	}
	modes := []bool{false, true}
	hpds := []int{1, 2, 3, 4, 6, 12}
	prs := make([][]*PointResult, len(modes))
	sw := newSweep(cfg)
	for mi, excludeOnConviction := range modes {
		prs[mi] = make([]*PointResult, len(hpds))
		for pi, hpd := range hpds {
			p := core.DefaultParams()
			p.NumDomains = 12 / hpd
			p.HostsPerDomain = hpd
			p.NumApps = 4
			p.RepsPerApp = 7
			p.ExcludeOnReplicaConviction = excludeOnConviction
			sw.add(&prs[mi][pi], fmt.Sprintf("X5 exclude=%v hpd=%d", excludeOnConviction, hpd),
				cfg, p, T, uint64(4500+pi), func(m *core.Model) []reward.Var {
					return []reward.Var{
						m.Unavailability("u", 0, 0, T),
						m.FracDomainsExcluded("e", T),
					}
				})
		}
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for mi, excludeOnConviction := range modes {
		name := "restart replica (default)"
		if excludeOnConviction {
			name = "exclude on conviction"
		}
		su := Series{Name: name}
		se := Series{Name: name}
		for pi, hpd := range hpds {
			appendPoint(&su, float64(hpd), "u", prs[mi][pi])
			appendPoint(&se, float64(hpd), "e", prs[mi][pi])
		}
		panels[0].Series = append(panels[0].Series, su)
		panels[1].Series = append(panels[1].Series, se)
	}
	fig.Panels = panels
	return fig, nil
}

// MaxAbsGap returns the largest |Y1-Y0| between the first two series of the
// panel (used by validation harnesses and tests).
func MaxAbsGap(p Panel) float64 {
	if len(p.Series) < 2 {
		return math.NaN()
	}
	gap := 0.0
	for i := range p.Series[0].Y {
		if d := math.Abs(p.Series[0].Y[i] - p.Series[1].Y[i]); d > gap {
			gap = d
		}
	}
	return gap
}

// AblationPlacement (experiment X6) compares the recovery placement
// strategies: the paper's uniform choice, deterministic least-loaded, and
// inverse-load weighted random ("unpredictable adaptation" with load
// balancing), on the study-3 topology.
func AblationPlacement(ctx context.Context, cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const T = 10.0
	fig := &Figure{ID: "X6", Title: "Recovery placement strategies"}
	panels := []Panel{
		{ID: "X6-unavail", Measure: "Unavailability [0,10]", XLabel: "spread rate"},
		{ID: "X6-load", Measure: "Load per live host at 10", XLabel: "spread rate"},
	}
	placements := []core.Placement{
		core.UniformPlacement, core.LeastLoadedPlacement, core.WeightedRandomPlacement,
	}
	spreads := []float64{0, 5, 10}
	prs := make([][]*PointResult, len(placements))
	sw := newSweep(cfg)
	for mi, placement := range placements {
		prs[mi] = make([]*PointResult, len(spreads))
		for pi, spread := range spreads {
			p := core.DefaultParams()
			p.NumDomains = 10
			p.HostsPerDomain = 3
			p.NumApps = 4
			p.RepsPerApp = 7
			p.CorruptionMult = 5
			p.DomainSpreadRate = spread
			p.Placement = placement
			sw.add(&prs[mi][pi], fmt.Sprintf("X6 %v spread=%v", placement, spread),
				cfg, p, T, uint64(4600+pi), func(m *core.Model) []reward.Var {
					return []reward.Var{
						m.Unavailability("u", 0, 0, T),
						m.LoadPerHost("load", T),
					}
				})
		}
	}
	if err := sw.run(ctx); err != nil {
		return nil, err
	}
	for mi, placement := range placements {
		su := Series{Name: placement.String()}
		sl := Series{Name: placement.String()}
		for pi, spread := range spreads {
			appendPoint(&su, spread, "u", prs[mi][pi])
			appendPoint(&sl, spread, "load", prs[mi][pi])
		}
		panels[0].Series = append(panels[0].Series, su)
		panels[1].Series = append(panels[1].Series, sl)
	}
	fig.Panels = panels
	return fig, nil
}
