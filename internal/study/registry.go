package study

import (
	"context"
	"fmt"
	"sort"
)

// Runner produces one figure. Runners honor ctx: cancelling it aborts the
// sweep after the current replication batch, and with Config.Checkpoint set
// every completed sweep point has already been persisted, so the run can be
// resumed later with identical results.
type Runner func(context.Context, Config) (*Figure, error)

// Registry maps experiment ids (cmd/figures arguments) to runners.
var Registry = map[string]Runner{
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig5-paired":   Fig5Paired,
	"analytic":      Analytic,
	"live":          Live,
	"xval":          CrossValidation,
	"numval":        NumericalValidation,
	"abl-detect":    AblationDetectionRate,
	"abl-split":     AblationRateSplit,
	"abl-convict":   AblationConviction,
	"abl-placement": AblationPlacement,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run looks up and executes the experiment with the given id.
func Run(id string, cfg Config) (*Figure, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is Run with cooperative cancellation (see Runner).
func RunContext(ctx context.Context, id string, cfg Config) (*Figure, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("study: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(ctx, cfg)
}
