package study

import (
	"context"
	"fmt"
	"sort"
)

// Runner produces one figure. Runners honor ctx: cancelling it aborts the
// sweep after the current replication batch, and with Config.Checkpoint set
// every completed sweep point has already been persisted, so the run can be
// resumed later with identical results.
type Runner func(context.Context, Config) (*Figure, error)

// Registry maps experiment ids (cmd/figures arguments) to runners.
var Registry = map[string]Runner{
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig5-paired":   Fig5Paired,
	"analytic":      Analytic,
	"live":          Live,
	"faults":        Faults,
	"xval":          CrossValidation,
	"numval":        NumericalValidation,
	"abl-detect":    AblationDetectionRate,
	"abl-split":     AblationRateSplit,
	"abl-convict":   AblationConviction,
	"abl-placement": AblationPlacement,
}

// descriptions holds a one-line summary per registered experiment id, for
// discovery surfaces (figures -list, ituaval -list, GET /v1/studies).
var descriptions = map[string]string{
	"fig3":          "Figure 3: measures for different distributions of 12 hosts into domains (first 5 h)",
	"fig4":          "Figure 4: measures for 10 domains with a growing number of hosts per domain",
	"fig5":          "Figure 5: domain- vs host-exclusion over intra-domain attack-spread rates",
	"fig5-paired":   "Figure 5 on common random numbers: host-minus-domain deltas with paired-t CIs and crossovers",
	"analytic":      "exact (CTMC uniformization) vs simulated measures on a 2-domain configuration",
	"live":          "SAN model vs a real fault-injected replica group (internal/rsm) on a 2-domain configuration",
	"faults":        "environment faults (partitions x campaigns, bounded repair crew): SAN vs direct vs live, exact anchor",
	"xval":          "cross-validation: SAN engine vs the independent direct simulator on a shared baseline",
	"numval":        "numerical validation: reduced SAN vs closed-form birth-process results",
	"abl-detect":    "ablation: sweep the detection-pipeline rate calibrated for the paper's figures",
	"abl-split":     "ablation: sweep the host/replica attack-split weight",
	"abl-convict":   "ablation: exclusion-on-replica-conviction response variants",
	"abl-placement": "ablation: recovery placement strategies (uniform, least-loaded, weighted-random)",
}

// Describe returns the one-line description of a registered experiment id,
// or "" for an unknown id.
func Describe(id string) string { return descriptions[id] }

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run looks up and executes the experiment with the given id.
func Run(id string, cfg Config) (*Figure, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is Run with cooperative cancellation (see Runner).
func RunContext(ctx context.Context, id string, cfg Config) (*Figure, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("study: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(ctx, cfg)
}
